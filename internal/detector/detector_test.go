package detector

import (
	"testing"
	"time"

	"repro/internal/partition"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// newManualDetector builds a detector on a manual clock with 100ms
// heartbeats, suspect at 400ms, down at 1s — all crossings driven
// explicitly, no sleeps anywhere.
func newManualDetector(t *testing.T) (*Detector, *ManualClock) {
	t.Helper()
	clk := NewManualClock(t0)
	d, err := New(Options{
		ExpectedInterval: 100 * time.Millisecond,
		SuspectAfter:     400 * time.Millisecond,
		DownAfter:        time.Second,
		Clock:            clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, clk
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{ExpectedInterval: -time.Second}); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := New(Options{SuspectAfter: time.Second, DownAfter: time.Second}); err == nil {
		t.Error("DownAfter <= SuspectAfter accepted")
	}
	if _, err := New(Options{SuspectIntervals: -1}); err == nil {
		t.Error("negative multiplier accepted")
	}
	d, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := d.Options()
	if o.ExpectedInterval != 100*time.Millisecond || o.SuspectAfter != 400*time.Millisecond || o.DownAfter != time.Second {
		t.Errorf("defaults = %v/%v/%v, want 100ms/400ms/1s", o.ExpectedInterval, o.SuspectAfter, o.DownAfter)
	}
}

// TestNoFalsePositive pins the headline determinism property: a node
// beating on schedule is never suspected, no matter how long the run, and
// silence short of the threshold produces no verdict.
func TestNoFalsePositive(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	// 50 on-schedule beats: no transition ever.
	for seq := uint64(1); seq <= 50; seq++ {
		clk.Advance(100 * time.Millisecond)
		if tr := d.Observe(2, seq); tr != nil {
			t.Fatalf("on-schedule beat %d produced transition %v", seq, tr)
		}
		if got := d.Tick(); len(got) != 0 {
			t.Fatalf("tick after on-schedule beat %d: %v", seq, got)
		}
	}
	// Silence just below the suspect threshold: still healthy.
	clk.Advance(399 * time.Millisecond)
	if got := d.Tick(); len(got) != 0 {
		t.Fatalf("silence below threshold produced %v", got)
	}
	if st, _ := d.StateOf(2); st != Healthy {
		t.Fatalf("state = %v, want Healthy", st)
	}
}

func TestSuspectThenDownAtThresholds(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	clk.Advance(100 * time.Millisecond)
	d.Observe(2, 1)

	clk.Advance(400 * time.Millisecond) // exactly the suspect threshold
	got := d.Tick()
	if len(got) != 1 || got[0].Node != 2 || got[0].From != Healthy || got[0].To != Suspect {
		t.Fatalf("at suspect threshold: %v, want Healthy→Suspect for node 2", got)
	}
	if got[0].Silence != 400*time.Millisecond {
		t.Errorf("silence = %v, want 400ms", got[0].Silence)
	}
	// Re-ticking in the suspect band is quiet (no repeated verdicts).
	clk.Advance(100 * time.Millisecond)
	if again := d.Tick(); len(again) != 0 {
		t.Fatalf("suspect re-verdict: %v", again)
	}

	clk.Advance(500 * time.Millisecond) // total silence now 1s = down threshold
	got = d.Tick()
	if len(got) != 1 || got[0].From != Suspect || got[0].To != Down {
		t.Fatalf("at down threshold: %v, want Suspect→Down", got)
	}
	if st, _ := d.StateOf(2); st != Down {
		t.Fatalf("state = %v, want Down", st)
	}
	// Down is terminal for Tick: no more verdicts however long the silence.
	clk.Advance(time.Hour)
	if again := d.Tick(); len(again) != 0 {
		t.Fatalf("down node re-verdicted: %v", again)
	}
}

// TestStraightToDown: a node silent past both thresholds in one gap gets a
// single Healthy→Down verdict, not two.
func TestStraightToDown(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	clk.Advance(5 * time.Second)
	got := d.Tick()
	if len(got) != 1 || got[0].From != Healthy || got[0].To != Down {
		t.Fatalf("long silence: %v, want one Healthy→Down", got)
	}
}

func TestRecoveryOnResumedHeartbeats(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	clk.Advance(2 * time.Second)
	d.Tick() // → Down
	clk.Advance(100 * time.Millisecond)
	tr := d.Observe(2, 1)
	if tr == nil || tr.From != Down || tr.To != Healthy {
		t.Fatalf("resumed heartbeat: %v, want Down→Healthy", tr)
	}
	if st, _ := d.StateOf(2); st != Healthy {
		t.Fatalf("state = %v, want Healthy", st)
	}
	// And from Suspect too.
	clk.Advance(450 * time.Millisecond)
	if got := d.Tick(); len(got) != 1 || got[0].To != Suspect {
		t.Fatalf("tick: %v, want suspect", got)
	}
	if tr := d.Observe(2, 2); tr == nil || tr.From != Suspect || tr.To != Healthy {
		t.Fatalf("resumed heartbeat: %v, want Suspect→Healthy", tr)
	}
}

// TestStaleSeqIsNotLife: a replayed or regressed sequence number must not
// refresh liveness — only fresh beats count.
func TestStaleSeqIsNotLife(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	clk.Advance(100 * time.Millisecond)
	d.Observe(2, 7)
	// Replay seq 7 (and a regression to 3) right up to the threshold.
	for i := 0; i < 4; i++ {
		clk.Advance(100 * time.Millisecond)
		d.Observe(2, 7)
		d.Observe(2, 3)
	}
	got := d.Tick()
	if len(got) != 1 || got[0].To != Suspect {
		t.Fatalf("replayed seqs kept node alive: %v, want suspect", got)
	}
	st := d.Status()
	if len(st) != 1 || st[0].Stale != 8 || st[0].Beats != 1 {
		t.Fatalf("status = %+v, want 8 stale, 1 beat", st)
	}
}

func TestObserveAutoWatches(t *testing.T) {
	d, clk := newManualDetector(t)
	if tr := d.Observe(9, 1); tr != nil {
		t.Fatalf("first beat of unknown node produced %v", tr)
	}
	if st, ok := d.StateOf(9); !ok || st != Healthy {
		t.Fatalf("auto-watched node: %v, %v", st, ok)
	}
	clk.Advance(2 * time.Second)
	if got := d.Tick(); len(got) != 1 || got[0].Node != 9 || got[0].To != Down {
		t.Fatalf("auto-watched node not tracked: %v", got)
	}
	d.Unwatch(9)
	if _, ok := d.StateOf(9); ok {
		t.Error("unwatched node still tracked")
	}
}

// TestAdaptiveThresholds: with interval multipliers set, a node whose beats
// naturally arrive slowly earns proportionally more patience than the fixed
// floor alone grants.
func TestAdaptiveThresholds(t *testing.T) {
	clk := NewManualClock(t0)
	d, err := New(Options{
		ExpectedInterval: 200 * time.Millisecond,
		SuspectAfter:     300 * time.Millisecond, // fixed floor
		DownAfter:        10 * time.Second,
		SuspectIntervals: 3, // adaptive: 3x EWMA ≈ 600ms
		Clock:            clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Watch(2)
	for seq := uint64(1); seq <= 10; seq++ {
		clk.Advance(200 * time.Millisecond)
		d.Observe(2, seq)
	}
	// 500ms of silence: above the 300ms floor but inside 3x the ~200ms
	// observed inter-arrival — a fixed-timeout detector would false-alarm
	// here, the adaptive one must not.
	clk.Advance(500 * time.Millisecond)
	if got := d.Tick(); len(got) != 0 {
		t.Fatalf("adaptive detector false-alarmed: %v", got)
	}
	clk.Advance(200 * time.Millisecond) // 700ms total > 3x EWMA
	if got := d.Tick(); len(got) != 1 || got[0].To != Suspect {
		t.Fatalf("adaptive threshold never fired: %v", got)
	}
}

// TestTickOrderDeterministic: multiple verdicts in one tick arrive in
// ascending node order regardless of map iteration.
func TestTickOrderDeterministic(t *testing.T) {
	d, clk := newManualDetector(t)
	for _, id := range []int{7, 3, 11, 5, 2} {
		d.Watch(partition.NodeID(id))
	}
	clk.Advance(5 * time.Second)
	got := d.Tick()
	if len(got) != 5 {
		t.Fatalf("want 5 verdicts, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Node >= got[i].Node {
			t.Fatalf("verdicts out of order: %v", got)
		}
	}
}

func TestWatchIdempotent(t *testing.T) {
	d, clk := newManualDetector(t)
	d.Watch(2)
	clk.Advance(300 * time.Millisecond)
	d.Watch(2) // must not reset nor duplicate
	clk.Advance(100 * time.Millisecond)
	if got := d.Tick(); len(got) != 1 || got[0].To != Suspect {
		t.Fatalf("re-Watch reset the silence clock: %v", got)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{Healthy: "healthy", Suspect: "suspect", Down: "down"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
