package detector

import (
	"sync"
	"time"
)

// Clock abstracts time for the detector so liveness logic composes with the
// repo's simulated-time cost model and stays deterministic in tests: a
// ManualClock advances only when told to, so "no heartbeat for 800ms" is a
// statement a unit test can make exactly, with no sleeps.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production clock: real wall time.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// ManualClock is a test clock that moves only via Advance/Set. Safe for
// concurrent use — a detector's Tick goroutine may read it while a test
// advances it.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a clock pinned at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}
