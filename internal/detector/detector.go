// Package detector is the coordinator-side failure detector: it watches the
// sequence-numbered heartbeats nodes emit over the transport's Announce path
// and turns their inter-arrival timing into an explicit liveness lifecycle,
//
//	Healthy → Suspect → Down
//	   ↑         │        │
//	   └─────────┴────────┘  (a fresh heartbeat readmits from either state)
//
// The detector is deliberately passive: it holds no cluster locks, calls no
// cluster methods, and only reports Transitions. A supervisor (see
// internal/supervisor) subscribes to those verdicts and decides what to do
// about them — the separation keeps suspicion testable with a fake clock and
// keeps recovery policy (retries, quarantine, flap damping) out of the
// timing math.
//
// Suspicion is timeout-based with an adaptive option: each node's observed
// inter-arrival time is tracked as an EWMA, and the suspect/down thresholds
// are the greater of a fixed floor (SuspectAfter/DownAfter) and a multiple
// of that EWMA (SuspectIntervals/DownIntervals). With the multipliers at
// zero the detector is a pure fixed-timeout detector; with them set it
// behaves like a coarse phi-accrual detector — a node whose heartbeats
// naturally arrive slowly (loaded, distant) earns proportionally more
// patience before suspicion, which is what keeps false positives near zero
// under jitter without making detection of a truly dead node slower than
// DownAfter requires.
package detector

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/partition"
)

// State is a watched node's liveness verdict.
type State int32

const (
	// Healthy: heartbeats are arriving within threshold.
	Healthy State = iota
	// Suspect: heartbeats have been silent past the suspect threshold; the
	// node may be dead or the control path may be lossy. No action yet.
	Suspect
	// Down: silence crossed the down threshold; the detector's verdict is
	// that the node is dead and recovery should begin.
	Down
)

func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "healthy"
}

// Options tune a Detector. The zero value is usable: 100ms expected
// interval, fixed thresholds at 4x/10x the interval, pure-timeout mode,
// system clock.
type Options struct {
	// ExpectedInterval is the heartbeat period nodes are configured to emit
	// at; it seeds the inter-arrival EWMA and derives the default
	// thresholds. Default 100ms.
	ExpectedInterval time.Duration
	// SuspectAfter is the fixed floor of silence before a Healthy node
	// becomes Suspect. Default 4 x ExpectedInterval.
	SuspectAfter time.Duration
	// DownAfter is the fixed floor of silence before a node is declared
	// Down. Default 10 x ExpectedInterval. Must exceed SuspectAfter.
	DownAfter time.Duration
	// SuspectIntervals/DownIntervals, when > 0, make the thresholds
	// adaptive: the effective threshold is max(fixed floor, multiplier x
	// observed EWMA inter-arrival). 0 keeps pure fixed timeouts.
	SuspectIntervals float64
	DownIntervals    float64
	// Clock supplies time; nil selects SystemClock. Tests inject a
	// ManualClock for fully deterministic threshold crossings.
	Clock Clock
}

func (o Options) withDefaults() (Options, error) {
	if o.ExpectedInterval == 0 {
		o.ExpectedInterval = 100 * time.Millisecond
	}
	if o.ExpectedInterval <= 0 {
		return o, fmt.Errorf("detector: ExpectedInterval must be positive, got %v", o.ExpectedInterval)
	}
	if o.SuspectAfter == 0 {
		o.SuspectAfter = 4 * o.ExpectedInterval
	}
	if o.DownAfter == 0 {
		o.DownAfter = 10 * o.ExpectedInterval
	}
	if o.SuspectAfter <= 0 || o.DownAfter <= 0 {
		return o, fmt.Errorf("detector: thresholds must be positive (suspect %v, down %v)", o.SuspectAfter, o.DownAfter)
	}
	if o.DownAfter <= o.SuspectAfter {
		return o, fmt.Errorf("detector: DownAfter (%v) must exceed SuspectAfter (%v)", o.DownAfter, o.SuspectAfter)
	}
	if o.SuspectIntervals < 0 || o.DownIntervals < 0 {
		return o, fmt.Errorf("detector: interval multipliers must be >= 0")
	}
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
	return o, nil
}

// Transition is one lifecycle edge the detector observed.
type Transition struct {
	Node partition.NodeID
	From State
	To   State
	// At is the detector-clock time of the verdict.
	At time.Time
	// Silence is how long the node had been quiet when the verdict was
	// reached (zero for recoveries — a heartbeat just arrived).
	Silence time.Duration
}

func (t Transition) String() string {
	return fmt.Sprintf("node %d: %s → %s (silent %v)", t.Node, t.From, t.To, t.Silence)
}

// track is the per-node liveness record.
type track struct {
	state    State
	lastSeq  uint64
	lastBeat time.Time
	// ewma is the smoothed inter-arrival time, seeded with
	// ExpectedInterval so the first few beats don't whipsaw the adaptive
	// thresholds.
	ewma  time.Duration
	beats uint64 // heartbeats accepted
	stale uint64 // heartbeats rejected as replayed/regressed Seq
}

// ewmaAlpha is the smoothing weight for inter-arrival updates.
const ewmaAlpha = 0.2

// Detector turns per-node heartbeat observations into liveness verdicts.
// Safe for concurrent use: Observe is called from transport handler
// callbacks while Tick runs on a supervisor's poll loop.
type Detector struct {
	opts Options

	mu    sync.Mutex
	nodes map[partition.NodeID]*track
}

// New builds a detector. Watch nodes (or let Observe auto-watch them), feed
// it heartbeats via Observe, and poll Tick for silence-driven verdicts.
func New(opts Options) (*Detector, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Detector{opts: o, nodes: make(map[partition.NodeID]*track)}, nil
}

// Options returns the detector's resolved tuning.
func (d *Detector) Options() Options { return d.opts }

// Watch starts tracking a node, granting it a full grace period from now —
// a just-watched node is Healthy and cannot be suspected before
// SuspectAfter elapses. Watching an already-watched node is a no-op.
func (d *Detector) Watch(id partition.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[id]; ok {
		return
	}
	d.nodes[id] = &track{
		state:    Healthy,
		lastBeat: d.opts.Clock.Now(),
		ewma:     d.opts.ExpectedInterval,
	}
}

// Unwatch stops tracking a node (a decommission, not a failure).
func (d *Detector) Unwatch(id partition.NodeID) {
	d.mu.Lock()
	delete(d.nodes, id)
	d.mu.Unlock()
}

// Observe feeds one heartbeat. A repeated or regressed sequence number is a
// stale delivery — counted but not treated as a sign of life. Unknown nodes
// are auto-watched (a scale-out's new node announces before anyone told the
// detector about it). The returned Transition is non-nil only when the
// heartbeat readmits a Suspect or Down node to Healthy.
func (d *Detector) Observe(id partition.NodeID, seq uint64) *Transition {
	now := d.opts.Clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	tr, ok := d.nodes[id]
	if !ok {
		tr = &track{state: Healthy, lastBeat: now, ewma: d.opts.ExpectedInterval}
		d.nodes[id] = tr
		tr.lastSeq = seq
		tr.beats = 1
		return nil
	}
	if tr.beats > 0 && seq <= tr.lastSeq {
		tr.stale++
		return nil
	}
	if tr.beats > 0 {
		gap := now.Sub(tr.lastBeat)
		tr.ewma = time.Duration((1-ewmaAlpha)*float64(tr.ewma) + ewmaAlpha*float64(gap))
	}
	tr.lastSeq = seq
	tr.lastBeat = now
	tr.beats++
	if tr.state == Healthy {
		return nil
	}
	from := tr.state
	tr.state = Healthy
	return &Transition{Node: id, From: from, To: Healthy, At: now}
}

// thresholds returns the effective suspect/down silences for a track.
func (d *Detector) thresholds(tr *track) (suspect, down time.Duration) {
	suspect, down = d.opts.SuspectAfter, d.opts.DownAfter
	if d.opts.SuspectIntervals > 0 {
		if adaptive := time.Duration(d.opts.SuspectIntervals * float64(tr.ewma)); adaptive > suspect {
			suspect = adaptive
		}
	}
	if d.opts.DownIntervals > 0 {
		if adaptive := time.Duration(d.opts.DownIntervals * float64(tr.ewma)); adaptive > down {
			down = adaptive
		}
	}
	if down <= suspect {
		down = suspect + 1
	}
	return suspect, down
}

// Tick evaluates silence against the thresholds and returns the transitions
// it caused, in ascending node order for determinism. A Healthy node past
// the suspect threshold becomes Suspect; any node past the down threshold
// becomes Down. Call it on a poll loop (or after advancing a ManualClock).
func (d *Detector) Tick() []Transition {
	now := d.opts.Clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]partition.NodeID, 0, len(d.nodes))
	for id := range d.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Transition
	for _, id := range ids {
		tr := d.nodes[id]
		if tr.state == Down {
			continue
		}
		silence := now.Sub(tr.lastBeat)
		suspect, down := d.thresholds(tr)
		switch {
		case silence >= down:
			out = append(out, Transition{Node: id, From: tr.state, To: Down, At: now, Silence: silence})
			tr.state = Down
		case silence >= suspect && tr.state == Healthy:
			out = append(out, Transition{Node: id, From: Healthy, To: Suspect, At: now, Silence: silence})
			tr.state = Suspect
		}
	}
	return out
}

// StateOf returns a node's current verdict; false if unwatched.
func (d *Detector) StateOf(id partition.NodeID) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tr, ok := d.nodes[id]
	if !ok {
		return Healthy, false
	}
	return tr.state, true
}

// NodeStatus is a point-in-time snapshot of one tracked node.
type NodeStatus struct {
	Node     partition.NodeID
	State    State
	LastSeq  uint64
	Silence  time.Duration // now - last accepted heartbeat
	Interval time.Duration // EWMA inter-arrival
	Beats    uint64        // heartbeats accepted
	Stale    uint64        // heartbeats rejected (replayed/regressed Seq)
}

// Status snapshots every tracked node, ascending by ID.
func (d *Detector) Status() []NodeStatus {
	now := d.opts.Clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeStatus, 0, len(d.nodes))
	for id, tr := range d.nodes {
		out = append(out, NodeStatus{
			Node:     id,
			State:    tr.state,
			LastSeq:  tr.lastSeq,
			Silence:  now.Sub(tr.lastBeat),
			Interval: tr.ewma,
			Beats:    tr.beats,
			Stale:    tr.stale,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
