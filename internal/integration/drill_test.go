package integration

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/workload"
)

// modisCluster loads the full MODIS workload onto a fresh cluster at the
// given replication factor and returns it with the last cycle index.
func modisCluster(t *testing.T, replication int) (*cluster.Cluster, int) {
	t.Helper()
	return modisClusterOver(t, replication, nil, 0)
}

// modisClusterOver is modisCluster with a node transport and a transfer
// retry budget threaded through — nil/0 reproduce modisCluster exactly.
func modisClusterOver(t *testing.T, replication int, tr transport.Transport, retries int) (*cluster.Cluster, int) {
	t.Helper()
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 3, BaseCells: 12})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes:      4,
		NodeCapacity:      total + 1,
		ReplicationFactor: replication,
		Transport:         tr,
		TransferRetries:   retries,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 16), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, err := gen.Batch(cycle)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	return c, gen.Cycles() - 1
}

// drillVictim picks a non-coordinator node owning chunks.
func drillVictim(t *testing.T, c *cluster.Cluster) partition.NodeID {
	t.Helper()
	for _, id := range c.Nodes() {
		if id != c.Coordinator() && len(c.NodeChunks(id)) > 0 {
			return id
		}
	}
	t.Fatal("no non-coordinator node owns chunks")
	return 0
}

func suiteAnswers(t *testing.T, c *cluster.Cluster, cycle int) map[string][2]float64 {
	t.Helper()
	res, err := query.MODISSuite(c, cycle)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][2]float64, len(res.PerQuery))
	for name, q := range res.PerQuery {
		out[name] = [2]float64{float64(q.Cells), q.Value}
	}
	return out
}

// TestMODISKillANodeDrill is the paper-workload fault drill: with R=2,
// fail a node mid-life and require (1) the full MODIS suite on the
// degraded cluster matches the healthy baseline byte-for-byte, (2)
// PlanRecover + ExecuteRebalance restores every lost primary and a clean
// Validate, and (3) the suite still matches after recovery.
func TestMODISKillANodeDrill(t *testing.T) {
	c, cycle := modisCluster(t, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	baseline := suiteAnswers(t, c, cycle)

	victim := drillVictim(t, c)
	owned := len(c.NodeChunks(victim))
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	degraded := suiteAnswers(t, c, cycle)
	for name, want := range baseline {
		if got := degraded[name]; got != want {
			t.Errorf("degraded %s = %v, healthy baseline %v", name, got, want)
		}
	}

	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost := plan.Unrecoverable(); len(lost) != 0 {
		t.Fatalf("R=2 drill has unrecoverable chunks: %v", lost)
	}
	if plan.NumRecoveries() < owned {
		t.Errorf("plan recovers %d chunks, victim owned %d", plan.NumRecoveries(), owned)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	// The down node still physically holds its data (wiped only on
	// rejoin), but the catalog must credit every chunk to a healthy node.
	for _, info := range c.NodeChunks(victim) {
		if owner, ok := c.Owner(info.Ref.Packed()); !ok || owner == victim {
			t.Errorf("chunk %s still catalogued to the failed node", info.Ref)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-recovery validate: %v", err)
	}
	recovered := suiteAnswers(t, c, cycle)
	for name, want := range baseline {
		if got := recovered[name]; got != want {
			t.Errorf("recovered %s = %v, healthy baseline %v", name, got, want)
		}
	}

	// The repaired node can rejoin empty and the catalog stays clean.
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMODISDrillAtR1NamesLostChunks is the unreplicated variant: the
// suite must refuse to fabricate a partial answer, returning a typed
// *query.ErrPartialResult naming exactly the chunks lost with the node.
func TestMODISDrillAtR1NamesLostChunks(t *testing.T) {
	c, cycle := modisCluster(t, 1)
	victim := drillVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	_, err := query.MODISSuite(c, cycle)
	var pr *query.ErrPartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("degraded R=1 suite returned %v, want *query.ErrPartialResult", err)
	}
	want := c.UnreachablePrimaries(pr.Array)
	if len(want) == 0 {
		t.Fatalf("array %s reports no unreachable primaries, yet the suite failed on it", pr.Array)
	}
	wantS := make([]string, len(want))
	for i, ref := range want {
		wantS[i] = ref.String()
	}
	gotS := make([]string, len(pr.Lost))
	for i, ref := range pr.Lost {
		gotS[i] = ref.String()
	}
	sort.Strings(wantS)
	sort.Strings(gotS)
	if fmt.Sprint(gotS) != fmt.Sprint(wantS) {
		t.Errorf("lost chunks %v, want exactly %v", gotS, wantS)
	}

	// Healing the node restores full answers with no data loss.
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := query.MODISSuite(c, cycle); err != nil {
		t.Fatalf("suite still failing after recovery: %v", err)
	}
}
