// Package integration runs whole-system tests across every partitioning
// scheme and both workloads: the full cyclic workload model with the
// benchmark suite enabled, auditing cluster invariants after every phase.
package integration

import (
	"fmt"
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/workload"
)

func generators(t *testing.T) []workload.Generator {
	t.Helper()
	m, err := workload.NewMODIS(workload.MODISConfig{Cycles: 4, BaseCells: 12})
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.NewAIS(workload.AISConfig{Cycles: 4, CellsPerCycle: 1200})
	if err != nil {
		t.Fatal(err)
	}
	return []workload.Generator{m, a}
}

// TestEverySchemeEveryWorkload is the broad sweep: 8 schemes × 2 workloads,
// full cyclic model with queries, invariants audited per cycle.
func TestEverySchemeEveryWorkload(t *testing.T) {
	for _, kind := range partition.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			for _, gen := range generators(t) {
				_, total, err := workload.TotalBytes(gen)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := core.NewEngine(gen, core.Config{
					PartitionerKind: kind,
					InitialNodes:    2,
					NodeCapacity:    total/6 + 1,
					Cost:            cluster.ScaledCostModel(),
					FixedStep:       2,
					MaxNodes:        8,
					RunQueries:      true,
				})
				if err != nil {
					t.Fatal(err)
				}
				var chunkCount int
				var bytesSoFar int64
				for cycle := 0; cycle < gen.Cycles(); cycle++ {
					batch, err := gen.Batch(cycle)
					if err != nil {
						t.Fatal(err)
					}
					s, err := eng.RunCycle()
					if err != nil {
						t.Fatalf("%s/%s cycle %d: %v", kind, gen.Name(), cycle, err)
					}
					c := eng.Cluster()
					if err := c.Validate(); err != nil {
						t.Fatalf("%s/%s cycle %d: %v", kind, gen.Name(), cycle, err)
					}
					chunkCount += len(batch)
					bytesSoFar += workload.BatchBytes(batch)
					if c.NumChunks() != chunkCount {
						t.Fatalf("%s/%s cycle %d: %d chunks, want %d", kind, gen.Name(), cycle, c.NumChunks(), chunkCount)
					}
					if c.TotalBytes() != bytesSoFar {
						t.Fatalf("%s/%s cycle %d: %d bytes, want %d (conservation)", kind, gen.Name(), cycle, c.TotalBytes(), bytesSoFar)
					}
					if len(s.Suite.PerQuery) != 6 {
						t.Fatalf("%s/%s cycle %d: %d queries ran, want 6", kind, gen.Name(), cycle, len(s.Suite.PerQuery))
					}
					for name, q := range s.Suite.PerQuery {
						if q.Elapsed <= 0 {
							t.Fatalf("%s/%s cycle %d: query %s has no latency", kind, gen.Name(), cycle, name)
						}
					}
				}
			}
		})
	}
}

// TestQueryAnswersArePlacementIndependent runs the full benchmark under
// three very different placements and requires identical answers: where
// data lives must never change what queries compute.
func TestQueryAnswersArePlacementIndependent(t *testing.T) {
	type answers map[string][2]float64 // query -> {cells, value}
	runAll := func(kind string) answers {
		gen, err := workload.NewAIS(workload.AISConfig{Cycles: 3, CellsPerCycle: 1500})
		if err != nil {
			t.Fatal(err)
		}
		_, total, err := workload.TotalBytes(gen)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(gen, core.Config{
			PartitionerKind: kind,
			InitialNodes:    2,
			NodeCapacity:    total/5 + 1,
			FixedStep:       2,
			MaxNodes:        8,
			RunQueries:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		last := stats[len(stats)-1]
		out := answers{}
		for name, q := range last.Suite.PerQuery {
			out[name] = [2]float64{float64(q.Cells), q.Value}
		}
		return out
	}
	base := runAll(partition.KindRoundRobin)
	for _, kind := range []string{partition.KindKdTree, partition.KindConsistent, partition.KindAppend} {
		got := runAll(kind)
		for name, want := range base {
			if got[name] != want {
				t.Errorf("query %s answers differ between %s and round robin: %v vs %v",
					name, kind, got[name], want)
			}
		}
	}
}

// TestDiskBackedEngineRun drives a full engine run with durable storage
// and verifies every node's on-disk state matches its served state.
func TestDiskBackedEngineRun(t *testing.T) {
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 3, BaseCells: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	geom := gen.Geometry()
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: total/4 + 1,
		StorageDir:   dir,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewHilbertCurve(initial, geom)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, err := gen.Batch(cycle)
		if err != nil {
			t.Fatal(err)
		}
		if demand := c.TotalBytes() + workload.BatchBytes(batch); demand > c.Capacity() {
			if _, err := c.ScaleOut(2); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Recover each node's store from disk and compare against what the
	// live node serves.
	lookup := func(name string) (*array.Schema, bool) { return c.Schema(name) }
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		st, err := cluster.OpenDiskStore(fmt.Sprintf("%s/node-%d", dir, id), lookup)
		if err != nil {
			t.Fatalf("recovering node %d: %v", id, err)
		}
		if st.Len() != node.NumChunks() || st.Bytes() != node.Bytes() {
			t.Fatalf("node %d: disk holds %d chunks/%d bytes, memory %d/%d",
				id, st.Len(), st.Bytes(), node.NumChunks(), node.Bytes())
		}
		for _, ref := range st.Refs() {
			live, ok := node.Chunk(ref)
			if !ok {
				t.Fatalf("node %d: disk chunk %s not served", id, ref)
			}
			recovered, _ := st.Get(ref)
			if live.Len() != recovered.Len() || live.SizeBytes() != recovered.SizeBytes() {
				t.Fatalf("node %d: chunk %s differs between disk and memory", id, ref)
			}
		}
	}
}
