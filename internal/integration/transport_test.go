package integration

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/transport"
)

// clusterFingerprint hashes every node's full data state — primaries and
// replicas, payload bytes included — so two clusters that took different
// wire paths can be compared byte for byte.
func clusterFingerprint(t *testing.T, c *cluster.Cluster) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, info := range node.ChunkInfos() {
			ch, ok := node.Chunk(info.Ref)
			if !ok {
				t.Fatalf("node %d lists %s but cannot serve it", id, info.Ref)
			}
			enc, err := array.EncodeChunk(ch)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(enc)
			out[fmt.Sprintf("%d/primary/%s", id, info.Ref)] = hex.EncodeToString(sum[:])
		}
		for _, rep := range node.Replicas() {
			enc, err := array.EncodeChunk(rep)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(enc)
			out[fmt.Sprintf("%d/replica/%s", id, rep.Ref())] = hex.EncodeToString(sum[:])
		}
	}
	return out
}

func requireSameState(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("%s: state diverges at %s: baseline %q, got %q", label, k, want[k], got[k])
		}
	}
}

func requireSameAnswers(t *testing.T, label string, want, got map[string][2]float64) {
	t.Helper()
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: query %s = %v, baseline %v", label, name, g, w)
		}
	}
}

// TestMODISSuiteOverTCPMatchesInProcess ingests the full MODIS workload
// once per transport backend — in-process baseline, loopback, TCP — and
// requires byte-identical cluster state and identical benchmark-suite
// answers everywhere. Over TCP every ingest write crosses a real socket
// and every halo/join pull is a wire fetch, so this pins the whole stack:
// same bytes stored, same answers computed.
func TestMODISSuiteOverTCPMatchesInProcess(t *testing.T) {
	base, cycle := modisCluster(t, 2)
	wantState := clusterFingerprint(t, base)
	wantAnswers := suiteAnswers(t, base, cycle)

	for _, backend := range []struct {
		name string
		tr   transport.Transport
	}{
		{"loopback", transport.NewLoopback()},
		{"tcp", transport.NewTCP(transport.TCPOptions{})},
	} {
		t.Run(backend.name, func(t *testing.T) {
			c, cyc := modisClusterOver(t, 2, backend.tr, 0)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, backend.name, wantState, clusterFingerprint(t, c))
			requireSameAnswers(t, backend.name, wantAnswers, suiteAnswers(t, c, cyc))
		})
	}
}

// TestMODISKillANodeDrillOverTCP replays the kill-a-node drill with every
// batch on real sockets and pins each stage — degraded, recovered,
// readmitted — to the in-process drill byte for byte, answers included.
func TestMODISKillANodeDrillOverTCP(t *testing.T) {
	type stage struct {
		state   map[string]string
		answers map[string][2]float64
	}
	drill := func(t *testing.T, tr transport.Transport) []stage {
		c, cycle := modisClusterOver(t, 2, tr, 0)
		victim := drillVictim(t, c)
		if err := c.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		var stages []stage
		snap := func() {
			stages = append(stages, stage{clusterFingerprint(t, c), suiteAnswers(t, c, cycle)})
		}
		snap() // degraded
		plan, err := c.PlanRecover(victim)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ExecuteRebalance(plan); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("post-recovery validate: %v", err)
		}
		snap() // recovered
		if _, err := c.RecoverNode(victim); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("post-readmit validate: %v", err)
		}
		snap() // readmitted
		return stages
	}

	want := drill(t, nil)
	got := drill(t, transport.NewTCP(transport.TCPOptions{}))
	names := []string{"degraded", "recovered", "readmitted"}
	for i, name := range names {
		requireSameState(t, name, want[i].state, got[i].state)
		requireSameAnswers(t, name, want[i].answers, got[i].answers)
	}
}

// TestMODISChaosDropsConvergeByteIdentical is the chaos run (meant for
// -race): the whole workload plus a scale-out and a kill-a-node drill over
// a FaultTransport-wrapped TCP backend randomly dropping 30% of pushes.
// Whole-batch retry must absorb every injected fault, and because retried
// batches are receiver-atomic the surviving state must be byte-identical
// to a fault-free in-process run of the same script.
func TestMODISChaosDropsConvergeByteIdentical(t *testing.T) {
	script := func(t *testing.T, tr transport.Transport, retries int) *cluster.Cluster {
		c, _ := modisClusterOver(t, 2, tr, retries)
		if _, err := c.ScaleOut(2); err != nil {
			t.Fatal(err)
		}
		victim := drillVictim(t, c)
		if err := c.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		plan, err := c.PlanRecover(victim)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ExecuteRebalance(plan); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecoverNode(victim); err != nil {
			t.Fatal(err)
		}
		return c
	}

	baseline := script(t, nil, 0)

	faults := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	faults.SetDropRate(0.3, 7)
	chaos := script(t, faults, 10)
	faults.SetDropRate(0, 0) // disarm before verification reads

	if err := chaos.Validate(); err != nil {
		t.Fatalf("post-chaos validate: %v", err)
	}
	if faults.Injected() == 0 {
		t.Error("chaos run injected no faults; drop rate never fired")
	}
	requireSameState(t, "chaos", clusterFingerprint(t, baseline), clusterFingerprint(t, chaos))
}
