package integration

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/partition"
	"repro/internal/supervisor"
	"repro/internal/transport"
)

// drillOptions are the supervised-drill timings: fast enough that the full
// detect→fail→recover→readmit cycle completes in a couple of seconds, slow
// enough that a loaded -race CI box does not false-positive between beats
// (suspect tolerates 15 missed 20ms beats, down 40).
func drillOptions() supervisor.Options {
	return supervisor.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		Detector: detector.Options{
			SuspectAfter: 300 * time.Millisecond,
			DownAfter:    800 * time.Millisecond,
		},
		Quarantine: 200 * time.Millisecond,
	}
}

// waitEvent blocks until the supervisor has logged at least n events of the
// given kind, failing the test after the deadline.
func waitEvent(t *testing.T, s *supervisor.Supervisor, kind supervisor.EventKind, n int, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if s.EventCount(kind) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fewer than %d %v event(s) within %v; events: %v", n, kind, deadline, s.Events())
}

// manualDrillStages replays the operator-driven drill on an in-process
// cluster and returns the recovered and readmitted fingerprints — the
// ground truth the supervised run must reproduce byte for byte.
func manualDrillStages(t *testing.T) (victim partition.NodeID, recovered, readmitted map[string]string, answers map[string][2]float64) {
	t.Helper()
	c, cycle := modisCluster(t, 2)
	answers = suiteAnswers(t, c, cycle)
	victim = drillVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	recovered = clusterFingerprint(t, c)
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	readmitted = clusterFingerprint(t, c)
	return victim, recovered, readmitted, answers
}

// TestSupervisedKillANodeDrillOverTCP is the PR's headline: the MODIS
// workload on real sockets, a node killed by cutting its links, and the
// cluster converging back to Validate-clean with ZERO manual health calls —
// no FailNode, no PlanRecover, no RecoverNode anywhere in the supervised
// path. Every stage must be byte-identical to the operator-driven drill,
// query answers included.
func TestSupervisedKillANodeDrillOverTCP(t *testing.T) {
	wantVictim, wantRecovered, wantReadmitted, wantAnswers := manualDrillStages(t)

	faults := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c, cycle := modisClusterOver(t, 2, faults, 0)
	sup, err := supervisor.New(c, drillOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	victim := drillVictim(t, c)
	if victim != wantVictim {
		t.Fatalf("supervised drill picked victim %d, manual baseline %d", victim, wantVictim)
	}
	faults.IsolateNode(victim, transport.LinkAll)

	// The supervisor alone: suspect → down → fail → plan → rebalance.
	waitEvent(t, sup, supervisor.EventRecovered, 1, 30*time.Second)
	if health, _ := c.NodeHealthOf(victim); health != cluster.NodeDown {
		t.Fatalf("victim health = %v after recovery, want Down", health)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-recovery Validate: %v", err)
	}
	requireSameState(t, "supervised-recovered", wantRecovered, clusterFingerprint(t, c))
	requireSameAnswers(t, "supervised-recovered", wantAnswers, suiteAnswers(t, c, cycle))

	// The node returns; the supervisor quarantines, then readmits it.
	faults.HealNode(victim)
	waitEvent(t, sup, supervisor.EventReadmitted, 1, 30*time.Second)
	if health, _ := c.NodeHealthOf(victim); health != cluster.NodeHealthy {
		t.Fatalf("victim health = %v after readmission, want Healthy", health)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
	requireSameState(t, "supervised-readmitted", wantReadmitted, clusterFingerprint(t, c))
	requireSameAnswers(t, "supervised-readmitted", wantAnswers, suiteAnswers(t, c, cycle))

	if n := sup.EventCount(supervisor.EventGaveUp); n != 0 {
		t.Fatalf("supervisor gave up during the drill: %v", sup.Events())
	}
}

// TestSupervisedChaosDrill is the drill under 30% push drops (meant for
// -race): injected wire faults hit both the workload's transfers and the
// supervisor's recovery transfers, and the retry stack — per-transfer,
// whole-batch, and the supervisor's replan loop — must still converge to
// the byte-identical healed state with no operator in the loop.
func TestSupervisedChaosDrill(t *testing.T) {
	wantVictim, _, wantReadmitted, wantAnswers := manualDrillStages(t)

	faults := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	faults.SetDropRate(0.3, 7)
	c, cycle := modisClusterOver(t, 2, faults, 10)
	sup, err := supervisor.New(c, drillOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	victim := drillVictim(t, c)
	if victim != wantVictim {
		t.Fatalf("chaos drill picked victim %d, manual baseline %d", victim, wantVictim)
	}
	faults.IsolateNode(victim, transport.LinkAll)
	waitEvent(t, sup, supervisor.EventRecovered, 1, 60*time.Second)
	faults.HealNode(victim)
	waitEvent(t, sup, supervisor.EventReadmitted, 1, 60*time.Second)

	faults.SetDropRate(0, 0) // disarm before verification reads
	if faults.Injected() == 0 {
		t.Error("chaos drill injected no faults; drop rate never fired")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-chaos Validate: %v", err)
	}
	requireSameState(t, "chaos-readmitted", wantReadmitted, clusterFingerprint(t, c))
	requireSameAnswers(t, "chaos-readmitted", wantAnswers, suiteAnswers(t, c, cycle))
}

// TestSupervisedHeartbeatOnlyLoss: only the victim's control plane is cut —
// data links keep working. The detector must still fail the node over (it
// cannot tell a dead process from a dead control link), queries must stay
// byte-identical throughout, and healing the link must readmit the node.
func TestSupervisedHeartbeatOnlyLoss(t *testing.T) {
	faults := transport.NewFaultTransport(transport.NewLoopback())
	c, cycle := modisClusterOver(t, 2, faults, 0)
	baseline := suiteAnswers(t, c, cycle)
	sup, err := supervisor.New(c, drillOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	victim := drillVictim(t, c)
	faults.IsolateNode(victim, transport.LinkAnnounce)
	waitEvent(t, sup, supervisor.EventRecovered, 1, 30*time.Second)
	if err := c.Validate(); err != nil {
		t.Fatalf("post-recovery Validate: %v", err)
	}
	requireSameAnswers(t, "heartbeat-loss", baseline, suiteAnswers(t, c, cycle))

	faults.HealNode(victim)
	waitEvent(t, sup, supervisor.EventReadmitted, 1, 30*time.Second)
	if err := c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
	requireSameAnswers(t, "heartbeat-loss-readmitted", baseline, suiteAnswers(t, c, cycle))
}

// TestSupervisedNoFalsePositives: the whole workload — ingest, a
// scale-out, the query suite — runs under a supervisor with production-ish
// thresholds and NO injected silence. The detector must never suspect
// anyone: zero Suspect, zero Down, zero cluster mutations from the
// supervisor.
func TestSupervisedNoFalsePositives(t *testing.T) {
	faults := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c, cycle := modisClusterOver(t, 2, faults, 10)
	sup, err := supervisor.New(c, supervisor.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		Detector: detector.Options{
			SuspectAfter: 2 * time.Second,
			DownAfter:    5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := c.ScaleOut(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = suiteAnswers(t, c, cycle)
	time.Sleep(500 * time.Millisecond) // a few hundred beats of steady state

	if n := sup.EventCount(supervisor.EventSuspect); n != 0 {
		t.Errorf("false positive: %d suspect verdict(s): %v", n, sup.Events())
	}
	if n := sup.EventCount(supervisor.EventDown); n != 0 {
		t.Errorf("false positive: %d down verdict(s): %v", n, sup.Events())
	}
	if got := c.SuspectNodes(); len(got) != 0 {
		t.Errorf("nodes left suspect with no faults: %v", got)
	}
}
