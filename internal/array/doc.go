// Package array implements the SciDB-style multidimensional array data model
// that the elasticity layer is built on: schemas with named, chunked
// dimensions and typed attributes; sparse columnar chunks that are the unit
// of I/O and placement; vertical partitioning of attributes into separately
// accounted segments; and the chunk-grid arithmetic (cell→chunk mapping,
// neighbourhoods, origins) that the spatial partitioners and queries rely on.
//
// The model follows Section 2 of Duggan & Stonebraker, "Incremental
// Elasticity for Array Databases" (SIGMOD 2014): only non-empty cells are
// stored, physical chunk size is the number of occupied cells times the cell
// payload, and each attribute is stored as its own vertical segment.
//
// # Chunk identity
//
// A chunk has two identity representations:
//
//   - ChunkRef / the string form ChunkRef.Key ("Array:c0/c1/…"). This is
//     the wire and durable format: DiskStore file names, ParseChunkRef, and
//     human-readable errors all use it, and it is dimension-unlimited.
//   - ChunkKey, the packed form used as the map key on the placement hot
//     path (ownership catalog, node stores, partitioner tables, co-access
//     graph). It is a fixed-size comparable struct: the array name interned
//     to a uint32 ArrayID via the process-wide registry, plus the chunk
//     coordinates packed into a [MaxKeyDims]int64 with an explicit
//     dimension count. Packing and lookups allocate nothing.
//
// The packed form carries at most MaxKeyDims (4) dimensions — enough for
// every workload in this repository — and NewSchema enforces the same limit
// so schema-derived coordinates always pack. Coordinates are stored as raw
// int64 values (negatives included); two keys are equal exactly when array
// and per-dimension coordinates are equal, and unused slots never
// contribute because the dimension count disambiguates prefixes. CoordKey
// is the array-less packing used where code already works within a single
// array (query slab maps, workload generators, grid-position units).
//
// Both forms render and parse identically on the wire, so swapping map keys
// from strings to ChunkKey changes no file name and no serialized byte.
//
// # The ingest pipeline next door
//
// ChunkInfo (identity + physical size, never payload) is the currency of
// the batch ingest pipeline built on top of this package. A batch of
// chunks flows through three stages:
//
//  1. Plan — cluster.PlanInsert sorts the batch into canonical key order,
//     validates it (defined arrays, no duplicates in the batch or the
//     catalog), and asks the placement scheme for the whole batch at once
//     via partition.Placer.PlaceBatch([]ChunkInfo, State), which returns
//     one Assignment per chunk.
//  2. Reserve — the plan claims its chunks in the cluster's catalog, a
//     power-of-two-sharded map selected by ChunkKey.Hash, so concurrent
//     batches can never double-place a chunk.
//  3. Execute — cluster.ExecutePlan writes each destination node's chunks
//     from its own goroutine; the simulated charge follows the paper's
//     Eq 6 (coordinator-local bytes at disk rate, the rest at network
//     rate).
//
// Both key types expose Hash() — an allocation-free FNV-1a over the packed
// bytes — which is the single hash the catalog shards, the extendible-hash
// directory and the consistent-hash ring all derive from (the latter two
// after a splitmix dispersal; CoordKey.Hash is position-only so congruent
// arrays collocate).
package array
