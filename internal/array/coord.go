package array

import (
	"fmt"
	"strconv"
	"strings"
)

// Coord is the position of a cell in logical array space, one value per
// dimension in schema order.
type Coord []int64

// Clone returns a copy of the coordinate.
func (c Coord) Clone() Coord { return append(Coord(nil), c...) }

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// ChunkCoord is the position of a chunk in the chunk grid: the 0-based chunk
// index along each dimension in schema order.
type ChunkCoord []int64

// Clone returns a copy of the chunk coordinate.
func (c ChunkCoord) Clone() ChunkCoord { return append(ChunkCoord(nil), c...) }

// Equal reports whether two chunk coordinates are identical.
func (c ChunkCoord) Equal(o ChunkCoord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Key renders the chunk coordinate as a compact, comparable map key.
func (c ChunkCoord) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}

func (c ChunkCoord) String() string { return "[" + c.Key() + "]" }

// Less imposes a total lexicographic order on chunk coordinates of equal
// dimensionality; used to keep placement iteration deterministic.
func (c ChunkCoord) Less(o ChunkCoord) bool {
	for i := range c {
		if i >= len(o) {
			return false
		}
		if c[i] != o[i] {
			return c[i] < o[i]
		}
	}
	return len(c) < len(o)
}

// ParseChunkCoord is the inverse of Key.
func ParseChunkCoord(key string) (ChunkCoord, error) {
	if key == "" {
		return nil, fmt.Errorf("array: empty chunk coordinate key")
	}
	parts := strings.Split(key, "/")
	cc := make(ChunkCoord, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("array: bad chunk coordinate key %q: %v", key, err)
		}
		cc[i] = v
	}
	return cc, nil
}

// ChunkRef globally identifies a chunk: the array it belongs to plus its
// position in that array's chunk grid. It is the handle partitioners and
// the cluster use; the chunk payload itself lives in a node's store.
type ChunkRef struct {
	Array  string
	Coords ChunkCoord
}

// Key renders the reference as a map key, unique across arrays.
func (r ChunkRef) Key() string { return r.Array + ":" + r.Coords.Key() }

func (r ChunkRef) String() string { return r.Key() }

// ParseChunkRef is the inverse of Key.
func ParseChunkRef(key string) (ChunkRef, error) {
	i := strings.IndexByte(key, ':')
	if i < 0 {
		return ChunkRef{}, fmt.Errorf("array: bad chunk ref key %q", key)
	}
	cc, err := ParseChunkCoord(key[i+1:])
	if err != nil {
		return ChunkRef{}, err
	}
	return ChunkRef{Array: key[:i], Coords: cc}, nil
}

// ChunkOf maps a cell coordinate to the chunk coordinate that contains it.
// It panics if the coordinate has the wrong dimensionality.
func (s *Schema) ChunkOf(cell Coord) ChunkCoord {
	if len(cell) != len(s.Dims) {
		panic(fmt.Sprintf("array: coordinate %v has %d dims, schema %s has %d", cell, len(cell), s.Name, len(s.Dims)))
	}
	cc := make(ChunkCoord, len(cell))
	for i, d := range s.Dims {
		cc[i] = d.ChunkIndex(cell[i])
	}
	return cc
}

// ChunkOrigin returns the smallest cell coordinate of the given chunk.
func (s *Schema) ChunkOrigin(cc ChunkCoord) Coord {
	o := make(Coord, len(cc))
	for i, d := range s.Dims {
		o[i] = d.ChunkOrigin(cc[i])
	}
	return o
}

// ChunkGridExtent returns, per dimension, the number of chunk slots of the
// bounded dimensions; unbounded dimensions report the extent needed to
// cover [Start, maxSeen] where maxSeen is supplied by the caller, or 1 if
// maxSeen predates Start.
func (s *Schema) ChunkGridExtent(maxSeen []int64) []int64 {
	ext := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		if d.Bounded() {
			ext[i] = d.NumChunks()
			continue
		}
		hi := d.Start
		if maxSeen != nil && maxSeen[i] > hi {
			hi = maxSeen[i]
		}
		ext[i] = d.ChunkIndex(hi) + 1
	}
	return ext
}

// ValidCell reports whether every coordinate lies inside the declared
// dimension ranges.
func (s *Schema) ValidCell(cell Coord) bool {
	if len(cell) != len(s.Dims) {
		return false
	}
	for i, d := range s.Dims {
		if !d.Contains(cell[i]) {
			return false
		}
	}
	return true
}

// ValidChunk reports whether the chunk coordinate addresses a chunk whose
// origin lies inside the declared ranges.
func (s *Schema) ValidChunk(cc ChunkCoord) bool {
	if len(cc) != len(s.Dims) {
		return false
	}
	for i, d := range s.Dims {
		if cc[i] < 0 {
			return false
		}
		if d.Bounded() && cc[i] >= d.NumChunks() {
			return false
		}
	}
	return true
}

// ChunkBounds returns the inclusive cell-coordinate bounds of the chunk:
// its origin and the last cell it can contain (clipped to bounded
// dimension ranges).
func (s *Schema) ChunkBounds(cc ChunkCoord) (lo, hi Coord) {
	lo = s.ChunkOrigin(cc)
	hi = make(Coord, len(cc))
	for i, d := range s.Dims {
		hi[i] = lo[i] + d.ChunkInterval - 1
		if d.Bounded() && hi[i] > d.End {
			hi[i] = d.End
		}
	}
	return lo, hi
}

// Neighbors returns the chunk coordinates adjacent to cc (±1 along each
// single dimension — the face neighbours used for halo exchange in windowed
// and nearest-neighbour queries), restricted to valid grid positions.
func (s *Schema) Neighbors(cc ChunkCoord) []ChunkCoord {
	var out []ChunkCoord
	for i := range cc {
		for _, delta := range [2]int64{-1, 1} {
			n := cc.Clone()
			n[i] += delta
			if s.ValidChunk(n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// ChunkDistance returns the Chebyshev (L∞) distance between two chunk
// coordinates; adjacent or identical chunks have distance ≤ 1.
func ChunkDistance(a, b ChunkCoord) int64 {
	var max int64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
