package array

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchema parses a SciDB-style array declaration of the form
//
//	Name<attr:type, attr:type, ...>[dim=lo:hi,interval, dim=lo:*,interval]
//
// It also accepts the comma form used in the paper's workload listings
// ("time=0,*,1440") where the range is written lo,hi,interval.
func ParseSchema(decl string) (*Schema, error) {
	decl = strings.TrimSpace(decl)
	lt := strings.IndexByte(decl, '<')
	gt := strings.IndexByte(decl, '>')
	lb := strings.IndexByte(decl, '[')
	rb := strings.LastIndexByte(decl, ']')
	if lt < 0 || gt < 0 || lb < 0 || rb < 0 || !(lt < gt && gt < lb && lb < rb) {
		return nil, fmt.Errorf("array: malformed schema declaration %q", decl)
	}
	name := strings.TrimSpace(decl[:lt])
	attrs, err := parseAttrs(decl[lt+1 : gt])
	if err != nil {
		return nil, fmt.Errorf("array: schema %q: %v", name, err)
	}
	dims, err := parseDims(decl[lb+1 : rb])
	if err != nil {
		return nil, fmt.Errorf("array: schema %q: %v", name, err)
	}
	return NewSchema(name, attrs, dims)
}

// MustParseSchema is ParseSchema that panics on error; for tests and
// literals.
func MustParseSchema(decl string) *Schema {
	s, err := ParseSchema(decl)
	if err != nil {
		panic(err)
	}
	return s
}

func parseAttrs(body string) ([]Attribute, error) {
	var attrs []Attribute
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed attribute %q (want name:type)", part)
		}
		t, err := ParseDataType(kv[1])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attribute{Name: strings.TrimSpace(kv[0]), Type: t})
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("no attributes declared")
	}
	return attrs, nil
}

func parseDims(body string) ([]Dimension, error) {
	var dims []Dimension
	for _, part := range splitDims(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed dimension %q (want name=lo:hi,interval)", part)
		}
		name := strings.TrimSpace(part[:eq])
		spec := strings.TrimSpace(part[eq+1:])
		d, err := parseDimSpec(name, spec)
		if err != nil {
			return nil, err
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("no dimensions declared")
	}
	return dims, nil
}

// splitDims splits the dimension list on commas that separate dimensions
// (i.e. commas followed eventually by an '='), since commas also appear
// inside each dimension spec.
func splitDims(body string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(body); i++ {
		if body[i] != ',' {
			continue
		}
		rest := body[i+1:]
		if j := strings.IndexByte(rest, '='); j >= 0 {
			// Only a dimension boundary if the text before '=' is a
			// plain identifier (no digits-only tokens or '*').
			tok := strings.TrimSpace(rest[:j])
			if isIdent(tok) {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseDimSpec(name, spec string) (Dimension, error) {
	var lo, hi, interval string
	if colon := strings.IndexByte(spec, ':'); colon >= 0 {
		// lo:hi,interval
		lo = spec[:colon]
		rest := spec[colon+1:]
		comma := strings.IndexByte(rest, ',')
		if comma < 0 {
			return Dimension{}, fmt.Errorf("dimension %s missing chunk interval in %q", name, spec)
		}
		hi = rest[:comma]
		interval = rest[comma+1:]
	} else {
		// lo,hi,interval (the paper's comma form)
		fields := strings.Split(spec, ",")
		if len(fields) != 3 {
			return Dimension{}, fmt.Errorf("dimension %s: want lo,hi,interval, got %q", name, spec)
		}
		lo, hi, interval = fields[0], fields[1], fields[2]
	}
	start, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return Dimension{}, fmt.Errorf("dimension %s: bad lower bound %q", name, lo)
	}
	var end int64
	if strings.TrimSpace(hi) == "*" {
		end = Unbounded
	} else {
		end, err = strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return Dimension{}, fmt.Errorf("dimension %s: bad upper bound %q", name, hi)
		}
	}
	iv, err := strconv.ParseInt(strings.TrimSpace(interval), 10, 64)
	if err != nil {
		return Dimension{}, fmt.Errorf("dimension %s: bad chunk interval %q", name, interval)
	}
	return Dimension{Name: name, Start: start, End: end, ChunkInterval: iv}, nil
}
