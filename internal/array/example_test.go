package array_test

import (
	"fmt"

	"repro/internal/array"
)

// ExampleParseSchema declares the paper's example array from Section 2.
func ExampleParseSchema() {
	s, err := array.ParseSchema("A<i:int32, j:float>[x=1:4,2, y=1:4,2]")
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	fmt.Println("dims:", s.NumDims(), "chunks per dim:", s.Dims[0].NumChunks())
	// Output:
	// A<i:int32,j:float>[x=1:4,2, y=1:4,2]
	// dims: 2 chunks per dim: 2
}

// ExampleSchema_ChunkOf shows the cell → chunk mapping.
func ExampleSchema_ChunkOf() {
	s := array.MustParseSchema("A<v:double>[x=1:4,2, y=1:4,2]")
	fmt.Println(s.ChunkOf(array.Coord{1, 1}))
	fmt.Println(s.ChunkOf(array.Coord{4, 4}))
	// Output:
	// [0/0]
	// [1/1]
}

// ExampleChunk builds the sparse chunk from the paper's Figure 1: only
// non-empty cells are stored, so the physical size tracks occupancy.
func ExampleChunk() {
	s := array.MustParseSchema("A<i:int32, j:float>[x=1:4,2, y=1:4,2]")
	ch := array.NewChunk(s, array.ChunkCoord{0, 0})
	ch.AppendCell(array.Coord{1, 1}, []array.CellValue{{Int: 1}, {Float: 1.3}})
	ch.AppendCell(array.Coord{2, 2}, []array.CellValue{{Int: 9}, {Float: 2.7}})
	fmt.Println("cells:", ch.Len(), "bytes:", ch.SizeBytes())
	// Output:
	// cells: 2 bytes: 48
}
