package array

import "fmt"

// Column is one vertical segment of a chunk: all the values of a single
// attribute for the chunk's non-empty cells, in cell order. Columns are the
// unit the paper's vertical partitioning (Section 2) accounts separately on
// disk.
type Column interface {
	// Type returns the scalar type stored in the column.
	Type() DataType
	// Len returns the number of values (== number of occupied cells).
	Len() int
	// SizeBytes returns the on-disk footprint of the segment.
	SizeBytes() int64
	// Float64 returns value i widened to float64. It panics for
	// non-numeric columns.
	Float64(i int) float64
	// Str returns value i rendered as a string. Defined for all types.
	Str(i int) string
	// Gather returns a new column holding the values at the given row
	// indexes, in order.
	Gather(rows []int) Column
	// AppendFrom appends value i of src (which must have the same
	// concrete type) to the column.
	AppendFrom(src Column, i int)
}

// IntColumn stores integer-family attributes (int32, int64, bool, char)
// widened to int64, remembering the declared type for size accounting.
type IntColumn struct {
	T    DataType
	Vals []int64
}

// NewIntColumn returns an empty integer column of the given declared type.
func NewIntColumn(t DataType) *IntColumn { return &IntColumn{T: t} }

// Type implements Column.
func (c *IntColumn) Type() DataType { return c.T }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.Vals) }

// SizeBytes implements Column.
func (c *IntColumn) SizeBytes() int64 { return int64(len(c.Vals)) * c.T.Size() }

// Float64 implements Column.
func (c *IntColumn) Float64(i int) float64 { return float64(c.Vals[i]) }

// Str implements Column.
func (c *IntColumn) Str(i int) string { return fmt.Sprintf("%d", c.Vals[i]) }

// Append adds a value to the column.
func (c *IntColumn) Append(v int64) { c.Vals = append(c.Vals, v) }

// Gather implements Column.
func (c *IntColumn) Gather(rows []int) Column {
	out := &IntColumn{T: c.T, Vals: make([]int64, 0, len(rows))}
	for _, r := range rows {
		out.Vals = append(out.Vals, c.Vals[r])
	}
	return out
}

// AppendFrom implements Column.
func (c *IntColumn) AppendFrom(src Column, i int) {
	s, ok := src.(*IntColumn)
	if !ok {
		panic(fmt.Sprintf("array: AppendFrom %T into *IntColumn", src))
	}
	c.Vals = append(c.Vals, s.Vals[i])
}

// FloatColumn stores float-family attributes (float32, float64) widened to
// float64, remembering the declared type for size accounting.
type FloatColumn struct {
	T    DataType
	Vals []float64
}

// NewFloatColumn returns an empty float column of the given declared type.
func NewFloatColumn(t DataType) *FloatColumn { return &FloatColumn{T: t} }

// Type implements Column.
func (c *FloatColumn) Type() DataType { return c.T }

// Len implements Column.
func (c *FloatColumn) Len() int { return len(c.Vals) }

// SizeBytes implements Column.
func (c *FloatColumn) SizeBytes() int64 { return int64(len(c.Vals)) * c.T.Size() }

// Float64 implements Column.
func (c *FloatColumn) Float64(i int) float64 { return c.Vals[i] }

// Str implements Column.
func (c *FloatColumn) Str(i int) string { return fmt.Sprintf("%g", c.Vals[i]) }

// Append adds a value to the column.
func (c *FloatColumn) Append(v float64) { c.Vals = append(c.Vals, v) }

// Gather implements Column.
func (c *FloatColumn) Gather(rows []int) Column {
	out := &FloatColumn{T: c.T, Vals: make([]float64, 0, len(rows))}
	for _, r := range rows {
		out.Vals = append(out.Vals, c.Vals[r])
	}
	return out
}

// AppendFrom implements Column.
func (c *FloatColumn) AppendFrom(src Column, i int) {
	s, ok := src.(*FloatColumn)
	if !ok {
		panic(fmt.Sprintf("array: AppendFrom %T into *FloatColumn", src))
	}
	c.Vals = append(c.Vals, s.Vals[i])
}

// StrColumn stores string attributes.
type StrColumn struct {
	Vals []string
}

// NewStrColumn returns an empty string column.
func NewStrColumn() *StrColumn { return &StrColumn{} }

// Type implements Column.
func (c *StrColumn) Type() DataType { return String }

// Len implements Column.
func (c *StrColumn) Len() int { return len(c.Vals) }

// SizeBytes implements Column.
func (c *StrColumn) SizeBytes() int64 {
	n := int64(len(c.Vals)) * String.Size()
	for _, v := range c.Vals {
		n += int64(len(v))
	}
	return n
}

// Float64 implements Column; string columns are not numeric.
func (c *StrColumn) Float64(i int) float64 {
	panic("array: Float64 on string column")
}

// Str implements Column.
func (c *StrColumn) Str(i int) string { return c.Vals[i] }

// Append adds a value to the column.
func (c *StrColumn) Append(v string) { c.Vals = append(c.Vals, v) }

// Gather implements Column.
func (c *StrColumn) Gather(rows []int) Column {
	out := &StrColumn{Vals: make([]string, 0, len(rows))}
	for _, r := range rows {
		out.Vals = append(out.Vals, c.Vals[r])
	}
	return out
}

// AppendFrom implements Column.
func (c *StrColumn) AppendFrom(src Column, i int) {
	s, ok := src.(*StrColumn)
	if !ok {
		panic(fmt.Sprintf("array: AppendFrom %T into *StrColumn", src))
	}
	c.Vals = append(c.Vals, s.Vals[i])
}

// NewColumn returns an empty column of the appropriate concrete type for t.
func NewColumn(t DataType) Column { return NewColumnCap(t, 0) }

// NewColumnCap returns an empty column preallocated for n values, so bulk
// appends (generators, Subset) grow the backing array once instead of
// doubling repeatedly.
func NewColumnCap(t DataType, n int) Column {
	switch t {
	case Int32, Int64, Bool, Char:
		return &IntColumn{T: t, Vals: make([]int64, 0, n)}
	case Float32, Float64:
		return &FloatColumn{T: t, Vals: make([]float64, 0, n)}
	case String:
		return &StrColumn{Vals: make([]string, 0, n)}
	default:
		panic(fmt.Sprintf("array: NewColumn of unknown type %v", t))
	}
}
