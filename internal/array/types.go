package array

import (
	"fmt"
	"strings"
)

// DataType enumerates the scalar attribute types supported by the array
// model. They mirror the SciDB types used by the paper's two workloads.
type DataType int

// Supported attribute types.
const (
	Int32 DataType = iota
	Int64
	Float32
	Float64
	Bool
	Char
	String
)

// Size returns the on-disk footprint in bytes of one value of the type.
// String is variable width; Size returns the per-value overhead and the
// column adds the byte length of each value on top.
func (t DataType) Size() int64 {
	switch t {
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	case Bool, Char:
		return 1
	case String:
		return 2 // length prefix; payload accounted per value
	default:
		return 8
	}
}

// Numeric reports whether values of the type can be read through
// Column.Float64.
func (t DataType) Numeric() bool {
	switch t {
	case Int32, Int64, Float32, Float64, Bool, Char:
		return true
	default:
		return false
	}
}

func (t DataType) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float"
	case Float64:
		return "double"
	case Bool:
		return "bool"
	case Char:
		return "char"
	case String:
		return "string"
	default:
		return fmt.Sprintf("DataType(%d)", int(t))
	}
}

// ParseDataType converts a SciDB-style type name to a DataType.
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int32", "int":
		return Int32, nil
	case "int64", "long":
		return Int64, nil
	case "float", "float32":
		return Float32, nil
	case "double", "float64":
		return Float64, nil
	case "bool":
		return Bool, nil
	case "char":
		return Char, nil
	case "string":
		return String, nil
	default:
		return 0, fmt.Errorf("array: unknown data type %q", s)
	}
}

// Attribute is a named, typed cell payload, as in a relational column
// declaration. Attributes are vertically partitioned on disk: each physical
// chunk segment stores exactly one attribute.
type Attribute struct {
	Name string
	Type DataType
}

// Unbounded marks a dimension with no declared upper bound, such as a time
// series that grows monotonically ("time=0:*").
const Unbounded int64 = 1<<62 - 1

// Dimension is a named, contiguous integer range of array space together
// with the chunk interval (stride) that slices it into chunks.
type Dimension struct {
	Name string
	// Start and End delimit the declared range, inclusive. End may be
	// Unbounded for monotonically growing dimensions.
	Start, End int64
	// ChunkInterval is the length of a chunk along this dimension in
	// logical cells. It must be positive.
	ChunkInterval int64
}

// Bounded reports whether the dimension has a declared upper bound.
func (d Dimension) Bounded() bool { return d.End != Unbounded }

// Extent returns the number of logical cells spanned by a bounded
// dimension. It panics on unbounded dimensions.
func (d Dimension) Extent() int64 {
	if !d.Bounded() {
		panic("array: Extent of unbounded dimension " + d.Name)
	}
	return d.End - d.Start + 1
}

// NumChunks returns how many chunks a bounded dimension is divided into.
// It panics on unbounded dimensions.
func (d Dimension) NumChunks() int64 {
	e := d.Extent()
	return (e + d.ChunkInterval - 1) / d.ChunkInterval
}

// ChunkIndex maps a cell coordinate along this dimension to its chunk index
// (0-based position in the chunk grid).
func (d Dimension) ChunkIndex(v int64) int64 {
	return (v - d.Start) / d.ChunkInterval
}

// ChunkOrigin returns the smallest cell coordinate of chunk index ci along
// this dimension.
func (d Dimension) ChunkOrigin(ci int64) int64 {
	return d.Start + ci*d.ChunkInterval
}

// Contains reports whether cell coordinate v lies inside the declared range.
func (d Dimension) Contains(v int64) bool {
	if v < d.Start {
		return false
	}
	return !d.Bounded() || v <= d.End
}

// Schema is the logical declaration of an array: a name, a list of typed
// attributes and a list of chunked dimensions. A Schema is immutable after
// construction; all methods are safe for concurrent use.
type Schema struct {
	Name  string
	Attrs []Attribute
	Dims  []Dimension

	// id is the interned array identity, set by NewSchema so hot-path key
	// packing never consults the intern table.
	id ArrayID
}

// ID returns the interned array identity. Schemas built by NewSchema carry
// it precomputed; for hand-assembled values it falls back to the intern
// table without caching (so the method stays safe for concurrent use).
func (s *Schema) ID() ArrayID {
	if s.id != 0 {
		return s.id
	}
	return InternArrayName(s.Name)
}

// NewSchema validates and returns a schema. It rejects empty names,
// duplicate attribute or dimension names, non-positive chunk intervals, and
// inverted ranges.
func NewSchema(name string, attrs []Attribute, dims []Dimension) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("array: schema name must not be empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("array: schema %s needs at least one attribute", name)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("array: schema %s needs at least one dimension", name)
	}
	if len(dims) > MaxKeyDims {
		// Packed chunk keys (see doc.go) carry at most MaxKeyDims
		// coordinates; rejecting wider schemas here keeps every
		// schema-derived coordinate packable.
		return nil, fmt.Errorf("array: schema %s has %d dimensions, max %d", name, len(dims), MaxKeyDims)
	}
	seen := make(map[string]bool, len(attrs)+len(dims))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("array: schema %s has an unnamed attribute", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("array: schema %s repeats name %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	for _, d := range dims {
		if d.Name == "" {
			return nil, fmt.Errorf("array: schema %s has an unnamed dimension", name)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("array: schema %s repeats name %q", name, d.Name)
		}
		seen[d.Name] = true
		if d.ChunkInterval <= 0 {
			return nil, fmt.Errorf("array: schema %s dimension %s has non-positive chunk interval %d", name, d.Name, d.ChunkInterval)
		}
		if d.Bounded() && d.End < d.Start {
			return nil, fmt.Errorf("array: schema %s dimension %s has inverted range [%d,%d]", name, d.Name, d.Start, d.End)
		}
	}
	s := &Schema{
		Name:  name,
		Attrs: append([]Attribute(nil), attrs...),
		Dims:  append([]Dimension(nil), dims...),
		id:    InternArrayName(name),
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(name string, attrs []Attribute, dims []Dimension) *Schema {
	s, err := NewSchema(name, attrs, dims)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDims returns the dimensionality of the array.
func (s *Schema) NumDims() int { return len(s.Dims) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema in SciDB declaration syntax, e.g.
// "A<i:int32,j:float>[x=1:4,2, y=1:4,2]".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('<')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Type)
	}
	b.WriteString(">[")
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		if d.Bounded() {
			fmt.Fprintf(&b, "%s=%d:%d,%d", d.Name, d.Start, d.End, d.ChunkInterval)
		} else {
			fmt.Fprintf(&b, "%s=%d:*,%d", d.Name, d.Start, d.ChunkInterval)
		}
	}
	b.WriteByte(']')
	return b.String()
}
