package array

import (
	"strings"
	"testing"
)

func TestDataTypeSize(t *testing.T) {
	cases := []struct {
		t    DataType
		want int64
	}{
		{Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8}, {Bool, 1}, {Char, 1}, {String, 2},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDataTypeNumeric(t *testing.T) {
	if String.Numeric() {
		t.Error("String should not be numeric")
	}
	for _, dt := range []DataType{Int32, Int64, Float32, Float64, Bool, Char} {
		if !dt.Numeric() {
			t.Errorf("%v should be numeric", dt)
		}
	}
}

func TestParseDataType(t *testing.T) {
	for _, s := range []string{"int32", "int64", "float", "double", "bool", "char", "string", "INT32", " int "} {
		if _, err := ParseDataType(s); err != nil {
			t.Errorf("ParseDataType(%q): %v", s, err)
		}
	}
	if _, err := ParseDataType("varchar"); err == nil {
		t.Error("ParseDataType(varchar) should fail")
	}
}

func TestDataTypeRoundTrip(t *testing.T) {
	for _, dt := range []DataType{Int32, Int64, Float32, Float64, Bool, Char, String} {
		got, err := ParseDataType(dt.String())
		if err != nil {
			t.Fatalf("ParseDataType(%v.String()): %v", dt, err)
		}
		if got != dt {
			t.Errorf("round trip %v -> %q -> %v", dt, dt.String(), got)
		}
	}
}

func TestDimensionChunkMath(t *testing.T) {
	d := Dimension{Name: "x", Start: 1, End: 4, ChunkInterval: 2}
	if !d.Bounded() {
		t.Fatal("d should be bounded")
	}
	if got := d.Extent(); got != 4 {
		t.Errorf("Extent = %d, want 4", got)
	}
	if got := d.NumChunks(); got != 2 {
		t.Errorf("NumChunks = %d, want 2", got)
	}
	for _, c := range []struct{ v, want int64 }{{1, 0}, {2, 0}, {3, 1}, {4, 1}} {
		if got := d.ChunkIndex(c.v); got != c.want {
			t.Errorf("ChunkIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := d.ChunkOrigin(1); got != 3 {
		t.Errorf("ChunkOrigin(1) = %d, want 3", got)
	}
}

func TestDimensionUnevenChunks(t *testing.T) {
	// Extent 181 (longitude -90..90) with stride 12 → 16 chunks, last partial.
	d := Dimension{Name: "lat", Start: -90, End: 90, ChunkInterval: 12}
	if got := d.NumChunks(); got != 16 {
		t.Errorf("NumChunks = %d, want 16", got)
	}
	if got := d.ChunkIndex(90); got != 15 {
		t.Errorf("ChunkIndex(90) = %d, want 15", got)
	}
	if got := d.ChunkIndex(-90); got != 0 {
		t.Errorf("ChunkIndex(-90) = %d, want 0", got)
	}
}

func TestDimensionUnbounded(t *testing.T) {
	d := Dimension{Name: "time", Start: 0, End: Unbounded, ChunkInterval: 1440}
	if d.Bounded() {
		t.Fatal("time should be unbounded")
	}
	if !d.Contains(1 << 40) {
		t.Error("unbounded dim should contain large values")
	}
	if d.Contains(-1) {
		t.Error("dim should not contain values below Start")
	}
	defer func() {
		if recover() == nil {
			t.Error("Extent of unbounded dim should panic")
		}
	}()
	_ = d.Extent()
}

func TestNewSchemaValidation(t *testing.T) {
	attrs := []Attribute{{Name: "v", Type: Float64}}
	dims := []Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 2}}
	if _, err := NewSchema("", attrs, dims); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema("A", nil, dims); err == nil {
		t.Error("no attrs should fail")
	}
	if _, err := NewSchema("A", attrs, nil); err == nil {
		t.Error("no dims should fail")
	}
	if _, err := NewSchema("A", attrs, []Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 0}}); err == nil {
		t.Error("zero chunk interval should fail")
	}
	if _, err := NewSchema("A", attrs, []Dimension{{Name: "x", Start: 9, End: 0, ChunkInterval: 2}}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewSchema("A", []Attribute{{Name: "x", Type: Int32}}, dims); err == nil {
		t.Error("attr/dim name collision should fail")
	}
	if _, err := NewSchema("A", attrs, dims); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestSchemaLookups(t *testing.T) {
	s := MustSchema("A",
		[]Attribute{{Name: "i", Type: Int32}, {Name: "j", Type: Float32}},
		[]Dimension{{Name: "x", Start: 1, End: 4, ChunkInterval: 2}, {Name: "y", Start: 1, End: 4, ChunkInterval: 2}})
	if got := s.AttrIndex("j"); got != 1 {
		t.Errorf("AttrIndex(j) = %d, want 1", got)
	}
	if got := s.AttrIndex("zz"); got != -1 {
		t.Errorf("AttrIndex(zz) = %d, want -1", got)
	}
	if got := s.DimIndex("y"); got != 1 {
		t.Errorf("DimIndex(y) = %d, want 1", got)
	}
	if got := s.NumDims(); got != 2 {
		t.Errorf("NumDims = %d, want 2", got)
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema("A",
		[]Attribute{{Name: "i", Type: Int32}, {Name: "j", Type: Float32}},
		[]Dimension{{Name: "x", Start: 1, End: 4, ChunkInterval: 2}, {Name: "t", Start: 0, End: Unbounded, ChunkInterval: 10}})
	got := s.String()
	for _, want := range []string{"A<", "i:int32", "j:float", "x=1:4,2", "t=0:*,10"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
