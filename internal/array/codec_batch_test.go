package array

import (
	"bytes"
	"io"
	"testing"
)

// batchSchemas builds two congruent schemas so a batch can mix arrays, the
// way one rebalance receiver's batch can.
func batchSchemas() (*Schema, *Schema) {
	a := testSchema()
	b := MustSchema("B2",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "x", Start: 0, End: 9, ChunkInterval: 5},
			{Name: "y", Start: 0, End: 9, ChunkInterval: 5},
		})
	return a, b
}

func TestEncodeDecodeChunkBatchRoundTrip(t *testing.T) {
	a, b := batchSchemas()
	chunks := []*Chunk{
		fillChunk(t, a, ChunkCoord{0, 0}, 7),
		fillChunk(t, a, ChunkCoord{1, 1}, 13),
	}
	bc := NewChunk(b, ChunkCoord{1, 0})
	bc.AppendCell(Coord{5, 0}, []CellValue{{Float: 2.5}})
	chunks = append(chunks, bc)

	wire, err := EncodeChunkBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*Schema, bool) {
		switch name {
		case a.Name:
			return a, true
		case b.Name:
			return b, true
		}
		return nil, false
	}
	back, err := DecodeChunkBatch(lookup, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(chunks) {
		t.Fatalf("decoded %d chunks, want %d", len(back), len(chunks))
	}
	// Each decoded chunk must be payload-identical to a single-chunk
	// round-trip of the original: the batch is pure framing.
	for i, c := range chunks {
		want, err := EncodeChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeChunk(back[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("chunk %d payload diverged through the batch codec", i)
		}
		if back[i].Schema.Name != c.Schema.Name || !back[i].Coords.Equal(c.Coords) {
			t.Errorf("chunk %d identity diverged: %s%v vs %s%v",
				i, back[i].Schema.Name, back[i].Coords, c.Schema.Name, c.Coords)
		}
	}
}

func TestEncodeChunkBatchEmpty(t *testing.T) {
	wire, err := EncodeChunkBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeChunkBatch(func(string) (*Schema, bool) { return nil, false }, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty batch decoded to %d chunks", len(back))
	}
}

// TestChunkBatchReaderStreams drains a mixed-array batch one chunk at a
// time and pins every step — counts, identities, payloads and the EOF
// tail-check — against the all-at-once decode.
func TestChunkBatchReaderStreams(t *testing.T) {
	a, b := batchSchemas()
	chunks := []*Chunk{
		fillChunk(t, a, ChunkCoord{0, 0}, 7),
		fillChunk(t, a, ChunkCoord{1, 1}, 13),
	}
	bc := NewChunk(b, ChunkCoord{1, 0})
	bc.AppendCell(Coord{5, 0}, []CellValue{{Float: 2.5}})
	chunks = append(chunks, bc)
	wire, err := EncodeChunkBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*Schema, bool) {
		switch name {
		case a.Name:
			return a, true
		case b.Name:
			return b, true
		}
		return nil, false
	}
	dec, err := NewChunkBatchReader(lookup, wire)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != len(chunks) {
		t.Fatalf("reader reports %d chunks, want %d", dec.Len(), len(chunks))
	}
	for i, c := range chunks {
		if got := dec.Remaining(); got != len(chunks)-i {
			t.Fatalf("before chunk %d: %d remaining, want %d", i, got, len(chunks)-i)
		}
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		want, _ := EncodeChunk(c)
		enc, _ := EncodeChunk(got)
		if !bytes.Equal(enc, want) {
			t.Errorf("chunk %d payload diverged through the streaming decode", i)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("drained reader should return io.EOF, got %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatal("drained reader reports chunks remaining")
	}
}

// TestChunkBatchReaderTrailingBytes: the tail check fires on the Next that
// crosses the end, exactly like the all-at-once decode.
func TestChunkBatchReaderTrailingBytes(t *testing.T) {
	a, _ := batchSchemas()
	lookup := func(name string) (*Schema, bool) {
		if name == a.Name {
			return a, true
		}
		return nil, false
	}
	wire, err := EncodeChunkBatch([]*Chunk{fillChunk(t, a, ChunkCoord{0, 1}, 4)})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewChunkBatchReader(lookup, append(append([]byte(nil), wire...), 0xff))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Fatalf("trailing bytes should fail the final Next, got %v", err)
	}
}

func TestDecodeChunkBatchRejects(t *testing.T) {
	a, _ := batchSchemas()
	lookup := func(name string) (*Schema, bool) {
		if name == a.Name {
			return a, true
		}
		return nil, false
	}
	if _, err := DecodeChunkBatch(lookup, []byte{9, 9, 9}); err == nil {
		t.Error("garbage should not decode")
	}
	wire, err := EncodeChunkBatch([]*Chunk{fillChunk(t, a, ChunkCoord{0, 1}, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChunkBatch(lookup, wire[:len(wire)-3]); err == nil {
		t.Error("truncated batch should not decode")
	}
	if _, err := DecodeChunkBatch(lookup, append(append([]byte(nil), wire...), 0)); err == nil {
		t.Error("trailing bytes should not decode")
	}
	if _, err := DecodeChunkBatch(func(string) (*Schema, bool) { return nil, false }, wire); err == nil {
		t.Error("unknown array should not decode")
	}
}
