package array

import (
	"math/rand"
	"testing"
)

func benchChunk(b *testing.B, cells int) *Chunk {
	b.Helper()
	s := MustSchema("B",
		[]Attribute{{Name: "v", Type: Float64}, {Name: "i", Type: Int32}},
		[]Dimension{
			{Name: "t", Start: 0, End: Unbounded, ChunkInterval: 100},
			{Name: "x", Start: 0, End: 1023, ChunkInterval: 32},
		})
	c := NewChunk(s, ChunkCoord{0, 0})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < cells; i++ {
		c.AppendCell(Coord{rng.Int63n(100), rng.Int63n(32)}, []CellValue{
			{Float: rng.Float64()}, {Int: rng.Int63n(1000)},
		})
	}
	return c
}

func BenchmarkEncodeChunk(b *testing.B) {
	c := benchChunk(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeChunk(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeChunk(b *testing.B) {
	c := benchChunk(b, 1000)
	data, err := EncodeChunk(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeChunk(c.Schema, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkOf(b *testing.B) {
	s := benchChunk(b, 1).Schema
	cell := Coord{55, 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ChunkOf(cell)
	}
}

func BenchmarkAppendCell(b *testing.B) {
	s := benchChunk(b, 1).Schema
	vals := []CellValue{{Float: 1.5}, {Int: 7}}
	b.ResetTimer()
	c := NewChunk(s, ChunkCoord{0, 0})
	for i := 0; i < b.N; i++ {
		c.AppendCell(Coord{int64(i % 100), int64(i % 32)}, vals)
	}
}

func BenchmarkFilter(b *testing.B) {
	c := benchChunk(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Filter(func(cell Coord) bool { return cell[1] >= 16 })
	}
}

func BenchmarkParseSchema(b *testing.B) {
	decl := "Band<si:int32, radiance:double>[time=0:*,1440, longitude=-180:180,12, latitude=-90:90,12]"
	for i := 0; i < b.N; i++ {
		if _, err := ParseSchema(decl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellIter measures a full scan over a chunk's occupied cells —
// the inner loop of every query operator — via the no-alloc CellInto (the
// string-key-era loop called Cell, allocating one Coord per cell).
func BenchmarkCellIter(b *testing.B) {
	c := benchChunk(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		cell := make(Coord, 0, 2)
		for j := 0; j < c.Len(); j++ {
			cell = c.CellInto(j, cell)
			sum += cell[0] + cell[1]
		}
	}
	_ = sum
}
