package array

import (
	"fmt"
	"sort"
)

// Chunk is an n-dimensional subarray: the unit of I/O, memory allocation and
// — for the elasticity layer — placement and migration. A chunk stores only
// its non-empty cells, columnar: one int64 column per dimension holding the
// cell coordinates, and one vertical segment (Column) per attribute.
//
// Physical chunk size is therefore a function of occupancy, not of the
// declared chunk volume, which is what makes storage skew (dense port
// chunks, empty open-ocean chunks) visible to the partitioners.
type Chunk struct {
	Schema *Schema
	Coords ChunkCoord

	// DimCols[d][i] is the d-th coordinate of occupied cell i.
	DimCols [][]int64
	// AttrCols[a] is the vertical segment of attribute a.
	AttrCols []Column

	// key is the packed identity, computed once at construction so the
	// placement hot path (catalog inserts, ownership lookups) never
	// rebuilds it.
	key ChunkKey
}

// NewChunk returns an empty chunk at the given grid position.
func NewChunk(s *Schema, cc ChunkCoord) *Chunk { return NewChunkCap(s, cc, 0) }

// NewChunkCap returns an empty chunk preallocated for n cells: dimension
// and attribute columns grow once instead of doubling through repeated
// appends. n is a hint, not a limit.
func NewChunkCap(s *Schema, cc ChunkCoord, n int) *Chunk {
	if !s.ValidChunk(cc) {
		panic(fmt.Sprintf("array: chunk coordinate %v outside %s grid", cc, s.Name))
	}
	c := &Chunk{Schema: s, Coords: cc.Clone(), key: MakeChunkKey(s.ID(), cc.Packed())}
	c.DimCols = make([][]int64, len(s.Dims))
	for d := range c.DimCols {
		c.DimCols[d] = make([]int64, 0, n)
	}
	c.AttrCols = make([]Column, len(s.Attrs))
	for i, a := range s.Attrs {
		c.AttrCols[i] = NewColumnCap(a.Type, n)
	}
	return c
}

// Ref returns the chunk's global identity in reference form.
func (c *Chunk) Ref() ChunkRef { return ChunkRef{Array: c.Schema.Name, Coords: c.Coords} }

// Key returns the chunk's packed identity without allocating. For
// hand-assembled chunks (no NewChunk) it packs on demand without caching,
// so the method stays safe for concurrent use. The cached fast path is
// small enough to inline into ingest loops.
func (c *Chunk) Key() ChunkKey {
	if c.key.IsZero() {
		return c.keySlow()
	}
	return c.key
}

func (c *Chunk) keySlow() ChunkKey { return c.Ref().Packed() }

// Len returns the number of occupied cells.
func (c *Chunk) Len() int {
	if len(c.DimCols) == 0 {
		return 0
	}
	return len(c.DimCols[0])
}

// SizeBytes returns the physical footprint: coordinate columns plus every
// vertical attribute segment.
func (c *Chunk) SizeBytes() int64 {
	var n int64
	for range c.DimCols {
		n += int64(c.Len()) * 8
	}
	for _, col := range c.AttrCols {
		n += col.SizeBytes()
	}
	return n
}

// AttrSizeBytes returns the footprint of one vertical segment, the quantity
// a column-projecting query actually reads.
func (c *Chunk) AttrSizeBytes(attr int) int64 {
	return c.AttrCols[attr].SizeBytes()
}

// ProjectedSizeBytes returns coordinate columns plus the named attribute
// segments only — the bytes a query touching that attribute subset scans.
func (c *Chunk) ProjectedSizeBytes(attrs []int) int64 {
	n := int64(len(c.DimCols)) * int64(c.Len()) * 8
	for _, a := range attrs {
		n += c.AttrCols[a].SizeBytes()
	}
	return n
}

// Cell returns the coordinate of occupied cell i.
func (c *Chunk) Cell(i int) Coord {
	return c.CellInto(i, make(Coord, 0, len(c.DimCols)))
}

// CellInto writes the coordinate of occupied cell i into buf (reusing its
// capacity) and returns it — the allocation-free variant of Cell for scan
// loops. Pass the previous iteration's return value as buf.
func (c *Chunk) CellInto(i int, buf Coord) Coord {
	buf = buf[:0]
	for d := range c.DimCols {
		buf = append(buf, c.DimCols[d][i])
	}
	return buf
}

// AppendIntCell adds a cell whose attribute values are all integer-family.
// Provided as a fast path for generators; mixed-type cells use AppendCell.
func (c *Chunk) AppendIntCell(cell Coord, vals []int64) {
	c.appendCoords(cell)
	for a, col := range c.AttrCols {
		col.(*IntColumn).Append(vals[a])
	}
}

// CellValue is one attribute value of a cell being appended.
type CellValue struct {
	Int   int64
	Float float64
	Str   string
}

// AppendCell adds one occupied cell with the given per-attribute values.
// The value field read from each CellValue follows the attribute's type.
func (c *Chunk) AppendCell(cell Coord, vals []CellValue) {
	if len(vals) != len(c.AttrCols) {
		panic(fmt.Sprintf("array: AppendCell with %d values, schema %s has %d attrs", len(vals), c.Schema.Name, len(c.AttrCols)))
	}
	c.appendCoords(cell)
	for a, col := range c.AttrCols {
		switch col := col.(type) {
		case *IntColumn:
			col.Append(vals[a].Int)
		case *FloatColumn:
			col.Append(vals[a].Float)
		case *StrColumn:
			col.Append(vals[a].Str)
		}
	}
}

func (c *Chunk) appendCoords(cell Coord) {
	if len(cell) != len(c.DimCols) {
		panic(fmt.Sprintf("array: cell %v has %d dims, chunk has %d", cell, len(cell), len(c.DimCols)))
	}
	if c.Schema.PackedChunkOf(cell) != c.Key().Coord() {
		panic(fmt.Sprintf("array: cell %v belongs to chunk %v, not %v", cell, c.Schema.ChunkOf(cell), c.Coords))
	}
	for d := range c.DimCols {
		c.DimCols[d] = append(c.DimCols[d], cell[d])
	}
}

// Filter returns the row indexes of cells for which keep returns true.
func (c *Chunk) Filter(keep func(cell Coord) bool) []int {
	var rows []int
	cell := make(Coord, 0, len(c.DimCols))
	for i := 0; i < c.Len(); i++ {
		cell = c.CellInto(i, cell)
		if keep(cell) {
			rows = append(rows, i)
		}
	}
	return rows
}

// Subset returns a new chunk holding only the given rows (used by selection
// operators); the result shares no storage with the receiver.
func (c *Chunk) Subset(rows []int) *Chunk {
	out := NewChunkCap(c.Schema, c.Coords, len(rows))
	for d := range c.DimCols {
		col := out.DimCols[d]
		for _, r := range rows {
			col = append(col, c.DimCols[d][r])
		}
		out.DimCols[d] = col
	}
	for a := range c.AttrCols {
		out.AttrCols[a] = c.AttrCols[a].Gather(rows)
	}
	return out
}

// Validate checks internal consistency: equal column lengths and every cell
// inside this chunk's extent. It is used by tests and by the storage layer
// after deserialisation.
func (c *Chunk) Validate() error {
	n := c.Len()
	for d := range c.DimCols {
		if len(c.DimCols[d]) != n {
			return fmt.Errorf("array: chunk %s dim %d has %d values, want %d", c.Ref(), d, len(c.DimCols[d]), n)
		}
	}
	for a, col := range c.AttrCols {
		if col.Len() != n {
			return fmt.Errorf("array: chunk %s attr %d has %d values, want %d", c.Ref(), a, col.Len(), n)
		}
	}
	want := c.Key().Coord()
	cell := make(Coord, 0, len(c.DimCols))
	for i := 0; i < n; i++ {
		cell = c.CellInto(i, cell)
		if !c.Schema.ValidCell(cell) {
			return fmt.Errorf("array: chunk %s cell %v outside schema range", c.Ref(), cell)
		}
		if c.Schema.PackedChunkOf(cell) != want {
			return fmt.Errorf("array: chunk %s holds cell %v that belongs to %v", c.Ref(), cell, c.Schema.ChunkOf(cell))
		}
	}
	return nil
}

// ChunkInfo is the placement-relevant metadata of a chunk: identity,
// grid position and physical size. Partitioners see ChunkInfo, never
// payloads.
type ChunkInfo struct {
	Ref  ChunkRef
	Size int64
}

// SortChunkInfos orders infos by array name then chunk coordinate, the
// canonical deterministic order used everywhere placement decisions iterate
// over chunk sets.
func SortChunkInfos(infos []ChunkInfo) {
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i].Ref, infos[j].Ref
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		return a.Coords.Less(b.Coords)
	})
}
