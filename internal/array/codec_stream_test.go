package array

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// TestChunkBatchWriterMatchesEncodeChunkBatch pins the streaming encoder's
// output byte-identical to the one-shot batch encoder: the writer is pure
// framing, so pointing it at a buffer must reproduce EncodeChunkBatch
// exactly — the property the TCP wire protocol relies on.
func TestChunkBatchWriterMatchesEncodeChunkBatch(t *testing.T) {
	a, b := batchSchemas()
	chunks := []*Chunk{
		fillChunk(t, a, ChunkCoord{0, 0}, 7),
		fillChunk(t, a, ChunkCoord{1, 1}, 13),
	}
	bc := NewChunk(b, ChunkCoord{1, 0})
	bc.AppendCell(Coord{5, 0}, []CellValue{{Float: 2.5}})
	chunks = append(chunks, bc)

	want, err := EncodeChunkBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	bw, err := NewChunkBatchWriter(&got, len(chunks))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := bw.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("streamed batch differs from EncodeChunkBatch (%d vs %d bytes)", got.Len(), len(want))
	}
	if bw.Written() != len(chunks) {
		t.Fatalf("Written = %d, want %d", bw.Written(), len(chunks))
	}
}

// TestChunkBatchWriterCountEnforced pins the declared-count contract: extra
// writes are rejected and Close refuses a short batch, so a truncated
// stream can never pass for a complete one.
func TestChunkBatchWriterCountEnforced(t *testing.T) {
	a := testSchema()
	ch := fillChunk(t, a, ChunkCoord{0, 0}, 3)

	var buf bytes.Buffer
	bw, err := NewChunkBatchWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("Close accepted a batch short of its declared count")
	}
	if err := bw.Write(ch); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(fillChunk(t, a, ChunkCoord{1, 1}, 2)); err == nil {
		t.Fatal("Write accepted a chunk beyond the declared count")
	}
}

// TestChunkBatchStreamDecodesOffArbitraryReaders drives the stream decoder
// through a pathological one-byte-at-a-time reader — the socket case where
// frames arrive in arbitrary fragments — and requires payload-identical
// chunks.
func TestChunkBatchStreamDecodesOffArbitraryReaders(t *testing.T) {
	a, b := batchSchemas()
	bc := NewChunk(b, ChunkCoord{0, 1})
	bc.AppendCell(Coord{2, 6}, []CellValue{{Float: -3.25}})
	bc.AppendCell(Coord{3, 7}, []CellValue{{Float: 11.5}})
	chunks := []*Chunk{
		fillChunk(t, a, ChunkCoord{0, 0}, 9),
		bc,
	}
	wire, err := EncodeChunkBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*Schema, bool) {
		switch name {
		case a.Name:
			return a, true
		case b.Name:
			return b, true
		}
		return nil, false
	}
	d, err := NewChunkBatchStream(lookup, iotest.OneByteReader(bytes.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(chunks) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(chunks))
	}
	for i, want := range chunks {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		we, _ := EncodeChunk(want)
		ge, _ := EncodeChunk(got)
		if !bytes.Equal(we, ge) {
			t.Fatalf("chunk %d differs after stream decode", i)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

// TestChunkBatchStreamTruncated pins that a stream cut mid-chunk surfaces
// a decode error, not a silent short batch.
func TestChunkBatchStreamTruncated(t *testing.T) {
	a := testSchema()
	chunks := []*Chunk{fillChunk(t, a, ChunkCoord{0, 0}, 9)}
	wire, err := EncodeChunkBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*Schema, bool) { return a, name == a.Name }
	d, err := NewChunkBatchStream(lookup, bytes.NewReader(wire[:len(wire)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next on truncated stream = %v, want decode error", err)
	}
}
