package array

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MaxKeyDims is the largest dimensionality a packed chunk key can carry.
// Both of the paper's workloads (and every array in this repository) are
// 2- or 3-dimensional; four slots leave headroom without giving up the
// fixed-size, comparable representation the placement hot path relies on.
const MaxKeyDims = 4

// ArrayID is the interned identity of an array name. IDs are assigned in
// registration order starting at 1; the zero value is invalid and marks an
// unset key.
type ArrayID uint32

// arrayReg is the process-wide array-name intern table. Names are never
// unregistered: the set of arrays in a simulation is tiny (a handful of
// schemas) and stable for the life of the process. Reads are lock-free —
// the table is copy-on-write, so the hot path (ChunkRef.Packed on every
// ownership lookup) is a single atomic load plus a map probe.
var arrayReg = struct {
	mu     sync.Mutex // serialises writers only
	byName atomic.Pointer[map[string]ArrayID]
	names  atomic.Pointer[[]string] // (*names)[id-1] == name
}{}

func init() {
	empty := make(map[string]ArrayID)
	arrayReg.byName.Store(&empty)
	names := []string{}
	arrayReg.names.Store(&names)
}

// InternArrayName returns the stable ArrayID for the name, assigning one on
// first use. The fast path is a lock-free map lookup with no allocation.
func InternArrayName(name string) ArrayID {
	if id, ok := (*arrayReg.byName.Load())[name]; ok {
		return id
	}
	arrayReg.mu.Lock()
	defer arrayReg.mu.Unlock()
	oldIDs := *arrayReg.byName.Load()
	if id, ok := oldIDs[name]; ok {
		return id
	}
	oldNames := *arrayReg.names.Load()
	names := append(append(make([]string, 0, len(oldNames)+1), oldNames...), name)
	id := ArrayID(len(names))
	ids := make(map[string]ArrayID, len(oldIDs)+1)
	for k, v := range oldIDs {
		ids[k] = v
	}
	ids[name] = id
	arrayReg.names.Store(&names)
	arrayReg.byName.Store(&ids)
	return id
}

// Name resolves the interned name. The zero (invalid) ID resolves to "".
func (id ArrayID) Name() string {
	names := *arrayReg.names.Load()
	if id == 0 || int(id) > len(names) {
		return ""
	}
	return names[id-1]
}

// CoordKey is a fixed-size, comparable packing of a coordinate of up to
// MaxKeyDims dimensions — usable directly as a map key with no per-lookup
// allocation. It packs cell coordinates (Coord) and chunk-grid coordinates
// (ChunkCoord) alike; negative values are preserved verbatim.
type CoordKey struct {
	n uint8
	c [MaxKeyDims]int64
}

// PackCoords packs a coordinate slice, rejecting dimensionalities the
// fixed-size key cannot represent.
func PackCoords(vs []int64) (CoordKey, error) {
	if len(vs) > MaxKeyDims {
		return CoordKey{}, fmt.Errorf("array: cannot pack %d-dimensional coordinate %v into a key (max %d dims)", len(vs), vs, MaxKeyDims)
	}
	var k CoordKey
	k.n = uint8(len(vs))
	copy(k.c[:], vs)
	return k, nil
}

// Packed packs the chunk coordinate. It panics when the coordinate exceeds
// MaxKeyDims dimensions, which NewSchema rules out for schema-derived
// coordinates.
func (c ChunkCoord) Packed() CoordKey {
	k, err := PackCoords(c)
	if err != nil {
		panic(err)
	}
	return k
}

// Packed packs the cell coordinate (same representation as chunk-grid
// coordinates; the two never share a map).
func (c Coord) Packed() CoordKey {
	k, err := PackCoords(c)
	if err != nil {
		panic(err)
	}
	return k
}

// NumDims returns the packed dimensionality.
func (k CoordKey) NumDims() int { return int(k.n) }

// At returns the coordinate along dimension d.
func (k CoordKey) At(d int) int64 {
	if d < 0 || d >= int(k.n) {
		panic(fmt.Sprintf("array: coord key dimension %d out of range (key has %d)", d, k.n))
	}
	return k.c[d]
}

// Coords unpacks to a freshly allocated chunk coordinate.
func (k CoordKey) Coords() ChunkCoord {
	out := make(ChunkCoord, k.n)
	copy(out, k.c[:k.n])
	return out
}

// AppendTo unpacks into dst (reusing its capacity) and returns the result —
// the allocation-free counterpart of Coords.
func (k CoordKey) AppendTo(dst []int64) []int64 {
	return append(dst[:0], k.c[:k.n]...)
}

// Less imposes the canonical lexicographic-by-dimension order used wherever
// placement code iterates coordinate sets deterministically. Unlike string
// key ordering it is numeric: chunk 2 sorts before chunk 10.
func (k CoordKey) Less(o CoordKey) bool {
	n := k.n
	if o.n < n {
		n = o.n
	}
	for i := uint8(0); i < n; i++ {
		if k.c[i] != o.c[i] {
			return k.c[i] < o.c[i]
		}
	}
	return k.n < o.n
}

func (k CoordKey) String() string { return k.Coords().String() }

// FNV-1a parameters for the key hashes below.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnvWord folds one 64-bit word into a running FNV-1a-style hash with a
// single xor-multiply — one multiply per word instead of eight per-byte
// rounds, which matters on the ingest hot path where every catalog probe
// hashes a key. Word-wise folding weakens low-bit avalanche relative to
// byte-wise FNV, so every consumer finishes the hash: the catalog folds
// the high half down before masking a shard, and the placement schemes run
// the result through a splitmix finalizer.
func fnvWord(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime64
}

// Hash returns a 64-bit hash of the packed coordinate (dimension count,
// then each coordinate). Allocation-free; position-only, so equal
// positions of different arrays hash equal — the collocation property the
// position-keyed placement schemes rely on.
func (k CoordKey) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = fnvWord(h, uint64(k.n))
	for i := uint8(0); i < k.n; i++ {
		h = fnvWord(h, uint64(k.c[i]))
	}
	return h
}

// ChunkKey is the packed global identity of a chunk: the interned array ID
// plus the packed chunk-grid coordinate. It is fixed-size and comparable,
// which makes it the map key for every ownership, catalog, and co-access
// structure on the placement hot path — lookups and inserts allocate
// nothing, where the string form (ChunkRef.Key) allocated on every call.
// The string form remains the wire/file/diagnostic format.
type ChunkKey struct {
	arr   ArrayID
	coord CoordKey
}

// MakeChunkKey assembles a key from an interned array ID and a packed
// coordinate.
func MakeChunkKey(id ArrayID, coord CoordKey) ChunkKey {
	return ChunkKey{arr: id, coord: coord}
}

// Packed interns the array name and packs the coordinates. Hot paths that
// hold a *Schema should prefer Schema-based construction (Chunk.Key,
// Schema.ChunkKeyOf), which skips the intern-table lookup.
func (r ChunkRef) Packed() ChunkKey {
	return ChunkKey{arr: InternArrayName(r.Array), coord: r.Coords.Packed()}
}

// Array returns the interned array identity.
func (k ChunkKey) Array() ArrayID { return k.arr }

// ArrayName resolves the array name.
func (k ChunkKey) ArrayName() string { return k.arr.Name() }

// Coord returns the packed chunk-grid coordinate.
func (k ChunkKey) Coord() CoordKey { return k.coord }

// Ref unpacks to the string-keyed reference form used for wire format, file
// names and human-readable errors.
func (k ChunkKey) Ref() ChunkRef {
	return ChunkRef{Array: k.arr.Name(), Coords: k.coord.Coords()}
}

// IsZero reports whether the key is the unset zero value.
func (k ChunkKey) IsZero() bool { return k.arr == 0 }

// Hash returns a 64-bit hash of the full packed identity: array id,
// dimension count, then each coordinate. Allocation-free. The cluster's
// sharded catalog selects shards from it and the extendible-hash directory
// derives bucket membership from it (after dispersal).
func (k ChunkKey) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = fnvWord(h, uint64(k.arr))
	h = fnvWord(h, uint64(k.coord.n))
	for i := uint8(0); i < k.coord.n; i++ {
		h = fnvWord(h, uint64(k.coord.c[i]))
	}
	return h
}

// Less orders keys canonically: array name (not intern order, so ordering
// is independent of registration sequence) then coordinate.
func (k ChunkKey) Less(o ChunkKey) bool {
	if k.arr != o.arr {
		return k.arr.Name() < o.arr.Name()
	}
	return k.coord.Less(o.coord)
}

func (k ChunkKey) String() string { return k.Ref().String() }

// ChunkKeyOf maps a cell coordinate to the packed identity of the chunk
// containing it — the allocation-free composition of ChunkOf and Packed.
func (s *Schema) ChunkKeyOf(cell Coord) ChunkKey {
	return ChunkKey{arr: s.ID(), coord: s.PackedChunkOf(cell)}
}

// PackedChunkOf maps a cell coordinate to the packed chunk-grid coordinate
// containing it without allocating. It panics on dimensionality mismatch,
// like ChunkOf.
func (s *Schema) PackedChunkOf(cell Coord) CoordKey {
	if len(cell) != len(s.Dims) {
		panic(fmt.Sprintf("array: coordinate %v has %d dims, schema %s has %d", cell, len(cell), s.Name, len(s.Dims)))
	}
	var k CoordKey
	k.n = uint8(len(cell))
	for i, d := range s.Dims {
		k.c[i] = d.ChunkIndex(cell[i])
	}
	return k
}
