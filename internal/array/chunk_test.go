package array

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return MustSchema("A",
		[]Attribute{{Name: "i", Type: Int32}, {Name: "j", Type: Float64}, {Name: "s", Type: String}},
		[]Dimension{
			{Name: "x", Start: 0, End: 9, ChunkInterval: 5},
			{Name: "y", Start: 0, End: 9, ChunkInterval: 5},
		})
}

func fillChunk(t *testing.T, s *Schema, cc ChunkCoord, n int) *Chunk {
	t.Helper()
	c := NewChunk(s, cc)
	origin := s.ChunkOrigin(cc)
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < n; k++ {
		cell := Coord{origin[0] + int64(k)%5, origin[1] + int64(k/5)%5}
		c.AppendCell(cell, []CellValue{
			{Int: int64(rng.Intn(100))},
			{Float: rng.Float64()},
			{Str: "v"},
		})
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("fillChunk: %v", err)
	}
	return c
}

func TestChunkAppendAndSize(t *testing.T) {
	s := testSchema()
	c := fillChunk(t, s, ChunkCoord{0, 0}, 10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	// 2 dims × 10 × 8 + int32 10×4 + float64 10×8 + string 10×(2+1)
	want := int64(2*10*8 + 10*4 + 10*8 + 10*3)
	if got := c.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	if got := c.AttrSizeBytes(0); got != 40 {
		t.Errorf("AttrSizeBytes(0) = %d, want 40", got)
	}
	// Projecting only attr 0: dims + int32 column.
	if got := c.ProjectedSizeBytes([]int{0}); got != 2*10*8+10*4 {
		t.Errorf("ProjectedSizeBytes = %d", got)
	}
}

func TestChunkAppendWrongChunkPanics(t *testing.T) {
	s := testSchema()
	c := NewChunk(s, ChunkCoord{0, 0})
	defer func() {
		if recover() == nil {
			t.Error("appending a cell from another chunk should panic")
		}
	}()
	c.AppendCell(Coord{7, 7}, []CellValue{{}, {}, {}})
}

func TestChunkFilterSubset(t *testing.T) {
	s := testSchema()
	c := fillChunk(t, s, ChunkCoord{1, 1}, 20)
	rows := c.Filter(func(cell Coord) bool { return cell[0] >= 7 })
	sub := c.Subset(rows)
	if sub.Len() != len(rows) {
		t.Fatalf("Subset len = %d, want %d", sub.Len(), len(rows))
	}
	for i := 0; i < sub.Len(); i++ {
		if sub.Cell(i)[0] < 7 {
			t.Errorf("subset cell %v should have x >= 7", sub.Cell(i))
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subset invalid: %v", err)
	}
	// Subset must not alias the parent.
	if sub.Len() > 0 {
		sub.DimCols[0][0] = 999
		if c.DimCols[0][rows[0]] == 999 {
			t.Error("Subset aliases parent storage")
		}
	}
}

func TestChunkValidateCatchesCorruption(t *testing.T) {
	s := testSchema()
	c := fillChunk(t, s, ChunkCoord{0, 0}, 5)
	c.DimCols[0] = c.DimCols[0][:4]
	if err := c.Validate(); err == nil {
		t.Error("truncated dim column should fail validation")
	}
	c = fillChunk(t, s, ChunkCoord{0, 0}, 5)
	c.DimCols[0][0] = 7 // belongs to chunk 1/0
	if err := c.Validate(); err == nil {
		t.Error("foreign cell should fail validation")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	c := fillChunk(t, s, ChunkCoord{1, 0}, 17)
	data, err := EncodeChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeChunk(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() || !back.Coords.Equal(c.Coords) {
		t.Fatalf("round trip mismatch: %v/%d vs %v/%d", back.Coords, back.Len(), c.Coords, c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if !back.Cell(i).Equal(c.Cell(i)) {
			t.Fatalf("cell %d mismatch", i)
		}
		for a := range c.AttrCols {
			if back.AttrCols[a].Str(i) != c.AttrCols[a].Str(i) {
				t.Fatalf("attr %d row %d mismatch", a, i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	s := testSchema()
	if _, err := DecodeChunk(s, []byte{1, 2, 3}); err == nil {
		t.Error("garbage should not decode")
	}
	c := fillChunk(t, s, ChunkCoord{0, 0}, 3)
	data, _ := EncodeChunk(c)
	if _, err := DecodeChunk(s, data[:len(data)-2]); err == nil {
		t.Error("truncated payload should not decode")
	}
	if _, err := DecodeChunk(s, append(data, 0)); err == nil {
		t.Error("trailing bytes should not decode")
	}
	other := MustSchema("B", []Attribute{{Name: "v", Type: Float64}},
		[]Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 5}})
	if _, err := DecodeChunk(other, data); err == nil {
		t.Error("decoding under mismatched schema should fail")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	s := MustSchema("P",
		[]Attribute{{Name: "a", Type: Int64}, {Name: "b", Type: Float32}},
		[]Dimension{{Name: "x", Start: 0, End: 99, ChunkInterval: 10}})
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 50)
		rng := rand.New(rand.NewSource(seed))
		c := NewChunk(s, ChunkCoord{3})
		for i := 0; i < n; i++ {
			c.AppendCell(Coord{30 + rng.Int63n(10)}, []CellValue{
				{Int: rng.Int63()},
				{Float: float64(rng.Float32())},
			})
		}
		data, err := EncodeChunk(c)
		if err != nil {
			return false
		}
		back, err := DecodeChunk(s, data)
		if err != nil || back.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !back.Cell(i).Equal(c.Cell(i)) {
				return false
			}
			if back.AttrCols[0].Float64(i) != c.AttrCols[0].Float64(i) {
				return false
			}
			if back.AttrCols[1].Float64(i) != c.AttrCols[1].Float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortChunkInfos(t *testing.T) {
	infos := []ChunkInfo{
		{Ref: ChunkRef{Array: "B", Coords: ChunkCoord{0}}},
		{Ref: ChunkRef{Array: "A", Coords: ChunkCoord{1}}},
		{Ref: ChunkRef{Array: "A", Coords: ChunkCoord{0}}},
	}
	SortChunkInfos(infos)
	want := []string{"A:0", "A:1", "B:0"}
	for i, info := range infos {
		if info.Ref.Key() != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, info.Ref.Key(), want[i])
		}
	}
}

func TestColumnGatherAndAppendFrom(t *testing.T) {
	ic := NewIntColumn(Int32)
	for _, v := range []int64{10, 20, 30, 40} {
		ic.Append(v)
	}
	g := ic.Gather([]int{3, 0}).(*IntColumn)
	if g.Vals[0] != 40 || g.Vals[1] != 10 {
		t.Errorf("Gather = %v", g.Vals)
	}
	dst := NewIntColumn(Int32)
	dst.AppendFrom(ic, 2)
	if dst.Vals[0] != 30 {
		t.Errorf("AppendFrom = %v", dst.Vals)
	}

	fc := NewFloatColumn(Float64)
	fc.Append(1.5)
	fc.Append(2.5)
	if fc.Float64(1) != 2.5 || fc.Str(0) != "1.5" {
		t.Error("FloatColumn accessors misbehave")
	}

	sc := NewStrColumn()
	sc.Append("hello")
	if sc.SizeBytes() != 2+5 {
		t.Errorf("StrColumn SizeBytes = %d", sc.SizeBytes())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Float64 on string column should panic")
			}
		}()
		sc.Float64(0)
	}()
}

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("A<i:int32, j:float>[x=1:4,2, y=1:4,2]")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "A" || len(s.Attrs) != 2 || len(s.Dims) != 2 {
		t.Fatalf("parsed %v", s)
	}
	if s.Attrs[1].Type != Float32 || s.Dims[1].ChunkInterval != 2 {
		t.Errorf("parsed schema fields wrong: %v", s)
	}
}

func TestParseSchemaPaperForms(t *testing.T) {
	// The MODIS band declaration from Section 3.1 (comma range form).
	decl := "Band<si_value:int, radiance:double, reflectance:double," +
		"uncertainty_idx:int, uncertainty_pct:float," +
		"platform_id:int, resolution_id:int>[time=0,*,1440," +
		"longitude=-180,180,12, latitude=-90,90,12]"
	s, err := ParseSchema(decl)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attrs) != 7 || len(s.Dims) != 3 {
		t.Fatalf("parsed %d attrs, %d dims", len(s.Attrs), len(s.Dims))
	}
	if s.Dims[0].Bounded() {
		t.Error("time should be unbounded")
	}
	if s.Dims[1].Start != -180 || s.Dims[1].End != 180 || s.Dims[1].ChunkInterval != 12 {
		t.Errorf("longitude parsed as %+v", s.Dims[1])
	}
	back := s.String()
	s2, err := ParseSchema(back)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", back, err)
	}
	if s2.String() != back {
		t.Error("String/Parse not a fixed point")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []string{
		"",
		"A[x=0:9,2]",
		"A<v:double>",
		"A<v>[x=0:9,2]",
		"A<v:double>[x]",
		"A<v:double>[x=0:9]",
		"A<v:nope>[x=0:9,2]",
		"A<v:double>[x=a:9,2]",
		"A<v:double>[x=0:b,2]",
		"A<v:double>[x=0:9,c]",
		"A<v:double>[x=0,1]",
	}
	for _, decl := range bad {
		if _, err := ParseSchema(decl); err == nil {
			t.Errorf("ParseSchema(%q) should fail", decl)
		}
	}
}
