package array

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunk wire format (little endian):
//
//	u32 magic "ACNK"
//	u16 version
//	u16 nDims, u16 nAttrs, u32 nCells
//	nDims × i64  chunk coordinate
//	nDims × (nCells × i64) dimension columns
//	per attribute: u8 type tag, then nCells values
//	  int family: i64 each; float family: f64 bits; string: u16 len + bytes
//
// The codec exists so migrations between nodes move real serialized bytes —
// the quantity the elasticity cost model charges for — and so chunk stores
// can round-trip payloads.
//
// Chunk-batch wire format (the per-receiver rebalance message):
//
//	u32 magic "ABAT"
//	u16 version
//	u32 nChunks
//	per chunk: u16 len + array name bytes, then the chunk payload above
//
// Batching amortises the message framing and — because every chunk of the
// batch encodes into one contiguous buffer — the allocation and copying a
// per-chunk round-trip pays once per chunk.

const (
	chunkMagic   = 0x41434e4b // "ACNK"
	chunkVersion = 1
	batchMagic   = 0x41424154 // "ABAT"
	batchVersion = 1
)

// EncodeChunk serialises a chunk payload (schema identity travels out of
// band via the ChunkRef, which carries the array name).
func EncodeChunk(c *Chunk) ([]byte, error) {
	var b bytes.Buffer
	if err := encodeChunkInto(&b, c); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// encodeChunkInto appends one chunk payload to b — the shared body of the
// single-chunk and batch encoders.
func encodeChunkInto(b *bytes.Buffer, c *Chunk) error {
	w := func(v interface{}) {
		_ = binary.Write(b, binary.LittleEndian, v)
	}
	w(uint32(chunkMagic))
	w(uint16(chunkVersion))
	w(uint16(len(c.DimCols)))
	w(uint16(len(c.AttrCols)))
	w(uint32(c.Len()))
	for _, v := range c.Coords {
		w(v)
	}
	for _, col := range c.DimCols {
		for _, v := range col {
			w(v)
		}
	}
	for _, col := range c.AttrCols {
		w(uint8(col.Type()))
		switch col := col.(type) {
		case *IntColumn:
			for _, v := range col.Vals {
				w(v)
			}
		case *FloatColumn:
			for _, v := range col.Vals {
				w(v)
			}
		case *StrColumn:
			for _, v := range col.Vals {
				if len(v) > 0xffff {
					return fmt.Errorf("array: string value too long (%d bytes)", len(v))
				}
				w(uint16(len(v)))
				b.WriteString(v)
			}
		default:
			return fmt.Errorf("array: cannot encode column type %T", col)
		}
	}
	return nil
}

// DecodeChunk reverses EncodeChunk. The schema must match the one the chunk
// was encoded under (same dims and attribute types).
func DecodeChunk(s *Schema, data []byte) (*Chunk, error) {
	r := bytes.NewReader(data)
	c, err := decodeChunkFrom(r, s)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("array: %d trailing bytes after chunk", r.Len())
	}
	return c, nil
}

// decodeChunkFrom reads one chunk payload off r — the shared body of the
// single-chunk and batch decoders. It consumes exactly the chunk's bytes,
// leaving r positioned at whatever follows. Any io.Reader works (the TCP
// transport hands it a socket-backed segment stream); buffer-backed callers
// do their own trailing-byte accounting.
func decodeChunkFrom(r io.Reader, s *Schema) (*Chunk, error) {
	rd := func(v interface{}) error {
		return binary.Read(r, binary.LittleEndian, v)
	}
	var magic uint32
	var version, nDims, nAttrs uint16
	var nCells uint32
	if err := rd(&magic); err != nil || magic != chunkMagic {
		return nil, fmt.Errorf("array: bad chunk magic")
	}
	if err := rd(&version); err != nil || version != chunkVersion {
		return nil, fmt.Errorf("array: unsupported chunk version %d", version)
	}
	if err := rd(&nDims); err != nil {
		return nil, err
	}
	if err := rd(&nAttrs); err != nil {
		return nil, err
	}
	if err := rd(&nCells); err != nil {
		return nil, err
	}
	if int(nDims) != len(s.Dims) || int(nAttrs) != len(s.Attrs) {
		return nil, fmt.Errorf("array: chunk encoded with %d dims/%d attrs, schema %s has %d/%d",
			nDims, nAttrs, s.Name, len(s.Dims), len(s.Attrs))
	}
	cc := make(ChunkCoord, nDims)
	for i := range cc {
		if err := rd(&cc[i]); err != nil {
			return nil, err
		}
	}
	if !s.ValidChunk(cc) {
		return nil, fmt.Errorf("array: decoded chunk coordinate %v outside %s grid", cc, s.Name)
	}
	c := NewChunk(s, cc)
	for d := 0; d < int(nDims); d++ {
		col := make([]int64, nCells)
		for i := range col {
			if err := rd(&col[i]); err != nil {
				return nil, err
			}
		}
		c.DimCols[d] = col
	}
	for a := 0; a < int(nAttrs); a++ {
		var tag uint8
		if err := rd(&tag); err != nil {
			return nil, err
		}
		t := DataType(tag)
		if t != s.Attrs[a].Type {
			return nil, fmt.Errorf("array: chunk attr %d encoded as %v, schema says %v", a, t, s.Attrs[a].Type)
		}
		switch col := c.AttrCols[a].(type) {
		case *IntColumn:
			col.Vals = make([]int64, nCells)
			for i := range col.Vals {
				if err := rd(&col.Vals[i]); err != nil {
					return nil, err
				}
			}
		case *FloatColumn:
			col.Vals = make([]float64, nCells)
			for i := range col.Vals {
				if err := rd(&col.Vals[i]); err != nil {
					return nil, err
				}
			}
		case *StrColumn:
			col.Vals = make([]string, nCells)
			buf := make([]byte, 0, 64)
			for i := range col.Vals {
				var n uint16
				if err := rd(&n); err != nil {
					return nil, err
				}
				if cap(buf) < int(n) {
					buf = make([]byte, n)
				}
				buf = buf[:n]
				if _, err := io.ReadFull(r, buf); err != nil {
					return nil, err
				}
				col.Vals[i] = string(buf)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ChunkBatchWriter emits the "ABAT" chunk-batch framing one chunk at a
// time into any io.Writer — the streaming counterpart of ChunkBatchReader.
// A rebalance sender feeds it chunk by chunk, so peak encode memory is one
// framed chunk (the writer's scratch buffer) plus whatever the destination
// writer buffers, instead of the whole batch; pointed at a bounded pipe
// (transport.Ring) the sender end of a migration runs in O(ring + one
// chunk) no matter how large the batch is.
//
// The chunk count is declared up front (it leads the framing, exactly as
// EncodeChunkBatch writes it); Close verifies every declared chunk was
// written, so a short stream can never masquerade as a complete batch.
type ChunkBatchWriter struct {
	w       io.Writer
	n       uint32 // declared batch size, from the header
	written uint32 // chunks framed so far
	buf     bytes.Buffer
}

// NewChunkBatchWriter writes the batch header for n chunks and returns a
// writer positioned at the first chunk frame.
func NewChunkBatchWriter(w io.Writer, n int) (*ChunkBatchWriter, error) {
	if n < 0 || uint64(n) > 0xffffffff {
		return nil, fmt.Errorf("array: batch of %d chunks out of range", n)
	}
	bw := &ChunkBatchWriter{w: w, n: uint32(n)}
	_ = binary.Write(&bw.buf, binary.LittleEndian, uint32(batchMagic))
	_ = binary.Write(&bw.buf, binary.LittleEndian, uint16(batchVersion))
	_ = binary.Write(&bw.buf, binary.LittleEndian, uint32(n))
	if err := bw.flush(); err != nil {
		return nil, err
	}
	return bw, nil
}

// flush hands the scratch buffer to the destination writer and resets it.
func (bw *ChunkBatchWriter) flush() error {
	if _, err := bw.w.Write(bw.buf.Bytes()); err != nil {
		return err
	}
	bw.buf.Reset()
	return nil
}

// Write frames one chunk — name length, name, "ACNK" payload — and flushes
// it to the destination writer.
func (bw *ChunkBatchWriter) Write(c *Chunk) error {
	if bw.written == bw.n {
		return fmt.Errorf("array: batch writer declared %d chunks, got more", bw.n)
	}
	name := c.Schema.Name
	if len(name) > 0xffff {
		return fmt.Errorf("array: array name too long (%d bytes)", len(name))
	}
	bw.buf.Reset()
	_ = binary.Write(&bw.buf, binary.LittleEndian, uint16(len(name)))
	bw.buf.WriteString(name)
	if err := encodeChunkInto(&bw.buf, c); err != nil {
		return err
	}
	if err := bw.flush(); err != nil {
		return err
	}
	bw.written++
	return nil
}

// Written returns how many chunks have been framed so far.
func (bw *ChunkBatchWriter) Written() int { return int(bw.written) }

// Close verifies the declared chunk count was delivered. It does not close
// the destination writer.
func (bw *ChunkBatchWriter) Close() error {
	if bw.written != bw.n {
		return fmt.Errorf("array: batch writer declared %d chunks, wrote %d", bw.n, bw.written)
	}
	return nil
}

// EncodeChunkBatch serialises several chunks — a rebalance receiver's whole
// batch — into one wire message. Unlike EncodeChunk the array name travels
// in band per chunk, because one migration batch may mix arrays; the
// payloads land in one contiguous buffer, which is what makes the batched
// round-trip cheaper than len(chunks) single-chunk trips. It is the
// buffer-backed convenience over ChunkBatchWriter, byte-identical to
// streaming the same chunks.
func EncodeChunkBatch(chunks []*Chunk) ([]byte, error) {
	var b bytes.Buffer
	bw, err := NewChunkBatchWriter(&b, len(chunks))
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := bw.Write(c); err != nil {
			return nil, err
		}
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// ChunkBatchReader decodes a chunk-batch message one chunk at a time off
// the shared "ABAT" buffer — the streaming counterpart of DecodeChunkBatch.
// A rebalance receiver drains it with Next, storing each chunk as it
// materialises, so peak memory for a large migration batch is one decoded
// chunk plus the wire buffer instead of the whole batch twice.
type ChunkBatchReader struct {
	r       io.Reader
	rem     func() int // trailing-byte check for buffer-backed batches; nil for streams
	lookup  func(name string) (*Schema, bool)
	n       uint32 // chunks in the batch, from the header
	decoded uint32 // chunks handed out so far
	nameBuf []byte
}

// NewChunkBatchReader validates the batch framing and returns a reader
// positioned at the first chunk. The data buffer must not be mutated until
// the reader is drained.
func NewChunkBatchReader(lookup func(name string) (*Schema, bool), data []byte) (*ChunkBatchReader, error) {
	r := bytes.NewReader(data)
	d, err := NewChunkBatchStream(lookup, r)
	if err != nil {
		return nil, err
	}
	// A buffer-backed batch knows its exact extent, so Next can reject
	// trailing garbage after the final chunk; a socket stream cannot (its
	// framing ends where the transport says it does).
	d.rem = r.Len
	return d, nil
}

// NewChunkBatchStream validates the batch framing at the head of r and
// returns a reader that decodes chunk frames directly off the stream — the
// receive half of a transport push, where the batch arrives over a socket
// and never materialises as one contiguous buffer. Unlike the buffer-backed
// constructor it cannot detect bytes trailing the final chunk; the caller's
// framing bounds the stream.
func NewChunkBatchStream(lookup func(name string) (*Schema, bool), r io.Reader) (*ChunkBatchReader, error) {
	rd := func(v interface{}) error {
		return binary.Read(r, binary.LittleEndian, v)
	}
	var magic uint32
	var version uint16
	var n uint32
	if err := rd(&magic); err != nil || magic != batchMagic {
		return nil, fmt.Errorf("array: bad chunk-batch magic")
	}
	if err := rd(&version); err != nil || version != batchVersion {
		return nil, fmt.Errorf("array: unsupported chunk-batch version %d", version)
	}
	if err := rd(&n); err != nil {
		return nil, err
	}
	return &ChunkBatchReader{r: r, lookup: lookup, n: n, nameBuf: make([]byte, 0, 64)}, nil
}

// Len returns the total number of chunks the batch carries.
func (d *ChunkBatchReader) Len() int { return int(d.n) }

// Remaining returns how many chunks have not been decoded yet.
func (d *ChunkBatchReader) Remaining() int { return int(d.n - d.decoded) }

// Next decodes and returns the next chunk, or io.EOF once the batch is
// drained (after verifying nothing trails the final chunk). Any other
// error means the batch is corrupt; the reader is then unusable.
func (d *ChunkBatchReader) Next() (*Chunk, error) {
	if d.decoded == d.n {
		if d.rem != nil && d.rem() != 0 {
			return nil, fmt.Errorf("array: %d trailing bytes after chunk batch", d.rem())
		}
		return nil, io.EOF
	}
	i := d.decoded
	var nameLen uint16
	if err := binary.Read(d.r, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if cap(d.nameBuf) < int(nameLen) {
		d.nameBuf = make([]byte, nameLen)
	}
	d.nameBuf = d.nameBuf[:nameLen]
	if _, err := io.ReadFull(d.r, d.nameBuf); err != nil {
		return nil, err
	}
	s, ok := d.lookup(string(d.nameBuf))
	if !ok {
		return nil, fmt.Errorf("array: batch chunk %d of unknown array %q", i, d.nameBuf)
	}
	c, err := decodeChunkFrom(d.r, s)
	if err != nil {
		return nil, fmt.Errorf("array: batch chunk %d of %s: %w", i, s.Name, err)
	}
	d.decoded++
	return c, nil
}

// DecodeChunkBatch reverses EncodeChunkBatch, resolving each chunk's schema
// through lookup (typically a cluster's schema registry). Chunks come back
// in encoding order, fully materialised; callers that can consume chunks
// one at a time should drain a ChunkBatchReader instead.
func DecodeChunkBatch(lookup func(name string) (*Schema, bool), data []byte) ([]*Chunk, error) {
	d, err := NewChunkBatchReader(lookup, data)
	if err != nil {
		return nil, err
	}
	out := make([]*Chunk, 0, d.Len())
	for {
		c, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
}
