package array

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunk wire format (little endian):
//
//	u32 magic "ACNK"
//	u16 version
//	u16 nDims, u16 nAttrs, u32 nCells
//	nDims × i64  chunk coordinate
//	nDims × (nCells × i64) dimension columns
//	per attribute: u8 type tag, then nCells values
//	  int family: i64 each; float family: f64 bits; string: u16 len + bytes
//
// The codec exists so migrations between nodes move real serialized bytes —
// the quantity the elasticity cost model charges for — and so chunk stores
// can round-trip payloads.

const (
	chunkMagic   = 0x41434e4b // "ACNK"
	chunkVersion = 1
)

// EncodeChunk serialises a chunk payload (schema identity travels out of
// band via the ChunkRef, which carries the array name).
func EncodeChunk(c *Chunk) ([]byte, error) {
	var b bytes.Buffer
	w := func(v interface{}) {
		_ = binary.Write(&b, binary.LittleEndian, v)
	}
	w(uint32(chunkMagic))
	w(uint16(chunkVersion))
	w(uint16(len(c.DimCols)))
	w(uint16(len(c.AttrCols)))
	w(uint32(c.Len()))
	for _, v := range c.Coords {
		w(v)
	}
	for _, col := range c.DimCols {
		for _, v := range col {
			w(v)
		}
	}
	for _, col := range c.AttrCols {
		w(uint8(col.Type()))
		switch col := col.(type) {
		case *IntColumn:
			for _, v := range col.Vals {
				w(v)
			}
		case *FloatColumn:
			for _, v := range col.Vals {
				w(v)
			}
		case *StrColumn:
			for _, v := range col.Vals {
				if len(v) > 0xffff {
					return nil, fmt.Errorf("array: string value too long (%d bytes)", len(v))
				}
				w(uint16(len(v)))
				b.WriteString(v)
			}
		default:
			return nil, fmt.Errorf("array: cannot encode column type %T", col)
		}
	}
	return b.Bytes(), nil
}

// DecodeChunk reverses EncodeChunk. The schema must match the one the chunk
// was encoded under (same dims and attribute types).
func DecodeChunk(s *Schema, data []byte) (*Chunk, error) {
	r := bytes.NewReader(data)
	rd := func(v interface{}) error {
		return binary.Read(r, binary.LittleEndian, v)
	}
	var magic uint32
	var version, nDims, nAttrs uint16
	var nCells uint32
	if err := rd(&magic); err != nil || magic != chunkMagic {
		return nil, fmt.Errorf("array: bad chunk magic")
	}
	if err := rd(&version); err != nil || version != chunkVersion {
		return nil, fmt.Errorf("array: unsupported chunk version %d", version)
	}
	if err := rd(&nDims); err != nil {
		return nil, err
	}
	if err := rd(&nAttrs); err != nil {
		return nil, err
	}
	if err := rd(&nCells); err != nil {
		return nil, err
	}
	if int(nDims) != len(s.Dims) || int(nAttrs) != len(s.Attrs) {
		return nil, fmt.Errorf("array: chunk encoded with %d dims/%d attrs, schema %s has %d/%d",
			nDims, nAttrs, s.Name, len(s.Dims), len(s.Attrs))
	}
	cc := make(ChunkCoord, nDims)
	for i := range cc {
		if err := rd(&cc[i]); err != nil {
			return nil, err
		}
	}
	if !s.ValidChunk(cc) {
		return nil, fmt.Errorf("array: decoded chunk coordinate %v outside %s grid", cc, s.Name)
	}
	c := NewChunk(s, cc)
	for d := 0; d < int(nDims); d++ {
		col := make([]int64, nCells)
		for i := range col {
			if err := rd(&col[i]); err != nil {
				return nil, err
			}
		}
		c.DimCols[d] = col
	}
	for a := 0; a < int(nAttrs); a++ {
		var tag uint8
		if err := rd(&tag); err != nil {
			return nil, err
		}
		t := DataType(tag)
		if t != s.Attrs[a].Type {
			return nil, fmt.Errorf("array: chunk attr %d encoded as %v, schema says %v", a, t, s.Attrs[a].Type)
		}
		switch col := c.AttrCols[a].(type) {
		case *IntColumn:
			col.Vals = make([]int64, nCells)
			for i := range col.Vals {
				if err := rd(&col.Vals[i]); err != nil {
					return nil, err
				}
			}
		case *FloatColumn:
			col.Vals = make([]float64, nCells)
			for i := range col.Vals {
				if err := rd(&col.Vals[i]); err != nil {
					return nil, err
				}
			}
		case *StrColumn:
			col.Vals = make([]string, nCells)
			buf := make([]byte, 0, 64)
			for i := range col.Vals {
				var n uint16
				if err := rd(&n); err != nil {
					return nil, err
				}
				if cap(buf) < int(n) {
					buf = make([]byte, n)
				}
				buf = buf[:n]
				if _, err := io.ReadFull(r, buf); err != nil {
					return nil, err
				}
				col.Vals[i] = string(buf)
			}
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("array: %d trailing bytes after chunk", r.Len())
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
