package array

import (
	"sort"
	"testing"
	"testing/quick"
)

func grid2x2() *Schema {
	return MustSchema("A",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "x", Start: 1, End: 4, ChunkInterval: 2},
			{Name: "y", Start: 1, End: 4, ChunkInterval: 2},
		})
}

func TestChunkOf(t *testing.T) {
	s := grid2x2()
	cases := []struct {
		cell Coord
		want string
	}{
		{Coord{1, 1}, "0/0"},
		{Coord{2, 2}, "0/0"},
		{Coord{3, 1}, "1/0"},
		{Coord{4, 4}, "1/1"},
		{Coord{1, 3}, "0/1"},
	}
	for _, c := range cases {
		if got := s.ChunkOf(c.cell).Key(); got != c.want {
			t.Errorf("ChunkOf(%v) = %s, want %s", c.cell, got, c.want)
		}
	}
}

func TestChunkOriginInverse(t *testing.T) {
	s := grid2x2()
	for _, key := range []string{"0/0", "0/1", "1/0", "1/1"} {
		cc, err := ParseChunkCoord(key)
		if err != nil {
			t.Fatal(err)
		}
		origin := s.ChunkOrigin(cc)
		if got := s.ChunkOf(origin); got.Key() != key {
			t.Errorf("ChunkOf(ChunkOrigin(%s)) = %s", key, got.Key())
		}
	}
}

func TestChunkCoordKeyRoundTrip(t *testing.T) {
	f := func(a, b, c int16) bool {
		cc := ChunkCoord{int64(a), int64(b), int64(c)}
		back, err := ParseChunkCoord(cc.Key())
		return err == nil && back.Equal(cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkRefKeyRoundTrip(t *testing.T) {
	r := ChunkRef{Array: "Band1", Coords: ChunkCoord{3, -2, 7}}
	back, err := ParseChunkRef(r.Key())
	if err != nil {
		t.Fatal(err)
	}
	if back.Array != r.Array || !back.Coords.Equal(r.Coords) {
		t.Errorf("round trip %v -> %v", r, back)
	}
	if _, err := ParseChunkRef("noseparator"); err == nil {
		t.Error("missing ':' should fail")
	}
	if _, err := ParseChunkCoord("1/x/3"); err == nil {
		t.Error("non-numeric coordinate should fail")
	}
	if _, err := ParseChunkCoord(""); err == nil {
		t.Error("empty key should fail")
	}
}

func TestChunkCoordLessIsTotalOrder(t *testing.T) {
	cs := []ChunkCoord{{1, 2}, {0, 5}, {1, 1}, {2, 0}, {0, 0}}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
	want := []string{"0/0", "0/5", "1/1", "1/2", "2/0"}
	for i, cc := range cs {
		if cc.Key() != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, cc.Key(), want[i])
		}
	}
	if cs[0].Less(cs[0]) {
		t.Error("Less must be irreflexive")
	}
}

func TestValidChunkAndCell(t *testing.T) {
	s := grid2x2()
	if !s.ValidChunk(ChunkCoord{1, 1}) {
		t.Error("1/1 should be valid")
	}
	if s.ValidChunk(ChunkCoord{2, 0}) {
		t.Error("2/0 out of grid")
	}
	if s.ValidChunk(ChunkCoord{-1, 0}) {
		t.Error("negative chunk index invalid")
	}
	if s.ValidChunk(ChunkCoord{0}) {
		t.Error("wrong dimensionality invalid")
	}
	if !s.ValidCell(Coord{4, 4}) {
		t.Error("(4,4) should be valid")
	}
	if s.ValidCell(Coord{5, 1}) {
		t.Error("(5,1) out of range")
	}
}

func TestNeighbors(t *testing.T) {
	s := grid2x2()
	n := s.Neighbors(ChunkCoord{0, 0})
	if len(n) != 2 {
		t.Fatalf("corner chunk should have 2 neighbours, got %d: %v", len(n), n)
	}
	keys := map[string]bool{}
	for _, cc := range n {
		keys[cc.Key()] = true
	}
	if !keys["1/0"] || !keys["0/1"] {
		t.Errorf("neighbours of 0/0 = %v, want {1/0, 0/1}", keys)
	}

	// A 4x4 grid interior chunk has 4 face neighbours.
	s4 := MustSchema("B",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "x", Start: 0, End: 7, ChunkInterval: 2},
			{Name: "y", Start: 0, End: 7, ChunkInterval: 2},
		})
	if n := s4.Neighbors(ChunkCoord{1, 1}); len(n) != 4 {
		t.Errorf("interior chunk should have 4 neighbours, got %d", len(n))
	}
}

func TestNeighborsUnboundedDim(t *testing.T) {
	s := MustSchema("T",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{{Name: "time", Start: 0, End: Unbounded, ChunkInterval: 10}})
	n := s.Neighbors(ChunkCoord{0})
	if len(n) != 1 || n[0].Key() != "1" {
		t.Errorf("Neighbors(0) on unbounded dim = %v, want [1]", n)
	}
}

func TestChunkDistance(t *testing.T) {
	if d := ChunkDistance(ChunkCoord{0, 0}, ChunkCoord{2, 1}); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := ChunkDistance(ChunkCoord{3, 3}, ChunkCoord{3, 3}); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	if d := ChunkDistance(ChunkCoord{0, 5}, ChunkCoord{1, 3}); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestChunkGridExtent(t *testing.T) {
	s := MustSchema("T",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "time", Start: 0, End: Unbounded, ChunkInterval: 10},
			{Name: "x", Start: 0, End: 19, ChunkInterval: 5},
		})
	ext := s.ChunkGridExtent([]int64{35, 0})
	if ext[0] != 4 {
		t.Errorf("unbounded extent covering 35 = %d, want 4", ext[0])
	}
	if ext[1] != 4 {
		t.Errorf("bounded extent = %d, want 4", ext[1])
	}
	ext = s.ChunkGridExtent(nil)
	if ext[0] != 1 {
		t.Errorf("unbounded extent with no data = %d, want 1", ext[0])
	}
}

func TestCoordHelpers(t *testing.T) {
	c := Coord{1, 2, 3}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Error("Clone must not alias")
	}
	if !c.Equal(Coord{1, 2, 3}) || c.Equal(Coord{1, 2}) || c.Equal(Coord{1, 2, 4}) {
		t.Error("Equal misbehaves")
	}
	if c.String() != "(1,2,3)" {
		t.Errorf("String = %q", c.String())
	}
}
