package array

import (
	"math/rand"
	"testing"
)

func TestInternArrayName(t *testing.T) {
	a := InternArrayName("KeyTestA")
	b := InternArrayName("KeyTestB")
	if a == 0 || b == 0 {
		t.Fatal("interned IDs must be non-zero")
	}
	if a == b {
		t.Fatal("distinct names must intern to distinct IDs")
	}
	if got := InternArrayName("KeyTestA"); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if got := a.Name(); got != "KeyTestA" {
		t.Errorf("Name() = %q, want KeyTestA", got)
	}
	if got := ArrayID(0).Name(); got != "" {
		t.Errorf("zero ID resolves to %q, want empty", got)
	}
}

// TestChunkKeyRoundTrip drives random references — negative coordinates
// included — through every identity conversion and requires the cycle
// ref → Packed → Ref → Key → ParseChunkRef → Packed to be lossless.
func TestChunkKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Names stay free of ':' and '/', which the wire format reserves (a
	// pre-existing ParseChunkRef limit independent of key packing).
	names := []string{"Band1", "Band2", "Broadcast", "key-rt.odd_name"}
	for i := 0; i < 2000; i++ {
		ndims := 1 + rng.Intn(MaxKeyDims)
		cc := make(ChunkCoord, ndims)
		for d := range cc {
			cc[d] = rng.Int63n(2000) - 1000 // negatives included
		}
		ref := ChunkRef{Array: names[rng.Intn(len(names))], Coords: cc}
		key := ref.Packed()
		back := key.Ref()
		if back.Array != ref.Array || !back.Coords.Equal(ref.Coords) {
			t.Fatalf("Packed/Ref round trip: %v -> %v", ref, back)
		}
		if key.ArrayName() != ref.Array {
			t.Fatalf("ArrayName = %q, want %q", key.ArrayName(), ref.Array)
		}
		if key.Coord().NumDims() != ndims {
			t.Fatalf("NumDims = %d, want %d", key.Coord().NumDims(), ndims)
		}
		for d := range cc {
			if key.Coord().At(d) != cc[d] {
				t.Fatalf("At(%d) = %d, want %d", d, key.Coord().At(d), cc[d])
			}
		}
		// The wire string is unchanged by the packed representation,
		// and parsing it recovers the same packed key.
		parsed, err := ParseChunkRef(back.Key())
		if err != nil {
			t.Fatalf("ParseChunkRef(%q): %v", back.Key(), err)
		}
		if parsed.Packed() != key {
			t.Fatalf("wire round trip: %v -> %v", key, parsed.Packed())
		}
		// Packing is injective on this sample: equal keys imply equal refs.
		if key != ref.Packed() {
			t.Fatalf("packing is not deterministic for %v", ref)
		}
	}
}

func TestCoordKeyPrefixDistinct(t *testing.T) {
	// A 2-dim coordinate (1,0) must not collide with 1-dim (1): the
	// dimension count is part of the key.
	a := ChunkCoord{1, 0}.Packed()
	b := ChunkCoord{1}.Packed()
	if a == b {
		t.Fatal("keys of different dimensionality must differ")
	}
	if !b.Less(a) || a.Less(b) {
		t.Fatal("shorter coordinate must order before its zero-extended prefix")
	}
}

func TestPackCoordsRejectsWideCoordinates(t *testing.T) {
	wide := make(ChunkCoord, MaxKeyDims+1)
	if _, err := PackCoords(wide); err == nil {
		t.Fatal("PackCoords must reject >MaxKeyDims coordinates")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Packed() must panic on >MaxKeyDims coordinates")
		}
	}()
	_ = wide.Packed()
}

func TestNewSchemaRejectsWideSchemas(t *testing.T) {
	dims := make([]Dimension, MaxKeyDims+1)
	for i := range dims {
		dims[i] = Dimension{Name: string(rune('a' + i)), Start: 0, End: 9, ChunkInterval: 2}
	}
	if _, err := NewSchema("wide", []Attribute{{Name: "v", Type: Float64}}, dims); err == nil {
		t.Fatal("NewSchema must reject schemas wider than MaxKeyDims")
	}
	if _, err := NewSchema("ok4", []Attribute{{Name: "v", Type: Float64}}, dims[:MaxKeyDims]); err != nil {
		t.Fatalf("NewSchema must accept MaxKeyDims dims: %v", err)
	}
}

func TestCoordKeyLessMatchesChunkCoordLess(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(MaxKeyDims)
		a := make(ChunkCoord, n)
		b := make(ChunkCoord, n)
		for d := 0; d < n; d++ {
			a[d] = rng.Int63n(20) - 10
			b[d] = rng.Int63n(20) - 10
		}
		if a.Packed().Less(b.Packed()) != a.Less(b) {
			t.Fatalf("Less mismatch for %v vs %v", a, b)
		}
	}
}

func TestChunkKeyOf(t *testing.T) {
	s := MustSchema("KeyOfA",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "x", Start: -8, End: 7, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	cell := Coord{-5, 9}
	want := ChunkRef{Array: "KeyOfA", Coords: s.ChunkOf(cell)}.Packed()
	if got := s.ChunkKeyOf(cell); got != want {
		t.Errorf("ChunkKeyOf(%v) = %v, want %v", cell, got, want)
	}
	if got := s.PackedChunkOf(cell); got != s.ChunkOf(cell).Packed() {
		t.Errorf("PackedChunkOf(%v) = %v, want %v", cell, got, s.ChunkOf(cell))
	}
}

func TestCellInto(t *testing.T) {
	c := benchChunkForTest(t)
	var buf Coord
	for i := 0; i < c.Len(); i++ {
		buf = c.CellInto(i, buf)
		if !buf.Equal(c.Cell(i)) {
			t.Fatalf("CellInto(%d) = %v, Cell = %v", i, buf, c.Cell(i))
		}
	}
}

func benchChunkForTest(t *testing.T) *Chunk {
	t.Helper()
	s := MustSchema("CellIntoA",
		[]Attribute{{Name: "v", Type: Float64}},
		[]Dimension{
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	c := NewChunkCap(s, ChunkCoord{1, 2}, 16)
	for i := int64(0); i < 16; i++ {
		c.AppendCell(Coord{4 + i%4, 8 + i/4}, []CellValue{{Float: float64(i)}})
	}
	return c
}
