package ring

import (
	"fmt"
	"testing"
)

func BenchmarkOwner(b *testing.B) {
	r := MustNew(128)
	for n := 0; n < 8; n++ {
		if err := r.Add(n); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("chunk-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i%len(keys)])
	}
}

func BenchmarkAddNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := MustNew(128)
		for n := 0; n < 8; n++ {
			if err := r.Add(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}
