// Package ring implements Karger-style consistent hashing (the paper's
// reference [24]) with virtual nodes. Keys and nodes hash onto the
// circumference of a circle; a key is owned by the first node clockwise
// from its position. Adding a node steals only the arc segments that now
// fall to it — the property that makes the Consistent Hash partitioner
// incremental: chunks move only from a few predecessors to the new node.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash circle mapping string keys to integer node IDs.
// The zero value is not usable; construct with New. Ring is not safe for
// concurrent mutation.
type Ring struct {
	replicas int
	points   []point // sorted by hash
	nodes    map[int]bool
}

type point struct {
	hash uint64
	node int
}

// New returns an empty ring that places each node at `replicas` positions
// (virtual nodes). More replicas → smoother balance, larger table.
func New(replicas int) (*Ring, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("ring: replicas must be >= 1, got %d", replicas)
	}
	return &Ring{replicas: replicas, nodes: make(map[int]bool)}, nil
}

// MustNew is New that panics on error.
func MustNew(replicas int) *Ring {
	r, err := New(replicas)
	if err != nil {
		panic(err)
	}
	return r
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer; it scatters the correlated FNV values
// that near-identical keys (node-0-replica-1, node-0-replica-2, …) produce,
// so virtual nodes land uniformly around the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the node IDs on the ring in ascending order.
func (r *Ring) Nodes() []int {
	out := make([]int, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Has reports whether the node is on the ring.
func (r *Ring) Has(node int) bool { return r.nodes[node] }

// Add places a node (at its virtual positions) on the ring. Adding an
// existing node is an error.
func (r *Ring) Add(node int) error {
	if r.nodes[node] {
		return fmt.Errorf("ring: node %d already present", node)
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		h := hashKey(fmt.Sprintf("node-%d-replica-%d", node, i))
		r.points = append(r.points, point{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// Remove deletes a node and all its virtual positions.
func (r *Ring) Remove(node int) error {
	if !r.nodes[node] {
		return fmt.Errorf("ring: node %d not present", node)
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Owner returns the node that owns the key: the first virtual position at
// or clockwise after the key's hash. It panics on an empty ring.
func (r *Ring) Owner(key string) int {
	return r.OwnerHash(hashKey(key))
}

// OwnerHash returns the node owning a pre-hashed position on the circle —
// the allocation-free lookup for callers that hash fixed-size keys
// themselves. h must be well dispersed (already mixed); it is used as the
// circle position directly. It panics on an empty ring.
func (r *Ring) OwnerHash(h uint64) int {
	if len(r.points) == 0 {
		panic("ring: Owner on empty ring")
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].node
}
