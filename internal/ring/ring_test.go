package ring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("replicas=0 should fail")
	}
	if _, err := New(64); err != nil {
		t.Errorf("replicas=64: %v", err)
	}
}

func TestAddRemoveHas(t *testing.T) {
	r := MustNew(16)
	if err := r.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(1); err == nil {
		t.Error("duplicate Add should fail")
	}
	if !r.Has(1) || r.Has(2) {
		t.Error("Has misreports")
	}
	if err := r.Remove(2); err == nil {
		t.Error("removing absent node should fail")
	}
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after remove, want 0", r.Len())
	}
}

func TestOwnerDeterministic(t *testing.T) {
	r := MustNew(32)
	for n := 0; n < 4; n++ {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("chunk-%d", i)
		a, b := r.Owner(key), r.Owner(key)
		if a != b {
			t.Fatalf("Owner(%q) unstable: %d vs %d", key, a, b)
		}
	}
}

func TestOwnerEmptyPanics(t *testing.T) {
	r := MustNew(4)
	defer func() {
		if recover() == nil {
			t.Error("Owner on empty ring should panic")
		}
	}()
	r.Owner("k")
}

func TestBalanceWithVirtualNodes(t *testing.T) {
	r := MustNew(128)
	const nodes = 8
	for n := 0; n < nodes; n++ {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, nodes)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for n, c := range counts {
		frac := float64(c) / keys
		if frac < 0.04 || frac > 0.25 {
			t.Errorf("node %d owns %.1f%% of keys, want near %.1f%%", n, frac*100, 100.0/nodes)
		}
	}
}

func TestIncrementalityOnAdd(t *testing.T) {
	// The consistent-hashing contract: when a node joins, keys may move
	// only TO the new node, never between preexisting nodes.
	r := MustNew(64)
	for n := 0; n < 4; n++ {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 2000
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	if err := r.Add(4); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if after != before[i] {
			if after != 4 {
				t.Fatalf("key-%d moved %d -> %d (not the new node)", i, before[i], after)
			}
			moved++
		}
	}
	// Roughly 1/5th of keys should move; tolerate wide variance.
	if moved == 0 || moved > keys/2 {
		t.Errorf("%d of %d keys moved to the new node; implausible", moved, keys)
	}
}

func TestRemovalOnlyMovesOrphans(t *testing.T) {
	r := MustNew(64)
	for n := 0; n < 5; n++ {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 1000
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	if err := r.Remove(2); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if before[i] != 2 && after != before[i] {
			t.Fatalf("key-%d moved %d -> %d though its owner remained", i, before[i], after)
		}
		if after == 2 {
			t.Fatalf("key-%d still owned by removed node", i)
		}
	}
}

func TestNodesSorted(t *testing.T) {
	r := MustNew(8)
	for _, n := range []int{5, 1, 3} {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Nodes()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestOwnerAlwaysAMember(t *testing.T) {
	r := MustNew(16)
	for n := 0; n < 3; n++ {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	f := func(key string) bool {
		o := r.Owner(key)
		return o >= 0 && o < 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
