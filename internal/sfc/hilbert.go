// Package sfc implements the space-filling-curve machinery behind the
// Hilbert Curve elastic partitioner (Section 4.2 of the paper): an
// n-dimensional Hilbert transform (Skilling's transpose algorithm) plus a
// generalized pseudo-Hilbert order for arbitrary (non power-of-two,
// non-square) rectangles, in the spirit of Zhang et al.'s pseudo-Hilbert
// scan for rectangles, which the paper cites as [32].
//
// The partitioner only needs a total order over chunk coordinates in which
// neighbours on the curve are close in Euclidean space; the rectangle
// generalization embeds the grid in the smallest enclosing power-of-two
// hypercube and ranks occupied coordinates by their cube Hilbert index,
// preserving that locality property for every grid shape.
package sfc

import "fmt"

// MaxTotalBits is the largest dims*bits product supported: the Hilbert
// index must fit in a uint64.
const MaxTotalBits = 63

// Curve maps between n-dimensional coordinates and positions on a Hilbert
// curve filling the hypercube [0, 2^bits)^dims.
type Curve struct {
	dims int
	bits uint
}

// NewCurve returns a Hilbert curve over [0, 2^bits)^dims.
func NewCurve(dims int, bits uint) (*Curve, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if bits < 1 {
		return nil, fmt.Errorf("sfc: bits must be >= 1, got %d", bits)
	}
	if uint(dims)*bits > MaxTotalBits {
		return nil, fmt.Errorf("sfc: dims*bits = %d exceeds %d", uint(dims)*bits, MaxTotalBits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// MustCurve is NewCurve that panics on error.
func MustCurve(dims int, bits uint) *Curve {
	c, err := NewCurve(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-dimension bit depth.
func (c *Curve) Bits() uint { return c.bits }

// Size returns the number of points on the curve (2^(dims*bits)).
func (c *Curve) Size() uint64 { return 1 << (uint(c.dims) * c.bits) }

// Index returns the Hilbert index of the coordinate. Each coordinate must
// lie in [0, 2^bits).
func (c *Curve) Index(coords []uint64) (uint64, error) {
	if len(coords) != c.dims {
		return 0, fmt.Errorf("sfc: got %d coordinates, curve has %d dims", len(coords), c.dims)
	}
	limit := uint64(1) << c.bits
	x := make([]uint64, c.dims)
	for i, v := range coords {
		if v >= limit {
			return 0, fmt.Errorf("sfc: coordinate %d = %d outside [0,%d)", i, v, limit)
		}
		x[i] = v
	}
	axesToTranspose(x, c.bits)
	return c.transposeToIndex(x), nil
}

// Coords returns the coordinate at Hilbert index h (the inverse of Index).
func (c *Curve) Coords(h uint64) ([]uint64, error) {
	if h >= c.Size() {
		return nil, fmt.Errorf("sfc: index %d outside curve of size %d", h, c.Size())
	}
	x := c.indexToTranspose(h)
	transposeToAxes(x, c.bits)
	return x, nil
}

// transposeToIndex interleaves the transpose representation into a single
// integer: bit (bits-1) of x[0] is the most significant bit of the index,
// followed by bit (bits-1) of x[1], and so on.
func (c *Curve) transposeToIndex(x []uint64) uint64 {
	var h uint64
	for b := int(c.bits) - 1; b >= 0; b-- {
		for i := 0; i < c.dims; i++ {
			h = (h << 1) | ((x[i] >> uint(b)) & 1)
		}
	}
	return h
}

// indexToTranspose is the inverse of transposeToIndex.
func (c *Curve) indexToTranspose(h uint64) []uint64 {
	x := make([]uint64, c.dims)
	pos := int(c.bits)*c.dims - 1
	for b := int(c.bits) - 1; b >= 0; b-- {
		for i := 0; i < c.dims; i++ {
			x[i] |= ((h >> uint(pos)) & 1) << uint(b)
			pos--
		}
	}
	return x
}

// axesToTranspose converts cartesian coordinates (b bits each) into the
// transposed Hilbert representation in place. This is Skilling's
// "AxestoTranspose" (Programming the Hilbert curve, 2004).
func axesToTranspose(x []uint64, bits uint) {
	n := len(x)
	m := uint64(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose (Skilling's
// "TransposetoAxes").
func transposeToAxes(x []uint64, bits uint) {
	n := len(x)
	m := uint64(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
