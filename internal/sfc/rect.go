package sfc

import "fmt"

// RectOrder ranks the points of an arbitrary n-dimensional rectangle
// [0,extent[0]) × … × [0,extent[d-1]) along a pseudo-Hilbert order: the
// rectangle is embedded in the smallest enclosing power-of-two hypercube and
// points are ranked by their cube Hilbert index. The rank is a total order
// with the Hilbert locality property — coordinates adjacent on the order are
// close in Euclidean space — which is the property the Hilbert Curve
// partitioner exploits when it assigns contiguous index ranges to nodes.
type RectOrder struct {
	curve   *Curve
	extents []int64
}

// NewRectOrder builds the order for the given per-dimension extents. Every
// extent must be positive.
func NewRectOrder(extents []int64) (*RectOrder, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("sfc: rectangle needs at least one dimension")
	}
	var maxExt int64 = 1
	for i, e := range extents {
		if e <= 0 {
			return nil, fmt.Errorf("sfc: extent %d = %d must be positive", i, e)
		}
		if e > maxExt {
			maxExt = e
		}
	}
	bits := uint(1)
	for int64(1)<<bits < maxExt {
		bits++
	}
	// Dimensionality may force fewer bits than the extent wants; reject
	// only if the cube cannot cover the rectangle within MaxTotalBits.
	if uint(len(extents))*bits > MaxTotalBits {
		return nil, fmt.Errorf("sfc: rectangle %v needs %d total bits, max %d", extents, uint(len(extents))*bits, MaxTotalBits)
	}
	c, err := NewCurve(len(extents), bits)
	if err != nil {
		return nil, err
	}
	return &RectOrder{curve: c, extents: append([]int64(nil), extents...)}, nil
}

// MustRectOrder is NewRectOrder that panics on error.
func MustRectOrder(extents []int64) *RectOrder {
	r, err := NewRectOrder(extents)
	if err != nil {
		panic(err)
	}
	return r
}

// Extents returns a copy of the rectangle's per-dimension extents.
func (r *RectOrder) Extents() []int64 { return append([]int64(nil), r.extents...) }

// Contains reports whether the coordinate lies inside the rectangle.
func (r *RectOrder) Contains(coords []int64) bool {
	if len(coords) != len(r.extents) {
		return false
	}
	for i, v := range coords {
		if v < 0 || v >= r.extents[i] {
			return false
		}
	}
	return true
}

// Rank returns the pseudo-Hilbert rank of the coordinate. Coordinates
// outside the rectangle return an error.
func (r *RectOrder) Rank(coords []int64) (uint64, error) {
	if !r.Contains(coords) {
		return 0, fmt.Errorf("sfc: coordinate %v outside rectangle %v", coords, r.extents)
	}
	u := make([]uint64, len(coords))
	for i, v := range coords {
		u[i] = uint64(v)
	}
	return r.curve.Index(u)
}

// MaxRank returns the largest rank any in-rectangle coordinate can take
// (the size of the enclosing cube minus one). Ranks are sparse within
// [0, MaxRank] when the rectangle is not a power-of-two cube.
func (r *RectOrder) MaxRank() uint64 { return r.curve.Size() - 1 }
