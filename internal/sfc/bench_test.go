package sfc

import "testing"

func BenchmarkIndex2D(b *testing.B) {
	c := MustCurve(2, 10)
	coords := []uint64{513, 740}
	for i := 0; i < b.N; i++ {
		if _, err := c.Index(coords); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndex3D(b *testing.B) {
	c := MustCurve(3, 10)
	coords := []uint64{513, 740, 12}
	for i := 0; i < b.N; i++ {
		if _, err := c.Index(coords); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoords2D(b *testing.B) {
	c := MustCurve(2, 10)
	for i := 0; i < b.N; i++ {
		if _, err := c.Coords(uint64(i) % c.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRectRank(b *testing.B) {
	r := MustRectOrder([]int64{29, 23})
	coords := []int64{17, 11}
	for i := 0; i < b.N; i++ {
		if _, err := r.Rank(coords); err != nil {
			b.Fatal(err)
		}
	}
}
