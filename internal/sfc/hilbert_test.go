package sfc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve(0, 4); err == nil {
		t.Error("dims=0 should fail")
	}
	if _, err := NewCurve(2, 0); err == nil {
		t.Error("bits=0 should fail")
	}
	if _, err := NewCurve(8, 8); err == nil {
		t.Error("64 total bits should fail")
	}
	if _, err := NewCurve(3, 21); err != nil {
		t.Errorf("63 total bits should be fine: %v", err)
	}
}

func TestCurve2DKnownOrder(t *testing.T) {
	// The canonical order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0)
	// or its reflection; whichever orientation, consecutive indices must
	// be adjacent and all four cells visited exactly once.
	c := MustCurve(2, 1)
	seen := map[uint64][]uint64{}
	for h := uint64(0); h < 4; h++ {
		xy, err := c.Coords(h)
		if err != nil {
			t.Fatal(err)
		}
		seen[h] = xy
	}
	if len(seen) != 4 {
		t.Fatalf("visited %d cells, want 4", len(seen))
	}
	for h := uint64(1); h < 4; h++ {
		d := manhattan(seen[h-1], seen[h])
		if d != 1 {
			t.Errorf("steps %d->%d jump distance %d, want 1", h-1, h, d)
		}
	}
}

func manhattan(a, b []uint64) int64 {
	var d int64
	for i := range a {
		x := int64(a[i]) - int64(b[i])
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}

func TestCurveBijective2D(t *testing.T) {
	c := MustCurve(2, 4) // 16x16
	seen := make(map[uint64]bool, 256)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			h, err := c.Index([]uint64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if seen[h] {
				t.Fatalf("index %d hit twice", h)
			}
			seen[h] = true
			back, err := c.Coords(h)
			if err != nil {
				t.Fatal(err)
			}
			if back[0] != x || back[1] != y {
				t.Fatalf("Coords(Index(%d,%d)) = %v", x, y, back)
			}
		}
	}
	if len(seen) != 256 {
		t.Fatalf("saw %d distinct indices, want 256", len(seen))
	}
}

func TestCurveAdjacency2D(t *testing.T) {
	// Defining property of the Hilbert curve: consecutive indices are
	// unit steps in space.
	c := MustCurve(2, 5)
	prev, err := c.Coords(0)
	if err != nil {
		t.Fatal(err)
	}
	for h := uint64(1); h < c.Size(); h++ {
		cur, err := c.Coords(h)
		if err != nil {
			t.Fatal(err)
		}
		if manhattan(prev, cur) != 1 {
			t.Fatalf("indices %d,%d are %d apart in space", h-1, h, manhattan(prev, cur))
		}
		prev = cur
	}
}

func TestCurveAdjacency3D(t *testing.T) {
	c := MustCurve(3, 3)
	prev, _ := c.Coords(0)
	for h := uint64(1); h < c.Size(); h++ {
		cur, err := c.Coords(h)
		if err != nil {
			t.Fatal(err)
		}
		if manhattan(prev, cur) != 1 {
			t.Fatalf("3D indices %d,%d are %d apart", h-1, h, manhattan(prev, cur))
		}
		prev = cur
	}
}

func TestCurveRoundTripProperty(t *testing.T) {
	c := MustCurve(3, 6)
	f := func(a, b, d uint16) bool {
		coords := []uint64{uint64(a) % 64, uint64(b) % 64, uint64(d) % 64}
		h, err := c.Index(coords)
		if err != nil {
			return false
		}
		back, err := c.Coords(h)
		if err != nil {
			return false
		}
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveIndexErrors(t *testing.T) {
	c := MustCurve(2, 3)
	if _, err := c.Index([]uint64{1}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := c.Index([]uint64{8, 0}); err == nil {
		t.Error("out-of-cube coordinate should fail")
	}
	if _, err := c.Coords(c.Size()); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestRectOrderValidation(t *testing.T) {
	if _, err := NewRectOrder(nil); err == nil {
		t.Error("no dims should fail")
	}
	if _, err := NewRectOrder([]int64{4, 0}); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := NewRectOrder([]int64{1 << 40, 1 << 40}); err == nil {
		t.Error("oversized rectangle should fail")
	}
}

func TestRectOrderDistinctRanks(t *testing.T) {
	r := MustRectOrder([]int64{29, 23}) // AIS-like lon × lat chunk grid
	seen := make(map[uint64][2]int64)
	for x := int64(0); x < 29; x++ {
		for y := int64(0); y < 23; y++ {
			rank, err := r.Rank([]int64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := seen[rank]; dup {
				t.Fatalf("rank %d for both %v and (%d,%d)", rank, prev, x, y)
			}
			seen[rank] = [2]int64{x, y}
			if rank > r.MaxRank() {
				t.Fatalf("rank %d exceeds MaxRank %d", rank, r.MaxRank())
			}
		}
	}
}

func TestRectOrderLocality(t *testing.T) {
	// Sort all cells of a 16x16 grid by rank; mean Euclidean distance of
	// rank-adjacent cells must be far below that of a row-major order's
	// wrap-around jumps — we check it stays under 1.7 (true Hilbert is
	// exactly 1; the rectangle embedding can skip over out-of-rectangle
	// cube cells).
	r := MustRectOrder([]int64{16, 16})
	var cells []rankedCell
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			rank, err := r.Rank([]int64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, rankedCell{rank, x, y})
		}
	}
	sortCells(cells)
	var total float64
	for i := 1; i < len(cells); i++ {
		dx := float64(cells[i].x - cells[i-1].x)
		dy := float64(cells[i].y - cells[i-1].y)
		total += math.Hypot(dx, dy)
	}
	mean := total / float64(len(cells)-1)
	if mean > 1.7 {
		t.Errorf("mean rank-adjacent distance %.2f, want <= 1.7", mean)
	}
}

type rankedCell struct {
	rank uint64
	x, y int64
}

func sortCells(cells []rankedCell) {
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && cells[j].rank < cells[j-1].rank; j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
}

func TestRectOrderContains(t *testing.T) {
	r := MustRectOrder([]int64{4, 8})
	if !r.Contains([]int64{3, 7}) {
		t.Error("(3,7) should be inside")
	}
	if r.Contains([]int64{4, 0}) || r.Contains([]int64{0, -1}) || r.Contains([]int64{1}) {
		t.Error("out-of-rectangle coordinates should be rejected")
	}
	if _, err := r.Rank([]int64{4, 0}); err == nil {
		t.Error("Rank outside rectangle should fail")
	}
	ext := r.Extents()
	ext[0] = 99
	if r.Extents()[0] != 4 {
		t.Error("Extents must return a copy")
	}
}

func TestRectOrder3D(t *testing.T) {
	r := MustRectOrder([]int64{5, 29, 23})
	seen := map[uint64]bool{}
	for x := int64(0); x < 5; x++ {
		for y := int64(0); y < 29; y++ {
			for z := int64(0); z < 23; z++ {
				rank, err := r.Rank([]int64{x, y, z})
				if err != nil {
					t.Fatal(err)
				}
				if seen[rank] {
					t.Fatal("duplicate rank in 3D rectangle")
				}
				seen[rank] = true
			}
		}
	}
}
