// Package core is the paper's primary contribution assembled: incremental
// elasticity for an array database. An Engine drives the cyclic workload
// model of Section 3.4 — data ingest, reorganization, processing — against
// the shared-nothing cluster substrate, deciding when to scale out either
// with the leading-staircase PD controller (Section 5) or with the fixed
// "add k nodes at capacity" schedule the partitioner experiments use
// (Section 6.2), and recording the per-cycle statistics every figure and
// table of the evaluation is derived from.
package core

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/provision"
	"repro/internal/query"
	"repro/internal/supervisor"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Config assembles an elastic array database run.
type Config struct {
	// PartitionerKind is one of partition.Kinds().
	PartitionerKind string
	// PartitionerOptions tunes the scheme; Append's NodeCapacity is
	// filled from NodeCapacity automatically when zero.
	PartitionerOptions partition.Options
	// InitialNodes is the starting cluster size (the paper: 2).
	InitialNodes int
	// NodeCapacity is c in bytes.
	NodeCapacity int64
	// Cost overrides the simulated cost model (zero = defaults).
	Cost cluster.CostModel
	// Controller, when non-nil, decides scale-outs (leading staircase).
	// When nil the engine uses the fixed schedule: add FixedStep nodes
	// whenever the incoming insert exceeds capacity.
	Controller *provision.Controller
	// FixedStep is the fixed-schedule step size (default 2, as in the
	// partitioner experiments).
	FixedStep int
	// MaxNodes caps the cluster (0 = uncapped; the paper's testbed: 8).
	MaxNodes int
	// RunQueries runs the workload's benchmark suite each cycle.
	RunQueries bool
	// Parallelism caps the query scan executor's worker pool
	// (cluster.Config.Parallelism): 0 gates it at GOMAXPROCS, an
	// explicit value pins the worker count for benchmark sweeps.
	Parallelism int
	// ReplicationFactor is the number of copies kept of each primary
	// chunk (cluster.Config.ReplicationFactor): 0 or 1 stores primaries
	// only; R >= 2 places R-1 secondary copies on distinct nodes so the
	// cluster survives node failures (Cluster.FailNode / PlanRecover).
	ReplicationFactor int
	// AdviseArrays, when non-empty, attaches a continuous co-access
	// advisor (advisor.Live) over the named arrays: the advisor's graph
	// is patched incrementally from the cluster's placement change feed
	// as cycles ingest and rebalance, so Engine.Advisor().Advise costs
	// O(what changed) instead of a per-call cluster walk. The arrays
	// must be among the generator's schemas.
	AdviseArrays []string
	// Transport, when non-nil, routes inter-node data paths — ingest
	// writes, rebalance batches, query-side chunk pulls — through the
	// given node transport (cluster.Config.Transport): transport.Loopback
	// for an in-process seam, transport.TCP for real sockets. Nil keeps
	// the direct in-process paths.
	Transport transport.Transport
	// Supervise, when non-nil, attaches and starts a self-healing
	// supervisor over the cluster: nodes heartbeat the coordinator, a
	// failure detector turns silence into Suspect/Down verdicts, and the
	// supervisor runs FailNode → PlanRecover → ExecuteRebalance (and
	// RecoverNode on return) automatically. Requires Transport. The
	// zero-value supervisor.Options{} selects all defaults.
	Supervise *supervisor.Options
}

// CycleStats records one workload cycle: the three phase durations, the
// provisioning action, and the load-balance metric. The paper's Equation 1
// cost of the cycle is NodeSeconds.
type CycleStats struct {
	Cycle       int
	DemandBytes int64 // storage demand including this cycle's insert
	NodesBefore int
	NodesAfter  int
	Added       int
	MovedBytes  int64
	Insert      cluster.Duration
	Reorg       cluster.Duration
	Query       cluster.Duration
	RSD         float64
	Suite       query.SuiteResult
}

// NodeSeconds is the cycle's cost by Equation 1: node count times the sum
// of insert, reorganization and query-workload time.
func (s CycleStats) NodeSeconds() float64 {
	return float64(s.NodesAfter) * (s.Insert + s.Reorg + s.Query).Seconds()
}

// Engine drives a generator's cyclic workload against an elastic cluster.
type Engine struct {
	cfg     Config
	gen     workload.Generator
	cluster *cluster.Cluster
	suite   func(*cluster.Cluster, int) (query.SuiteResult, error)
	live    *advisor.Live
	sup     *supervisor.Supervisor
	cycle   int
}

// NewEngine validates the configuration, builds the cluster with the named
// partitioner over the generator's chunk-grid geometry, registers the
// workload's schemas and replicates its dimension arrays.
func NewEngine(gen workload.Generator, cfg Config) (*Engine, error) {
	if gen == nil {
		return nil, fmt.Errorf("core: generator is required")
	}
	if cfg.FixedStep == 0 {
		cfg.FixedStep = 2
	}
	if cfg.FixedStep < 0 {
		return nil, fmt.Errorf("core: FixedStep must be positive")
	}
	if cfg.PartitionerOptions.NodeCapacity == 0 {
		cfg.PartitionerOptions.NodeCapacity = cfg.NodeCapacity
	}
	geom := gen.Geometry()
	cl, err := cluster.New(cluster.Config{
		InitialNodes:      cfg.InitialNodes,
		NodeCapacity:      cfg.NodeCapacity,
		Cost:              cfg.Cost,
		Parallelism:       cfg.Parallelism,
		ReplicationFactor: cfg.ReplicationFactor,
		Transport:         cfg.Transport,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(cfg.PartitionerKind, initial, geom, cfg.PartitionerOptions)
		},
	})
	if err != nil {
		return nil, err
	}
	for _, s := range gen.Schemas() {
		if err := cl.DefineArray(s); err != nil {
			return nil, err
		}
	}
	if rs, rchunks := gen.Replicated(); rs != nil {
		if _, err := cl.ReplicateArray(rs, rchunks); err != nil {
			return nil, err
		}
	}
	e := &Engine{cfg: cfg, gen: gen, cluster: cl}
	if len(cfg.AdviseArrays) > 0 {
		e.live, err = advisor.NewLive(cl, cfg.AdviseArrays)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Supervise != nil {
		e.sup, err = supervisor.New(cl, *cfg.Supervise)
		if err != nil {
			return nil, err
		}
		if err := e.sup.Start(); err != nil {
			return nil, err
		}
	}
	switch gen.Name() {
	case "MODIS":
		e.suite = query.MODISSuite
	case "AIS":
		e.suite = query.AISSuite
	default:
		e.suite = nil // unknown workloads run without a benchmark suite
	}
	return e, nil
}

// Cluster exposes the underlying database for inspection and ad-hoc
// queries.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Close stops the supervisor (when one was attached) and releases the
// engine's cluster transport endpoints (listeners, pooled connections). A
// transportless engine has nothing to release.
func (e *Engine) Close() error {
	if e.sup != nil {
		e.sup.Stop()
	}
	return e.cluster.Close()
}

// Supervisor returns the self-healing supervisor attached via
// Config.Supervise, or nil when none was configured.
func (e *Engine) Supervisor() *supervisor.Supervisor { return e.sup }

// Advisor returns the continuous co-access advisor attached via
// Config.AdviseArrays, or nil when none was configured. Its graph follows
// every cycle's ingest and reorganization incrementally; call
// Advisor().Advise between cycles for an O(delta) placement
// recommendation.
func (e *Engine) Advisor() *advisor.Live { return e.live }

// Cycle returns the number of workload cycles completed.
func (e *Engine) Cycle() int { return e.cycle }

// RunCycle executes the next workload cycle: generate the insert batch,
// decide the scale-out (before inserting, as in Section 3.4: the database
// first determines whether it is under-provisioned for the incoming
// insert), reorganize, ingest, then run the benchmark suite. Both
// elasticity phases run through their two-phase pipelines explicitly:
// the scale-out is planned (nodes provisioned, table revised, moves
// validated and grouped per receiver) and then executed as batched
// receiver-parallel transfers, and the ingest batch is planned after the
// rebalance has settled the topology, then executed with per-destination
// parallelism.
func (e *Engine) RunCycle() (CycleStats, error) {
	i := e.cycle
	if i >= e.gen.Cycles() {
		return CycleStats{}, fmt.Errorf("core: workload exhausted after %d cycles", e.gen.Cycles())
	}
	batch, err := e.gen.Batch(i)
	if err != nil {
		return CycleStats{}, err
	}
	demand := e.cluster.TotalBytes() + workload.BatchBytes(batch)
	stats := CycleStats{
		Cycle:       i,
		DemandBytes: demand,
		NodesBefore: e.cluster.NumNodes(),
	}
	k := e.planStep(float64(demand))
	if k > 0 {
		rplan, err := e.cluster.PlanScaleOut(k)
		if err != nil {
			return stats, err
		}
		stats.Added = len(rplan.Added())
		stats.MovedBytes = rplan.Bytes()
		stats.Reorg, err = e.cluster.ExecuteRebalance(rplan)
		if err != nil {
			return stats, err
		}
	}
	stats.NodesAfter = e.cluster.NumNodes()
	plan, err := e.cluster.PlanInsert(batch)
	if err != nil {
		return stats, err
	}
	stats.Insert, err = e.cluster.ExecutePlan(plan)
	if err != nil {
		return stats, err
	}
	stats.RSD = e.cluster.RSD()
	if e.cfg.RunQueries && e.suite != nil {
		stats.Suite, err = e.suite(e.cluster, i)
		if err != nil {
			return stats, err
		}
		stats.Query = stats.Suite.Total()
	}
	e.cycle++
	return stats, nil
}

// planStep decides how many nodes to add for the given demand.
func (e *Engine) planStep(demand float64) int {
	var k int
	if e.cfg.Controller != nil {
		e.cfg.Controller.Observe(demand)
		k = e.cfg.Controller.Plan(e.cluster.NumNodes())
	} else if demand > float64(e.cluster.Capacity()) {
		k = e.cfg.FixedStep
	}
	if e.cfg.MaxNodes > 0 && e.cluster.NumNodes()+k > e.cfg.MaxNodes {
		k = e.cfg.MaxNodes - e.cluster.NumNodes()
	}
	if k < 0 {
		k = 0
	}
	return k
}

// Run executes every remaining workload cycle and returns the per-cycle
// statistics.
func (e *Engine) Run() ([]CycleStats, error) {
	var out []CycleStats
	for e.cycle < e.gen.Cycles() {
		s, err := e.RunCycle()
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// TotalNodeSeconds sums Equation 1 over a run.
func TotalNodeSeconds(stats []CycleStats) float64 {
	var total float64
	for _, s := range stats {
		total += s.NodeSeconds()
	}
	return total
}
