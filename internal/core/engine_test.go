package core

import (
	"testing"

	"repro/internal/advisor"
	"repro/internal/provision"
	"repro/internal/workload"
)

func modisGen(t *testing.T, cycles int) *workload.MODIS {
	t.Helper()
	g, err := workload.NewMODIS(workload.MODISConfig{Cycles: cycles, BaseCells: 12})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func aisGen(t *testing.T, cycles int) *workload.AIS {
	t.Helper()
	g, err := workload.NewAIS(workload.AISConfig{Cycles: cycles, CellsPerCycle: 1500})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func capacityFor(t *testing.T, g workload.Generator, fractionOfTotal int) int64 {
	t.Helper()
	_, total, err := workload.TotalBytes(g)
	if err != nil {
		t.Fatal(err)
	}
	return total/int64(fractionOfTotal) + 1
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Config{}); err == nil {
		t.Error("nil generator should fail")
	}
	g := modisGen(t, 2)
	if _, err := NewEngine(g, Config{PartitionerKind: "nope", InitialNodes: 2, NodeCapacity: 1 << 20}); err == nil {
		t.Error("unknown partitioner should fail")
	}
	if _, err := NewEngine(g, Config{PartitionerKind: "kdtree", InitialNodes: 0, NodeCapacity: 1 << 20}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewEngine(g, Config{PartitionerKind: "kdtree", InitialNodes: 2, NodeCapacity: 1 << 20, FixedStep: -1}); err == nil {
		t.Error("negative step should fail")
	}
}

// TestEngineContinuousAdvisor: an engine configured with AdviseArrays
// carries a live advisor whose graph follows every cycle's ingest and
// scale-out incrementally — after a full run, advising costs no rebuild
// beyond the warm-up one and matches the cold rebuild-per-call path.
func TestEngineContinuousAdvisor(t *testing.T) {
	g := modisGen(t, 5)
	eng, err := NewEngine(g, Config{
		PartitionerKind: "consistent",
		InitialNodes:    2,
		NodeCapacity:    capacityFor(t, g, 6),
		FixedStep:       2,
		MaxNodes:        8,
		AdviseArrays:    []string{"Band1", "Band2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	live := eng.Advisor()
	if live == nil {
		t.Fatal("AdviseArrays should attach a continuous advisor")
	}
	if err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	warm, err := live.Advise(1000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	warm.Plan.Discard()
	cold, err := advisor.Advise(eng.Cluster(), []string{"Band1", "Band2"}, 1000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	cold.Plan.Discard()
	if warm.RemoteBytesBefore != cold.RemoteBytesBefore || warm.RemoteBytesAfter != cold.RemoteBytesAfter {
		t.Fatalf("continuous advisor diverged from rebuild: %d→%d vs %d→%d",
			warm.RemoteBytesBefore, warm.RemoteBytesAfter, cold.RemoteBytesBefore, cold.RemoteBytesAfter)
	}
	if len(warm.Moves) != len(cold.Moves) {
		t.Fatalf("continuous advisor proposes %d moves, rebuild %d", len(warm.Moves), len(cold.Moves))
	}
	if n := live.Rebuilds(); n != 1 {
		t.Fatalf("live advisor rebuilt %d times across the run; want the warm-up build only", n)
	}
	if _, err := NewEngine(modisGen(t, 2), Config{
		PartitionerKind: "consistent",
		InitialNodes:    2,
		NodeCapacity:    1 << 24,
		AdviseArrays:    []string{"NotAnArray"},
	}); err == nil {
		t.Error("advising an undefined array should fail engine construction")
	}
}

func TestFixedScheduleGrowsToCap(t *testing.T) {
	g := modisGen(t, 6)
	eng, err := NewEngine(g, Config{
		PartitionerKind: "kdtree",
		InitialNodes:    2,
		NodeCapacity:    capacityFor(t, g, 6),
		FixedStep:       2,
		MaxNodes:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("ran %d cycles, want 6", len(stats))
	}
	if eng.Cluster().NumNodes() < 4 || eng.Cluster().NumNodes() > 8 {
		t.Errorf("final nodes = %d, want growth within cap", eng.Cluster().NumNodes())
	}
	// Per-cycle bookkeeping invariants.
	for i, s := range stats {
		if s.Cycle != i {
			t.Errorf("stats[%d].Cycle = %d", i, s.Cycle)
		}
		if s.Insert <= 0 {
			t.Errorf("cycle %d: non-positive insert time", i)
		}
		if s.NodesAfter < s.NodesBefore {
			t.Errorf("cycle %d: cluster shrank", i)
		}
		if s.Added > 0 && s.Reorg <= 0 {
			t.Errorf("cycle %d: scale-out without reorg time", i)
		}
		if s.Added == 0 && s.MovedBytes != 0 {
			t.Errorf("cycle %d: moved bytes without scale-out", i)
		}
		if s.NodeSeconds() <= 0 {
			t.Errorf("cycle %d: non-positive Eq 1 cost", i)
		}
	}
	if err := eng.Cluster().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunCycle(); err == nil {
		t.Error("running past the workload end should fail")
	}
}

func TestControllerDrivenStaircase(t *testing.T) {
	g := modisGen(t, 8)
	cap := capacityFor(t, g, 6)
	ctrl, err := provision.NewController(2, 3, float64(cap))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, Config{
		PartitionerKind: "consistent",
		InitialNodes:    2,
		NodeCapacity:    cap,
		Controller:      ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The staircase property: demand never ends a cycle above capacity.
	for _, s := range stats {
		if float64(s.DemandBytes) > float64(s.NodesAfter)*float64(cap) {
			t.Errorf("cycle %d: demand %d above provisioned %d×%d", s.Cycle, s.DemandBytes, s.NodesAfter, cap)
		}
	}
	if eng.Cluster().NumNodes() <= 2 {
		t.Error("controller never scaled out")
	}
}

func TestQueriesRunWhenEnabled(t *testing.T) {
	g := aisGen(t, 3)
	eng, err := NewEngine(g, Config{
		PartitionerKind: "hilbert",
		InitialNodes:    2,
		NodeCapacity:    capacityFor(t, g, 4),
		RunQueries:      true,
		MaxNodes:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Query <= 0 {
			t.Errorf("cycle %d: benchmark did not run", s.Cycle)
		}
		if len(s.Suite.PerQuery) != 6 {
			t.Errorf("cycle %d: %d queries, want 6", s.Cycle, len(s.Suite.PerQuery))
		}
	}
	if TotalNodeSeconds(stats) <= 0 {
		t.Error("Eq 1 total must be positive")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []CycleStats {
		g := aisGen(t, 4)
		eng, err := NewEngine(g, Config{
			PartitionerKind: "kdtree",
			InitialNodes:    2,
			NodeCapacity:    capacityFor(t, g, 5),
			RunQueries:      true,
			MaxNodes:        8,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Insert != b[i].Insert || a[i].Reorg != b[i].Reorg || a[i].Query != b[i].Query ||
			a[i].RSD != b[i].RSD || a[i].MovedBytes != b[i].MovedBytes {
			t.Fatalf("cycle %d differs between identical runs", i)
		}
	}
}

func TestAppendNeverMovesData(t *testing.T) {
	g := modisGen(t, 5)
	eng, err := NewEngine(g, Config{
		PartitionerKind: "append",
		InitialNodes:    2,
		NodeCapacity:    capacityFor(t, g, 6),
		MaxNodes:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.MovedBytes != 0 {
			t.Errorf("cycle %d: append moved %d bytes", s.Cycle, s.MovedBytes)
		}
	}
}
