// Package benchfixture builds the MODIS-shaped workload the chunk-identity
// micro-benchmarks probe: a 3-D array (time × longitude × latitude) over a
// 36×31×16 chunk grid on a 4-node k-d tree cluster. It is shared between
// the go-test benchmarks (internal/cluster) and `elasticbench -json`, so
// the recorded perf trajectory always measures exactly the workload the
// in-repo benchmarks do.
package benchfixture

import (
	"math/rand"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/transport"
)

// NumChunks and CellsPerChunk size the benchmark chunk set.
const (
	NumChunks     = 360
	CellsPerChunk = 20
)

// Schema returns the 3-D MODIS-like band array.
func Schema() *array.Schema {
	return array.MustSchema("Band1",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 1},
			{Name: "longitude", Start: 0, End: 123, ChunkInterval: 4},
			{Name: "latitude", Start: 0, End: 63, ChunkInterval: 4},
		})
}

// Cluster builds the benchmark cluster with the band schema defined.
func Cluster(nodes int) (*cluster.Cluster, error) {
	return TransportCluster(nodes, 1, nil)
}

// TransportCluster builds the benchmark cluster shape with a node
// transport and replication factor — the transport-probe variant. A nil
// transport and replication <= 1 reproduce Cluster exactly. Callers owning
// a transport-backed cluster should Close it when done.
func TransportCluster(nodes, replication int, tr transport.Transport) (*cluster.Cluster, error) {
	if replication < 1 {
		replication = 1
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes:      nodes,
		NodeCapacity:      64 << 20,
		ReplicationFactor: replication,
		Transport:         tr,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewKdTree(initial, partition.Geometry{
				Extents:     []int64{36, 31, 16},
				SpatialDims: []int{1, 2},
			}, false)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := c.DefineArray(Schema()); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// Chunks scatters n chunks with `cells` occupied cells each over distinct
// 3-D grid slots, deterministically (seed 99).
func Chunks(n, cells int) []*array.Chunk {
	s := Schema()
	rng := rand.New(rand.NewSource(99))
	used := map[[3]int64]bool{}
	var out []*array.Chunk
	for len(out) < n {
		slot := [3]int64{rng.Int63n(36), rng.Int63n(31), rng.Int63n(16)}
		if used[slot] {
			continue
		}
		used[slot] = true
		cc := array.ChunkCoord{slot[0], slot[1], slot[2]}
		ch := array.NewChunkCap(s, cc, cells)
		origin := s.ChunkOrigin(cc)
		for k := 0; k < cells; k++ {
			cell := array.Coord{origin[0], origin[1] + int64(k%4), origin[2] + int64((k/4)%4)}
			ch.AppendCell(cell, []array.CellValue{{Float: rng.Float64()}})
		}
		out = append(out, ch)
	}
	return out
}

// ClusterAndChunks is the standard benchmark setup: a 4-node cluster plus
// the default chunk set (not yet inserted).
func ClusterAndChunks() (*cluster.Cluster, []*array.Chunk, error) {
	c, err := Cluster(4)
	if err != nil {
		return nil, nil, err
	}
	return c, Chunks(NumChunks, CellsPerChunk), nil
}
