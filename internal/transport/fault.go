package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
)

// FaultTransport wraps any Transport with programmable network faults —
// the wire-level mirror of the store layer's FaultStore: injectable
// latency on every verb, connection drops before delivery (the push never
// reaches the remote handler, so a retry is always safe), and partial
// writes (the stream is cut mid-batch, the receiver decodes a torn frame
// and unwinds, the sender sees a transient failure). Every synthetic
// failure wraps ErrInjected, and every injected failure is transient by
// IsTransient — this is exactly the fault class the cluster's
// TransferRetries/TransferBackoff loop is meant to absorb.
//
// Beyond the one-shot and random knobs, links can be blocked persistently
// and asymmetrically: BlockLink(a, b, mode) cuts a→b while b→a flows, and
// the mode selects which verbs die — LinkAnnounce alone models a lossy
// control path under which data still moves (heartbeats vanish, the node
// looks dead, yet fetches succeed), LinkData alone the inverse, LinkAll a
// full one-way partition. IsolateNode cuts every link touching a node in
// both directions — the standard "kill" a failure-detection drill injects.
//
// All knobs are safe for concurrent use with the transport itself.
type FaultTransport struct {
	inner Transport

	mu        sync.Mutex
	latency   time.Duration
	dropN     int     // drop the next n pushes before delivery
	truncateN int     // cut the next n pushes mid-stream
	dropRate  float64 // probability any push/fetch is dropped
	rng       *rand.Rand
	injected  int
	blocked   map[linkKey]LinkMode          // persistent directed link blocks
	isolated  map[partition.NodeID]LinkMode // nodes cut off in both directions
}

// LinkMode selects which verbs a blocked link refuses.
type LinkMode uint8

const (
	// LinkData blocks chunk pushes and fetches (the data plane).
	LinkData LinkMode = 1 << iota
	// LinkAnnounce blocks heartbeat/holdings announcements (the control
	// plane) while data still flows.
	LinkAnnounce
	// LinkAll blocks every verb on the link.
	LinkAll = LinkData | LinkAnnounce
)

type linkKey struct{ from, to partition.NodeID }

// truncatablePusher is the optional backend hook partial-write injection
// uses; both built-in backends implement it.
type truncatablePusher interface {
	pushTruncated(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error)
}

// NewFaultTransport wraps inner (NewLoopback() when nil) with no faults
// armed.
func NewFaultTransport(inner Transport) *FaultTransport {
	if inner == nil {
		inner = NewLoopback()
	}
	return &FaultTransport{inner: inner}
}

// SetLatency arms a fixed delay injected before every push, fetch and
// announce. Zero disarms.
func (f *FaultTransport) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// FailNextPushes arms the transport to drop the next n pushes before they
// reach the remote handler.
func (f *FaultTransport) FailNextPushes(n int) {
	f.mu.Lock()
	f.dropN = n
	f.mu.Unlock()
}

// TruncateNextPushes arms the transport to cut the next n pushes
// mid-stream: the receiver observes a torn batch, unwinds, and the sender
// gets a transient failure.
func (f *FaultTransport) TruncateNextPushes(n int) {
	f.mu.Lock()
	f.truncateN = n
	f.mu.Unlock()
}

// SetDropRate arms random connection drops with the given probability,
// deterministic for a given seed. Rate 0 disarms.
func (f *FaultTransport) SetDropRate(rate float64, seed int64) {
	f.mu.Lock()
	f.dropRate = rate
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// BlockLink cuts the directed link from → to for the verbs mode selects,
// until UnblockLink. The reverse direction is untouched, so an asymmetric
// partition (A reaches B, B cannot reach A) is two independent calls.
func (f *FaultTransport) BlockLink(from, to partition.NodeID, mode LinkMode) {
	f.mu.Lock()
	if f.blocked == nil {
		f.blocked = make(map[linkKey]LinkMode)
	}
	f.blocked[linkKey{from, to}] |= mode
	f.mu.Unlock()
}

// UnblockLink restores the directed link from → to.
func (f *FaultTransport) UnblockLink(from, to partition.NodeID) {
	f.mu.Lock()
	delete(f.blocked, linkKey{from, to})
	f.mu.Unlock()
}

// IsolateNode cuts every link touching the node, in both directions, for
// the verbs mode selects — the injected equivalent of pulling its network
// cable. HealNode reverses it.
func (f *FaultTransport) IsolateNode(id partition.NodeID, mode LinkMode) {
	f.mu.Lock()
	if f.isolated == nil {
		f.isolated = make(map[partition.NodeID]LinkMode)
	}
	f.isolated[id] |= mode
	f.mu.Unlock()
}

// HealNode restores every link touching the node: the isolation and any
// directed blocks naming it are lifted.
func (f *FaultTransport) HealNode(id partition.NodeID) {
	f.mu.Lock()
	delete(f.isolated, id)
	for k := range f.blocked {
		if k.from == id || k.to == id {
			delete(f.blocked, k)
		}
	}
	f.mu.Unlock()
}

// linkFault reports whether the directed link is blocked for the verb,
// counting an injected fault when it is.
func (f *FaultTransport) linkFault(from, to partition.NodeID, verb LinkMode) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	cut := f.blocked[linkKey{from, to}]&verb != 0 ||
		f.isolated[from]&verb != 0 || f.isolated[to]&verb != 0
	if cut {
		f.injected++
	}
	return cut
}

// Injected returns how many faults the transport has injected so far.
func (f *FaultTransport) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// pushFault decides the fate of one push: 0 = deliver, 1 = drop,
// 2 = truncate. It also sleeps the armed latency.
func (f *FaultTransport) pushFault() int {
	f.mu.Lock()
	latency := f.latency
	verdict := 0
	if f.dropN > 0 {
		f.dropN--
		verdict = 1
	} else if f.truncateN > 0 {
		f.truncateN--
		verdict = 2
	} else if f.dropRate > 0 && f.rng.Float64() < f.dropRate {
		verdict = 1
	}
	if verdict != 0 {
		f.injected++
	}
	f.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return verdict
}

// flatFault decides drop-or-deliver for fetches and announces.
func (f *FaultTransport) flatFault() bool {
	f.mu.Lock()
	latency := f.latency
	drop := f.dropRate > 0 && f.rng.Float64() < f.dropRate
	if drop {
		f.injected++
	}
	f.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return drop
}

// Serve implements Transport.
func (f *FaultTransport) Serve(id partition.NodeID, h Handler) error { return f.inner.Serve(id, h) }

// PushChunks implements Transport, consulting the armed fault knobs first.
func (f *FaultTransport) PushChunks(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error) {
	if f.linkFault(from, to, LinkData) {
		return 0, markTransient(fmt.Errorf("%w: link %d→%d blocked, push refused", ErrInjected, from, to))
	}
	switch f.pushFault() {
	case 1:
		return 0, markTransient(fmt.Errorf("%w: connection to node %d dropped before push", ErrInjected, to))
	case 2:
		if tp, ok := f.inner.(truncatablePusher); ok {
			return tp.pushTruncated(from, to, kind, chunks)
		}
		return 0, markTransient(fmt.Errorf("%w: push to node %d cut mid-stream", ErrInjected, to))
	}
	return f.inner.PushChunks(from, to, kind, chunks)
}

// FetchChunk implements Transport, consulting the armed fault knobs first.
func (f *FaultTransport) FetchChunk(from, to partition.NodeID, ref array.ChunkRef) (*array.Chunk, int64, error) {
	if f.linkFault(from, to, LinkData) {
		return nil, 0, markTransient(fmt.Errorf("%w: link %d→%d blocked, fetch refused", ErrInjected, from, to))
	}
	if f.flatFault() {
		return nil, 0, markTransient(fmt.Errorf("%w: connection to node %d dropped before fetch", ErrInjected, to))
	}
	return f.inner.FetchChunk(from, to, ref)
}

// Announce implements Transport, consulting the armed fault knobs first.
func (f *FaultTransport) Announce(from, to partition.NodeID, a Announcement) error {
	if f.linkFault(from, to, LinkAnnounce) {
		return markTransient(fmt.Errorf("%w: link %d→%d blocked, announce refused", ErrInjected, from, to))
	}
	if f.flatFault() {
		return markTransient(fmt.Errorf("%w: connection to node %d dropped before announce", ErrInjected, to))
	}
	return f.inner.Announce(from, to, a)
}

// Remote implements Transport.
func (f *FaultTransport) Remote() bool { return f.inner.Remote() }

// Addr implements Transport.
func (f *FaultTransport) Addr(id partition.NodeID) string { return f.inner.Addr(id) }

// Stats implements Transport.
func (f *FaultTransport) Stats() Stats { return f.inner.Stats() }

// Close implements Transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }
