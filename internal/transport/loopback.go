package transport

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/partition"
)

// Loopback is the in-process backend: delivery is a direct handler call
// and chunks cross as pointers, so a push costs exactly what the handler's
// store writes cost — no encode, no copy. It exists so the cluster's
// transport seam can be exercised (and fault-injected via FaultTransport)
// at zero wire cost; a cluster with no transport at all short-circuits
// even the seam.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[partition.NodeID]Handler

	pushes, pushedBytes, fetches, fetchBytes, announces atomic.Int64
}

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: make(map[partition.NodeID]Handler)}
}

// Serve implements Transport.
func (l *Loopback) Serve(id partition.NodeID, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.handlers[id]; dup {
		return fmt.Errorf("transport: node %d already served", id)
	}
	l.handlers[id] = h
	return nil
}

func (l *Loopback) handler(id partition.NodeID) (Handler, error) {
	l.mu.RLock()
	h, ok := l.handlers[id]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: node %d is not served", id)
	}
	return h, nil
}

// PushChunks implements Transport: a direct Deliver call, chunks by
// reference. The reported wire bytes are the payload sizes — the quantity
// the cost model prices — since nothing is framed.
func (l *Loopback) PushChunks(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error) {
	h, err := l.handler(to)
	if err != nil {
		return 0, err
	}
	i := 0
	next := func() (*array.Chunk, error) {
		if i == len(chunks) {
			return nil, io.EOF
		}
		ch := chunks[i]
		i++
		return ch, nil
	}
	if err := h.Deliver(from, kind, len(chunks), next); err != nil {
		return 0, err
	}
	var bytes int64
	for _, ch := range chunks {
		bytes += ch.SizeBytes()
	}
	l.pushes.Add(1)
	l.pushedBytes.Add(bytes)
	return bytes, nil
}

// pushTruncated delivers a deliberately torn batch: the first len-1 chunks
// arrive, then the stream "corrupts". The FaultTransport partial-write
// knob uses it to exercise the receiver's atomic unwind and the sender's
// retry without a socket to cut.
func (l *Loopback) pushTruncated(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error) {
	h, err := l.handler(to)
	if err != nil {
		return 0, err
	}
	i := 0
	next := func() (*array.Chunk, error) {
		if i >= len(chunks)-1 {
			return nil, fmt.Errorf("%w: %w: frame %d truncated", ErrInjected, ErrCorruptStream, i)
		}
		ch := chunks[i]
		i++
		return ch, nil
	}
	err = h.Deliver(from, kind, len(chunks), next)
	if err == nil {
		err = fmt.Errorf("transport: handler accepted a truncated batch")
	}
	return 0, markTransient(err)
}

// FetchChunk implements Transport: a direct Fetch call returning the
// resident pointer.
func (l *Loopback) FetchChunk(from, to partition.NodeID, ref array.ChunkRef) (*array.Chunk, int64, error) {
	h, err := l.handler(to)
	if err != nil {
		return nil, 0, err
	}
	ch, err := h.Fetch(ref)
	if err != nil {
		return nil, 0, err
	}
	l.fetches.Add(1)
	l.fetchBytes.Add(ch.SizeBytes())
	return ch, ch.SizeBytes(), nil
}

// Announce implements Transport.
func (l *Loopback) Announce(from, to partition.NodeID, a Announcement) error {
	h, err := l.handler(to)
	if err != nil {
		return err
	}
	if err := h.Announce(from, a); err != nil {
		return err
	}
	l.announces.Add(1)
	return nil
}

// Remote implements Transport: loopback payloads never leave the address
// space.
func (l *Loopback) Remote() bool { return false }

// Addr implements Transport: in-process endpoints have no address.
func (l *Loopback) Addr(partition.NodeID) string { return "" }

// Stats implements Transport.
func (l *Loopback) Stats() Stats {
	return Stats{
		Pushes:      l.pushes.Load(),
		PushedBytes: l.pushedBytes.Load(),
		Fetches:     l.fetches.Load(),
		FetchBytes:  l.fetchBytes.Load(),
		Announces:   l.announces.Load(),
	}
}

// Close implements Transport.
func (l *Loopback) Close() error {
	l.mu.Lock()
	l.handlers = make(map[partition.NodeID]Handler)
	l.mu.Unlock()
	return nil
}
