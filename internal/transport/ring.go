package transport

import (
	"fmt"
	"io"
	"sync"
)

// Ring is a bounded in-memory byte pipe: a fixed circular buffer where
// Write blocks while the buffer is full and Read blocks while it is empty.
// It is the backpressure seam of a streaming push — the encoder goroutine
// writes chunk frames in as fast as the socket drains them out, and the
// ring's capacity is the hard cap on how far encode may run ahead of the
// wire, making a migration's peak sender memory O(ring + one chunk)
// instead of O(batch).
//
// One writer and one reader side: the writer finishes with CloseWrite
// (reader drains the residue, then sees io.EOF) or aborts both sides with
// CloseWithError. Safe for one goroutine per side.
type Ring struct {
	mu       sync.Mutex
	notFull  sync.Cond // writer waits: space available
	notEmpty sync.Cond // reader waits: bytes (or EOF) available

	buf    []byte
	r, w   int   // read/write cursors
	n      int   // bytes buffered
	closed bool  // writer side finished
	err    error // terminal error, aborts both sides
}

// NewRing returns a ring buffer of the given capacity in bytes.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 64 << 10
	}
	r := &Ring{buf: make([]byte, size)}
	r.notFull.L = &r.mu
	r.notEmpty.L = &r.mu
	return r
}

// Cap returns the ring's capacity in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// Write implements io.Writer, blocking while the ring is full. Writing
// after CloseWrite, or after CloseWithError, fails.
func (r *Ring) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	written := 0
	for len(p) > 0 {
		for r.n == len(r.buf) && r.err == nil && !r.closed {
			r.notFull.Wait()
		}
		if r.err != nil {
			return written, r.err
		}
		if r.closed {
			return written, fmt.Errorf("transport: write on closed ring")
		}
		// Copy what fits, up to the wrap point.
		free := len(r.buf) - r.n
		chunk := len(p)
		if chunk > free {
			chunk = free
		}
		tail := len(r.buf) - r.w
		if chunk > tail {
			chunk = tail
		}
		copy(r.buf[r.w:], p[:chunk])
		r.w = (r.w + chunk) % len(r.buf)
		r.n += chunk
		p = p[chunk:]
		written += chunk
		r.notEmpty.Signal()
	}
	return written, nil
}

// Read implements io.Reader, blocking while the ring is empty. Once the
// writer side has closed, Read drains the residue and then returns io.EOF
// (or the writer's terminal error).
func (r *Ring) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 {
		if r.err != nil {
			return 0, r.err
		}
		if r.closed {
			return 0, io.EOF
		}
		r.notEmpty.Wait()
	}
	chunk := len(p)
	if chunk > r.n {
		chunk = r.n
	}
	tail := len(r.buf) - r.r
	if chunk > tail {
		chunk = tail
	}
	copy(p, r.buf[r.r:r.r+chunk])
	r.r = (r.r + chunk) % len(r.buf)
	r.n -= chunk
	r.notFull.Signal()
	return chunk, nil
}

// CloseWrite marks the writer side finished: the reader drains what is
// buffered and then sees io.EOF.
func (r *Ring) CloseWrite() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// CloseWithError aborts both sides with err (nil behaves like CloseWrite):
// blocked and future Writes fail with err, and Reads return it once the
// buffered bytes — which may be a torn frame — are abandoned (the reader
// sees err immediately; residue is discarded).
func (r *Ring) CloseWithError(err error) {
	if err == nil {
		r.CloseWrite()
		return
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.closed = true
	r.n = 0
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}
