// Package transport is the cluster's pluggable node-to-node data plane:
// how chunk batches, single-chunk fetches and health/holdings
// announcements travel between nodes.
//
// The cluster core stays transport-agnostic. It speaks to a Transport
// through three verbs — PushChunks (a rebalance or ingest receiver's whole
// batch, delivered atomically), FetchChunk (a query-layer remote pull) and
// Announce (a node's health/holdings heartbeat) — and serves each of its
// nodes to the transport as a Handler. Two backends implement the
// contract:
//
//   - Loopback: in-process delivery by reference. Chunks cross as
//     pointers, nothing is encoded, and a push costs what the handler's
//     store writes cost. This is the zero-overhead default shape: a
//     cluster with no transport configured behaves identically.
//   - TCP: every node is a goroutine-owned socket server and every verb is
//     a length-prefixed wire exchange reusing the array package's "ABAT"
//     batch framing as the payload protocol. Batches stream on both ends —
//     the sender encodes chunk-at-a-time through a bounded Ring into the
//     socket, the receiver decodes chunk-at-a-time off the segment stream —
//     so a migration's peak memory is O(ring + one chunk) per side, never
//     the batch.
//
// Fault injection mirrors the store layer's FaultStore: wrap any backend
// in a FaultTransport to inject latency, connection drops and truncated
// (partial) writes, every synthetic failure wrapping ErrInjected.
//
// # Error model
//
// A push either delivers its whole batch or leaves the receiver untouched
// (the Handler unwinds on any mid-batch error), so retrying a failed push
// is always safe — provided the failure is a transport fault and not the
// remote handler's verdict. IsTransient separates the two: injected
// faults, connection errors and mid-stream corruption are transient
// (retry-worthy); a *RemoteError — the remote handler ran and refused — is
// not. The TCP backend assumes at-most-once delivery per attempt: requests
// ride loopback/LAN sockets where a response is lost only if the
// connection itself died before the handler committed.
package transport

import (
	"errors"
	"fmt"

	"repro/internal/array"
	"repro/internal/partition"
)

// BatchKind tells the receiving handler what a pushed batch is, which
// decides the store it lands in and the retry policy applied per chunk.
type BatchKind uint8

const (
	// KindIngest: primary ingest writes (plain store puts, the Eq 6 path).
	KindIngest BatchKind = iota + 1
	// KindRebalance: a rebalance receiver's batch (store puts with the
	// cluster's transient-fault retry).
	KindRebalance
	// KindReplica: secondary/replicated-array copies (replica-map puts).
	KindReplica
)

func (k BatchKind) String() string {
	switch k {
	case KindIngest:
		return "ingest"
	case KindRebalance:
		return "rebalance"
	case KindReplica:
		return "replica"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Announcement is a node's health/holdings heartbeat: what it is, what it
// holds, and the topology epoch it observed — the minimum a coordinator
// needs to audit a remote node without walking its store.
type Announcement struct {
	Node         partition.NodeID
	Health       int32 // cluster.NodeHealth value
	Chunks       int64 // resident primary chunks
	Bytes        int64 // primary payload bytes
	Replicas     int64 // resident replica payloads
	ReplicaBytes int64 // replica payload bytes
	Epoch        uint64
	// Seq is the sender's monotonic heartbeat sequence number. A failure
	// detector keys liveness off it: a repeated or regressed Seq is a stale
	// delivery, not a fresh sign of life.
	Seq uint64
}

// Handler is the node-side service a Transport delivers to: the cluster
// registers one per node via Serve.
type Handler interface {
	// Deliver receives one pushed batch of n chunks. next yields the
	// chunks in frame order and returns io.EOF after the last; any other
	// error from next means the stream is corrupt. Delivery is atomic: on
	// any error — decode or store — the handler must unwind whatever it
	// stored of this batch before returning, so the sender can safely
	// retry or roll back.
	Deliver(from partition.NodeID, kind BatchKind, n int, next func() (*array.Chunk, error)) error
	// Fetch returns the payload of a chunk the node serves — a resident
	// primary or a held replica.
	Fetch(ref array.ChunkRef) (*array.Chunk, error)
	// Announce records a peer node's heartbeat.
	Announce(from partition.NodeID, a Announcement) error
	// Schema resolves an array name, for decoding wire payloads.
	Schema(name string) (*array.Schema, bool)
}

// Transport moves chunks between nodes. Implementations must be safe for
// concurrent use: parallel rebalance receivers, ingest fan-out goroutines
// and query workers all push and fetch concurrently.
type Transport interface {
	// Serve registers (and for socket backends starts) the endpoint for
	// node id, dispatching its traffic to h.
	Serve(id partition.NodeID, h Handler) error
	// PushChunks delivers a batch to node to, atomically, and returns the
	// bytes that crossed the wire (frame bytes for socket backends, payload
	// bytes for in-process ones).
	PushChunks(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error)
	// FetchChunk pulls one chunk from node to, returning the payload and
	// the bytes that crossed the wire.
	FetchChunk(from, to partition.NodeID, ref array.ChunkRef) (*array.Chunk, int64, error)
	// Announce delivers a heartbeat to node to, best-effort.
	Announce(from, to partition.NodeID, a Announcement) error
	// Remote reports whether payloads actually leave the address space —
	// the gate the query layer checks before paying for wire pulls of
	// chunks it could read by pointer.
	Remote() bool
	// Addr returns the dialable address of a served node, or "" for
	// in-process endpoints.
	Addr(id partition.NodeID) string
	// Stats returns cumulative traffic counters.
	Stats() Stats
	// Close tears down every endpoint and connection.
	Close() error
}

// Stats are a transport's cumulative traffic counters.
type Stats struct {
	Pushes      int64 // successful batch pushes
	PushedBytes int64 // wire bytes of successful pushes
	Fetches     int64 // successful chunk fetches
	FetchBytes  int64 // wire bytes of successful fetches
	Announces   int64 // successful announcements
}

// ErrInjected is the sentinel wrapped by every failure a FaultTransport
// (or the store layer's FaultStore, which aliases it) injects, so tests
// can assert a fault was synthetic rather than a real defect. Match with
// errors.Is.
var ErrInjected = errors.New("injected store fault")

// ErrCorruptStream marks a batch stream that failed to decode mid-flight —
// framing violated, magic wrong, payload truncated. A handler returning it
// signals the bytes, not the store, were at fault, so the failure is
// transient and the sender may retry the push.
var ErrCorruptStream = errors.New("chunk batch corrupt in transit")

// RemoteError is a remote handler's refusal carried back over a socket
// backend: the request was delivered and the handler ran, so retrying the
// same push is pointless. The original error's identity is lost in wire
// transit; Msg preserves its text.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return e.Msg }

// transientError marks a failure worth retrying: the push may not have
// reached the remote handler at all.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient implements the interface IsTransient probes.
func (e *transientError) Transient() bool { return true }

// markTransient wraps err as retry-worthy (nil stays nil).
func markTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether a push/fetch failure is worth retrying: the
// transport may not have delivered the request, or the delivered bytes
// were corrupt and the receiver unwound. Remote handler verdicts and local
// usage errors are not transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	if errors.Is(err, ErrCorruptStream) {
		return true
	}
	return false
}
