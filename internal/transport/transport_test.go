package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
)

// testSchema mirrors the array package's test fixture: a small 2-D array
// with one attribute per cell, enough to exercise framing without bulk.
func testSchema(name string) *array.Schema {
	return array.MustSchema(name,
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 499, ChunkInterval: 5},
			{Name: "y", Start: 0, End: 499, ChunkInterval: 5},
		})
}

// fillChunk builds a chunk with n cells laid along the chunk's first row.
func fillChunk(t *testing.T, s *array.Schema, cc array.ChunkCoord, n int) *array.Chunk {
	t.Helper()
	c := array.NewChunk(s, cc)
	origin := s.ChunkOrigin(cc)
	for i := 0; i < n; i++ {
		c.AppendCell(array.Coord{origin[0] + int64(i%5), origin[1] + int64(i/5)},
			[]array.CellValue{{Float: float64(i) * 1.5}})
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("fixture chunk invalid: %v", err)
	}
	return c
}

// memHandler is a Handler with receiver-atomic delivery: a batch commits
// all-or-nothing, mirroring the contract the cluster's node service
// provides. It records announcements and supports a programmable
// per-delivery failure.
type memHandler struct {
	mu        sync.Mutex
	schemas   map[string]*array.Schema
	chunks    map[string]*array.Chunk
	announced []Announcement
	failNext  error // next Deliver refuses with this error
	delivers  int
}

func newMemHandler(schemas ...*array.Schema) *memHandler {
	m := &memHandler{
		schemas: make(map[string]*array.Schema),
		chunks:  make(map[string]*array.Chunk),
	}
	for _, s := range schemas {
		m.schemas[s.Name] = s
	}
	return m
}

func (m *memHandler) Deliver(from partition.NodeID, kind BatchKind, n int, next func() (*array.Chunk, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delivers++
	if m.failNext != nil {
		err := m.failNext
		m.failNext = nil
		return err
	}
	staged := make([]*array.Chunk, 0, n)
	for i := 0; i < n; i++ {
		ch, err := next()
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err) // nothing staged commits
		}
		staged = append(staged, ch)
	}
	for _, ch := range staged {
		m.chunks[array.ChunkRef{Array: ch.Schema.Name, Coords: ch.Coords}.Key()] = ch
	}
	return nil
}

func (m *memHandler) Fetch(ref array.ChunkRef) (*array.Chunk, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.chunks[ref.Key()]
	if !ok {
		return nil, fmt.Errorf("chunk %s not resident", ref)
	}
	return ch, nil
}

func (m *memHandler) Announce(from partition.NodeID, a Announcement) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.announced = append(m.announced, a)
	return nil
}

// Schema reads without the lock: the schemas map is immutable after
// construction, and the TCP decode path calls it from inside Deliver's
// next (which the handler invokes while holding mu).
func (m *memHandler) Schema(name string) (*array.Schema, bool) {
	s, ok := m.schemas[name]
	return s, ok
}

func (m *memHandler) chunkCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chunks)
}

func (m *memHandler) setFailNext(err error) {
	m.mu.Lock()
	m.failNext = err
	m.mu.Unlock()
}

// sameChunk compares two chunks by their canonical wire encoding.
func sameChunk(t *testing.T, a, b *array.Chunk) bool {
	t.Helper()
	ae, err := array.EncodeChunk(a)
	if err != nil {
		t.Fatal(err)
	}
	be, err := array.EncodeChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ae, be)
}

// eachBackend runs a subtest against both built-in backends, so every
// contract test pins loopback and TCP to identical observable behaviour.
func eachBackend(t *testing.T, fn func(t *testing.T, tr Transport, h1, h2 *memHandler)) {
	t.Helper()
	s := testSchema("A")
	for _, backend := range []string{"loopback", "tcp"} {
		t.Run(backend, func(t *testing.T) {
			var tr Transport
			if backend == "tcp" {
				tr = NewTCP(TCPOptions{})
			} else {
				tr = NewLoopback()
			}
			defer tr.Close()
			h1, h2 := newMemHandler(s), newMemHandler(s)
			if err := tr.Serve(1, h1); err != nil {
				t.Fatal(err)
			}
			if err := tr.Serve(2, h2); err != nil {
				t.Fatal(err)
			}
			fn(t, tr, h1, h2)
		})
	}
}

func TestPushRoundTrip(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		s := testSchema("A")
		chunks := []*array.Chunk{
			fillChunk(t, s, array.ChunkCoord{0, 0}, 7),
			fillChunk(t, s, array.ChunkCoord{1, 0}, 25),
			fillChunk(t, s, array.ChunkCoord{0, 1}, 1),
		}
		wire, err := tr.PushChunks(1, 2, KindRebalance, chunks)
		if err != nil {
			t.Fatalf("PushChunks: %v", err)
		}
		if wire <= 0 {
			t.Fatalf("wire bytes = %d, want > 0", wire)
		}
		if h2.chunkCount() != len(chunks) {
			t.Fatalf("receiver holds %d chunks, want %d", h2.chunkCount(), len(chunks))
		}
		for _, want := range chunks {
			got, err := h2.Fetch(array.ChunkRef{Array: want.Schema.Name, Coords: want.Coords})
			if err != nil {
				t.Fatal(err)
			}
			if !sameChunk(t, want, got) {
				t.Fatalf("chunk %v corrupted in transit", want.Coords)
			}
		}
		if st := tr.Stats(); st.Pushes != 1 || st.PushedBytes != wire {
			t.Fatalf("Stats = %+v, want 1 push of %d bytes", st, wire)
		}
	})
}

func TestPushEmptyBatch(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		if _, err := tr.PushChunks(1, 2, KindIngest, nil); err != nil {
			t.Fatalf("empty push: %v", err)
		}
	})
}

func TestPushToUnservedNode(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		s := testSchema("A")
		_, err := tr.PushChunks(1, 99, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 1)})
		if err == nil {
			t.Fatal("push to unserved node succeeded")
		}
	})
}

// TestPushHandlerRefusal pins the error model: a handler that refuses a
// batch yields a non-transient error (over TCP, a *RemoteError) — the
// remote made a decision, retrying won't change it — and commits nothing.
func TestPushHandlerRefusal(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		s := testSchema("A")
		h2.setFailNext(errors.New("store full"))
		_, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 3)})
		if err == nil {
			t.Fatal("refused push reported success")
		}
		if IsTransient(err) {
			t.Fatalf("handler refusal classified transient: %v", err)
		}
		if tr.Remote() {
			var re *RemoteError
			if !errors.As(err, &re) || !strings.Contains(re.Msg, "store full") {
				t.Fatalf("remote refusal = %v, want *RemoteError carrying the message", err)
			}
		}
		if h2.chunkCount() != 0 {
			t.Fatalf("receiver committed %d chunks from a refused batch", h2.chunkCount())
		}
		// The connection survives a refusal: the next push must succeed.
		if _, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 3)}); err != nil {
			t.Fatalf("push after refusal: %v", err)
		}
	})
}

// TestPushTruncatedUnwinds pins the partial-write fault: the receiver
// observes a torn stream, commits nothing, and the sender's error is
// transient and carries ErrInjected.
func TestPushTruncatedUnwinds(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		tp, ok := tr.(truncatablePusher)
		if !ok {
			t.Fatalf("%T does not support partial-write injection", tr)
		}
		s := testSchema("A")
		chunks := []*array.Chunk{
			fillChunk(t, s, array.ChunkCoord{0, 0}, 20),
			fillChunk(t, s, array.ChunkCoord{1, 0}, 20),
		}
		_, err := tp.pushTruncated(1, 2, KindRebalance, chunks)
		if err == nil {
			t.Fatal("truncated push reported success")
		}
		if !IsTransient(err) {
			t.Fatalf("truncated push not transient: %v", err)
		}
		if h2.chunkCount() != 0 {
			t.Fatalf("receiver committed %d chunks from a torn stream", h2.chunkCount())
		}
		// Whole-batch retry on a fresh connection succeeds — the delivery
		// atomicity that makes transport-level retries safe.
		if _, err := tr.PushChunks(1, 2, KindRebalance, chunks); err != nil {
			t.Fatalf("retry after truncation: %v", err)
		}
		if h2.chunkCount() != len(chunks) {
			t.Fatalf("retry committed %d chunks, want %d", h2.chunkCount(), len(chunks))
		}
	})
}

func TestFetchRoundTrip(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		s := testSchema("A")
		want := fillChunk(t, s, array.ChunkCoord{1, 1}, 12)
		if _, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{want}); err != nil {
			t.Fatal(err)
		}
		got, wire, err := tr.FetchChunk(1, 2, array.ChunkRef{Array: "A", Coords: array.ChunkCoord{1, 1}})
		if err != nil {
			t.Fatalf("FetchChunk: %v", err)
		}
		if !sameChunk(t, want, got) {
			t.Fatal("fetched chunk differs from the resident one")
		}
		if wire <= 0 {
			t.Fatalf("fetch wire bytes = %d, want > 0", wire)
		}
		if _, _, err := tr.FetchChunk(1, 2, array.ChunkRef{Array: "A", Coords: array.ChunkCoord{0, 0}}); err == nil {
			t.Fatal("fetch of a non-resident chunk succeeded")
		}
	})
}

func TestAnnounceRoundTrip(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		a := Announcement{Node: 1, Health: 2, Chunks: 34, Bytes: 5678, Replicas: 9, ReplicaBytes: 1011, Epoch: 12}
		if err := tr.Announce(1, 2, a); err != nil {
			t.Fatalf("Announce: %v", err)
		}
		h2.mu.Lock()
		defer h2.mu.Unlock()
		if len(h2.announced) != 1 || h2.announced[0] != a {
			t.Fatalf("receiver recorded %+v, want exactly %+v", h2.announced, a)
		}
	})
}

// TestConcurrentPushes hammers one receiver from many goroutines — the
// -race run is the real assertion; the counts confirm nothing was lost.
func TestConcurrentPushes(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		s := testSchema("A")
		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ch := fillChunk(t, s, array.ChunkCoord{int64(w), 0}, 5)
				if _, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("concurrent push: %v", err)
		}
		if h2.chunkCount() != workers {
			t.Fatalf("receiver holds %d chunks, want %d", h2.chunkCount(), workers)
		}
	})
}

// TestTCPStreamingLargeBatch pushes a batch much larger than the ring, so
// success proves the encoder/drain pipeline makes progress under
// backpressure rather than buffering the whole batch.
func TestTCPStreamingLargeBatch(t *testing.T) {
	s := testSchema("A")
	tr := NewTCP(TCPOptions{RingSize: 1 << 10, SegmentSize: 512})
	defer tr.Close()
	h := newMemHandler(s)
	if err := tr.Serve(2, h); err != nil {
		t.Fatal(err)
	}
	var chunks []*array.Chunk
	for i := 0; i < 64; i++ {
		chunks = append(chunks, fillChunk(t, s, array.ChunkCoord{int64(i), int64(i)}, 25))
	}
	wire, err := tr.PushChunks(1, 2, KindRebalance, chunks)
	if err != nil {
		t.Fatalf("large streaming push: %v", err)
	}
	if wire < int64(tr.opts.RingSize) {
		t.Fatalf("wire bytes %d smaller than the ring — batch did not exceed the buffer", wire)
	}
	if h.chunkCount() != len(chunks) {
		t.Fatalf("receiver holds %d chunks, want %d", h.chunkCount(), len(chunks))
	}
}

// TestTCPAddrAndRemote pins the backend self-description the cluster keys
// decisions off: TCP is remote with dialable per-node addresses, loopback
// is neither.
func TestTCPAddrAndRemote(t *testing.T) {
	tr := NewTCP(TCPOptions{})
	defer tr.Close()
	if err := tr.Serve(1, newMemHandler(testSchema("A"))); err != nil {
		t.Fatal(err)
	}
	if !tr.Remote() {
		t.Fatal("TCP transport reports Remote() = false")
	}
	if addr := tr.Addr(1); !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("Addr(1) = %q, want a loopback endpoint", addr)
	}
	lb := NewLoopback()
	if lb.Remote() || lb.Addr(1) != "" {
		t.Fatal("loopback transport claims remote endpoints")
	}
}

func TestTCPServeDuplicate(t *testing.T) {
	tr := NewTCP(TCPOptions{})
	defer tr.Close()
	h := newMemHandler(testSchema("A"))
	if err := tr.Serve(1, h); err != nil {
		t.Fatal(err)
	}
	if err := tr.Serve(1, h); err == nil {
		t.Fatal("duplicate Serve succeeded")
	}
}

// TestTCPCrossProcessStyle drives two separate TCP transports — one pure
// server, one pure client wired up via AddRemote + SetSchemaLookup — the
// exact shape of a multi-process deployment.
func TestTCPCrossProcessStyle(t *testing.T) {
	s := testSchema("A")
	server := NewTCP(TCPOptions{})
	defer server.Close()
	h := newMemHandler(s)
	if err := server.Serve(7, h); err != nil {
		t.Fatal(err)
	}

	client := NewTCP(TCPOptions{})
	defer client.Close()
	client.AddRemote(7, server.Addr(7))
	client.SetSchemaLookup(func(name string) (*array.Schema, bool) { return s, name == s.Name })

	want := fillChunk(t, s, array.ChunkCoord{0, 0}, 9)
	if _, err := client.PushChunks(100, 7, KindIngest, []*array.Chunk{want}); err != nil {
		t.Fatalf("cross-transport push: %v", err)
	}
	got, _, err := client.FetchChunk(100, 7, array.ChunkRef{Array: "A", Coords: array.ChunkCoord{0, 0}})
	if err != nil {
		t.Fatalf("cross-transport fetch: %v", err)
	}
	if !sameChunk(t, want, got) {
		t.Fatal("chunk corrupted across transports")
	}
	if err := client.Announce(100, 7, Announcement{Node: 100, Health: 1}); err != nil {
		t.Fatalf("cross-transport announce: %v", err)
	}
}

func TestFaultTransportDrop(t *testing.T) {
	s := testSchema("A")
	ft := NewFaultTransport(nil)
	h := newMemHandler(s)
	if err := ft.Serve(2, h); err != nil {
		t.Fatal(err)
	}
	ft.FailNextPushes(2)
	chunks := []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 4)}
	for i := 0; i < 2; i++ {
		_, err := ft.PushChunks(1, 2, KindRebalance, chunks)
		if err == nil {
			t.Fatalf("armed push %d succeeded", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("dropped push error %v does not match ErrInjected", err)
		}
		if !IsTransient(err) {
			t.Fatalf("dropped push not transient: %v", err)
		}
	}
	if h.chunkCount() != 0 {
		t.Fatal("dropped pushes reached the handler")
	}
	if _, err := ft.PushChunks(1, 2, KindRebalance, chunks); err != nil {
		t.Fatalf("push after faults disarmed: %v", err)
	}
	if got := ft.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestFaultTransportTruncateOverTCP(t *testing.T) {
	s := testSchema("A")
	inner := NewTCP(TCPOptions{})
	ft := NewFaultTransport(inner)
	defer ft.Close()
	h := newMemHandler(s)
	if err := ft.Serve(2, h); err != nil {
		t.Fatal(err)
	}
	ft.TruncateNextPushes(1)
	chunks := []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 20)}
	_, err := ft.PushChunks(1, 2, KindRebalance, chunks)
	if err == nil {
		t.Fatal("truncated push succeeded")
	}
	if !errors.Is(err, ErrInjected) || !IsTransient(err) {
		t.Fatalf("truncated push error = %v, want transient ErrInjected", err)
	}
	if h.chunkCount() != 0 {
		t.Fatal("torn stream committed chunks")
	}
	if _, err := ft.PushChunks(1, 2, KindRebalance, chunks); err != nil {
		t.Fatalf("retry after truncation: %v", err)
	}
	if h.chunkCount() != 1 {
		t.Fatal("retry did not commit")
	}
}

func TestFaultTransportDropRateDeterministic(t *testing.T) {
	s := testSchema("A")
	run := func() (failed int) {
		ft := NewFaultTransport(nil)
		h := newMemHandler(s)
		if err := ft.Serve(2, h); err != nil {
			t.Fatal(err)
		}
		ft.SetDropRate(0.5, 42)
		for i := 0; i < 40; i++ {
			if _, err := ft.PushChunks(1, 2, KindIngest,
				[]*array.Chunk{fillChunk(t, s, array.ChunkCoord{int64(i), 0}, 2)}); err != nil {
				failed++
			}
		}
		return failed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault sequences: %d vs %d", a, b)
	}
	if a == 0 || a == 40 {
		t.Fatalf("drop rate 0.5 failed %d/40 pushes — knob not effective", a)
	}
}

func TestFaultTransportLatency(t *testing.T) {
	s := testSchema("A")
	ft := NewFaultTransport(nil)
	h := newMemHandler(s)
	if err := ft.Serve(2, h); err != nil {
		t.Fatal(err)
	}
	ft.SetLatency(20 * time.Millisecond)
	start := time.Now()
	if _, err := ft.PushChunks(1, 2, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{0, 0}, 2)}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("push completed in %v, latency knob not applied", d)
	}
}

// TestIsTransientClassification pins the retry policy's decision table.
func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"remote", &RemoteError{Msg: "refused"}, false},
		{"corrupt", fmt.Errorf("push: %w", ErrCorruptStream), true},
		{"marked", markTransient(errors.New("dial refused")), true},
		{"wrapped marked", fmt.Errorf("attempt 2: %w", markTransient(errors.New("reset"))), true},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBatchKindString(t *testing.T) {
	for kind, want := range map[BatchKind]string{
		KindIngest:    "ingest",
		KindRebalance: "rebalance",
		KindReplica:   "replica",
		BatchKind(9):  "kind(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("BatchKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}
