package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
)

// TCP wire protocol (little endian), one request per exchange, connections
// reused across requests:
//
//	request:  u32 magic "ETRN", u8 op, i64 from
//	op 1 (push):     u8 kind, then the "ABAT" batch framing cut into
//	                 segments: (u32 segLen, segLen bytes)*, u32 0 end marker.
//	op 2 (fetch):    u16 nameLen + array name, u8 nDims, nDims × i64 coords.
//	op 3 (announce): i64 node, i32 health, i64 chunks, i64 bytes,
//	                 i64 replicas, i64 replicaBytes, u64 epoch, u64 seq.
//	response: u8 status (0 ok, 1 remote handler error, 2 corrupt stream),
//	          then: fetch ok → u32 payloadLen + "ACNK" chunk payload;
//	          any error → u32 msgLen + message text.
//
// Segmenting the push payload lets the sender stream the encode — total
// batch length is never known up front — while the receiver still gets
// exact framing to decode against.
const (
	tcpMagic = 0x4554524e // "ETRN"

	opPush     = 1
	opFetch    = 2
	opAnnounce = 3

	statusOK      = 0
	statusRemote  = 1
	statusCorrupt = 2
)

// TCPOptions tunes a TCP transport.
type TCPOptions struct {
	// ListenAddr is the address Serve listens on ("127.0.0.1:0" when
	// empty — an OS-assigned loopback port per node).
	ListenAddr string
	// RingSize bounds the sender-side encode ring in bytes (default 64 KiB).
	RingSize int
	// SegmentSize caps one wire segment in bytes (default 32 KiB).
	SegmentSize int
	// DialTimeout bounds connection establishment (default 5s, < 0
	// disables). A dead endpoint fails the dial instead of hanging it.
	DialTimeout time.Duration
	// IOTimeout bounds one whole RPC exchange — request write through
	// response read — on both the client and the serving side (default
	// 30s, < 0 disables). A peer that stops mid-exchange surfaces as a
	// transient deadline error instead of a wedged goroutine, which is what
	// makes failure detection trustworthy: silence means the node is gone,
	// not that a connection is stuck. Idle pooled connections carry no
	// deadline; it is re-armed per request.
	IOTimeout time.Duration
	// PoolIdleTimeout evicts pooled client connections idle longer than
	// this on next acquire (default 60s, < 0 disables), so the pool never
	// hands out a connection the far side has long abandoned.
	PoolIdleTimeout time.Duration
}

// dialTimeout/ioTimeout/poolIdle resolve the option defaults (< 0 disables).
func (o TCPOptions) dialTimeout() time.Duration {
	if o.DialTimeout < 0 {
		return 0
	}
	if o.DialTimeout == 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o TCPOptions) ioTimeout() time.Duration {
	if o.IOTimeout < 0 {
		return 0
	}
	if o.IOTimeout == 0 {
		return 30 * time.Second
	}
	return o.IOTimeout
}

func (o TCPOptions) poolIdle() time.Duration {
	if o.PoolIdleTimeout < 0 {
		return 0
	}
	if o.PoolIdleTimeout == 0 {
		return 60 * time.Second
	}
	return o.PoolIdleTimeout
}

// TCP is the socket backend: every served node is a goroutine-owned
// listener on a loopback port, every verb a framed exchange, and every
// push a streaming encode (bounded by a Ring) into segment frames the
// receiver decodes chunk-at-a-time. See the package comment for the
// delivery and error model.
type TCP struct {
	opts TCPOptions

	mu        sync.RWMutex
	handlers  map[partition.NodeID]Handler
	addrs     map[partition.NodeID]string // served and remote nodes
	listeners map[partition.NodeID]net.Listener
	lookup    func(name string) (*array.Schema, bool) // client-side decode fallback
	closed    bool

	// conns pools idle client connections per destination, newest last;
	// entries idle past PoolIdleTimeout are evicted on acquire.
	connMu sync.Mutex
	conns  map[partition.NodeID][]pooledConn

	// serverConns tracks accepted connections so Close can cut them.
	srvMu     sync.Mutex
	srvConns  map[net.Conn]bool
	accepters sync.WaitGroup

	pushes, pushedBytes, fetches, fetchBytes, announces atomic.Int64
}

// NewTCP returns a TCP transport with no endpoints yet.
func NewTCP(opts TCPOptions) *TCP {
	if opts.RingSize <= 0 {
		opts.RingSize = 64 << 10
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 32 << 10
	}
	return &TCP{
		opts:      opts,
		handlers:  make(map[partition.NodeID]Handler),
		addrs:     make(map[partition.NodeID]string),
		listeners: make(map[partition.NodeID]net.Listener),
		conns:     make(map[partition.NodeID][]pooledConn),
		srvConns:  make(map[net.Conn]bool),
	}
}

// pooledConn is one idle client connection with its pool-entry time.
type pooledConn struct {
	c    net.Conn
	idle time.Time
}

// SetSchemaLookup sets the schema resolver a handler-less client (a
// process that only pushes and fetches, like cmd/elasticnode's probe mode)
// decodes fetched payloads with. Served transports resolve through their
// handlers and do not need it.
func (t *TCP) SetSchemaLookup(lookup func(name string) (*array.Schema, bool)) {
	t.mu.Lock()
	t.lookup = lookup
	t.mu.Unlock()
}

// AddRemote registers an externally hosted node (another process's Serve)
// as a push/fetch target.
func (t *TCP) AddRemote(id partition.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

// Serve implements Transport: listen, record the address, and own the
// accept loop in a goroutine.
func (t *TCP) Serve(id partition.NodeID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp transport closed")
	}
	if _, dup := t.listeners[id]; dup {
		return fmt.Errorf("transport: node %d already served", id)
	}
	addr := t.opts.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: node %d listen: %w", id, err)
	}
	t.handlers[id] = h
	t.addrs[id] = ln.Addr().String()
	t.listeners[id] = ln
	t.accepters.Add(1)
	go t.acceptLoop(id, ln, h)
	return nil
}

func (t *TCP) acceptLoop(id partition.NodeID, ln net.Listener, h Handler) {
	defer t.accepters.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.srvMu.Lock()
		t.srvConns[conn] = true
		t.srvMu.Unlock()
		go func() {
			t.serveConn(conn, h)
			t.srvMu.Lock()
			delete(t.srvConns, conn)
			t.srvMu.Unlock()
			conn.Close()
		}()
	}
}

// serveConn handles one client connection's requests until it errors or
// closes.
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		// No deadline while idle between requests — pooled client
		// connections may legitimately sit quiet — but once a request's
		// magic arrives, the rest of the exchange runs on the I/O budget so
		// a client dying mid-request cannot wedge this goroutine.
		var magic uint32
		if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
			return
		}
		if magic != tcpMagic {
			return
		}
		clear := t.armDeadline(conn)
		var op uint8
		var from int64
		if err := binary.Read(br, binary.LittleEndian, &op); err != nil {
			return
		}
		if err := binary.Read(br, binary.LittleEndian, &from); err != nil {
			return
		}
		var err error
		switch op {
		case opPush:
			err = t.servePush(br, bw, partition.NodeID(from), h)
		case opFetch:
			err = t.serveFetch(br, bw, h)
		case opAnnounce:
			err = t.serveAnnounce(br, bw, partition.NodeID(from), h)
		default:
			return
		}
		if err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		clear()
	}
}

// writeStatus writes an error response (or the ok status when err is nil).
func writeStatus(bw *bufio.Writer, err error) error {
	if err == nil {
		return bw.WriteByte(statusOK)
	}
	status := byte(statusRemote)
	if errors.Is(err, ErrCorruptStream) {
		status = statusCorrupt
	}
	if werr := bw.WriteByte(status); werr != nil {
		return werr
	}
	msg := err.Error()
	if werr := binary.Write(bw, binary.LittleEndian, uint32(len(msg))); werr != nil {
		return werr
	}
	_, werr := bw.WriteString(msg)
	return werr
}

// segmentReader presents a push's segment stream as one contiguous reader
// for the batch decoder; the u32 0 end marker reads as io.EOF.
type segmentReader struct {
	r         *bufio.Reader
	remaining int
	done      bool
}

func (s *segmentReader) Read(p []byte) (int, error) {
	for s.remaining == 0 {
		if s.done {
			return 0, io.EOF
		}
		var n uint32
		if err := binary.Read(s.r, binary.LittleEndian, &n); err != nil {
			return 0, fmt.Errorf("%w: reading segment header: %w", ErrCorruptStream, err)
		}
		if n == 0 {
			s.done = true
			return 0, io.EOF
		}
		s.remaining = int(n)
	}
	if len(p) > s.remaining {
		p = p[:s.remaining]
	}
	n, err := s.r.Read(p)
	s.remaining -= n
	if err != nil && err != io.EOF {
		err = fmt.Errorf("%w: %w", ErrCorruptStream, err)
	} else if err == io.EOF {
		err = fmt.Errorf("%w: stream ended inside a segment", ErrCorruptStream)
	}
	return n, err
}

// drain consumes the rest of the segment stream after a failed delivery,
// so the connection can be reused for the error response. Best-effort: a
// cut stream just errors out and the connection dies with it.
func (s *segmentReader) drain() error {
	buf := make([]byte, 4096)
	for {
		_, err := s.Read(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (t *TCP) servePush(br *bufio.Reader, bw *bufio.Writer, from partition.NodeID, h Handler) error {
	var kind uint8
	if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
		return err
	}
	seg := &segmentReader{r: br}
	dec, err := array.NewChunkBatchStream(h.Schema, seg)
	if err != nil {
		// The framing itself failed to parse: the stream is unusable, cut
		// the connection (the client reports a transient failure).
		return fmt.Errorf("%w: %w", ErrCorruptStream, err)
	}
	next := func() (*array.Chunk, error) {
		ch, err := dec.Next()
		if err != nil && err != io.EOF && !errors.Is(err, ErrCorruptStream) {
			err = fmt.Errorf("%w: %w", ErrCorruptStream, err)
		}
		return ch, err
	}
	derr := h.Deliver(from, BatchKind(kind), dec.Len(), next)
	if derr != nil {
		// The handler unwound. Drain the stream's residue so the error
		// response can travel back on a clean connection; if the stream is
		// itself torn, give up on the connection.
		if seg.drain() != nil {
			return derr
		}
		return writeStatus(bw, derr)
	}
	// A complete delivery must be followed by the end marker.
	if err := seg.drain(); err != nil {
		return err
	}
	if !seg.done {
		return fmt.Errorf("%w: missing end marker", ErrCorruptStream)
	}
	return writeStatus(bw, nil)
}

func (t *TCP) serveFetch(br *bufio.Reader, bw *bufio.Writer, h Handler) error {
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return err
	}
	var nDims uint8
	if err := binary.Read(br, binary.LittleEndian, &nDims); err != nil {
		return err
	}
	coords := make(array.ChunkCoord, nDims)
	for i := range coords {
		if err := binary.Read(br, binary.LittleEndian, &coords[i]); err != nil {
			return err
		}
	}
	ref := array.ChunkRef{Array: string(name), Coords: coords}
	ch, err := h.Fetch(ref)
	if err != nil {
		return writeStatus(bw, err)
	}
	payload, err := array.EncodeChunk(ch)
	if err != nil {
		return writeStatus(bw, err)
	}
	if err := bw.WriteByte(statusOK); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	_, err = bw.Write(payload)
	return err
}

func (t *TCP) serveAnnounce(br *bufio.Reader, bw *bufio.Writer, from partition.NodeID, h Handler) error {
	var a Announcement
	var node int64
	fields := []interface{}{&node, &a.Health, &a.Chunks, &a.Bytes, &a.Replicas, &a.ReplicaBytes, &a.Epoch, &a.Seq}
	for _, f := range fields {
		if err := binary.Read(br, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	a.Node = partition.NodeID(node)
	return writeStatus(bw, h.Announce(from, a))
}

// --- client side ----------------------------------------------------------

func (t *TCP) addrOf(id partition.NodeID) (string, error) {
	t.mu.RLock()
	addr, ok := t.addrs[id]
	t.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("transport: node %d is not served", id)
	}
	return addr, nil
}

// conn returns a pooled or fresh connection to the node. Pool entries that
// sat idle past PoolIdleTimeout are dead-conn candidates — the far side may
// have dropped them long ago — so they are closed and skipped rather than
// handed out.
func (t *TCP) conn(id partition.NodeID) (net.Conn, error) {
	maxIdle := t.opts.poolIdle()
	t.connMu.Lock()
	pool := t.conns[id]
	for len(pool) > 0 {
		entry := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if maxIdle > 0 && time.Since(entry.idle) > maxIdle {
			entry.c.Close()
			continue
		}
		t.conns[id] = pool
		t.connMu.Unlock()
		return entry.c, nil
	}
	t.conns[id] = pool
	t.connMu.Unlock()
	addr, err := t.addrOf(id)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, t.opts.dialTimeout())
	if err != nil {
		return nil, markTransient(fmt.Errorf("transport: dial node %d: %w", id, err))
	}
	return conn, nil
}

// armDeadline starts one RPC's I/O budget on the connection; the returned
// func clears it once the exchange completes so a pooled connection does not
// inherit a stale deadline. No-ops when IOTimeout is disabled.
func (t *TCP) armDeadline(conn net.Conn) func() {
	d := t.opts.ioTimeout()
	if d <= 0 {
		return func() {}
	}
	_ = conn.SetDeadline(time.Now().Add(d))
	return func() { _ = conn.SetDeadline(time.Time{}) }
}

// release returns a healthy connection to the pool (bounded per node).
func (t *TCP) release(id partition.NodeID, conn net.Conn) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if len(t.conns[id]) >= 4 {
		conn.Close()
		return
	}
	t.conns[id] = append(t.conns[id], pooledConn{c: conn, idle: time.Now()})
}

// readResponse reads a status response; body handling for fetch happens at
// the caller.
func readResponse(br *bufio.Reader) (byte, string, error) {
	status, err := br.ReadByte()
	if err != nil {
		return 0, "", markTransient(fmt.Errorf("transport: reading response: %w", err))
	}
	if status == statusOK {
		return status, "", nil
	}
	var msgLen uint32
	if err := binary.Read(br, binary.LittleEndian, &msgLen); err != nil {
		return 0, "", markTransient(fmt.Errorf("transport: reading response: %w", err))
	}
	msg := make([]byte, msgLen)
	if _, err := io.ReadFull(br, msg); err != nil {
		return 0, "", markTransient(fmt.Errorf("transport: reading response: %w", err))
	}
	return status, string(msg), nil
}

// statusError converts a non-ok response into the client-side error.
func statusError(status byte, msg string) error {
	if status == statusCorrupt {
		return markTransient(fmt.Errorf("%w: %s", ErrCorruptStream, msg))
	}
	return &RemoteError{Msg: msg}
}

// countingWriter counts bytes flowing into the socket.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// PushChunks implements Transport: stream the batch encode through a
// bounded ring into segment frames on the socket, then wait for the
// receiver's verdict. The returned bytes are what actually crossed the
// wire (header, segments and markers included).
func (t *TCP) PushChunks(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error) {
	return t.push(from, to, kind, chunks, 0)
}

// pushTruncated is the FaultTransport partial-write hook: stream the batch
// but cut the connection before the final trunc bytes (and the end marker)
// are sent, so the receiver observes a torn stream mid-decode.
func (t *TCP) pushTruncated(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk) (int64, error) {
	wire, err := t.push(from, to, kind, chunks, 64)
	if err == nil {
		err = fmt.Errorf("transport: truncated push unexpectedly succeeded")
	}
	return wire, err
}

func (t *TCP) push(from, to partition.NodeID, kind BatchKind, chunks []*array.Chunk, trunc int64) (int64, error) {
	conn, err := t.conn(to)
	if err != nil {
		return 0, err
	}
	clear := t.armDeadline(conn)
	cw := &countingWriter{w: conn}
	bw := bufio.NewWriter(cw)
	fail := func(err error) (int64, error) {
		conn.Close()
		return cw.n, markTransient(err)
	}
	_ = binary.Write(bw, binary.LittleEndian, uint32(tcpMagic))
	_ = bw.WriteByte(opPush)
	_ = binary.Write(bw, binary.LittleEndian, int64(from))
	_ = bw.WriteByte(byte(kind))

	// Encoder goroutine: chunk-at-a-time into the bounded ring. The main
	// goroutine drains the ring into wire segments, so encode can never run
	// further ahead of the socket than the ring's capacity.
	ring := NewRing(t.opts.RingSize)
	go func() {
		enc, err := array.NewChunkBatchWriter(ring, len(chunks))
		if err == nil {
			for _, ch := range chunks {
				if err = enc.Write(ch); err != nil {
					break
				}
			}
			if err == nil {
				err = enc.Close()
			}
		}
		ring.CloseWithError(err) // nil = clean EOF
	}()

	// Drain the ring into wire segments. A fault-injected partial write
	// (trunc > 0) holds the in-flight segment back one step so the final
	// one can be cut short — header promising bytes the connection never
	// delivers — whatever the batch size.
	var pending []byte
	writeSegment := func(p []byte, cut bool) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p))); err != nil {
			return err
		}
		if cut {
			keep := len(p) - int(trunc)
			if keep < 0 {
				keep = 0
			}
			p = p[:keep]
		}
		_, err := bw.Write(p)
		return err
	}
	seg := make([]byte, t.opts.SegmentSize)
	for {
		n, rerr := ring.Read(seg)
		if n > 0 {
			if trunc > 0 {
				if pending != nil {
					if err := writeSegment(pending, false); err != nil {
						ring.CloseWithError(err)
						return fail(err)
					}
				}
				pending = append(pending[:0], seg[:n]...)
			} else if err := writeSegment(seg[:n], false); err != nil {
				ring.CloseWithError(err)
				return fail(err)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fail(rerr)
		}
	}
	if trunc > 0 {
		// Cut the final segment (or, for an empty batch, just omit the end
		// marker) and kill the connection: the receiver sees a torn stream.
		if pending != nil {
			_ = writeSegment(pending, true)
		}
		_ = bw.Flush()
		conn.Close()
		return cw.n, markTransient(fmt.Errorf("%w: %w: connection cut %d bytes early", ErrInjected, ErrCorruptStream, trunc))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(0)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	br := bufio.NewReader(conn)
	status, msg, err := readResponse(br)
	if err != nil {
		conn.Close()
		return cw.n, err
	}
	clear()
	if status != statusOK {
		t.release(to, conn)
		return cw.n, statusError(status, msg)
	}
	t.release(to, conn)
	t.pushes.Add(1)
	t.pushedBytes.Add(cw.n)
	return cw.n, nil
}

// lookupFor resolves the schema registry the client side decodes fetched
// payloads with: the from node's handler when served locally, any served
// handler otherwise, the explicit SetSchemaLookup resolver as a last
// resort.
func (t *TCP) lookupFor(from partition.NodeID) (func(name string) (*array.Schema, bool), error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if h, ok := t.handlers[from]; ok {
		return h.Schema, nil
	}
	for _, h := range t.handlers {
		return h.Schema, nil
	}
	if t.lookup != nil {
		return t.lookup, nil
	}
	return nil, fmt.Errorf("transport: no schema registry to decode fetches with (serve a node or SetSchemaLookup)")
}

// FetchChunk implements Transport: one framed request/response exchange,
// the payload decoded from its "ACNK" wire form.
func (t *TCP) FetchChunk(from, to partition.NodeID, ref array.ChunkRef) (*array.Chunk, int64, error) {
	lookup, err := t.lookupFor(from)
	if err != nil {
		return nil, 0, err
	}
	s, ok := lookup(ref.Array)
	if !ok {
		return nil, 0, fmt.Errorf("transport: fetch of unknown array %q", ref.Array)
	}
	conn, err := t.conn(to)
	if err != nil {
		return nil, 0, err
	}
	clear := t.armDeadline(conn)
	cw := &countingWriter{w: conn}
	bw := bufio.NewWriter(cw)
	fail := func(err error) (*array.Chunk, int64, error) {
		conn.Close()
		return nil, cw.n, markTransient(err)
	}
	_ = binary.Write(bw, binary.LittleEndian, uint32(tcpMagic))
	_ = bw.WriteByte(opFetch)
	_ = binary.Write(bw, binary.LittleEndian, int64(from))
	_ = binary.Write(bw, binary.LittleEndian, uint16(len(ref.Array)))
	_, _ = bw.WriteString(ref.Array)
	_ = bw.WriteByte(byte(len(ref.Coords)))
	for _, c := range ref.Coords {
		_ = binary.Write(bw, binary.LittleEndian, c)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	br := bufio.NewReader(conn)
	status, msg, err := readResponse(br)
	if err != nil {
		conn.Close()
		return nil, cw.n, err
	}
	if status != statusOK {
		clear()
		t.release(to, conn)
		return nil, cw.n, statusError(status, msg)
	}
	var payloadLen uint32
	if err := binary.Read(br, binary.LittleEndian, &payloadLen); err != nil {
		return fail(err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return fail(err)
	}
	clear()
	t.release(to, conn)
	ch, err := array.DecodeChunk(s, payload)
	if err != nil {
		return nil, cw.n, fmt.Errorf("transport: fetched %s: %w", ref, err)
	}
	wire := cw.n + int64(payloadLen) + 5
	t.fetches.Add(1)
	t.fetchBytes.Add(wire)
	return ch, wire, nil
}

// Announce implements Transport.
func (t *TCP) Announce(from, to partition.NodeID, a Announcement) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	clear := t.armDeadline(conn)
	bw := bufio.NewWriter(conn)
	fail := func(err error) error {
		conn.Close()
		return markTransient(err)
	}
	_ = binary.Write(bw, binary.LittleEndian, uint32(tcpMagic))
	_ = bw.WriteByte(opAnnounce)
	_ = binary.Write(bw, binary.LittleEndian, int64(from))
	fields := []interface{}{int64(a.Node), a.Health, a.Chunks, a.Bytes, a.Replicas, a.ReplicaBytes, a.Epoch, a.Seq}
	for _, f := range fields {
		_ = binary.Write(bw, binary.LittleEndian, f)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	br := bufio.NewReader(conn)
	status, msg, err := readResponse(br)
	if err != nil {
		conn.Close()
		return err
	}
	clear()
	t.release(to, conn)
	if status != statusOK {
		return statusError(status, msg)
	}
	t.announces.Add(1)
	return nil
}

// Remote implements Transport: payloads cross sockets.
func (t *TCP) Remote() bool { return true }

// Addr implements Transport.
func (t *TCP) Addr(id partition.NodeID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.addrs[id]
}

// Stats implements Transport.
func (t *TCP) Stats() Stats {
	return Stats{
		Pushes:      t.pushes.Load(),
		PushedBytes: t.pushedBytes.Load(),
		Fetches:     t.fetches.Load(),
		FetchBytes:  t.fetchBytes.Load(),
		Announces:   t.announces.Load(),
	}
}

// Close implements Transport: stop the listeners, cut every connection,
// wait for the accept loops.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	listeners := t.listeners
	t.listeners = make(map[partition.NodeID]net.Listener)
	t.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	t.connMu.Lock()
	for _, pool := range t.conns {
		for _, entry := range pool {
			entry.c.Close()
		}
	}
	t.conns = make(map[partition.NodeID][]pooledConn)
	t.connMu.Unlock()
	t.srvMu.Lock()
	for conn := range t.srvConns {
		conn.Close()
	}
	t.srvMu.Unlock()
	t.accepters.Wait()
	return nil
}
