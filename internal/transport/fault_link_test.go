package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/array"
)

// TestBlockLinkAsymmetric pins the one-way partition: A→B cut while B→A
// flows, on both backends and all three verbs.
func TestBlockLinkAsymmetric(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		f := NewFaultTransport(tr)
		s := testSchema("A")
		ch := fillChunk(t, s, array.ChunkCoord{0, 0}, 3)
		f.BlockLink(1, 2, LinkAll)

		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err == nil {
			t.Fatal("push over blocked link succeeded")
		} else if !errors.Is(err, ErrInjected) || !IsTransient(err) {
			t.Fatalf("blocked push error = %v, want transient ErrInjected", err)
		}
		if _, _, err := f.FetchChunk(1, 2, ch.Ref()); err == nil || !errors.Is(err, ErrInjected) {
			t.Fatal("fetch over blocked link succeeded")
		}
		if err := f.Announce(1, 2, Announcement{Node: 1}); err == nil || !errors.Is(err, ErrInjected) {
			t.Fatal("announce over blocked link succeeded")
		}
		// The reverse direction is untouched.
		if _, err := f.PushChunks(2, 1, KindIngest, []*array.Chunk{ch}); err != nil {
			t.Fatalf("reverse push: %v", err)
		}
		if err := f.Announce(2, 1, Announcement{Node: 2}); err != nil {
			t.Fatalf("reverse announce: %v", err)
		}
		if f.Injected() != 3 {
			t.Errorf("Injected = %d, want 3", f.Injected())
		}

		f.UnblockLink(1, 2)
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
			t.Fatalf("push after unblock: %v", err)
		}
	})
}

// TestBlockLinkAnnounceOnly pins heartbeat-only loss: control frames die
// while data flows — the "node looks dead but serves" scenario detector
// drills need — and the LinkData inverse.
func TestBlockLinkAnnounceOnly(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		f := NewFaultTransport(tr)
		s := testSchema("A")
		ch := fillChunk(t, s, array.ChunkCoord{1, 0}, 4)

		f.BlockLink(1, 2, LinkAnnounce)
		if err := f.Announce(1, 2, Announcement{Node: 1}); err == nil {
			t.Fatal("announce survived LinkAnnounce block")
		}
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
			t.Fatalf("data push under announce-only loss: %v", err)
		}
		if _, _, err := f.FetchChunk(1, 2, ch.Ref()); err != nil {
			t.Fatalf("data fetch under announce-only loss: %v", err)
		}

		f.UnblockLink(1, 2)
		f.BlockLink(1, 2, LinkData)
		if err := f.Announce(1, 2, Announcement{Node: 1}); err != nil {
			t.Fatalf("announce under data-only loss: %v", err)
		}
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{2, 0}, 2)}); err == nil {
			t.Fatal("data push survived LinkData block")
		}
		if _, _, err := f.FetchChunk(1, 2, ch.Ref()); err == nil {
			t.Fatal("data fetch survived LinkData block")
		}
	})
}

// TestIsolateNode pins the full kill: every link touching the node dies in
// both directions, and HealNode restores everything it cut.
func TestIsolateNode(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		f := NewFaultTransport(tr)
		s := testSchema("A")
		ch := fillChunk(t, s, array.ChunkCoord{0, 1}, 3)

		f.IsolateNode(2, LinkAll)
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err == nil {
			t.Fatal("push to isolated node succeeded")
		}
		if err := f.Announce(2, 1, Announcement{Node: 2}); err == nil {
			t.Fatal("announce from isolated node succeeded")
		}
		// A directed block armed before healing is lifted by HealNode too.
		f.BlockLink(1, 2, LinkAnnounce)
		f.HealNode(2)
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
			t.Fatalf("push after heal: %v", err)
		}
		if err := f.Announce(1, 2, Announcement{Node: 1}); err != nil {
			t.Fatalf("announce after heal: %v", err)
		}
		if err := f.Announce(2, 1, Announcement{Node: 2}); err != nil {
			t.Fatalf("reverse announce after heal: %v", err)
		}
	})
}

// TestIsolateNodeAnnounceOnlyKeepsData: isolating only the control plane
// leaves the data plane up in both directions.
func TestIsolateNodeAnnounceOnlyKeepsData(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, h1, h2 *memHandler) {
		f := NewFaultTransport(tr)
		s := testSchema("A")
		ch := fillChunk(t, s, array.ChunkCoord{3, 0}, 2)
		f.IsolateNode(2, LinkAnnounce)
		if err := f.Announce(2, 1, Announcement{Node: 2}); err == nil {
			t.Fatal("announce from announce-isolated node succeeded")
		}
		if _, err := f.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
			t.Fatalf("push to announce-isolated node: %v", err)
		}
		if _, _, err := f.FetchChunk(1, 2, ch.Ref()); err != nil {
			t.Fatalf("fetch from announce-isolated node: %v", err)
		}
	})
}

// TestTCPIOTimeout pins the per-RPC deadline: a server that accepts and
// then goes silent must not hang the client — the armed read deadline
// fails the call as a transient transport error.
func TestTCPIOTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request, never answer.
			go func(c net.Conn) {
				buf := make([]byte, 1<<10)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	tr := NewTCP(TCPOptions{IOTimeout: 150 * time.Millisecond})
	defer tr.Close()
	tr.AddRemote(9, ln.Addr().String())

	start := time.Now()
	err = tr.Announce(1, 9, Announcement{Node: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("announce to a silent server succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("deadline failure not transient: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v, configured 150ms", elapsed)
	}
}

// TestTCPPoolIdleEviction: a pooled connection older than the idle limit
// is discarded and redialed instead of reused — the call still succeeds.
func TestTCPPoolIdleEviction(t *testing.T) {
	s := testSchema("A")
	tr := NewTCP(TCPOptions{PoolIdleTimeout: time.Millisecond})
	defer tr.Close()
	h := newMemHandler(s)
	if err := tr.Serve(2, h); err != nil {
		t.Fatal(err)
	}
	ch := fillChunk(t, s, array.ChunkCoord{0, 0}, 3)
	if _, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{ch}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the pooled conn go stale
	if _, err := tr.PushChunks(1, 2, KindIngest, []*array.Chunk{fillChunk(t, s, array.ChunkCoord{1, 0}, 3)}); err != nil {
		t.Fatalf("push after idle eviction: %v", err)
	}
	if h.chunkCount() != 2 {
		t.Fatalf("receiver holds %d chunks, want 2", h.chunkCount())
	}
}

// TestTCPDialTimeout: dialing an unroutable endpoint fails within the
// configured bound instead of hanging on the OS default.
func TestTCPDialTimeout(t *testing.T) {
	tr := NewTCP(TCPOptions{DialTimeout: 200 * time.Millisecond})
	defer tr.Close()
	// RFC 5737 TEST-NET-1: guaranteed unroutable.
	tr.AddRemote(9, "192.0.2.1:9")
	start := time.Now()
	err := tr.Announce(1, 9, Announcement{Node: 1})
	if err == nil {
		t.Fatal("announce to unroutable endpoint succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dial took %v with a 200ms timeout", elapsed)
	}
}

// TestLinkModeReexportSanity keeps the mode algebra honest.
func TestLinkModeAlgebra(t *testing.T) {
	if LinkAll&LinkData == 0 || LinkAll&LinkAnnounce == 0 {
		t.Fatal("LinkAll must cover both planes")
	}
	if LinkData&LinkAnnounce != 0 {
		t.Fatal("LinkData and LinkAnnounce must be disjoint")
	}
	ft := NewFaultTransport(nil)
	ft.BlockLink(1, 2, LinkData)
	ft.BlockLink(1, 2, LinkAnnounce) // accumulate modes on one key
	if !ft.linkFault(1, 2, LinkAnnounce) || !ft.linkFault(1, 2, LinkData) {
		t.Fatal("accumulated block modes lost")
	}
	if ft.linkFault(2, 1, LinkAll) {
		t.Fatal("reverse link blocked")
	}
}
