package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestRingRoundTripAcrossGoroutines pins the streaming contract: a writer
// pushing far more data than the ring holds and a concurrent reader must
// reconstruct the byte stream exactly, with the ring's capacity bounding
// how far the writer runs ahead.
func TestRingRoundTripAcrossGoroutines(t *testing.T) {
	r := NewRing(256)
	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		defer r.CloseWrite()
		// Write in irregular slices to exercise wrap-point splitting.
		for off := 0; off < len(want); {
			n := 100 + off%157
			if off+n > len(want) {
				n = len(want) - off
			}
			if _, err := r.Write(want[off : off+n]); err != nil {
				done <- err
				return
			}
			off += n
		}
		done <- nil
	}()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("writer: %v", werr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ring corrupted the stream (%d bytes read, want %d)", len(got), len(want))
	}
}

// TestRingCloseWriteDrainsThenEOF pins that CloseWrite lets the reader
// drain buffered residue before seeing io.EOF.
func TestRingCloseWriteDrainsThenEOF(t *testing.T) {
	r := NewRing(64)
	if _, err := r.Write([]byte("residue")); err != nil {
		t.Fatal(err)
	}
	r.CloseWrite()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll after CloseWrite: %v", err)
	}
	if string(got) != "residue" {
		t.Fatalf("drained %q, want %q", got, "residue")
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Fatal("Write after CloseWrite succeeded")
	}
}

// TestRingCloseWithErrorAbortsBothSides pins that a terminal error
// surfaces immediately on the reader — even past buffered residue — and
// fails blocked writers.
func TestRingCloseWithErrorAbortsBothSides(t *testing.T) {
	r := NewRing(8)
	if _, err := r.Write([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encode failed")
	r.CloseWithError(boom)
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, boom) {
		t.Fatalf("Read after CloseWithError = %v, want %v", err, boom)
	}
	if _, err := r.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Write after CloseWithError = %v, want %v", err, boom)
	}
}

// TestRingCloseWithErrorUnblocksWaitingReader pins that a reader parked on
// an empty ring is woken by CloseWithError rather than deadlocking.
func TestRingCloseWithErrorUnblocksWaitingReader(t *testing.T) {
	r := NewRing(8)
	boom := errors.New("abort")
	got := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 1))
		got <- err
	}()
	r.CloseWithError(boom)
	if err := <-got; !errors.Is(err, boom) {
		t.Fatalf("blocked Read = %v, want %v", err, boom)
	}
}
