package experiments

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/partition"
)

// The sweep is the expensive fixture; compute it once for all tests.
var (
	sweepOnce sync.Once
	sweepRes  map[string]map[string]SchemeRun
	sweepErr  error

	stairOnce sync.Once
	stairRes  StaircaseResult
	stairErr  error
)

func quickSweep(t *testing.T) map[string]map[string]SchemeRun {
	t.Helper()
	sweepOnce.Do(func() {
		sweepRes, sweepErr = Sweep(Quick())
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepRes
}

// stairConfig uses the paper's cycle counts (the staircase dynamics need a
// long, gentle demand ramp) at reduced cell counts.
func stairConfig() Config {
	return Config{
		MODISCycles:      14,
		MODISBaseCells:   14,
		AISCycles:        12,
		AISCellsPerCycle: 2000,
		CapacityFraction: 7,
	}
}

func quickStair(t *testing.T) StaircaseResult {
	t.Helper()
	stairOnce.Do(func() {
		stairRes, stairErr = Figure8(stairConfig())
	})
	if stairErr != nil {
		t.Fatal(stairErr)
	}
	return stairRes
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	counts := map[string]int{
		"Append": 2, "Cons. Hash": 2, "Extend. Hash": 3, "Hilbert Curve": 3,
		"Incr. Quadtree": 3, "K-d Tree": 3, "Round Robin": 1, "Uniform Range": 1,
	}
	for _, r := range rows {
		if got := r.Features.Count(); got != counts[r.Scheme] {
			t.Errorf("%s has %d traits, want %d", r.Scheme, got, counts[r.Scheme])
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFigure4Shapes(t *testing.T) {
	sweep := quickSweep(t)
	rows := Figure4(sweep)
	if len(rows) != 8 {
		t.Fatalf("Figure 4 has %d rows, want 8", len(rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// Insert time is near constant across schemes (±60%), with Append
	// the slowest (it almost always inserts over the network).
	var minIns, maxIns = math.Inf(1), 0.0
	for _, r := range rows {
		if r.InsertMODIS < minIns {
			minIns = r.InsertMODIS
		}
		if r.InsertMODIS > maxIns {
			maxIns = r.InsertMODIS
		}
	}
	if maxIns > 1.6*minIns {
		t.Errorf("insert times should be near constant: min %.1f max %.1f", minIns, maxIns)
	}
	if byName["Append"].InsertMODIS < maxIns {
		t.Error("Append should have the slowest insert")
	}
	// Append requires no data movement: its reorganization is minimal.
	for _, r := range rows {
		if r.Scheme == "Append" {
			continue
		}
		if byName["Append"].ReorgMODIS >= r.ReorgMODIS {
			t.Errorf("Append reorg %.1f should undercut %s's %.1f", byName["Append"].ReorgMODIS, r.Scheme, r.ReorgMODIS)
		}
	}
	// Global schemes reorganize much longer than the incremental mean
	// on the near-uniform MODIS workload (paper: 2.5×; the Quick
	// preset's smaller migrations compress the ratio, so assert 1.2×
	// here — the full configuration recovers ≈2×, see EXPERIMENTS.md).
	incr := (byName["Cons. Hash"].ReorgMODIS + byName["Extend. Hash"].ReorgMODIS +
		byName["Hilbert Curve"].ReorgMODIS + byName["Incr. Quadtree"].ReorgMODIS +
		byName["K-d Tree"].ReorgMODIS) / 5
	if byName["Round Robin"].ReorgMODIS < 1.2*incr {
		t.Errorf("Round Robin reorg %.1f should exceed incremental mean %.1f by 1.2x", byName["Round Robin"].ReorgMODIS, incr)
	}
	if byName["Uniform Range"].ReorgMODIS < 1.2*incr {
		t.Errorf("Uniform Range reorg %.1f should exceed incremental mean %.1f by 1.2x", byName["Uniform Range"].ReorgMODIS, incr)
	}
	// Fine-grained schemes balance storage far better than the coarse
	// range schemes (paper: 13% vs 44% mean RSD).
	fine := (byName["Round Robin"].RSDMODIS + byName["Cons. Hash"].RSDMODIS + byName["Extend. Hash"].RSDMODIS +
		byName["Round Robin"].RSDAIS + byName["Cons. Hash"].RSDAIS + byName["Extend. Hash"].RSDAIS) / 6
	coarse := (byName["Append"].RSDMODIS + byName["K-d Tree"].RSDMODIS + byName["Incr. Quadtree"].RSDMODIS +
		byName["Append"].RSDAIS + byName["K-d Tree"].RSDAIS + byName["Incr. Quadtree"].RSDAIS) / 6
	if fine >= coarse {
		t.Errorf("fine-grained mean RSD %.2f should beat coarse %.2f", fine, coarse)
	}
	// Uniform Range is brittle to AIS skew: worst RSD of all schemes.
	for _, r := range rows {
		if r.Scheme == "Uniform Range" {
			continue
		}
		if byName["Uniform Range"].RSDAIS < r.RSDAIS {
			t.Errorf("Uniform Range AIS RSD %.2f should be the worst; %s has %.2f", byName["Uniform Range"].RSDAIS, r.Scheme, r.RSDAIS)
		}
	}
	var buf bytes.Buffer
	RenderFigure4(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFigure5Shapes(t *testing.T) {
	sweep := quickSweep(t)
	rows := Figure5(sweep)
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// The skew-aware n-D clustered schemes lead the science analytics.
	spatialSci := (byName["K-d Tree"].ScienceAIS + byName["Incr. Quadtree"].ScienceAIS + byName["Hilbert Curve"].ScienceAIS) / 3
	hashSci := (byName["Cons. Hash"].ScienceAIS + byName["Round Robin"].ScienceAIS) / 2
	if spatialSci >= hashSci {
		t.Errorf("spatial schemes' AIS science %.1f should beat hash schemes' %.1f", spatialSci, hashSci)
	}
	// Uniform Range slightly outperforms the splitters on MODIS science
	// (its expensive global redistribution buys marginally better
	// balance) — assert it is at least competitive.
	if byName["Uniform Range"].ScienceMODIS > 1.15*byName["K-d Tree"].ScienceMODIS {
		t.Errorf("Uniform Range MODIS science %.1f should be competitive with K-d Tree %.1f", byName["Uniform Range"].ScienceMODIS, byName["K-d Tree"].ScienceMODIS)
	}
}

func TestWorkloadCostTopSchemes(t *testing.T) {
	// Section 6.2.3: the skew-aware, incremental, multidimensionally
	// clustered strategies have the lowest end-to-end workload cost,
	// comfortably beating the baseline.
	sweep := quickSweep(t)
	total := func(wl, kind string) float64 { return sweep[wl][kind].TotalMinutes() }
	for _, wl := range []string{"MODIS", "AIS"} {
		spatial := (total(wl, partition.KindKdTree) + total(wl, partition.KindQuadtree) + total(wl, partition.KindHilbert)) / 3
		baseline := total(wl, partition.KindRoundRobin)
		if spatial >= baseline {
			t.Errorf("%s: spatial mean %.1f should beat the Round Robin baseline %.1f", wl, spatial, baseline)
		}
		if total(wl, partition.KindUniform) <= spatial {
			t.Errorf("%s: Uniform Range %.1f should trail the spatial schemes %.1f end to end", wl, total(wl, partition.KindUniform), spatial)
		}
	}
}

func TestFigure6AppendErratic(t *testing.T) {
	sweep := quickSweep(t)
	rows := Figure6(sweep)
	if len(rows) == 0 {
		t.Fatal("no Figure 6 rows")
	}
	// Append's join latency dominates every other scheme's on average
	// (the joined day lives on one or two hosts), and is erratic.
	var appendSum, othersSum float64
	var appendVals []float64
	nOthers := 0
	for _, row := range rows {
		for scheme, m := range row.Minutes {
			if scheme == "Append" {
				appendSum += m
				appendVals = append(appendVals, m)
			} else {
				othersSum += m
				nOthers++
			}
		}
	}
	appendMean := appendSum / float64(len(rows))
	othersMean := othersSum / float64(nOthers)
	if appendMean <= othersMean {
		t.Errorf("Append mean join %.2f should exceed the field's %.2f", appendMean, othersMean)
	}
	var buf bytes.Buffer
	RenderSeries(&buf, "fig6", rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFigure7SpatialSchemesWin(t *testing.T) {
	sweep := quickSweep(t)
	rows := Figure7(sweep)
	mean := func(scheme string) float64 {
		var sum float64
		for _, row := range rows {
			sum += row.Minutes[scheme]
		}
		return sum / float64(len(rows))
	}
	// K-d Tree and Hilbert Curve complete the k-NN query well below the
	// baseline and the hash schemes (paper: half the duration).
	if mean("K-d Tree") >= mean("Round Robin") {
		t.Errorf("K-d Tree kNN %.2f should beat Round Robin %.2f", mean("K-d Tree"), mean("Round Robin"))
	}
	clustered := (mean("K-d Tree") + mean("Hilbert Curve")) / 2
	scattered := (mean("Cons. Hash") + mean("Round Robin")) / 2
	if clustered >= scattered {
		t.Errorf("clustered kNN mean %.2f should beat scattered %.2f", clustered, scattered)
	}
}

func TestFigure8Staircase(t *testing.T) {
	stair := quickStair(t)
	if len(stair.Rows) == 0 {
		t.Fatal("no staircase rows")
	}
	for _, p := range StaircasePs {
		prev := 0
		for i, row := range stair.Rows {
			n := row.Nodes[p]
			if n < prev {
				t.Fatalf("p=%d: cluster shrank at cycle %d", p, row.Cycle)
			}
			prev = n
			// The staircase leads demand: capacity covers it at the
			// end of every cycle.
			if float64(n) < row.DemandNodes-1e-9 {
				t.Errorf("p=%d cycle %d: %d nodes below demand %.2f", p, row.Cycle, n, row.DemandNodes)
			}
			_ = i
		}
	}
	// Lazier settings reorganize more often.
	if !(stair.Reorgs[1] >= stair.Reorgs[3] && stair.Reorgs[3] >= stair.Reorgs[6]) {
		t.Errorf("reorganization counts should fall with p: %v", stair.Reorgs)
	}
	// The eager setting finishes with at least as many nodes as the others.
	last := stair.Rows[len(stair.Rows)-1]
	if last.Nodes[6] < last.Nodes[1] {
		t.Errorf("p=6 should end at least as large as p=1: %v", last.Nodes)
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, stair)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestTable2TunerSelections(t *testing.T) {
	rows, bestAIS, bestMODIS, err := Table2(stairConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows, want 4", len(rows))
	}
	// The paper's headline: AIS (seasonal swings) is best predicted by
	// the most recent sample; MODIS (steady growth) by a longer window.
	if bestAIS != 1 {
		t.Errorf("AIS best s = %d, want 1", bestAIS)
	}
	if bestMODIS < 2 {
		t.Errorf("MODIS best s = %d, want >= 2", bestMODIS)
	}
	for _, r := range rows {
		if len(r.Errors) != 4 {
			t.Fatalf("row %s/%s has %d errors", r.Workload, r.Phase, len(r.Errors))
		}
		for _, e := range r.Errors {
			if e < 0 || math.IsNaN(e) {
				t.Errorf("row %s/%s has invalid error %v", r.Workload, r.Phase, e)
			}
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows, bestAIS, bestMODIS)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestTable3CostModel(t *testing.T) {
	stair := quickStair(t)
	rows, err := Table3(stairConfig(), stair)
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]Table3Row{}
	for _, r := range rows {
		byP[r.P] = r
		if r.Estimate <= 0 || r.Measured <= 0 {
			t.Errorf("p=%d: non-positive costs %+v", r.P, r)
		}
	}
	// The analytical model identifies p=3 as the cheapest set point.
	if !(byP[3].Estimate < byP[1].Estimate && byP[3].Estimate < byP[6].Estimate) {
		t.Errorf("estimate should pick p=3: %+v", rows)
	}
	// Measured: the eager setting is clearly the most expensive; lazy
	// and moderate are within a few percent of each other (the paper
	// measures 13 vs 12 node-hours).
	if !(byP[6].Measured > byP[1].Measured && byP[6].Measured > byP[3].Measured) {
		t.Errorf("measured should penalise p=6: %+v", rows)
	}
	if byP[3].Measured > 1.15*byP[1].Measured {
		t.Errorf("measured p=3 (%.2f) should be within 15%% of p=1 (%.2f)", byP[3].Measured, byP[1].Measured)
	}
	// Estimates correlate with measurements: same worst case.
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestQuickConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MODISCycles != 14 || cfg.AISCycles != 12 || cfg.CapacityFraction != 7 {
		t.Errorf("full defaults wrong: %+v", cfg)
	}
	q := Quick()
	if q.MODISCycles >= cfg.MODISCycles {
		t.Error("Quick should be smaller than full")
	}
}
