package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/partition"
)

// RenderTable1 prints the taxonomy as the paper's Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Taxonomy of array partitioners\n")
	fmt.Fprintf(w, "%-16s %-12s %-12s %-6s %-14s\n", "Partitioner", "Incremental", "Fine-Grained", "Skew-", "n-Dimensional")
	fmt.Fprintf(w, "%-16s %-12s %-12s %-6s %-14s\n", "", "Scale Out", "Partitioning", "Aware", "Clustering")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12s %-12s %-6s %-14s\n", r.Scheme,
			mark(r.Features.IncrementalScaleOut),
			mark(r.Features.FineGrained),
			mark(r.Features.SkewAware),
			mark(r.Features.NDimensionalClustering))
	}
}

func mark(b bool) string {
	if b {
		return "X"
	}
	return ""
}

// RenderFigure4 prints the insert/reorganization comparison with the RSD
// labels.
func RenderFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "Figure 4: Elastic partitioner insert and reorganization durations (simulated minutes)\n")
	fmt.Fprintf(w, "%-16s %11s %11s %9s | %11s %11s %9s\n",
		"Partitioner", "InsertMODIS", "ReorgMODIS", "RSD MODIS", "InsertAIS", "ReorgAIS", "RSD AIS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %11.1f %11.1f %8.0f%% | %11.1f %11.1f %8.0f%%\n",
			r.Scheme, r.InsertMODIS, r.ReorgMODIS, r.RSDMODIS*100,
			r.InsertAIS, r.ReorgAIS, r.RSDAIS*100)
	}
}

// RenderFigure5 prints the benchmark comparison.
func RenderFigure5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: Benchmark times for elastic partitioners (simulated minutes)\n")
	fmt.Fprintf(w, "%-16s %13s %9s | %11s %7s\n",
		"Partitioner", "Science MODIS", "SPJ MODIS", "Science AIS", "SPJ AIS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %13.1f %9.1f | %11.1f %7.1f\n",
			r.Scheme, r.ScienceMODIS, r.SPJMODIS, r.ScienceAIS, r.SPJAIS)
	}
}

// RenderSeries prints a per-cycle figure (Figures 6 and 7).
func RenderSeries(w io.Writer, title string, rows []SeriesRow) {
	fmt.Fprintln(w, title)
	if len(rows) == 0 {
		return
	}
	schemes := make([]string, 0, len(rows[0].Minutes))
	for s := range rows[0].Minutes {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	fmt.Fprintf(w, "%-6s", "Cycle")
	for _, s := range schemes {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-6d", row.Cycle)
		for _, s := range schemes {
			fmt.Fprintf(w, " %14.2f", row.Minutes[s])
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure8 prints the staircase.
func RenderFigure8(w io.Writer, res StaircaseResult) {
	fmt.Fprintf(w, "Figure 8: MODIS staircase with varying provisioner configurations (demand in node capacities)\n")
	fmt.Fprintf(w, "%-6s %8s", "Cycle", "Demand")
	for _, p := range StaircasePs {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-6d %8.2f", row.Cycle, row.DemandNodes)
		for _, p := range StaircasePs {
			fmt.Fprintf(w, " %8d", row.Nodes[p])
		}
		fmt.Fprintln(w)
	}
	var parts []string
	for _, p := range StaircasePs {
		parts = append(parts, fmt.Sprintf("p=%d: %d", p, res.Reorgs[p]))
	}
	fmt.Fprintf(w, "Reorganizations — %s\n", strings.Join(parts, ", "))
}

// RenderTable2 prints the demand-prediction error table.
func RenderTable2(w io.Writer, rows []Table2Row, bestAIS, bestMODIS int) {
	fmt.Fprintf(w, "Table 2: Demand prediction error rates (MB) for sampling levels s=1..4\n")
	fmt.Fprintf(w, "%-8s %-6s %8s %8s %8s %8s\n", "Workload", "Phase", "s=1", "s=2", "s=3", "s=4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-6s", r.Workload, r.Phase)
		for _, e := range r.Errors {
			fmt.Fprintf(w, " %8.3f", e)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Tuner selection — AIS: s=%d, MODIS: s=%d\n", bestAIS, bestMODIS)
}

// RenderTable3 prints the cost-model validation.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: Analytical cost modeling of MODIS controller set points (node hours)\n")
	fmt.Fprintf(w, "%-6s %14s %14s\n", "p", "Cost Estimate", "Measured Cost")
	for _, r := range rows {
		fmt.Fprintf(w, "p = %-2d %14.2f %14.2f\n", r.P, r.Estimate, r.Measured)
	}
}

// RenderBreakdown prints the per-query latency detail for one workload.
func RenderBreakdown(w io.Writer, wl string, rows []BreakdownRow) {
	fmt.Fprintf(w, "%s benchmark breakdown (summed simulated minutes per query)\n", wl)
	fmt.Fprintf(w, "%-16s", "Partitioner")
	for _, q := range BenchQueries {
		fmt.Fprintf(w, " %11s", q)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s", r.Scheme)
		for _, q := range BenchQueries {
			fmt.Fprintf(w, " %11.2f", r.Minutes[q])
		}
		fmt.Fprintln(w)
	}
}

// RenderSweepTotals prints the Section 6.2.3 end-to-end comparison.
func RenderSweepTotals(w io.Writer, sweep map[string]map[string]SchemeRun) {
	fmt.Fprintf(w, "Workload cost (Section 6.2.3): total workload minutes per scheme\n")
	fmt.Fprintf(w, "%-16s %8s %8s\n", "Partitioner", "MODIS", "AIS")
	for _, kind := range partition.Kinds() {
		m, a := sweep["MODIS"][kind], sweep["AIS"][kind]
		fmt.Fprintf(w, "%-16s %8.1f %8.1f\n", m.Scheme, m.TotalMinutes(), a.TotalMinutes())
	}
}
