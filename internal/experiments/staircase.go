package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/provision"
	"repro/internal/workload"
)

// StaircasePs are the planning horizons Figure 8 and Table 3 compare.
var StaircasePs = []int{1, 3, 6}

// StaircaseSamples is the controller sample count the staircase runs use
// (s = 4, per Table 2's MODIS result).
const StaircaseSamples = 4

// Fig8Row is one workload cycle of Figure 8: storage demand (in units of
// node capacity, i.e. "nodes of data") and the provisioned node count
// under each planning horizon.
type Fig8Row struct {
	Cycle       int
	DemandNodes float64
	Nodes       map[int]int // p -> provisioned nodes after the cycle
}

// StaircaseResult carries Figure 8 plus everything Table 3 needs from the
// same runs.
type StaircaseResult struct {
	Rows []Fig8Row
	// PerP retains the full cycle statistics of each horizon's run.
	PerP map[int][]core.CycleStats
	// Capacity is the node capacity used (bytes).
	Capacity int64
	// Reorgs counts scale-out events per horizon.
	Reorgs map[int]int
}

// Figure8 drives the leading staircase over the MODIS workload with
// Consistent Hash placement (the paper's choice: even balance and simple
// redistribution, keeping the focus on the provisioner) for p ∈ {1,3,6}.
func Figure8(cfg Config) (StaircaseResult, error) {
	cfg = cfg.withDefaults()
	res := StaircaseResult{
		PerP:   make(map[int][]core.CycleStats),
		Reorgs: make(map[int]int),
	}
	for _, p := range StaircasePs {
		gen, err := cfg.modis()
		if err != nil {
			return res, err
		}
		capacity, err := cfg.capacityOf(gen)
		if err != nil {
			return res, err
		}
		res.Capacity = capacity
		ctrl, err := provision.NewController(StaircaseSamples, p, float64(capacity))
		if err != nil {
			return res, err
		}
		eng, err := core.NewEngine(gen, core.Config{
			PartitionerKind: "consistent",
			InitialNodes:    2,
			NodeCapacity:    capacity,
			Cost:            cluster.ScaledCostModel(),
			Controller:      ctrl,
			RunQueries:      true,
		})
		if err != nil {
			return res, err
		}
		stats, err := eng.Run()
		if err != nil {
			return res, fmt.Errorf("experiments: staircase p=%d: %w", p, err)
		}
		res.PerP[p] = stats
		for _, s := range stats {
			if s.Added > 0 {
				res.Reorgs[p]++
			}
		}
	}
	// Assemble the rows from the (identical) demand curve and the three
	// node series.
	base := res.PerP[StaircasePs[0]]
	for i, s := range base {
		row := Fig8Row{
			Cycle:       i + 1,
			DemandNodes: float64(s.DemandBytes) / float64(res.Capacity),
			Nodes:       make(map[int]int),
		}
		for _, p := range StaircasePs {
			row.Nodes[p] = res.PerP[p][i].NodesAfter
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table2Row is one row of Table 2: mean demand-prediction error (in MB;
// the paper reports GB at its scale) for s = 1..4.
type Table2Row struct {
	Workload string
	Phase    string // "Train" or "Test"
	Errors   []float64
}

// Table2 runs the what-if tuning of s (Algorithm 1) on the first portion
// of each workload's demand curve and validates on the remainder. The
// tuning needs ψ+2 training cycles plus a test window, so short Quick
// configurations are extended to the paper's cycle counts — only demand
// curves are generated here, no cluster runs, so this stays cheap.
func Table2(cfg Config) ([]Table2Row, int, int, error) {
	cfg = cfg.withDefaults()
	const psi = 4
	if cfg.MODISCycles < 3*(psi+2) {
		cfg.MODISCycles = 3 * (psi + 2)
	}
	if cfg.AISCycles < 3*(psi+2) {
		cfg.AISCycles = 3 * (psi + 2)
	}
	var rows []Table2Row
	var bestMODIS, bestAIS int
	for _, name := range []string{"AIS", "MODIS"} {
		var gen workload.Generator
		var err error
		if name == "AIS" {
			gen, err = cfg.ais()
		} else {
			gen, err = cfg.modis()
		}
		if err != nil {
			return nil, 0, 0, err
		}
		curve, _, err := workload.TotalBytes(gen)
		if err != nil {
			return nil, 0, 0, err
		}
		trainEnd := len(curve) / 3
		if trainEnd < psi+2 {
			trainEnd = psi + 2
		}
		if trainEnd >= len(curve) {
			return nil, 0, 0, fmt.Errorf("experiments: %s curve of %d cycles too short for Table 2", name, len(curve))
		}
		best, trainErrs, err := provision.TuneS(curve[:trainEnd], psi)
		if err != nil {
			return nil, 0, 0, err
		}
		testErrs := make([]float64, psi)
		for s := 1; s <= psi; s++ {
			testErrs[s-1] = testError(curve, s, trainEnd)
		}
		const mb = 1 << 20
		rows = append(rows,
			Table2Row{Workload: name, Phase: "Train", Errors: scale(trainErrs, 1.0/mb)},
			Table2Row{Workload: name, Phase: "Test", Errors: scale(testErrs, 1.0/mb)},
		)
		if name == "AIS" {
			bestAIS = best
		} else {
			bestMODIS = best
		}
	}
	return rows, bestAIS, bestMODIS, nil
}

// testError scores the s-sample derivative as a one-step predictor over
// the held-out cycles [trainEnd, len-1), using history before each point.
func testError(curve []float64, s, trainEnd int) float64 {
	var total float64
	n := 0
	for i := trainEnd; i+1 < len(curve); i++ {
		if i-s < 0 {
			continue
		}
		est := (curve[i] - curve[i-s]) / float64(s)
		actual := curve[i+1] - curve[i]
		d := actual - est
		if d < 0 {
			d = -d
		}
		total += d
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// Table3Row is one row of Table 3: the analytical estimate and the
// measured cost of a planning horizon, in node-hours.
type Table3Row struct {
	P        int
	Estimate float64
	Measured float64
}

// Table3 validates the analytical cost model (Eqs 5–9) against the
// measured staircase runs. The accounting window opens at the last cycle
// before the first scale-out (so every horizon's expansions — including
// the eager setting's early over-provisioning — fall inside it; the
// paper's window of cycles 5–8 plays the same role at its scale) and runs
// to the end of the workload. The estimate is computed from the cluster
// state at the window's start (μ derived over s=4 samples, w0 split into
// its parallelizable and fixed parts from the measured suite); the
// measurement sums Equation 1 over the window.
func Table3(cfg Config, stair StaircaseResult) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	base := stair.PerP[1]
	lo := 0
	for i, s := range base {
		if s.Added > 0 {
			lo = i - 1
			break
		}
	}
	if lo < 1 {
		lo = 1
	}
	hi := len(base) - 1
	if lo >= hi {
		return nil, fmt.Errorf("experiments: run too short for the Table 3 window")
	}
	cost := cluster.ScaledCostModel()
	// State at the window start, from the p=1 run (all runs share the
	// demand curve and are identical before the first divergence).
	at := base[lo]
	var mu float64
	if lo >= StaircaseSamples {
		mu = float64(at.DemandBytes-base[lo-StaircaseSamples].DemandBytes) / StaircaseSamples
	} else {
		mu = float64(at.DemandBytes) / float64(lo+1)
	}
	// Split the measured cycle time into its parallelizable part (the
	// per-node scan work, which Eq 8 scales by N0/Ni) and the fixed
	// part (network + coordination), which no amount of nodes removes.
	var fixed float64
	for _, q := range at.Suite.PerQuery {
		fixed += cost.NetTime(q.BytesShuffled).Seconds() + cost.QueryOverheadSec
	}
	w0 := at.Query.Seconds() - fixed
	if w0 < 0 {
		w0 = 0
	}
	params := provision.CostParams{
		DeltaSecPerUnit:  cost.DeltaSecPerByte,
		TSecPerUnit:      cost.TSecPerByte,
		NodeCapacity:     float64(stair.Capacity),
		Mu:               mu,
		L0:               float64(at.DemandBytes),
		W0:               w0,
		N0:               at.NodesAfter,
		M:                hi - lo,
		ReorgFixedSec:    cost.ReorgFixedSec,
		CycleOverheadSec: fixed,
		FabricWidth:      cost.FabricWidth,
	}
	var rows []Table3Row
	for _, p := range StaircasePs {
		est, err := provision.EstimateCost(params, p)
		if err != nil {
			return nil, err
		}
		var measured float64
		for i := lo + 1; i <= hi && i < len(stair.PerP[p]); i++ {
			measured += stair.PerP[p][i].NodeSeconds()
		}
		rows = append(rows, Table3Row{
			P:        p,
			Estimate: provision.NodeHours(est),
			Measured: provision.NodeHours(measured),
		})
	}
	return rows, nil
}
