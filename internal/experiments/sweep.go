package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SchemeRun is one (partitioner, workload) execution of the Section 6.2
// setup: start with 2 nodes, add 2 whenever the incoming insert exceeds
// capacity, end at 8, running the full benchmark each cycle.
type SchemeRun struct {
	Scheme   string // display name, as in the figures
	Kind     string // registry key
	Workload string
	// Summed phase durations over the whole run.
	Insert, Reorg, SPJ, Science float64 // simulated minutes
	// MeanRSD averages the post-insert storage RSD over all cycles —
	// the Figure 4 labels.
	MeanRSD float64
	// MovedBytes is the total migration volume.
	MovedBytes int64
	// FinalNodes is the cluster size at the end.
	FinalNodes int
	// PerCycle retains the full per-cycle statistics for Figures 6–7.
	PerCycle []core.CycleStats
}

// TotalMinutes is the run's end-to-end workload duration (the Section
// 6.2.3 comparison).
func (r SchemeRun) TotalMinutes() float64 { return r.Insert + r.Reorg + r.SPJ + r.Science }

// RunScheme executes one partitioner over one workload.
func RunScheme(cfg Config, kind string, gen workload.Generator) (SchemeRun, error) {
	cfg = cfg.withDefaults()
	capacity, err := cfg.capacityOf(gen)
	if err != nil {
		return SchemeRun{}, err
	}
	eng, err := core.NewEngine(gen, core.Config{
		PartitionerKind: kind,
		InitialNodes:    2,
		NodeCapacity:    capacity,
		Cost:            cluster.ScaledCostModel(),
		FixedStep:       2,
		MaxNodes:        8,
		RunQueries:      true,
	})
	if err != nil {
		return SchemeRun{}, err
	}
	perCycle, err := eng.Run()
	if err != nil {
		return SchemeRun{}, fmt.Errorf("experiments: %s over %s: %w", kind, gen.Name(), err)
	}
	run := SchemeRun{
		Scheme:     eng.Cluster().Partitioner().Name(),
		Kind:       kind,
		Workload:   gen.Name(),
		FinalNodes: eng.Cluster().NumNodes(),
		PerCycle:   perCycle,
	}
	var rsds []float64
	for _, s := range perCycle {
		run.Insert += s.Insert.Minutes()
		run.Reorg += s.Reorg.Minutes()
		run.SPJ += s.Suite.SPJ.Minutes()
		run.Science += s.Suite.Science.Minutes()
		run.MovedBytes += s.MovedBytes
		rsds = append(rsds, s.RSD)
	}
	run.MeanRSD = stats.Mean(rsds)
	return run, nil
}

// Sweep runs every partitioner over both workloads — the data behind
// Figures 4, 5, 6 and 7. Results are keyed [workload][kind].
func Sweep(cfg Config) (map[string]map[string]SchemeRun, error) {
	cfg = cfg.withDefaults()
	out := map[string]map[string]SchemeRun{"MODIS": {}, "AIS": {}}
	for _, kind := range partition.Kinds() {
		modis, err := cfg.modis()
		if err != nil {
			return nil, err
		}
		run, err := RunScheme(cfg, kind, modis)
		if err != nil {
			return nil, err
		}
		out["MODIS"][kind] = run

		ais, err := cfg.ais()
		if err != nil {
			return nil, err
		}
		run, err = RunScheme(cfg, kind, ais)
		if err != nil {
			return nil, err
		}
		out["AIS"][kind] = run
	}
	return out, nil
}

// Fig4Row is one bar group of Figure 4: insert and reorganization minutes
// per workload with the RSD labels.
type Fig4Row struct {
	Scheme                  string
	InsertMODIS, ReorgMODIS float64
	InsertAIS, ReorgAIS     float64
	RSDMODIS, RSDAIS        float64
}

// Figure4 extracts the Figure 4 rows from a sweep.
func Figure4(sweep map[string]map[string]SchemeRun) []Fig4Row {
	var rows []Fig4Row
	for _, kind := range partition.Kinds() {
		m, a := sweep["MODIS"][kind], sweep["AIS"][kind]
		rows = append(rows, Fig4Row{
			Scheme:      m.Scheme,
			InsertMODIS: m.Insert, ReorgMODIS: m.Reorg,
			InsertAIS: a.Insert, ReorgAIS: a.Reorg,
			RSDMODIS: m.MeanRSD, RSDAIS: a.MeanRSD,
		})
	}
	return rows
}

// Fig5Row is one bar group of Figure 5: total benchmark minutes split into
// Science and SPJ per workload.
type Fig5Row struct {
	Scheme                 string
	ScienceMODIS, SPJMODIS float64
	ScienceAIS, SPJAIS     float64
}

// Figure5 extracts the Figure 5 rows from a sweep.
func Figure5(sweep map[string]map[string]SchemeRun) []Fig5Row {
	var rows []Fig5Row
	for _, kind := range partition.Kinds() {
		m, a := sweep["MODIS"][kind], sweep["AIS"][kind]
		rows = append(rows, Fig5Row{
			Scheme:       m.Scheme,
			ScienceMODIS: m.Science, SPJMODIS: m.SPJ,
			ScienceAIS: a.Science, SPJAIS: a.SPJ,
		})
	}
	return rows
}

// SeriesRow is one workload cycle of a per-cycle figure: the latency of
// one query under every scheme.
type SeriesRow struct {
	Cycle   int
	Minutes map[string]float64 // scheme display name -> minutes
}

// Figure6 extracts the MODIS join-duration series (vegetation-index join
// over the most recent day, per cycle, per scheme).
func Figure6(sweep map[string]map[string]SchemeRun) []SeriesRow {
	return perQuerySeries(sweep["MODIS"], "join")
}

// Figure7 extracts the AIS k-NN series.
func Figure7(sweep map[string]map[string]SchemeRun) []SeriesRow {
	return perQuerySeries(sweep["AIS"], "modeling")
}

func perQuerySeries(runs map[string]SchemeRun, queryName string) []SeriesRow {
	var cycles int
	for _, r := range runs {
		if len(r.PerCycle) > cycles {
			cycles = len(r.PerCycle)
		}
	}
	rows := make([]SeriesRow, 0, cycles)
	for i := 0; i < cycles; i++ {
		row := SeriesRow{Cycle: i + 1, Minutes: make(map[string]float64)}
		for _, kind := range partition.Kinds() {
			r, ok := runs[kind]
			if !ok || i >= len(r.PerCycle) {
				continue
			}
			q, ok := r.PerCycle[i].Suite.PerQuery[queryName]
			if !ok {
				continue
			}
			row.Minutes[r.Scheme] = q.Elapsed.Minutes()
		}
		rows = append(rows, row)
	}
	return rows
}

// BenchQueries are the six benchmark queries in Section 3.3's order.
var BenchQueries = []string{"selection", "sort", "join", "statistics", "modeling", "projection"}

// BreakdownRow is one scheme's summed latency per benchmark query — the
// detail behind Figure 5's bars.
type BreakdownRow struct {
	Scheme  string
	Minutes map[string]float64 // query name -> summed simulated minutes
}

// QueryBreakdown extracts the per-query latency detail for one workload
// from a sweep.
func QueryBreakdown(sweep map[string]map[string]SchemeRun, wl string) []BreakdownRow {
	var rows []BreakdownRow
	for _, kind := range partition.Kinds() {
		run, ok := sweep[wl][kind]
		if !ok {
			continue
		}
		row := BreakdownRow{Scheme: run.Scheme, Minutes: make(map[string]float64)}
		for _, s := range run.PerCycle {
			for name, q := range s.Suite.PerQuery {
				row.Minutes[name] += q.Elapsed.Minutes()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1Row is one row of the partitioner taxonomy.
type Table1Row struct {
	Scheme   string
	Features partition.Features
}

// Table1 reproduces the taxonomy table from the schemes' Features.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, kind := range partition.Kinds() {
		p, err := partition.New(kind, []partition.NodeID{0, 1},
			partition.Geometry{Extents: []int64{8, 8}}, partition.Options{NodeCapacity: 1 << 20})
		if err != nil {
			panic(err) // registry kinds always construct
		}
		rows = append(rows, Table1Row{Scheme: p.Name(), Features: p.Features()})
	}
	return rows
}
