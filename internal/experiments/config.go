// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): the partitioner taxonomy (Table 1), the insert /
// reorganization / load-balance comparison (Figure 4), the benchmark
// comparison (Figure 5), the per-cycle join and k-NN series (Figures 6–7),
// the leading staircase under different planning horizons (Figure 8), the
// s-tuning error table (Table 2) and the p cost-model validation
// (Table 3). Each experiment is a pure function from a Config to typed
// rows; cmd/elasticbench renders them, the root benches time them, and the
// tests assert the paper's qualitative shapes on the Quick preset.
package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// Config scales the experiments. The zero value selects the full-scale
// reproduction (the paper's cycle counts); Quick() is a smaller preset for
// unit tests.
type Config struct {
	// MODISCycles and MODISBaseCells size the remote-sensing workload
	// (defaults: 14 daily cycles, 36 cells/chunk).
	MODISCycles    int
	MODISBaseCells int
	// AISCycles and AISCellsPerCycle size the ship-tracking workload
	// (defaults: 12 monthly cycles, 6000 broadcasts/cycle).
	AISCycles        int
	AISCellsPerCycle int
	// CapacityFraction sets per-node capacity to total/CapacityFraction,
	// which with the fixed +2 schedule walks the cluster 2→4→6→8 as in
	// Section 6.2 (default 7).
	CapacityFraction int
	// Seed offsets the generators' seeds (0 = paper defaults).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MODISCycles == 0 {
		c.MODISCycles = 14
	}
	if c.MODISBaseCells == 0 {
		c.MODISBaseCells = 36
	}
	if c.AISCycles == 0 {
		c.AISCycles = 12
	}
	if c.AISCellsPerCycle == 0 {
		c.AISCellsPerCycle = 6000
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 7
	}
	return c
}

// Quick returns a scaled-down preset for fast tests: the same shapes at a
// fraction of the cell counts.
func Quick() Config {
	return Config{
		MODISCycles:      6,
		MODISBaseCells:   14,
		AISCycles:        6,
		AISCellsPerCycle: 2000,
		CapacityFraction: 6,
	}
}

// modis builds the MODIS generator for the config.
func (c Config) modis() (*workload.MODIS, error) {
	return workload.NewMODIS(workload.MODISConfig{
		Cycles:    c.MODISCycles,
		BaseCells: c.MODISBaseCells,
		Seed:      c.Seed, // 0 keeps the generator default
	})
}

// ais builds the AIS generator for the config.
func (c Config) ais() (*workload.AIS, error) {
	return workload.NewAIS(workload.AISConfig{
		Cycles:        c.AISCycles,
		CellsPerCycle: c.AISCellsPerCycle,
		Seed:          c.Seed,
	})
}

// capacityOf sizes node capacity from the generator's total demand.
func (c Config) capacityOf(g workload.Generator) (int64, error) {
	_, total, err := workload.TotalBytes(g)
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: generator %s produced no data", g.Name())
	}
	return total/int64(c.CapacityFraction) + 1, nil
}
