package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestQueryBreakdown(t *testing.T) {
	sweep := quickSweep(t)
	for _, wl := range []string{"MODIS", "AIS"} {
		rows := QueryBreakdown(sweep, wl)
		if len(rows) != 8 {
			t.Fatalf("%s breakdown has %d rows, want 8", wl, len(rows))
		}
		for _, r := range rows {
			for _, q := range BenchQueries {
				if r.Minutes[q] <= 0 {
					t.Errorf("%s/%s: query %s has no time", wl, r.Scheme, q)
				}
			}
		}
		var buf bytes.Buffer
		RenderBreakdown(&buf, wl, rows)
		out := buf.String()
		for _, q := range BenchQueries {
			if !strings.Contains(out, q) {
				t.Errorf("render missing query column %s", q)
			}
		}
	}
	if rows := QueryBreakdown(sweep, "NOPE"); len(rows) != 0 {
		t.Error("unknown workload should yield no rows")
	}
}
