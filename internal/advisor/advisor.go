// Package advisor prototypes the paper's future-work direction (Section
// 8): "more tightly integrate workloads with data placement … and the
// individual chunks that stand to benefit most directly from residing on
// the same server."
//
// The advisor builds a co-access graph over the resident chunks — which
// pairs the workload's queries touch together, and how many bytes cross
// the network when the pair is split across nodes — and proposes a bounded
// set of migrations that pull chunks toward the nodes holding their
// partners, subject to a storage-balance guard. Applied after a hash
// partitioner has scattered array space, it recovers much of the spatial
// locality the n-D clustered schemes get by construction.
//
// # The continuous advisor
//
// The package offers the graph in two lifecycles. The one-shot path —
// BuildGraph + Graph.Plan, wrapped by Advise — rebuilds from a cluster
// walk on every call: cost O(cluster), no state between calls. The
// continuous path, Live, maintains one graph for the life of the cluster
// against the placement change feed (cluster.SubscribePlacement):
//
//   - a committed ingest patches each new chunk in, adding its halo and
//     congruent-join edges against the already-resident neighbourhood;
//   - a committed rebalance updates owners in place (edges carry
//     endpoints only, so a move costs O(1) per chunk);
//   - a removal — the insert-only cluster never emits one today — excises
//     exactly the chunk's incident edges.
//
// Rollbacks, discarded plans and stale-plan rejections publish nothing,
// so the live graph never sees placement that did not commit. Advising
// off the live graph requires only that its feed generation matches the
// cluster's (Refresh checks two atomic loads); a full rebuild — run under
// Cluster.Quiesce for a consistent snapshot — happens only on first use
// or detected divergence. Both constructions funnel through the same
// addChunk routine, and a randomized property test pins a live graph
// byte-identical (edges, sizes, owners) to a from-scratch BuildGraph
// after arbitrary plan/execute/discard/rollback interleavings.
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// Edge is one co-access relationship: queries that touch both chunks ship
// approximately Weight bytes whenever the two live on different nodes.
// Endpoints are packed chunk keys (A < B canonically), so walking the graph
// needs no per-edge conversions; render with ChunkKey.Ref for diagnostics.
type Edge struct {
	A, B   array.ChunkKey
	Weight int64
}

// Graph is the co-access graph plus the placement snapshot it was built
// from. All internal indexes are keyed by the packed chunk identity so
// building and consulting the graph allocates no key strings. The graph
// supports in-place patching — addChunk, moveChunk, removeChunk — which is
// what Live maintains against the cluster's placement change feed; a graph
// patched through any sequence of those operations is identical (same edge
// set, sizes and owners) to one rebuilt from scratch over the same
// placement.
type Graph struct {
	Edges []Edge
	// adj[key] lists the indexes into Edges incident to the chunk. Only
	// chunks with at least one edge appear; an excision that empties a
	// list removes the entry, so ranging adj always yields exactly the
	// edge-incident chunks.
	adj   map[array.ChunkKey][]int
	size  map[array.ChunkKey]int64
	owner map[array.ChunkKey]partition.NodeID
	// byCoord indexes resident chunks by grid position across arrays —
	// the congruent-join partner lookup, maintained so incremental adds
	// find their structural twins without a cluster walk.
	byCoord map[array.CoordKey][]array.ChunkKey
	// nb is the reusable spatial-neighbour enumeration scratch, shared
	// across every addChunk of this graph's lifetime.
	nb neighborBuf
}

func newGraph() *Graph {
	return &Graph{
		adj:     make(map[array.ChunkKey][]int),
		size:    make(map[array.ChunkKey]int64),
		owner:   make(map[array.ChunkKey]partition.NodeID),
		byCoord: make(map[array.CoordKey][]array.ChunkKey),
	}
}

// boundaryFraction scales halo-edge weights: the halo a windowed operator
// pulls across a chunk boundary ≈ 1/4 of the smaller chunk.
const boundaryFraction = 4

// BuildGraph derives the co-access graph from the workload's structural
// access patterns, mirroring the benchmark suite (Section 3.3):
//
//   - spatial neighbours within a time slab exchange halo cells (windowed
//     aggregates, k-NN, collision projection): weight ≈ the smaller
//     side's bytes scaled by a boundary fraction;
//   - congruent arrays' chunks at equal positions join structurally
//     (the vegetation index): weight ≈ the smaller side's bytes.
//
// Arrays are congruent when they share dimensionality; time is assumed to
// be dimension 0 with space on dimensions 1+, as in both workloads.
//
// BuildGraph is the cold-start path: it replays every resident chunk, in
// canonical order, through the same addChunk that patches a live graph,
// so the two constructions cannot drift.
func BuildGraph(c *cluster.Cluster, arrays []string) (*Graph, error) {
	g := newGraph()
	type chunkPos struct {
		key  array.ChunkKey
		size int64
		own  partition.NodeID
	}
	var all []chunkPos
	schemaOf := make(map[array.ArrayID]*array.Schema, len(arrays))
	for _, name := range arrays {
		s, ok := c.Schema(name)
		if !ok {
			return nil, fmt.Errorf("advisor: array %q not defined", name)
		}
		schemaOf[s.ID()] = s
		for _, id := range c.Nodes() {
			node, _ := c.Node(id)
			for _, ch := range node.Chunks() {
				if ch.Schema.Name != name {
					continue
				}
				all = append(all, chunkPos{key: ch.Key(), size: ch.SizeBytes(), own: id})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key.Less(all[j].key) })
	for _, cp := range all {
		g.addChunk(schemaOf[cp.key.Array()], cp.key, cp.size, cp.own)
	}
	return g, nil
}

// addChunk registers a resident chunk and links it to its already-present
// partners: halo edges to spatial neighbours in the same array and slab,
// join edges to congruent twins at the same grid position. It is the one
// edge-construction routine — BuildGraph replays the whole placement
// through it and Live patches one arrival at a time, which is what keeps
// the two graph constructions byte-identical.
func (g *Graph) addChunk(s *array.Schema, key array.ChunkKey, size int64, owner partition.NodeID) {
	g.size[key] = size
	g.owner[key] = owner
	coord := key.Coord()
	// Halo edges between spatial neighbours in the same array and slab.
	for _, nc := range g.nb.neighbors(s, coord) {
		nkey := array.MakeChunkKey(key.Array(), nc)
		nsize, ok := g.size[nkey]
		if !ok {
			continue
		}
		w := size
		if nsize < w {
			w = nsize
		}
		g.addEdge(key, nkey, w/boundaryFraction)
	}
	// Structural-join edges between equal positions of different arrays.
	for _, twin := range g.byCoord[coord] {
		w := size
		if b := g.size[twin]; b < w {
			w = b
		}
		g.addEdge(key, twin, w)
	}
	g.byCoord[coord] = append(g.byCoord[coord], key)
}

// moveChunk records a relocation: O(1) — edges carry endpoints only, so
// ownership changes never touch the adjacency structure.
func (g *Graph) moveChunk(key array.ChunkKey, to partition.NodeID) {
	if _, ok := g.owner[key]; ok {
		g.owner[key] = to
	}
}

// removeChunk excises a chunk: its incident edges leave the edge list by
// swap-removal — O(incident edges, plus the adjacency fix-up of each
// swapped-in tail edge) — and its registration leaves the size, owner and
// position indexes. No other chunk's edges are rebuilt.
func (g *Graph) removeChunk(key array.ChunkKey) {
	for {
		l := g.adj[key]
		if len(l) == 0 {
			break
		}
		g.removeEdgeAt(l[len(l)-1])
	}
	delete(g.adj, key)
	delete(g.size, key)
	delete(g.owner, key)
	coord := key.Coord()
	twins := g.byCoord[coord]
	for i, k := range twins {
		if k == key {
			twins[i] = twins[len(twins)-1]
			twins = twins[:len(twins)-1]
			break
		}
	}
	if len(twins) == 0 {
		delete(g.byCoord, coord)
	} else {
		g.byCoord[coord] = twins
	}
}

// addEdge appends the canonical a–b edge unless it already exists. The
// duplicate check probes the shorter endpoint's adjacency list directly —
// chunk degrees are tiny (≤8 same-slab neighbours plus the join twins), so
// scanning a handful of incident edges beats maintaining a parallel
// pair-set map across the whole build.
func (g *Graph) addEdge(a, b array.ChunkKey, w int64) {
	if w <= 0 {
		return
	}
	if b.Less(a) {
		a, b = b, a
	}
	if g.hasEdge(a, b) {
		return
	}
	g.Edges = append(g.Edges, Edge{A: a, B: b, Weight: w})
	g.adj[a] = append(g.adj[a], len(g.Edges)-1)
	g.adj[b] = append(g.adj[b], len(g.Edges)-1)
}

// hasEdge is the adjacency probe behind addEdge's dedup. a–b must be in
// canonical order (a < b), as stored.
func (g *Graph) hasEdge(a, b array.ChunkKey) bool {
	l := g.adj[a]
	if lb := g.adj[b]; len(lb) < len(l) {
		l = lb
	}
	for _, ei := range l {
		if e := &g.Edges[ei]; e.A == a && e.B == b {
			return true
		}
	}
	return false
}

// removeEdgeAt deletes edge ei by swapping the tail edge into its slot and
// patching the adjacency indexes of both affected edges' endpoints.
func (g *Graph) removeEdgeAt(ei int) {
	e := g.Edges[ei]
	g.dropAdjIndex(e.A, ei)
	g.dropAdjIndex(e.B, ei)
	last := len(g.Edges) - 1
	if ei != last {
		moved := g.Edges[last]
		g.Edges[ei] = moved
		g.replaceAdjIndex(moved.A, last, ei)
		g.replaceAdjIndex(moved.B, last, ei)
	}
	g.Edges = g.Edges[:last]
}

// dropAdjIndex removes edge index ei from k's incident list, deleting the
// list when it empties (so ranging adj yields only edge-incident chunks).
func (g *Graph) dropAdjIndex(k array.ChunkKey, ei int) {
	l := g.adj[k]
	for i, v := range l {
		if v == ei {
			l[i] = l[len(l)-1]
			if len(l) == 1 {
				delete(g.adj, k)
			} else {
				g.adj[k] = l[:len(l)-1]
			}
			return
		}
	}
}

// replaceAdjIndex rewrites the entry for edge index old to new in k's
// incident list (the swap-removal fix-up).
func (g *Graph) replaceAdjIndex(k array.ChunkKey, old, new int) {
	l := g.adj[k]
	for i, v := range l {
		if v == old {
			l[i] = new
			return
		}
	}
}

// neighborBuf reuses the spatial-neighbour enumeration buffers across
// calls: BuildGraph visits every chunk and Live every arrival, and the
// per-neighbour coordinate clones the old recursive enumeration allocated
// dominated the build profile.
type neighborBuf struct {
	out  []array.CoordKey
	work array.ChunkCoord
}

// neighbors lists the same-slab neighbour positions of coord (±1 on each
// non-time dimension, diagonals included; dimension 0 is the time/growth
// axis and never offset), already packed. The returned slice is valid
// until the next call.
func (nb *neighborBuf) neighbors(s *array.Schema, coord array.CoordKey) []array.CoordKey {
	nd := coord.NumDims()
	if nd < 2 {
		return nil
	}
	nb.out = nb.out[:0]
	nb.work = coord.AppendTo(nb.work[:0])
	// Enumerate the 3^(nd-1) spatial offset combinations as base-3 digit
	// strings; the all-ones code is the zero offset (the chunk itself).
	total, center := 1, 0
	for d := 1; d < nd; d++ {
		center = center*3 + 1
		total *= 3
	}
	for code := 0; code < total; code++ {
		if code == center {
			continue
		}
		rest := code
		for d := nd - 1; d >= 1; d-- {
			nb.work[d] = coord.At(d) + int64(rest%3) - 1
			rest /= 3
		}
		if s.ValidChunk(nb.work) {
			nb.out = append(nb.out, nb.work.Packed())
		}
	}
	return nb.out
}

// RemoteBytes sums the weights of edges whose endpoints live on different
// nodes — the co-access traffic the current placement pays per benchmark
// round. Pure packed-key map probes: no conversions, no allocation.
func (g *Graph) RemoteBytes() int64 {
	var total int64
	for _, e := range g.Edges {
		if g.owner[e.A] != g.owner[e.B] {
			total += e.Weight
		}
	}
	return total
}

// RemoteBytesAfter predicts the remote co-access traffic once the given
// moves have been applied — the what-if counterpart of RemoteBytes,
// computed on the graph's placement snapshot without touching the cluster.
func (g *Graph) RemoteBytesAfter(moves []partition.Move) int64 {
	owner := make(map[array.ChunkKey]partition.NodeID, len(g.owner))
	for k, n := range g.owner {
		owner[k] = n
	}
	for _, m := range moves {
		owner[m.Ref.Packed()] = m.To
	}
	var total int64
	for _, e := range g.Edges {
		if owner[e.A] != owner[e.B] {
			total += e.Weight
		}
	}
	return total
}

// Plan proposes up to maxMoves migrations that pull co-accessed chunks
// onto shared nodes. Chunks sharing a grid position across arrays (the
// structural-join twins) are treated as one atomic *unit* — a join never
// gets split by the advisor — and the units are partitioned by greedy
// region growing (in the spirit of METIS's GGGP): one region per node,
// each grown from its heaviest unassigned seed by repeatedly absorbing the
// frontier unit with the strongest connection to the region, until the
// region reaches its storage share (slack × total/nodes).
//
// The diff against the current placement is emitted highest-gain first,
// capped at maxMoves. The balance guarantee applies to the *full* plan; a
// truncated prefix trades some balance for the biggest locality wins.
func (g *Graph) Plan(c *cluster.Cluster, maxMoves int, slack float64) []partition.Move {
	if maxMoves <= 0 {
		return nil
	}
	if slack <= 1 {
		slack = 1.25
	}
	nodes := c.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	// Collapse chunks into position units.
	unitOf := make(map[array.ChunkKey]array.CoordKey, len(g.adj))
	unitChunks := make(map[array.CoordKey][]array.ChunkKey)
	unitSize := make(map[array.CoordKey]int64)
	chunkKeys := make([]array.ChunkKey, 0, len(g.adj))
	for k := range g.adj {
		chunkKeys = append(chunkKeys, k)
	}
	sort.Slice(chunkKeys, func(i, j int) bool { return chunkKeys[i].Less(chunkKeys[j]) })
	for _, k := range chunkKeys {
		u := k.Coord()
		unitOf[k] = u
		unitChunks[u] = append(unitChunks[u], k)
		unitSize[u] += g.size[k]
	}
	units := make([]array.CoordKey, 0, len(unitChunks))
	for u := range unitChunks {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Less(units[j]) })
	// Unit adjacency: summed inter-unit edge weights.
	uAdj := make(map[array.CoordKey]map[array.CoordKey]int64)
	for _, e := range g.Edges {
		ua, ub := unitOf[e.A], unitOf[e.B]
		if ua == ub {
			continue // twin edge, internal to a unit
		}
		if uAdj[ua] == nil {
			uAdj[ua] = make(map[array.CoordKey]int64)
		}
		if uAdj[ub] == nil {
			uAdj[ub] = make(map[array.CoordKey]int64)
		}
		uAdj[ua][ub] += e.Weight
		uAdj[ub][ua] += e.Weight
	}
	var total int64
	for _, u := range units {
		total += unitSize[u]
	}
	target := int64(float64(total) / float64(len(nodes)))
	limit := int64(slack * float64(target))

	uLabel := make(map[array.CoordKey]partition.NodeID, len(units))
	load := make(map[partition.NodeID]int64)
	assigned := make(map[array.CoordKey]bool, len(units))
	attach := make(map[array.CoordKey]int64)

	for _, n := range nodes {
		// Seed: the heaviest unassigned unit (deterministic tie-break by
		// key) — port positions and dense slabs anchor regions.
		var seed array.CoordKey
		seeded := false
		var seedSize int64 = -1
		for _, u := range units {
			if !assigned[u] && unitSize[u] > seedSize {
				seed, seedSize, seeded = u, unitSize[u], true
			}
		}
		if !seeded {
			break
		}
		for k := range attach {
			delete(attach, k)
		}
		grow := func(u array.CoordKey) {
			assigned[u] = true
			uLabel[u] = n
			load[n] += unitSize[u]
			delete(attach, u)
			for other, w := range uAdj[u] {
				if !assigned[other] {
					attach[other] += w
				}
			}
		}
		grow(seed)
		for load[n] < target {
			var best array.CoordKey
			found := false
			var bestW int64 = -1
			for u, w := range attach {
				if w > bestW || (w == bestW && (!found || u.Less(best))) {
					best, bestW, found = u, w, true
				}
			}
			if !found {
				break // region's component exhausted
			}
			if load[n]+unitSize[best] > limit {
				delete(attach, best) // too big for this region; skip
				continue
			}
			grow(best)
		}
	}
	// Leftovers (disconnected or skipped): spread over the least-loaded
	// nodes.
	for _, u := range units {
		if assigned[u] {
			continue
		}
		var dest partition.NodeID = -1
		for _, n := range nodes {
			if dest < 0 || load[n] < load[dest] {
				dest = n
			}
		}
		uLabel[u] = dest
		load[dest] += unitSize[u]
		assigned[u] = true
	}
	label := make(map[array.ChunkKey]partition.NodeID, len(chunkKeys))
	for _, k := range chunkKeys {
		label[k] = uLabel[unitOf[k]]
	}
	affinity := func(key array.ChunkKey) map[partition.NodeID]int64 {
		aff := make(map[partition.NodeID]int64)
		for _, ei := range g.adj[key] {
			e := g.Edges[ei]
			other := e.B
			if other == key {
				other = e.A
			}
			aff[label[other]] += e.Weight
		}
		return aff
	}
	// Emit the diff, largest locality gain first, capped at maxMoves.
	type cand struct {
		key  array.ChunkKey
		gain int64
	}
	var cands []cand
	for _, key := range chunkKeys {
		if label[key] == g.owner[key] {
			continue
		}
		aff := affinity(key)
		cands = append(cands, cand{key: key, gain: aff[label[key]] - aff[g.owner[key]]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].key.Less(cands[j].key)
	})
	if len(cands) > maxMoves {
		cands = cands[:maxMoves]
	}
	var moves []partition.Move
	for _, cd := range cands {
		moves = append(moves, partition.Move{
			Ref:  cd.key.Ref(),
			From: g.owner[cd.key],
			To:   label[cd.key],
			Size: g.size[cd.key],
		})
	}
	return moves
}

// Advice is the advisor's recommendation: an executable, inspectable
// rebalance plan plus the predicted effect. Nothing has moved yet — the
// caller reads the predictions (and the plan's per-receiver batches and
// Eq 7 duration) and then either commits with cluster.ExecuteRebalance or
// backs out with Plan.Discard.
type Advice struct {
	// Plan is the validated rebalance, grouped per receiving node.
	Plan *cluster.RebalancePlan
	// Moves lists the proposed relocations, highest locality gain first
	// (the order Graph.Plan emitted them).
	Moves []partition.Move
	// RemoteBytesBefore is the co-access traffic the current placement
	// pays per benchmark round.
	RemoteBytesBefore int64
	// RemoteBytesAfter is the predicted traffic once the plan executes.
	// Because ExecuteRebalance applies exactly these moves, the
	// prediction is exact unless the plan goes stale first.
	RemoteBytesAfter int64
}

// Advise builds the co-access graph and plans up to maxMoves migrations,
// returning the plan and the predicted before/after remote traffic
// without applying anything. Execute the returned plan with
// cluster.ExecuteRebalance, or Discard it to drop the recommendation —
// Advise itself is a pure what-if probe.
func Advise(c *cluster.Cluster, arrays []string, maxMoves int, slack float64) (*Advice, error) {
	g, err := BuildGraph(c, arrays)
	if err != nil {
		return nil, err
	}
	moves := g.Plan(c, maxMoves, slack)
	plan, err := c.PlanMigrate(moves)
	if err != nil {
		return nil, err
	}
	return &Advice{
		Plan:              plan,
		Moves:             moves,
		RemoteBytesBefore: g.RemoteBytes(),
		RemoteBytesAfter:  g.RemoteBytesAfter(moves),
	}, nil
}
