// Package advisor prototypes the paper's future-work direction (Section
// 8): "more tightly integrate workloads with data placement … and the
// individual chunks that stand to benefit most directly from residing on
// the same server."
//
// The advisor builds a co-access graph over the resident chunks — which
// pairs the workload's queries touch together, and how many bytes cross
// the network when the pair is split across nodes — and proposes a bounded
// set of migrations that pull chunks toward the nodes holding their
// partners, subject to a storage-balance guard. Applied after a hash
// partitioner has scattered array space, it recovers much of the spatial
// locality the n-D clustered schemes get by construction.
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// Edge is one co-access relationship: queries that touch both chunks ship
// approximately Weight bytes whenever the two live on different nodes.
// Endpoints are packed chunk keys (A < B canonically), so walking the graph
// needs no per-edge conversions; render with ChunkKey.Ref for diagnostics.
type Edge struct {
	A, B   array.ChunkKey
	Weight int64
}

// Graph is the co-access graph plus the placement snapshot it was built
// from. All internal indexes are keyed by the packed chunk identity so
// building and consulting the graph allocates no key strings.
type Graph struct {
	Edges []Edge
	// adj[key] lists the indexes into Edges incident to the chunk.
	adj   map[array.ChunkKey][]int
	size  map[array.ChunkKey]int64
	owner map[array.ChunkKey]partition.NodeID
}

// BuildGraph derives the co-access graph from the workload's structural
// access patterns, mirroring the benchmark suite (Section 3.3):
//
//   - spatial neighbours within a time slab exchange halo cells (windowed
//     aggregates, k-NN, collision projection): weight ≈ the smaller
//     side's bytes scaled by a boundary fraction;
//   - congruent arrays' chunks at equal positions join structurally
//     (the vegetation index): weight ≈ the smaller side's bytes.
//
// Arrays are congruent when they share dimensionality; time is assumed to
// be dimension 0 with space on dimensions 1+, as in both workloads.
func BuildGraph(c *cluster.Cluster, arrays []string) (*Graph, error) {
	g := &Graph{
		adj:   make(map[array.ChunkKey][]int),
		size:  make(map[array.ChunkKey]int64),
		owner: make(map[array.ChunkKey]partition.NodeID),
	}
	byCoord := make(map[array.CoordKey][]array.ChunkKey) // grid position -> keys across arrays
	type chunkPos struct {
		ref  array.ChunkRef
		key  array.ChunkKey
		size int64
	}
	var all []chunkPos
	for _, name := range arrays {
		if _, ok := c.Schema(name); !ok {
			return nil, fmt.Errorf("advisor: array %q not defined", name)
		}
		for _, id := range c.Nodes() {
			node, _ := c.Node(id)
			for _, ch := range node.Chunks() {
				if ch.Schema.Name != name {
					continue
				}
				key := ch.Key()
				g.size[key] = ch.SizeBytes()
				g.owner[key] = id
				all = append(all, chunkPos{ref: ch.Ref(), key: key, size: ch.SizeBytes()})
				coord := key.Coord()
				byCoord[coord] = append(byCoord[coord], key)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key.Less(all[j].key) })
	// Halo edges between spatial neighbours in the same array and slab.
	const boundaryFraction = 4 // halo ≈ 1/4 of the smaller chunk
	seen := make(map[[2]array.ChunkKey]bool)
	addEdge := func(a, b array.ChunkKey, w int64) {
		if w <= 0 {
			return
		}
		if b.Less(a) {
			a, b = b, a
		}
		pair := [2]array.ChunkKey{a, b}
		if seen[pair] {
			return
		}
		seen[pair] = true
		g.Edges = append(g.Edges, Edge{A: a, B: b, Weight: w})
		g.adj[a] = append(g.adj[a], len(g.Edges)-1)
		g.adj[b] = append(g.adj[b], len(g.Edges)-1)
	}
	for _, cp := range all {
		s, _ := c.Schema(cp.ref.Array)
		for _, ncc := range spatialNeighbors(s, cp.ref.Coords) {
			nkey := array.MakeChunkKey(cp.key.Array(), ncc.Packed())
			nsize, ok := g.size[nkey]
			if !ok {
				continue
			}
			w := cp.size
			if nsize < w {
				w = nsize
			}
			addEdge(cp.key, nkey, w/boundaryFraction)
		}
	}
	// Structural-join edges between equal positions of different arrays.
	for _, keys := range byCoord {
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				w := g.size[keys[i]]
				if b := g.size[keys[j]]; b < w {
					w = b
				}
				addEdge(keys[i], keys[j], w)
			}
		}
	}
	return g, nil
}

// spatialNeighbors lists same-slab neighbours (±1 on each non-time
// dimension, diagonals included).
func spatialNeighbors(s *array.Schema, cc array.ChunkCoord) []array.ChunkCoord {
	if len(cc) < 2 {
		return nil
	}
	var out []array.ChunkCoord
	var walk func(dim int, cur array.ChunkCoord, moved bool)
	walk = func(dim int, cur array.ChunkCoord, moved bool) {
		if dim == len(cc) {
			if moved && s.ValidChunk(cur) {
				out = append(out, cur.Clone())
			}
			return
		}
		if dim == 0 { // time: growth axis, never offset
			walk(dim+1, cur, moved)
			return
		}
		for _, d := range [3]int64{-1, 0, 1} {
			cur[dim] = cc[dim] + d
			walk(dim+1, cur, moved || d != 0)
		}
		cur[dim] = cc[dim]
	}
	walk(0, cc.Clone(), false)
	return out
}

// RemoteBytes sums the weights of edges whose endpoints live on different
// nodes — the co-access traffic the current placement pays per benchmark
// round. Pure packed-key map probes: no conversions, no allocation.
func (g *Graph) RemoteBytes() int64 {
	var total int64
	for _, e := range g.Edges {
		if g.owner[e.A] != g.owner[e.B] {
			total += e.Weight
		}
	}
	return total
}

// RemoteBytesAfter predicts the remote co-access traffic once the given
// moves have been applied — the what-if counterpart of RemoteBytes,
// computed on the graph's placement snapshot without touching the cluster.
func (g *Graph) RemoteBytesAfter(moves []partition.Move) int64 {
	owner := make(map[array.ChunkKey]partition.NodeID, len(g.owner))
	for k, n := range g.owner {
		owner[k] = n
	}
	for _, m := range moves {
		owner[m.Ref.Packed()] = m.To
	}
	var total int64
	for _, e := range g.Edges {
		if owner[e.A] != owner[e.B] {
			total += e.Weight
		}
	}
	return total
}

// Plan proposes up to maxMoves migrations that pull co-accessed chunks
// onto shared nodes. Chunks sharing a grid position across arrays (the
// structural-join twins) are treated as one atomic *unit* — a join never
// gets split by the advisor — and the units are partitioned by greedy
// region growing (in the spirit of METIS's GGGP): one region per node,
// each grown from its heaviest unassigned seed by repeatedly absorbing the
// frontier unit with the strongest connection to the region, until the
// region reaches its storage share (slack × total/nodes).
//
// The diff against the current placement is emitted highest-gain first,
// capped at maxMoves. The balance guarantee applies to the *full* plan; a
// truncated prefix trades some balance for the biggest locality wins.
func (g *Graph) Plan(c *cluster.Cluster, maxMoves int, slack float64) []partition.Move {
	if maxMoves <= 0 {
		return nil
	}
	if slack <= 1 {
		slack = 1.25
	}
	nodes := c.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	// Collapse chunks into position units.
	unitOf := make(map[array.ChunkKey]array.CoordKey, len(g.adj))
	unitChunks := make(map[array.CoordKey][]array.ChunkKey)
	unitSize := make(map[array.CoordKey]int64)
	chunkKeys := make([]array.ChunkKey, 0, len(g.adj))
	for k := range g.adj {
		chunkKeys = append(chunkKeys, k)
	}
	sort.Slice(chunkKeys, func(i, j int) bool { return chunkKeys[i].Less(chunkKeys[j]) })
	for _, k := range chunkKeys {
		u := k.Coord()
		unitOf[k] = u
		unitChunks[u] = append(unitChunks[u], k)
		unitSize[u] += g.size[k]
	}
	units := make([]array.CoordKey, 0, len(unitChunks))
	for u := range unitChunks {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Less(units[j]) })
	// Unit adjacency: summed inter-unit edge weights.
	uAdj := make(map[array.CoordKey]map[array.CoordKey]int64)
	for _, e := range g.Edges {
		ua, ub := unitOf[e.A], unitOf[e.B]
		if ua == ub {
			continue // twin edge, internal to a unit
		}
		if uAdj[ua] == nil {
			uAdj[ua] = make(map[array.CoordKey]int64)
		}
		if uAdj[ub] == nil {
			uAdj[ub] = make(map[array.CoordKey]int64)
		}
		uAdj[ua][ub] += e.Weight
		uAdj[ub][ua] += e.Weight
	}
	var total int64
	for _, u := range units {
		total += unitSize[u]
	}
	target := int64(float64(total) / float64(len(nodes)))
	limit := int64(slack * float64(target))

	uLabel := make(map[array.CoordKey]partition.NodeID, len(units))
	load := make(map[partition.NodeID]int64)
	assigned := make(map[array.CoordKey]bool, len(units))
	attach := make(map[array.CoordKey]int64)

	for _, n := range nodes {
		// Seed: the heaviest unassigned unit (deterministic tie-break by
		// key) — port positions and dense slabs anchor regions.
		var seed array.CoordKey
		seeded := false
		var seedSize int64 = -1
		for _, u := range units {
			if !assigned[u] && unitSize[u] > seedSize {
				seed, seedSize, seeded = u, unitSize[u], true
			}
		}
		if !seeded {
			break
		}
		for k := range attach {
			delete(attach, k)
		}
		grow := func(u array.CoordKey) {
			assigned[u] = true
			uLabel[u] = n
			load[n] += unitSize[u]
			delete(attach, u)
			for other, w := range uAdj[u] {
				if !assigned[other] {
					attach[other] += w
				}
			}
		}
		grow(seed)
		for load[n] < target {
			var best array.CoordKey
			found := false
			var bestW int64 = -1
			for u, w := range attach {
				if w > bestW || (w == bestW && (!found || u.Less(best))) {
					best, bestW, found = u, w, true
				}
			}
			if !found {
				break // region's component exhausted
			}
			if load[n]+unitSize[best] > limit {
				delete(attach, best) // too big for this region; skip
				continue
			}
			grow(best)
		}
	}
	// Leftovers (disconnected or skipped): spread over the least-loaded
	// nodes.
	for _, u := range units {
		if assigned[u] {
			continue
		}
		var dest partition.NodeID = -1
		for _, n := range nodes {
			if dest < 0 || load[n] < load[dest] {
				dest = n
			}
		}
		uLabel[u] = dest
		load[dest] += unitSize[u]
		assigned[u] = true
	}
	label := make(map[array.ChunkKey]partition.NodeID, len(chunkKeys))
	for _, k := range chunkKeys {
		label[k] = uLabel[unitOf[k]]
	}
	affinity := func(key array.ChunkKey) map[partition.NodeID]int64 {
		aff := make(map[partition.NodeID]int64)
		for _, ei := range g.adj[key] {
			e := g.Edges[ei]
			other := e.B
			if other == key {
				other = e.A
			}
			aff[label[other]] += e.Weight
		}
		return aff
	}
	// Emit the diff, largest locality gain first, capped at maxMoves.
	type cand struct {
		key  array.ChunkKey
		gain int64
	}
	var cands []cand
	for _, key := range chunkKeys {
		if label[key] == g.owner[key] {
			continue
		}
		aff := affinity(key)
		cands = append(cands, cand{key: key, gain: aff[label[key]] - aff[g.owner[key]]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].key.Less(cands[j].key)
	})
	if len(cands) > maxMoves {
		cands = cands[:maxMoves]
	}
	var moves []partition.Move
	for _, cd := range cands {
		moves = append(moves, partition.Move{
			Ref:  cd.key.Ref(),
			From: g.owner[cd.key],
			To:   label[cd.key],
			Size: g.size[cd.key],
		})
	}
	return moves
}

// Advice is the advisor's recommendation: an executable, inspectable
// rebalance plan plus the predicted effect. Nothing has moved yet — the
// caller reads the predictions (and the plan's per-receiver batches and
// Eq 7 duration) and then either commits with cluster.ExecuteRebalance or
// backs out with Plan.Discard.
type Advice struct {
	// Plan is the validated rebalance, grouped per receiving node.
	Plan *cluster.RebalancePlan
	// Moves lists the proposed relocations, highest locality gain first
	// (the order Graph.Plan emitted them).
	Moves []partition.Move
	// RemoteBytesBefore is the co-access traffic the current placement
	// pays per benchmark round.
	RemoteBytesBefore int64
	// RemoteBytesAfter is the predicted traffic once the plan executes.
	// Because ExecuteRebalance applies exactly these moves, the
	// prediction is exact unless the plan goes stale first.
	RemoteBytesAfter int64
}

// Advise builds the co-access graph and plans up to maxMoves migrations,
// returning the plan and the predicted before/after remote traffic
// without applying anything. Execute the returned plan with
// cluster.ExecuteRebalance, or Discard it to drop the recommendation —
// Advise itself is a pure what-if probe.
func Advise(c *cluster.Cluster, arrays []string, maxMoves int, slack float64) (*Advice, error) {
	g, err := BuildGraph(c, arrays)
	if err != nil {
		return nil, err
	}
	moves := g.Plan(c, maxMoves, slack)
	plan, err := c.PlanMigrate(moves)
	if err != nil {
		return nil, err
	}
	return &Advice{
		Plan:              plan,
		Moves:             moves,
		RemoteBytesBefore: g.RemoteBytes(),
		RemoteBytesAfter:  g.RemoteBytesAfter(moves),
	}, nil
}
