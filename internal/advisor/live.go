package advisor

import (
	"fmt"
	"sync"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// Live is the continuous co-access advisor: a co-access graph maintained
// incrementally against the cluster's placement change feed, so advising
// costs O(what changed) instead of O(cluster) per call.
//
// Lifecycle: NewLive subscribes to the feed; the first Advise (or an
// explicit Refresh) builds the graph once under Cluster.Quiesce; from then
// on every committed ingest patches new chunks in — halo and
// congruent-join edges against the already-resident neighbourhood — and
// every committed rebalance updates owners in place. Advise, Plan,
// RemoteBytes and RemoteBytesAfter all run off the live graph whenever its
// feed generation matches the cluster's; a full rebuild happens only on
// first use or detected divergence. Rolled-back executions and discarded
// plans publish nothing, so the live graph never sees phantom placements.
//
// Advise additionally memoises its last recommendation keyed by (feed
// generation, topology epoch, maxMoves, slack): in steady state — no
// placement or topology change since the last call — the move set and
// traffic predictions are returned without re-running the partitioner,
// and only the executable RebalancePlan is built fresh (plans are
// single-use).
//
// Concurrency: Live is safe for concurrent use, and Advise may race
// ingest and rebalance execution — the graph is patched synchronously at
// their commit points, and a recommendation invalidated mid-flight
// surfaces as a PlanMigrate validation error (retry), never as silent
// drift. Like every cluster read accessor, Advise must not race a
// concurrent PlanScaleOut/ScaleOut topology change.
type Live struct {
	c      *cluster.Cluster
	arrays []string
	// advised gates event application to the arrays the graph covers.
	advised map[array.ArrayID]bool

	// rebuildMu single-flights full rebuilds: concurrent Advise calls that
	// both detect divergence serialise here, and the second finds the
	// graph current and skips its rebuild. Never held by the feed
	// callback, so publishers cannot deadlock against a rebuild's
	// Quiesce.
	rebuildMu sync.Mutex

	// mu guards everything below. The feed callback takes it while the
	// publisher holds the cluster's admin lock, so code holding mu must
	// never acquire admin (PlanMigrate, Quiesce, …).
	mu    sync.Mutex
	g     *Graph
	gen   uint64 // feed generation the graph reflects
	valid bool   // false before first build and after detected divergence
	// rebuilding marks a quiesced rebuild in flight; event batches
	// arriving meanwhile are buffered and replayed on top of the fresh
	// graph (the build may or may not have observed them).
	rebuilding bool
	pending    []pendingBatch
	rebuilds   int
	memo       advMemo
}

// pendingBatch is one feed batch buffered during a rebuild.
type pendingBatch struct {
	gen    uint64
	events []cluster.PlacementEvent
}

// advMemo is the cached last recommendation and the state it depends on.
type advMemo struct {
	valid    bool
	gen      uint64
	epoch    uint64
	maxMoves int
	slack    float64
	moves    []partition.Move
	before   int64
	after    int64
}

// NewLive subscribes a continuous advisor to the cluster's placement
// change feed over the named arrays. The graph is built lazily: the first
// Advise/Refresh pays one full BuildGraph under Cluster.Quiesce, and all
// later placement changes are patched in incrementally. The subscription
// lasts for the life of the cluster.
func NewLive(c *cluster.Cluster, arrays []string) (*Live, error) {
	if len(arrays) == 0 {
		return nil, fmt.Errorf("advisor: NewLive needs at least one array")
	}
	l := &Live{
		c:       c,
		arrays:  append([]string(nil), arrays...),
		advised: make(map[array.ArrayID]bool, len(arrays)),
	}
	for _, name := range arrays {
		if _, ok := c.Schema(name); !ok {
			return nil, fmt.Errorf("advisor: array %q not defined", name)
		}
		l.advised[array.InternArrayName(name)] = true
	}
	l.gen = c.SubscribePlacement(l.onEvents)
	return l, nil
}

// onEvents is the feed callback: patch a valid graph in place, buffer
// for replay while a rebuild is in flight, and otherwise just track the
// generation (an invalid graph is rebuilt wholesale on next use anyway).
func (l *Live) onEvents(gen uint64, events []cluster.PlacementEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.valid:
		for i := range events {
			if !l.applyEvent(&events[i]) {
				l.valid = false // divergence: fall back to rebuild on next use
				break
			}
		}
	case l.rebuilding:
		l.pending = append(l.pending, pendingBatch{
			gen:    gen,
			events: append([]cluster.PlacementEvent(nil), events...),
		})
	}
	l.gen = gen
}

// applyEvent patches one committed change into the graph. Application is
// idempotent and self-healing: a rebuild racing an in-flight commit may
// already have observed the chunk the event announces, in which case only
// the ownership is refreshed; a move of a chunk the graph never saw is
// upgraded to an add (events carry sizes for exactly this). It reports
// false only on unresolvable divergence.
func (l *Live) applyEvent(ev *cluster.PlacementEvent) bool {
	if !l.advised[ev.Key.Array()] {
		return true
	}
	switch ev.Kind {
	case cluster.PlacementAdd, cluster.PlacementMove:
		if _, known := l.g.size[ev.Key]; known {
			l.g.moveChunk(ev.Key, ev.Node)
			return true
		}
		s, ok := l.c.Schema(ev.Key.ArrayName())
		if !ok {
			return false
		}
		l.g.addChunk(s, ev.Key, ev.Size, ev.Node)
		return true
	case cluster.PlacementRemove:
		l.g.removeChunk(ev.Key)
		return true
	}
	return false
}

// Refresh brings the live graph up to date, rebuilding from scratch only
// when it has never been built or has diverged; when the graph's feed
// generation already matches the cluster's this is two atomic loads.
// Advise/Plan/RemoteBytes call it implicitly; it is exported so a driver
// can pay the cold build eagerly (e.g. right after workload setup).
func (l *Live) Refresh() error {
	// The feed stores a generation only after delivering its batch, so a
	// graph at or ahead of PlacementGen has applied every committed
	// change — hence >= rather than ==.
	l.mu.Lock()
	current := l.valid && l.gen >= l.c.PlacementGen()
	l.mu.Unlock()
	if current {
		return nil
	}
	l.rebuildMu.Lock()
	defer l.rebuildMu.Unlock()
	l.mu.Lock()
	if l.valid && l.gen >= l.c.PlacementGen() {
		// Another Advise rebuilt while we waited for the flight lock.
		l.mu.Unlock()
		return nil
	}
	l.rebuilding = true
	l.pending = l.pending[:0]
	l.mu.Unlock()

	// The quiesced build: no execution in flight, no batch pending
	// publication, generation frozen — the snapshot a racing rollback can
	// never contaminate.
	var g *Graph
	var gen uint64
	var err error
	l.c.Quiesce(func() {
		g, err = BuildGraph(l.c, l.arrays)
		gen = l.c.PlacementGen()
	})

	l.mu.Lock()
	defer l.mu.Unlock()
	l.rebuilding = false
	if err != nil {
		l.pending = nil
		l.valid = false
		return err
	}
	l.g = g
	l.valid = true
	l.rebuilds++
	for _, b := range l.pending {
		if b.gen <= gen {
			continue // committed before the quiesced snapshot; already in g
		}
		for i := range b.events {
			if !l.applyEvent(&b.events[i]) {
				l.pending = nil
				l.valid = false
				return fmt.Errorf("advisor: live graph diverged during rebuild")
			}
		}
	}
	l.pending = nil
	if l.gen < gen {
		l.gen = gen
	}
	return nil
}

// Generation returns the feed generation the live graph reflects.
func (l *Live) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Rebuilds returns how many full BuildGraph fallbacks the advisor has
// paid — 1 after warm-up; anything above counts detected divergences.
func (l *Live) Rebuilds() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rebuilds
}

// RemoteBytes sums the weights of co-access edges whose endpoints live on
// different nodes, off the live graph.
func (l *Live) RemoteBytes() (int64, error) {
	if err := l.Refresh(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.g.RemoteBytes(), nil
}

// RemoteBytesAfter predicts the remote co-access traffic once the given
// moves have been applied, off the live graph.
func (l *Live) RemoteBytesAfter(moves []partition.Move) (int64, error) {
	if err := l.Refresh(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.g.RemoteBytesAfter(moves), nil
}

// Plan proposes up to maxMoves migrations off the live graph — the
// continuous counterpart of Graph.Plan, memoised like Advise.
func (l *Live) Plan(maxMoves int, slack float64) ([]partition.Move, error) {
	moves, _, _, err := l.plan(maxMoves, slack)
	return moves, err
}

// plan returns the (memoised) recommendation: the move set plus the
// predicted before/after remote traffic. The returned slice is a copy.
func (l *Live) plan(maxMoves int, slack float64) (moves []partition.Move, before, after int64, err error) {
	if err := l.Refresh(); err != nil {
		return nil, 0, 0, err
	}
	epoch := l.c.Epoch()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid {
		return nil, 0, 0, fmt.Errorf("advisor: live graph invalidated concurrently; retry")
	}
	m := &l.memo
	if !(m.valid && m.gen == l.gen && m.epoch == epoch && m.maxMoves == maxMoves && m.slack == slack) {
		planned := l.g.Plan(l.c, maxMoves, slack)
		*m = advMemo{
			valid:    true,
			gen:      l.gen,
			epoch:    epoch,
			maxMoves: maxMoves,
			slack:    slack,
			moves:    planned,
			before:   l.g.RemoteBytes(),
			after:    l.g.RemoteBytesAfter(planned),
		}
	}
	return append([]partition.Move(nil), m.moves...), m.before, m.after, nil
}

// Advise plans up to maxMoves migrations off the live graph and returns
// the validated rebalance plan plus the predicted before/after remote
// traffic, exactly like the package-level Advise — minus the per-call
// graph rebuild. Execute the returned plan with cluster.ExecuteRebalance
// or Discard it; Advise itself moves nothing.
func (l *Live) Advise(maxMoves int, slack float64) (*Advice, error) {
	moves, before, after, err := l.plan(maxMoves, slack)
	if err != nil {
		return nil, err
	}
	// PlanMigrate re-validates every move against the authoritative
	// catalog (and must run outside l.mu: it takes the admin lock the
	// feed publishers hold while calling back into us). A placement
	// change that slipped in since planning surfaces here as a
	// validation or staleness error.
	plan, err := l.c.PlanMigrate(moves)
	if err != nil {
		return nil, err
	}
	return &Advice{
		Plan:              plan,
		Moves:             moves,
		RemoteBytesBefore: before,
		RemoteBytesAfter:  after,
	}, nil
}
