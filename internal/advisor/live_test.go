package advisor

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
)

// liveFixtureSchema builds one of the two congruent 3-D arrays the
// randomized tests ingest into (time × x × y, 10×10 spatial chunk grid
// per slab).
func liveFixtureSchema(name string) *array.Schema {
	return array.MustSchema(name,
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 1},
			{Name: "x", Start: 0, End: 39, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 39, ChunkInterval: 4},
		})
}

// liveFixture is the randomized-test harness: a consistent-hash cluster
// over two congruent arrays plus a fresh-chunk generator.
type liveFixture struct {
	c       *cluster.Cluster
	schemas []*array.Schema
	names   []string
	rng     *rand.Rand
	used    map[array.ChunkKey]bool
	// trange bounds the random time coordinate: small for the randomized
	// tests (dense adjacency), large for benchmarks (fresh slots for any
	// b.N).
	trange int64
}

func newLiveFixture(t *testing.T, nodes int, seed int64) *liveFixture {
	return newLiveFixtureTB(t, nodes, seed)
}

func newLiveFixtureTB(t testing.TB, nodes int, seed int64) *liveFixture {
	t.Helper()
	sa := liveFixtureSchema("LiveA")
	sb := liveFixtureSchema("LiveB")
	c, err := cluster.New(cluster.Config{
		InitialNodes: nodes,
		NodeCapacity: 1 << 30,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 32), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*array.Schema{sa, sb} {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	return &liveFixture{
		c:       c,
		schemas: []*array.Schema{sa, sb},
		names:   []string{"LiveA", "LiveB"},
		rng:     rand.New(rand.NewSource(seed)),
		used:    make(map[array.ChunkKey]bool),
		trange:  3,
	}
}

// freshChunks builds n chunks at previously unused grid slots, spread over
// a small coordinate range so spatial and join edges are plentiful.
func (f *liveFixture) freshChunks(n int) []*array.Chunk {
	out := make([]*array.Chunk, 0, n)
	for len(out) < n {
		s := f.schemas[f.rng.Intn(len(f.schemas))]
		cc := array.ChunkCoord{f.rng.Int63n(f.trange), f.rng.Int63n(6), f.rng.Int63n(6)}
		key := array.MakeChunkKey(s.ID(), cc.Packed())
		if f.used[key] {
			continue
		}
		f.used[key] = true
		cells := 4 + f.rng.Intn(12)
		ch := array.NewChunkCap(s, cc, cells)
		origin := s.ChunkOrigin(cc)
		for k := 0; k < cells; k++ {
			cell := array.Coord{origin[0], origin[1] + int64(k%4), origin[2] + int64((k/4)%4)}
			ch.AppendCell(cell, []array.CellValue{{Float: f.rng.Float64()}})
		}
		out = append(out, ch)
	}
	return out
}

// storedMoves picks up to n random distinct stored chunks and assigns each
// a random other node — always a valid PlanMigrate input.
func (f *liveFixture) storedMoves(n int) []partition.Move {
	nodes := f.c.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	var infos []partition.Move
	for _, id := range nodes {
		node, _ := f.c.Node(id)
		for _, info := range node.ChunkInfos() {
			infos = append(infos, partition.Move{Ref: info.Ref, From: id, Size: info.Size})
		}
	}
	f.rng.Shuffle(len(infos), func(i, j int) { infos[i], infos[j] = infos[j], infos[i] })
	if len(infos) > n {
		infos = infos[:n]
	}
	for i := range infos {
		to := nodes[f.rng.Intn(len(nodes))]
		for to == infos[i].From {
			to = nodes[f.rng.Intn(len(nodes))]
		}
		infos[i].To = to
	}
	return infos
}

// sortedEdges returns the edge set in a canonical order for comparison.
func sortedEdges(g *Graph) []Edge {
	out := append([]Edge(nil), g.Edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A.Less(out[j].A)
		}
		if out[i].B != out[j].B {
			return out[i].B.Less(out[j].B)
		}
		return out[i].Weight < out[j].Weight
	})
	return out
}

// requireGraphsEqual pins the live graph byte-identical to a fresh
// rebuild: same edge set, same sizes, same owners, same adjacency domain,
// same remote-traffic sum.
func requireGraphsEqual(t *testing.T, live, rebuilt *Graph, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(live.size, rebuilt.size) {
		t.Fatalf("%s: size maps diverge: live %d entries, rebuilt %d", ctx, len(live.size), len(rebuilt.size))
	}
	if !reflect.DeepEqual(live.owner, rebuilt.owner) {
		for k, v := range rebuilt.owner {
			if live.owner[k] != v {
				t.Fatalf("%s: owner of %s: live %d, rebuilt %d", ctx, k, live.owner[k], v)
			}
		}
		t.Fatalf("%s: owner maps diverge (%d vs %d entries)", ctx, len(live.owner), len(rebuilt.owner))
	}
	le, re := sortedEdges(live), sortedEdges(rebuilt)
	if !reflect.DeepEqual(le, re) {
		t.Fatalf("%s: edge sets diverge: live %d edges, rebuilt %d", ctx, len(le), len(re))
	}
	if len(live.adj) != len(rebuilt.adj) {
		t.Fatalf("%s: adjacency domains diverge: live %d chunks, rebuilt %d (stale empty entries?)",
			ctx, len(live.adj), len(rebuilt.adj))
	}
	if lb, rb := live.RemoteBytes(), rebuilt.RemoteBytes(); lb != rb {
		t.Fatalf("%s: RemoteBytes diverge: live %d, rebuilt %d", ctx, lb, rb)
	}
}

// checkLiveMatchesRebuild compares the live graph against a from-scratch
// BuildGraph and pins the generation to the cluster's.
func checkLiveMatchesRebuild(t *testing.T, f *liveFixture, live *Live, ctx string) {
	t.Helper()
	rebuilt, err := BuildGraph(f.c, f.names)
	if err != nil {
		t.Fatal(err)
	}
	live.mu.Lock()
	g, gen, valid := live.g, live.gen, live.valid
	live.mu.Unlock()
	if !valid {
		t.Fatalf("%s: live graph invalidated (unexpected divergence)", ctx)
	}
	if cg := f.c.PlacementGen(); gen != cg {
		t.Fatalf("%s: live graph at generation %d, cluster at %d", ctx, gen, cg)
	}
	requireGraphsEqual(t, g, rebuilt, ctx)
}

// TestLiveGraphMatchesRebuildRandomized is the equivalence property test:
// after arbitrary interleavings of PlanInsert/ExecutePlan,
// PlanMigrate/ExecuteRebalance, PlanScaleOut, discards and
// staleness-induced releases, the incrementally patched graph equals a
// fresh BuildGraph — edges, owners, sizes and RemoteBytes — without ever
// falling back to a rebuild after warm-up.
func TestLiveGraphMatchesRebuildRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			f := newLiveFixture(t, 3, seed)
			live, err := NewLive(f.c, f.names)
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Refresh(); err != nil {
				t.Fatal(err)
			}
			// Seed content so migrations have something to shuffle.
			if _, err := f.c.Insert(f.freshChunks(14)); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 40; step++ {
				op := f.rng.Intn(8)
				ctx := fmt.Sprintf("step %d op %d", step, op)
				switch op {
				case 0, 1: // committed ingest
					plan, err := f.c.PlanInsert(f.freshChunks(1 + f.rng.Intn(6)))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.c.ExecutePlan(plan); err != nil {
						t.Fatal(err)
					}
				case 2: // discarded ingest
					plan, err := f.c.PlanInsert(f.freshChunks(1 + f.rng.Intn(4)))
					if err != nil {
						t.Fatal(err)
					}
					plan.Discard()
				case 3: // committed migration
					moves := f.storedMoves(1 + f.rng.Intn(6))
					plan, err := f.c.PlanMigrate(moves)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.c.ExecuteRebalance(plan); err != nil {
						t.Fatal(err)
					}
				case 4: // discarded migration
					plan, err := f.c.PlanMigrate(f.storedMoves(3))
					if err != nil {
						t.Fatal(err)
					}
					plan.Discard()
				case 5: // scale-out, executed or discarded
					if f.c.NumNodes() >= 7 {
						continue
					}
					plan, err := f.c.PlanScaleOut(1)
					if err != nil {
						t.Fatal(err)
					}
					if f.rng.Intn(2) == 0 {
						if _, err := f.c.ExecuteRebalance(plan); err != nil {
							t.Fatal(err)
						}
					} else {
						plan.Discard()
					}
				case 6: // ingest plan staled by a committed migration
					ingest, err := f.c.PlanInsert(f.freshChunks(2))
					if err != nil {
						t.Fatal(err)
					}
					moves := f.storedMoves(2)
					mplan, err := f.c.PlanMigrate(moves)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.c.ExecuteRebalance(mplan); err != nil {
						t.Fatal(err)
					}
					if len(moves) > 0 {
						if _, err := f.c.ExecutePlan(ingest); err == nil || !strings.Contains(err.Error(), "stale") {
							t.Fatalf("%s: staled ingest plan should be rejected, got %v", ctx, err)
						}
					} else if _, err := f.c.ExecutePlan(ingest); err != nil {
						t.Fatal(err)
					}
				case 7: // rebalance plan staled by another rebalance
					m1, err := f.c.PlanMigrate(f.storedMoves(2))
					if err != nil {
						t.Fatal(err)
					}
					m2moves := f.storedMoves(2)
					m2, err := f.c.PlanMigrate(m2moves)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.c.ExecuteRebalance(m2); err != nil {
						t.Fatal(err)
					}
					if len(m2moves) > 0 {
						if _, err := f.c.ExecuteRebalance(m1); err == nil || !strings.Contains(err.Error(), "stale") {
							t.Fatalf("%s: staled rebalance plan should be rejected, got %v", ctx, err)
						}
					} else {
						m1.Discard()
					}
				}
				checkLiveMatchesRebuild(t, f, live, ctx)
			}
			if err := f.c.Validate(); err != nil {
				t.Fatal(err)
			}
			if n := live.Rebuilds(); n != 1 {
				t.Fatalf("live graph fell back to rebuild %d times; the warm-up build should be the only one", n)
			}
			// The continuous advisor's recommendation equals the
			// rebuild-per-call advisor's, prediction for prediction.
			cold, err := Advise(f.c, f.names, 1000, 1.3)
			if err != nil {
				t.Fatal(err)
			}
			cold.Plan.Discard()
			warm, err := live.Advise(1000, 1.3)
			if err != nil {
				t.Fatal(err)
			}
			warm.Plan.Discard()
			if !reflect.DeepEqual(cold.Moves, warm.Moves) {
				t.Fatalf("advice diverges: cold %d moves, live %d", len(cold.Moves), len(warm.Moves))
			}
			if cold.RemoteBytesBefore != warm.RemoteBytesBefore || cold.RemoteBytesAfter != warm.RemoteBytesAfter {
				t.Fatalf("predictions diverge: cold %d→%d, live %d→%d",
					cold.RemoteBytesBefore, cold.RemoteBytesAfter, warm.RemoteBytesBefore, warm.RemoteBytesAfter)
			}
			if err := f.c.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLiveRemoveChunkExcision covers the PlacementRemove path directly
// (the insert-only cluster never emits it yet): removing a chunk excises
// exactly its incident edges and the graph matches a rebuild of the
// remaining placement.
func TestLiveRemoveChunkExcision(t *testing.T) {
	f := newLiveFixture(t, 3, 42)
	if _, err := f.c.Insert(f.freshChunks(20)); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(f.c, f.names)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]array.ChunkKey, 0, len(g.size))
	for k := range g.size {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	rng := rand.New(rand.NewSource(7))
	for len(keys) > 0 {
		i := rng.Intn(len(keys))
		victim := keys[i]
		keys = append(keys[:i], keys[i+1:]...)
		g.removeChunk(victim)
		// Reference: rebuild from the surviving chunk set by replaying
		// addChunk (schema lookup via the fixture's registry).
		ref := newGraph()
		for _, k := range keys {
			s, _ := f.c.Schema(k.ArrayName())
			ref.addChunk(s, k, g.size[k], g.owner[k])
		}
		requireGraphsEqual(t, g, ref, fmt.Sprintf("after removing %s", victim))
	}
	if len(g.Edges) != 0 || len(g.adj) != 0 || len(g.byCoord) != 0 {
		t.Fatalf("fully excised graph retains state: %d edges, %d adj, %d coords",
			len(g.Edges), len(g.adj), len(g.byCoord))
	}
}

// TestLiveAdviseRaceAgainstSuitesAndRebalance runs the continuous advisor
// concurrently with the MODIS benchmark suite and a series of committed
// migrations. The migrations bounce a ballast array that the advisor
// covers but the suite does not query (chunks mid-flight are unreadable,
// so moved and queried sets must be disjoint — the TestSuiteRace
// precedent): the feed patches the live graph mid-advice while the suite
// must keep reproducing its quiescent baseline byte-for-byte. Under
// -race this is the advisor's memory-safety proof; afterwards the
// converged live graph is pinned against a fresh rebuild.
func TestLiveAdviseRaceAgainstSuitesAndRebalance(t *testing.T) {
	c := buildScattered(t)
	const lastCycle = 2
	// Ballast: a third congruent array the rebalance rounds bounce between
	// nodes. It joins the advised set — its moves patch the live graph —
	// while the suite queries only Band1/Band2.
	ballast := array.MustSchema("AdvBallast",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 1},
			{Name: "x", Start: 0, End: 63, ChunkInterval: 8},
			{Name: "y", Start: 0, End: 63, ChunkInterval: 8},
		})
	if err := c.DefineArray(ballast); err != nil {
		t.Fatal(err)
	}
	var chunks []*array.Chunk
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 4; y++ {
			ch := array.NewChunk(ballast, array.ChunkCoord{x % 3, x, y})
			for i := int64(0); i < 16; i++ {
				ch.AppendCell(array.Coord{x % 3, x * 8, y*8 + i%8}, []array.CellValue{{Float: float64(i)}})
			}
			chunks = append(chunks, ch)
		}
	}
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	advised := []string{"Band1", "Band2", "AdvBallast"}
	live, err := NewLive(c, advised)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	baseline, err := query.MODISSuite(c, lastCycle)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-plan the ballast shuttle rounds serially (gathering placement
	// must not race the executions).
	rng := rand.New(rand.NewSource(11))
	nodes := c.Nodes()
	owners := make(map[array.ChunkKey]partition.NodeID, len(chunks))
	for _, ch := range chunks {
		from, ok := c.Owner(ch.Key())
		if !ok {
			t.Fatal("ballast chunk lost")
		}
		owners[ch.Key()] = from
	}
	var rounds [][]partition.Move
	for r := 0; r < 4; r++ {
		var moves []partition.Move
		for _, ch := range chunks {
			if rng.Intn(3) == 0 {
				continue
			}
			key := ch.Key()
			from := owners[key]
			to := nodes[rng.Intn(len(nodes))]
			for to == from {
				to = nodes[rng.Intn(len(nodes))]
			}
			moves = append(moves, partition.Move{Ref: ch.Ref(), From: from, To: to, Size: ch.SizeBytes()})
			owners[key] = to
		}
		rounds = append(rounds, moves)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // the workload: the suite must reproduce its baseline
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := query.MODISSuite(c, lastCycle)
				if err != nil {
					t.Errorf("suite: %v", err)
					return
				}
				if !reflect.DeepEqual(got, baseline) {
					t.Error("suite result diverged under concurrent advise/rebalance")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // the rebalancer: commit each pre-planned shuttle
		defer wg.Done()
		for _, moves := range rounds {
			plan, err := c.PlanMigrate(moves)
			if err != nil {
				t.Errorf("plan migrate: %v", err)
				return
			}
			if _, err := c.ExecuteRebalance(plan); err != nil {
				t.Errorf("execute rebalance: %v", err)
				return
			}
		}
	}()
	for k := 0; k < 2; k++ { // the advisers: continuous what-ifs
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				adv, err := live.Advise(1<<20, 1.4)
				if err != nil {
					// A migration committing between planning and
					// validation surfaces as a catalog mismatch — the
					// documented retry case, not a failure.
					continue
				}
				adv.Plan.Discard()
			}
		}()
	}
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Converged: the live graph equals a fresh rebuild, without having
	// paid more than the warm-up build.
	if n := live.Rebuilds(); n != 1 {
		t.Fatalf("live graph rebuilt %d times under concurrency; want the warm-up build only", n)
	}
	rebuilt, err := BuildGraph(c, advised)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	live.mu.Lock()
	g := live.g
	live.mu.Unlock()
	requireGraphsEqual(t, g, rebuilt, "after concurrent advise/suites/rebalance")
}
