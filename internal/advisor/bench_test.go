package advisor

import (
	"testing"
)

var benchArrays = []string{"Band1", "Band2"}

// BenchmarkBuildGraph measures the cold-start graph build — the path the
// adjacency-probe dedup and the reusable neighbour scratch optimise.
func BenchmarkBuildGraph(b *testing.B) {
	c := buildScattered(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(c, benchArrays); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdviseRebuild is the rebuild-per-call advisor: BuildGraph +
// Plan + PlanMigrate + both traffic predictions, every call.
func BenchmarkAdviseRebuild(b *testing.B) {
	c := buildScattered(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := Advise(c, benchArrays, 1<<20, 1.4)
		if err != nil {
			b.Fatal(err)
		}
		adv.Plan.Discard()
	}
}

// BenchmarkLiveAdviseSteadyState is the continuous advisor with no
// placement change between calls: generation check, memoised
// recommendation, fresh validated plan.
func BenchmarkLiveAdviseSteadyState(b *testing.B) {
	c := buildScattered(b)
	live, err := NewLive(c, benchArrays)
	if err != nil {
		b.Fatal(err)
	}
	if err := live.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := live.Advise(1<<20, 1.4)
		if err != nil {
			b.Fatal(err)
		}
		adv.Plan.Discard()
	}
	b.StopTimer()
	if live.Rebuilds() != 1 {
		b.Fatalf("steady-state advise rebuilt %d times", live.Rebuilds())
	}
}

// BenchmarkLiveIngestPatch measures the O(delta) graph maintenance itself:
// each iteration feeds one committed 8-chunk batch through the placement
// feed into a warm live graph (cluster setup excluded via timer control).
func BenchmarkLiveIngestPatch(b *testing.B) {
	f := newBenchFixture(b)
	live, err := NewLive(f.c, f.names)
	if err != nil {
		b.Fatal(err)
	}
	if err := live.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		chunks := f.freshChunks(8)
		plan, err := f.c.PlanInsert(chunks)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// ExecutePlan's commit delivers the batch synchronously into the
		// live graph; the measured cost includes the store writes plus the
		// O(batch) graph patch.
		if _, err := f.c.ExecutePlan(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if live.Rebuilds() != 1 {
		b.Fatalf("ingest patching rebuilt %d times", live.Rebuilds())
	}
}

// newBenchFixture adapts the randomized-test fixture for benchmarks (a
// bigger coordinate range so b.N batches of fresh chunks exist).
func newBenchFixture(b *testing.B) *liveFixture {
	b.Helper()
	f := newLiveFixtureTB(b, 4, 1234)
	f.trange = 1 << 30 // effectively unbounded fresh slots for any b.N
	if _, err := f.c.Insert(f.freshChunks(60)); err != nil {
		b.Fatal(err)
	}
	return f
}
