package advisor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// buildScattered ingests a small MODIS workload under consistent hashing —
// a placement with good balance and poor locality, the advisor's target.
func buildScattered(t *testing.T) *cluster.Cluster {
	t.Helper()
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 3, BaseCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes: 6,
		NodeCapacity: total,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 64), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, err := gen.Batch(cycle)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestBuildGraphStructure(t *testing.T) {
	c := buildScattered(t)
	g, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) == 0 {
		t.Fatal("graph should have edges")
	}
	for _, e := range g.Edges {
		if e.Weight <= 0 {
			t.Fatalf("edge %v-%v has non-positive weight", e.A, e.B)
		}
		if e.A == e.B {
			t.Fatalf("self edge on %v", e.A)
		}
		if e.B.Less(e.A) {
			t.Fatalf("edge %v-%v not in canonical order", e.A, e.B)
		}
	}
	// Structural-join edges must link the two bands at equal positions.
	joinEdges := 0
	for _, e := range g.Edges {
		if e.A.Array() != e.B.Array() {
			joinEdges++
			if e.A.Coord() != e.B.Coord() {
				t.Fatalf("cross-array edge at different positions: %v vs %v", e.A, e.B)
			}
		}
	}
	if joinEdges == 0 {
		t.Error("expected structural join edges between the bands")
	}
	if _, err := BuildGraph(c, []string{"Nope"}); err == nil {
		t.Error("unknown array should fail")
	}
}

func TestAdviseReducesRemoteCoAccess(t *testing.T) {
	c := buildScattered(t)
	rsdBefore := c.RSD()
	moves, d, before, after, err := Advise(c, []string{"Band1", "Band2"}, 1000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("advisor should find beneficial moves on a scattered placement")
	}
	if d <= 0 {
		t.Error("migration must take simulated time")
	}
	if after >= before {
		t.Errorf("remote co-access should fall: before %d, after %d", before, after)
	}
	// The improvement should be substantial, not cosmetic.
	if float64(after) > 0.5*float64(before) {
		t.Errorf("advisor recovered only %.0f%% of locality", 100*(1-float64(after)/float64(before)))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The balance guard keeps storage RSD bounded.
	if c.RSD() > rsdBefore+0.5 {
		t.Errorf("advisor destroyed balance: RSD %.2f -> %.2f", rsdBefore, c.RSD())
	}
}

func TestAdviseImprovesSpatialQueries(t *testing.T) {
	c := buildScattered(t)
	windowBefore, err := query.WindowAggregate(c, "Band1", "radiance", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	joinBefore, err := query.JoinBands(c, "Band1", "Band2", "radiance", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := Advise(c, []string{"Band1", "Band2"}, 1000, 1.5); err != nil {
		t.Fatal(err)
	}
	windowAfter, err := query.WindowAggregate(c, "Band1", "radiance", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	joinAfter, err := query.JoinBands(c, "Band1", "Band2", "radiance", 2)
	if err != nil {
		t.Fatal(err)
	}
	if windowAfter.BytesShuffled >= windowBefore.BytesShuffled {
		t.Errorf("window halo shuffle should fall: %d -> %d", windowBefore.BytesShuffled, windowAfter.BytesShuffled)
	}
	if joinAfter.BytesShuffled > joinBefore.BytesShuffled {
		t.Errorf("join shuffle should not rise: %d -> %d", joinBefore.BytesShuffled, joinAfter.BytesShuffled)
	}
	// Query answers are placement-independent.
	if windowAfter.Cells != windowBefore.Cells || joinAfter.Cells != joinBefore.Cells {
		t.Error("advisor must not change query results")
	}
	if windowAfter.Value != windowBefore.Value {
		t.Error("window aggregate value changed after migration")
	}
}

func TestPlanRespectsBalanceGuard(t *testing.T) {
	c := buildScattered(t)
	g, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	// A tight slack forbids any load above 1.01× the mean: with many
	// moves requested, the final placement must still respect it.
	moves := g.Plan(c, 100000, 1.01)
	load := map[partition.NodeID]int64{}
	for _, id := range c.Nodes() {
		load[id] = c.NodeLoad(id)
	}
	var loads []float64
	for _, m := range moves {
		load[m.From] -= m.Size
		load[m.To] += m.Size
	}
	var mean float64
	for _, id := range c.Nodes() {
		loads = append(loads, float64(load[id]))
		mean += float64(load[id])
	}
	mean /= float64(len(loads))
	for _, l := range loads {
		// Destinations were checked before each move; allow the size of
		// one chunk of headroom above the limit.
		if l > 1.01*mean*1.2 {
			t.Errorf("load %v far above guarded limit (mean %v)", l, mean)
		}
	}
	_ = stats.RSD(loads)
}

func TestPlanNoMovesWhenAlreadyLocal(t *testing.T) {
	// A single-node cluster has no remote co-access; the advisor must
	// propose nothing.
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 2, BaseCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes: 1,
		NodeCapacity: total + 1,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 16), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, _ := gen.Batch(cycle)
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	moves, _, before, _, err := Advise(c, []string{"Band1", "Band2"}, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Errorf("single node should have zero remote co-access, got %d", before)
	}
	if len(moves) != 0 {
		t.Errorf("no moves expected, got %d", len(moves))
	}
}
