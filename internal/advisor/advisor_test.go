package advisor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// buildScattered ingests a small MODIS workload under consistent hashing —
// a placement with good balance and poor locality, the advisor's target.
func buildScattered(t testing.TB) *cluster.Cluster {
	t.Helper()
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 3, BaseCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes: 6,
		NodeCapacity: total,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 64), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, err := gen.Batch(cycle)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestBuildGraphStructure(t *testing.T) {
	c := buildScattered(t)
	g, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) == 0 {
		t.Fatal("graph should have edges")
	}
	for _, e := range g.Edges {
		if e.Weight <= 0 {
			t.Fatalf("edge %v-%v has non-positive weight", e.A, e.B)
		}
		if e.A == e.B {
			t.Fatalf("self edge on %v", e.A)
		}
		if e.B.Less(e.A) {
			t.Fatalf("edge %v-%v not in canonical order", e.A, e.B)
		}
	}
	// Structural-join edges must link the two bands at equal positions.
	joinEdges := 0
	for _, e := range g.Edges {
		if e.A.Array() != e.B.Array() {
			joinEdges++
			if e.A.Coord() != e.B.Coord() {
				t.Fatalf("cross-array edge at different positions: %v vs %v", e.A, e.B)
			}
		}
	}
	if joinEdges == 0 {
		t.Error("expected structural join edges between the bands")
	}
	if _, err := BuildGraph(c, []string{"Nope"}); err == nil {
		t.Error("unknown array should fail")
	}
}

func TestAdviseReducesRemoteCoAccess(t *testing.T) {
	c := buildScattered(t)
	rsdBefore := c.RSD()
	adv, err := Advise(c, []string{"Band1", "Band2"}, 1000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Moves) == 0 {
		t.Fatal("advisor should find beneficial moves on a scattered placement")
	}
	// Nothing has moved yet: Advise is a pure what-if probe.
	if got, _ := c.Owner(adv.Moves[0].Ref.Packed()); got != adv.Moves[0].From {
		t.Fatal("Advise must not apply its moves")
	}
	if adv.RemoteBytesAfter >= adv.RemoteBytesBefore {
		t.Errorf("remote co-access should fall: before %d, after %d", adv.RemoteBytesBefore, adv.RemoteBytesAfter)
	}
	// The improvement should be substantial, not cosmetic.
	if float64(adv.RemoteBytesAfter) > 0.5*float64(adv.RemoteBytesBefore) {
		t.Errorf("advisor recovered only %.0f%% of locality",
			100*(1-float64(adv.RemoteBytesAfter)/float64(adv.RemoteBytesBefore)))
	}
	d, err := c.ExecuteRebalance(adv.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("migration must take simulated time")
	}
	// The prediction is exact: the rebuilt graph pays exactly the traffic
	// the advice promised.
	after, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.RemoteBytes(); got != adv.RemoteBytesAfter {
		t.Errorf("predicted remote bytes %d, measured %d", adv.RemoteBytesAfter, got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The balance guard keeps storage RSD bounded.
	if c.RSD() > rsdBefore+0.5 {
		t.Errorf("advisor destroyed balance: RSD %.2f -> %.2f", rsdBefore, c.RSD())
	}
}

func TestAdviseDiscardIsSideEffectFree(t *testing.T) {
	c := buildScattered(t)
	adv, err := Advise(c, []string{"Band1", "Band2"}, 1000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	adv.Plan.Discard()
	if err := c.Validate(); err != nil {
		t.Fatalf("discarded advice left state behind: %v", err)
	}
	g, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.RemoteBytes(); got != adv.RemoteBytesBefore {
		t.Errorf("placement changed by a discarded advice: %d -> %d", adv.RemoteBytesBefore, got)
	}
}

func TestAdviseImprovesSpatialQueries(t *testing.T) {
	c := buildScattered(t)
	windowBefore, err := query.WindowAggregate(c, "Band1", "radiance", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	joinBefore, err := query.JoinBands(c, "Band1", "Band2", "radiance", 2)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(c, []string{"Band1", "Band2"}, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(adv.Plan); err != nil {
		t.Fatal(err)
	}
	windowAfter, err := query.WindowAggregate(c, "Band1", "radiance", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	joinAfter, err := query.JoinBands(c, "Band1", "Band2", "radiance", 2)
	if err != nil {
		t.Fatal(err)
	}
	if windowAfter.BytesShuffled >= windowBefore.BytesShuffled {
		t.Errorf("window halo shuffle should fall: %d -> %d", windowBefore.BytesShuffled, windowAfter.BytesShuffled)
	}
	if joinAfter.BytesShuffled > joinBefore.BytesShuffled {
		t.Errorf("join shuffle should not rise: %d -> %d", joinBefore.BytesShuffled, joinAfter.BytesShuffled)
	}
	// Query answers are placement-independent.
	if windowAfter.Cells != windowBefore.Cells || joinAfter.Cells != joinBefore.Cells {
		t.Error("advisor must not change query results")
	}
	if windowAfter.Value != windowBefore.Value {
		t.Error("window aggregate value changed after migration")
	}
}

func TestPlanRespectsBalanceGuard(t *testing.T) {
	c := buildScattered(t)
	g, err := BuildGraph(c, []string{"Band1", "Band2"})
	if err != nil {
		t.Fatal(err)
	}
	// A tight slack forbids any load above 1.01× the mean: with many
	// moves requested, the final placement must still respect it.
	moves := g.Plan(c, 100000, 1.01)
	load := map[partition.NodeID]int64{}
	for _, id := range c.Nodes() {
		load[id] = c.NodeLoad(id)
	}
	var loads []float64
	for _, m := range moves {
		load[m.From] -= m.Size
		load[m.To] += m.Size
	}
	var mean float64
	for _, id := range c.Nodes() {
		loads = append(loads, float64(load[id]))
		mean += float64(load[id])
	}
	mean /= float64(len(loads))
	for _, l := range loads {
		// Destinations were checked before each move; allow the size of
		// one chunk of headroom above the limit.
		if l > 1.01*mean*1.2 {
			t.Errorf("load %v far above guarded limit (mean %v)", l, mean)
		}
	}
	_ = stats.RSD(loads)
}

func TestPlanNoMovesWhenAlreadyLocal(t *testing.T) {
	// A single-node cluster has no remote co-access; the advisor must
	// propose nothing.
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 2, BaseCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		InitialNodes: 1,
		NodeCapacity: total + 1,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 16), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, _ := gen.Batch(cycle)
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	adv, err := Advise(c, []string{"Band1", "Band2"}, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	defer adv.Plan.Discard()
	if adv.RemoteBytesBefore != 0 {
		t.Errorf("single node should have zero remote co-access, got %d", adv.RemoteBytesBefore)
	}
	if len(adv.Moves) != 0 {
		t.Errorf("no moves expected, got %d", len(adv.Moves))
	}
}
