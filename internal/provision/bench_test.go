package provision

import "testing"

func BenchmarkTuneS(b *testing.B) {
	hist := make([]float64, 64)
	for i := range hist {
		hist[i] = float64(i) * 100
		if i%2 == 0 {
			hist[i] += 13
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TuneS(hist, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateCost(b *testing.B) {
	params := baseParams()
	params.M = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateCost(params, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerPlan(b *testing.B) {
	c, err := NewController(4, 3, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		c.Observe(float64(i) * 45)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Plan(8)
	}
}
