package provision_test

import (
	"fmt"

	"repro/internal/provision"
)

// ExampleController walks the leading staircase through three workload
// cycles of growing demand on 100-unit nodes.
func ExampleController() {
	ctrl, err := provision.NewController(2, 3, 100)
	if err != nil {
		panic(err)
	}
	nodes := 2
	for _, demand := range []float64{120, 180, 230} {
		ctrl.Observe(demand)
		k := ctrl.Plan(nodes)
		nodes += k
		fmt.Printf("demand %v -> +%d nodes (now %d)\n", demand, k, nodes)
	}
	// Output:
	// demand 120 -> +0 nodes (now 2)
	// demand 180 -> +0 nodes (now 2)
	// demand 230 -> +2 nodes (now 4)
}

// ExampleTuneS fits the sampling window to a perfectly linear demand
// curve: every window predicts exactly, so the smallest wins the tie.
func ExampleTuneS() {
	curve := []float64{100, 200, 300, 400, 500, 600, 700}
	s, errs, err := provision.TuneS(curve, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("s=%d errors=%v\n", s, errs)
	// Output:
	// s=1 errors=[0 0 0]
}
