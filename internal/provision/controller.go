// Package provision implements the paper's leading staircase algorithm
// (Section 5): a Proportional-Derivative control loop that decides when an
// elastic array database should scale out and by how many nodes, plus the
// two workload-specific tuners — the what-if analysis that fits the sample
// count s (Algorithm 1) and the analytical cost model that fits the
// planning horizon p (Equations 5–9).
//
// Storage units are abstract: the cluster feeds bytes, the paper speaks in
// GB; the mathematics is unit-agnostic as long as load and capacity agree.
package provision

import (
	"fmt"
	"math"
)

// Controller is the PD control loop of the leading staircase. At each
// workload cycle the database observes its storage demand (including the
// incoming insert) and asks the controller how many nodes to add.
//
// The proportional term compensates for demand already beyond capacity
// (Eq 2); the derivative term forecasts demand growth over the next P
// cycles from the last S observations (Eq 3); their sum converts to whole
// nodes by dividing by the per-node capacity and taking the ceiling (Eq 4).
type Controller struct {
	// S is the number of trailing samples the derivative is computed
	// over. Fit it with TuneS.
	S int
	// P is the planning horizon: how many future workload cycles each
	// scale-out provisions for. Fit it with TuneP.
	P int
	// NodeCapacity is c, the storage capacity of one node.
	NodeCapacity float64

	history []float64
}

// NewController validates and returns a controller.
func NewController(s, p int, nodeCapacity float64) (*Controller, error) {
	if s < 1 {
		return nil, fmt.Errorf("provision: sample count s must be >= 1, got %d", s)
	}
	if p < 1 {
		return nil, fmt.Errorf("provision: planning horizon p must be >= 1, got %d", p)
	}
	if nodeCapacity <= 0 {
		return nil, fmt.Errorf("provision: node capacity must be positive, got %v", nodeCapacity)
	}
	return &Controller{S: s, P: p, NodeCapacity: nodeCapacity}, nil
}

// Observe records the storage demand of one workload cycle, measured after
// the cycle's insert. Demand is monotone for the paper's no-overwrite
// workloads but the controller does not require it.
func (c *Controller) Observe(load float64) {
	c.history = append(c.history, load)
}

// History returns the observed demand curve.
func (c *Controller) History() []float64 {
	return append([]float64(nil), c.history...)
}

// Derivative returns Δ, the demand growth rate per cycle estimated over
// the last S observations (Eq 3). With fewer than S+1 observations it
// falls back to the longest available window; with fewer than two it is 0.
func (c *Controller) Derivative() float64 {
	n := len(c.history)
	if n < 2 {
		return 0
	}
	s := c.S
	if s > n-1 {
		s = n - 1
	}
	return (c.history[n-1] - c.history[n-1-s]) / float64(s)
}

// Plan returns k, the number of nodes to add given the current cluster
// size (Eqs 2–4). It must be called after Observe for the cycle. A return
// of 0 means the cluster is within capacity and the provisioner is done.
func (c *Controller) Plan(numNodes int) int {
	return c.PlanHeterogeneous(float64(numNodes)*c.NodeCapacity, c.NodeCapacity)
}

// PlanHeterogeneous is the §5.1 generalization to clusters whose nodes
// have individual capacities: totalCapacity is the provisioned storage
// across all current nodes, and newNodeCapacity the capacity of the nodes
// the next step would add. Plan is the homogeneous special case.
func (c *Controller) PlanHeterogeneous(totalCapacity, newNodeCapacity float64) int {
	if len(c.history) == 0 || newNodeCapacity <= 0 {
		return 0
	}
	li := c.history[len(c.history)-1]
	pi := li - totalCapacity // Eq 2, generalized
	if pi < 0 {
		return 0 // under capacity: nothing to do
	}
	delta := c.Derivative() // Eq 3
	if delta < 0 {
		delta = 0 // demand is monotone; a negative estimate is noise
	}
	k := int(math.Ceil((pi + float64(c.P)*delta) / newNodeCapacity)) // Eq 4
	if k < 1 {
		// At exactly full capacity with flat growth the ceiling can be
		// zero; the intersection of the demand and provisioned curves
		// still triggers a step in the paper's staircase.
		k = 1
	}
	return k
}
