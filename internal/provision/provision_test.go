package provision

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(0, 1, 100); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := NewController(1, 0, 100); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewController(1, 1, 0); err == nil {
		t.Error("capacity=0 should fail")
	}
	if _, err := NewController(4, 3, 100); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestPlanUnderCapacityIsZero(t *testing.T) {
	c, _ := NewController(2, 3, 100)
	c.Observe(50)
	if k := c.Plan(1); k != 0 {
		t.Errorf("Plan under capacity = %d, want 0", k)
	}
	// No observations at all: nothing to plan from.
	c2, _ := NewController(2, 3, 100)
	if k := c2.Plan(1); k != 0 {
		t.Errorf("Plan without history = %d, want 0", k)
	}
}

func TestPlanProportionalOnly(t *testing.T) {
	// One observation: derivative unknown (0), so k covers only the
	// proportional overshoot. 250 demand on 1×100 capacity → pi = 150 →
	// k = ceil(150/100) = 2.
	c, _ := NewController(2, 3, 100)
	c.Observe(250)
	if k := c.Plan(1); k != 2 {
		t.Errorf("Plan = %d, want 2", k)
	}
}

func TestPlanAddsDerivativeForecast(t *testing.T) {
	// Demand grows 50/cycle; with p=3 the forecast term adds 150 on top
	// of the 10 overshoot: k = ceil(160/100) = 2. With p=1 only 50+10:
	// k = 1.
	eager, _ := NewController(1, 3, 100)
	lazy, _ := NewController(1, 1, 100)
	for _, l := range []float64{10, 60, 110} {
		eager.Observe(l)
		lazy.Observe(l)
	}
	if k := eager.Plan(1); k != 2 {
		t.Errorf("eager Plan = %d, want 2", k)
	}
	if k := lazy.Plan(1); k != 1 {
		t.Errorf("lazy Plan = %d, want 1", k)
	}
}

func TestPlanAtExactCapacityStepsByOne(t *testing.T) {
	c, _ := NewController(2, 1, 100)
	c.Observe(100)
	c.Observe(100) // flat growth, exactly full
	if k := c.Plan(1); k != 1 {
		t.Errorf("Plan at exact capacity = %d, want 1", k)
	}
}

func TestDerivativeWindows(t *testing.T) {
	c, _ := NewController(3, 1, 100)
	c.Observe(0)
	if c.Derivative() != 0 {
		t.Error("derivative of one sample must be 0")
	}
	c.Observe(10) // only 1 interval available though S=3
	if got := c.Derivative(); got != 10 {
		t.Errorf("short-history derivative = %v, want 10", got)
	}
	c.Observe(30)
	c.Observe(60)
	// Full window: (60 - 0)/3 = 20.
	if got := c.Derivative(); got != 20 {
		t.Errorf("derivative = %v, want 20", got)
	}
}

func TestPlanNeverNegative(t *testing.T) {
	f := func(raw []uint16, nodes uint8) bool {
		c, _ := NewController(2, 3, 100)
		for _, v := range raw {
			c.Observe(float64(v))
		}
		n := int(nodes%8) + 1
		return c.Plan(n) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanHeterogeneous(t *testing.T) {
	// A cluster of one 100-unit and one 50-unit node (total 150) facing
	// demand 220: overshoot 70, no derivative history beyond one
	// interval of 120. With p=1 and 80-unit additions:
	// k = ceil((70 + 120)/80) = 3.
	c, _ := NewController(1, 1, 100)
	c.Observe(100)
	c.Observe(220)
	if k := c.PlanHeterogeneous(150, 80); k != 3 {
		t.Errorf("PlanHeterogeneous = %d, want 3", k)
	}
	// Under capacity: nothing to do.
	if k := c.PlanHeterogeneous(500, 80); k != 0 {
		t.Errorf("under-capacity plan = %d, want 0", k)
	}
	// Degenerate new-node capacity: refuse to plan.
	if k := c.PlanHeterogeneous(150, 0); k != 0 {
		t.Errorf("zero-capacity plan = %d, want 0", k)
	}
	// The homogeneous Plan is the special case.
	c2, _ := NewController(1, 1, 100)
	c2.Observe(100)
	c2.Observe(220)
	if c2.Plan(2) != c2.PlanHeterogeneous(200, 100) {
		t.Error("Plan must equal PlanHeterogeneous on a homogeneous cluster")
	}
}

func TestTuneSPrefersLongWindowOnSteadyGrowth(t *testing.T) {
	// Linear growth with alternating noise: longer windows average the
	// noise out, so larger s wins — the MODIS pattern in Table 2.
	var hist []float64
	for i := 0; i < 24; i++ {
		noise := 8.0
		if i%2 == 0 {
			noise = -8.0
		}
		hist = append(hist, 50*float64(i)+noise)
	}
	best, errs, err := TuneS(hist, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best < 2 {
		t.Errorf("steady growth should prefer s >= 2, got %d (errors %v)", best, errs)
	}
	if errs[best-1] > errs[0] {
		t.Error("winner must not have higher error than s=1")
	}
}

func TestTuneSPrefersShortWindowOnRegimeShifts(t *testing.T) {
	// Demand whose growth rate keeps changing (the AIS seasonal
	// pattern): only the most recent interval predicts the next one.
	hist := []float64{0, 10, 20, 60, 100, 110, 120, 180, 240, 250, 260, 330, 400, 410}
	cum := make([]float64, len(hist))
	copy(cum, hist)
	best, _, err := TuneS(cum, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best > 2 {
		t.Errorf("shifting growth should prefer small s, got %d", best)
	}
}

func TestTuneSValidation(t *testing.T) {
	if _, _, err := TuneS([]float64{1, 2}, 4); err == nil {
		t.Error("too-short history should fail")
	}
	if _, _, err := TuneS([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Error("psi=0 should fail")
	}
	// psi larger than the history can support: long candidates are
	// penalised but short ones still win.
	best, _, err := TuneS([]float64{0, 10, 20, 30}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("only s=1 is scoreable here, got %d", best)
	}
}

func TestPredictionErrorExactOnLinear(t *testing.T) {
	// Perfectly linear demand: every s predicts exactly; error 0.
	var hist []float64
	for i := 0; i < 10; i++ {
		hist = append(hist, 100*float64(i))
	}
	for s := 1; s <= 4; s++ {
		e, err := PredictionError(hist, s)
		if err != nil {
			t.Fatal(err)
		}
		if e != 0 {
			t.Errorf("s=%d error %v on linear history, want 0", s, e)
		}
	}
	if _, err := PredictionError(hist, 0); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := PredictionError([]float64{1, 2}, 1); err == nil {
		t.Error("insufficient history should fail")
	}
}

func baseParams() CostParams {
	return CostParams{
		DeltaSecPerUnit:  1,
		TSecPerUnit:      2.5,
		NodeCapacity:     100,
		Mu:               45,
		L0:               200,
		W0:               120,
		N0:               2,
		M:                12,
		ReorgFixedSec:    600,
		CycleOverheadSec: 150,
	}
}

func TestEstimateCostValidation(t *testing.T) {
	p := baseParams()
	if _, err := EstimateCost(p, 0); err == nil {
		t.Error("p=0 should fail")
	}
	bad := p
	bad.N0 = 0
	if _, err := EstimateCost(bad, 1); err == nil {
		t.Error("N0=0 should fail")
	}
	bad = p
	bad.DeltaSecPerUnit = 0
	if _, err := EstimateCost(bad, 1); err == nil {
		t.Error("δ=0 should fail")
	}
	bad = p
	bad.M = 0
	if _, err := EstimateCost(bad, 1); err == nil {
		t.Error("M=0 should fail")
	}
}

func TestEstimateCostPositiveAndFinite(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 10} {
		cost, err := EstimateCost(baseParams(), p)
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
			t.Errorf("cost(p=%d) = %v", p, cost)
		}
	}
}

func TestEstimateCostModerateHorizonWins(t *testing.T) {
	// The Table 3 shape: a lazy horizon reorganises every cycle, an
	// over-eager one over-provisions; a moderate p is cheapest.
	params := baseParams()
	best, costs, err := TuneP(params, []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if best != 3 {
		t.Errorf("best horizon = %d, want 3 (costs %v)", best, costs)
	}
	if !(costs[3] < costs[1] && costs[3] < costs[6]) {
		t.Errorf("p=3 should be cheapest: %v", costs)
	}
}

func TestEstimateCostClusterNeverShrinks(t *testing.T) {
	// Even if the forecast undershoots the current size, N must not
	// drop below N0.
	params := baseParams()
	params.N0 = 10
	params.Mu = 1
	params.L0 = 50
	cost, err := EstimateCost(params, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 nodes for M cycles with tiny work: cost must be at least
	// N0 * M * smallest per-cycle charge > 0.
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
}

func TestTunePValidation(t *testing.T) {
	if _, _, err := TuneP(baseParams(), nil); err == nil {
		t.Error("no candidates should fail")
	}
	if _, _, err := TuneP(baseParams(), []int{0}); err == nil {
		t.Error("invalid candidate should fail")
	}
}

func TestNodeHours(t *testing.T) {
	if NodeHours(7200) != 2 {
		t.Errorf("NodeHours(7200) = %v, want 2", NodeHours(7200))
	}
}

func TestStaircaseSimulation(t *testing.T) {
	// Drive the controller over a monotone demand curve and check the
	// staircase property: provisioned capacity is a non-decreasing step
	// function that always ends a cycle at or above demand.
	c, _ := NewController(4, 3, 100)
	nodes := 2
	demand := 0.0
	for cycle := 0; cycle < 15; cycle++ {
		demand += 45
		c.Observe(demand)
		k := c.Plan(nodes)
		if k < 0 {
			t.Fatalf("negative k at cycle %d", cycle)
		}
		nodes += k
		if float64(nodes)*100 < demand {
			t.Fatalf("cycle %d: provisioned %d×100 below demand %v", cycle, nodes, demand)
		}
	}
	if nodes < 7 || nodes > 12 {
		t.Errorf("15 cycles of 45/cycle on 100-unit nodes should land near 8-10 nodes, got %d", nodes)
	}
}
