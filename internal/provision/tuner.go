package provision

import (
	"fmt"
	"math"
)

// TuneS fits the controller's sample count by what-if analysis over the
// observed demand history (Algorithm 1 in the paper): for every candidate
// s = 1..psi it slides a window over the history, predicts each cycle's
// demand change from the previous s samples, and scores the mean absolute
// error against what actually happened. It returns the s with the lowest
// mean error and the per-candidate error table (indexed s-1), which
// Table 2 of the paper reports directly.
func TuneS(history []float64, psi int) (int, []float64, error) {
	if psi < 1 {
		return 0, nil, fmt.Errorf("provision: psi must be >= 1, got %d", psi)
	}
	if len(history) < 3 {
		return 0, nil, fmt.Errorf("provision: need at least 3 observed cycles to tune s, got %d", len(history))
	}
	errs := make([]float64, psi)
	for s := 1; s <= psi; s++ {
		e, err := PredictionError(history, s)
		if err != nil {
			// Candidate needs more history than we have: penalise it
			// out of contention rather than failing the whole tuning.
			errs[s-1] = math.Inf(1)
			continue
		}
		errs[s-1] = e
	}
	best := 0
	for s := 1; s < psi; s++ {
		if errs[s] < errs[best] {
			best = s
		}
	}
	if math.IsInf(errs[best], 1) {
		return 0, nil, fmt.Errorf("provision: history of %d cycles too short for any s in 1..%d", len(history), psi)
	}
	return best + 1, errs, nil
}

// PredictionError returns the mean absolute error of the s-sample
// derivative as a one-step demand-change predictor over the history — the
// inner loop of Algorithm 1, also used standalone to score a tuned s on a
// held-out test window (Table 2's train/test rows).
func PredictionError(history []float64, s int) (float64, error) {
	if s < 1 {
		return 0, fmt.Errorf("provision: s must be >= 1, got %d", s)
	}
	// Predicting the change at cycle i needs l[i-s] and the outcome
	// l[i+1]: i ranges over [s, len-2].
	if len(history) < s+2 {
		return 0, fmt.Errorf("provision: history of %d cycles too short for s=%d", len(history), s)
	}
	var total float64
	n := 0
	for i := s; i+1 < len(history); i++ {
		est := (history[i] - history[i-s]) / float64(s)
		actual := history[i+1] - history[i]
		total += math.Abs(actual - est)
		n++
	}
	return total / float64(n), nil
}

// CostParams carries the analytical model's inputs (Section 5.2): the
// empirically derived unit costs δ and t, the cluster's present state, and
// the insert rate extrapolated from recent cycles.
type CostParams struct {
	// DeltaSecPerUnit is δ: seconds of I/O per storage unit.
	DeltaSecPerUnit float64
	// TSecPerUnit is t: seconds of network transfer per storage unit.
	TSecPerUnit float64
	// NodeCapacity is c.
	NodeCapacity float64
	// Mu is μ, the insert size per workload cycle (derived from the
	// storage increase over the last s cycles).
	Mu float64
	// L0 is the present load (the model starts from the cluster's
	// current state, l_d).
	L0 float64
	// W0 is the last observed query-workload latency in seconds.
	W0 float64
	// N0 is the present node count.
	N0 int
	// M is how many future workload cycles to simulate.
	M int
	// ReorgFixedSec is the fixed coordination cost charged once per
	// expansion event (quiescing writers, revising the partitioning
	// table, fencing the catalog), independent of bytes moved. The
	// paper's Eq 9 omits it, but a strictly bandwidth-only reading of
	// Eqs 6–8 is monotone in p — the query term's node count cancels
	// (N_i × w_i = w0·l_i/l0·N0) — so the published Table 3, where the
	// lazy p=1 loses to p=3, implies such a fixed component inside the
	// authors' empirically derived constants. We make it explicit; it
	// is what penalises reorganising "with high frequency".
	ReorgFixedSec float64
	// CycleOverheadSec is the non-parallelizable fraction of each
	// workload cycle (coordinator work, synchronisation barriers),
	// charged per cycle and multiplied by the node count — the
	// component that makes over-provisioning (large p) wasteful.
	CycleOverheadSec float64
	// FabricWidth caps how many receivers pull migration data
	// concurrently (see cluster.CostModel.FabricWidth); 0 means 1.
	// Larger stair steps parallelize rebalancing across their new
	// nodes up to this width, which is what makes the lazy one-node-
	// at-a-time configuration's reorganizations slow (§5.2).
	FabricWidth int
}

// Validate rejects unusable parameters.
func (p CostParams) Validate() error {
	if p.DeltaSecPerUnit <= 0 || p.TSecPerUnit <= 0 {
		return fmt.Errorf("provision: δ and t must be positive")
	}
	if p.NodeCapacity <= 0 {
		return fmt.Errorf("provision: node capacity must be positive")
	}
	if p.Mu < 0 {
		return fmt.Errorf("provision: insert rate μ must be non-negative")
	}
	if p.L0 < 0 || p.W0 < 0 {
		return fmt.Errorf("provision: load and latency must be non-negative")
	}
	if p.N0 < 1 {
		return fmt.Errorf("provision: need at least one node")
	}
	if p.M < 1 {
		return fmt.Errorf("provision: must simulate at least one cycle")
	}
	if p.ReorgFixedSec < 0 || p.CycleOverheadSec < 0 {
		return fmt.Errorf("provision: fixed overheads must be non-negative")
	}
	return nil
}

// EstimateCost simulates m future workload cycles under planning horizon p
// and returns the projected cost in node-seconds (Eq 9; divide by 3600 for
// the paper's node-hours). Each cycle charges its insert (Eq 6), any
// rebalancing (Eq 7) and the scaled query workload (Eq 8), multiplied by
// the cycle's node count.
func EstimateCost(params CostParams, p int) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if p < 1 {
		return 0, fmt.Errorf("provision: planning horizon p must be >= 1, got %d", p)
	}
	var cost float64
	nPrev := params.N0
	for i := 1; i <= params.M; i++ {
		li := params.L0 + params.Mu*float64(i) // Eq 5
		n := nPrev
		if li > float64(nPrev)*params.NodeCapacity {
			n = int(math.Ceil((params.L0 + params.Mu*float64(i+p)) / params.NodeCapacity))
			if n < nPrev {
				n = nPrev // the cluster never shrinks
			}
		}
		// Insert cost, Eq 6: the coordinator writes 1/n locally at δ
		// and ships the remaining (n-1)/n at t.
		insert := params.Mu/float64(n)*params.DeltaSecPerUnit +
			params.Mu*float64(n-1)/float64(n)*params.TSecPerUnit
		// Rebalance cost, Eq 7: average load per node shipped to each
		// new node at t — receiver-parallel up to the fabric width —
		// plus the fixed per-expansion coordination charge. Zero when
		// no expansion happened.
		var reorg float64
		if n > nPrev {
			k := n - nPrev
			fabric := params.FabricWidth
			if fabric < 1 {
				fabric = 1
			}
			lanes := k
			if lanes > fabric {
				lanes = fabric
			}
			moved := li / float64(n) * float64(k)
			reorg = moved/float64(lanes)*params.TSecPerUnit + params.ReorgFixedSec
		}
		// Query cost, Eq 8: the base latency scaled by data growth and
		// by the parallelism change, plus the non-parallelizable
		// per-cycle overhead.
		var query float64
		if params.L0 > 0 {
			query = params.W0 * (li / params.L0) * (float64(params.N0) / float64(n))
		} else {
			query = params.W0
		}
		query += params.CycleOverheadSec
		cost += float64(n) * (insert + reorg + query) // Eq 9
		nPrev = n
	}
	return cost, nil
}

// TuneP scores each candidate planning horizon with the analytical model
// and returns the cheapest one along with the full cost table in
// node-seconds (Table 3's "Cost Estimate" column).
func TuneP(params CostParams, candidates []int) (int, map[int]float64, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("provision: no candidate horizons")
	}
	costs := make(map[int]float64, len(candidates))
	best := 0
	bestCost := math.Inf(1)
	for _, p := range candidates {
		cost, err := EstimateCost(params, p)
		if err != nil {
			return 0, nil, err
		}
		costs[p] = cost
		if cost < bestCost || (cost == bestCost && p < best) {
			best, bestCost = p, cost
		}
	}
	return best, costs, nil
}

// NodeHours converts node-seconds (the unit EstimateCost and the measured
// ledgers produce) into the paper's node-hours.
func NodeHours(nodeSeconds float64) float64 { return nodeSeconds / 3600 }
