package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/partition"
)

// MODISConfig sizes the synthetic remote-sensing workload. Zero values
// select defaults that scale the paper's 630 GB / 14-day study down to
// megabytes while preserving its distributional shape.
type MODISConfig struct {
	// Cycles is the number of daily insert cycles (paper: 14).
	Cycles int
	// LonStride and LatStride are the chunk intervals in degrees
	// (paper: 12; default here 24 to keep the grid modest).
	LonStride, LatStride int64
	// BaseCells is the mean number of occupied cells per chunk.
	BaseCells int
	// Seed drives all randomness; equal seeds give identical data.
	Seed int64
}

func (c *MODISConfig) defaults() {
	if c.Cycles == 0 {
		c.Cycles = 14
	}
	if c.LonStride == 0 {
		c.LonStride = 24
	}
	if c.LatStride == 0 {
		c.LatStride = 24
	}
	if c.BaseCells == 0 {
		c.BaseCells = 36
	}
	if c.Seed == 0 {
		c.Seed = 20140622 // SIGMOD'14 opening day
	}
}

// minutesPerDay is the time chunk interval: one chunk slab per daily
// insert, exactly the paper's "chunked in one day intervals".
const minutesPerDay = 1440

// MODIS generates the two-band satellite imagery workload of Section 3.1:
// 3-D arrays (time × longitude × latitude), one time slab inserted per
// day, near-uniform spatial distribution with slight hotspots such that the
// top 5% of chunks hold about 10% of the data, and ~1% cell occupancy
// (cells are sparse within the declared chunk volume).
type MODIS struct {
	cfg    MODISConfig
	bands  []*array.Schema
	hotset map[[2]int64]bool // (x,y) chunk columns that are denser
}

// NewMODIS builds the generator.
func NewMODIS(cfg MODISConfig) (*MODIS, error) {
	cfg.defaults()
	if cfg.Cycles < 1 {
		return nil, fmt.Errorf("workload: MODIS needs at least one cycle")
	}
	if cfg.LonStride < 1 || cfg.LatStride < 1 || cfg.BaseCells < 1 {
		return nil, fmt.Errorf("workload: MODIS strides and cell counts must be positive")
	}
	m := &MODIS{cfg: cfg, hotset: make(map[[2]int64]bool)}
	for _, name := range []string{"Band1", "Band2"} {
		s, err := array.NewSchema(name,
			[]array.Attribute{
				{Name: "si_value", Type: array.Int32},
				{Name: "radiance", Type: array.Float64},
				{Name: "reflectance", Type: array.Float64},
				{Name: "uncertainty_idx", Type: array.Int32},
				{Name: "uncertainty_pct", Type: array.Float32},
				{Name: "platform_id", Type: array.Int32},
				{Name: "resolution_id", Type: array.Int32},
			},
			[]array.Dimension{
				{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: minutesPerDay},
				{Name: "longitude", Start: -180, End: 179, ChunkInterval: cfg.LonStride},
				{Name: "latitude", Start: -90, End: 89, ChunkInterval: cfg.LatStride},
			})
		if err != nil {
			return nil, err
		}
		m.bands = append(m.bands, s)
	}
	// Mark ~5% of spatial chunk columns as hotspots (≈2.2× denser),
	// which puts ≈10% of the data in the top 5% of chunks — the paper's
	// "slight skew" statistic for MODIS.
	lonChunks := m.bands[0].Dims[1].NumChunks()
	latChunks := m.bands[0].Dims[2].NumChunks()
	total := lonChunks * latChunks
	nHot := int(math.Max(1, math.Round(float64(total)*0.05)))
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	for len(m.hotset) < nHot {
		m.hotset[[2]int64{rng.Int63n(lonChunks), rng.Int63n(latChunks)}] = true
	}
	return m, nil
}

// Name implements Generator.
func (m *MODIS) Name() string { return "MODIS" }

// Schemas implements Generator.
func (m *MODIS) Schemas() []*array.Schema { return m.bands }

// Replicated implements Generator; MODIS has no replicated array.
func (m *MODIS) Replicated() (*array.Schema, []*array.Chunk) { return nil, nil }

// Cycles implements Generator.
func (m *MODIS) Cycles() int { return m.cfg.Cycles }

// Geometry implements Generator: [time cycles × lon chunks × lat chunks],
// with longitude and latitude as the spatial dimensions range partitioners
// divide (time is the growth axis).
func (m *MODIS) Geometry() partition.Geometry {
	return partition.Geometry{
		Extents: []int64{
			int64(m.cfg.Cycles),
			m.bands[0].Dims[1].NumChunks(),
			m.bands[0].Dims[2].NumChunks(),
		},
		SpatialDims: []int{1, 2},
	}
}

// Batch implements Generator: one day's slab across both bands. Chunk
// contents depend only on (seed, cycle, band, position), so batches are
// reproducible in any call order.
func (m *MODIS) Batch(cycle int) ([]*array.Chunk, error) {
	if err := validateCycle(m, cycle); err != nil {
		return nil, err
	}
	var out []*array.Chunk
	for bi, s := range m.bands {
		lonChunks := s.Dims[1].NumChunks()
		latChunks := s.Dims[2].NumChunks()
		for x := int64(0); x < lonChunks; x++ {
			for y := int64(0); y < latChunks; y++ {
				ch := m.genChunk(s, bi, cycle, x, y)
				if ch.Len() > 0 {
					out = append(out, ch)
				}
			}
		}
	}
	return out, nil
}

func (m *MODIS) genChunk(s *array.Schema, band, cycle int, x, y int64) *array.Chunk {
	cc := array.ChunkCoord{int64(cycle), x, y}
	ch := array.NewChunk(s, cc)
	rng := rand.New(rand.NewSource(mixSeed(m.cfg.Seed, int64(band), int64(cycle), x, y)))
	n := m.cfg.BaseCells + rng.Intn(m.cfg.BaseCells/2+1) - m.cfg.BaseCells/4
	if m.hotset[[2]int64{x, y}] {
		n = int(float64(n) * 2.2)
	}
	lo, hi := s.ChunkBounds(cc)
	seen := make(map[array.CoordKey]bool, n)
	for i := 0; i < n; i++ {
		cell := array.Coord{
			lo[0] + rng.Int63n(hi[0]-lo[0]+1),
			lo[1] + rng.Int63n(hi[1]-lo[1]+1),
			lo[2] + rng.Int63n(hi[2]-lo[2]+1),
		}
		if k := cell.Packed(); seen[k] {
			continue // occupied; sparsity keeps collisions rare
		} else {
			seen[k] = true
		}
		lat := float64(cell[2])
		// Radiance falls off toward the poles; Band2 reads slightly
		// higher (vegetation reflects near-infrared), giving the
		// NDVI-style join something real to compute.
		base := 120*math.Cos(lat*math.Pi/180) + 30
		if band == 1 {
			base *= 1.35
		}
		radiance := base + rng.NormFloat64()*10
		ch.AppendCell(cell, []array.CellValue{
			{Int: int64(rng.Intn(4096))},          // si_value
			{Float: radiance},                     // radiance
			{Float: rng.Float64()},                // reflectance
			{Int: int64(rng.Intn(16))},            // uncertainty_idx
			{Float: rng.Float64() * 5},            // uncertainty_pct
			{Int: int64(1 + rng.Intn(2))},         // platform_id (Terra/Aqua)
			{Int: int64(250 * (1 + rng.Intn(4)))}, // resolution_id
		})
	}
	return ch
}

// mixSeed folds identifying integers into a single RNG seed (splitmix-style
// so nearby chunks do not produce correlated streams).
func mixSeed(parts ...int64) int64 {
	var x uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		x ^= uint64(p) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
	}
	return int64(x & 0x7fffffffffffffff)
}
