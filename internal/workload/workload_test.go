package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/array"
	"repro/internal/stats"
)

func newMODIS(t *testing.T) *MODIS {
	t.Helper()
	m, err := NewMODIS(MODISConfig{Cycles: 6, BaseCells: 24})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newAIS(t *testing.T) *AIS {
	t.Helper()
	a, err := NewAIS(AISConfig{Cycles: 6, CellsPerCycle: 3000})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMODISConfigValidation(t *testing.T) {
	if _, err := NewMODIS(MODISConfig{Cycles: -1}); err == nil {
		t.Error("negative cycles should fail")
	}
	if _, err := NewMODIS(MODISConfig{LonStride: -3}); err == nil {
		t.Error("negative stride should fail")
	}
}

func TestAISConfigValidation(t *testing.T) {
	if _, err := NewAIS(AISConfig{Cycles: -1}); err == nil {
		t.Error("negative cycles should fail")
	}
	if _, err := NewAIS(AISConfig{Vessels: -1}); err == nil {
		t.Error("negative vessel count should fail")
	}
}

func TestBatchChunksAreValid(t *testing.T) {
	for _, g := range []Generator{newMODIS(t), newAIS(t)} {
		for cycle := 0; cycle < g.Cycles(); cycle++ {
			batch, err := g.Batch(cycle)
			if err != nil {
				t.Fatalf("%s cycle %d: %v", g.Name(), cycle, err)
			}
			if len(batch) == 0 {
				t.Fatalf("%s cycle %d produced no chunks", g.Name(), cycle)
			}
			for _, ch := range batch {
				if err := ch.Validate(); err != nil {
					t.Fatalf("%s cycle %d chunk %s: %v", g.Name(), cycle, ch.Ref(), err)
				}
				if ch.Coords[0] != int64(cycle) {
					t.Fatalf("%s cycle %d chunk in wrong time slab %v", g.Name(), cycle, ch.Coords)
				}
			}
		}
	}
}

func TestBatchOutOfRange(t *testing.T) {
	for _, g := range []Generator{newMODIS(t), newAIS(t)} {
		if _, err := g.Batch(-1); err == nil {
			t.Errorf("%s Batch(-1) should fail", g.Name())
		}
		if _, err := g.Batch(g.Cycles()); err == nil {
			t.Errorf("%s Batch(Cycles) should fail", g.Name())
		}
	}
}

func TestBatchesDeterministicAndDisjoint(t *testing.T) {
	for _, mk := range []func() Generator{
		func() Generator { m, _ := NewMODIS(MODISConfig{Cycles: 4}); return m },
		func() Generator { a, _ := NewAIS(AISConfig{Cycles: 4}); return a },
	} {
		g1, g2 := mk(), mk()
		seen := map[string]bool{}
		for cycle := 0; cycle < g1.Cycles(); cycle++ {
			b1, err := g1.Batch(cycle)
			if err != nil {
				t.Fatal(err)
			}
			b2, _ := g2.Batch(cycle)
			if len(b1) != len(b2) {
				t.Fatalf("%s cycle %d: %d vs %d chunks across identical generators", g1.Name(), cycle, len(b1), len(b2))
			}
			for i := range b1 {
				if b1[i].Ref().Key() != b2[i].Ref().Key() {
					t.Fatalf("%s cycle %d chunk %d differs", g1.Name(), cycle, i)
				}
				if b1[i].SizeBytes() != b2[i].SizeBytes() {
					t.Fatalf("%s cycle %d chunk %d size differs", g1.Name(), cycle, i)
				}
				key := b1[i].Ref().Key()
				if seen[key] {
					t.Fatalf("%s chunk %s appears in two batches", g1.Name(), key)
				}
				seen[key] = true
			}
		}
		// Re-requesting an earlier batch reproduces it exactly.
		again, err := g1.Batch(0)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := g2.Batch(0)
		if len(again) != len(first) {
			t.Fatalf("%s replay of batch 0 differs", g1.Name())
		}
	}
}

// chunkSkewShare returns the fraction of bytes held by the top `frac`
// share of chunks within one cycle.
func chunkSkewShare(t *testing.T, g Generator, cycle int, frac float64) float64 {
	t.Helper()
	batch, err := g.Batch(cycle)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]float64, len(batch))
	var total float64
	for i, ch := range batch {
		sizes[i] = float64(ch.SizeBytes())
		total += sizes[i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sizes)))
	k := int(math.Ceil(frac * float64(len(sizes))))
	var top float64
	for i := 0; i < k && i < len(sizes); i++ {
		top += sizes[i]
	}
	return top / total
}

func TestAISSkewMatchesPaper(t *testing.T) {
	// Section 3.2: "Nearly 85% of the data resides in just 5% of the
	// chunks." Allow 0.65–0.95.
	a := newAIS(t)
	share := chunkSkewShare(t, a, 2, 0.05)
	if share < 0.65 || share > 0.95 {
		t.Errorf("AIS top-5%% chunk share = %.2f, want ≈0.85", share)
	}
}

func TestMODISSkewMatchesPaper(t *testing.T) {
	// Section 3.2: "MODIS has only slight skew; the top 5% of chunks
	// constitute only 10% of the data." Allow 5–20%.
	m := newMODIS(t)
	share := chunkSkewShare(t, m, 2, 0.05)
	if share < 0.05 || share > 0.20 {
		t.Errorf("MODIS top-5%% chunk share = %.2f, want ≈0.10", share)
	}
}

func TestMODISMedianFarBelowMeanForAISOnly(t *testing.T) {
	// AIS: median chunk tiny vs mean (924 B vs 100s of MB in the
	// paper); MODIS: median ≈ mean.
	ratio := func(g Generator) float64 {
		batch, err := g.Batch(1)
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]float64, len(batch))
		for i, ch := range batch {
			sizes[i] = float64(ch.SizeBytes())
		}
		med, err := stats.Quantile(sizes, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return med / stats.Mean(sizes)
	}
	if r := ratio(newAIS(t)); r > 0.25 {
		t.Errorf("AIS median/mean = %.2f, want heavily skewed (< 0.25)", r)
	}
	if r := ratio(newMODIS(t)); r < 0.6 {
		t.Errorf("MODIS median/mean = %.2f, want near uniform (> 0.6)", r)
	}
}

func TestAISSeasonalVariation(t *testing.T) {
	a, err := NewAIS(AISConfig{Cycles: 12})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []float64
	for c := 0; c < 12; c++ {
		batch, err := a.Batch(c)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, float64(BatchBytes(batch)))
	}
	if rsd := stats.RSD(sizes); rsd < 0.10 {
		t.Errorf("AIS cycle sizes RSD = %.3f, want seasonal variation > 0.10", rsd)
	}
	// MODIS inserts are steady by comparison.
	m, err := NewMODIS(MODISConfig{Cycles: 12})
	if err != nil {
		t.Fatal(err)
	}
	var msizes []float64
	for c := 0; c < 12; c++ {
		batch, err := m.Batch(c)
		if err != nil {
			t.Fatal(err)
		}
		msizes = append(msizes, float64(BatchBytes(batch)))
	}
	if stats.RSD(msizes) >= stats.RSD(sizes) {
		t.Errorf("MODIS RSD %.3f should be steadier than AIS %.3f", stats.RSD(msizes), stats.RSD(sizes))
	}
}

func TestReplicatedVesselArray(t *testing.T) {
	a := newAIS(t)
	schema, chunks := a.Replicated()
	if schema == nil || len(chunks) != 1 {
		t.Fatal("AIS must provide a single-chunk vessel array")
	}
	if chunks[0].Len() != 1500 {
		t.Errorf("vessel chunk has %d cells, want 1500", chunks[0].Len())
	}
	if err := chunks[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if s, c := newMODIS(t).Replicated(); s != nil || c != nil {
		t.Error("MODIS must not have a replicated array")
	}
}

func TestTotalBytesMonotone(t *testing.T) {
	for _, g := range []Generator{newMODIS(t), newAIS(t)} {
		curve, total, err := TotalBytes(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(curve) != g.Cycles() {
			t.Fatalf("%s curve length %d, want %d", g.Name(), len(curve), g.Cycles())
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] <= curve[i-1] {
				t.Fatalf("%s demand curve not monotone at %d", g.Name(), i)
			}
		}
		if curve[len(curve)-1] != float64(total) {
			t.Errorf("%s curve end %v != total %d", g.Name(), curve[len(curve)-1], total)
		}
	}
}

func TestGeometryCoversBatches(t *testing.T) {
	for _, g := range []Generator{newMODIS(t), newAIS(t)} {
		geom := g.Geometry()
		for cycle := 0; cycle < g.Cycles(); cycle++ {
			batch, err := g.Batch(cycle)
			if err != nil {
				t.Fatal(err)
			}
			for _, ch := range batch {
				for d, v := range ch.Coords {
					if v < 0 || v >= geom.Extents[d] {
						t.Fatalf("%s chunk %v outside geometry %v", g.Name(), ch.Coords, geom.Extents)
					}
				}
			}
		}
	}
}

func TestAISPortsAreHot(t *testing.T) {
	a := newAIS(t)
	batch, err := a.Batch(0)
	if err != nil {
		t.Fatal(err)
	}
	portSet := map[string]bool{}
	for _, p := range a.Ports() {
		portSet[array.ChunkCoord{0, p[0], p[1]}.Key()] = true
	}
	var portBytes, allBytes int64
	for _, ch := range batch {
		allBytes += ch.SizeBytes()
		if portSet[ch.Coords.Key()] {
			portBytes += ch.SizeBytes()
		}
	}
	if frac := float64(portBytes) / float64(allBytes); frac < 0.6 {
		t.Errorf("port chunks hold %.2f of the data, want > 0.6", frac)
	}
}

func TestMODISBandsShareGridButDiffer(t *testing.T) {
	m := newMODIS(t)
	batch, err := m.Batch(0)
	if err != nil {
		t.Fatal(err)
	}
	arrays := map[string]int{}
	for _, ch := range batch {
		arrays[ch.Schema.Name]++
	}
	if arrays["Band1"] == 0 || arrays["Band2"] == 0 {
		t.Fatalf("batch should cover both bands: %v", arrays)
	}
	if arrays["Band1"] != arrays["Band2"] {
		t.Errorf("bands cover different chunk counts: %v", arrays)
	}
}
