package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/stats"
)

// AISConfig sizes the synthetic ship-tracking workload. Zero values select
// defaults that scale the paper's 400 GB / 3-year study down to megabytes
// while preserving the extreme port skew (≈85% of the data in ≈5% of the
// chunks) and the seasonal insert pattern.
type AISConfig struct {
	// Cycles is the number of monthly insert cycles (default 12).
	Cycles int
	// LonStride and LatStride are chunk intervals in degrees (paper: 4;
	// default here 8 to keep the grid modest).
	LonStride, LatStride int64
	// CellsPerCycle is the mean number of broadcasts per cycle before
	// the seasonal factor.
	CellsPerCycle int
	// Vessels is the fleet size for the replicated vessel array.
	Vessels int
	// Seed drives all randomness.
	Seed int64
}

func (c *AISConfig) defaults() {
	if c.Cycles == 0 {
		c.Cycles = 12
	}
	if c.LonStride == 0 {
		c.LonStride = 8
	}
	if c.LatStride == 0 {
		c.LatStride = 8
	}
	if c.CellsPerCycle == 0 {
		c.CellsPerCycle = 6000
	}
	if c.Vessels == 0 {
		c.Vessels = 1500
	}
	if c.Seed == 0 {
		c.Seed = 43200 // the broadcast array's time stride
	}
}

// minutesPer30Days is the Broadcast array's time chunk interval.
const minutesPer30Days = 43200

// AIS generates the marine-vessel workload of Section 3.2: a 3-D Broadcast
// array (time × longitude × latitude) whose cell mass is Zipf-concentrated
// on a handful of port chunks, a small replicated Vessel array, monthly
// inserts whose volume swings seasonally (peaking around the holidays), and
// ship identities skewed so a few vessels broadcast most.
type AIS struct {
	cfg       AISConfig
	broadcast *array.Schema
	vessel    *array.Schema
	// ports are the hot chunk columns (x, y) in chunk-grid coordinates.
	ports [][2]int64
}

// NewAIS builds the generator.
func NewAIS(cfg AISConfig) (*AIS, error) {
	cfg.defaults()
	if cfg.Cycles < 1 {
		return nil, fmt.Errorf("workload: AIS needs at least one cycle")
	}
	if cfg.LonStride < 1 || cfg.LatStride < 1 || cfg.CellsPerCycle < 1 || cfg.Vessels < 1 {
		return nil, fmt.Errorf("workload: AIS config values must be positive")
	}
	broadcast, err := array.NewSchema("Broadcast",
		[]array.Attribute{
			{Name: "speed", Type: array.Int32},
			{Name: "course", Type: array.Int32},
			{Name: "heading", Type: array.Int32},
			{Name: "rot", Type: array.Int32},
			{Name: "status", Type: array.Int32},
			{Name: "voyage_id", Type: array.Int32},
			{Name: "ship_id", Type: array.Int32},
			{Name: "receiver_type", Type: array.Char},
			{Name: "receiver_id", Type: array.String},
			{Name: "provenance", Type: array.String},
		},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: minutesPer30Days},
			{Name: "longitude", Start: -180, End: -66, ChunkInterval: cfg.LonStride},
			{Name: "latitude", Start: 0, End: 90, ChunkInterval: cfg.LatStride},
		})
	if err != nil {
		return nil, err
	}
	vessel, err := array.NewSchema("Vessel",
		[]array.Attribute{
			{Name: "ship_type", Type: array.Int32},
			{Name: "length", Type: array.Int32},
			{Name: "width", Type: array.Int32},
			{Name: "hazmat", Type: array.Bool},
		},
		[]array.Dimension{
			{Name: "vessel_id", Start: 0, End: int64(cfg.Vessels) - 1, ChunkInterval: int64(cfg.Vessels)},
		})
	if err != nil {
		return nil, err
	}
	a := &AIS{cfg: cfg, broadcast: broadcast, vessel: vessel}
	// Pick ~5% of the spatial grid as port chunks, clustered on the
	// coasts (low longitude-chunk indexes ≈ the US eastern seaboard and
	// gulf in the real data).
	lonChunks := broadcast.Dims[1].NumChunks()
	latChunks := broadcast.Dims[2].NumChunks()
	nPorts := int(math.Max(2, math.Round(float64(lonChunks*latChunks)*0.05)))
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0a15))
	seen := make(map[[2]int64]bool)
	for len(a.ports) < nPorts {
		x := rng.Int63n(lonChunks)
		y := rng.Int63n(latChunks / 2) // ports in the lower latitudes
		key := [2]int64{x, y}
		if seen[key] {
			continue
		}
		seen[key] = true
		a.ports = append(a.ports, [2]int64{x, y})
	}
	return a, nil
}

// Name implements Generator.
func (a *AIS) Name() string { return "AIS" }

// Schemas implements Generator (the partitioned Broadcast array only; the
// vessel array is replicated).
func (a *AIS) Schemas() []*array.Schema { return []*array.Schema{a.broadcast} }

// Cycles implements Generator.
func (a *AIS) Cycles() int { return a.cfg.Cycles }

// Geometry implements Generator: longitude and latitude are the spatial
// dimensions; time is the growth axis.
func (a *AIS) Geometry() partition.Geometry {
	return partition.Geometry{
		Extents: []int64{
			int64(a.cfg.Cycles),
			a.broadcast.Dims[1].NumChunks(),
			a.broadcast.Dims[2].NumChunks(),
		},
		SpatialDims: []int{1, 2},
	}
}

// Ports exposes the hot chunk columns, which the benchmarks target (the
// paper's selection query filters "a densely trafficked area around the
// port of Houston").
func (a *AIS) Ports() [][2]int64 {
	return append([][2]int64(nil), a.ports...)
}

// SeasonalFactor scales cycle volume: commercial shipping peaks around the
// holidays (paper §3.4), modelled as a sinusoid with a December bump.
func (a *AIS) SeasonalFactor(cycle int) float64 {
	phase := 2 * math.Pi * float64(cycle) / 12
	f := 1 + 0.30*math.Sin(phase-math.Pi/2)
	if cycle%12 == 10 || cycle%12 == 11 {
		f += 0.25 // holiday surge
	}
	return f
}

// Replicated implements Generator: the Vessel dimension table, replicated
// over all cluster nodes (25 MB in the paper, a single chunk here).
func (a *AIS) Replicated() (*array.Schema, []*array.Chunk) {
	ch := array.NewChunk(a.vessel, array.ChunkCoord{0})
	rng := rand.New(rand.NewSource(a.cfg.Seed ^ 0xfee7))
	for id := 0; id < a.cfg.Vessels; id++ {
		haz := int64(0)
		if rng.Float64() < 0.08 {
			haz = 1
		}
		ch.AppendCell(array.Coord{int64(id)}, []array.CellValue{
			{Int: int64(rng.Intn(8))},        // ship_type
			{Int: int64(20 + rng.Intn(380))}, // length
			{Int: int64(5 + rng.Intn(55))},   // width
			{Int: haz},                       // hazmat
		})
	}
	return a.vessel, []*array.Chunk{ch}
}

// Batch implements Generator: one 30-day slab of broadcasts. The spatial
// distribution sends ≈85% of the cells to the port chunks (Zipf-weighted
// among them) and scatters the rest; ship identities are Zipf-skewed too.
func (a *AIS) Batch(cycle int) ([]*array.Chunk, error) {
	if err := validateCycle(a, cycle); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(mixSeed(a.cfg.Seed, int64(cycle), 0x0b0a7)))
	total := int(float64(a.cfg.CellsPerCycle) * a.SeasonalFactor(cycle))
	portZipf := stats.MustZipf(rng, len(a.ports), 1.1)
	shipZipf := stats.MustZipf(rng, a.cfg.Vessels, 1.05)
	lonChunks := a.broadcast.Dims[1].NumChunks()
	latChunks := a.broadcast.Dims[2].NumChunks()

	chunks := make(map[array.CoordKey]*array.Chunk)
	chunkFor := func(x, y int64) *array.Chunk {
		cc := array.ChunkCoord{int64(cycle), x, y}
		key := cc.Packed()
		ch, ok := chunks[key]
		if !ok {
			ch = array.NewChunkCap(a.broadcast, cc, 64)
			chunks[key] = ch
		}
		return ch
	}
	for i := 0; i < total; i++ {
		var x, y int64
		if rng.Float64() < 0.85 {
			p := a.ports[portZipf.Next()]
			x, y = p[0], p[1]
		} else {
			x, y = rng.Int63n(lonChunks), rng.Int63n(latChunks)
		}
		ch := chunkFor(x, y)
		lo, hi := a.broadcast.ChunkBounds(ch.Coords)
		cell := array.Coord{
			lo[0] + rng.Int63n(hi[0]-lo[0]+1),
			lo[1] + rng.Int63n(hi[1]-lo[1]+1),
			lo[2] + rng.Int63n(hi[2]-lo[2]+1),
		}
		ship := shipZipf.Next()
		speed := int64(rng.Intn(25))
		if rng.Float64() < 0.3 {
			speed = 0 // in port
		}
		ch.AppendCell(cell, []array.CellValue{
			{Int: speed},
			{Int: int64(rng.Intn(360))},                // course
			{Int: int64(rng.Intn(360))},                // heading
			{Int: int64(rng.Intn(21) - 10)},            // rot
			{Int: int64(rng.Intn(5))},                  // status
			{Int: int64(rng.Intn(4000))},               // voyage_id
			{Int: int64(ship)},                         // ship_id
			{Int: int64('S')},                          // receiver_type
			{Str: fmt.Sprintf("R%03d", rng.Intn(240))}, // receiver_id
			{Str: "uscg"},                              // provenance
		})
	}
	// Deterministic output order.
	keys := make([]array.CoordKey, 0, len(chunks))
	for k := range chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	out := make([]*array.Chunk, 0, len(keys))
	for _, k := range keys {
		out = append(out, chunks[k])
	}
	return out, nil
}
