package workload

import "testing"

func BenchmarkMODISBatch(b *testing.B) {
	m, err := NewMODIS(MODISConfig{Cycles: 14})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Batch(i % m.Cycles()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAISBatch(b *testing.B) {
	a, err := NewAIS(AISConfig{Cycles: 12})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Batch(i % a.Cycles()); err != nil {
			b.Fatal(err)
		}
	}
}
