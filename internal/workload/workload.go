// Package workload synthesises the paper's two use cases (Section 3): the
// MODIS remote-sensing arrays — near-uniform, sparse, inserted daily — and
// the AIS marine-vessel-track arrays — heavily port-skewed, inserted
// monthly with seasonal variation — plus the cyclic workload model (ingest
// → reorganize → process) both are driven through.
//
// The real datasets (630 GB of NASA L1B imagery, 400 GB of NOAA
// ship tracks) are not available, so the generators are calibrated to the
// distributional facts the paper states and the experiments exploit:
// MODIS's top 5% of chunks hold ≈10% of the data; AIS's top 5% hold ≈85%
// (ships congregating around ports); MODIS demand grows steadily while AIS
// has seasonal swings. Everything is deterministic under a fixed seed.
package workload

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/partition"
)

// Generator produces the chunk batches of a cyclic workload.
type Generator interface {
	// Name identifies the workload ("MODIS", "AIS").
	Name() string
	// Schemas lists the partitioned arrays the workload inserts into.
	Schemas() []*array.Schema
	// Replicated returns the workload's replicated array and its chunks
	// (nil, nil when the workload has none).
	Replicated() (*array.Schema, []*array.Chunk)
	// Cycles returns the number of workload cycles.
	Cycles() int
	// Batch generates the chunks inserted at the given cycle (0-based).
	// Batches are disjoint across cycles and deterministic.
	Batch(cycle int) ([]*array.Chunk, error)
	// Geometry returns the chunk grid (with the time horizon covering
	// all cycles) that the spatial partitioners plan over.
	Geometry() partition.Geometry
}

// BatchBytes sums the physical size of a batch.
func BatchBytes(chunks []*array.Chunk) int64 {
	var n int64
	for _, c := range chunks {
		n += c.SizeBytes()
	}
	return n
}

// TotalBytes generates every cycle of g and returns the cumulative demand
// curve (bytes stored after each cycle's insert) and the grand total. It is
// how experiments size node capacity before a run.
func TotalBytes(g Generator) (curve []float64, total int64, err error) {
	for i := 0; i < g.Cycles(); i++ {
		batch, err := g.Batch(i)
		if err != nil {
			return nil, 0, err
		}
		total += BatchBytes(batch)
		curve = append(curve, float64(total))
	}
	return curve, total, nil
}

// validateCycle guards Batch arguments.
func validateCycle(g Generator, cycle int) error {
	if cycle < 0 || cycle >= g.Cycles() {
		return fmt.Errorf("workload: cycle %d outside [0,%d)", cycle, g.Cycles())
	}
	return nil
}
