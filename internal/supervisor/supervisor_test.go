package supervisor

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/partition"
	"repro/internal/transport"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 63, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 63, ChunkInterval: 4},
		})
}

func makeChunks(t testing.TB, n, cells int, seed int64) []*array.Chunk {
	t.Helper()
	s := testSchema()
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	var out []*array.Chunk
	for len(out) < n {
		cc := array.ChunkCoord{rng.Int63n(16), rng.Int63n(16)}
		if used[cc.Key()] {
			continue
		}
		used[cc.Key()] = true
		ch := array.NewChunk(s, cc)
		origin := s.ChunkOrigin(cc)
		for k := 0; k < cells; k++ {
			cell := array.Coord{origin[0] + int64(k%4), origin[1] + int64((k/4)%4)}
			ch.AppendCell(cell, []array.CellValue{{Float: rng.Float64()}})
		}
		out = append(out, ch)
	}
	return out
}

// harness is a fully deterministic supervised cluster: loopback transport
// under fault injection, a manual clock driving the detector, and the test
// driving heartbeats and polls by hand — no timers, no sleeps.
type harness struct {
	t   *testing.T
	c   *cluster.Cluster
	f   *transport.FaultTransport
	s   *Supervisor
	clk *detector.ManualClock
}

// Heartbeats every 100ms (emitted by the test), suspect at 400ms of
// silence, down at 1s, quarantine 250ms.
func newHarness(t *testing.T, nodes int, opts Options) *harness {
	t.Helper()
	f := transport.NewFaultTransport(transport.NewLoopback())
	c, err := cluster.New(cluster.Config{
		InitialNodes:      nodes,
		NodeCapacity:      10 << 20,
		ReplicationFactor: 2,
		Transport:         f,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 64), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	clk := detector.NewManualClock(t0)
	opts.Detector.Clock = clk
	opts.HeartbeatInterval = 100 * time.Millisecond
	if opts.Detector.SuspectAfter == 0 {
		opts.Detector.SuspectAfter = 400 * time.Millisecond
	}
	if opts.Detector.DownAfter == 0 {
		opts.Detector.DownAfter = time.Second
	}
	s, err := New(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, c: c, f: f, s: s, clk: clk}
}

// step advances the clock, emits one heartbeat round, and polls — one
// supervision beat of the simulated world.
func (h *harness) step(d time.Duration) {
	h.clk.Advance(d)
	h.c.HeartbeatNow()
	h.s.Poll()
}

func (h *harness) victim() partition.NodeID {
	h.t.Helper()
	for _, id := range h.c.Nodes() {
		if id == h.c.Coordinator() {
			continue
		}
		node, _ := h.c.Node(id)
		if node.NumChunks() > 0 {
			return id
		}
	}
	h.t.Fatal("no non-coordinator node owns chunks")
	return 0
}

// TestSupervisedRecoveryEndToEnd is the tentpole drill in miniature: a node
// is cut off, and with ZERO manual health calls the supervisor suspects,
// fails, recovers, and — once the node beats again through quarantine —
// readmits it, leaving Validate clean at every settled point.
func TestSupervisedRecoveryEndToEnd(t *testing.T) {
	h := newHarness(t, 4, Options{})
	if _, err := h.c.Insert(makeChunks(t, 40, 8, 23)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.step(100 * time.Millisecond)
	}
	if got := h.s.Events(); len(got) != 0 {
		t.Fatalf("healthy cluster produced events: %v", got)
	}

	victim := h.victim()
	h.f.IsolateNode(victim, transport.LinkAll)
	for i := 0; i < 4; i++ { // 400ms of silence → suspect
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventSuspect); n != 1 {
		t.Fatalf("EventSuspect count = %d, want 1; events: %v", n, h.s.Events())
	}
	if got := h.c.SuspectNodes(); len(got) != 1 || got[0] != victim {
		t.Fatalf("SuspectNodes = %v, want [%d]", got, victim)
	}
	for i := 0; i < 6; i++ { // 1s of silence → down, recovery in the same poll
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventDown); n != 1 {
		t.Fatalf("EventDown count = %d; events: %v", n, h.s.Events())
	}
	if n := h.s.EventCount(EventFailed); n != 1 {
		t.Fatalf("EventFailed count = %d; events: %v", n, h.s.Events())
	}
	if n := h.s.EventCount(EventRecovered); n != 1 {
		t.Fatalf("EventRecovered count = %d; events: %v", n, h.s.Events())
	}
	if health, _ := h.c.NodeHealthOf(victim); health != cluster.NodeDown {
		t.Fatalf("victim health = %v, want Down", health)
	}
	if err := h.c.Validate(); err != nil {
		t.Fatalf("post-recovery Validate: %v", err)
	}
	vnode, _ := h.c.Node(victim)

	// The node comes back: quarantine, then automatic readmission.
	h.f.HealNode(victim)
	h.step(100 * time.Millisecond)
	if n := h.s.EventCount(EventAlive); n != 1 {
		t.Fatalf("EventAlive count = %d; events: %v", n, h.s.Events())
	}
	h.step(125 * time.Millisecond)
	h.step(125 * time.Millisecond) // 250ms since alive → quarantine served
	if n := h.s.EventCount(EventReadmitted); n != 1 {
		t.Fatalf("EventReadmitted count = %d; events: %v", n, h.s.Events())
	}
	if health, _ := h.c.NodeHealthOf(victim); health != cluster.NodeHealthy {
		t.Fatalf("victim health = %v, want Healthy", health)
	}
	if vnode.NumReplicas() == 0 {
		t.Error("readmitted node holds no secondaries; replica spread not restored")
	}
	if err := h.c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
	if n := h.s.EventCount(EventGaveUp); n != 0 {
		t.Fatalf("supervisor gave up: %v", h.s.Events())
	}
}

// TestSuspectClearsOnResumedBeats: heartbeat-only loss short of the down
// threshold ends in suspicion lifted, never in failover.
func TestSuspectClearsOnResumedBeats(t *testing.T) {
	h := newHarness(t, 3, Options{})
	if _, err := h.c.Insert(makeChunks(t, 12, 8, 29)); err != nil {
		t.Fatal(err)
	}
	victim := h.victim()
	h.f.IsolateNode(victim, transport.LinkAnnounce)
	for i := 0; i < 4; i++ {
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventSuspect); n != 1 {
		t.Fatalf("EventSuspect count = %d; events: %v", n, h.s.Events())
	}
	h.f.HealNode(victim)
	h.step(100 * time.Millisecond)
	if n := h.s.EventCount(EventSuspectCleared); n != 1 {
		t.Fatalf("EventSuspectCleared count = %d; events: %v", n, h.s.Events())
	}
	if got := h.c.SuspectNodes(); len(got) != 0 {
		t.Fatalf("SuspectNodes = %v, want none", got)
	}
	if n := h.s.EventCount(EventDown) + h.s.EventCount(EventFailed); n != 0 {
		t.Fatalf("suspicion escalated to failover: %v", h.s.Events())
	}
	if err := h.c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// killAndRecover drives one full down→recover→readmit cycle and returns
// how long the node waited in quarantine (alive → readmitted).
func killAndRecover(t *testing.T, h *harness, victim partition.NodeID) time.Duration {
	t.Helper()
	before := h.s.EventCount(EventReadmitted)
	h.f.IsolateNode(victim, transport.LinkAll)
	for i := 0; i < 10; i++ {
		h.step(100 * time.Millisecond)
	}
	h.f.HealNode(victim)
	h.step(100 * time.Millisecond) // alive
	aliveAt := h.clk.Now()
	for i := 0; i < 50; i++ {
		if h.s.EventCount(EventReadmitted) > before {
			return h.clk.Now().Sub(aliveAt)
		}
		h.step(125 * time.Millisecond)
	}
	t.Fatalf("node %d never readmitted: %v", victim, h.s.Events())
	return 0
}

// TestFlapDampingDoublesQuarantine: a node that dies again right after
// readmission waits twice as long the second time.
func TestFlapDampingDoublesQuarantine(t *testing.T) {
	h := newHarness(t, 4, Options{})
	if _, err := h.c.Insert(makeChunks(t, 40, 8, 31)); err != nil {
		t.Fatal(err)
	}
	victim := h.victim()
	first := killAndRecover(t, h, victim)
	if n := h.s.EventCount(EventQuarantined); n != 0 {
		t.Fatalf("first death counted as flapping: %v", h.s.Events())
	}
	second := killAndRecover(t, h, victim) // within FlapWindow of readmission
	if n := h.s.EventCount(EventQuarantined); n != 1 {
		t.Fatalf("EventQuarantined count = %d, want 1; events: %v", n, h.s.Events())
	}
	if second <= first {
		t.Fatalf("flapping node readmitted after %v, first wait was %v — quarantine did not grow", second, first)
	}
	if err := h.c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterTransientRecoveryFailure: a recovery whose transfers fail
// transiently is backed off and retried, then succeeds — with the retry
// visible in the event log.
func TestRetryAfterTransientRecoveryFailure(t *testing.T) {
	h := newHarness(t, 4, Options{})
	if _, err := h.c.Insert(makeChunks(t, 40, 8, 37)); err != nil {
		t.Fatal(err)
	}
	victim := h.victim()
	h.f.IsolateNode(victim, transport.LinkAll)
	h.f.FailNextPushes(1 << 20) // recovery's re-replication pushes all fail
	for i := 0; i < 10; i++ {
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventRetry); n == 0 {
		t.Fatalf("no EventRetry despite failing transfers: %v", h.s.Events())
	}
	if n := h.s.EventCount(EventRecovered); n != 0 {
		t.Fatalf("recovery committed despite failing transfers: %v", h.s.Events())
	}
	h.f.FailNextPushes(0) // fault clears
	for i := 0; i < 10 && h.s.EventCount(EventRecovered) == 0; i++ {
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventRecovered); n != 1 {
		t.Fatalf("EventRecovered count = %d after fault cleared; events: %v", n, h.s.Events())
	}
	if n := h.s.EventCount(EventGaveUp); n != 0 {
		t.Fatalf("supervisor gave up on a transient fault: %v", h.s.Events())
	}
	if err := h.c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGiveUpAfterMaxAttempts: a persistent fault exhausts the bounded
// retry budget and is recorded as EventGaveUp instead of looping forever.
func TestGiveUpAfterMaxAttempts(t *testing.T) {
	h := newHarness(t, 4, Options{MaxAttempts: 2})
	if _, err := h.c.Insert(makeChunks(t, 40, 8, 41)); err != nil {
		t.Fatal(err)
	}
	victim := h.victim()
	h.f.IsolateNode(victim, transport.LinkAll)
	h.f.FailNextPushes(1 << 30)
	for i := 0; i < 20; i++ {
		h.step(100 * time.Millisecond)
	}
	if n := h.s.EventCount(EventGaveUp); n != 1 {
		t.Fatalf("EventGaveUp count = %d, want 1; events: %v", n, h.s.Events())
	}
	if n := h.s.EventCount(EventRetry); n != 1 { // MaxAttempts 2 = 1 retry then give up
		t.Fatalf("EventRetry count = %d, want 1; events: %v", n, h.s.Events())
	}
}

func TestSupervisorRequiresTransport(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 10 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 64), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, Options{}); err == nil {
		t.Fatal("supervisor over a transportless cluster must be rejected")
	}
}

// TestStartStop smoke-checks the background loop plumbing: Start runs,
// double Start errors, Stop is idempotent and detaches the sink.
func TestStartStop(t *testing.T) {
	h := newHarness(t, 3, Options{})
	if err := h.s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.s.Start(); err == nil {
		t.Error("double Start must error")
	}
	h.s.Stop()
	h.s.Stop() // idempotent
	if err := h.s.Start(); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	h.s.Stop()
}
