// Package supervisor closes the failure loop the ROADMAP left open: it
// subscribes to the failure detector's verdicts and drives the cluster's
// existing manual recovery machinery — FailNode → PlanRecover →
// ExecuteRebalance, then RecoverNode when the node returns — automatically,
// so a killed node heals with zero operator calls.
//
//	          heartbeats stop                 heartbeats resume
//	Healthy ────────────────▶ Suspect ─────▶ Down          │
//	   ▲     (MarkNodeSuspect)    (FailNode + PlanRecover  │
//	   │                           + ExecuteRebalance)     ▼
//	   └──────────────── RecoverNode ◀──────────── quarantine wait
//	      (readmit + replica restore)      (flap damping doubles it)
//
// Policy lives here, timing math lives in internal/detector. The supervisor
// applies bounded retries with exponential backoff + deterministic jitter
// to every recovery step, treats a stale-plan rejection (cluster.ErrStalePlan,
// some other administration won the epoch race) as a plan-again signal, and
// damps flapping: a node that dies again shortly after being readmitted
// earns a doubled quarantine window before the next readmission, up to a
// cap. Every decision is recorded in a structured event log.
//
// Concurrency: heartbeats arrive on transport handler goroutines and are
// fed to the detector inside the cluster's announcement sink, which must
// not take cluster locks — so the sink only records the observation. All
// cluster calls happen on Poll, which the Start loop runs on a timer (or a
// test drives directly against a ManualClock).
package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/partition"
	"repro/internal/transport"
)

// Options tune a Supervisor. The zero value is usable: 50ms heartbeats,
// detector defaults scaled to that, 6 attempts per recovery step with
// 25ms..2s backoff, 250ms quarantine doubling up to 16x under flapping.
type Options struct {
	// Detector tunes the failure detector. ExpectedInterval defaults to
	// HeartbeatInterval (not the detector's own 100ms default) so the
	// thresholds track the configured emission rate.
	Detector detector.Options
	// HeartbeatInterval is the node heartbeat emission period Start
	// configures. Default 50ms.
	HeartbeatInterval time.Duration
	// PollInterval is how often the Start loop calls Poll. Default:
	// HeartbeatInterval.
	PollInterval time.Duration
	// MaxAttempts bounds retries per recovery step (the fail+replan step
	// and the readmit step each get their own budget). Default 6.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff:
	// base<<(attempt-1), clamped to max, ±25% jitter. Defaults 25ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the deterministic jitter source. Default 1.
	JitterSeed int64
	// Quarantine is how long a Down node must beat steadily before it is
	// readmitted. Default 250ms.
	Quarantine time.Duration
	// QuarantineMax caps the flap-damped window. Default 16x Quarantine.
	QuarantineMax time.Duration
	// FlapWindow: a node that goes Down again within this span of its
	// last readmission is flapping — its quarantine window doubles.
	// Default 10x Quarantine.
	FlapWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 50 * time.Millisecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = o.HeartbeatInterval
	}
	if o.Detector.ExpectedInterval == 0 {
		o.Detector.ExpectedInterval = o.HeartbeatInterval
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.Quarantine <= 0 {
		o.Quarantine = 250 * time.Millisecond
	}
	if o.QuarantineMax <= 0 {
		o.QuarantineMax = 16 * o.Quarantine
	}
	if o.FlapWindow <= 0 {
		o.FlapWindow = 10 * o.Quarantine
	}
	return o
}

// EventKind classifies a supervisor decision.
type EventKind int

const (
	// EventSuspect: detector lost heartbeats past the suspect threshold;
	// the node was marked Suspect in the cluster.
	EventSuspect EventKind = iota
	// EventSuspectCleared: heartbeats resumed before the down threshold.
	EventSuspectCleared
	// EventDown: the detector's Down verdict landed; recovery scheduled.
	EventDown
	// EventFailed: the supervisor called FailNode.
	EventFailed
	// EventRecovered: PlanRecover + ExecuteRebalance committed; the dead
	// node's data is re-owned and the cluster is whole again without it.
	EventRecovered
	// EventRetry: a recovery or readmit step failed transiently and was
	// rescheduled with backoff.
	EventRetry
	// EventGaveUp: a step exhausted MaxAttempts.
	EventGaveUp
	// EventAlive: a node the cluster holds Down resumed heartbeats; the
	// quarantine clock starts.
	EventAlive
	// EventQuarantined: the node is flapping — it died again within
	// FlapWindow of its last readmission — so its quarantine doubled.
	EventQuarantined
	// EventReadmitted: RecoverNode committed; the node serves again with
	// its replica share restored.
	EventReadmitted
)

func (k EventKind) String() string {
	switch k {
	case EventSuspect:
		return "suspect"
	case EventSuspectCleared:
		return "suspect-cleared"
	case EventDown:
		return "down"
	case EventFailed:
		return "failed"
	case EventRecovered:
		return "recovered"
	case EventRetry:
		return "retry"
	case EventGaveUp:
		return "gave-up"
	case EventAlive:
		return "alive"
	case EventQuarantined:
		return "quarantined"
	case EventReadmitted:
		return "readmitted"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one entry in the supervisor's structured decision log.
type Event struct {
	At      time.Time
	Kind    EventKind
	Node    partition.NodeID
	Attempt int // retry ordinal for EventRetry/EventGaveUp, else 0
	Detail  string
	Err     error // the failure behind EventRetry/EventGaveUp, if any
}

func (e Event) String() string {
	s := fmt.Sprintf("%s node %d", e.Kind, e.Node)
	if e.Attempt > 0 {
		s += fmt.Sprintf(" (attempt %d)", e.Attempt)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// action is one scheduled step (recovery or readmit) with its retry state.
type action struct {
	attempts int
	due      time.Time
}

// aliveTrack is a Down node that resumed beating: quarantine bookkeeping.
type aliveTrack struct {
	since time.Time
	action
}

// Supervisor drives automatic failure recovery over a cluster. Build with
// New, then either Start (heartbeats + background poll loop) or call Poll
// yourself against an injected clock for deterministic tests.
type Supervisor struct {
	c    *cluster.Cluster
	det  *detector.Detector
	opts Options

	mu          sync.Mutex
	queued      []detector.Transition // sink-observed, drained by Poll
	events      []Event
	recovering  map[partition.NodeID]*action
	alive       map[partition.NodeID]*aliveTrack
	quarantine  map[partition.NodeID]time.Duration
	lastReadmit map[partition.NodeID]time.Time
	rng         *rand.Rand

	runMu  sync.Mutex // serialises Poll: one actor at a time
	stopHB func()
	done   chan struct{}
	exited chan struct{}
}

// New builds a supervisor over c, wiring the detector into the cluster's
// announcement sink and watching every current non-coordinator node. The
// cluster must have a transport (heartbeats ride Announce). The supervisor
// takes the sink; one supervisor per cluster.
func New(c *cluster.Cluster, opts Options) (*Supervisor, error) {
	if c.Transport() == nil {
		return nil, fmt.Errorf("supervisor: cluster has no transport; heartbeats need one")
	}
	o := opts.withDefaults()
	det, err := detector.New(o.Detector)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		c:           c,
		det:         det,
		opts:        o,
		recovering:  make(map[partition.NodeID]*action),
		alive:       make(map[partition.NodeID]*aliveTrack),
		quarantine:  make(map[partition.NodeID]time.Duration),
		lastReadmit: make(map[partition.NodeID]time.Time),
		rng:         rand.New(rand.NewSource(o.JitterSeed)),
	}
	coord := c.Coordinator()
	for _, id := range c.Nodes() {
		if id != coord {
			det.Watch(id)
		}
	}
	c.SetAnnouncementSink(s.onAnnouncement)
	return s, nil
}

// Detector returns the supervisor's failure detector, for status probes.
func (s *Supervisor) Detector() *detector.Detector { return s.det }

// Options returns the resolved tuning.
func (s *Supervisor) Options() Options { return s.opts }

// onAnnouncement is the cluster's announcement sink: it may run on a
// transport handler goroutine while the admin lock is held, so it only
// feeds the detector (a leaf lock) and queues any readmission transition
// for Poll to act on.
func (s *Supervisor) onAnnouncement(a transport.Announcement) {
	if tr := s.det.Observe(a.Node, a.Seq); tr != nil {
		s.mu.Lock()
		s.queued = append(s.queued, *tr)
		s.mu.Unlock()
	}
}

func (s *Supervisor) now() time.Time { return s.det.Options().Clock.Now() }

func (s *Supervisor) emit(e Event) {
	e.At = s.now()
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the decision log so far.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// EventCount returns how many events of the given kind have been logged.
func (s *Supervisor) EventCount(kind EventKind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Poll runs one supervision round: evaluate silence (detector.Tick), apply
// queued and fresh transitions, then execute any due recovery or readmit
// step. Returns the number of cluster-mutating actions taken. Safe to call
// concurrently with heartbeats; concurrent Polls serialise.
func (s *Supervisor) Poll() int {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	fresh := s.det.Tick()
	s.mu.Lock()
	trans := append(s.queued, fresh...)
	s.queued = nil
	s.mu.Unlock()
	actions := 0
	for _, tr := range trans {
		actions += s.handleTransition(tr)
	}
	actions += s.runDueRecoveries()
	actions += s.runDueReadmits()
	return actions
}

// handleTransition applies one detector verdict. Runs without s.mu held:
// it calls into the cluster.
func (s *Supervisor) handleTransition(tr detector.Transition) int {
	switch tr.To {
	case detector.Suspect:
		err := s.c.MarkNodeSuspect(tr.Node)
		s.emit(Event{Kind: EventSuspect, Node: tr.Node, Detail: fmt.Sprintf("silent %v", tr.Silence), Err: err})
		return 1
	case detector.Down:
		now := s.now()
		flapped := false
		s.mu.Lock()
		win, ok := s.quarantine[tr.Node]
		if !ok {
			win = s.opts.Quarantine
		}
		if last, ok := s.lastReadmit[tr.Node]; ok && now.Sub(last) < s.opts.FlapWindow {
			win *= 2
			if win > s.opts.QuarantineMax {
				win = s.opts.QuarantineMax
			}
			flapped = true
		} else {
			win = s.opts.Quarantine
		}
		s.quarantine[tr.Node] = win
		delete(s.alive, tr.Node)
		s.recovering[tr.Node] = &action{due: now}
		s.mu.Unlock()
		if flapped {
			s.emit(Event{Kind: EventQuarantined, Node: tr.Node, Detail: fmt.Sprintf("flapping; quarantine now %v", win)})
		}
		s.emit(Event{Kind: EventDown, Node: tr.Node, Detail: fmt.Sprintf("silent %v", tr.Silence)})
		return 1
	case detector.Healthy:
		if tr.From == detector.Suspect {
			err := s.c.ClearNodeSuspect(tr.Node)
			s.emit(Event{Kind: EventSuspectCleared, Node: tr.Node, Err: err})
			return 1
		}
		// Down → Healthy: the node is beating again.
		now := s.now()
		if health, ok := s.c.NodeHealthOf(tr.Node); ok && health == cluster.NodeDown {
			// Already failed over; start the quarantine clock toward
			// readmission.
			s.mu.Lock()
			if _, pending := s.alive[tr.Node]; !pending {
				s.alive[tr.Node] = &aliveTrack{since: now}
			}
			s.mu.Unlock()
			s.emit(Event{Kind: EventAlive, Node: tr.Node})
		} else {
			// The verdict raced the node's return: recovery never ran.
			// Cancel it and lift any suspicion.
			s.mu.Lock()
			delete(s.recovering, tr.Node)
			s.mu.Unlock()
			_ = s.c.ClearNodeSuspect(tr.Node)
			s.emit(Event{Kind: EventAlive, Node: tr.Node, Detail: "returned before failover; recovery cancelled"})
		}
		return 1
	}
	return 0
}

// backoff computes the delay before retry ordinal attempt (1-based), with
// deterministic ±25% jitter.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.opts.BackoffBase
	for i := 1; i < attempt && d < s.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > s.opts.BackoffMax {
		d = s.opts.BackoffMax
	}
	s.mu.Lock()
	jitter := (s.rng.Float64() - 0.5) / 2 // ±25%
	s.mu.Unlock()
	return d + time.Duration(jitter*float64(d))
}

// dueNodes snapshots the nodes in m whose action is due, ascending, so the
// mutating calls below run without s.mu held.
func dueNodes[T any](mu *sync.Mutex, m map[partition.NodeID]*T, due func(*T) bool) []partition.NodeID {
	mu.Lock()
	defer mu.Unlock()
	var out []partition.NodeID
	for id, v := range m {
		if due(v) {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runDueRecoveries executes the FailNode → PlanRecover → ExecuteRebalance
// sequence for every node whose recovery is due.
func (s *Supervisor) runDueRecoveries() int {
	now := s.now()
	ids := dueNodes(&s.mu, s.recovering, func(a *action) bool { return !a.due.After(now) })
	actions := 0
	for _, id := range ids {
		s.mu.Lock()
		act, ok := s.recovering[id]
		s.mu.Unlock()
		if !ok {
			continue
		}
		actions++
		err := s.recoverNode(id)
		if err == nil {
			s.emit(Event{Kind: EventRecovered, Node: id, Attempt: act.attempts + 1})
			s.mu.Lock()
			delete(s.recovering, id)
			s.mu.Unlock()
			continue
		}
		s.retryOrGiveUp(id, act, err, s.recovering)
	}
	return actions
}

// retryOrGiveUp applies the shared retry policy to a failed step.
func (s *Supervisor) retryOrGiveUp(id partition.NodeID, act *action, err error, m map[partition.NodeID]*action) {
	act.attempts++
	detail := ""
	if errors.Is(err, cluster.ErrStalePlan) {
		detail = "plan went stale (epoch conflict); will replan"
	}
	if act.attempts >= s.opts.MaxAttempts {
		s.emit(Event{Kind: EventGaveUp, Node: id, Attempt: act.attempts, Detail: detail, Err: err})
		s.mu.Lock()
		delete(m, id)
		s.mu.Unlock()
		return
	}
	act.due = s.now().Add(s.backoff(act.attempts))
	s.emit(Event{Kind: EventRetry, Node: id, Attempt: act.attempts, Detail: detail, Err: err})
}

// recoverNode runs one recovery attempt end to end.
func (s *Supervisor) recoverNode(id partition.NodeID) error {
	health, ok := s.c.NodeHealthOf(id)
	if !ok {
		return fmt.Errorf("supervisor: node %d unknown to cluster", id)
	}
	if health != cluster.NodeDown {
		if err := s.c.FailNode(id); err != nil {
			return err
		}
		s.emit(Event{Kind: EventFailed, Node: id})
	}
	plan, err := s.c.PlanRecover(id)
	if err != nil {
		return err
	}
	if _, err := s.c.ExecuteRebalance(plan); err != nil {
		return err
	}
	return nil
}

// runDueReadmits readmits nodes that have been beating steadily through
// their quarantine window.
func (s *Supervisor) runDueReadmits() int {
	now := s.now()
	s.mu.Lock()
	var ids []partition.NodeID
	for id, at := range s.alive {
		win := s.quarantine[id]
		if win == 0 {
			win = s.opts.Quarantine
		}
		if now.Sub(at.since) >= win && !at.due.After(now) {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	actions := 0
	for _, id := range ids {
		// Readmit only while the detector still believes in the node; if
		// it went silent again the Down verdict will have cleared alive.
		if st, ok := s.det.StateOf(id); !ok || st != detector.Healthy {
			continue
		}
		s.mu.Lock()
		at, ok := s.alive[id]
		s.mu.Unlock()
		if !ok {
			continue
		}
		actions++
		_, err := s.c.RecoverNode(id)
		if err == nil {
			s.emit(Event{Kind: EventReadmitted, Node: id, Attempt: at.attempts + 1})
			s.mu.Lock()
			s.lastReadmit[id] = now
			delete(s.alive, id)
			s.mu.Unlock()
			continue
		}
		at.attempts++
		detail := ""
		if errors.Is(err, cluster.ErrStalePlan) {
			detail = "plan went stale (epoch conflict); will replan"
		}
		if at.attempts >= s.opts.MaxAttempts {
			s.emit(Event{Kind: EventGaveUp, Node: id, Attempt: at.attempts, Detail: detail, Err: err})
			s.mu.Lock()
			delete(s.alive, id)
			s.mu.Unlock()
			continue
		}
		at.due = s.now().Add(s.backoff(at.attempts))
		s.emit(Event{Kind: EventRetry, Node: id, Attempt: at.attempts, Detail: detail, Err: err})
	}
	return actions
}

// Start launches the heartbeat emitter and the background poll loop. Stop
// with Stop. Calling Start twice without Stop is an error.
func (s *Supervisor) Start() error {
	if s.done != nil {
		return fmt.Errorf("supervisor: already started")
	}
	s.stopHB = s.c.StartHeartbeats(s.opts.HeartbeatInterval)
	s.done = make(chan struct{})
	s.exited = make(chan struct{})
	go func() {
		defer close(s.exited)
		t := time.NewTicker(s.opts.PollInterval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				s.Poll()
			}
		}
	}()
	return nil
}

// Stop halts the poll loop and the heartbeat emitter and unregisters the
// announcement sink. Idempotent.
func (s *Supervisor) Stop() {
	if s.done != nil {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
		<-s.exited
		s.done = nil
	}
	if s.stopHB != nil {
		s.stopHB()
		s.stopHB = nil
	}
	s.c.SetAnnouncementSink(nil)
}
