package query

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
)

// RegridSpec describes a regrid: aggregate a sparse array's cells into a
// coarser, dense image (Section 3.3: the MODIS workload "regrid[s] the
// sparse data into a coarser, dense image"). Every cell of one time slab
// is binned by dividing its spatial coordinates by the cell factors; bins
// average the attribute.
type RegridSpec struct {
	// Array is the source array (3-D: time × x × y).
	Array string
	// Attr is the attribute averaged into each output pixel.
	Attr string
	// TimeChunk selects the slab to regrid.
	TimeChunk int64
	// FactorX and FactorY are the coarsening factors in cells per output
	// pixel along the two spatial dimensions.
	FactorX, FactorY int64
}

// GridCell is one dense output pixel of a regrid.
type GridCell struct {
	X, Y  int64
	Mean  float64
	Count int64
}

// Regrid executes the spec: every node bins its resident cells locally and
// ships its partial (sum, count) grid to the coordinator, which merges and
// densifies. The output is small (the coarse image), so the operator is
// bandwidth-cheap and parallelises like a group-by; it returns the dense
// image rows in (x, y) order along with the usual accounting.
func Regrid(c *cluster.Cluster, spec RegridSpec) ([]GridCell, Result, error) {
	s, err := schemaOf(c, spec.Array)
	if err != nil {
		return nil, Result{}, err
	}
	if len(s.Dims) != 3 {
		return nil, Result{}, fmt.Errorf("query: Regrid expects a 3-D array, %s has %d dims", spec.Array, len(s.Dims))
	}
	if spec.FactorX < 1 || spec.FactorY < 1 {
		return nil, Result{}, fmt.Errorf("query: regrid factors must be >= 1")
	}
	attrIdx, err := attrIndexes(s, []string{spec.Attr})
	if err != nil {
		return nil, Result{}, err
	}
	type acc struct {
		sum   float64
		count int64
	}
	t := NewTracker(c)
	targets, err := scanTargets(c, spec.Array, func(ch *array.Chunk) bool {
		return ch.Coords[0] == spec.TimeChunk
	})
	if err != nil {
		return nil, Result{}, err
	}
	global := make(map[[2]int64]*acc)
	var cells int64
	for _, ts := range targets {
		local := make(map[[2]int64]*acc)
		for _, ch := range ts.Chunks {
			t.IO(ts.Node, ch.ProjectedSizeBytes(attrIdx))
			t.CPU(ts.Node, int64(ch.Len()))
			col := ch.AttrCols[attrIdx[0]]
			for i := 0; i < ch.Len(); i++ {
				bin := [2]int64{
					floorDiv(ch.DimCols[1][i], spec.FactorX),
					floorDiv(ch.DimCols[2][i], spec.FactorY),
				}
				a, ok := local[bin]
				if !ok {
					a = &acc{}
					local[bin] = a
				}
				a.sum += col.Float64(i)
				a.count++
				cells++
			}
		}
		t.Net(int64(len(local)) * 32) // bin key + sum + count
		for bin, a := range local {
			g, ok := global[bin]
			if !ok {
				g = &acc{}
				global[bin] = g
			}
			g.sum += a.sum
			g.count += a.count
		}
	}
	t.CPU(c.Coordinator(), int64(len(global)))
	out := make([]GridCell, 0, len(global))
	for bin, a := range global {
		out = append(out, GridCell{X: bin[0], Y: bin[1], Mean: a.sum / float64(a.count), Count: a.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	var grand float64
	for _, g := range out {
		grand += g.Mean
	}
	if len(out) > 0 {
		grand /= float64(len(out))
	}
	return out, t.Finish(cells, grand), nil
}

// floorDiv divides rounding toward negative infinity, so negative
// longitudes bin consistently.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
