package query

import (
	"fmt"
	"strings"

	"repro/internal/array"
)

// ErrPartialResult reports that a query could not scan every catalogued
// chunk of an array: the listed chunks are owned by Down nodes and no
// surviving replica holds a copy (always the case at replication factor 1).
// Queries return it instead of a silently smaller answer — the caller
// decides whether a partial scan is acceptable, knowing exactly which
// chunks are missing.
type ErrPartialResult struct {
	// Array is the array whose scan was incomplete.
	Array string
	// Lost lists the unreachable chunks in canonical order.
	Lost []array.ChunkRef
}

func (e *ErrPartialResult) Error() string {
	refs := make([]string, 0, len(e.Lost))
	for _, ref := range e.Lost {
		refs = append(refs, ref.String())
	}
	return fmt.Sprintf("query: partial result for %s: %d chunk(s) unreachable with no surviving replica: %s",
		e.Array, len(e.Lost), strings.Join(refs, ", "))
}
