package query

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/cluster"
)

// SuiteResult aggregates one execution of a use case's benchmark: the
// conventional Select-Project-Join queries and the science analytics,
// with the per-query breakdown for the figures.
type SuiteResult struct {
	SPJ      cluster.Duration
	Science  cluster.Duration
	PerQuery map[string]Result
}

// Total returns the summed benchmark latency.
func (r SuiteResult) Total() cluster.Duration { return r.SPJ + r.Science }

// MODISSuite runs the six MODIS benchmark queries of Section 3.3 against
// the cluster as of the given workload cycle (0-based; the cycle index is
// also the most recent time-chunk index).
//
//	Selection:  1/16 of lat/long space at the lower-left corner of Band1.
//	Sort:       median radiance from a uniform random sample (parallel sort).
//	Join:       vegetation index over the most recent day (Band1 ⋈ Band2).
//	Statistics: rolling average of polar light levels over the last 3 days.
//	Modeling:   k-means over the Amazon region's cells.
//	Projection: windowed aggregate of the most recent day.
func MODISSuite(c *cluster.Cluster, cycle int) (SuiteResult, error) {
	s, err := schemaOf(c, "Band1")
	if err != nil {
		return SuiteResult{}, err
	}
	maxTime := int64(cycle+1)*s.Dims[0].ChunkInterval - 1
	out := SuiteResult{PerQuery: make(map[string]Result)}

	// Selection: the lower-left 1/16th (a quarter of each spatial dim).
	sel := FullRegion(s, maxTime)
	sel.Hi[1] = s.Dims[1].Start + s.Dims[1].Extent()/4 - 1
	sel.Hi[2] = s.Dims[2].Start + s.Dims[2].Extent()/4 - 1
	r, err := SelectRegion(c, "Band1", sel, []string{"radiance"})
	if err != nil {
		return out, fmt.Errorf("modis selection: %w", err)
	}
	out.PerQuery["selection"] = r
	out.SPJ += r.Elapsed

	r, err = Quantile(c, "Band1", "radiance", 0.5, 0.1)
	if err != nil {
		return out, fmt.Errorf("modis sort: %w", err)
	}
	out.PerQuery["sort"] = r
	out.SPJ += r.Elapsed

	r, err = JoinBands(c, "Band1", "Band2", "radiance", int64(cycle))
	if err != nil {
		return out, fmt.Errorf("modis join: %w", err)
	}
	out.PerQuery["join"] = r
	out.SPJ += r.Elapsed

	// Statistics: polar caps, last three days, grouped by day.
	timeLo := int64(0)
	if cycle >= 2 {
		timeLo = int64(cycle-2) * s.Dims[0].ChunkInterval
	}
	north := FullRegion(s, maxTime)
	north.Lo[0] = timeLo
	north.Lo[2] = 66 // above the arctic circle
	south := FullRegion(s, maxTime)
	south.Lo[0] = timeLo
	south.Hi[2] = -67
	r, err = GroupByAggregate(c, GroupBySpec{
		Array:      "Band1",
		Regions:    []Region{north, south},
		GroupDims:  []int{0},
		GroupScale: []int64{s.Dims[0].ChunkInterval},
		Attr:       "radiance",
	})
	if err != nil {
		return out, fmt.Errorf("modis statistics: %w", err)
	}
	out.PerQuery["statistics"] = r
	out.Science += r.Elapsed

	// Modeling: k-means over the Amazon basin (all days so far).
	amazon := FullRegion(s, maxTime)
	amazon.Lo[1], amazon.Hi[1] = -78, -44
	amazon.Lo[2], amazon.Hi[2] = -20, 6
	r, err = KMeans(c, "Band1", "radiance", amazon, 4, 4)
	if err != nil {
		return out, fmt.Errorf("modis modeling: %w", err)
	}
	out.PerQuery["modeling"] = r
	out.Science += r.Elapsed

	r, err = WindowAggregate(c, "Band1", "radiance", int64(cycle), 2)
	if err != nil {
		return out, fmt.Errorf("modis projection: %w", err)
	}
	out.PerQuery["projection"] = r
	out.Science += r.Elapsed
	return out, nil
}

// AISSuite runs the six AIS benchmark queries of Section 3.3 against the
// cluster as of the given workload cycle.
//
//	Selection:  the densest port area (the paper's Houston filter).
//	Sort:       sorted log of distinct ship identifiers.
//	Join:       Broadcast ⋈ Vessel (replicated) over the newest slab.
//	Statistics: coarse map of moving-ship track counts.
//	Modeling:   k-nearest-neighbours for a sample of ships.
//	Projection: collision prediction from recent trajectories.
func AISSuite(c *cluster.Cluster, cycle int) (SuiteResult, error) {
	s, err := schemaOf(c, "Broadcast")
	if err != nil {
		return SuiteResult{}, err
	}
	maxTime := int64(cycle+1)*s.Dims[0].ChunkInterval - 1
	out := SuiteResult{PerQuery: make(map[string]Result)}

	// Selection: bounding box of the densest chunk in the newest slab —
	// the port of Houston stand-in.
	port, err := densestChunk(c, "Broadcast", int64(cycle))
	if err != nil {
		return out, err
	}
	lo, hi := s.ChunkBounds(port)
	sel := FullRegion(s, maxTime)
	sel.Lo[1], sel.Hi[1] = lo[1], hi[1]
	sel.Lo[2], sel.Hi[2] = lo[2], hi[2]
	r, err := SelectRegion(c, "Broadcast", sel, []string{"speed", "ship_id"})
	if err != nil {
		return out, fmt.Errorf("ais selection: %w", err)
	}
	out.PerQuery["selection"] = r
	out.SPJ += r.Elapsed

	r, err = DistinctSorted(c, "Broadcast", "ship_id")
	if err != nil {
		return out, fmt.Errorf("ais sort: %w", err)
	}
	out.PerQuery["sort"] = r
	out.SPJ += r.Elapsed

	r, err = JoinReplicated(c, "Broadcast", "ship_id", "Vessel", int64(cycle))
	if err != nil {
		return out, fmt.Errorf("ais join: %w", err)
	}
	out.PerQuery["join"] = r
	out.SPJ += r.Elapsed

	// Statistics: moving-ship counts on a coarse 2×2-chunk grid.
	r, err = GroupByAggregate(c, GroupBySpec{
		Array:      "Broadcast",
		GroupDims:  []int{1, 2},
		GroupScale: []int64{2 * s.Dims[1].ChunkInterval, 2 * s.Dims[2].ChunkInterval},
		FilterAttr: "speed",
		FilterMin:  1,
	})
	if err != nil {
		return out, fmt.Errorf("ais statistics: %w", err)
	}
	out.PerQuery["statistics"] = r
	out.Science += r.Elapsed

	r, err = KNN(c, "Broadcast", int64(cycle), 40, 8)
	if err != nil {
		return out, fmt.Errorf("ais modeling: %w", err)
	}
	out.PerQuery["modeling"] = r
	out.Science += r.Elapsed

	r, err = CollisionProjection(c, "Broadcast", int64(cycle), 15, 1.5)
	if err != nil {
		return out, fmt.Errorf("ais projection: %w", err)
	}
	out.PerQuery["projection"] = r
	out.Science += r.Elapsed
	return out, nil
}

// densestChunk returns the coordinates of the largest chunk of the array
// in the given time slab. The scan goes through scanTargets so a degraded
// cluster considers failed-over replicas too; the selection itself is
// order-independent (size, then canonical coordinates break ties).
func densestChunk(c *cluster.Cluster, arrayName string, timeChunk int64) (array.ChunkCoord, error) {
	targets, err := scanTargets(c, arrayName, func(ch *array.Chunk) bool {
		return ch.Coords[0] == timeChunk
	})
	if err != nil {
		return nil, err
	}
	var best array.ChunkCoord
	var bestSize int64 = -1
	for _, ts := range targets {
		for _, ch := range ts.Chunks {
			size := ch.SizeBytes()
			if size > bestSize || (size == bestSize && ch.Coords.Less(best)) {
				best, bestSize = ch.Coords.Clone(), size
			}
		}
	}
	if bestSize < 0 {
		return nil, fmt.Errorf("query: no chunks of %s in time slab %d", arrayName, timeChunk)
	}
	return best, nil
}
