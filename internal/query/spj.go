package query

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/stats"
)

// SelectRegion runs the benchmark's Selection query: scan the array's
// chunks intersecting the region on whichever nodes hold them, filter
// per-cell, and count the qualifying cells. The operator is embarrassingly
// parallel, so its latency is the slowest node's scan — directly exposing
// storage (im)balance, which is what the paper's MODIS corner selection and
// AIS Houston-port selection measure.
func SelectRegion(c *cluster.Cluster, arrayName string, region Region, attrs []string) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if err := region.Validate(s); err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, attrs)
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	targets, err := scanTargets(c, arrayName, func(ch *array.Chunk) bool {
		return region.IntersectsChunk(s, ch.Coords)
	})
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) (int64, error) {
		var matched int64
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(attrIdx))
			w.CPU(ts.Node, int64(ch.Len()))
			if region.ContainsChunk(s, ch.Coords) {
				matched += int64(ch.Len())
				continue
			}
			matched += int64(len(ch.Filter(region.ContainsCell)))
		}
		return matched, nil
	})
	if err != nil {
		return Result{}, err
	}
	var matched int64
	for _, m := range parts {
		matched += m
	}
	return t.Finish(matched, float64(matched)), nil
}

// sampler is a splitmix64 stream: a stateless-seed PRNG cheap enough to
// reseed once per chunk (unlike math/rand's 607-word lagged-Fibonacci
// state, whose per-chunk seeding would dominate the scan).
type sampler uint64

// next returns the next uniform draw in [0, 1).
func (s *sampler) next() float64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Quantile runs the benchmark's Sort query for MODIS: estimate the q-th
// quantile of an attribute from a uniform random sample — a parallelized
// sort. Every node scans its chunks, samples locally, and ships the sample
// to the coordinator, which sorts and interpolates. The sampler is seeded
// per chunk (by the chunk's key), so the drawn sample is identical at
// every parallelism level and under every placement — including a
// degraded cluster serving chunks from failed-over replicas.
func Quantile(c *cluster.Cluster, arrayName, attr string, q, sampleFrac float64) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		return Result{}, fmt.Errorf("query: sample fraction %v outside (0,1]", sampleFrac)
	}
	t := NewTracker(c)
	coord := c.Coordinator()
	targets, err := scanTargets(c, arrayName, nil)
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) ([]float64, error) {
		var local []float64
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(attrIdx))
			w.CPU(ts.Node, int64(ch.Len()))
			rng := sampler(ch.Key().Hash())
			col := ch.AttrCols[attrIdx[0]]
			for i := 0; i < col.Len(); i++ {
				if rng.next() < sampleFrac {
					local = append(local, col.Float64(i))
				}
			}
		}
		w.Net(int64(len(local)) * 8) // ship the sample to the coordinator
		return local, nil
	})
	if err != nil {
		return Result{}, err
	}
	var sample []float64
	for _, local := range parts {
		sample = append(sample, local...)
	}
	if len(sample) == 0 {
		return Result{}, fmt.Errorf("query: empty sample for quantile over %s.%s", arrayName, attr)
	}
	t.CPU(coord, int64(len(sample))) // coordinator-side sort
	v, err := stats.Quantile(sample, q)
	if err != nil {
		return Result{}, err
	}
	return t.Finish(int64(len(sample)), v), nil
}

// DistinctSorted runs the benchmark's Sort query for AIS: a sorted log of
// the distinct values of an attribute (ship identifiers). Nodes compute
// local distinct sets, ship them to the coordinator, which merges and
// sorts.
func DistinctSorted(c *cluster.Cluster, arrayName, attr string) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	coord := c.Coordinator()
	targets, err := scanTargets(c, arrayName, nil)
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) (map[int64]bool, error) {
		local := make(map[int64]bool)
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(attrIdx))
			w.CPU(ts.Node, int64(ch.Len()))
			col, ok := ch.AttrCols[attrIdx[0]].(*array.IntColumn)
			if !ok {
				return nil, fmt.Errorf("query: DistinctSorted needs an integer attribute, %s.%s is %v", arrayName, attr, s.Attrs[attrIdx[0]].Type)
			}
			for _, v := range col.Vals {
				local[v] = true
			}
		}
		w.Net(int64(len(local)) * 8)
		return local, nil
	})
	if err != nil {
		return Result{}, err
	}
	global := make(map[int64]bool)
	for _, local := range parts {
		for v := range local {
			global[v] = true
		}
	}
	t.CPU(coord, int64(len(global)))
	sorted := make([]int64, 0, len(global))
	for v := range global {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var first float64
	if len(sorted) > 0 {
		first = float64(sorted[0])
	}
	return t.Finish(int64(len(sorted)), first), nil
}

// JoinBands runs the MODIS Join benchmark: a structural join of the two
// bands at equal array positions over one time slab (the most recent day),
// computing the normalized difference vegetation index
// (b2−b1)/(b2+b1) per matched cell. Chunks of the two bands at the same
// grid position must meet: when they live on different nodes the smaller
// side ships to the larger's host — which is why partitioners that scatter
// the joined day over one or two hosts (Append) are erratic here (Fig 6).
func JoinBands(c *cluster.Cluster, left, right, attr string, timeChunk int64) (Result, error) {
	ls, err := schemaOf(c, left)
	if err != nil {
		return Result{}, err
	}
	rs, err := schemaOf(c, right)
	if err != nil {
		return Result{}, err
	}
	lAttr, err := attrIndexes(ls, []string{attr})
	if err != nil {
		return Result{}, err
	}
	rAttr, err := attrIndexes(rs, []string{attr})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	// Per-chunk partials, merged in canonical chunk order: the float fold
	// must not depend on which node served which chunk, or a degraded run
	// (replica failover) would drift from the healthy baseline.
	type chunkJoin struct {
		key     array.ChunkKey
		matches int64
		ndviSum float64
	}
	targets, err := scanTargets(c, left, func(ch *array.Chunk) bool {
		return ch.Coords[0] == timeChunk
	})
	if err != nil {
		return Result{}, err
	}
	wireReads := c.WireReads()
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) ([]chunkJoin, error) {
		out := make([]chunkJoin, 0, len(ts.Chunks))
		for _, lch := range ts.Chunks {
			rref := array.ChunkRef{Array: right, Coords: lch.Coords}
			rOwner, ok := c.Owner(array.MakeChunkKey(rs.ID(), lch.Key().Coord()))
			if !ok {
				continue // no matching chunk in the right band
			}
			// Read the right side where it is served — its owner, or a
			// surviving replica when the owner is Down.
			rch, rHome, err := residentChunk(c, rref, rOwner)
			if err != nil {
				return nil, err
			}
			rOwner = rHome
			// Scan both sides where they live.
			w.IO(ts.Node, lch.ProjectedSizeBytes(lAttr))
			w.IO(rOwner, rch.ProjectedSizeBytes(rAttr))
			// Collocate: ship the smaller side if they differ. With a
			// remote transport underneath, the shipped side actually
			// crosses the wire — the receiving node fetches it through the
			// transport and joins the decoded copy, which is byte-identical
			// to the resident chunk, so results and charges are unchanged.
			execNode := ts.Node
			if rOwner != ts.Node {
				lb, rb := lch.ProjectedSizeBytes(lAttr), rch.ProjectedSizeBytes(rAttr)
				if lb < rb {
					w.Net(lb)
					execNode = rOwner
					if wireReads {
						if lch, err = c.FetchChunk(rOwner, ts.Node, lch.Ref()); err != nil {
							return nil, fmt.Errorf("query: join ship %s to node %d: %w", rref, rOwner, err)
						}
					}
				} else {
					w.Net(rb)
					if wireReads {
						if rch, err = c.FetchChunk(ts.Node, rOwner, rref); err != nil {
							return nil, fmt.Errorf("query: join ship %s to node %d: %w", rref, ts.Node, err)
						}
					}
				}
			}
			w.CPU(execNode, int64(lch.Len()+rch.Len()))
			m, sum := structuralJoinNDVI(lch, rch, lAttr[0], rAttr[0])
			out = append(out, chunkJoin{key: lch.Key(), matches: m, ndviSum: sum})
		}
		return out, nil
	})
	if err != nil {
		return Result{}, err
	}
	var flat []chunkJoin
	for _, p := range parts {
		flat = append(flat, p...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key.Less(flat[j].key) })
	var matches int64
	var ndviSum float64
	for _, p := range flat {
		matches += p.matches
		ndviSum += p.ndviSum
	}
	mean := 0.0
	if matches > 0 {
		mean = ndviSum / float64(matches)
	}
	return t.Finish(matches, mean), nil
}

// structuralJoinNDVI hash-joins two chunks on cell coordinates and folds
// the vegetation index of each matched cell.
func structuralJoinNDVI(lch, rch *array.Chunk, lAttr, rAttr int) (int64, float64) {
	type key [3]int64
	index := make(map[key]int, lch.Len())
	for i := 0; i < lch.Len(); i++ {
		var k key
		for d := 0; d < len(lch.DimCols) && d < 3; d++ {
			k[d] = lch.DimCols[d][i]
		}
		index[k] = i
	}
	var matches int64
	var sum float64
	lcol := lch.AttrCols[lAttr]
	rcol := rch.AttrCols[rAttr]
	for j := 0; j < rch.Len(); j++ {
		var k key
		for d := 0; d < len(rch.DimCols) && d < 3; d++ {
			k[d] = rch.DimCols[d][j]
		}
		i, ok := index[k]
		if !ok {
			continue
		}
		b1, b2 := lcol.Float64(i), rcol.Float64(j)
		if b1+b2 != 0 {
			sum += (b2 - b1) / (b2 + b1)
		}
		matches++
	}
	return matches, sum
}

// JoinReplicated runs the AIS Join benchmark: Broadcast ⋈ Vessel on
// ship_id over one time slab. The vessel array is replicated on every
// node, so the join is local everywhere — no shuffling, pure parallel scan
// — and the latency is again the most loaded node's.
func JoinReplicated(c *cluster.Cluster, factArray, factKey, dimArray string, timeChunk int64) (Result, error) {
	fs, err := schemaOf(c, factArray)
	if err != nil {
		return Result{}, err
	}
	keyIdx, err := attrIndexes(fs, []string{factKey})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	type repPart struct {
		joined  int64
		typeSum float64
	}
	targets, err := scanTargets(c, factArray, func(ch *array.Chunk) bool {
		return ch.Coords[0] == timeChunk
	})
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) (repPart, error) {
		node, _ := c.Node(ts.Node)
		var dim *array.Chunk
		for _, r := range node.Replicas() {
			if r.Schema.Name == dimArray {
				dim = r
				break
			}
		}
		if dim == nil {
			return repPart{}, fmt.Errorf("query: node %d is missing replica of %s", ts.Node, dimArray)
		}
		var p repPart
		// Build the dimension hash table once per node.
		dimIdx := make(map[int64]int, dim.Len())
		for i := 0; i < dim.Len(); i++ {
			dimIdx[dim.DimCols[0][i]] = i
		}
		charged := false
		for _, ch := range ts.Chunks {
			if !charged {
				w.IO(ts.Node, dim.SizeBytes()) // one local read of the replica
				w.CPU(ts.Node, int64(dim.Len()))
				charged = true
			}
			w.IO(ts.Node, ch.ProjectedSizeBytes(keyIdx))
			w.CPU(ts.Node, int64(ch.Len()))
			keys, ok := ch.AttrCols[keyIdx[0]].(*array.IntColumn)
			if !ok {
				return repPart{}, fmt.Errorf("query: join key %s.%s must be integer", factArray, factKey)
			}
			for _, ship := range keys.Vals {
				if di, ok := dimIdx[ship]; ok {
					p.joined++
					p.typeSum += dim.AttrCols[0].Float64(di)
				}
			}
		}
		return p, nil
	})
	if err != nil {
		return Result{}, err
	}
	var joined int64
	var typeSum float64
	for _, p := range parts {
		joined += p.joined
		typeSum += p.typeSum
	}
	mean := 0.0
	if joined > 0 {
		mean = typeSum / float64(joined)
	}
	return t.Finish(joined, mean), nil
}
