package query

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/stats"
)

// SelectRegion runs the benchmark's Selection query: scan the array's
// chunks intersecting the region on whichever nodes hold them, filter
// per-cell, and count the qualifying cells. The operator is embarrassingly
// parallel, so its latency is the slowest node's scan — directly exposing
// storage (im)balance, which is what the paper's MODIS corner selection and
// AIS Houston-port selection measure.
func SelectRegion(c *cluster.Cluster, arrayName string, region Region, attrs []string) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if err := region.Validate(s); err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, attrs)
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	var matched int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range chunksOfArray(node, arrayName) {
			if !region.IntersectsChunk(s, ch.Coords) {
				continue
			}
			t.IO(id, ch.ProjectedSizeBytes(attrIdx))
			t.CPU(id, int64(ch.Len()))
			if region.ContainsChunk(s, ch.Coords) {
				matched += int64(ch.Len())
				continue
			}
			matched += int64(len(ch.Filter(region.ContainsCell)))
		}
	}
	return t.Finish(matched, float64(matched)), nil
}

// Quantile runs the benchmark's Sort query for MODIS: estimate the q-th
// quantile of an attribute from a uniform random sample — a parallelized
// sort. Every node scans its chunks, samples locally, and ships the sample
// to the coordinator, which sorts and interpolates.
func Quantile(c *cluster.Cluster, arrayName, attr string, q, sampleFrac float64) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		return Result{}, fmt.Errorf("query: sample fraction %v outside (0,1]", sampleFrac)
	}
	t := NewTracker(c)
	var sample []float64
	coord := c.Coordinator()
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
		var local []float64
		for _, ch := range chunksOfArray(node, arrayName) {
			t.IO(id, ch.ProjectedSizeBytes(attrIdx))
			t.CPU(id, int64(ch.Len()))
			col := ch.AttrCols[attrIdx[0]]
			for i := 0; i < col.Len(); i++ {
				if rng.Float64() < sampleFrac {
					local = append(local, col.Float64(i))
				}
			}
		}
		t.Net(int64(len(local)) * 8) // ship the sample to the coordinator
		sample = append(sample, local...)
	}
	if len(sample) == 0 {
		return Result{}, fmt.Errorf("query: empty sample for quantile over %s.%s", arrayName, attr)
	}
	t.CPU(coord, int64(len(sample))) // coordinator-side sort
	v, err := stats.Quantile(sample, q)
	if err != nil {
		return Result{}, err
	}
	return t.Finish(int64(len(sample)), v), nil
}

// DistinctSorted runs the benchmark's Sort query for AIS: a sorted log of
// the distinct values of an attribute (ship identifiers). Nodes compute
// local distinct sets, ship them to the coordinator, which merges and
// sorts.
func DistinctSorted(c *cluster.Cluster, arrayName, attr string) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	coord := c.Coordinator()
	global := make(map[int64]bool)
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		local := make(map[int64]bool)
		for _, ch := range chunksOfArray(node, arrayName) {
			t.IO(id, ch.ProjectedSizeBytes(attrIdx))
			t.CPU(id, int64(ch.Len()))
			col, ok := ch.AttrCols[attrIdx[0]].(*array.IntColumn)
			if !ok {
				return Result{}, fmt.Errorf("query: DistinctSorted needs an integer attribute, %s.%s is %v", arrayName, attr, s.Attrs[attrIdx[0]].Type)
			}
			for _, v := range col.Vals {
				local[v] = true
			}
		}
		t.Net(int64(len(local)) * 8)
		for v := range local {
			global[v] = true
		}
	}
	t.CPU(coord, int64(len(global)))
	sorted := make([]int64, 0, len(global))
	for v := range global {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var first float64
	if len(sorted) > 0 {
		first = float64(sorted[0])
	}
	return t.Finish(int64(len(sorted)), first), nil
}

// JoinBands runs the MODIS Join benchmark: a structural join of the two
// bands at equal array positions over one time slab (the most recent day),
// computing the normalized difference vegetation index
// (b2−b1)/(b2+b1) per matched cell. Chunks of the two bands at the same
// grid position must meet: when they live on different nodes the smaller
// side ships to the larger's host — which is why partitioners that scatter
// the joined day over one or two hosts (Append) are erratic here (Fig 6).
func JoinBands(c *cluster.Cluster, left, right, attr string, timeChunk int64) (Result, error) {
	ls, err := schemaOf(c, left)
	if err != nil {
		return Result{}, err
	}
	rs, err := schemaOf(c, right)
	if err != nil {
		return Result{}, err
	}
	lAttr, err := attrIndexes(ls, []string{attr})
	if err != nil {
		return Result{}, err
	}
	rAttr, err := attrIndexes(rs, []string{attr})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	var matches int64
	var ndviSum float64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, lch := range chunksOfArray(node, left) {
			if lch.Coords[0] != timeChunk {
				continue
			}
			rref := array.ChunkRef{Array: right, Coords: lch.Coords}
			rOwner, ok := c.Owner(array.MakeChunkKey(rs.ID(), lch.Key().Coord()))
			if !ok {
				continue // no matching chunk in the right band
			}
			rNode, _ := c.Node(rOwner)
			rch, ok := rNode.Chunk(rref)
			if !ok {
				return Result{}, fmt.Errorf("query: catalog places %s on node %d but it is missing", rref, rOwner)
			}
			// Scan both sides where they live.
			t.IO(id, lch.ProjectedSizeBytes(lAttr))
			t.IO(rOwner, rch.ProjectedSizeBytes(rAttr))
			// Collocate: ship the smaller side if they differ.
			execNode := id
			if rOwner != id {
				lb, rb := lch.ProjectedSizeBytes(lAttr), rch.ProjectedSizeBytes(rAttr)
				if lb < rb {
					t.Net(lb)
					execNode = rOwner
				} else {
					t.Net(rb)
				}
			}
			t.CPU(execNode, int64(lch.Len()+rch.Len()))
			m, sum := structuralJoinNDVI(lch, rch, lAttr[0], rAttr[0])
			matches += m
			ndviSum += sum
		}
	}
	mean := 0.0
	if matches > 0 {
		mean = ndviSum / float64(matches)
	}
	return t.Finish(matches, mean), nil
}

// structuralJoinNDVI hash-joins two chunks on cell coordinates and folds
// the vegetation index of each matched cell.
func structuralJoinNDVI(lch, rch *array.Chunk, lAttr, rAttr int) (int64, float64) {
	type key [3]int64
	index := make(map[key]int, lch.Len())
	for i := 0; i < lch.Len(); i++ {
		var k key
		for d := 0; d < len(lch.DimCols) && d < 3; d++ {
			k[d] = lch.DimCols[d][i]
		}
		index[k] = i
	}
	var matches int64
	var sum float64
	lcol := lch.AttrCols[lAttr]
	rcol := rch.AttrCols[rAttr]
	for j := 0; j < rch.Len(); j++ {
		var k key
		for d := 0; d < len(rch.DimCols) && d < 3; d++ {
			k[d] = rch.DimCols[d][j]
		}
		i, ok := index[k]
		if !ok {
			continue
		}
		b1, b2 := lcol.Float64(i), rcol.Float64(j)
		if b1+b2 != 0 {
			sum += (b2 - b1) / (b2 + b1)
		}
		matches++
	}
	return matches, sum
}

// JoinReplicated runs the AIS Join benchmark: Broadcast ⋈ Vessel on
// ship_id over one time slab. The vessel array is replicated on every
// node, so the join is local everywhere — no shuffling, pure parallel scan
// — and the latency is again the most loaded node's.
func JoinReplicated(c *cluster.Cluster, factArray, factKey, dimArray string, timeChunk int64) (Result, error) {
	fs, err := schemaOf(c, factArray)
	if err != nil {
		return Result{}, err
	}
	keyIdx, err := attrIndexes(fs, []string{factKey})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	var joined int64
	var typeSum float64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		reps := node.Replicas()
		var dim *array.Chunk
		for _, r := range reps {
			if r.Schema.Name == dimArray {
				dim = r
				break
			}
		}
		if dim == nil {
			return Result{}, fmt.Errorf("query: node %d is missing replica of %s", id, dimArray)
		}
		// Build the dimension hash table once per node.
		dimIdx := make(map[int64]int, dim.Len())
		for i := 0; i < dim.Len(); i++ {
			dimIdx[dim.DimCols[0][i]] = i
		}
		charged := false
		for _, ch := range chunksOfArray(node, factArray) {
			if ch.Coords[0] != timeChunk {
				continue
			}
			if !charged {
				t.IO(id, dim.SizeBytes()) // one local read of the replica
				t.CPU(id, int64(dim.Len()))
				charged = true
			}
			t.IO(id, ch.ProjectedSizeBytes(keyIdx))
			t.CPU(id, int64(ch.Len()))
			keys, ok := ch.AttrCols[keyIdx[0]].(*array.IntColumn)
			if !ok {
				return Result{}, fmt.Errorf("query: join key %s.%s must be integer", factArray, factKey)
			}
			for _, ship := range keys.Vals {
				if di, ok := dimIdx[ship]; ok {
					joined++
					typeSum += dim.AttrCols[0].Float64(di)
				}
			}
		}
	}
	mean := 0.0
	if joined > 0 {
		mean = typeSum / float64(joined)
	}
	return t.Finish(joined, mean), nil
}
