package query

import (
	"fmt"

	"repro/internal/array"
)

// Region is an axis-aligned box in cell space, bounds inclusive, used by
// selections and group-by restrictions. A dimension with Lo > Hi is
// malformed; use the full declared range to mean "no restriction".
type Region struct {
	Lo, Hi array.Coord
}

// FullRegion covers the schema's entire declared space (unbounded
// dimensions are capped at maxTime, the caller's data horizon).
func FullRegion(s *array.Schema, maxTime int64) Region {
	lo := make(array.Coord, len(s.Dims))
	hi := make(array.Coord, len(s.Dims))
	for i, d := range s.Dims {
		lo[i] = d.Start
		if d.Bounded() {
			hi[i] = d.End
		} else {
			hi[i] = maxTime
		}
	}
	return Region{Lo: lo, Hi: hi}
}

// Validate rejects malformed regions.
func (r Region) Validate(s *array.Schema) error {
	if len(r.Lo) != len(s.Dims) || len(r.Hi) != len(s.Dims) {
		return fmt.Errorf("query: region arity %d/%d does not match schema %s (%d dims)", len(r.Lo), len(r.Hi), s.Name, len(s.Dims))
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return fmt.Errorf("query: region dim %d inverted [%d,%d]", i, r.Lo[i], r.Hi[i])
		}
	}
	return nil
}

// ContainsCell reports whether the cell lies inside the region.
func (r Region) ContainsCell(cell array.Coord) bool {
	for i := range cell {
		if cell[i] < r.Lo[i] || cell[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// IntersectsChunk reports whether any cell of the chunk can lie inside the
// region (bounding-box test, used for chunk pruning before scanning).
func (r Region) IntersectsChunk(s *array.Schema, cc array.ChunkCoord) bool {
	lo, hi := s.ChunkBounds(cc)
	for i := range lo {
		if hi[i] < r.Lo[i] || lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsChunk reports whether the chunk's full extent lies inside the
// region (such chunks need no per-cell filtering).
func (r Region) ContainsChunk(s *array.Schema, cc array.ChunkCoord) bool {
	lo, hi := s.ChunkBounds(cc)
	for i := range lo {
		if lo[i] < r.Lo[i] || hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}
