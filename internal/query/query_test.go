package query

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/workload"
)

// buildMODIS ingests a small MODIS workload under the given partitioner
// and returns the cluster plus the last completed cycle index.
func buildMODIS(t *testing.T, kind string, cycles int) (*cluster.Cluster, int) {
	t.Helper()
	gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: cycles, BaseCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	return buildCluster(t, gen, kind), cycles - 1
}

func buildAIS(t *testing.T, kind string, cycles int) (*cluster.Cluster, int) {
	t.Helper()
	gen, err := workload.NewAIS(workload.AISConfig{Cycles: cycles, CellsPerCycle: 2500})
	if err != nil {
		t.Fatal(err)
	}
	return buildCluster(t, gen, kind), cycles - 1
}

// buildCluster drives the cyclic workload (a minimal stand-in for the
// core engine, which cannot be imported here without a cycle): scale out
// by 2 whenever the incoming insert exceeds capacity, capped at 8 nodes.
func buildCluster(t testing.TB, gen workload.Generator, kind string) *cluster.Cluster {
	t.Helper()
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		t.Fatal(err)
	}
	capacity := total/6 + 1
	geom := gen.Geometry()
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: capacity,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(kind, initial, geom, partition.Options{NodeCapacity: capacity})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gen.Schemas() {
		if err := c.DefineArray(s); err != nil {
			t.Fatal(err)
		}
	}
	if rs, rchunks := gen.Replicated(); rs != nil {
		if _, err := c.ReplicateArray(rs, rchunks); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < gen.Cycles(); cycle++ {
		batch, err := gen.Batch(cycle)
		if err != nil {
			t.Fatal(err)
		}
		demand := c.TotalBytes() + workload.BatchBytes(batch)
		if demand > c.Capacity() && c.NumNodes() < 8 {
			k := 2
			if c.NumNodes()+k > 8 {
				k = 8 - c.NumNodes()
			}
			if _, err := c.ScaleOut(k); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelectRegionMatchesBruteForce(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 3)
	s, _ := c.Schema("Band1")
	region := FullRegion(s, 3*1440-1)
	region.Hi[1] = -91
	region.Hi[2] = -46
	res, err := SelectRegion(c, "Band1", region, []string{"radiance"})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over every chunk on every node.
	var want int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			if ch.Schema.Name != "Band1" {
				continue
			}
			want += int64(len(ch.Filter(region.ContainsCell)))
		}
	}
	if res.Cells != want {
		t.Errorf("SelectRegion = %d cells, brute force %d", res.Cells, want)
	}
	if want == 0 {
		t.Fatal("selection region should not be empty")
	}
	if res.Elapsed <= 0 || res.BytesScanned == 0 {
		t.Error("selection must account time and bytes")
	}
	if res.BytesShuffled != 0 {
		t.Error("selection is node-local; no shuffle expected")
	}
}

func TestSelectRegionErrors(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	s, _ := c.Schema("Band1")
	if _, err := SelectRegion(c, "Nope", FullRegion(s, 10), nil); err == nil {
		t.Error("unknown array should fail")
	}
	bad := FullRegion(s, 10)
	bad.Lo[1], bad.Hi[1] = 5, -5
	if _, err := SelectRegion(c, "Band1", bad, nil); err == nil {
		t.Error("inverted region should fail")
	}
	if _, err := SelectRegion(c, "Band1", FullRegion(s, 10), []string{"zz"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestQuantilePlausible(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 3)
	res, err := Quantile(c, "Band1", "radiance", 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Radiance is ~cos(lat)*120*1.0..1.35 + noise: the median must land
	// well inside (0, 250).
	if res.Value < 10 || res.Value > 250 {
		t.Errorf("median radiance = %v, implausible", res.Value)
	}
	if res.Cells == 0 || res.BytesShuffled == 0 {
		t.Error("quantile must sample and ship cells")
	}
	if _, err := Quantile(c, "Band1", "radiance", 0.5, 0); err == nil {
		t.Error("zero sample fraction should fail")
	}
}

func TestJoinBandsComputesNDVI(t *testing.T) {
	c, last := buildMODIS(t, "consistent", 3)
	res, err := JoinBands(c, "Band1", "Band2", "radiance", int64(last))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells == 0 {
		t.Fatal("bands share positions; the join must match cells")
	}
	// Band2 radiance runs ~35% above Band1, so mean NDVI is positive
	// and below 1.
	if res.Value <= 0 || res.Value >= 1 {
		t.Errorf("mean NDVI = %v, want in (0,1)", res.Value)
	}
}

func TestJoinReplicatedJoinsEverything(t *testing.T) {
	c, last := buildAIS(t, "consistent", 3)
	res, err := JoinReplicated(c, "Broadcast", "ship_id", "Vessel", int64(last))
	if err != nil {
		t.Fatal(err)
	}
	// Every broadcast's ship_id is in the vessel range, so the join
	// yields one row per broadcast in the slab.
	var want int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			if ch.Schema.Name == "Broadcast" && ch.Coords[0] == int64(last) {
				want += int64(ch.Len())
			}
		}
	}
	if res.Cells != want {
		t.Errorf("joined %d rows, want %d", res.Cells, want)
	}
	if res.BytesShuffled != 0 {
		t.Error("replicated join must not shuffle")
	}
}

func TestDistinctSorted(t *testing.T) {
	c, _ := buildAIS(t, "consistent", 3)
	res, err := DistinctSorted(c, "Broadcast", "ship_id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells < 100 || res.Cells > 1500 {
		t.Errorf("distinct ships = %d, want within fleet size", res.Cells)
	}
	if res.Value != 0 {
		t.Errorf("smallest ship id = %v, want 0 (Zipf rank 0 always broadcasts)", res.Value)
	}
	if _, err := DistinctSorted(c, "Broadcast", "receiver_id"); err == nil {
		t.Error("string attribute should be rejected")
	}
}

func TestGroupByAggregateCounts(t *testing.T) {
	c, _ := buildAIS(t, "consistent", 3)
	res, err := GroupByAggregate(c, GroupBySpec{
		Array:      "Broadcast",
		GroupDims:  []int{1, 2},
		GroupScale: []int64{16, 16},
		FilterAttr: "speed",
		FilterMin:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force the moving-cell count.
	var want int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			if ch.Schema.Name != "Broadcast" {
				continue
			}
			speedIdx := ch.Schema.AttrIndex("speed")
			for i := 0; i < ch.Len(); i++ {
				if ch.AttrCols[speedIdx].Float64(i) >= 1 {
					want++
				}
			}
		}
	}
	if res.Cells != want {
		t.Errorf("aggregated %d cells, want %d", res.Cells, want)
	}
	if _, err := GroupByAggregate(c, GroupBySpec{Array: "Broadcast"}); err == nil {
		t.Error("missing group dims should fail")
	}
}

func TestWindowAggregateCoversSlab(t *testing.T) {
	c, last := buildMODIS(t, "kdtree", 3)
	res, err := WindowAggregate(c, "Band1", "radiance", int64(last), 2)
	if err != nil {
		t.Fatal(err)
	}
	var slabCells int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			if ch.Schema.Name == "Band1" && ch.Coords[0] == int64(last) {
				slabCells += int64(ch.Len())
			}
		}
	}
	if res.Cells != slabCells {
		t.Errorf("window outputs %d, want one per slab cell %d", res.Cells, slabCells)
	}
	if res.Value <= 0 || math.IsNaN(res.Value) {
		t.Errorf("window mean = %v", res.Value)
	}
}

func TestWindowHaloShuffleSensitiveToClustering(t *testing.T) {
	// The headline mechanism: a clustered partitioner keeps neighbour
	// chunks local, so the windowed aggregate ships fewer halo bytes
	// than under a scattering hash partitioner.
	shuffled := func(kind string) int64 {
		c, last := buildMODIS(t, kind, 3)
		res, err := WindowAggregate(c, "Band1", "radiance", int64(last), 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesShuffled
	}
	clustered := shuffled("kdtree")
	scattered := shuffled("consistent")
	if clustered >= scattered {
		t.Errorf("kdtree halo bytes %d should beat consistent hash %d", clustered, scattered)
	}
}

func TestKMeansConverges(t *testing.T) {
	c, last := buildMODIS(t, "consistent", 3)
	s, _ := c.Schema("Band1")
	region := FullRegion(s, int64(last+1)*1440-1)
	one, err := KMeans(c, "Band1", "radiance", region, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	six, err := KMeans(c, "Band1", "radiance", region, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if six.Value > one.Value {
		t.Errorf("k-means inertia rose with iterations: %v -> %v", one.Value, six.Value)
	}
	if six.Cells != one.Cells {
		t.Error("same region must yield same cell count")
	}
	if _, err := KMeans(c, "Band1", "radiance", region, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestKNNDeterministicAndPositive(t *testing.T) {
	c, last := buildAIS(t, "kdtree", 3)
	a, err := KNN(c, "Broadcast", int64(last), 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KNN(c, "Broadcast", int64(last), 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Elapsed != b.Elapsed {
		t.Error("KNN must be deterministic")
	}
	if a.Value <= 0 {
		t.Errorf("mean k-th distance = %v, want > 0", a.Value)
	}
	if a.Cells != 20 {
		t.Errorf("ran %d queries, want 20", a.Cells)
	}
}

func TestKNNShuffleSensitiveToClustering(t *testing.T) {
	shuffled := func(kind string) int64 {
		c, last := buildAIS(t, kind, 3)
		res, err := KNN(c, "Broadcast", int64(last), 20, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesShuffled
	}
	clustered := shuffled("kdtree")
	scattered := shuffled("roundrobin")
	if clustered >= scattered {
		t.Errorf("kdtree KNN shuffle %d should beat round robin %d", clustered, scattered)
	}
}

func TestCollisionProjection(t *testing.T) {
	c, last := buildAIS(t, "consistent", 3)
	res, err := CollisionProjection(c, "Broadcast", int64(last), 15, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Ports are dense: some projected positions must collide.
	if res.Cells == 0 {
		t.Error("no candidate collisions in a port-skewed slab is implausible")
	}
	again, err := CollisionProjection(c, "Broadcast", int64(last), 15, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cells != res.Cells {
		t.Error("collision count must be deterministic")
	}
}

func TestMODISSuiteRunsAllQueries(t *testing.T) {
	c, last := buildMODIS(t, "kdtree", 3)
	res, err := MODISSuite(c, last)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"selection", "sort", "join", "statistics", "modeling", "projection"} {
		if _, ok := res.PerQuery[q]; !ok {
			t.Errorf("suite missing query %q", q)
		}
	}
	if res.SPJ <= 0 || res.Science <= 0 {
		t.Error("suite durations must be positive")
	}
	if res.Total() != res.SPJ+res.Science {
		t.Error("Total must sum the halves")
	}
}

func TestAISSuiteRunsAllQueries(t *testing.T) {
	c, last := buildAIS(t, "hilbert", 3)
	res, err := AISSuite(c, last)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"selection", "sort", "join", "statistics", "modeling", "projection"} {
		if _, ok := res.PerQuery[q]; !ok {
			t.Errorf("suite missing query %q", q)
		}
	}
	if res.PerQuery["selection"].Cells == 0 {
		t.Error("port selection should match cells")
	}
}

func TestRegionHelpers(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	s, _ := c.Schema("Band1")
	r := FullRegion(s, 1439)
	if err := r.Validate(s); err != nil {
		t.Fatal(err)
	}
	if !r.ContainsCell([]int64{0, -180, -90}) {
		t.Error("full region must contain the origin")
	}
	if r.ContainsCell([]int64{2000, 0, 0}) {
		t.Error("region must respect the time cap")
	}
	sub := FullRegion(s, 1439)
	sub.Lo[1], sub.Hi[1] = -180, -170
	if !sub.IntersectsChunk(s, []int64{0, 0, 0}) {
		t.Error("first lon chunk intersects the western strip")
	}
	if sub.IntersectsChunk(s, []int64{0, 5, 0}) {
		t.Error("an eastern chunk must not intersect the western strip")
	}
}
