package query

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// GroupBySpec describes a group-by aggregate over dimension space — the
// benchmark's Statistics queries (MODIS: rolling average of polar light
// levels grouped by day; AIS: coarse map of moving-ship track counts).
type GroupBySpec struct {
	// Array is the fact array.
	Array string
	// Regions restrict the aggregated cells (union). Empty means all.
	Regions []Region
	// GroupDims are the dimension indexes to group on.
	GroupDims []int
	// GroupScale coarsens each group dimension: cells per bucket,
	// parallel to GroupDims (1 = exact dimension value).
	GroupScale []int64
	// Attr, when non-empty, is averaged per group; otherwise the
	// aggregate is a count.
	Attr string
	// FilterAttr/FilterMin, when FilterAttr is non-empty, keep only
	// cells whose attribute is >= FilterMin (e.g. speed > 0 for "ships
	// in motion").
	FilterAttr string
	FilterMin  float64
}

// acc is one group's partial aggregate.
type acc struct {
	sum   float64
	count int64
}

// GroupByAggregate executes the spec: every node folds its resident cells
// into partial per-group accumulators, ships the partials to the
// coordinator, and the coordinator merges. Latency is the slowest node's
// scan plus the (small) partial transfer. Node scans run on the executor's
// worker pool; the coordinator merge folds partials in node order and
// reads groups in sorted key order, so the result is identical at every
// parallelism level.
func GroupByAggregate(c *cluster.Cluster, spec GroupBySpec) (Result, error) {
	s, err := schemaOf(c, spec.Array)
	if err != nil {
		return Result{}, err
	}
	if len(spec.GroupDims) == 0 || len(spec.GroupDims) != len(spec.GroupScale) {
		return Result{}, fmt.Errorf("query: group-by needs parallel GroupDims/GroupScale, got %d/%d", len(spec.GroupDims), len(spec.GroupScale))
	}
	if len(spec.GroupDims) > array.MaxKeyDims {
		return Result{}, fmt.Errorf("query: group-by on %d dims, max %d", len(spec.GroupDims), array.MaxKeyDims)
	}
	for i, d := range spec.GroupDims {
		if d < 0 || d >= len(s.Dims) {
			return Result{}, fmt.Errorf("query: group dim %d out of range for %s", d, spec.Array)
		}
		if spec.GroupScale[i] < 1 {
			return Result{}, fmt.Errorf("query: group scale must be >= 1")
		}
	}
	for _, r := range spec.Regions {
		if err := r.Validate(s); err != nil {
			return Result{}, err
		}
	}
	var scanAttrs []int
	aggIdx, filterIdx := -1, -1
	if spec.Attr != "" {
		idx, err := attrIndexes(s, []string{spec.Attr})
		if err != nil {
			return Result{}, err
		}
		aggIdx = idx[0]
		scanAttrs = append(scanAttrs, aggIdx)
	}
	if spec.FilterAttr != "" {
		idx, err := attrIndexes(s, []string{spec.FilterAttr})
		if err != nil {
			return Result{}, err
		}
		filterIdx = idx[0]
		scanAttrs = append(scanAttrs, filterIdx)
	}
	inRegions := func(cell array.Coord) bool {
		if len(spec.Regions) == 0 {
			return true
		}
		for _, r := range spec.Regions {
			if r.ContainsCell(cell) {
				return true
			}
		}
		return false
	}
	t := NewTracker(c)
	// Partials are kept per chunk and merged in canonical chunk order, so
	// the float accumulation per group is identical under every placement —
	// including a degraded cluster serving failed-over replicas. The
	// network charge stays per node: one (key, sum, count) triple per
	// node-local distinct group, as before.
	type chunkAcc struct {
		key   array.ChunkKey
		local map[array.CoordKey]*acc
	}
	type groupPart struct {
		chunks []chunkAcc
		cells  int64
	}
	targets, err := scanTargets(c, spec.Array, func(ch *array.Chunk) bool {
		if len(spec.Regions) == 0 {
			return true
		}
		for _, r := range spec.Regions {
			if r.IntersectsChunk(s, ch.Coords) {
				return true
			}
		}
		return false
	})
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) (groupPart, error) {
		p := groupPart{chunks: make([]chunkAcc, 0, len(ts.Chunks))}
		nodeGroups := make(map[array.CoordKey]bool)
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(scanAttrs))
			w.CPU(ts.Node, int64(ch.Len()))
			local := make(map[array.CoordKey]*acc)
			cell := make(array.Coord, 0, len(s.Dims))
			for i := 0; i < ch.Len(); i++ {
				cell = ch.CellInto(i, cell)
				if !inRegions(cell) {
					continue
				}
				if filterIdx >= 0 && ch.AttrCols[filterIdx].Float64(i) < spec.FilterMin {
					continue
				}
				key := groupKey(cell, spec.GroupDims, spec.GroupScale)
				a, ok := local[key]
				if !ok {
					a = &acc{}
					local[key] = a
				}
				if aggIdx >= 0 {
					a.sum += ch.AttrCols[aggIdx].Float64(i)
				}
				a.count++
				p.cells++
				nodeGroups[key] = true
			}
			if len(local) > 0 {
				p.chunks = append(p.chunks, chunkAcc{key: ch.Key(), local: local})
			}
		}
		w.Net(int64(len(nodeGroups)) * 24) // key + sum + count per group
		return p, nil
	})
	if err != nil {
		return Result{}, err
	}
	var flat []chunkAcc
	var cells int64
	for _, p := range parts {
		cells += p.cells
		flat = append(flat, p.chunks...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key.Less(flat[j].key) })
	global := make(map[array.CoordKey]*acc)
	for _, ca := range flat {
		// Fold each chunk's groups in sorted group order: map iteration
		// order must not leak into the float sums.
		gkeys := make([]array.CoordKey, 0, len(ca.local))
		for k := range ca.local {
			gkeys = append(gkeys, k)
		}
		sort.Slice(gkeys, func(i, j int) bool { return gkeys[i].Less(gkeys[j]) })
		for _, k := range gkeys {
			a := ca.local[k]
			g, ok := global[k]
			if !ok {
				g = &acc{}
				global[k] = g
			}
			g.sum += a.sum
			g.count += a.count
		}
	}
	t.CPU(c.Coordinator(), int64(len(global)))
	// Value: the grand mean of group means (a checkable scalar),
	// accumulated in sorted group order for run-to-run determinism.
	var mean float64
	if len(global) > 0 {
		gkeys := make([]array.CoordKey, 0, len(global))
		for k := range global {
			gkeys = append(gkeys, k)
		}
		sort.Slice(gkeys, func(i, j int) bool { return gkeys[i].Less(gkeys[j]) })
		for _, k := range gkeys {
			a := global[k]
			if spec.Attr != "" && a.count > 0 {
				mean += a.sum / float64(a.count)
			} else {
				mean += float64(a.count)
			}
		}
		mean /= float64(len(global))
	}
	return t.Finish(cells, mean), nil
}

// groupKey buckets a cell into its packed group coordinate. GroupDims never
// exceeds the schema dimensionality, which NewSchema caps at
// array.MaxKeyDims, so the packing always fits.
func groupKey(cell array.Coord, dims []int, scale []int64) array.CoordKey {
	var buf [array.MaxKeyDims]int64
	for i, d := range dims {
		v := cell[d]
		if v >= 0 {
			buf[i] = v / scale[i]
		} else {
			buf[i] = (v - scale[i] + 1) / scale[i] // floor division
		}
	}
	k, err := array.PackCoords(buf[:len(dims)])
	if err != nil {
		panic(err) // dims validated against MaxKeyDims by the caller
	}
	return k
}

// point is a cell projected to the two spatial dimensions plus a value.
type point struct {
	x, y float64
	v    float64
}

// slabEntry is one chunk's worth of a slab gather: its grid position and
// projected points, tagged with the owning node.
type slabEntry struct {
	key  array.CoordKey
	cc   array.ChunkCoord
	home partition.NodeID
	pts  []point
}

// gatherSlab collects, per chunk of the given time slab: the chunk's own
// points and the halo points (cells of spatially neighbouring chunks
// within `radius` of the chunk's bounds). Remote halo cells are charged to
// the network; every touched chunk is charged one scan at its owner. The
// xDim/yDim indexes identify the spatial dimensions; valAttr < 0 loads no
// value column; radius < 0 skips the halo exchange entirely (callers that
// fetch neighbour chunks on demand, like KNN, charge their own transfers).
//
// Both phases run on the scan executor: the projection scan per node, and
// — once every chunk's points are assembled — the halo pull per chunk.
func gatherSlab(c *cluster.Cluster, t *Tracker, s *array.Schema, timeChunk int64, xDim, yDim, valAttr int, radius int64) (map[array.CoordKey][]point, map[array.CoordKey][]point, map[array.CoordKey]partition.NodeID, error) {
	var scanAttrs []int
	if valAttr >= 0 {
		scanAttrs = append(scanAttrs, valAttr)
	}
	cellBytes := int64(len(s.Dims))*8 + 8

	targets, err := scanTargets(c, s.Name, func(ch *array.Chunk) bool {
		return ch.Coords[0] == timeChunk
	})
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := Exec(t, c.Parallelism(), targets, func(w *Tracker, ts NodeScan) ([]slabEntry, error) {
		entries := make([]slabEntry, 0, len(ts.Chunks))
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(scanAttrs))
			entries = append(entries, slabEntry{
				key:  ch.Key().Coord(),
				cc:   ch.Coords,
				home: ts.Node,
				pts:  projectPoints(ch, xDim, yDim, valAttr),
			})
		}
		return entries, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	own := make(map[array.CoordKey][]point)
	halo := make(map[array.CoordKey][]point)
	homes := make(map[array.CoordKey]partition.NodeID)
	var slab []slabEntry
	for _, entries := range parts {
		for _, e := range entries {
			own[e.key] = e.pts
			homes[e.key] = e.home
			slab = append(slab, e)
		}
	}
	if radius < 0 {
		return own, halo, homes, nil
	}
	// Halo exchange: each chunk pulls boundary cells from its spatial
	// neighbours in the same slab. The complete own map is read-only here,
	// and each chunk's halo is an independent result, so the pulls
	// parallelise per chunk. With a remote transport underneath, a pull
	// from another node's chunk actually crosses the wire: the neighbour
	// chunk is re-fetched through the transport and its points projected
	// from the decoded copy — byte-identical to the resident pointer, so
	// results and charges are unchanged.
	wireReads := c.WireReads()
	halos, err := Exec(t, c.Parallelism(), slab, func(w *Tracker, e slabEntry) ([]point, error) {
		var pulled []point
		lo, hi := s.ChunkBounds(e.cc)
		for _, ncc := range spatialNeighbors(s, e.cc, xDim, yDim) {
			nKey := ncc.Packed()
			nPts, ok := own[nKey]
			if !ok {
				continue // neighbour chunk empty / absent
			}
			if wireReads && homes[nKey] != e.home {
				wch, err := c.FetchChunk(e.home, homes[nKey], array.ChunkRef{Array: s.Name, Coords: ncc})
				if err != nil {
					return nil, fmt.Errorf("query: halo fetch %s[%v] from node %d: %w", s.Name, ncc, homes[nKey], err)
				}
				nPts = projectPoints(wch, xDim, yDim, valAttr)
			}
			var n int64
			for _, p := range nPts {
				if p.x >= float64(lo[xDim])-float64(radius) && p.x <= float64(hi[xDim])+float64(radius) &&
					p.y >= float64(lo[yDim])-float64(radius) && p.y <= float64(hi[yDim])+float64(radius) {
					pulled = append(pulled, p)
					n++
				}
			}
			if homes[nKey] != e.home && n > 0 {
				w.Net(n * cellBytes)
			}
		}
		return pulled, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for i, e := range slab {
		if len(halos[i]) > 0 {
			halo[e.key] = halos[i]
		}
	}
	return own, halo, homes, nil
}

// projectPoints projects a chunk's cells onto the two spatial dimensions,
// loading the value column when valAttr >= 0 — the common projection both
// the slab scan and a wire-side halo re-fetch apply.
func projectPoints(ch *array.Chunk, xDim, yDim, valAttr int) []point {
	pts := make([]point, 0, ch.Len())
	for i := 0; i < ch.Len(); i++ {
		var v float64
		if valAttr >= 0 {
			v = ch.AttrCols[valAttr].Float64(i)
		}
		pts = append(pts, point{
			x: float64(ch.DimCols[xDim][i]),
			y: float64(ch.DimCols[yDim][i]),
			v: v,
		})
	}
	return pts
}

// spatialNeighbors lists the slab-internal neighbour chunk coordinates
// (±1 along the two spatial dimensions, including diagonals).
func spatialNeighbors(s *array.Schema, cc array.ChunkCoord, xDim, yDim int) []array.ChunkCoord {
	var out []array.ChunkCoord
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := cc.Clone()
			n[xDim] += dx
			n[yDim] += dy
			if s.ValidChunk(n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// WindowAggregate runs the MODIS Complex Projection benchmark: a windowed
// mean over the most recent day, each output pixel averaging the cells
// within Chebyshev radius `radius` of it — a partially overlapping sample
// space that needs halo cells from neighbouring chunks. When neighbours
// live on other nodes the halo crosses the network, which is exactly why
// n-dimensionally clustered partitioners win this query. The per-chunk
// window computation — the dominant cost — runs on the executor pool, with
// per-chunk partial means folded in sorted chunk order so the float
// reduction is identical at every parallelism level.
func WindowAggregate(c *cluster.Cluster, arrayName, attr string, timeChunk, radius int64) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if len(s.Dims) != 3 {
		return Result{}, fmt.Errorf("query: WindowAggregate expects a 3-D array, %s has %d dims", arrayName, len(s.Dims))
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	if radius < 1 {
		return Result{}, fmt.Errorf("query: window radius must be >= 1")
	}
	t := NewTracker(c)
	own, halo, homes, err := gatherSlab(c, t, s, timeChunk, 1, 2, attrIdx[0], radius)
	if err != nil {
		return Result{}, err
	}
	// Iterate chunks in sorted order: float accumulation must not depend
	// on map iteration order, or results differ run to run.
	ownKeys := make([]array.CoordKey, 0, len(own))
	for key := range own {
		ownKeys = append(ownKeys, key)
	}
	sort.Slice(ownKeys, func(i, j int) bool { return ownKeys[i].Less(ownKeys[j]) })
	type windowPart struct {
		grand   float64
		outputs int64
	}
	parts, err := Exec(t, c.Parallelism(), ownKeys, func(w *Tracker, key array.CoordKey) (windowPart, error) {
		centers := own[key]
		cand := append(append([]point(nil), centers...), halo[key]...)
		w.CPU(homes[key], int64(len(centers))*int64(1+len(cand)/8))
		var p windowPart
		for _, ctr := range centers {
			var sum float64
			var n int
			for _, pt := range cand {
				if math.Abs(pt.x-ctr.x) <= float64(radius) && math.Abs(pt.y-ctr.y) <= float64(radius) {
					sum += pt.v
					n++
				}
			}
			if n > 0 {
				p.grand += sum / float64(n)
				p.outputs++
			}
		}
		return p, nil
	})
	if err != nil {
		return Result{}, err
	}
	var outputs int64
	var grand float64
	for _, p := range parts {
		grand += p.grand
		outputs += p.outputs
	}
	mean := 0.0
	if outputs > 0 {
		mean = grand / float64(outputs)
	}
	return t.Finish(outputs, mean), nil
}

// KMeans runs the MODIS Modeling benchmark: k-means over (longitude,
// latitude, value) of the cells inside the region — the paper clusters the
// Amazon's vegetation index to find deforestation. Assignment and partial
// centroid sums run node-local each iteration — on the executor pool, one
// task per node, partials folded in node order — and only the k centroids
// cross the network between iterations.
func KMeans(c *cluster.Cluster, arrayName, attr string, region Region, k, iters int) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if err := region.Validate(s); err != nil {
		return Result{}, err
	}
	if len(s.Dims) != 3 {
		return Result{}, fmt.Errorf("query: KMeans expects a 3-D array")
	}
	if k < 1 || iters < 1 {
		return Result{}, fmt.Errorf("query: k and iters must be >= 1")
	}
	attrIdx, err := attrIndexes(s, []string{attr})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	par := c.Parallelism()
	// Gather features node-local; IO charged once (iterations hit cache).
	// Points are kept per chunk and the chunk list is sorted canonically,
	// so centroid initialisation and every iteration's float folds are
	// identical under every placement — including a degraded cluster
	// serving failed-over replicas.
	targets, err := scanTargets(c, arrayName, func(ch *array.Chunk) bool {
		return region.IntersectsChunk(s, ch.Coords)
	})
	if err != nil {
		return Result{}, err
	}
	type chunkPts struct {
		key  array.ChunkKey
		home partition.NodeID
		pts  []point
	}
	perNode, err := Exec(t, par, targets, func(w *Tracker, ts NodeScan) ([]chunkPts, error) {
		out := make([]chunkPts, 0, len(ts.Chunks))
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(attrIdx))
			var pts []point
			cell := make(array.Coord, 0, len(s.Dims))
			for i := 0; i < ch.Len(); i++ {
				cell = ch.CellInto(i, cell)
				if !region.ContainsCell(cell) {
					continue
				}
				pts = append(pts, point{
					x: float64(cell[1]),
					y: float64(cell[2]),
					v: ch.AttrCols[attrIdx[0]].Float64(i),
				})
			}
			if len(pts) > 0 {
				out = append(out, chunkPts{key: ch.Key(), home: ts.Node, pts: pts})
			}
		}
		return out, nil
	})
	if err != nil {
		return Result{}, err
	}
	var chunks []chunkPts
	for _, cps := range perNode {
		chunks = append(chunks, cps...)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].key.Less(chunks[j].key) })
	var all []point
	for _, cp := range chunks {
		all = append(all, cp.pts...)
	}
	if len(all) < k {
		return Result{}, fmt.Errorf("query: only %d cells in region, need k=%d", len(all), k)
	}
	// Deterministic init: evenly spaced cells in canonical order.
	centroids := make([]point, k)
	for i := range centroids {
		centroids[i] = all[i*len(all)/k]
	}
	// Iteration work stays node-granular (one Exec item per holder, like
	// the gather), but each node reports one partial per chunk, indexed by
	// the chunk's canonical position, so the coordinator folds them in
	// chunk order regardless of which node computed what.
	type nodeGroup struct {
		home partition.NodeID
		idx  []int // canonical positions of this node's chunks
	}
	byHome := make(map[partition.NodeID]*nodeGroup)
	var groups []*nodeGroup
	for i, cp := range chunks {
		g, ok := byHome[cp.home]
		if !ok {
			g = &nodeGroup{home: cp.home}
			byHome[cp.home] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}
	type kmPart struct {
		idx     int
		sums    []point
		counts  []int64
		inertia float64
	}
	var inertia float64
	for it := 0; it < iters; it++ {
		parts, err := Exec(t, par, groups, func(w *Tracker, g *nodeGroup) ([]kmPart, error) {
			out := make([]kmPart, 0, len(g.idx))
			for _, i := range g.idx {
				cp := chunks[i]
				p := kmPart{idx: i, sums: make([]point, k), counts: make([]int64, k)}
				w.CPU(g.home, int64(len(cp.pts))*int64(k))
				for _, pt := range cp.pts {
					best, bestD := 0, math.Inf(1)
					for ci, ct := range centroids {
						d := sq(pt.x-ct.x) + sq(pt.y-ct.y) + sq(pt.v-ct.v)
						if d < bestD {
							best, bestD = ci, d
						}
					}
					p.sums[best].x += pt.x
					p.sums[best].y += pt.y
					p.sums[best].v += pt.v
					p.counts[best]++
					p.inertia += bestD
				}
				out = append(out, p)
			}
			return out, nil
		})
		if err != nil {
			return Result{}, err
		}
		// Partial centroids ship to the coordinator once per node, as
		// before (nodes with no points in the region still report).
		t.Net(int64(k) * 32 * int64(len(targets)))
		ordered := make([]*kmPart, len(chunks))
		for pi := range parts {
			for pj := range parts[pi] {
				p := &parts[pi][pj]
				ordered[p.idx] = p
			}
		}
		sums := make([]point, k)
		counts := make([]int64, k)
		inertia = 0
		for _, p := range ordered {
			if p == nil {
				continue
			}
			for ci := 0; ci < k; ci++ {
				sums[ci].x += p.sums[ci].x
				sums[ci].y += p.sums[ci].y
				sums[ci].v += p.sums[ci].v
				counts[ci] += p.counts[ci]
			}
			inertia += p.inertia
		}
		for ci := range centroids {
			if counts[ci] > 0 {
				centroids[ci] = point{
					x: sums[ci].x / float64(counts[ci]),
					y: sums[ci].y / float64(counts[ci]),
					v: sums[ci].v / float64(counts[ci]),
				}
			}
		}
		t.Net(int64(k) * 32 * int64(len(targets))) // broadcast revised centroids
	}
	return t.Finish(int64(len(all)), inertia), nil
}

func sq(x float64) float64 { return x * x }

// KNN runs the AIS Modeling benchmark: non-parametric density estimation
// by k-nearest-neighbours for a deterministic sample of ships from the
// slab. Each search examines the query's own chunk plus its spatial
// neighbours; remote candidate chunks ship their positions across the
// network — the cost that halves when the partitioner preserves array
// space (Fig 7).
//
// The operator is two-pass. Pass one plans the transfers: a serial walk
// over the query sample dedups the (requester-home, candidate-chunk)
// pairs and charges each unique shipment once — the shared dedup table
// lives only here. Pass two runs the searches on the executor pool, one
// query per work item over the now read-only slab maps, so the
// distance computation — the CPU-heavy part — parallelises while the
// result stays byte-identical to the serial path (per-query kth
// distances fold in sample order).
func KNN(c *cluster.Cluster, arrayName string, timeChunk int64, nQueries, k int) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if len(s.Dims) != 3 {
		return Result{}, fmt.Errorf("query: KNN expects a 3-D array")
	}
	if nQueries < 1 || k < 1 {
		return Result{}, fmt.Errorf("query: nQueries and k must be >= 1")
	}
	t := NewTracker(c)
	own, _, homes, err := gatherSlab(c, t, s, timeChunk, 1, 2, -1, -1)
	if err != nil {
		return Result{}, err
	}
	keys := make([]array.CoordKey, 0, len(own))
	var total int64
	for key := range own {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, key := range keys {
		total += int64(len(own[key]))
	}
	if total == 0 {
		return Result{}, fmt.Errorf("query: slab %d of %s is empty", timeChunk, arrayName)
	}
	if int64(nQueries) > total {
		nQueries = int(total)
	}
	// Deterministic uniform sample: every (total/nQueries)-th cell in
	// canonical order. Because the data is port-skewed, most samples
	// land in port chunks — matching real marine traffic.
	stride := total / int64(nQueries)
	type knnQuery struct {
		key array.CoordKey
		p   point
	}
	var queries []knnQuery
	var idx int64
	for _, key := range keys {
		for _, p := range own[key] {
			if idx%stride == 0 && len(queries) < nQueries {
				queries = append(queries, knnQuery{key, p})
			}
			idx++
		}
	}
	cellBytes := int64(len(s.Dims)) * 8
	// Pass one — plan the transfers. shipped dedups (requester-home,
	// candidate-chunk) pairs: repeated searches from the same node reuse
	// the copy, so each unique shipment is charged exactly once.
	type shipID struct {
		home  partition.NodeID
		chunk array.CoordKey
	}
	shipped := make(map[shipID]bool)
	for _, q := range queries {
		home := homes[q.key]
		for _, ncc := range spatialNeighbors(s, q.key.Coords(), 1, 2) {
			nKey := ncc.Packed()
			nPts, ok := own[nKey]
			if !ok {
				continue
			}
			if homes[nKey] != home {
				ship := shipID{home: home, chunk: nKey}
				if !shipped[ship] {
					shipped[ship] = true
					t.Net(int64(len(nPts)) * cellBytes)
				}
			}
		}
	}
	// Pass two — the searches, one query per work item. Every transfer is
	// already planned and charged, so the workers only read own/homes and
	// their own candidate buffers.
	kth, err := Exec(t, c.Parallelism(), queries, func(w *Tracker, q knnQuery) (float64, error) {
		home := homes[q.key]
		cand := append([]point(nil), own[q.key]...)
		for _, ncc := range spatialNeighbors(s, q.key.Coords(), 1, 2) {
			if nPts, ok := own[ncc.Packed()]; ok {
				cand = append(cand, nPts...)
			}
		}
		w.CPU(home, int64(len(cand)))
		return kthDistance(q.p, cand, k), nil
	})
	if err != nil {
		return Result{}, err
	}
	var sumKth float64
	for _, d := range kth {
		sumKth += d
	}
	return t.Finish(int64(len(queries)), sumKth/float64(len(queries))), nil
}

// kthDistance returns the Euclidean distance from q to its k-th nearest
// candidate (excluding q itself once).
func kthDistance(q point, cand []point, k int) float64 {
	ds := make([]float64, 0, len(cand))
	skippedSelf := false
	for _, p := range cand {
		if !skippedSelf && p.x == q.x && p.y == q.y && p.v == q.v {
			skippedSelf = true
			continue
		}
		ds = append(ds, math.Hypot(p.x-q.x, p.y-q.y))
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[k-1]
}

// CollisionProjection runs the AIS Complex Projection benchmark: plot each
// moving ship's position `horizon` minutes ahead from its speed and
// heading, then count pairs projected within `eps` cells of each other —
// candidate collisions. Ships near chunk borders need neighbouring chunks'
// projections, so the query performs the same halo exchange as the
// windowed aggregate. Both the projection scan (per node) and the
// quadratic pair count (per chunk) run on the executor pool; the collision
// count is an integer sum, so any fold order is exact.
func CollisionProjection(c *cluster.Cluster, arrayName string, timeChunk int64, horizon float64, eps float64) (Result, error) {
	s, err := schemaOf(c, arrayName)
	if err != nil {
		return Result{}, err
	}
	if len(s.Dims) != 3 {
		return Result{}, fmt.Errorf("query: CollisionProjection expects a 3-D array")
	}
	speedIdx, err := attrIndexes(s, []string{"speed"})
	if err != nil {
		return Result{}, err
	}
	headingIdx, err := attrIndexes(s, []string{"heading"})
	if err != nil {
		return Result{}, err
	}
	t := NewTracker(c)
	par := c.Parallelism()
	// Project per chunk where the data lives.
	scan := []int{speedIdx[0], headingIdx[0]}
	targets, err := scanTargets(c, arrayName, func(ch *array.Chunk) bool {
		return ch.Coords[0] == timeChunk
	})
	if err != nil {
		return Result{}, err
	}
	parts, err := Exec(t, par, targets, func(w *Tracker, ts NodeScan) ([]slabEntry, error) {
		entries := make([]slabEntry, 0, len(ts.Chunks))
		for _, ch := range ts.Chunks {
			w.IO(ts.Node, ch.ProjectedSizeBytes(scan))
			w.CPU(ts.Node, int64(ch.Len()))
			var pts []point
			for i := 0; i < ch.Len(); i++ {
				speed := ch.AttrCols[speedIdx[0]].Float64(i)
				if speed <= 0 {
					continue
				}
				heading := ch.AttrCols[headingIdx[0]].Float64(i) * math.Pi / 180
				// Degrees travelled ≈ speed(knots) × horizon, scaled
				// into cell units; the constant matters less than the
				// geometry being real.
				d := speed * horizon / 600
				pts = append(pts, point{
					x: float64(ch.DimCols[1][i]) + d*math.Sin(heading),
					y: float64(ch.DimCols[2][i]) + d*math.Cos(heading),
				})
			}
			if len(pts) > 0 {
				entries = append(entries, slabEntry{
					key:  ch.Key().Coord(),
					cc:   ch.Coords,
					home: ts.Node,
					pts:  pts,
				})
			}
		}
		return entries, nil
	})
	if err != nil {
		return Result{}, err
	}
	proj := make(map[array.CoordKey][]point)
	homes := make(map[array.CoordKey]partition.NodeID)
	var entries []slabEntry
	for _, es := range parts {
		for _, e := range es {
			proj[e.key] = e.pts
			homes[e.key] = e.home
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key.Less(entries[j].key) })
	cellBytes := int64(16)
	counts, err := Exec(t, par, entries, func(w *Tracker, e slabEntry) (int64, error) {
		centers := e.pts
		cand := append([]point(nil), centers...)
		for _, ncc := range spatialNeighbors(s, e.cc, 1, 2) {
			nKey := ncc.Packed()
			nPts, ok := proj[nKey]
			if !ok {
				continue
			}
			if homes[nKey] != e.home {
				w.Net(int64(len(nPts)) * cellBytes)
			}
			cand = append(cand, nPts...)
		}
		w.CPU(e.home, int64(len(centers))*int64(1+len(cand)/8))
		var collisions int64
		for i, a := range centers {
			// Within-chunk pairs are counted once (j > i). Cross-chunk
			// pairs are seen from both chunks; counting both keeps the
			// result deterministic, which is all the benchmark needs.
			for j := i + 1; j < len(cand); j++ {
				b := cand[j]
				if math.Hypot(a.x-b.x, a.y-b.y) <= eps {
					collisions++
				}
			}
		}
		return collisions, nil
	})
	if err != nil {
		return Result{}, err
	}
	var collisions int64
	for _, n := range counts {
		collisions += n
	}
	return t.Finish(collisions, float64(collisions)), nil
}
