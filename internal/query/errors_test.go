package query

import (
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// tinyCluster is a 2-node cluster with a 3-D array and no data, for error
// paths.
func tinyCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 1 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 16), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := array.MustSchema("T",
		[]array.Attribute{{Name: "v", Type: array.Float64}, {Name: "speed", Type: array.Int32}, {Name: "heading", Type: array.Int32}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 10},
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	if err := c.DefineArray(s); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOperatorsOnEmptySlabs(t *testing.T) {
	c := tinyCluster(t)
	if _, err := KNN(c, "T", 0, 5, 3); err == nil {
		t.Error("KNN over an empty slab must fail")
	}
	if _, err := Quantile(c, "T", "v", 0.5, 0.5); err == nil {
		t.Error("quantile over an empty array must fail")
	}
	// Window and collision over empty slabs are well-defined: zero
	// outputs.
	res, err := WindowAggregate(c, "T", "v", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 0 {
		t.Errorf("empty window produced %d outputs", res.Cells)
	}
	res, err = CollisionProjection(c, "T", 0, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 0 {
		t.Errorf("empty collision scan found %d pairs", res.Cells)
	}
}

func TestOperatorArgumentValidation(t *testing.T) {
	c := tinyCluster(t)
	if _, err := WindowAggregate(c, "T", "v", 0, 0); err == nil {
		t.Error("zero window radius must fail")
	}
	if _, err := KNN(c, "T", 0, 0, 3); err == nil {
		t.Error("zero queries must fail")
	}
	if _, err := KMeans(c, "T", "v", FullRegion(mustSchema(c, "T"), 99), 1, 0); err == nil {
		t.Error("zero iterations must fail")
	}
	if _, err := JoinReplicated(c, "T", "v", "NoDim", 0); err == nil {
		t.Error("missing replica array must fail")
	}
	// 1-D arrays are rejected by the spatial operators.
	one := array.MustSchema("One",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 2}})
	if err := c.DefineArray(one); err != nil {
		t.Fatal(err)
	}
	if _, err := WindowAggregate(c, "One", "v", 0, 1); err == nil {
		t.Error("1-D window must fail")
	}
	if _, err := KNN(c, "One", 0, 5, 3); err == nil {
		t.Error("1-D KNN must fail")
	}
	if _, _, err := Regrid(c, RegridSpec{Array: "One", Attr: "v", FactorX: 2, FactorY: 2}); err == nil {
		t.Error("1-D regrid must fail")
	}
}

func TestKNNKLargerThanPopulation(t *testing.T) {
	c := tinyCluster(t)
	s := mustSchema(c, "T")
	ch := array.NewChunk(s, array.ChunkCoord{0, 0, 0})
	for i := int64(0); i < 3; i++ {
		ch.AppendCell(array.Coord{i, i, i}, []array.CellValue{{Float: 1}, {Int: 2}, {Int: 90}})
	}
	if _, err := c.Insert([]*array.Chunk{ch}); err != nil {
		t.Fatal(err)
	}
	// k = 50 with 3 cells: clamps rather than fails.
	res, err := KNN(c, "T", 0, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 3 {
		t.Errorf("query count should clamp to the population, got %d", res.Cells)
	}
}

func mustSchema(c *cluster.Cluster, name string) *array.Schema {
	s, ok := c.Schema(name)
	if !ok {
		panic("schema " + name + " missing")
	}
	return s
}
