package query_test

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
)

// ExampleSelectRegion runs the Selection operator on the parallel scan
// executor: the cluster's Parallelism knob pins the worker-pool size, and
// the executor guarantees the Result is identical at every level — here
// checked by running the same query serially and with eight workers.
func ExampleSelectRegion() {
	schema := array.MustSchema("Grid",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 31, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 31, ChunkInterval: 4},
		})
	c, err := cluster.New(cluster.Config{
		InitialNodes: 4,
		NodeCapacity: 1 << 20,
		Parallelism:  8, // scan-executor worker pool; 0 = GOMAXPROCS
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(partition.KindRoundRobin, initial,
				partition.Geometry{Extents: []int64{8, 8}}, partition.Options{})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}
	// Fill the whole 8×8 chunk grid, one cell at each chunk's origin.
	var batch []*array.Chunk
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 8; y++ {
			ch := array.NewChunk(schema, array.ChunkCoord{x, y})
			ch.AppendCell(array.Coord{x * 4, y * 4}, []array.CellValue{{Float: 1}})
			batch = append(batch, ch)
		}
	}
	if _, err := c.Insert(batch); err != nil {
		log.Fatal(err)
	}

	// Select the lower-left quadrant: 4×4 chunks, scanned by up to eight
	// workers grouped by owning node.
	region := query.Region{Lo: array.Coord{0, 0}, Hi: array.Coord{15, 15}}
	parallel, err := query.SelectRegion(c, "Grid", region, []string{"v"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d cells across %d nodes\n", parallel.Cells, c.NumNodes())

	c.SetParallelism(1)
	serial, err := query.SelectRegion(c, "Grid", region, []string{"v"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parallel result identical to serial:", parallel == serial)
	// Output:
	// matched 16 cells across 4 nodes
	// parallel result identical to serial: true
}
