// Package query implements the paper's two benchmark suites (Section 3.3)
// as distributed operators over the cluster substrate: the conventional
// Select-Project-Join set (selection, sort/quantile, join) and the
// science-analytics set (group-by statistics, modeling via k-means and
// k-nearest-neighbours, and complex projections: windowed aggregates and
// collision prediction).
//
// Operators execute for real over the chunks resident on each node and
// account simulated time through a Tracker: per-node disk and CPU charges
// run in parallel (the elapsed time of the scan phase is the slowest
// node's — which is how storage skew becomes query latency), while network
// transfers (halo exchange, join shipping, partial-aggregate collection)
// are charged serially at the fabric rate — which is how losing spatial
// clustering becomes query latency.
//
// # The scan executor
//
// Every operator runs its chunk scans on Exec, a worker-pool executor.
// scanTargets enumerates the (node, chunks) work list in canonical order —
// ascending node ID, chunks in (array, coordinate) order within a node —
// and Exec applies the operator's scan closure to each unit of work on up
// to Parallelism workers (cluster.Config.Parallelism / SetParallelism;
// 0 gates the pool at GOMAXPROCS). Per-node work units mirror the
// shared-nothing model: one scan stream per node, so per-node state (a
// sampler's RNG, a replica hash table, a partial-aggregate map) lives
// inside one closure invocation. Chunk-level units are used where the
// heavy compute is per chunk (the windowed aggregate, the collision pair
// count, the halo exchange).
//
// # Determinism guarantee
//
// Parallel execution is result-identical to the serial path — Result.Value
// byte for byte, not merely approximately. Three mechanisms make that
// hold, echoing the determinism concerns of parallel reduction in
// general:
//
//   - Exec returns per-item partial results indexed by item, and operators
//     fold them in item order; a floating-point reduction therefore
//     associates identically whether one worker or eight produced the
//     partials, and any remaining map-ordered folds (group merges) happen
//     over sorted keys.
//   - Tracker charges are integer byte/cell counts. Workers charge private
//     Tracker shards that are merged once at the pool barrier; integer
//     addition commutes, so the per-node totals — and hence Elapsed, the
//     simulated latency — equal the serial path's exactly.
//   - Errors are collected per item and reported first-in-item-order, so
//     even failures are scheduling-independent.
//
// The Tracker itself is mutex-protected, so operators that manage their
// own goroutines may also charge one shared Tracker directly.
package query
