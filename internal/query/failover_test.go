package query

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// replicatedCluster builds a nodes-node cluster at the given replication
// factor, defines the 3-D "T" schema and loads a deterministic dense
// batch: every chunk slot of time chunks 0..2, several cells per chunk.
func replicatedCluster(t *testing.T, nodes, replication int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		InitialNodes:      nodes,
		NodeCapacity:      10 << 20,
		ReplicationFactor: replication,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 16), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := array.MustSchema("T",
		[]array.Attribute{{Name: "v", Type: array.Float64}, {Name: "speed", Type: array.Int32}, {Name: "heading", Type: array.Int32}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 10},
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	if err := c.DefineArray(s); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var chunks []*array.Chunk
	for tc := int64(0); tc < 3; tc++ {
		for cx := int64(0); cx < 4; cx++ {
			for cy := int64(0); cy < 4; cy++ {
				ch := array.NewChunk(s, array.ChunkCoord{tc, cx, cy})
				for i := 0; i < 6; i++ {
					ch.AppendCell(
						array.Coord{tc*10 + int64(i), cx*4 + int64(i%4), cy*4 + int64((i+1)%4)},
						[]array.CellValue{
							{Float: rng.Float64() * 100},
							{Int: int64(rng.Intn(20))},
							{Int: int64(rng.Intn(360))},
						})
				}
				chunks = append(chunks, ch)
			}
		}
	}
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	return c
}

// failoverVictim picks a non-coordinator node that owns chunks.
func failoverVictim(t *testing.T, c *cluster.Cluster) partition.NodeID {
	t.Helper()
	for _, id := range c.Nodes() {
		if id == c.Coordinator() {
			continue
		}
		if len(c.NodeChunks(id)) > 0 {
			return id
		}
	}
	t.Fatal("no non-coordinator node owns chunks")
	return 0
}

// operatorBattery runs every operator the suites exercise over the "T"
// array and returns the (Cells, Value) pairs in a fixed order.
func operatorBattery(t *testing.T, c *cluster.Cluster) []Result {
	t.Helper()
	s := mustSchema(c, "T")
	run := func(name string, r Result, err error) Result {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return r
	}
	var out []Result
	r, err := SelectRegion(c, "T", FullRegion(s, 0), []string{"v"})
	out = append(out, run("select", r, err))
	r, err = Quantile(c, "T", "v", 0.5, 1.0)
	out = append(out, run("quantile", r, err))
	r, err = DistinctSorted(c, "T", "heading")
	out = append(out, run("distinct", r, err))
	r, err = WindowAggregate(c, "T", "v", 0, 1)
	out = append(out, run("window", r, err))
	r, err = GroupByAggregate(c, GroupBySpec{
		Array: "T", GroupDims: []int{1, 2}, GroupScale: []int64{4, 4}, Attr: "v",
	})
	out = append(out, run("groupby", r, err))
	r, err = KNN(c, "T", 0, 4, 3)
	out = append(out, run("knn", r, err))
	r, err = KMeans(c, "T", "v", FullRegion(s, 0), 3, 4)
	out = append(out, run("kmeans", r, err))
	r, err = CollisionProjection(c, "T", 0, 100, 50)
	out = append(out, run("collision", r, err))
	return out
}

// TestDegradedQueriesMatchHealthyBaseline is the query-layer half of the
// kill-a-node drill: with R=2, failing a node must not perturb a single
// bit of any operator's answer — reads fail over to surviving replicas
// and the canonical-order folds make the float arithmetic identical
// under the changed placement.
func TestDegradedQueriesMatchHealthyBaseline(t *testing.T) {
	c := replicatedCluster(t, 3, 2)
	baseline := operatorBattery(t, c)

	victim := failoverVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if lost := c.UnreachablePrimaries("T"); len(lost) == 0 {
		t.Fatal("victim owned no primaries; drill is vacuous")
	}
	degraded := operatorBattery(t, c)

	names := []string{"select", "quantile", "distinct", "window", "groupby", "knn", "kmeans", "collision"}
	for i, name := range names {
		if degraded[i].Cells != baseline[i].Cells || degraded[i].Value != baseline[i].Value {
			t.Errorf("%s diverged under failover: healthy (%d, %v) vs degraded (%d, %v)",
				name, baseline[i].Cells, baseline[i].Value, degraded[i].Cells, degraded[i].Value)
		}
	}

	// Recovery restores a clean catalog and the same answers again.
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost := plan.Unrecoverable(); len(lost) != 0 {
		t.Fatalf("R=2 recovery reported unrecoverable chunks: %v", lost)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	recovered := operatorBattery(t, c)
	for i, name := range names {
		if recovered[i].Cells != baseline[i].Cells || recovered[i].Value != baseline[i].Value {
			t.Errorf("%s diverged after recovery: healthy (%d, %v) vs recovered (%d, %v)",
				name, baseline[i].Cells, baseline[i].Value, recovered[i].Cells, recovered[i].Value)
		}
	}
}

// TestUnreplicatedFailureReturnsPartialResult drives the R=1 degraded
// path: every operator touching a lost chunk must return a typed
// *ErrPartialResult naming exactly the chunks that have no surviving
// copy — never a silent partial answer.
func TestUnreplicatedFailureReturnsPartialResult(t *testing.T) {
	c := replicatedCluster(t, 3, 1)
	victim := failoverVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	lost := c.UnreachablePrimaries("T")
	if len(lost) == 0 {
		t.Fatal("victim owned no primaries; drill is vacuous")
	}
	want := make([]string, len(lost))
	for i, ref := range lost {
		want[i] = ref.String()
	}
	sort.Strings(want)

	s := mustSchema(c, "T")
	ops := []struct {
		name string
		run  func() error
	}{
		{"select", func() error { _, err := SelectRegion(c, "T", FullRegion(s, 0), []string{"v"}); return err }},
		{"quantile", func() error { _, err := Quantile(c, "T", "v", 0.5, 1.0); return err }},
		{"groupby", func() error {
			_, err := GroupByAggregate(c, GroupBySpec{Array: "T", GroupDims: []int{1, 2}, GroupScale: []int64{4, 4}, Attr: "v"})
			return err
		}},
		{"kmeans", func() error { _, err := KMeans(c, "T", "v", FullRegion(s, 0), 3, 4); return err }},
	}
	for _, op := range ops {
		err := op.run()
		var pr *ErrPartialResult
		if !errors.As(err, &pr) {
			t.Fatalf("%s on a degraded R=1 cluster returned %v, want *ErrPartialResult", op.name, err)
		}
		if pr.Array != "T" {
			t.Errorf("%s: partial result names array %q, want T", op.name, pr.Array)
		}
		got := make([]string, len(pr.Lost))
		for i, ref := range pr.Lost {
			got[i] = ref.String()
		}
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: lost-chunk report %v, want exactly %v", op.name, got, want)
		}
	}

	// Healing the node brings the answers back without any recovery plan:
	// the chunks were never deleted, only unreachable.
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := SelectRegion(c, "T", FullRegion(s, 0), []string{"v"}); err != nil {
		t.Fatalf("recovered cluster still failing queries: %v", err)
	}
}
