package query

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// Shared bench fixtures: one MODIS and one AIS cluster, built once.
var (
	benchOnce  sync.Once
	benchMODIS *cluster.Cluster
	benchAIS   *cluster.Cluster
)

func benchClusters(b *testing.B) (*cluster.Cluster, *cluster.Cluster) {
	b.Helper()
	benchOnce.Do(func() {
		m, err := workload.NewMODIS(workload.MODISConfig{Cycles: 4, BaseCells: 20})
		if err != nil {
			panic(err)
		}
		benchMODIS = buildCluster(b, m, "kdtree")
		a, err := workload.NewAIS(workload.AISConfig{Cycles: 4, CellsPerCycle: 3000})
		if err != nil {
			panic(err)
		}
		benchAIS = buildCluster(b, a, "kdtree")
	})
	return benchMODIS, benchAIS
}

func BenchmarkSelectRegion(b *testing.B) {
	m, _ := benchClusters(b)
	s, _ := m.Schema("Band1")
	region := FullRegion(s, 4*1440-1)
	region.Hi[1] = -91
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectRegion(m, "Band1", region, []string{"radiance"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantile(b *testing.B) {
	m, _ := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := Quantile(m, "Band1", "radiance", 0.5, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinBands(b *testing.B) {
	m, _ := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := JoinBands(m, "Band1", "Band2", "radiance", 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinReplicated(b *testing.B) {
	_, a := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := JoinReplicated(a, "Broadcast", "ship_id", "Vessel", 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	_, a := benchClusters(b)
	spec := GroupBySpec{
		Array:      "Broadcast",
		GroupDims:  []int{1, 2},
		GroupScale: []int64{16, 16},
		FilterAttr: "speed",
		FilterMin:  1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupByAggregate(a, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowAggregate(b *testing.B) {
	m, _ := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := WindowAggregate(m, "Band1", "radiance", 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	m, _ := benchClusters(b)
	s, _ := m.Schema("Band1")
	region := FullRegion(s, 4*1440-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(m, "Band1", "radiance", region, 4, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	_, a := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := KNN(a, "Broadcast", 3, 20, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollisionProjection(b *testing.B) {
	_, a := benchClusters(b)
	for i := 0; i < b.N; i++ {
		if _, err := CollisionProjection(a, "Broadcast", 3, 15, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
