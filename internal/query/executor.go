package query

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// NodeScan is the unit of scan work the executor hands a worker: one
// node's resident chunks of an array, in canonical (array, coordinate)
// order. Grouping by owning node mirrors the shared-nothing execution
// model — one scan stream per node — and lets per-node state (a sampler's
// RNG, a replica hash table, a partial-aggregate map) live for exactly one
// closure invocation, as it did in the serial loops.
type NodeScan struct {
	Node   partition.NodeID
	Chunks []*array.Chunk
}

// scanTargets enumerates the per-node scan work for an array: every
// healthy cluster node in ascending ID order, each carrying its resident
// chunks of the array in canonical order, optionally filtered by keep.
// Nodes holding no matching chunks are included with an empty chunk list
// so per-node preambles (replica lookups, per-node network charges) run
// exactly as they would serially.
//
// On a degraded cluster (some node Down), chunks catalogued to Down nodes
// fail over: each is served from the first surviving replica holder,
// joining that holder's scan — and charged to it — exactly as if it were
// resident there. Only when no copy of some chunk survives does
// scanTargets return *ErrPartialResult listing the lost chunks; a healthy
// cluster pays a single atomic load for the whole check.
func scanTargets(c *cluster.Cluster, arrayName string, keep func(*array.Chunk) bool) ([]NodeScan, error) {
	ids := c.Nodes()
	out := make([]NodeScan, 0, len(ids))
	degraded := c.Degraded()
	idxOf := make(map[partition.NodeID]int, len(ids))
	for _, id := range ids {
		node, _ := c.Node(id)
		if degraded && node.Health() == cluster.NodeDown {
			continue
		}
		var chunks []*array.Chunk
		for _, ch := range chunksOfArray(node, arrayName) {
			if keep != nil && !keep(ch) {
				continue
			}
			chunks = append(chunks, ch)
		}
		idxOf[id] = len(out)
		out = append(out, NodeScan{Node: id, Chunks: chunks})
	}
	if !degraded {
		return out, nil
	}
	var lost []array.ChunkRef
	resorted := map[partition.NodeID]bool{}
	for _, ref := range c.UnreachablePrimaries(arrayName) {
		var served bool
		for _, h := range c.ReplicaHolders(ref.Packed()) {
			hn, ok := c.Node(h)
			if !ok || hn.Health() == cluster.NodeDown {
				continue
			}
			ch, ok := hn.Replica(ref)
			if !ok {
				continue
			}
			served = true
			if keep == nil || keep(ch) {
				i := idxOf[h]
				out[i].Chunks = append(out[i].Chunks, ch)
				resorted[h] = true
			}
			break
		}
		if !served {
			lost = append(lost, ref)
		}
	}
	if len(lost) > 0 {
		return nil, &ErrPartialResult{Array: arrayName, Lost: lost}
	}
	// Failed-over chunks joined their holders out of order; restore the
	// canonical per-node order the operators' folds rely on.
	for id := range resorted {
		chunks := out[idxOf[id]].Chunks
		sort.Slice(chunks, func(i, j int) bool { return chunks[i].Key().Less(chunks[j].Key()) })
	}
	return out, nil
}

// residentChunk returns the serving copy of a catalogued chunk and the
// node charged for reading it: the owner when healthy, otherwise the
// first surviving replica holder. When no copy survives it returns
// *ErrPartialResult naming the chunk.
func residentChunk(c *cluster.Cluster, ref array.ChunkRef, owner partition.NodeID) (*array.Chunk, partition.NodeID, error) {
	node, ok := c.Node(owner)
	if ok && node.Health() != cluster.NodeDown {
		ch, held := node.Chunk(ref)
		if !held {
			return nil, 0, fmt.Errorf("query: catalog places %s on node %d but it is missing", ref, owner)
		}
		return ch, owner, nil
	}
	for _, h := range c.ReplicaHolders(ref.Packed()) {
		hn, ok := c.Node(h)
		if !ok || hn.Health() == cluster.NodeDown {
			continue
		}
		if ch, held := hn.Replica(ref); held {
			return ch, h, nil
		}
	}
	return nil, 0, &ErrPartialResult{Array: ref.Array, Lost: []array.ChunkRef{ref}}
}

// Exec is the worker-pool scan executor every query operator runs on. It
// applies scan to each item on a pool of workers and returns the per-item
// results in item order, merging each worker's private Tracker shard into
// t once all workers have finished.
//
// parallelism caps the worker count: 0 (the cluster default) gates the
// pool at GOMAXPROCS, an explicit positive value — the Parallelism knob
// threaded through cluster.Config — is honoured as given so sweeps and
// race tests can oversubscribe a small machine. The pool never exceeds
// len(items), and a single-worker pool runs inline on the calling
// goroutine, charging t directly.
//
// # Determinism
//
// Exec guarantees result-identical execution at every parallelism level:
//
//   - Results are indexed by item, not by completion order. Callers fold
//     them in item order, so a floating-point reduction associates
//     identically whether one worker or eight produced the partials.
//   - Tracker charges are integer sums, which commute; merging worker
//     shards in any order yields exactly the serial per-node totals.
//   - The first error in item order wins, so the reported failure does
//     not depend on worker scheduling: an item is only skipped once a
//     lower-indexed item has failed, and such an item can never carry the
//     winning error.
//
// Each item is scanned by exactly one worker, so scan closures may keep
// per-item state freely; anything shared across items must be read-only or
// synchronised (the ported operators only read shared cluster state).
func Exec[I, T any](t *Tracker, parallelism int, items []I, scan func(w *Tracker, item I) (T, error)) ([]T, error) {
	results := make([]T, len(items))
	if len(items) == 0 {
		return results, nil
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, item := range items {
			v, err := scan(t, item)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}
	errs := make([]error, len(items))
	shards := make([]*Tracker, workers)
	var next atomic.Int64
	// errIdx is the lowest item index seen to fail; items above it are
	// skipped (they cannot carry the winning error), items at or below it
	// still run, so the lowest-erroring item is always scanned.
	var errIdx atomic.Int64
	errIdx.Store(int64(len(items)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := t.shard()
		shards[w] = shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if int64(i) > errIdx.Load() {
					continue
				}
				v, err := scan(shard, items[i])
				if err != nil {
					errs[i] = err
					for {
						cur := errIdx.Load()
						if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	for _, shard := range shards {
		t.merge(shard)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
