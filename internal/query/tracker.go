// Package query implements the paper's two benchmark suites (Section 3.3)
// as distributed operators over the cluster substrate: the conventional
// Select-Project-Join set (selection, sort/quantile, join) and the
// science-analytics set (group-by statistics, modeling via k-means and
// k-nearest-neighbours, and complex projections: windowed aggregates and
// collision prediction).
//
// Operators execute for real over the chunks resident on each node and
// account simulated time through a Tracker: per-node disk and CPU charges
// run in parallel (the elapsed time of the scan phase is the slowest
// node's — which is how storage skew becomes query latency), while network
// transfers (halo exchange, join shipping, partial-aggregate collection)
// are charged serially at the fabric rate — which is how losing spatial
// clustering becomes query latency.
package query

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// Result is the outcome of one operator execution.
type Result struct {
	// Elapsed is the operator's simulated latency.
	Elapsed cluster.Duration
	// Cells is the operator-specific result cardinality.
	Cells int64
	// Value is an operator-specific scalar (a quantile, a mean NDVI, a
	// mean k-NN distance, …) so tests can check real computation
	// happened.
	Value float64
	// BytesScanned and BytesShuffled expose the cost breakdown.
	BytesScanned  int64
	BytesShuffled int64
}

// Tracker accumulates the per-node and network charges of one operator.
type Tracker struct {
	c   *cluster.Cluster
	io  map[partition.NodeID]int64
	cpu map[partition.NodeID]int64
	net int64
}

// NewTracker starts an empty account against the cluster's cost model.
func NewTracker(c *cluster.Cluster) *Tracker {
	return &Tracker{
		c:   c,
		io:  make(map[partition.NodeID]int64),
		cpu: make(map[partition.NodeID]int64),
	}
}

// IO charges a disk scan of n bytes on the node.
func (t *Tracker) IO(node partition.NodeID, n int64) { t.io[node] += n }

// CPU charges processing of n cells on the node.
func (t *Tracker) CPU(node partition.NodeID, n int64) { t.cpu[node] += n }

// Net charges a transfer of n bytes across the fabric.
func (t *Tracker) Net(n int64) { t.net += n }

// BytesScanned returns the total disk bytes charged so far.
func (t *Tracker) BytesScanned() int64 {
	var total int64
	for _, n := range t.io {
		total += n
	}
	return total
}

// Elapsed folds the account into simulated time: nodes work in parallel
// (the slowest one gates the operator), the network is charged serially,
// and every operator pays the fixed coordination overhead.
func (t *Tracker) Elapsed() cluster.Duration {
	m := t.c.Cost()
	var worst cluster.Duration
	for _, id := range t.c.Nodes() {
		d := m.DiskTime(t.io[id]) + m.CPUTime(t.cpu[id])
		if d > worst {
			worst = d
		}
	}
	return worst + m.NetTime(t.net) + cluster.Duration(m.QueryOverheadSec)
}

// Finish assembles a Result.
func (t *Tracker) Finish(cells int64, value float64) Result {
	return Result{
		Elapsed:       t.Elapsed(),
		Cells:         cells,
		Value:         value,
		BytesScanned:  t.BytesScanned(),
		BytesShuffled: t.net,
	}
}

// attrIndexes resolves attribute names to schema positions.
func attrIndexes(s *array.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, name := range names {
		idx := s.AttrIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("query: array %s has no attribute %q", s.Name, name)
		}
		out[i] = idx
	}
	return out, nil
}

// schemaOf fetches a registered schema or errors.
func schemaOf(c *cluster.Cluster, name string) (*array.Schema, error) {
	s, ok := c.Schema(name)
	if !ok {
		return nil, fmt.Errorf("query: array %q not defined on this cluster", name)
	}
	return s, nil
}

// chunksOfArray returns the node's resident chunks belonging to the array,
// in canonical order.
func chunksOfArray(n *cluster.Node, arrayName string) []*array.Chunk {
	var out []*array.Chunk
	for _, ch := range n.Chunks() {
		if ch.Schema.Name == arrayName {
			out = append(out, ch)
		}
	}
	return out
}
