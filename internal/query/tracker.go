package query

import (
	"fmt"
	"sync"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// Result is the outcome of one operator execution.
type Result struct {
	// Elapsed is the operator's simulated latency.
	Elapsed cluster.Duration
	// Cells is the operator-specific result cardinality.
	Cells int64
	// Value is an operator-specific scalar (a quantile, a mean NDVI, a
	// mean k-NN distance, …) so tests can check real computation
	// happened.
	Value float64
	// BytesScanned and BytesShuffled expose the cost breakdown.
	BytesScanned  int64
	BytesShuffled int64
}

// Tracker accumulates the per-node and network charges of one operator.
// It is safe for concurrent use: IO, CPU and Net may be called from any
// number of goroutines. The scan executor (Exec) avoids paying that lock
// per chunk by giving each worker a private shard and merging once at the
// barrier; direct concurrent use is supported for operators that manage
// their own goroutines.
//
// All charges are integer byte/cell counts, so the accumulated totals are
// independent of arrival order — which is what lets a parallel scan report
// exactly the per-node charges of the serial one.
type Tracker struct {
	c *cluster.Cluster

	mu  sync.Mutex
	io  map[partition.NodeID]int64
	cpu map[partition.NodeID]int64
	net int64
}

// NewTracker starts an empty account against the cluster's cost model.
func NewTracker(c *cluster.Cluster) *Tracker {
	return &Tracker{
		c:   c,
		io:  make(map[partition.NodeID]int64),
		cpu: make(map[partition.NodeID]int64),
	}
}

// shard starts an empty worker-private account against the same cluster,
// to be folded back with merge.
func (t *Tracker) shard() *Tracker { return NewTracker(t.c) }

// merge folds a worker shard's charges into t. The shard must be quiescent
// (its worker done); t may be merged into concurrently.
func (t *Tracker) merge(s *Tracker) {
	t.mu.Lock()
	for id, n := range s.io {
		t.io[id] += n
	}
	for id, n := range s.cpu {
		t.cpu[id] += n
	}
	t.net += s.net
	t.mu.Unlock()
}

// IO charges a disk scan of n bytes on the node.
func (t *Tracker) IO(node partition.NodeID, n int64) {
	t.mu.Lock()
	t.io[node] += n
	t.mu.Unlock()
}

// CPU charges processing of n cells on the node.
func (t *Tracker) CPU(node partition.NodeID, n int64) {
	t.mu.Lock()
	t.cpu[node] += n
	t.mu.Unlock()
}

// Net charges a transfer of n bytes across the fabric.
func (t *Tracker) Net(n int64) {
	t.mu.Lock()
	t.net += n
	t.mu.Unlock()
}

// BytesScanned returns the total disk bytes charged so far.
func (t *Tracker) BytesScanned() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, n := range t.io {
		total += n
	}
	return total
}

// NodeIO returns the disk bytes charged to the node so far.
func (t *Tracker) NodeIO(node partition.NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.io[node]
}

// NodeCPU returns the cells charged to the node so far.
func (t *Tracker) NodeCPU(node partition.NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cpu[node]
}

// Elapsed folds the account into simulated time: nodes work in parallel
// (the slowest one gates the operator), the network is charged serially,
// and every operator pays the fixed coordination overhead.
func (t *Tracker) Elapsed() cluster.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.c.Cost()
	var worst cluster.Duration
	for _, id := range t.c.Nodes() {
		d := m.DiskTime(t.io[id]) + m.CPUTime(t.cpu[id])
		if d > worst {
			worst = d
		}
	}
	return worst + m.NetTime(t.net) + cluster.Duration(m.QueryOverheadSec)
}

// Finish assembles a Result.
func (t *Tracker) Finish(cells int64, value float64) Result {
	return Result{
		Elapsed:       t.Elapsed(),
		Cells:         cells,
		Value:         value,
		BytesScanned:  t.BytesScanned(),
		BytesShuffled: t.netTotal(),
	}
}

func (t *Tracker) netTotal() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net
}

// attrIndexes resolves attribute names to schema positions.
func attrIndexes(s *array.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, name := range names {
		idx := s.AttrIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("query: array %s has no attribute %q", s.Name, name)
		}
		out[i] = idx
	}
	return out, nil
}

// schemaOf fetches a registered schema or errors.
func schemaOf(c *cluster.Cluster, name string) (*array.Schema, error) {
	s, ok := c.Schema(name)
	if !ok {
		return nil, fmt.Errorf("query: array %q not defined on this cluster", name)
	}
	return s, nil
}

// chunksOfArray returns the node's resident chunks belonging to the array,
// in canonical order.
func chunksOfArray(n *cluster.Node, arrayName string) []*array.Chunk {
	var out []*array.Chunk
	for _, ch := range n.Chunks() {
		if ch.Schema.Name == arrayName {
			out = append(out, ch)
		}
	}
	return out
}
