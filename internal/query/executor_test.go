package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// sweepLevels are the worker counts the determinism properties are checked
// at: the serial path, a small pool, and an oversubscribed one.
var sweepLevels = []int{1, 2, 8}

// runAt runs fn with the cluster's parallelism knob pinned to par,
// restoring the previous setting afterwards.
func runAt(c *cluster.Cluster, par int, fn func() (Result, error)) (Result, error) {
	prev := c.Parallelism()
	c.SetParallelism(par)
	defer c.SetParallelism(prev)
	return fn()
}

// checkParallelismInvariant pins a query's full Result — Value, Cells,
// Elapsed and both byte counters — byte-identical across the sweep levels.
func checkParallelismInvariant(t *testing.T, c *cluster.Cluster, name string, fn func() (Result, error)) {
	t.Helper()
	base, err := runAt(c, 1, fn)
	if err != nil {
		t.Fatalf("%s at parallelism 1: %v", name, err)
	}
	for _, par := range sweepLevels[1:] {
		got, err := runAt(c, par, fn)
		if err != nil {
			t.Fatalf("%s at parallelism %d: %v", name, par, err)
		}
		if got != base {
			t.Errorf("%s at parallelism %d = %+v, serial path %+v", name, par, got, base)
		}
	}
}

// TestExecPerNodeTotalsMatchSerial is the executor-level property: random
// per-item charges against random nodes must produce exactly the serial
// per-node Tracker totals (io, cpu and net maps) at every worker count.
func TestExecPerNodeTotalsMatchSerial(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	nodes := c.Nodes()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(40)
		type charge struct {
			node partition.NodeID
			io   int64
			cpu  int64
			net  int64
		}
		items := make([]charge, n)
		for i := range items {
			items[i] = charge{
				node: nodes[rng.Intn(len(nodes))],
				io:   rng.Int63n(1 << 20),
				cpu:  rng.Int63n(1 << 10),
				net:  rng.Int63n(1 << 8),
			}
		}
		scan := func(w *Tracker, it charge) (int64, error) {
			w.IO(it.node, it.io)
			w.CPU(it.node, it.cpu)
			w.Net(it.net)
			return it.io + it.cpu, nil
		}
		ref := NewTracker(c)
		refResults, err := Exec(ref, 1, items, scan)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range sweepLevels[1:] {
			tr := NewTracker(c)
			results, err := Exec(tr, par, items, scan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(results, refResults) {
				t.Fatalf("trial %d parallelism %d: results diverge from serial", trial, par)
			}
			if !reflect.DeepEqual(tr.io, ref.io) || !reflect.DeepEqual(tr.cpu, ref.cpu) || tr.net != ref.net {
				t.Fatalf("trial %d parallelism %d: tracker totals diverge: io %v vs %v, cpu %v vs %v, net %d vs %d",
					trial, par, tr.io, ref.io, tr.cpu, ref.cpu, tr.net, ref.net)
			}
		}
	}
}

// TestExecErrorDeterministic pins the error contract: the first failing
// item in item order is reported regardless of worker scheduling.
func TestExecErrorDeterministic(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	scan := func(w *Tracker, i int) (int, error) {
		if i == 7 || i == 23 {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	}
	for _, par := range sweepLevels {
		_, err := Exec(NewTracker(c), par, items, scan)
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("parallelism %d: error = %v, want the first failing item", par, err)
		}
	}
}

// TestSelectRegionParallelismInvariant property-tests the Selection
// operator: randomized regions over both workloads must yield
// byte-identical Results at parallelism 1, 2 and 8.
func TestSelectRegionParallelismInvariant(t *testing.T) {
	c, _ := buildMODIS(t, "kdtree", 3)
	s, _ := c.Schema("Band1")
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		region := FullRegion(s, 3*1440-1)
		// A random sub-box of the two spatial dimensions.
		for d := 1; d <= 2; d++ {
			ext := s.Dims[d].Extent()
			lo := s.Dims[d].Start + rng.Int63n(ext/2)
			region.Lo[d] = lo
			region.Hi[d] = lo + rng.Int63n(ext/2) + 1
		}
		name := fmt.Sprintf("SelectRegion[trial %d]", trial)
		checkParallelismInvariant(t, c, name, func() (Result, error) {
			return SelectRegion(c, "Band1", region, []string{"radiance"})
		})
	}
}

// TestGroupByAggregateParallelismInvariant property-tests the Statistics
// operator at the three sweep levels, over randomized group scales and
// filters on both suites' specs.
func TestGroupByAggregateParallelismInvariant(t *testing.T) {
	mc, _ := buildMODIS(t, "consistent", 3)
	ms, _ := mc.Schema("Band1")
	ac, _ := buildAIS(t, "hilbert", 3)
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 977))
		north := FullRegion(ms, 3*1440-1)
		north.Lo[2] = rng.Int63n(60)
		spec := GroupBySpec{
			Array:      "Band1",
			Regions:    []Region{north},
			GroupDims:  []int{0},
			GroupScale: []int64{1 + rng.Int63n(2000)},
			Attr:       "radiance",
		}
		checkParallelismInvariant(t, mc, fmt.Sprintf("GroupBy-MODIS[trial %d]", trial), func() (Result, error) {
			return GroupByAggregate(mc, spec)
		})
		aspec := GroupBySpec{
			Array:      "Broadcast",
			GroupDims:  []int{1, 2},
			GroupScale: []int64{1 + rng.Int63n(32), 1 + rng.Int63n(32)},
			FilterAttr: "speed",
			FilterMin:  float64(rng.Intn(3)),
		}
		checkParallelismInvariant(t, ac, fmt.Sprintf("GroupBy-AIS[trial %d]", trial), func() (Result, error) {
			return GroupByAggregate(ac, aspec)
		})
	}
}

// TestWindowAggregateParallelismInvariant pins the windowed mean — the
// float-heaviest reduction, with a halo exchange feeding it — identical
// across the sweep levels for several radii.
func TestWindowAggregateParallelismInvariant(t *testing.T) {
	c, last := buildMODIS(t, "kdtree", 3)
	for _, radius := range []int64{1, 2, 4} {
		name := fmt.Sprintf("WindowAggregate[radius %d]", radius)
		checkParallelismInvariant(t, c, name, func() (Result, error) {
			return WindowAggregate(c, "Band1", "radiance", int64(last), radius)
		})
	}
}

// TestRemainingOperatorsParallelismInvariant sweeps every other ported
// operator once: the whole suite must be scheduling-independent, not just
// the three the acceptance property names.
func TestRemainingOperatorsParallelismInvariant(t *testing.T) {
	mc, mlast := buildMODIS(t, "kdtree", 3)
	ms, _ := mc.Schema("Band1")
	ac, alast := buildAIS(t, "consistent", 3)
	amazon := FullRegion(ms, 3*1440-1)
	amazon.Lo[1], amazon.Hi[1] = -78, -44
	amazon.Lo[2], amazon.Hi[2] = -20, 6
	cases := []struct {
		name string
		c    *cluster.Cluster
		fn   func() (Result, error)
	}{
		{"Quantile", mc, func() (Result, error) { return Quantile(mc, "Band1", "radiance", 0.5, 0.2) }},
		{"DistinctSorted", ac, func() (Result, error) { return DistinctSorted(ac, "Broadcast", "ship_id") }},
		{"JoinBands", mc, func() (Result, error) { return JoinBands(mc, "Band1", "Band2", "radiance", int64(mlast)) }},
		{"JoinReplicated", ac, func() (Result, error) {
			return JoinReplicated(ac, "Broadcast", "ship_id", "Vessel", int64(alast))
		}},
		{"KMeans", mc, func() (Result, error) { return KMeans(mc, "Band1", "radiance", amazon, 4, 3) }},
		{"KNN", ac, func() (Result, error) { return KNN(ac, "Broadcast", int64(alast), 20, 5) }},
		{"CollisionProjection", ac, func() (Result, error) {
			return CollisionProjection(ac, "Broadcast", int64(alast), 15, 1.5)
		}},
	}
	for _, tc := range cases {
		checkParallelismInvariant(t, tc.c, tc.name, tc.fn)
	}
}

// TestKNNParallelismInvariant property-tests the two-pass KNN: with the
// transfer planning hoisted out of the search loop, the parallel
// per-query searches must yield byte-identical Results to the serial
// path across randomized sample sizes and k, on both a clustered and a
// scattered placement (the scattered one maximises remote candidate
// chunks, i.e. the planned transfers).
func TestKNNParallelismInvariant(t *testing.T) {
	clustered, clast := buildAIS(t, "kdtree", 3)
	scattered, slast := buildAIS(t, "consistent", 3)
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 613))
		nQueries := 1 + rng.Intn(60)
		k := 1 + rng.Intn(12)
		checkParallelismInvariant(t, clustered, fmt.Sprintf("KNN-clustered[n=%d k=%d]", nQueries, k), func() (Result, error) {
			return KNN(clustered, "Broadcast", int64(clast), nQueries, k)
		})
		checkParallelismInvariant(t, scattered, fmt.Sprintf("KNN-scattered[n=%d k=%d]", nQueries, k), func() (Result, error) {
			return KNN(scattered, "Broadcast", int64(slast), nQueries, k)
		})
	}
}

// TestSuiteRaceParallel runs both benchmark suites with an oversubscribed
// worker pool — and two suites racing each other on one cluster — so `go
// test -race` exercises the executor, the shared Tracker and the locked
// stores under real concurrent scans.
func TestSuiteRaceParallel(t *testing.T) {
	mc, mlast := buildMODIS(t, "kdtree", 3)
	ac, alast := buildAIS(t, "hilbert", 3)
	mc.SetParallelism(8)
	ac.SetParallelism(8)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := MODISSuite(mc, mlast); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := AISSuite(ac, alast); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestSuiteRaceAgainstRebalance runs the MODIS suite concurrently with
// ExecuteRebalance rounds bouncing a side array's chunks between nodes:
// the suites and the migration share the catalog shards and the locked
// node stores, so `go test -race` exercises the rebalance pipeline under
// live query traffic. The rebalanced array is disjoint from the queried
// ones, so every concurrent suite run must reproduce the quiescent
// baseline byte-for-byte.
func TestSuiteRaceAgainstRebalance(t *testing.T) {
	c, last := buildMODIS(t, "kdtree", 3)
	c.SetParallelism(8)
	// Ballast: a side array whose chunks the rebalance rounds bounce
	// between nodes while the suite queries Band1/Band2.
	ballast := array.MustSchema("Ballast",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "time", Start: 0, End: array.Unbounded, ChunkInterval: 1},
			{Name: "x", Start: 0, End: 63, ChunkInterval: 8},
			{Name: "y", Start: 0, End: 63, ChunkInterval: 8},
		})
	if err := c.DefineArray(ballast); err != nil {
		t.Fatal(err)
	}
	var chunks []*array.Chunk
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 4; y++ {
			ch := array.NewChunk(ballast, array.ChunkCoord{x % 3, x, y})
			for i := int64(0); i < 16; i++ {
				ch.AppendCell(array.Coord{x % 3, x * 8, y*8 + i%8}, []array.CellValue{{Float: float64(i)}})
			}
			chunks = append(chunks, ch)
		}
	}
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	baseline, err := MODISSuite(c, last)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	ballastMoves := func() []partition.Move {
		var moves []partition.Move
		for _, ch := range chunks {
			from, ok := c.Owner(ch.Key())
			if !ok {
				t.Error("ballast chunk lost")
				return nil
			}
			var to partition.NodeID
			for i, id := range nodes {
				if id == from {
					to = nodes[(i+1)%len(nodes)]
					break
				}
			}
			moves = append(moves, partition.Move{Ref: ch.Ref(), From: from, To: to, Size: ch.SizeBytes()})
		}
		return moves
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := MODISSuite(c, last)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, baseline) {
					t.Error("suite result diverged under concurrent rebalance")
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			plan, err := c.PlanMigrate(ballastMoves())
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := c.ExecuteRebalance(plan); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerConcurrentCharges hammers one shared Tracker from many
// goroutines — the mutex contract behind the "sharded or direct, both
// race-clean" guarantee — and checks the totals.
func TestTrackerConcurrentCharges(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	tr := NewTracker(c)
	nodes := c.Nodes()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.IO(nodes[g%len(nodes)], 2)
				tr.CPU(nodes[g%len(nodes)], 3)
				tr.Net(1)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.BytesScanned(); got != goroutines*perG*2 {
		t.Errorf("BytesScanned = %d, want %d", got, goroutines*perG*2)
	}
	if got := tr.netTotal(); got != goroutines*perG {
		t.Errorf("net = %d, want %d", got, goroutines*perG)
	}
	var cpu int64
	for _, id := range nodes {
		cpu += tr.NodeCPU(id)
	}
	if cpu != goroutines*perG*3 {
		t.Errorf("summed NodeCPU = %d, want %d", cpu, goroutines*perG*3)
	}
}
