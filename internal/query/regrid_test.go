package query

import (
	"testing"
)

func TestRegridDensifies(t *testing.T) {
	c, last := buildMODIS(t, "consistent", 3)
	grid, res, err := Regrid(c, RegridSpec{
		Array:     "Band1",
		Attr:      "radiance",
		TimeChunk: int64(last),
		FactorX:   24,
		FactorY:   24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 {
		t.Fatal("regrid produced no pixels")
	}
	// Output is sorted and each pixel is a genuine average.
	var total int64
	for i, g := range grid {
		if g.Count < 1 {
			t.Fatalf("pixel (%d,%d) has no contributing cells", g.X, g.Y)
		}
		total += g.Count
		if i > 0 {
			prev := grid[i-1]
			if g.X < prev.X || (g.X == prev.X && g.Y <= prev.Y) {
				t.Fatal("pixels not in (x,y) order")
			}
		}
	}
	// Every slab cell lands in exactly one pixel.
	var slabCells int64
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			if ch.Schema.Name == "Band1" && ch.Coords[0] == int64(last) {
				slabCells += int64(ch.Len())
			}
		}
	}
	if total != slabCells {
		t.Errorf("regrid binned %d cells, slab has %d", total, slabCells)
	}
	if res.Cells != slabCells {
		t.Errorf("result cells = %d, want %d", res.Cells, slabCells)
	}
	// Radiance averages stay in the physical range.
	if res.Value < 10 || res.Value > 250 {
		t.Errorf("grand mean radiance %v implausible", res.Value)
	}
	if res.BytesShuffled == 0 {
		t.Error("partials must cross the network")
	}
}

func TestRegridCoarserFactorsFewerPixels(t *testing.T) {
	c, last := buildMODIS(t, "kdtree", 2)
	fine, _, err := Regrid(c, RegridSpec{Array: "Band1", Attr: "radiance", TimeChunk: int64(last), FactorX: 12, FactorY: 12})
	if err != nil {
		t.Fatal(err)
	}
	coarse, _, err := Regrid(c, RegridSpec{Array: "Band1", Attr: "radiance", TimeChunk: int64(last), FactorX: 60, FactorY: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) >= len(fine) {
		t.Errorf("coarser regrid should have fewer pixels: %d vs %d", len(coarse), len(fine))
	}
}

func TestRegridValidation(t *testing.T) {
	c, _ := buildMODIS(t, "consistent", 2)
	if _, _, err := Regrid(c, RegridSpec{Array: "Nope", Attr: "radiance", FactorX: 2, FactorY: 2}); err == nil {
		t.Error("unknown array should fail")
	}
	if _, _, err := Regrid(c, RegridSpec{Array: "Band1", Attr: "zz", FactorX: 2, FactorY: 2}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, _, err := Regrid(c, RegridSpec{Array: "Band1", Attr: "radiance", FactorX: 0, FactorY: 2}); err == nil {
		t.Error("zero factor should fail")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {-1, 3, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
