// Package stats provides the small statistics toolkit the elasticity layer
// leans on: relative standard deviation (the paper's load-balance metric),
// quantiles, online accumulators, and a bounded Zipf sampler used to
// synthesise the AIS workload's port-concentrated storage skew.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two values are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// RSD returns the relative standard deviation (stddev ÷ mean) of xs — the
// paper's measure of storage-balance evenness (Section 6.2.1). A lower
// value indicates a more balanced partitioning. It returns 0 when the mean
// is zero.
func RSD(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between closest ranks. It returns an error for empty input
// or out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Accumulator tracks count, mean and variance online (Welford) without
// retaining samples; used for per-node storage accounting.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	sum  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the running mean, or 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// RSD returns the running relative standard deviation, or 0 when the mean
// is zero.
func (a *Accumulator) RSD() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / a.mean
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the power-law distribution the paper invokes (Zipf's law,
// [33]) to describe ship congregation around ports. Unlike math/rand.Zipf
// it supports any s > 0 (including s ≤ 1) over a bounded domain.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a bounded Zipf sampler over n ranks with exponent s.
func NewZipf(rng *rand.Rand, n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: Zipf needs n >= 1, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("stats: Zipf exponent must be positive, got %v", s)
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// MustZipf is NewZipf that panics on error.
func MustZipf(rng *rand.Rand, n int, s float64) *Zipf {
	z, err := NewZipf(rng, n, s)
	if err != nil {
		panic(err)
	}
	return z
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// TopShare returns the fraction of probability mass carried by the top
// `frac` share of ranks — e.g. TopShare(0.05) answers "what share of the
// data lands in the hottest 5% of chunks", the skew statistic in §3.2.
func (z *Zipf) TopShare(frac float64) float64 {
	k := int(math.Ceil(frac * float64(len(z.cdf))))
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}
