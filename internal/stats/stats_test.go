package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if !almost(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of one value should be 0")
	}
}

func TestRSD(t *testing.T) {
	if RSD([]float64{0, 0}) != 0 {
		t.Error("RSD with zero mean should be 0")
	}
	if !almost(RSD([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 0.4, 1e-12) {
		t.Errorf("RSD = %v, want 0.4", RSD([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if RSD([]float64{5, 5, 5, 5}) != 0 {
		t.Error("uniform load should have RSD 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got, _ := Quantile([]float64{10}, 0.5); got != 10 {
		t.Errorf("single-element quantile = %v", got)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile should fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q>1 should fail")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("NaN q should fail")
	}
	// Quantile must not reorder its input.
	orig := []float64{3, 1, 2}
	if _, err := Quantile(orig, 0.5); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2.5, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var acc Accumulator
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			acc.Add(xs[i])
		}
		return acc.N() == len(xs) &&
			almost(acc.Mean(), Mean(xs), 1e-6) &&
			almost(acc.StdDev(), StdDev(xs), 1e-6) &&
			almost(acc.RSD(), RSD(xs), 1e-6) &&
			almost(acc.Sum(), Mean(xs)*float64(len(xs)), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorZero(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.RSD() != 0 || a.N() != 0 {
		t.Error("zero accumulator should report zeros")
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewZipf(rng, 10, 0); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := NewZipf(rng, 10, math.NaN()); err == nil {
		t.Error("NaN s should fail")
	}
}

func TestZipfInRangeAndSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := MustZipf(rng, 100, 1.2)
	counts := make([]int, 100)
	const draws = 50000
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Error("rank 0 should dominate rank 50 under Zipf")
	}
	// Top 5 ranks should hold far more than 5% of mass.
	top := 0
	for i := 0; i < 5; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.30 {
		t.Errorf("top 5%% of ranks hold %.2f of mass; expected heavy skew", float64(top)/draws)
	}
}

func TestZipfTopShare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := MustZipf(rng, 1000, 1.4)
	s5 := z.TopShare(0.05)
	if s5 < 0.5 {
		t.Errorf("TopShare(0.05) = %.2f; exponent 1.4 should concentrate > 50%%", s5)
	}
	if z.TopShare(1.0) != 1 {
		t.Error("TopShare(1) must be 1")
	}
	if z.TopShare(0) != 0 {
		t.Error("TopShare(0) must be 0")
	}
	if z.TopShare(0.05) >= z.TopShare(0.5) {
		t.Error("TopShare must be monotone")
	}
}

func TestZipfDeterministicForSeed(t *testing.T) {
	a := MustZipf(rand.New(rand.NewSource(3)), 50, 1.1)
	b := MustZipf(rand.New(rand.NewSource(3)), 50, 1.1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Zipf not deterministic for equal seeds")
		}
	}
}
