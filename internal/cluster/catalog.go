package cluster

import (
	"runtime"
	"sync"

	"repro/internal/array"
	"repro/internal/partition"
)

// ownerCatalog is the cluster's authoritative chunk→node catalog, sharded
// into a power-of-two number of lock-striped maps keyed by the packed
// ChunkKey hash. Sharding lets concurrent ingest batches reserve and
// publish ownership without contending on one map (and one lock), while a
// single-key lookup stays what it was with the flat map: hash, probe, no
// allocation.
type ownerCatalog struct {
	shards []ownerShard
	mask   uint64
}

type ownerShard struct {
	mu sync.RWMutex
	m  map[array.ChunkKey]partition.NodeID
	// sec records the secondary owners (replica holders) of primaries at
	// replication factor >= 2, lazily allocated so the R=1 hot path pays
	// nothing — Get never touches it.
	sec map[array.ChunkKey][]partition.NodeID
}

// newOwnerCatalog sizes the shard array to the first power of two at or
// above 4× the scheduler's parallelism, clamped to [8, 256] — enough
// stripes that parallel ingest goroutines rarely collide, few enough that
// aggregate scans (Len, Validate) stay cheap.
func newOwnerCatalog() *ownerCatalog {
	n := 8
	for n < 4*runtime.GOMAXPROCS(0) && n < 256 {
		n <<= 1
	}
	c := &ownerCatalog{shards: make([]ownerShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		// Presized so a typical ingest burst never rehashes mid-batch;
		// the catalog is cluster-lifetime state, the few KiB are paid
		// once.
		c.shards[i].m = make(map[array.ChunkKey]partition.NodeID, 64)
	}
	return c
}

// shard picks the stripe for a key. The FNV key hash mixes high bits well;
// folding them down spreads sequential coordinates across stripes even
// though only the low bits select the shard.
func (c *ownerCatalog) shard(key array.ChunkKey) *ownerShard {
	h := key.Hash()
	return &c.shards[(h^h>>32)&c.mask]
}

// Get returns the owner of a chunk. Allocation-free: hash, RLock, probe.
func (c *ownerCatalog) Get(key array.ChunkKey) (partition.NodeID, bool) {
	s := c.shard(key)
	s.mu.RLock()
	n, ok := s.m[key]
	s.mu.RUnlock()
	return n, ok
}

// Set records or overwrites the owner of a chunk.
func (c *ownerCatalog) Set(key array.ChunkKey, n partition.NodeID) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = n
	s.mu.Unlock()
}

// Reserve records the owner of a chunk unless the chunk is already
// catalogued, reporting whether the claim succeeded — the single locked
// operation ingest plans use to both duplicate-check against the catalog
// and claim the chunk.
func (c *ownerCatalog) Reserve(key array.ChunkKey, n partition.NodeID) bool {
	s := c.shard(key)
	s.mu.Lock()
	if _, dup := s.m[key]; dup {
		s.mu.Unlock()
		return false
	}
	s.m[key] = n
	s.mu.Unlock()
	return true
}

// Delete removes a chunk — and any recorded secondaries — from the catalog.
func (c *ownerCatalog) Delete(key array.ChunkKey) {
	s := c.shard(key)
	s.mu.Lock()
	delete(s.m, key)
	delete(s.sec, key)
	s.mu.Unlock()
}

// SetReplicas records the secondary owners of a chunk, replacing any prior
// set. An empty or nil set clears the entry.
func (c *ownerCatalog) SetReplicas(key array.ChunkKey, nodes []partition.NodeID) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(nodes) == 0 {
		delete(s.sec, key)
		return
	}
	if s.sec == nil {
		s.sec = make(map[array.ChunkKey][]partition.NodeID)
	}
	s.sec[key] = append([]partition.NodeID(nil), nodes...)
}

// Replicas returns a copy of the chunk's secondary owners (nil when the
// chunk has none — always the case at replication factor 1).
func (c *ownerCatalog) Replicas(key array.ChunkKey) []partition.NodeID {
	s := c.shard(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	nodes, ok := s.sec[key]
	if !ok {
		return nil
	}
	return append([]partition.NodeID(nil), nodes...)
}

// Each calls fn for every catalogued primary. Holds each shard's read lock
// for the duration of its scan; callers needing a stable snapshot run under
// the cluster's admin-exclusive lock.
func (c *ownerCatalog) Each(fn func(key array.ChunkKey, owner partition.NodeID)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, n := range s.m {
			fn(k, n)
		}
		s.mu.RUnlock()
	}
}

// EachReplica calls fn for every chunk with recorded secondary owners. The
// slice passed to fn is the shard's own; fn must not retain or mutate it.
func (c *ownerCatalog) EachReplica(fn func(key array.ChunkKey, nodes []partition.NodeID)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, nodes := range s.sec {
			fn(k, nodes)
		}
		s.mu.RUnlock()
	}
}

// Len returns the number of catalogued chunks.
func (c *ownerCatalog) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}
