package cluster

import (
	"fmt"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/transport"
)

// nodeService is one node's transport endpoint: the receiver half of every
// data path the cluster routes over the wire. Its Deliver is
// receiver-atomic — a batch commits all-or-nothing, unwinding any stored
// prefix on a torn stream or a store fault — which is what makes the
// sender's whole-batch retry (pushWithRetry) safe: a failed push is
// guaranteed to have left nothing behind.
type nodeService struct {
	c    *Cluster
	node *Node
}

// Deliver implements transport.Handler. Ingest and rebalance batches go to
// the partitioned store (rebalance writes absorb transient store faults via
// putWithRetry, mirroring the in-process path); replica batches go to the
// node's replica map. Chunks are consumed one at a time off the stream, so
// a socket-backed delivery holds O(one chunk) beyond the receiver's ring.
func (s *nodeService) Deliver(from partition.NodeID, kind transport.BatchKind, n int, next func() (*array.Chunk, error)) error {
	switch kind {
	case transport.KindIngest, transport.KindRebalance:
		delivered := make([]array.ChunkRef, 0, n)
		unwind := func() {
			for _, ref := range delivered {
				_, _ = s.node.take(ref)
			}
		}
		for i := 0; i < n; i++ {
			ch, err := next()
			if err != nil {
				unwind()
				return err
			}
			if kind == transport.KindRebalance {
				err = s.c.putWithRetry(s.node, ch)
			} else {
				err = s.node.put(ch)
			}
			if err != nil {
				unwind()
				return err
			}
			delivered = append(delivered, ch.Ref())
		}
		return nil
	case transport.KindReplica:
		// Replica placement may overwrite an existing copy, so stage the
		// whole batch before committing: a torn stream must not have
		// half-replaced anything.
		staged := make([]*array.Chunk, 0, n)
		for i := 0; i < n; i++ {
			ch, err := next()
			if err != nil {
				return err
			}
			staged = append(staged, ch)
		}
		for _, ch := range staged {
			s.node.putReplica(ch)
		}
		return nil
	}
	return fmt.Errorf("cluster: node %d: unknown batch kind %d", s.node.ID, kind)
}

// Fetch implements transport.Handler: the primary store first, the replica
// map second — the same serving order the query layer's failover uses.
func (s *nodeService) Fetch(ref array.ChunkRef) (*array.Chunk, error) {
	if ch, ok := s.node.get(ref); ok {
		return ch, nil
	}
	if ch, ok := s.node.Replica(ref); ok {
		return ch, nil
	}
	return nil, fmt.Errorf("cluster: node %d does not hold %s", s.node.ID, ref)
}

// Announce implements transport.Handler: record the sender's self-reported
// holdings in the coordinator-side registry.
func (s *nodeService) Announce(from partition.NodeID, a transport.Announcement) error {
	s.c.recordAnnouncement(a)
	return nil
}

// Schema implements transport.Handler, resolving decode schemas from the
// cluster registry (safe concurrently with DefineArray).
func (s *nodeService) Schema(name string) (*array.Schema, bool) {
	return s.c.Schema(name)
}

// serveNode registers a node's endpoint with the cluster transport.
// No-op without one.
func (c *Cluster) serveNode(id partition.NodeID) error {
	if c.transport == nil {
		return nil
	}
	return c.transport.Serve(id, &nodeService{c: c, node: c.nodes[id]})
}

// Transport returns the cluster's node transport, nil when the cluster
// runs fully in-process with no transport seam.
func (c *Cluster) Transport() transport.Transport { return c.transport }

// WireReads reports whether chunk reads between distinct nodes cross a
// real wire — a transport is configured and it is remote (TCP). The query
// layer gates its wire re-fetches on this: under the loopback transport or
// no transport at all, cross-node reads stay pointer reads.
func (c *Cluster) WireReads() bool {
	return c.transport != nil && c.transport.Remote()
}

// FetchChunk pulls the named chunk from holder over the transport on
// behalf of reader, returning the decoded copy — byte-identical to the
// holder's resident chunk. Callers gate on WireReads.
func (c *Cluster) FetchChunk(reader, holder partition.NodeID, ref array.ChunkRef) (*array.Chunk, error) {
	ch, _, err := c.transport.FetchChunk(reader, holder, ref)
	return ch, err
}

// recordAnnouncement stores a node's latest self-reported holdings and
// forwards it to the registered sink. The sink runs outside annMu but may
// run while admin is held (loopback announceAll), so it must not take
// cluster locks.
func (c *Cluster) recordAnnouncement(a transport.Announcement) {
	c.annMu.Lock()
	c.announcements[a.Node] = a
	sink := c.annSink
	c.annMu.Unlock()
	if sink != nil {
		sink(a)
	}
}

// SetAnnouncementSink registers fn to observe every announcement the
// coordinator records — the failure detector's heartbeat feed. One sink at
// a time; nil unregisters. The sink may be invoked from transport handler
// goroutines and from announcement paths holding the admin lock, so it must
// be fast and must never call back into cluster methods that take locks
// (record the observation, hand it to another goroutine to act on).
func (c *Cluster) SetAnnouncementSink(fn func(transport.Announcement)) {
	c.annMu.Lock()
	c.annSink = fn
	c.annMu.Unlock()
}

// Announcements returns the latest holdings announcement per node, as
// received by the coordinator over the transport. Empty without a
// transport (the in-process cluster reads state directly).
func (c *Cluster) Announcements() map[partition.NodeID]transport.Announcement {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	out := make(map[partition.NodeID]transport.Announcement, len(c.announcements))
	for id, a := range c.announcements {
		out[id] = a
	}
	return out
}

// announceAll has every healthy non-coordinator node report its holdings
// to the coordinator — called after topology-changing administration
// (rebalance commit, node failure, node recovery). Best-effort: an
// announcement lost to an injected fault is advisory state, not catalog
// truth, so errors are not propagated. Caller holds admin exclusive.
func (c *Cluster) announceAll() {
	if c.transport == nil {
		return
	}
	coord := c.Coordinator()
	epoch := c.epoch.Load()
	for _, id := range c.order {
		node := c.nodes[id]
		if id == coord || node.Health() == NodeDown {
			continue
		}
		_ = c.transport.Announce(id, coord, transport.Announcement{
			Node:         id,
			Health:       int32(node.Health()),
			Chunks:       int64(node.NumChunks()),
			Bytes:        node.Bytes(),
			Replicas:     int64(node.NumReplicas()),
			ReplicaBytes: node.ReplicaBytes(),
			Epoch:        epoch,
			Seq:          node.hbSeq.Add(1),
		})
	}
}

// pushWithRetry ships one receiver's batch over the transport, absorbing
// transient faults — dropped connections, torn streams — with the same
// attempt/backoff budget putWithRetry gives store faults. Delivery is
// receiver-atomic, so re-pushing the whole batch after a transient failure
// cannot double-apply. A non-transient error (the remote handler refused
// the batch) returns immediately. The returned bytes are the cumulative
// frame volume that actually crossed the wire, failed attempts included.
func (c *Cluster) pushWithRetry(from, to partition.NodeID, kind transport.BatchKind, chunks []*array.Chunk) (int64, error) {
	var wire int64
	var err error
	for attempt := 0; attempt < c.transferRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.transferBackoff << (attempt - 1))
		}
		var n int64
		n, err = c.transport.PushChunks(from, to, kind, chunks)
		wire += n
		if err == nil {
			return wire, nil
		}
		if !transport.IsTransient(err) {
			return wire, err
		}
	}
	return wire, err
}

// Close releases the cluster's transport endpoints (listeners, pooled
// connections). A transportless cluster has nothing to release.
func (c *Cluster) Close() error {
	if c.transport == nil {
		return nil
	}
	return c.transport.Close()
}
