package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/partition"
)

// feedRecorder collects every published batch, asserting the generation
// stamps arrive strictly increasing.
type feedRecorder struct {
	mu      sync.Mutex
	t       *testing.T
	gens    []uint64
	batches [][]PlacementEvent
}

func (r *feedRecorder) listen(gen uint64, events []PlacementEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.gens); n > 0 && gen <= r.gens[n-1] {
		r.t.Errorf("feed generation went backwards: %d after %d", gen, r.gens[n-1])
	}
	r.gens = append(r.gens, gen)
	r.batches = append(r.batches, append([]PlacementEvent(nil), events...))
}

func (r *feedRecorder) numBatches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.batches)
}

// allEvents flattens the recorded batches.
func (r *feedRecorder) allEvents() []PlacementEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []PlacementEvent
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

// TestFeedPublishesCommittedIngest: a committed batch publishes exactly
// one add per chunk with the catalog's owner, and the generation matches
// PlacementGen.
func TestFeedPublishesCommittedIngest(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	rec := &feedRecorder{t: t}
	if gen := c.SubscribePlacement(rec.listen); gen != 0 {
		t.Fatalf("fresh cluster should be at generation 0, got %d", gen)
	}
	chunks := makeChunks(t, 20, 6, 101)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	events := rec.allEvents()
	if len(events) != len(chunks) {
		t.Fatalf("want %d add events, got %d", len(chunks), len(events))
	}
	if got, want := c.PlacementGen(), uint64(1); got != want {
		t.Fatalf("one committed batch should leave generation %d, got %d", want, got)
	}
	for _, ev := range events {
		if ev.Kind != PlacementAdd {
			t.Fatalf("ingest published %v, want PlacementAdd", ev.Kind)
		}
		owner, ok := c.Owner(ev.Key)
		if !ok || owner != ev.Node {
			t.Fatalf("event says %s on node %d, catalog says %d (ok=%v)", ev.Key, ev.Node, owner, ok)
		}
		if ev.Size <= 0 {
			t.Fatalf("event for %s carries size %d", ev.Key, ev.Size)
		}
	}
}

// TestFeedPublishesCommittedRebalance: executed moves publish one move
// event each (old and new owner), in plan order.
func TestFeedPublishesCommittedRebalance(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	chunks := makeChunks(t, 12, 6, 102)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	rec := &feedRecorder{t: t}
	c.SubscribePlacement(rec.listen)
	nodes := c.Nodes()
	var moves []partition.Move
	for _, ch := range chunks[:5] {
		from, _ := c.Owner(ch.Key())
		to := nodes[0]
		if to == from {
			to = nodes[1]
		}
		moves = append(moves, partition.Move{Ref: ch.Ref(), From: from, To: to, Size: ch.SizeBytes()})
	}
	plan, err := c.PlanMigrate(moves)
	if err != nil {
		t.Fatal(err)
	}
	if rec.numBatches() != 0 {
		t.Fatal("planning must not publish")
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	events := rec.allEvents()
	if len(events) != len(moves) {
		t.Fatalf("want %d move events, got %d", len(moves), len(events))
	}
	for i, ev := range events {
		if ev.Kind != PlacementMove {
			t.Fatalf("rebalance published %v, want PlacementMove", ev.Kind)
		}
		if ev.Key != moves[i].Ref.Packed() || ev.From != moves[i].From || ev.Node != moves[i].To || ev.Size != moves[i].Size {
			t.Fatalf("event %d = %+v does not match move %+v", i, ev, moves[i])
		}
	}
}

// TestFeedSilentOnRollbackAndDiscard: the feed must describe committed
// placement only. A rolled-back rebalance, a rolled-back ingest, a
// discarded plan and a stale execution all publish nothing and leave the
// generation untouched — a subscriber can never see a phantom placement.
func TestFeedSilentOnRollbackAndDiscard(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	chunks := makeChunks(t, 20, 6, 103)
	if _, err := c.Insert(chunks[:16]); err != nil {
		t.Fatal(err)
	}
	rec := &feedRecorder{t: t}
	c.SubscribePlacement(rec.listen)
	gen0 := c.PlacementGen()

	// Discarded ingest plan: reservations released, nothing stored.
	plan, err := c.PlanInsert(chunks[16:18])
	if err != nil {
		t.Fatal(err)
	}
	plan.Discard()

	// Rolled-back rebalance: fault-inject the receiver's store so the
	// shipment fails after validation.
	victim := chunks[0]
	from, _ := c.Owner(victim.Key())
	to := c.Nodes()[0]
	if to == from {
		to = c.Nodes()[1]
	}
	dst, _ := c.Node(to)
	fs := NewFaultStore(dst.store)
	fs.FailPuts(victim.Ref(), -1)
	dst.store = fs
	moves := []partition.Move{{Ref: victim.Ref(), From: from, To: to, Size: victim.SizeBytes()}}
	if _, err := c.Migrate(moves); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Migrate should surface the injected failure, got %v", err)
	}

	// Rolled-back ingest: same injected fault on a fresh batch's chunk.
	fs.FailPuts(chunks[18].Ref(), -1)
	if _, err := c.Insert(chunks[16:]); err != nil {
		// The batch may or may not route the poisoned chunk to the
		// poisoned node; only a routed batch fails. Either way the feed
		// stays silent unless the batch committed.
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected insert error: %v", err)
		}
		if rec.numBatches() != 0 || c.PlacementGen() != gen0 {
			t.Fatalf("rolled-back work published %d batch(es), generation %d -> %d",
				rec.numBatches(), gen0, c.PlacementGen())
		}
		return
	}
	// The batch committed (fault not routed): exactly its adds published.
	events := rec.allEvents()
	if len(events) != len(chunks[16:]) {
		t.Fatalf("committed batch should publish %d events, got %d", len(chunks[16:]), len(events))
	}
	for _, ev := range events[:len(events)] {
		if ev.Kind != PlacementAdd {
			t.Fatalf("got %v, want PlacementAdd", ev.Kind)
		}
	}
}

// TestFeedSilentOnStalePlans: executions rejected for epoch staleness
// release their plans without publishing.
func TestFeedSilentOnStalePlans(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 16, 6, 104)
	if _, err := c.Insert(chunks[:12]); err != nil {
		t.Fatal(err)
	}
	rec := &feedRecorder{t: t}
	c.SubscribePlacement(rec.listen)

	ingest, err := c.PlanInsert(chunks[12:])
	if err != nil {
		t.Fatal(err)
	}
	// Scale-out planning bumps the epoch, staling the ingest plan. The
	// scale-out's own execution MAY move chunks, which publishes — record
	// the split.
	splan, err := c.PlanScaleOut(1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.numBatches() != 0 {
		t.Fatal("planning a scale-out must not publish")
	}
	splan.Discard()
	if rec.numBatches() != 0 {
		t.Fatal("discarding a scale-out plan must not publish")
	}
	if _, err := c.ExecutePlan(ingest); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale ingest plan should be rejected, got %v", err)
	}
	if rec.numBatches() != 0 || c.PlacementGen() != 0 {
		t.Fatalf("stale execution published %d batch(es), generation %d", rec.numBatches(), c.PlacementGen())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFeedInactiveCostsNothing: without a subscriber the generation never
// advances (and the hot path skips event construction entirely).
func TestFeedInactiveCostsNothing(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 8, 6, 105)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if got := c.PlacementGen(); got != 0 {
		t.Fatalf("unsubscribed feed advanced to generation %d", got)
	}
}

// TestFeedEpochAccessor: Epoch moves with scale-out planning and rebalance
// execution, and is readable without locks.
func TestFeedEpochAccessor(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 10, 6, 106)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	e0 := c.Epoch()
	splan, err := c.PlanScaleOut(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("PlanScaleOut should advance the epoch: %d -> %d", e0, c.Epoch())
	}
	splan.Discard()
	if c.Epoch() != e0+1 {
		t.Fatal("discarding a scale-out plan must not move the epoch again")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestQuiesceFreezesFeed: inside Quiesce no batch is pending and the
// generation is frozen — the consistent-snapshot contract rebuilds rely
// on.
func TestQuiesceFreezesFeed(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	rec := &feedRecorder{t: t}
	c.SubscribePlacement(rec.listen)
	chunks := makeChunks(t, 32, 6, 107)
	var wg sync.WaitGroup
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			_, _ = c.Insert(chunks[lane*8 : (lane+1)*8])
		}(lane)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			c.Quiesce(func() {
				g0 := c.PlacementGen()
				n0 := rec.numBatches()
				if g0 != uint64(n0) {
					t.Errorf("quiesced generation %d but %d batches delivered", g0, n0)
				}
			})
		}
	}()
	wg.Wait()
	<-done
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
