package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/partition"
)

// The placement change feed publishes what the two execution choke points
// committed — chunks added by ExecutePlan, chunks moved by
// ExecuteRebalance — as generation-stamped event batches, so observers
// such as the co-access advisor's continuous graph (advisor.Live) can
// maintain derived state incrementally instead of re-walking the cluster.
//
// The contract, in order of importance:
//
//   - Events describe only COMMITTED placement. A batch is published after
//     the all-or-nothing execution phase has succeeded, so a rolled-back
//     ingest or rebalance, a discarded plan, or a reservation released by
//     epoch staleness never produces an event — rollback cannot leak
//     phantom placements into a subscriber's view.
//   - Each published batch carries the feed generation it advanced the
//     cluster to. PlacementGen returns the generation of the last
//     published batch; a subscriber whose own generation matches it holds
//     a view that includes every committed change. Batches from
//     concurrent ingest executions are serialised by the feed (their
//     chunk sets are disjoint by catalog reservation, so the relative
//     order is immaterial).
//   - Delivery is synchronous, on the executing goroutine, while the
//     cluster's admin lock is held (shared for ingest, exclusive for
//     rebalance). Listeners must be fast, must not retain the event
//     slice past the call, and must not call back into cluster methods
//     that take the admin lock (PlanInsert, ExecutePlan, PlanMigrate,
//     Quiesce, …) — doing so deadlocks.
//
// The feed is free when unused: with no subscriber, execution skips event
// construction entirely and the generation never advances.

// PlacementEventKind classifies one placement change.
type PlacementEventKind uint8

const (
	// PlacementAdd: a new chunk was stored (ingest commit). Node is the
	// owner, Size its payload bytes.
	PlacementAdd PlacementEventKind = iota
	// PlacementMove: a stored chunk changed nodes (rebalance commit).
	// From is the previous owner, Node the new one.
	PlacementMove
	// PlacementRemove: a stored chunk left the serving placement. The
	// storage model is insert-only, so data is never deleted — but
	// FailNode emits a removal per primary chunk on the failed node so
	// derived-state consumers (advisor.Live) excise its edges; a later
	// PlanRecover promotion re-announces each surviving chunk with a
	// PlacementAdd on its new owner.
	PlacementRemove
)

// PlacementEvent is one committed placement change.
type PlacementEvent struct {
	Kind PlacementEventKind
	Key  array.ChunkKey
	// Node is the owner after the event (for PlacementRemove: the last
	// owner).
	Node partition.NodeID
	// From is the previous owner; meaningful for PlacementMove only.
	From partition.NodeID
	// Size is the chunk's payload bytes, carried on every kind so a
	// subscriber that missed the add can still reconstruct the chunk's
	// graph weight from a later move.
	Size int64
}

// PlacementListener receives one committed event batch and the feed
// generation it advances the cluster to. See the feed contract above for
// what a listener may and may not do.
type PlacementListener func(gen uint64, events []PlacementEvent)

// placementFeed is the cluster's change-feed state.
type placementFeed struct {
	// mu serialises publication: the generation advances and the batch is
	// delivered to every listener as one atomic step, so listeners see
	// batches in strictly increasing generation order.
	mu        sync.Mutex
	gen       atomic.Uint64
	listeners []PlacementListener
	// active lets the execution hot paths skip event construction with a
	// single atomic load when nobody subscribed.
	active atomic.Bool
}

// SubscribePlacement registers a listener for committed placement changes
// and returns the current feed generation; every batch published after
// the call (generation > the returned value) will be delivered.
// Subscriptions last for the life of the cluster.
func (c *Cluster) SubscribePlacement(fn PlacementListener) uint64 {
	c.feed.mu.Lock()
	defer c.feed.mu.Unlock()
	c.feed.listeners = append(c.feed.listeners, fn)
	c.feed.active.Store(true)
	return c.feed.gen.Load()
}

// PlacementGen returns the feed generation of the last committed placement
// change. A subscriber whose applied generation equals it is current
// (modulo batches still in flight on other goroutines, which publish
// before their execution call returns).
func (c *Cluster) PlacementGen() uint64 { return c.feed.gen.Load() }

// feedActive reports whether any listener is subscribed — the hot-path
// gate for skipping event construction.
func (c *Cluster) feedActive() bool { return c.feed.active.Load() }

// publishPlacement commits one event batch to the feed. Callers invoke it
// only after their execution phase has fully succeeded. Empty batches are
// dropped without advancing the generation.
//
// The generation is stored after delivery, so PlacementGen never runs
// ahead of what listeners have seen: a listener that applied every batch
// delivered to it is at or ahead of PlacementGen, which is what lets a
// consumer treat generation-match as "no rebuild needed" without a
// spurious miss in the delivery window. (Listeners may transiently be
// ahead; they are never behind a published generation.)
func (c *Cluster) publishPlacement(events []PlacementEvent) {
	if len(events) == 0 || !c.feed.active.Load() {
		return
	}
	c.feed.mu.Lock()
	defer c.feed.mu.Unlock()
	gen := c.feed.gen.Load() + 1
	for _, fn := range c.feed.listeners {
		fn(gen, events)
	}
	c.feed.gen.Store(gen)
}

// Quiesce runs fn while the cluster is administratively quiesced: no
// ingest or rebalance execution is in flight, no event batch is pending
// publication, and the placement, topology and feed generation are frozen
// for the duration of the call. It is the consistent-snapshot hook
// derived-state consumers rebuild from (advisor.Live falls back to it on
// first use or detected divergence). fn must not call cluster methods
// that take the admin lock — Insert, PlanInsert, ExecutePlan, ScaleOut,
// PlanScaleOut, PlanMigrate, ExecuteRebalance, Migrate, Validate,
// ReplicateArray, DefineArray or Quiesce itself — which would deadlock;
// the read accessors (Nodes, Node, Schema, Owner, PlacementGen, …) are
// all safe.
func (c *Cluster) Quiesce(fn func()) {
	c.admin.Lock()
	defer c.admin.Unlock()
	fn()
}

// Epoch returns the topology/table revision counter. It advances when a
// scale-out is planned (new nodes join, the partitioner's table is
// revised) and when a rebalance executes; outstanding ingest and
// rebalance plans are pinned to the epoch they were computed under and go
// stale when it moves. Unlike PlacementGen it also moves for committed
// topology changes that relocate no chunks, so epoch+generation together
// identify everything the advisor's cached plans depend on.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }
