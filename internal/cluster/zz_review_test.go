package cluster

import "testing"

// Review repro: R=2 on 2 nodes; fail one, recover via PlanRecover (want
// clamped to 0 secondaries), readmit the node. Is there any path back to
// a Validate-clean cluster?
func TestReviewClampedRecoveryThenReadmit(t *testing.T) {
	c := newReplicatedCluster(t, 2, 2)
	chunks := makeChunks(t, 8, 8, 1)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unrecoverable()) > 0 {
		t.Fatalf("unexpected unrecoverable: %v", plan.Unrecoverable())
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("degraded-but-recovered cluster should validate: %v", err)
	}
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	err = c.Validate()
	t.Logf("Validate after readmit: %v", err)
	if err != nil {
		// Is there any API to fix it? PlanRecover demands a down node.
		if _, perr := c.PlanRecover(victim); perr != nil {
			t.Logf("PlanRecover on healthy node: %v", perr)
		}
		t.Fatalf("cluster permanently fails Validate after readmit: %v", err)
	}
}
