package cluster

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

// TestPlanInsertExecute drives the two-phase ingest API explicitly: plan,
// inspect, execute, and verify the result matches what a one-shot Insert
// produces.
func TestPlanInsertExecute(t *testing.T) {
	c := newTestCluster(t, 4, kdFactory)
	chunks := makeChunks(t, 40, 10, 21)
	var want int64
	for _, ch := range chunks {
		want += ch.SizeBytes()
	}
	plan, err := c.PlanInsert(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumChunks() != 40 {
		t.Errorf("plan has %d chunks, want 40", plan.NumChunks())
	}
	if plan.Bytes() != want {
		t.Errorf("plan bytes = %d, want %d", plan.Bytes(), want)
	}
	if plan.LocalBytes()+plan.RemoteBytes() != plan.Bytes() {
		t.Error("local + remote must cover the batch")
	}
	if plan.NumDestinations() < 2 {
		t.Errorf("a 40-chunk k-d batch on 4 nodes should fan out, got %d destinations", plan.NumDestinations())
	}
	asgn := plan.Assignments()
	if len(asgn) != 40 {
		t.Fatalf("Assignments len = %d", len(asgn))
	}
	for i := 1; i < len(asgn); i++ {
		if !asgn[i-1].Info.Ref.Packed().Less(asgn[i].Info.Ref.Packed()) {
			t.Fatal("assignments must be in canonical chunk order")
		}
	}
	// The plan phase reserves: a second plan for the same chunks fails.
	if _, err := c.PlanInsert(chunks[:1]); err == nil {
		t.Error("planning an already-planned chunk must fail")
	}
	d, err := c.ExecutePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("execution must take simulated time")
	}
	// A plan executes at most once.
	if _, err := c.ExecutePlan(plan); err == nil {
		t.Error("double execution must fail")
	}
	if c.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", c.TotalBytes(), want)
	}
	// The catalog agrees with the plan's assignments.
	for _, a := range asgn {
		owner, ok := c.Owner(a.Info.Ref.Packed())
		if !ok || owner != a.Node {
			t.Fatalf("chunk %s: catalog says (%d,%v), plan said %d", a.Info.Ref, owner, ok, a.Node)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanDiscardReleasesReservations pins Discard: a backed-out plan
// leaves no trace, and the chunks become plannable again.
func TestPlanDiscardReleasesReservations(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 10, 6, 22)
	plan, err := c.PlanInsert(chunks)
	if err != nil {
		t.Fatal(err)
	}
	plan.Discard()
	plan.Discard() // idempotent
	if c.NumChunks() != 0 {
		t.Fatalf("discarded plan left %d catalog entries", c.NumChunks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Discarded plans cannot run.
	if _, err := c.ExecutePlan(plan); err == nil {
		t.Error("executing a discarded plan must fail")
	}
	// The chunks are free again.
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanRejectsInBatchDuplicates: the same chunk twice in one batch is a
// plan-phase error and nothing is stored or reserved.
func TestPlanRejectsInBatchDuplicates(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 3, 4, 23)
	batch := []*array.Chunk{chunks[0], chunks[1], chunks[0]}
	_, err := c.Insert(batch)
	if err == nil {
		t.Fatal("duplicate within batch must fail")
	}
	if !strings.Contains(err.Error(), "twice in one batch") {
		t.Errorf("unexpected error: %v", err)
	}
	if c.NumChunks() != 0 {
		t.Errorf("failed batch left %d chunks behind (must be atomic)", c.NumChunks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedInsertIsAtomic: a batch that fails validation mid-list (an
// undefined array after valid chunks) must leave the cluster untouched —
// the plan phase does all checking before anything is stored.
func TestFailedInsertIsAtomic(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	good := makeChunks(t, 5, 4, 24)
	other := array.MustSchema("Zzz",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 2}})
	orphan := array.NewChunk(other, array.ChunkCoord{4})
	if _, err := c.Insert(append(append([]*array.Chunk(nil), good...), orphan)); err == nil {
		t.Fatal("undefined array must fail the batch")
	}
	if c.NumChunks() != 0 || c.TotalBytes() != 0 {
		t.Error("failed batch must not leave partial state")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStalePlanRejectedAfterScaleOut: a plan computed before a topology
// change must not execute — its destinations came from the old table. The
// rejection releases the reservations so the batch can be replanned.
func TestStalePlanRejectedAfterScaleOut(t *testing.T) {
	c := newTestCluster(t, 2, kdFactory)
	chunks := makeChunks(t, 30, 8, 31)
	plan, err := c.PlanInsert(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleOut(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecutePlan(plan); err == nil {
		t.Fatal("executing a pre-scale-out plan must fail")
	}
	if c.NumChunks() != 0 {
		t.Fatalf("stale plan left %d catalog entries", c.NumChunks())
	}
	// Replanning against the new table works and validates.
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateReportsOutstandingPlan: a held plan means catalogued-but-
// unstored chunks; Validate must name that state instead of reporting
// phantom corruption.
func TestValidateReportsOutstandingPlan(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	plan, err := c.PlanInsert(makeChunks(t, 5, 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Validate()
	if err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("Validate with a held plan: %v", err)
	}
	if _, err := c.ExecutePlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedPlanDoesNotAdvanceStatefulScheme pins the plan-phase ordering:
// the catalog duplicate check runs before the partitioner sees the batch,
// so a rejected batch leaves a stateful scheme's table (Append's fill
// accounting) untouched.
func TestFailedPlanDoesNotAdvanceStatefulScheme(t *testing.T) {
	c, err := New(Config{
		InitialNodes: 2,
		NodeCapacity: 10 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			// Capacity sized so roughly three test chunks fill a node.
			return partition.NewAppend(initial, 3000), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	chunks := makeChunks(t, 4, 8, 33) // ~1200 bytes each
	if _, err := c.Insert(chunks[:1]); err != nil {
		t.Fatal(err)
	}
	// A failing batch: the already-stored chunk plus two fresh ones. If
	// placement ran before the duplicate check, Append would count all
	// three sizes against node 0 and spill the next insert early.
	if _, err := c.Insert(chunks[:3]); err == nil {
		t.Fatal("duplicate batch must fail")
	}
	if _, err := c.Insert(chunks[1:3]); err != nil {
		t.Fatal(err)
	}
	n0, _ := c.Node(c.Nodes()[0])
	if n0.NumChunks() != 3 {
		t.Errorf("node 0 holds %d chunks, want all 3 (failed batch must not advance the fill table)", n0.NumChunks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertBatches is the sharded-catalog concurrency test: many
// goroutines insert disjoint batches in parallel (run under -race in CI).
// Afterwards the catalog, the stores and the accounting must agree exactly.
func TestConcurrentInsertBatches(t *testing.T) {
	const (
		workers   = 8
		perWorker = 30
	)
	c := newTestCluster(t, 4, consistentFactory)
	all := makeChunks(t, workers*perWorker, 8, 25)
	var want int64
	for _, ch := range all {
		want += ch.SizeBytes()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		batch := all[w*perWorker : (w+1)*perWorker]
		wg.Add(1)
		go func(w int, batch []*array.Chunk) {
			defer wg.Done()
			_, errs[w] = c.Insert(batch)
		}(w, batch)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := c.NumChunks(); got != workers*perWorker {
		t.Fatalf("NumChunks = %d, want %d", got, workers*perWorker)
	}
	if got := c.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	// Concurrent lookups against the sharded catalog while validating.
	for _, ch := range all {
		if _, ok := c.Owner(ch.Key()); !ok {
			t.Fatalf("chunk %s lost", ch.Ref())
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertSameChunks: when racing batches overlap, exactly one
// wins each chunk — reservations in the plan phase prevent double
// placement — and the cluster stays consistent.
func TestConcurrentInsertSameChunks(t *testing.T) {
	const workers = 6
	c := newTestCluster(t, 3, consistentFactory)
	chunks := makeChunks(t, 20, 8, 26)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = c.Insert(chunks)
		}(w)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		}
	}
	if okCount != 1 {
		t.Fatalf("%d of %d racing identical batches succeeded, want exactly 1", okCount, workers)
	}
	if got := c.NumChunks(); got != 20 {
		t.Fatalf("NumChunks = %d, want 20", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertOrderIndependentPlacement: the cluster sorts batches into
// canonical order before placing, so a shuffled batch lands identically.
func TestInsertOrderIndependentPlacement(t *testing.T) {
	placements := func(shuffle bool) map[array.ChunkKey]int {
		c := newTestCluster(t, 3, kdFactory)
		chunks := makeChunks(t, 50, 8, 27)
		if shuffle {
			for i := len(chunks) - 1; i > 0; i-- {
				j := (i * 7) % (i + 1)
				chunks[i], chunks[j] = chunks[j], chunks[i]
			}
		}
		if _, err := c.Insert(chunks); err != nil {
			t.Fatal(err)
		}
		out := make(map[array.ChunkKey]int, len(chunks))
		for _, ch := range chunks {
			n, ok := c.Owner(ch.Key())
			if !ok {
				t.Fatalf("chunk %s lost", ch.Ref())
			}
			out[ch.Key()] = int(n)
		}
		return out
	}
	a, b := placements(false), placements(true)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("chunk %v placed on %d sorted, %d shuffled", k, v, b[k])
		}
	}
}
