package cluster

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/transport"
)

// IngestPlan is a validated batch placement, ready to execute: every chunk
// of the batch paired with its partitioner-assigned destination, with the
// paper's Eq 6 cost split (coordinator-local disk bytes vs. shipped
// network bytes) precomputed.
//
// Plans are produced by PlanInsert, which does all the fallible work —
// schema checks, duplicate detection within the batch and against the
// catalog, placement, destination validation — and reserves the chunks'
// catalog entries so no concurrent batch can claim them. A plan must then
// be either executed exactly once (ExecutePlan) or discarded (Discard) to
// release the reservations; Validate refuses to audit while plans are
// outstanding, since their chunks are catalogued but not yet stored.
//
// A plan is pinned to the cluster topology it was computed against: a
// rebalance committing between planning and execution — PlanScaleOut
// revising the table, or ExecuteRebalance (and the ScaleOut/Migrate
// wrappers) moving chunks — invalidates it (ExecutePlan releases its
// reservations and reports the staleness; plan the batch again against
// the new table).
//
// Note that a stateful scheme's table advances at planning time — Append's
// fill accounting counts a planned batch even if the plan is later
// discarded. Discard is an error-recovery hatch, not a free what-if probe.
type IngestPlan struct {
	c        *Cluster
	chunks   []*array.Chunk     // canonical (array, coordinate) order
	dests    []partition.NodeID // parallel to chunks
	sizes    []int64            // parallel to chunks, SizeBytes computed once
	destList []partition.NodeID // distinct destinations, first-seen order
	epoch    uint64             // topology epoch the placement was computed under
	// repDests holds the secondary copy placements, parallel to chunks;
	// nil at replication factor 1.
	repDests [][]partition.NodeID

	localBytes  int64
	remoteBytes int64

	// state: 0 = planned, 1 = executed, 2 = discarded.
	state atomic.Int32
}

// NumChunks returns the number of chunks the plan places.
func (p *IngestPlan) NumChunks() int { return len(p.chunks) }

// Bytes returns the total payload the plan ingests.
func (p *IngestPlan) Bytes() int64 { return p.localBytes + p.remoteBytes }

// LocalBytes returns the payload landing on the coordinator (charged at
// disk rate δ).
func (p *IngestPlan) LocalBytes() int64 { return p.localBytes }

// RemoteBytes returns the payload shipped to other nodes (charged at
// network rate t).
func (p *IngestPlan) RemoteBytes() int64 { return p.remoteBytes }

// NumDestinations returns how many distinct nodes receive chunks — the
// execution phase's maximum parallelism.
func (p *IngestPlan) NumDestinations() int { return len(p.destList) }

// Assignments materialises the plan's placement decisions in canonical
// chunk order, for inspection and tests.
func (p *IngestPlan) Assignments() []partition.Assignment {
	out := make([]partition.Assignment, len(p.chunks))
	for i, ch := range p.chunks {
		out[i] = partition.Assignment{
			Info: array.ChunkInfo{Ref: ch.Ref(), Size: p.sizes[i]},
			Node: p.dests[i],
		}
	}
	return out
}

// Discard releases an unexecuted plan's catalog reservations. Discarding
// an executed (or already discarded) plan is a no-op.
func (p *IngestPlan) Discard() {
	if p == nil || !p.state.CompareAndSwap(planStatePlanned, planStateDiscarded) {
		return
	}
	for _, ch := range p.chunks {
		p.c.owner.Delete(ch.Key())
	}
	p.c.pendingPlans.Add(-1)
}

const (
	planStatePlanned int32 = iota
	planStateExecuted
	planStateDiscarded
)

// Insert routes a batch of new chunks through the coordinator to their
// partitioner-assigned homes as one plan → execute round, following the
// paper's cost shape (Eq 6): the coordinator writes its local share at disk
// rate δ and ships the rest over the network at rate t, with the
// per-destination writes running in parallel. Chunks are placed in
// canonical order so placement is deterministic regardless of batch order.
// Inserting a chunk that already exists — or twice in one batch — is an
// error (no-overwrite storage), detected in the plan phase before anything
// is stored: a failed Insert changes nothing.
//
// Insert is safe for concurrent use; parallel batches interleave against
// the sharded catalog without double-placing.
func (c *Cluster) Insert(chunks []*array.Chunk) (Duration, error) {
	c.admin.RLock()
	defer c.admin.RUnlock()
	plan, err := c.planInsert(chunks)
	if err != nil {
		return 0, err
	}
	return c.executePlan(plan)
}

// PlanInsert validates and places a batch without storing anything: the
// fallible half of ingest. The returned plan has reserved its chunks in
// the catalog; pass it to ExecutePlan to make the writes (infallible in
// memory, atomic-per-batch on I/O error) or Discard it to back out.
func (c *Cluster) PlanInsert(chunks []*array.Chunk) (*IngestPlan, error) {
	c.admin.RLock()
	defer c.admin.RUnlock()
	return c.planInsert(chunks)
}

// ExecutePlan performs a plan's writes — one goroutine per destination
// node for batches wide enough to pay for the fan-out — and returns the
// simulated ingest duration. A plan executes at most once.
func (c *Cluster) ExecutePlan(plan *IngestPlan) (Duration, error) {
	c.admin.RLock()
	defer c.admin.RUnlock()
	return c.executePlan(plan)
}

// planInsert is the plan phase. Caller holds admin (shared).
func (c *Cluster) planInsert(chunks []*array.Chunk) (*IngestPlan, error) {
	c.planMu.Lock()
	defer c.planMu.Unlock()

	// Canonical order via an index sort: keys land once in a contiguous
	// scratch array (cache-friendly comparisons, no chunk-pointer chasing
	// in the comparator) and the sort swaps 4-byte indexes. Scratch
	// buffers are grown once to the batch size and reused across batches
	// (guarded by planMu); the plan keeps its own slices.
	if cap(c.keyScratch) < len(chunks) {
		c.keyScratch = make([]array.ChunkKey, 0, len(chunks))
		c.idxScratch = make([]int32, 0, len(chunks))
	}
	if cap(c.infoScratch) < len(chunks) {
		c.infoScratch = make([]array.ChunkInfo, 0, len(chunks))
	}
	keys := c.keyScratch[:0]
	idx := c.idxScratch[:0]
	for i, ch := range chunks {
		keys = append(keys, ch.Key())
		idx = append(idx, int32(i))
	}
	c.keyScratch, c.idxScratch = keys, idx
	slices.SortFunc(idx, func(a, b int32) int {
		if keys[a].Less(keys[b]) {
			return -1
		}
		if keys[b].Less(keys[a]) {
			return 1
		}
		return 0
	})

	plan := &IngestPlan{
		c:      c,
		chunks: make([]*array.Chunk, len(chunks)),
		dests:  make([]partition.NodeID, len(chunks)),
		sizes:  make([]int64, len(chunks)),
	}
	infos := c.infoScratch[:0]
	var prev array.ChunkKey
	var checkedSchema *array.Schema
	for i, j := range idx {
		ch := chunks[j]
		plan.chunks[i] = ch
		// Batches are overwhelmingly single-array: check each distinct
		// schema once by pointer instead of probing the registry per
		// chunk.
		if ch.Schema != checkedSchema {
			if _, ok := c.schemas[ch.Schema.Name]; !ok {
				return nil, fmt.Errorf("cluster: insert into undefined array %s", ch.Schema.Name)
			}
			checkedSchema = ch.Schema
		}
		key := keys[j]
		if i > 0 && key == prev {
			return nil, fmt.Errorf("cluster: chunk %s appears twice in one batch", ch.Ref())
		}
		prev = key
		// Duplicate check against the catalog happens here, BEFORE the
		// partitioner sees the batch: a rejected batch must not advance
		// a stateful scheme's table (Append's fill accounting). Between
		// this probe and the reservation below nothing can add catalog
		// entries — planMu excludes other planners and the admin lock
		// excludes migration — so the check is exact.
		if _, dup := c.owner.Get(key); dup {
			return nil, fmt.Errorf("cluster: chunk %s already stored (no-overwrite model)", ch.Ref())
		}
		plan.sizes[i] = ch.SizeBytes()
		infos = append(infos, array.ChunkInfo{Ref: ch.Ref(), Size: plan.sizes[i]})
	}
	c.infoScratch = infos

	asgn, err := c.part.PlaceBatch(infos, c)
	if err != nil {
		return nil, fmt.Errorf("cluster: partitioner rejected batch: %w", err)
	}
	if len(asgn) != len(infos) {
		return nil, fmt.Errorf("cluster: partitioner returned %d assignments for %d chunks", len(asgn), len(infos))
	}
	coord := c.Coordinator()
	degraded := c.downCount.Load() > 0
	var healthy []partition.NodeID
	repWant := 0
	if degraded || c.replication > 1 {
		healthy = c.healthyNodes()
	}
	if c.replication > 1 {
		repWant = c.replication
		if repWant > len(healthy) {
			repWant = len(healthy)
		}
		repWant--
		plan.repDests = make([][]partition.NodeID, len(chunks))
	}
	for i, a := range asgn {
		dest := a.Node
		node, ok := c.nodes[dest]
		if !ok {
			return nil, fmt.Errorf("cluster: partitioner placed %s on unknown node %d", plan.chunks[i].Ref(), dest)
		}
		if degraded && node.Health() == NodeDown {
			// The partitioner's table still names the Down node; divert
			// the placement deterministically onto a healthy one rather
			// than rejecting ingest while the cluster is degraded.
			fb, ok := partition.FallbackNode(plan.chunks[i].Key(), healthy)
			if !ok {
				return nil, fmt.Errorf("cluster: no healthy node to place %s on", plan.chunks[i].Ref())
			}
			dest = fb
		}
		plan.dests[i] = dest
		if !slices.Contains(plan.destList, dest) {
			plan.destList = append(plan.destList, dest)
		}
		if dest == coord {
			plan.localBytes += plan.sizes[i]
		} else {
			plan.remoteBytes += plan.sizes[i]
		}
		if repWant > 0 {
			reps := partition.ReplicaNodes(plan.chunks[i].Key(), dest, healthy, nil, repWant)
			if len(reps) < repWant {
				return nil, fmt.Errorf("cluster: cannot place %d secondary copy(ies) of %s: only %d healthy candidate(s)", repWant, plan.chunks[i].Ref(), len(reps))
			}
			plan.repDests[i] = reps
			// Secondary copies ride the same ingest fan-out: coordinator
			// copies at disk rate, shipped ones at network rate (Eq 6).
			for _, r := range reps {
				if r == coord {
					plan.localBytes += plan.sizes[i]
				} else {
					plan.remoteBytes += plan.sizes[i]
				}
			}
		}
	}
	// Reserve the batch in the catalog. Everything fallible has passed —
	// and the duplicate probe above plus the locks held here guarantee
	// the claims cannot collide — so a reservation failure is an
	// invariant breach, not a user error.
	for i, ch := range plan.chunks {
		if !c.owner.Reserve(ch.Key(), plan.dests[i]) {
			panic(fmt.Sprintf("cluster: chunk %s reappeared in the catalog during planning", ch.Ref()))
		}
	}
	plan.epoch = c.epoch.Load()
	c.pendingPlans.Add(1)
	return plan, nil
}

// parallelIngestThreshold is the batch size below which per-node fan-out
// goroutines cost more than they save.
const parallelIngestThreshold = 32

// executePlan is the execution phase. Caller holds admin (shared).
func (c *Cluster) executePlan(plan *IngestPlan) (Duration, error) {
	if plan == nil {
		return 0, fmt.Errorf("cluster: nil ingest plan")
	}
	if plan.c != c {
		return 0, fmt.Errorf("cluster: ingest plan belongs to another cluster")
	}
	if plan.epoch != c.epoch.Load() {
		// The topology (and possibly the partitioning table) changed
		// since planning; the destinations are stale. Release the
		// reservations so the batch can be planned again.
		plan.Discard()
		return 0, fmt.Errorf("cluster: ingest plan is stale (topology changed since planning); plan the batch again")
	}
	if !plan.state.CompareAndSwap(planStatePlanned, planStateExecuted) {
		return 0, fmt.Errorf("cluster: ingest plan already executed or discarded")
	}
	if err := c.writePlan(plan); err != nil {
		c.pendingPlans.Add(-1)
		return 0, err
	}
	if plan.repDests != nil {
		if c.transport != nil {
			// Over a transport the secondary copies are fallible pushes;
			// a persistent failure rolls the whole batch back — primaries,
			// replicas and catalog — keeping ingest atomic.
			if err := c.pushPlanReplicas(plan); err != nil {
				c.rollbackWrites(plan, func(int) bool { return true })
				c.pendingPlans.Add(-1)
				return 0, err
			}
		} else {
			// Secondary copies commit after the primary writes succeeded: a
			// rolled-back batch leaves no replica state behind. In-memory
			// replica placement is infallible, so the batch stays atomic.
			for i, ch := range plan.chunks {
				for _, r := range plan.repDests[i] {
					c.nodes[r].putReplica(ch)
				}
				c.owner.SetReplicas(ch.Key(), plan.repDests[i])
			}
		}
	}
	c.inserted.Add(int64(len(plan.chunks)))
	c.pendingPlans.Add(-1)
	// The batch is committed — stores written, catalog final — so the
	// placement feed can see it. A failed batch rolled everything back
	// above and publishes nothing.
	if c.feedActive() {
		events := make([]PlacementEvent, len(plan.chunks))
		for i, ch := range plan.chunks {
			events[i] = PlacementEvent{Kind: PlacementAdd, Key: ch.Key(), Node: plan.dests[i], Size: plan.sizes[i]}
		}
		c.publishPlacement(events)
	}
	return c.cost.DiskTime(plan.localBytes) + c.cost.NetTime(plan.remoteBytes), nil
}

// writePlan stores the plan's chunks, fanning out one goroutine per
// destination node when there is hardware parallelism and the batch is
// wide enough to pay for it. On any store error it rolls the whole batch
// back — stores and catalog — so a failed batch leaves the cluster exactly
// as it was.
func (c *Cluster) writePlan(plan *IngestPlan) error {
	if c.transport != nil {
		return c.writePlanTransport(plan)
	}
	if len(plan.destList) <= 1 || len(plan.chunks) < parallelIngestThreshold || runtime.GOMAXPROCS(0) == 1 {
		for i, ch := range plan.chunks {
			if err := c.nodes[plan.dests[i]].put(ch); err != nil {
				c.rollbackWrites(plan, func(j int) bool { return j < i })
				return err
			}
		}
		return nil
	}
	// Each destination's goroutine scans the shared dests slice for its
	// own indexes: no prebuilt per-node index lists, no cross-goroutine
	// writes inside the loop (counts are published once, at the end).
	errs := make([]error, len(plan.destList))
	counts := make([]int, len(plan.destList))
	var wg sync.WaitGroup
	for gi, id := range plan.destList {
		node := c.nodes[id]
		wg.Add(1)
		go func(gi int, id partition.NodeID) {
			defer wg.Done()
			done := 0
			for i, dest := range plan.dests {
				if dest != id {
					continue
				}
				if err := node.put(plan.chunks[i]); err != nil {
					errs[gi] = err
					break
				}
				done++
			}
			counts[gi] = done
		}(gi, id)
	}
	wg.Wait()
	for gi := range errs {
		if errs[gi] == nil {
			continue
		}
		// Roll back every goroutine's written prefix and the batch's
		// catalog reservations.
		remaining := make(map[partition.NodeID]int, len(plan.destList))
		for gj, id := range plan.destList {
			remaining[id] = counts[gj]
		}
		c.rollbackWrites(plan, func(j int) bool {
			if remaining[plan.dests[j]] > 0 {
				remaining[plan.dests[j]]--
				return true
			}
			return false
		})
		return errs[gi]
	}
	return nil
}

// writePlanTransport is writePlan's wire path: the coordinator streams one
// KindIngest batch per destination node over the cluster transport, each
// push retried against transient faults. Delivery is receiver-atomic, so a
// failed destination contributed nothing; the destinations that did commit
// are unwound, leaving the cluster exactly as it was.
func (c *Cluster) writePlanTransport(plan *IngestPlan) error {
	coord := c.Coordinator()
	batch := make([]*array.Chunk, 0, len(plan.chunks))
	for di, id := range plan.destList {
		batch = batch[:0]
		for i, dest := range plan.dests {
			if dest == id {
				batch = append(batch, plan.chunks[i])
			}
		}
		if _, err := c.pushWithRetry(coord, id, transport.KindIngest, batch); err != nil {
			// Unwind the destinations delivered before this one and drop
			// the batch's catalog reservations.
			deliveredTo := plan.destList[:di]
			c.rollbackWrites(plan, func(j int) bool {
				return slices.Contains(deliveredTo, plan.dests[j])
			})
			return fmt.Errorf("cluster: ingest batch for node %d: %w", id, err)
		}
	}
	return nil
}

// pushPlanReplicas ships an ingest plan's secondary copies as one
// KindReplica batch per replica destination. The catalog's replica sets
// commit only after every push lands; on a persistent failure the
// already-delivered replica payloads are taken back and the error returned
// for the caller's primary rollback.
func (c *Cluster) pushPlanReplicas(plan *IngestPlan) error {
	coord := c.Coordinator()
	byDest := make(map[partition.NodeID][]*array.Chunk)
	var destOrder []partition.NodeID
	for i, ch := range plan.chunks {
		for _, r := range plan.repDests[i] {
			if _, seen := byDest[r]; !seen {
				destOrder = append(destOrder, r)
			}
			byDest[r] = append(byDest[r], ch)
		}
	}
	for di, id := range destOrder {
		if _, err := c.pushWithRetry(coord, id, transport.KindReplica, byDest[id]); err != nil {
			for _, prev := range destOrder[:di] {
				for _, ch := range byDest[prev] {
					c.nodes[prev].takeReplica(ch.Key())
				}
			}
			return fmt.Errorf("cluster: replica batch for node %d: %w", id, err)
		}
	}
	for i, ch := range plan.chunks {
		c.owner.SetReplicas(ch.Key(), plan.repDests[i])
	}
	return nil
}

// rollbackWrites takes back every plan chunk for which written reports
// true (called in index order) and drops the whole batch's catalog
// reservations.
func (c *Cluster) rollbackWrites(plan *IngestPlan, written func(i int) bool) {
	for i := range plan.chunks {
		if written(i) {
			_, _ = c.nodes[plan.dests[i]].take(plan.chunks[i].Ref())
		}
	}
	for _, ch := range plan.chunks {
		c.owner.Delete(ch.Key())
	}
}
