package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

func testSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 63, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 63, ChunkInterval: 4},
		})
}

func consistentFactory(initial []partition.NodeID) (partition.Partitioner, error) {
	return partition.NewConsistentHash(initial, 64), nil
}

func kdFactory(initial []partition.NodeID) (partition.Partitioner, error) {
	return partition.NewKdTree(initial, partition.Geometry{Extents: []int64{16, 16}}, false)
}

func newTestCluster(t testing.TB, nodes int, factory PartitionerFactory) *Cluster {
	t.Helper()
	c, err := New(Config{
		InitialNodes: nodes,
		NodeCapacity: 10 << 20,
		Partitioner:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	return c
}

// makeChunks builds n chunks with `cells` occupied cells each, scattered
// over distinct grid slots.
func makeChunks(t testing.TB, n, cells int, seed int64) []*array.Chunk {
	t.Helper()
	s := testSchema()
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	var out []*array.Chunk
	for len(out) < n {
		cc := array.ChunkCoord{rng.Int63n(16), rng.Int63n(16)}
		if used[cc.Key()] {
			continue
		}
		used[cc.Key()] = true
		ch := array.NewChunk(s, cc)
		origin := s.ChunkOrigin(cc)
		for k := 0; k < cells; k++ {
			cell := array.Coord{origin[0] + int64(k%4), origin[1] + int64((k/4)%4)}
			ch.AppendCell(cell, []array.CellValue{{Float: rng.Float64()}})
		}
		out = append(out, ch)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InitialNodes: 0, NodeCapacity: 1, Partitioner: consistentFactory}); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := New(Config{InitialNodes: 2, NodeCapacity: 0, Partitioner: consistentFactory}); err == nil {
		t.Error("0 capacity should fail")
	}
	if _, err := New(Config{InitialNodes: 2, NodeCapacity: 1}); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := New(Config{InitialNodes: 2, NodeCapacity: 1, Partitioner: consistentFactory,
		Cost: CostModel{DeltaSecPerByte: -1, TSecPerByte: 1, CPUSecPerCell: 1}}); err == nil {
		t.Error("bad cost model should fail")
	}
}

func TestInsertStoresAndAccounts(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 20, 8, 1)
	var want int64
	for _, ch := range chunks {
		want += ch.SizeBytes()
	}
	d, err := c.Insert(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("insert must take simulated time")
	}
	if got := c.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if c.NumChunks() != 20 {
		t.Errorf("NumChunks = %d, want 20", c.NumChunks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsDuplicatesAndUndefined(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 1, 4, 2)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(chunks); err == nil {
		t.Error("duplicate insert must fail (no-overwrite)")
	}
	other := array.MustSchema("Zed",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 2}})
	orphan := array.NewChunk(other, array.ChunkCoord{0})
	if _, err := c.Insert([]*array.Chunk{orphan}); err == nil {
		t.Error("insert into undefined array must fail")
	}
}

func TestInsertCostLocalVsRemote(t *testing.T) {
	// With one node everything is a local disk write; with two, part of
	// the batch crosses the (slower) network, so per-byte cost rises.
	single := newTestCluster(t, 1, consistentFactory)
	chunks := makeChunks(t, 30, 16, 3)
	dSingle, err := single.Insert(chunks)
	if err != nil {
		t.Fatal(err)
	}
	double := newTestCluster(t, 2, consistentFactory)
	dDouble, err := double.Insert(makeChunks(t, 30, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if dDouble <= dSingle {
		t.Errorf("remote inserts should cost more: 1 node %v, 2 nodes %v", dSingle, dDouble)
	}
}

func TestScaleOutMigratesAndValidates(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	if _, err := c.Insert(makeChunks(t, 60, 10, 4)); err != nil {
		t.Fatal(err)
	}
	before := c.TotalBytes()
	res, err := c.ScaleOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", c.NumNodes())
	}
	if res.Moves == 0 || res.MovedBytes == 0 || res.Reorg <= 0 {
		t.Errorf("scale-out should have moved data: %+v", res)
	}
	if c.TotalBytes() != before {
		t.Errorf("scale-out must conserve bytes: %d -> %d", before, c.TotalBytes())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// New nodes actually hold data.
	var newBytes int64
	for _, id := range res.Added {
		newBytes += c.NodeLoad(id)
	}
	if newBytes == 0 {
		t.Error("new nodes hold nothing after reorganization")
	}
}

func TestScaleOutRejectsBadK(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	if _, err := c.ScaleOut(0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestScaleOutKdTreeIncremental(t *testing.T) {
	c := newTestCluster(t, 2, kdFactory)
	if _, err := c.Insert(makeChunks(t, 80, 12, 5)); err != nil {
		t.Fatal(err)
	}
	loadsBefore := map[partition.NodeID]int64{}
	for _, id := range c.Nodes() {
		loadsBefore[id] = c.NodeLoad(id)
	}
	res, err := c.ScaleOut(1)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental property at the cluster level: preexisting nodes only
	// lose bytes, never gain.
	for id, before := range loadsBefore {
		if c.NodeLoad(id) > before {
			t.Errorf("preexisting node %d grew during incremental scale-out", id)
		}
	}
	if c.NodeLoad(res.Added[0]) == 0 {
		t.Error("new node should have received the split half")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateArray(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	vs := array.MustSchema("Vessel",
		[]array.Attribute{{Name: "typ", Type: array.Int32}},
		[]array.Dimension{{Name: "vessel_id", Start: 0, End: 999, ChunkInterval: 1000}})
	ch := array.NewChunk(vs, array.ChunkCoord{0})
	for i := int64(0); i < 100; i++ {
		ch.AppendCell(array.Coord{i}, []array.CellValue{{Int: i % 7}})
	}
	d, err := c.ReplicateArray(vs, []*array.Chunk{ch})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("replication should take network time")
	}
	for _, id := range c.Nodes() {
		n, _ := c.Node(id)
		if len(n.Replicas()) != 1 {
			t.Errorf("node %d has %d replicas, want 1", id, len(n.Replicas()))
		}
	}
	// Replicas follow the cluster to new nodes.
	if _, err := c.ScaleOut(1); err != nil {
		t.Fatal(err)
	}
	last := c.Nodes()[c.NumNodes()-1]
	n, _ := c.Node(last)
	if len(n.Replicas()) != 1 {
		t.Error("new node missing replica after scale-out")
	}
	// Replicated bytes are excluded from partitioned accounting.
	if c.TotalBytes() != 0 {
		t.Error("replicas must not count as partitioned storage")
	}
}

func TestRSDAndLoads(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	if c.RSD() != 0 {
		t.Error("empty cluster RSD should be 0")
	}
	if _, err := c.Insert(makeChunks(t, 40, 10, 6)); err != nil {
		t.Fatal(err)
	}
	loads := c.Loads()
	if len(loads) != 2 {
		t.Fatalf("Loads len = %d", len(loads))
	}
	if loads[0]+loads[1] != float64(c.TotalBytes()) {
		t.Error("loads must sum to total")
	}
}

func TestCoordinatorIsLowestID(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	if c.Coordinator() != 0 {
		t.Errorf("coordinator = %d, want 0", c.Coordinator())
	}
}

func TestDefineArrayDuplicate(t *testing.T) {
	c := newTestCluster(t, 1, consistentFactory)
	if err := c.DefineArray(testSchema()); err == nil {
		t.Error("duplicate DefineArray should fail")
	}
	if _, ok := c.Schema("A"); !ok {
		t.Error("schema A should be registered")
	}
}

func TestGrowthSequenceMatchesPaperSetup(t *testing.T) {
	// The Section 6.2 configuration: start with 2 nodes, add 2 at a
	// time, end with 8, inserting between expansions.
	c := newTestCluster(t, 2, kdFactory)
	all := makeChunks(t, 120, 10, 100)
	for step := 0; step < 3; step++ {
		if _, err := c.Insert(all[step*40 : (step+1)*40]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ScaleOut(2); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("after step %d: %v", step, err)
		}
	}
	if c.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", c.NumNodes())
	}
	if c.NumChunks() != 120 {
		t.Fatalf("NumChunks = %d, want 120", c.NumChunks())
	}
}

func TestCostModelHelpers(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.DiskTime(100<<20) <= 0 || m.NetTime(1<<20) <= 0 || m.CPUTime(1000) <= 0 {
		t.Error("cost helpers must be positive for positive input")
	}
	if m.NetTime(1<<20) <= m.DiskTime(1<<20) {
		t.Error("network must cost more than disk (t > δ)")
	}
	d := Duration(90)
	if d.Minutes() != 1.5 || d.Seconds() != 90 {
		t.Error("duration conversions wrong")
	}
}
