package cluster

import (
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

func BenchmarkInsertBatch(b *testing.B) {
	chunks := makeBenchChunks(b, 60, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newBenchCluster(b, 4)
		b.StartTimer()
		if _, err := c.Insert(chunks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	chunks := makeBenchChunks(b, 120, 20)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newBenchCluster(b, 2)
		if _, err := c.Insert(chunks); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.ScaleOut(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	c := newBenchCluster(b, 4)
	if _, err := c.Insert(makeBenchChunks(b, 120, 20)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchCluster(b *testing.B, nodes int) *Cluster {
	b.Helper()
	c, err := New(Config{
		InitialNodes: nodes,
		NodeCapacity: 64 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewKdTree(initial, partition.Geometry{Extents: []int64{16, 16}}, false)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		b.Fatal(err)
	}
	return c
}

func makeBenchChunks(b *testing.B, n, cells int) []*array.Chunk {
	b.Helper()
	return makeChunks(b, n, cells, 99)
}
