package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

func lookupFor(s *array.Schema) func(string) (*array.Schema, bool) {
	return func(name string) (*array.Schema, bool) {
		if name == s.Name {
			return s, true
		}
		return nil, false
	}
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore()
	chunks := makeChunks(t, 5, 8, 11)
	for _, ch := range chunks {
		if err := s.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(chunks[0]); err == nil {
		t.Error("duplicate Put should fail")
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	var want int64
	for _, ch := range chunks {
		want += ch.SizeBytes()
	}
	if s.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), want)
	}
	refs := s.Refs()
	for i := 1; i < len(refs); i++ {
		prev, cur := refs[i-1], refs[i]
		inOrder := prev.Array < cur.Array ||
			(prev.Array == cur.Array && prev.Coords.Less(cur.Coords))
		if !inOrder {
			t.Error("Refs must be in canonical (array, coordinate) order")
		}
	}
	got, err := s.Take(chunks[2].Ref())
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref().Key() != chunks[2].Ref().Key() {
		t.Error("Take returned the wrong chunk")
	}
	if _, err := s.Take(chunks[2].Ref()); err == nil {
		t.Error("double Take should fail")
	}
	if _, ok := s.Get(chunks[2].Ref()); ok {
		t.Error("taken chunk should be gone")
	}
}

func TestDiskStoreWriteThroughAndReopen(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	s, err := NewDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	chunks := makeChunks(t, 6, 10, 13)
	for _, ch := range chunks {
		if err := s.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	// One file per chunk on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("%d files on disk, want 6", len(entries))
	}
	// Take removes the mirror.
	if _, err := s.Take(chunks[0].Ref()); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 5 {
		t.Fatalf("%d files after Take, want 5", len(entries))
	}
	// Reopen recovers the surviving contents exactly.
	re, err := OpenDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 5 {
		t.Fatalf("reopened store has %d chunks, want 5", re.Len())
	}
	if re.Bytes() != s.Bytes() {
		t.Errorf("reopened bytes %d != live bytes %d", re.Bytes(), s.Bytes())
	}
	for _, ref := range s.Refs() {
		a, _ := s.Get(ref)
		b, ok := re.Get(ref)
		if !ok {
			t.Fatalf("chunk %s missing after reopen", ref)
		}
		if a.Len() != b.Len() || a.SizeBytes() != b.SizeBytes() {
			t.Fatalf("chunk %s differs after reopen", ref)
		}
	}
}

func TestOpenDiskStoreRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	s, err := NewDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	chunks := makeChunks(t, 2, 6, 17)
	for _, ch := range chunks {
		if err := s.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if err := os.WriteFile(filepath.Join(dir, entries[0].Name()), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(dir, lookupFor(schema)); err == nil {
		t.Error("corrupt chunk file must fail recovery loudly")
	}
	// Unknown array names fail too.
	other := array.MustSchema("Other",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{{Name: "x", Start: 0, End: 9, ChunkInterval: 2}})
	if _, err := OpenDiskStore(dir, lookupFor(other)); err == nil {
		t.Error("unknown array must fail recovery")
	}
	if _, err := NewDiskStore(dir, nil); err == nil {
		t.Error("nil lookup must be rejected")
	}
}

func TestClusterWithStorageDirPersistsChunks(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		InitialNodes: 2,
		NodeCapacity: 10 << 20,
		StorageDir:   dir,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewConsistentHash(initial, 32), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema()
	if err := c.DefineArray(schema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(makeChunks(t, 30, 8, 19)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleOut(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-node directories mirror exactly what each node serves, and a
	// migrated chunk's file moved with it.
	totalFiles := 0
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		st, err := OpenDiskStore(filepath.Join(dir, "node-"+itoa(int(id))), lookupFor(schema))
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != node.NumChunks() {
			t.Errorf("node %d: %d files, %d chunks in memory", id, st.Len(), node.NumChunks())
		}
		totalFiles += st.Len()
	}
	if totalFiles != c.NumChunks() {
		t.Errorf("disk holds %d chunks, catalog %d", totalFiles, c.NumChunks())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestDiskStoreFileNamesUnchanged pins the exact on-disk file names (the
// escaped string key format) so the packed-key refactor can never change
// what a store directory looks like: stores written before the refactor
// must reopen byte-for-byte after it.
func TestDiskStoreFileNamesUnchanged(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	s, err := NewDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range []array.ChunkCoord{{0, 0}, {3, 12}, {15, 7}} {
		ch := array.NewChunk(schema, cc)
		origin := schema.ChunkOrigin(cc)
		ch.AppendCell(origin, []array.CellValue{{Float: 1.0}})
		if err := s.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]bool{
		"A-0_0.chunk":  true,
		"A-3_12.chunk": true,
		"A-15_7.chunk": true,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("%d files on disk, want %d", len(entries), len(want))
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("unexpected file name %q", e.Name())
		}
	}
	// A directory with exactly these legacy names reopens cleanly.
	re, err := OpenDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(want) {
		t.Fatalf("reopened %d chunks, want %d", re.Len(), len(want))
	}
	// And the wire bytes round-trip identically through the reopened store.
	for _, ref := range s.Refs() {
		a, _ := s.Get(ref)
		b, _ := re.Get(ref)
		wa, err := array.EncodeChunk(a)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := array.EncodeChunk(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wa, wb) {
			t.Errorf("chunk %s wire bytes differ after reopen", ref)
		}
	}
}

func TestDiskStorePutCrashSafety(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	s, err := NewDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatal(err)
	}
	chunks := makeChunks(t, 4, 8, 17)
	for _, ch := range chunks {
		if err := s.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	// Put commits by rename: a completed store never leaves .tmp litter
	// and every .chunk file decodes whole.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != chunkFileExt {
			t.Errorf("unexpected file %q after committed puts", e.Name())
		}
	}

	// Simulate a crash mid-write: a half-written temp file next to the
	// committed mirrors, including one shadowing a committed chunk.
	for _, name := range []string{"A-9_9.chunk.tmp", "A-0_0.chunk.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenDiskStore(dir, lookupFor(schema))
	if err != nil {
		t.Fatalf("reopen over stale temp files: %v", err)
	}
	if re.Len() != len(chunks) {
		t.Fatalf("reopened %d chunks, want %d", re.Len(), len(chunks))
	}
	// The sweep removed the torn writes; the committed data is untouched.
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(chunks) {
		t.Fatalf("%d files after sweep, want %d", len(entries), len(chunks))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != chunkFileExt {
			t.Errorf("stale file %q survived the sweep", e.Name())
		}
	}
	for _, ch := range chunks {
		got, ok := re.Get(ch.Ref())
		if !ok {
			t.Fatalf("chunk %s lost to the sweep", ch.Ref())
		}
		wa, err := array.EncodeChunk(ch)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := array.EncodeChunk(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wa, wb) {
			t.Errorf("chunk %s bytes differ after crash recovery", ch.Ref())
		}
	}
}
