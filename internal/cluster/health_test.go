package cluster

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
)

// newReplicatedCluster builds a cluster at the given replication factor
// with the test schema defined.
func newReplicatedCluster(t testing.TB, nodes, replication int) *Cluster {
	t.Helper()
	c, err := New(Config{
		InitialNodes:      nodes,
		NodeCapacity:      10 << 20,
		Partitioner:       consistentFactory,
		ReplicationFactor: replication,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	return c
}

// pickVictim returns a non-coordinator node owning at least one chunk.
func pickVictim(t *testing.T, c *Cluster) partition.NodeID {
	t.Helper()
	for _, id := range c.Nodes() {
		if id == c.Coordinator() {
			continue
		}
		node, _ := c.Node(id)
		if node.NumChunks() > 0 {
			return id
		}
	}
	t.Fatal("no non-coordinator node owns chunks")
	return 0
}

func TestFailNodeValidation(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	if err := c.FailNode(99); err == nil {
		t.Error("failing an unknown node must error")
	}
	if err := c.FailNode(c.Coordinator()); err == nil {
		t.Error("failing the coordinator must error")
	}
	if _, err := c.RecoverNode(1); err == nil {
		t.Error("recovering a healthy node must error")
	}
	if err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(1); err == nil {
		t.Error("double-failing a node must error")
	}
	if !c.Degraded() {
		t.Error("cluster with a down node must report Degraded")
	}
	if h, ok := c.NodeHealthOf(1); !ok || h != NodeDown {
		t.Errorf("NodeHealthOf(1) = %v, %v; want NodeDown", h, ok)
	}
	if got := c.HealthyNodes(); len(got) != 2 {
		t.Errorf("HealthyNodes = %v, want 2 nodes", got)
	}
	if _, err := c.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Error("cluster must be healthy after RecoverNode")
	}
}

func TestReplicatedIngestPlacesSecondaries(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	chunks := makeChunks(t, 24, 8, 7)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		owner, ok := c.Owner(ch.Key())
		if !ok {
			t.Fatalf("chunk %s not catalogued", ch.Ref())
		}
		reps := c.ReplicaHolders(ch.Key())
		if len(reps) != 1 {
			t.Fatalf("chunk %s has %d secondaries, want 1", ch.Ref(), len(reps))
		}
		if reps[0] == owner {
			t.Fatalf("chunk %s secondary collocated with its primary on node %d", ch.Ref(), owner)
		}
		holder, _ := c.Node(reps[0])
		rep, ok := holder.Replica(ch.Ref())
		if !ok {
			t.Fatalf("node %d misses its secondary of %s", reps[0], ch.Ref())
		}
		if rep.SizeBytes() != ch.SizeBytes() {
			t.Fatalf("secondary of %s is %d bytes, want %d", ch.Ref(), rep.SizeBytes(), ch.SizeBytes())
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKillNodeDrill is the headline recovery scenario: ingest at R=2, kill
// a node, recover every lost primary from surviving replicas, validate
// clean.
func TestKillNodeDrill(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	chunks := makeChunks(t, 30, 8, 11)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	vnode, _ := c.Node(victim)
	lostPrimaries := vnode.NumChunks()
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	// The degraded cluster fails Validate loudly, pointing at PlanRecover.
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded Validate = %v, want degraded error", err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost := plan.Unrecoverable(); len(lost) != 0 {
		t.Fatalf("R=2 recovery reported %d unrecoverable chunk(s): %v", len(lost), lost)
	}
	if plan.NumRecoveries() < lostPrimaries {
		t.Fatalf("plan recovers %d chunks, the down node owned %d", plan.NumRecoveries(), lostPrimaries)
	}
	d, err := c.ExecuteRebalance(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("recovery must take simulated time")
	}
	// Every chunk must be reachable again, owned by a healthy node.
	for _, ch := range chunks {
		owner, ok := c.Owner(ch.Key())
		if !ok {
			t.Fatalf("chunk %s lost from catalog", ch.Ref())
		}
		if owner == victim {
			t.Fatalf("chunk %s still owned by the down node", ch.Ref())
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-recovery Validate: %v", err)
	}
	// Readmit the repaired node: stale payloads dropped, replica arrays
	// backfilled, cluster clean again.
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
	if vnode.NumChunks() != 0 {
		t.Errorf("readmitted node still holds %d re-owned primaries", vnode.NumChunks())
	}
}

func TestPlanRecoverReportsUnrecoverableAtR1(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory) // replication factor 1
	chunks := makeChunks(t, 20, 8, 13)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	vnode, _ := c.Node(victim)
	var want []array.ChunkRef
	for _, info := range vnode.ChunkInfos() {
		want = append(want, info.Ref)
	}
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRecoveries() != 0 {
		t.Errorf("R=1 plan recovers %d chunks, want 0", plan.NumRecoveries())
	}
	lost := plan.Unrecoverable()
	if len(lost) != len(want) {
		t.Fatalf("plan lists %d unrecoverable chunks, the node owned %d", len(lost), len(want))
	}
	wantSet := make(map[array.ChunkKey]bool, len(want))
	for _, ref := range want {
		wantSet[ref.Packed()] = true
	}
	for _, ref := range lost {
		if !wantSet[ref.Packed()] {
			t.Errorf("unrecoverable list names %s, which the node did not own", ref)
		}
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	// Nothing was restorable: the cluster stays accountably degraded.
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Validate = %v, want degraded (lost chunks stay catalogued)", err)
	}
	// Readmitting the node with its data intact heals everything.
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
}

func TestFailNodePublishesRemovals(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	chunks := makeChunks(t, 12, 8, 17)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	vnode, _ := c.Node(victim)
	owned := vnode.NumChunks()
	var mu sync.Mutex
	events := map[PlacementEventKind]int{}
	c.SubscribePlacement(func(gen uint64, batch []PlacementEvent) {
		mu.Lock()
		for _, e := range batch {
			events[e.Kind]++
		}
		mu.Unlock()
	})
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	removes := events[PlacementRemove]
	mu.Unlock()
	if removes != owned {
		t.Errorf("FailNode published %d removals, node owned %d chunks", removes, owned)
	}
	// Promotions re-announce the chunks on their new owners.
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	adds := events[PlacementAdd]
	mu.Unlock()
	if adds != owned {
		t.Errorf("recovery published %d adds, want %d promotions", adds, owned)
	}
}

func TestRebalanceRetryAbsorbsTransientFaults(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 24, 8, 19)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanScaleOut(1)
	if err != nil {
		t.Fatal(err)
	}
	added := plan.Added()
	if len(added) != 1 {
		t.Fatalf("added %v, want one node", added)
	}
	dst, _ := c.Node(added[0])
	fs := NewFaultStore(dst.store)
	fs.FailNextPuts(2) // two transient faults, retries default to 3 attempts
	dst.store = fs
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatalf("retry should absorb 2 transient faults: %v", err)
	}
	if got := fs.Injected(); got != 2 {
		t.Errorf("FaultStore injected %d faults, want 2", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceRetryExhaustionRollsBack(t *testing.T) {
	c, err := New(Config{
		InitialNodes:    2,
		NodeCapacity:    10 << 20,
		Partitioner:     consistentFactory,
		TransferRetries: 2,
		TransferBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	chunks := makeChunks(t, 24, 8, 23)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	before := c.TotalBytes()
	plan, err := c.PlanScaleOut(1)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := c.Node(plan.Added()[0])
	fs := NewFaultStore(dst.store)
	fs.FailNextPuts(10) // outlasts the 2 attempts: a permanent fault
	dst.store = fs
	if _, err := c.ExecuteRebalance(plan); !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted retries must surface the injected fault, got %v", err)
	}
	if got := c.TotalBytes(); got != before {
		t.Errorf("rollback left %d bytes, want %d", got, before)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("rollback must leave the cluster clean: %v", err)
	}
}

func TestValidateReplicaAuditCatchesDrift(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	chunks := makeChunks(t, 10, 8, 29)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove one secondary payload behind the catalog's back.
	victim := chunks[0]
	reps := c.ReplicaHolders(victim.Key())
	if len(reps) != 1 {
		t.Fatalf("chunk %s has %d secondaries, want 1", victim.Ref(), len(reps))
	}
	holder, _ := c.Node(reps[0])
	if _, ok := holder.takeReplica(victim.Key()); !ok {
		t.Fatal("secondary payload missing before the audit")
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "misses its assigned secondary") {
		t.Fatalf("Validate = %v, want missing-secondary error", err)
	}
	holder.putReplica(victim)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanningRoutesAroundDownNodes(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	seed := makeChunks(t, 10, 8, 31)
	if _, err := c.Insert(seed); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	// Ingest while degraded: placements divert off the down node.
	more := makeChunks(t, 40, 8, 37)
	var fresh []*array.Chunk
	seen := make(map[array.ChunkKey]bool)
	for _, ch := range seed {
		seen[ch.Key()] = true
	}
	for _, ch := range more {
		if !seen[ch.Key()] {
			fresh = append(fresh, ch)
			seen[ch.Key()] = true
		}
	}
	if len(fresh) == 0 {
		t.Fatal("no fresh chunks to insert")
	}
	if _, err := c.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	for _, ch := range fresh {
		owner, _ := c.Owner(ch.Key())
		if owner == victim {
			t.Fatalf("degraded ingest placed %s on the down node", ch.Ref())
		}
		for _, h := range c.ReplicaHolders(ch.Key()) {
			if h == victim {
				t.Fatalf("degraded ingest placed a secondary of %s on the down node", ch.Ref())
			}
		}
	}
	// Migrating onto or off the down node is rejected at planning time.
	var onVictim, healthyRef array.ChunkRef
	for _, ch := range seed {
		if owner, _ := c.Owner(ch.Key()); owner == victim {
			onVictim = ch.Ref()
		} else {
			healthyRef = ch.Ref()
		}
	}
	if onVictim.Array != "" {
		_, err := c.PlanMigrate([]partition.Move{{Ref: onVictim, From: victim, To: c.Coordinator()}})
		if err == nil || !strings.Contains(err.Error(), "down node") {
			t.Errorf("moving off a down node: err = %v, want down-node rejection", err)
		}
	}
	if healthyRef.Array != "" {
		owner, _ := c.Owner(healthyRef.Packed())
		_, err := c.PlanMigrate([]partition.Move{{Ref: healthyRef, From: owner, To: victim}})
		if err == nil || !strings.Contains(err.Error(), "down node") {
			t.Errorf("moving onto a down node: err = %v, want down-node rejection", err)
		}
	}
}

// TestChaosFailRecoverUnderLoad interleaves the failure lifecycle with
// concurrent ingest and recovery planning on a fixed topology, then heals
// the cluster and audits it. Run under -race this doubles as the
// concurrency check for the health state machinery.
func TestChaosFailRecoverUnderLoad(t *testing.T) {
	c, err := New(Config{
		InitialNodes:      4,
		NodeCapacity:      64 << 20,
		Partitioner:       consistentFactory,
		ReplicationFactor: 2,
		TransferBackoff:   time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(makeChunks(t, 30, 8, 41)); err != nil {
		t.Fatal(err)
	}
	// Fixed topology for the concurrent phase: snapshot reads like Nodes()
	// must not race scale-out, per the cluster's concurrency contract.
	victims := []partition.NodeID{1, 2, 3} // non-coordinators
	tolerable := func(err error) bool {
		if err == nil {
			return true
		}
		for _, frag := range []string{
			"stale", "down", "already", "not down", "degraded",
			"duplicate", "already catalogued",
		} {
			if strings.Contains(err.Error(), frag) {
				return true
			}
		}
		return false
	}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	report := func(err error) {
		if !tolerable(err) {
			select {
			case errCh <- err:
			default:
			}
		}
	}
	// Ingester: fresh chunk batches, distinct grid slots per goroutine via
	// disjoint seed ranges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := testSchema()
		rng := rand.New(rand.NewSource(43))
		for i := 0; i < iters; i++ {
			cc := array.ChunkCoord{rng.Int63n(16), rng.Int63n(16)}
			ch := array.NewChunk(s, cc)
			origin := s.ChunkOrigin(cc)
			ch.AppendCell(array.Coord{origin[0], origin[1]}, []array.CellValue{{Float: rng.Float64()}})
			report(errIgnoreDuplicate(c, ch))
		}
	}()
	// Failure injector: fail and recover random non-coordinators.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(47))
		for i := 0; i < iters; i++ {
			id := victims[rng.Intn(len(victims))]
			if rng.Intn(2) == 0 {
				report(c.FailNode(id))
			} else {
				_, err := c.RecoverNode(id)
				report(err)
			}
		}
	}()
	// Recovery planner: plan and execute recoveries against whatever is
	// down right now; stale plans and healthy nodes are expected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(53))
		for i := 0; i < iters; i++ {
			id := victims[rng.Intn(len(victims))]
			plan, err := c.PlanRecover(id)
			if err != nil {
				report(err)
				continue
			}
			if rng.Intn(4) == 0 {
				plan.Discard()
				continue
			}
			_, err = c.ExecuteRebalance(plan)
			report(err)
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("chaos surfaced an intolerable error: %v", err)
	default:
	}
	// Heal: recover every down node, then restore redundancy.
	for _, id := range victims {
		if h, _ := c.NodeHealthOf(id); h == NodeDown {
			if _, err := c.RecoverNode(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Re-replicate anything the churn left short of secondaries: recovery
	// planning also repairs shortfalls caused by past failures.
	if err := c.FailNode(victims[0]); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victims[0])
	if err != nil {
		t.Fatal(err)
	}
	if lost := plan.Unrecoverable(); len(lost) != 0 {
		t.Fatalf("final recovery found %d unrecoverable chunk(s): %v", len(lost), lost)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverNode(victims[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-chaos Validate: %v", err)
	}
}

// errIgnoreDuplicate inserts one chunk, treating a duplicate-placement
// rejection (another goroutine claimed the slot) as success.
func errIgnoreDuplicate(c *Cluster, ch *array.Chunk) error {
	_, err := c.Insert([]*array.Chunk{ch})
	if err != nil && strings.Contains(err.Error(), "already") {
		return nil
	}
	return err
}
