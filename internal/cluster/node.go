package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/partition"
)

// NodeHealth is a node's availability state in the failure lifecycle.
type NodeHealth int32

const (
	// NodeHealthy: the node serves reads and accepts placements.
	NodeHealthy NodeHealth = iota
	// NodeDown: the node is unreachable. Planning routes around it,
	// queries fail chunk reads over to surviving replicas, and Validate
	// reports any primary still catalogued to it as degraded.
	NodeDown
	// NodeSuspect: the failure detector has lost heartbeats past the
	// suspect threshold but not yet the down threshold. A suspect node
	// still serves and accepts placements — suspicion is advisory until
	// the detector's Down verdict makes the supervisor call FailNode —
	// but Validate reports it so drills can assert the intermediate
	// state.
	NodeSuspect
)

func (h NodeHealth) String() string {
	switch h {
	case NodeDown:
		return "down"
	case NodeSuspect:
		return "suspect"
	}
	return "healthy"
}

// Node is one shared-nothing host: a chunk store with a storage capacity.
// Payloads are held decoded (and mirrored to disk when the cluster is
// configured with a storage directory); sizes are accounted with the same
// array.Chunk.SizeBytes the partitioners see.
type Node struct {
	ID       partition.NodeID
	Capacity int64

	store ChunkStore
	// health is written only under the cluster's admin-exclusive lock
	// (FailNode/RecoverNode/MarkNodeSuspect); atomic so lock-free
	// readers — the query layer's failover checks — observe it without
	// the admin lock.
	health atomic.Int32
	// hbSeq is the node's monotonic heartbeat sequence counter, stamped
	// into every Announcement it emits so the coordinator's failure
	// detector can tell fresh beats from stale redeliveries. Atomic: the
	// heartbeat loop increments it lock-free.
	hbSeq atomic.Uint64
	// repMu guards replicas and repBytes. The map holds both fully
	// replicated arrays (present on every node) and, at replication
	// factor >= 2, the node's assigned secondary copies of primary
	// chunks; both are excluded from partitioned storage accounting.
	// Concurrent ingest executions write secondaries under the shared
	// admin lock, so unlike health a plain mutex is required.
	repMu    sync.RWMutex
	replicas map[array.ChunkKey]*array.Chunk
	repBytes int64
}

func newNode(id partition.NodeID, capacity int64, store ChunkStore) *Node {
	if store == nil {
		store = NewMemStore()
	}
	return &Node{
		ID:       id,
		Capacity: capacity,
		store:    store,
		replicas: make(map[array.ChunkKey]*array.Chunk),
	}
}

// Health returns the node's availability state. Safe to read lock-free;
// transitions happen only through Cluster.FailNode / Cluster.RecoverNode.
func (n *Node) Health() NodeHealth { return NodeHealth(n.health.Load()) }

func (n *Node) setHealth(h NodeHealth) { n.health.Store(int32(h)) }

// Bytes returns the partitioned storage footprint of the node.
func (n *Node) Bytes() int64 { return n.store.Bytes() }

// ReplicaBytes returns the footprint of replica payloads on the node:
// fully replicated arrays plus assigned secondary copies of primaries.
func (n *Node) ReplicaBytes() int64 {
	n.repMu.RLock()
	defer n.repMu.RUnlock()
	return n.repBytes
}

// NumChunks returns the number of partitioned chunks resident.
func (n *Node) NumChunks() int { return n.store.Len() }

func (n *Node) put(c *array.Chunk) error {
	if err := n.store.Put(c); err != nil {
		return fmt.Errorf("cluster: node %d: %w", n.ID, err)
	}
	return nil
}

func (n *Node) take(ref array.ChunkRef) (*array.Chunk, error) {
	c, err := n.store.Take(ref)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", n.ID, err)
	}
	return c, nil
}

func (n *Node) get(ref array.ChunkRef) (*array.Chunk, bool) {
	return n.store.Get(ref)
}

// Chunk returns the resident partitioned chunk with the given identity.
func (n *Node) Chunk(ref array.ChunkRef) (*array.Chunk, bool) { return n.get(ref) }

// Replica returns the resident replica chunk with the given identity —
// a fully replicated array's copy or an assigned secondary of a primary.
func (n *Node) Replica(ref array.ChunkRef) (*array.Chunk, bool) {
	n.repMu.RLock()
	c, ok := n.replicas[ref.Packed()]
	n.repMu.RUnlock()
	return c, ok
}

func (n *Node) putReplica(c *array.Chunk) {
	key := c.Key()
	n.repMu.Lock()
	if old, ok := n.replicas[key]; ok {
		n.repBytes -= old.SizeBytes()
	}
	n.replicas[key] = c
	n.repBytes += c.SizeBytes()
	n.repMu.Unlock()
}

// takeReplica removes and returns a replica payload, reporting whether it
// was present.
func (n *Node) takeReplica(key array.ChunkKey) (*array.Chunk, bool) {
	n.repMu.Lock()
	defer n.repMu.Unlock()
	c, ok := n.replicas[key]
	if !ok {
		return nil, false
	}
	delete(n.replicas, key)
	n.repBytes -= c.SizeBytes()
	return c, true
}

// NumReplicas returns the number of replica payloads resident.
func (n *Node) NumReplicas() int {
	n.repMu.RLock()
	defer n.repMu.RUnlock()
	return len(n.replicas)
}

// Chunks returns the node's partitioned chunks in canonical order.
func (n *Node) Chunks() []*array.Chunk {
	refs := n.store.Refs()
	out := make([]*array.Chunk, 0, len(refs))
	for _, ref := range refs {
		if c, ok := n.store.Get(ref); ok {
			out = append(out, c)
		}
	}
	return out
}

// Replicas returns the node's replica chunks in canonical order.
func (n *Node) Replicas() []*array.Chunk {
	n.repMu.RLock()
	defer n.repMu.RUnlock()
	keys := make([]array.ChunkKey, 0, len(n.replicas))
	for k := range n.replicas {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	out := make([]*array.Chunk, 0, len(keys))
	for _, k := range keys {
		out = append(out, n.replicas[k])
	}
	return out
}

// ChunkInfos returns placement metadata for the node's partitioned chunks
// in canonical order.
func (n *Node) ChunkInfos() []array.ChunkInfo {
	cs := n.Chunks()
	out := make([]array.ChunkInfo, len(cs))
	for i, c := range cs {
		out[i] = array.ChunkInfo{Ref: c.Ref(), Size: c.SizeBytes()}
	}
	return out
}
