package cluster

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/partition"
)

// Node is one shared-nothing host: a chunk store with a storage capacity.
// Payloads are held decoded (and mirrored to disk when the cluster is
// configured with a storage directory); sizes are accounted with the same
// array.Chunk.SizeBytes the partitioners see.
type Node struct {
	ID       partition.NodeID
	Capacity int64

	store ChunkStore
	// replicas holds fully replicated arrays (e.g. the AIS vessel
	// array), present on every node and excluded from partitioned
	// storage accounting.
	replicas map[array.ChunkKey]*array.Chunk
	repBytes int64
}

func newNode(id partition.NodeID, capacity int64, store ChunkStore) *Node {
	if store == nil {
		store = NewMemStore()
	}
	return &Node{
		ID:       id,
		Capacity: capacity,
		store:    store,
		replicas: make(map[array.ChunkKey]*array.Chunk),
	}
}

// Bytes returns the partitioned storage footprint of the node.
func (n *Node) Bytes() int64 { return n.store.Bytes() }

// ReplicaBytes returns the footprint of replicated arrays on the node.
func (n *Node) ReplicaBytes() int64 { return n.repBytes }

// NumChunks returns the number of partitioned chunks resident.
func (n *Node) NumChunks() int { return n.store.Len() }

func (n *Node) put(c *array.Chunk) error {
	if err := n.store.Put(c); err != nil {
		return fmt.Errorf("cluster: node %d: %w", n.ID, err)
	}
	return nil
}

func (n *Node) take(ref array.ChunkRef) (*array.Chunk, error) {
	c, err := n.store.Take(ref)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", n.ID, err)
	}
	return c, nil
}

func (n *Node) get(ref array.ChunkRef) (*array.Chunk, bool) {
	return n.store.Get(ref)
}

// Chunk returns the resident partitioned chunk with the given identity.
func (n *Node) Chunk(ref array.ChunkRef) (*array.Chunk, bool) { return n.get(ref) }

// Replica returns the resident replicated chunk with the given identity.
func (n *Node) Replica(ref array.ChunkRef) (*array.Chunk, bool) {
	c, ok := n.replicas[ref.Packed()]
	return c, ok
}

func (n *Node) putReplica(c *array.Chunk) {
	key := c.Key()
	if old, ok := n.replicas[key]; ok {
		n.repBytes -= old.SizeBytes()
	}
	n.replicas[key] = c
	n.repBytes += c.SizeBytes()
}

// Chunks returns the node's partitioned chunks in canonical order.
func (n *Node) Chunks() []*array.Chunk {
	refs := n.store.Refs()
	out := make([]*array.Chunk, 0, len(refs))
	for _, ref := range refs {
		if c, ok := n.store.Get(ref); ok {
			out = append(out, c)
		}
	}
	return out
}

// Replicas returns the node's replicated chunks in canonical order.
func (n *Node) Replicas() []*array.Chunk {
	keys := make([]array.ChunkKey, 0, len(n.replicas))
	for k := range n.replicas {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	out := make([]*array.Chunk, 0, len(keys))
	for _, k := range keys {
		out = append(out, n.replicas[k])
	}
	return out
}

// ChunkInfos returns placement metadata for the node's partitioned chunks
// in canonical order.
func (n *Node) ChunkInfos() []array.ChunkInfo {
	cs := n.Chunks()
	out := make([]array.ChunkInfo, len(cs))
	for i, c := range cs {
		out[i] = array.ChunkInfo{Ref: c.Ref(), Size: c.SizeBytes()}
	}
	return out
}
