package cluster

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// Heartbeats: every non-coordinator node periodically announces itself to
// the coordinator over the transport, stamping a monotonic sequence number
// the failure detector keys liveness off. The emission path is lock-free —
// it reads the liveNodes snapshot and per-node atomics only — so a long
// administrative operation (a big rebalance holding admin exclusive) never
// stalls heartbeats and cascades false suspicion.
//
// Heartbeats are emitted for every node the cluster still hosts in-process
// regardless of recorded health: a node the coordinator marked Down but
// whose process is actually alive keeps beating, which is exactly how the
// supervisor learns it may be readmitted. Killing a node for real means
// cutting its transport links (FaultTransport.IsolateNode, or an actual
// dead TCP endpoint) — then its heartbeats stop arriving, which is the
// point.

// publishLiveNodes rebuilds the lock-free node snapshot the heartbeat loop
// walks. Caller holds admin exclusive (or is inside New).
func (c *Cluster) publishLiveNodes() {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	c.liveNodes.Store(out)
}

// HeartbeatNow emits one heartbeat from every non-coordinator node to the
// coordinator, best-effort, and reports how many were attempted. Lock-free:
// safe to call on a tight timer concurrently with ingest, queries and
// administration. No-op without a transport.
func (c *Cluster) HeartbeatNow() int {
	if c.transport == nil {
		return 0
	}
	nodes, _ := c.liveNodes.Load().([]*Node)
	if len(nodes) == 0 {
		return 0
	}
	coord := nodes[0].ID
	epoch := c.epoch.Load()
	sent := 0
	for _, node := range nodes[1:] {
		_ = c.transport.Announce(node.ID, coord, transport.Announcement{
			Node:         node.ID,
			Health:       int32(node.Health()),
			Chunks:       int64(node.NumChunks()),
			Bytes:        node.Bytes(),
			Replicas:     int64(node.NumReplicas()),
			ReplicaBytes: node.ReplicaBytes(),
			Epoch:        epoch,
			Seq:          node.hbSeq.Add(1),
		})
		sent++
	}
	return sent
}

// StartHeartbeats emits heartbeats every interval until the returned stop
// function is called. Stop is idempotent and returns only after the loop
// has exited.
func (c *Cluster) StartHeartbeats(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.HeartbeatNow()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
