package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/transport"
)

// PartitionerFactory builds the cluster's placement scheme once the initial
// node IDs exist (the scheme's table is seeded from them).
type PartitionerFactory func(initial []partition.NodeID) (partition.Partitioner, error)

// Cluster is the elastic shared-nothing array database: a coordinator, a
// growing set of nodes, a partitioner, and the authoritative chunk catalog.
// It implements partition.State so the partitioner can consult placement.
//
// Scale-out is monotonic — the paper's databases never coalesce nodes —
// and data mutation is insert-only per the no-overwrite storage model.
//
// Ingest runs as a plan → execute pipeline (see PlanInsert) and is safe for
// concurrent use: any number of Insert/PlanInsert/ExecutePlan calls may run
// in parallel, with the plan phase serialised over the partitioner table
// and the execution phase writing per-destination-node in parallel against
// the sharded catalog and the locked node stores. Administration
// (DefineArray, ReplicateArray, the rebalance pipeline PlanScaleOut /
// PlanMigrate / ExecuteRebalance and its ScaleOut / Migrate wrappers,
// Validate) is exclusive among itself and against ingest: it waits for
// in-flight ingest calls to drain and blocks new ones while it runs.
//
// The concurrency contract covers exactly that: ingest vs. ingest, ingest
// vs. administration, plus the lock-free readers Owner, NumChunks and
// Schema. The remaining read accessors (Nodes, Loads, Node, NodeChunks,
// TotalBytes, …) are snapshots for drivers and tests; callers must not
// race them against administration calls that mutate topology.
type Cluster struct {
	cost   CostModel
	part   partition.Partitioner
	nodes  map[partition.NodeID]*Node
	order  []partition.NodeID // ascending
	owner  *ownerCatalog
	nextID partition.NodeID

	// schemaMu is a leaf lock making Schema readable concurrently with
	// DefineArray (queries consult schemas while drivers set up arrays).
	// Writers additionally hold admin exclusive, so plan-phase reads of
	// the map under admin shared need no extra lock.
	schemaMu sync.RWMutex
	schemas  map[string]*array.Schema

	// admin is the ingest/administration phase lock: Insert, PlanInsert
	// and ExecutePlan hold it shared (so batches overlap each other);
	// topology and audit operations hold it exclusively (so they see —
	// and leave — a quiesced cluster).
	admin sync.RWMutex
	// planMu serialises the plan phase proper: the partitioner's table,
	// the schema registry reads and the scratch buffers below. Catalog
	// reservations happen under it, so two concurrent plans can never
	// claim the same chunk.
	planMu sync.Mutex
	// keyScratch, idxScratch and infoScratch are plan-phase working
	// buffers, reused across batches instead of reallocated per Insert
	// (guarded by planMu).
	keyScratch  []array.ChunkKey
	idxScratch  []int32
	infoScratch []array.ChunkInfo

	nodeCapacity int64
	storageDir   string
	// parallelism caps the query layer's scan-executor worker pool.
	// Atomic so benchmark sweeps can retune it between runs without
	// racing a straggling query's read.
	parallelism atomic.Int32
	// inserted preserves the global count of ingested chunks for audit.
	inserted atomic.Int64
	// epoch counts topology/table revisions (PlanScaleOut commits one,
	// ExecuteRebalance commits one per plan that moves chunks). Ingest
	// and rebalance plans are pinned to the epoch they were computed
	// under and go stale when it moves. Written under admin exclusive;
	// atomic so the lock-free reader Epoch (the advisor's cached-plan
	// key) can observe it without the admin lock.
	epoch atomic.Uint64
	// feed is the committed placement change feed (see feed.go).
	feed placementFeed
	// pendingPlans counts planned-but-not-yet-executed batches, whose
	// chunks are catalogued but not stored; Validate refuses to audit
	// while any are outstanding.
	pendingPlans atomic.Int64
	// pendingRebalances counts planned-but-not-yet-executed rebalances
	// (RebalancePlan); Validate names them too, so a leaked plan fails
	// loudly instead of surfacing as phantom catalog drift.
	pendingRebalances atomic.Int64

	// replication is the configured copy count per primary chunk (>= 1).
	// At 1 (the default) nothing below is exercised and ingest behaves
	// exactly as before.
	replication int
	// transferRetries/transferBackoff bound the retry loop rebalance
	// shipping runs against transient store faults before falling back to
	// atomic rollback (see putWithRetry).
	transferRetries int
	transferBackoff time.Duration
	// downCount tracks how many nodes are Down — the lock-free gate the
	// query layer's failover path checks so a healthy cluster pays one
	// atomic load and nothing else.
	downCount atomic.Int32
	// repChunks/repKeys are the authoritative registry of fully
	// replicated arrays (ReplicateArray): the copy source for scale-out
	// and node recovery, and the expectation Validate audits every
	// healthy node against. Mutated and read under admin exclusive.
	repChunks []*array.Chunk
	repKeys   map[array.ChunkKey]bool

	// transport, when non-nil, is the node transport every inter-node
	// data path routes through: ingest writes, rebalance receiver
	// batches, replica copies, query-layer chunk pulls and holdings
	// announcements. nil (the default) keeps the original fully
	// in-process code paths, byte-for-byte.
	transport transport.Transport
	// annMu guards announcements, the coordinator-side registry of each
	// node's latest self-reported holdings (a leaf lock: announcements
	// arrive from handler callbacks while admin is held), and annSink.
	annMu         sync.Mutex
	announcements map[partition.NodeID]transport.Announcement
	// annSink, when set, observes every recorded announcement — the
	// failure detector's heartbeat feed. Invoked outside annMu, but
	// possibly from a handler callback while admin is held exclusively
	// (announceAll over the loopback transport delivers synchronously),
	// so a sink must never take cluster locks.
	annSink func(transport.Announcement)
	// liveNodes is a lock-free snapshot of the node set (*Node slice,
	// coordinator first) for the heartbeat loop: HeartbeatNow must not
	// take the admin lock, or a long administrative operation — a big
	// rebalance, a recovery — would stall heartbeats and cascade false
	// suspicion across the cluster. Rebuilt under admin exclusive
	// wherever the node set grows (New, scale-out planning).
	liveNodes atomic.Value // []*Node
}

// newStore builds the chunk store for a node per the cluster's storage
// configuration.
func (c *Cluster) newStore(id partition.NodeID) (ChunkStore, error) {
	if c.storageDir == "" {
		return NewMemStore(), nil
	}
	return NewDiskStore(
		filepath.Join(c.storageDir, fmt.Sprintf("node-%d", id)),
		func(name string) (*array.Schema, bool) { return c.Schema(name) },
	)
}

// Config assembles a cluster.
type Config struct {
	// InitialNodes is the starting node count (the paper's experiments
	// begin with 2).
	InitialNodes int
	// NodeCapacity is the per-node storage capacity in bytes (the
	// paper's 100 GB, scaled).
	NodeCapacity int64
	// Cost is the simulated-time model; zero value selects
	// DefaultCostModel.
	Cost CostModel
	// Partitioner builds the placement scheme over the initial nodes.
	Partitioner PartitionerFactory
	// StorageDir, when non-empty, gives every node a write-through
	// DiskStore under StorageDir/node-<id>, so chunk payloads survive
	// the process (re-index with OpenDiskStore).
	StorageDir string
	// Parallelism caps the worker pool of the query layer's scan
	// executor (query.Exec). 0, the default, gates the pool at
	// GOMAXPROCS; an explicit value is honoured as given, so benchmark
	// sweeps can pin 1/2/4/8 workers regardless of the host's core
	// count. Retune a live cluster with SetParallelism.
	Parallelism int
	// ReplicationFactor is how many copies of every primary chunk the
	// cluster keeps: 1 (the default) stores primaries only — exactly the
	// pre-fault-tolerance behaviour — while R >= 2 has ingest place R-1
	// secondary copies on distinct healthy nodes (rendezvous-hashed away
	// from the primary), tracked by the catalog and kept consistent
	// across rebalances. Must not exceed InitialNodes.
	ReplicationFactor int
	// TransferRetries is the total number of attempts rebalance shipping
	// makes per chunk store write before treating the fault as permanent
	// and rolling the plan back (0 = default 3, 1 = no retry).
	TransferRetries int
	// TransferBackoff is the base delay between those attempts, doubling
	// per retry (0 = default 500µs).
	TransferBackoff time.Duration
	// Transport, when non-nil, routes every inter-node data path —
	// ingest writes, rebalance receiver batches, replica copies, query
	// chunk pulls — through the given node transport (transport.Loopback
	// for an in-process seam, transport.TCP for real sockets,
	// transport.FaultTransport for chaos). Every node is served on it at
	// construction; call Close when done. nil keeps the original
	// in-process code paths with zero overhead.
	Transport transport.Transport
}

// New assembles and validates a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.InitialNodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one initial node, got %d", cfg.InitialNodes)
	}
	if cfg.NodeCapacity <= 0 {
		return nil, fmt.Errorf("cluster: node capacity must be positive, got %d", cfg.NodeCapacity)
	}
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("cluster: partitioner factory is required")
	}
	cost := cfg.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	replication := cfg.ReplicationFactor
	if replication == 0 {
		replication = 1
	}
	if replication < 1 {
		return nil, fmt.Errorf("cluster: replication factor must be >= 1, got %d", replication)
	}
	if replication > cfg.InitialNodes {
		return nil, fmt.Errorf("cluster: replication factor %d exceeds the %d initial node(s)", replication, cfg.InitialNodes)
	}
	retries := cfg.TransferRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 1 {
		return nil, fmt.Errorf("cluster: transfer retries must be >= 1, got %d", retries)
	}
	backoff := cfg.TransferBackoff
	if backoff == 0 {
		backoff = 500 * time.Microsecond
	}
	if backoff < 0 {
		return nil, fmt.Errorf("cluster: transfer backoff must be >= 0, got %v", backoff)
	}
	c := &Cluster{
		cost:            cost,
		nodes:           make(map[partition.NodeID]*Node),
		owner:           newOwnerCatalog(),
		schemas:         make(map[string]*array.Schema),
		nodeCapacity:    cfg.NodeCapacity,
		storageDir:      cfg.StorageDir,
		replication:     replication,
		transferRetries: retries,
		transferBackoff: backoff,
		repKeys:         make(map[array.ChunkKey]bool),
		transport:       cfg.Transport,
		announcements:   make(map[partition.NodeID]transport.Announcement),
	}
	c.parallelism.Store(int32(cfg.Parallelism))
	var initial []partition.NodeID
	for i := 0; i < cfg.InitialNodes; i++ {
		id := c.nextID
		c.nextID++
		store, err := c.newStore(id)
		if err != nil {
			return nil, err
		}
		c.nodes[id] = newNode(id, cfg.NodeCapacity, store)
		c.order = append(c.order, id)
		initial = append(initial, id)
	}
	p, err := cfg.Partitioner(initial)
	if err != nil {
		return nil, fmt.Errorf("cluster: building partitioner: %w", err)
	}
	c.part = p
	c.publishLiveNodes()
	for _, id := range initial {
		if err := c.serveNode(id); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// --- partition.State implementation -------------------------------------

// Nodes implements partition.State.
func (c *Cluster) Nodes() []partition.NodeID {
	return append([]partition.NodeID(nil), c.order...)
}

// NodeLoad implements partition.State.
func (c *Cluster) NodeLoad(n partition.NodeID) int64 {
	node, ok := c.nodes[n]
	if !ok {
		return 0
	}
	return node.Bytes()
}

// NodeChunks implements partition.State.
func (c *Cluster) NodeChunks(n partition.NodeID) []array.ChunkInfo {
	node, ok := c.nodes[n]
	if !ok {
		return nil
	}
	return node.ChunkInfos()
}

// Owner implements partition.State: a hash to pick the catalog shard and a
// single map probe on the packed key, no allocation. Callers holding a
// ChunkRef convert with ref.Packed().
func (c *Cluster) Owner(key array.ChunkKey) (partition.NodeID, bool) {
	return c.owner.Get(key)
}

// --- administration ------------------------------------------------------

// Partitioner returns the placement scheme in use.
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// Cost returns the simulated-time model.
func (c *Cluster) Cost() CostModel { return c.cost }

// NumNodes returns the current node count.
func (c *Cluster) NumNodes() int { return len(c.order) }

// Parallelism returns the scan-executor worker cap queries run with
// (0 = GOMAXPROCS-gated).
func (c *Cluster) Parallelism() int { return int(c.parallelism.Load()) }

// SetParallelism retunes the scan-executor worker cap. Queries read the
// knob once at startup, so the new value applies to queries issued after
// the call.
func (c *Cluster) SetParallelism(n int) { c.parallelism.Store(int32(n)) }

// NodeCapacity returns the per-node capacity in bytes.
func (c *Cluster) NodeCapacity() int64 { return c.nodeCapacity }

// Capacity returns the total cluster capacity in bytes.
func (c *Cluster) Capacity() int64 { return int64(len(c.order)) * c.nodeCapacity }

// TotalBytes returns the partitioned bytes stored across all nodes.
func (c *Cluster) TotalBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.Bytes()
	}
	return total
}

// NumChunks returns the number of partitioned chunks in the catalog.
func (c *Cluster) NumChunks() int { return c.owner.Len() }

// Node returns a node by ID, for inspection by queries and tests.
func (c *Cluster) Node(id partition.NodeID) (*Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Coordinator returns the node acting as coordinator (the lowest ID, which
// always exists). Inserts enter the system through it.
func (c *Cluster) Coordinator() partition.NodeID { return c.order[0] }

// DefineArray registers a schema. Inserting chunks of an undefined array
// is an error.
func (c *Cluster) DefineArray(s *array.Schema) error {
	c.admin.Lock()
	defer c.admin.Unlock()
	return c.defineArrayLocked(s)
}

func (c *Cluster) defineArrayLocked(s *array.Schema) error {
	if _, dup := c.schemas[s.Name]; dup {
		return fmt.Errorf("cluster: array %s already defined", s.Name)
	}
	c.schemaMu.Lock()
	c.schemas[s.Name] = s
	c.schemaMu.Unlock()
	return nil
}

// Schema returns a registered schema. Safe to call concurrently with
// ingest and DefineArray.
func (c *Cluster) Schema(name string) (*array.Schema, bool) {
	c.schemaMu.RLock()
	s, ok := c.schemas[name]
	c.schemaMu.RUnlock()
	return s, ok
}

// Loads returns the per-node partitioned bytes in node order.
func (c *Cluster) Loads() []float64 {
	out := make([]float64, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, float64(c.nodes[id].Bytes()))
	}
	return out
}

// RSD returns the relative standard deviation of per-node storage — the
// paper's load-balance metric.
func (c *Cluster) RSD() float64 { return stats.RSD(c.Loads()) }

// --- ingest ---------------------------------------------------------------
// (Insert, PlanInsert and ExecutePlan live in ingest.go.)

// ReplicateArray stores the given chunks on every healthy node (the AIS
// vessel array pattern: small dimension tables replicated for local
// joins); a Down node is backfilled when RecoverNode readmits it. The
// chunks are registered so scale-out and recovery know the authoritative
// replica set. The charge is one network broadcast of the payload to each
// non-coordinator node.
func (c *Cluster) ReplicateArray(s *array.Schema, chunks []*array.Chunk) (Duration, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	if _, ok := c.schemas[s.Name]; !ok {
		if err := c.defineArrayLocked(s); err != nil {
			return 0, err
		}
	}
	var bytes int64
	for _, ch := range chunks {
		if c.repKeys[ch.Key()] {
			return 0, fmt.Errorf("cluster: chunk %s already replicated", ch.Ref())
		}
		bytes += ch.SizeBytes()
		for _, id := range c.order {
			if c.nodes[id].Health() == NodeDown {
				continue
			}
			c.nodes[id].putReplica(ch)
		}
		c.repChunks = append(c.repChunks, ch)
		c.repKeys[ch.Key()] = true
	}
	return c.cost.NetTime(bytes * int64(len(c.order)-1)), nil
}

// --- scale-out -------------------------------------------------------------

// ScaleOutResult reports what a cluster expansion did, including the
// measured transfer next to the Eq 7 prediction.
type ScaleOutResult struct {
	Added      []partition.NodeID
	Moves      int
	MovedBytes int64
	Reorg      Duration
	// PredictedWireBytes is the plan-time Eq 7 effective wire volume;
	// MeasuredWireBytes is the same fold over what execution actually
	// shipped (equal unless the replica set changed in between).
	PredictedWireBytes int64
	MeasuredWireBytes  int64
	// FrameBytes is the transport-reported wire volume — framing and
	// retries included, zero for a fully in-process cluster — and
	// MeasuredDuration the execution's wall clock.
	FrameBytes       int64
	MeasuredDuration time.Duration
}

// ScaleOut provisions k new nodes, lets the partitioner revise its table,
// and executes the resulting migration — a thin wrapper over the
// plan → execute pipeline (PlanScaleOut / ExecuteRebalance) run as one
// administrative operation. Chunk payloads are serialized, shipped and
// decoded for real — one batched codec round-trip per receiving node
// stands in for the wire — and the reorganization charge is the paper's
// Eq 7 quantity. Replicated arrays are copied to the new nodes as part of
// the expansion.
func (c *Cluster) ScaleOut(k int) (ScaleOutResult, error) {
	if k < 1 {
		return ScaleOutResult{}, fmt.Errorf("cluster: ScaleOut(%d): need k >= 1", k)
	}
	c.admin.Lock()
	defer c.admin.Unlock()
	plan, err := c.planScaleOut(k)
	if err != nil {
		return ScaleOutResult{}, err
	}
	res := ScaleOutResult{Added: plan.Added()}
	reorg, err := c.executeRebalance(plan)
	if err != nil {
		// Execution rolled the data movement back; the provisioned nodes
		// and revised table stand (monotonic growth).
		return res, err
	}
	res.Moves = plan.NumMoves()
	res.MovedBytes = plan.Bytes()
	res.Reorg = reorg
	r := plan.Result()
	res.PredictedWireBytes = r.PredictedWireBytes
	res.MeasuredWireBytes = r.MeasuredWireBytes
	res.FrameBytes = r.FrameBytes
	res.MeasuredDuration = r.MeasuredDuration
	return res, nil
}

// Migrate executes an externally planned set of chunk relocations — the
// entry point for online placement optimisers such as the co-access
// advisor (the paper's §8 future work). It is a thin wrapper over
// PlanMigrate / ExecuteRebalance run as one administrative operation.
// Unlike ScaleOut it adds no nodes; the charge is the receiver-parallel
// transfer of the moved bytes.
func (c *Cluster) Migrate(moves []partition.Move) (Duration, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	plan, err := c.buildRebalancePlan(moves, nil)
	if err != nil {
		return 0, err
	}
	return c.executeRebalance(plan)
}

// Validate audits cluster invariants: the catalog and the healthy node
// stores agree exactly, every chunk decodes under its schema, per-node
// accounting matches payload sizes, and the replica overlay is complete —
// every healthy node holds the full replicated-array set plus its assigned
// secondary copies, replica bytes reconcile with Node.ReplicaBytes, and at
// replication factor R every reachable primary has its required healthy
// secondaries. A chunk still catalogued to a Down node is reported as
// degraded (run PlanRecover). Tests call Validate after every phase.
func (c *Cluster) Validate() error {
	c.admin.Lock()
	defer c.admin.Unlock()
	if ni, nr := c.pendingPlans.Load(), c.pendingRebalances.Load(); ni != 0 || nr != 0 {
		return fmt.Errorf("cluster: %d ingest plan(s) and %d rebalance plan(s) outstanding (execute or discard them before validating)", ni, nr)
	}
	seen := 0
	for _, id := range c.order {
		node := c.nodes[id]
		if node.Health() == NodeDown {
			// Unreachable store: skipped here, and any primary still
			// catalogued to it is reported as degraded below.
			continue
		}
		var bytes int64
		for _, ch := range node.Chunks() {
			owner, ok := c.owner.Get(ch.Key())
			if !ok {
				return fmt.Errorf("cluster: node %d stores uncatalogued chunk %s", id, ch.Ref())
			}
			if owner != id {
				return fmt.Errorf("cluster: catalog places %s on %d but it lives on %d", ch.Ref(), owner, id)
			}
			if err := ch.Validate(); err != nil {
				return err
			}
			bytes += ch.SizeBytes()
			seen++
		}
		if bytes != node.Bytes() {
			return fmt.Errorf("cluster: node %d accounts %d bytes, payloads sum to %d", id, node.Bytes(), bytes)
		}
	}
	if lost := c.primariesOnDown(); len(lost) > 0 {
		return fmt.Errorf("cluster: degraded: %d chunk(s) catalogued to down node(s), first %s (run PlanRecover)", len(lost), lost[0])
	}
	if n := c.owner.Len(); seen != n {
		return fmt.Errorf("cluster: catalog has %d chunks, stores hold %d", n, seen)
	}
	if err := c.validateReplicas(); err != nil {
		return err
	}
	if sus := c.SuspectNodes(); len(sus) > 0 {
		return fmt.Errorf("cluster: %d node(s) suspect (failure detector awaiting verdict), first node %d", len(sus), sus[0])
	}
	return nil
}

// validateReplicas audits the replica overlay. Caller holds admin
// exclusive, with every catalogued primary known reachable.
func (c *Cluster) validateReplicas() error {
	required := c.requiredSecondaries()
	// Per-chunk secondary audit, in canonical order for deterministic
	// error reporting.
	type repEntry struct {
		key   array.ChunkKey
		nodes []partition.NodeID
	}
	var entries []repEntry
	c.owner.EachReplica(func(key array.ChunkKey, nodes []partition.NodeID) {
		entries = append(entries, repEntry{key, append([]partition.NodeID(nil), nodes...)})
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].key.Less(entries[j].key) })
	assigned := make(map[partition.NodeID]int64) // per-node secondary bytes
	counts := make(map[partition.NodeID]int)
	withSec := make(map[array.ChunkKey]bool, len(entries))
	for _, e := range entries {
		ref := e.key.Ref()
		owner, ok := c.owner.Get(e.key)
		if !ok {
			return fmt.Errorf("cluster: secondaries recorded for uncatalogued chunk %s", ref)
		}
		primary, _ := c.nodes[owner].get(ref)
		if primary == nil {
			return fmt.Errorf("cluster: replicated chunk %s missing from its primary node %d", ref, owner)
		}
		distinct := make(map[partition.NodeID]bool, len(e.nodes))
		for _, h := range e.nodes {
			holder, ok := c.nodes[h]
			if !ok {
				return fmt.Errorf("cluster: chunk %s has secondary on unknown node %d", ref, h)
			}
			if h == owner {
				return fmt.Errorf("cluster: chunk %s has a secondary on its own primary node %d", ref, h)
			}
			if distinct[h] {
				return fmt.Errorf("cluster: chunk %s lists node %d as secondary twice", ref, h)
			}
			distinct[h] = true
			if holder.Health() == NodeDown {
				return fmt.Errorf("cluster: degraded: secondary of %s lives on down node %d (run PlanRecover)", ref, h)
			}
			rep, ok := holder.Replica(ref)
			if !ok {
				return fmt.Errorf("cluster: node %d misses its assigned secondary of %s", h, ref)
			}
			if rep.SizeBytes() != primary.SizeBytes() {
				return fmt.Errorf("cluster: secondary of %s on node %d is %d bytes, primary is %d", ref, h, rep.SizeBytes(), primary.SizeBytes())
			}
			assigned[h] += rep.SizeBytes()
			counts[h]++
		}
		if len(e.nodes) != required {
			return fmt.Errorf("cluster: chunk %s has %d secondaries, replication factor %d requires %d", ref, len(e.nodes), c.replication, required)
		}
		withSec[e.key] = true
	}
	if required > 0 {
		var bare []array.ChunkRef
		c.owner.Each(func(key array.ChunkKey, _ partition.NodeID) {
			if !withSec[key] {
				bare = append(bare, key.Ref())
			}
		})
		if len(bare) > 0 {
			sort.Slice(bare, func(i, j int) bool { return bare[i].Packed().Less(bare[j].Packed()) })
			return fmt.Errorf("cluster: %d chunk(s) have no secondaries at replication factor %d, first %s", len(bare), c.replication, bare[0])
		}
	}
	// Per-node replica accounting: the full replicated-array set plus the
	// assigned secondaries, and nothing else.
	var repArrayBytes int64
	for _, rep := range c.repChunks {
		repArrayBytes += rep.SizeBytes()
	}
	for _, id := range c.order {
		node := c.nodes[id]
		if node.Health() == NodeDown {
			continue
		}
		for _, rep := range c.repChunks {
			held, ok := node.Replica(rep.Ref())
			if !ok {
				return fmt.Errorf("cluster: node %d misses replicated-array chunk %s", id, rep.Ref())
			}
			if held.SizeBytes() != rep.SizeBytes() {
				return fmt.Errorf("cluster: replica of %s on node %d is %d bytes, want %d", rep.Ref(), id, held.SizeBytes(), rep.SizeBytes())
			}
		}
		wantBytes := repArrayBytes + assigned[id]
		if got := node.ReplicaBytes(); got != wantBytes {
			return fmt.Errorf("cluster: node %d accounts %d replica bytes, expected %d", id, got, wantBytes)
		}
		wantCount := len(c.repChunks) + counts[id]
		if got := node.NumReplicas(); got != wantCount {
			return fmt.Errorf("cluster: node %d holds %d replica payloads, expected %d", id, got, wantCount)
		}
	}
	return nil
}
