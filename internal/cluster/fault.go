package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/array"
	"repro/internal/transport"
)

// ErrInjected is the sentinel wrapped by every failure a FaultStore
// injects, so tests can assert a fault was synthetic (errors.Is) rather
// than a real store defect. It is the same sentinel the transport layer's
// FaultTransport wraps, so one errors.Is covers both fault domains.
var ErrInjected = transport.ErrInjected

// FaultStore wraps a ChunkStore with programmable write faults, the
// fixture fault-tolerance tests and benchmarks share: fail the next N puts,
// fail every put of one specific chunk N times (N < 0 = always), or fail
// puts at a random rate. Reads are never injected — the cluster's recovery
// machinery treats stores as write-fallible, read-reliable, matching the
// transient-fault model the retry path targets.
//
// All knobs are safe for concurrent use with the store itself; injected
// errors wrap ErrInjected.
type FaultStore struct {
	ChunkStore

	mu       sync.Mutex
	nextN    int                    // fail the next n puts of any chunk
	perKey   map[array.ChunkKey]int // remaining failures per chunk, -1 = always
	rate     float64                // probability a put fails
	rng      *rand.Rand             // rate source, seeded for reproducibility
	injected int
}

// NewFaultStore wraps inner (NewMemStore() when nil) with no faults armed.
func NewFaultStore(inner ChunkStore) *FaultStore {
	if inner == nil {
		inner = NewMemStore()
	}
	return &FaultStore{ChunkStore: inner, perKey: make(map[array.ChunkKey]int)}
}

// FailNextPuts arms the store to fail the next n Put calls, whatever chunk
// they carry.
func (s *FaultStore) FailNextPuts(n int) {
	s.mu.Lock()
	s.nextN = n
	s.mu.Unlock()
}

// FailPuts arms the store to fail the next n Put calls for one specific
// chunk; n < 0 fails that chunk's puts forever (the permanent-fault knob
// rollback tests use).
func (s *FaultStore) FailPuts(ref array.ChunkRef, n int) {
	s.mu.Lock()
	s.perKey[ref.Packed()] = n
	s.mu.Unlock()
}

// SetErrorRate arms random put failures with the given probability,
// deterministic for a given seed. Rate 0 disarms.
func (s *FaultStore) SetErrorRate(rate float64, seed int64) {
	s.mu.Lock()
	s.rate = rate
	s.rng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
}

// Injected returns how many faults the store has injected so far.
func (s *FaultStore) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Put implements ChunkStore, consulting the armed fault knobs first.
func (s *FaultStore) Put(c *array.Chunk) error {
	if err := s.inject(c); err != nil {
		return err
	}
	return s.ChunkStore.Put(c)
}

func (s *FaultStore) inject(c *array.Chunk) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := false
	if s.nextN > 0 {
		s.nextN--
		fail = true
	}
	if n, ok := s.perKey[c.Key()]; ok && !fail {
		if n < 0 {
			fail = true
		} else if n > 0 {
			s.perKey[c.Key()] = n - 1
			fail = true
		}
	}
	if !fail && s.rate > 0 && s.rng.Float64() < s.rate {
		fail = true
	}
	if !fail {
		return nil
	}
	s.injected++
	return fmt.Errorf("%w: put %s", ErrInjected, c.Ref())
}
