package cluster

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/transport"
)

// Failure lifecycle: FailNode marks a node Down, RecoverNode readmits it.
//
// A Down node keeps its catalog entries — the storage model is insert-only
// and recovery is exactly accountable, so nothing is silently dropped — but
// planning routes placements around it, queries fail chunk reads over to
// surviving replicas (see query.Exec), and Validate reports any primary
// still catalogued to it as degraded until PlanRecover/ExecuteRebalance
// restores ownership onto healthy nodes.
//
// Health transitions are administrative: they hold the admin lock
// exclusively, so they never race in-flight ingest or rebalance execution,
// and they bump the epoch so outstanding plans computed against the old
// health map go stale instead of executing onto a dead node.

// FailNode marks a node Down, simulating its loss. The node's chunk
// payloads become unreachable (the in-process store is kept solely so
// RecoverNode can model a node returning with stale state); its catalog
// entries remain, to be re-owned by PlanRecover. A removal event per
// primary chunk is published on the placement feed so derived state excises
// the node's edges. Failing the coordinator is out of scope and an error —
// the cluster always keeps at least one healthy node.
func (c *Cluster) FailNode(id partition.NodeID) error {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("cluster: FailNode(%d): unknown node", id)
	}
	if id == c.order[0] {
		return fmt.Errorf("cluster: FailNode(%d): coordinator failover is out of scope", id)
	}
	if node.Health() == NodeDown {
		return fmt.Errorf("cluster: FailNode(%d): node already down", id)
	}
	var events []PlacementEvent
	if c.feedActive() {
		for _, info := range node.ChunkInfos() {
			events = append(events, PlacementEvent{
				Kind: PlacementRemove,
				Key:  info.Ref.Packed(),
				Node: id,
				Size: info.Size,
			})
		}
	}
	node.setHealth(NodeDown)
	c.downCount.Add(1)
	// Stale any outstanding plan computed when the node was healthy: its
	// destinations may include the dead node.
	c.epoch.Add(1)
	c.publishPlacement(events)
	// The survivors report their holdings so the coordinator's announced
	// view reflects the new health map.
	c.announceAll()
	return nil
}

// RecoverNode readmits a Down node as an empty-handed rejoin: whatever the
// returning node holds that the catalog no longer credits to it is
// discarded (a chunk re-owned by PlanRecover while it was away), missing
// replicated-array chunks are backfilled, and secondary copies it is no
// longer assigned are dropped. Primaries left short of secondaries by a
// clamped degraded recovery are re-replicated now that the replication
// budget is wide enough again — no later plan revisits them, because
// PlanRecover demands a down node. The still-owned primaries the node
// returns with are re-announced on the placement feed. The charge is the
// network time of the replicated-array backfill plus the re-replication.
func (c *Cluster) RecoverNode(id partition.NodeID) (Duration, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return 0, fmt.Errorf("cluster: RecoverNode(%d): unknown node", id)
	}
	if node.Health() != NodeDown {
		return 0, fmt.Errorf("cluster: RecoverNode(%d): node is not down", id)
	}
	// Drop primaries the catalog re-owned elsewhere while the node was away.
	for _, info := range node.ChunkInfos() {
		owner, ok := c.owner.Get(info.Ref.Packed())
		if ok && owner == id {
			continue
		}
		if _, err := node.take(info.Ref); err != nil {
			return 0, fmt.Errorf("cluster: RecoverNode(%d): dropping stale chunk %s: %w", id, info.Ref, err)
		}
	}
	// Drop replica payloads the node is no longer responsible for, and
	// backfill the replicated arrays it missed.
	for _, rep := range node.Replicas() {
		key := rep.Key()
		if c.repKeys[key] || containsNodeID(c.owner.Replicas(key), id) {
			continue
		}
		node.takeReplica(key)
	}
	var backfill int64
	for _, rep := range c.repChunks {
		if _, ok := node.Replica(rep.Ref()); ok {
			continue
		}
		node.putReplica(rep)
		backfill += rep.SizeBytes()
	}
	var events []PlacementEvent
	if c.feedActive() {
		for _, info := range node.ChunkInfos() {
			events = append(events, PlacementEvent{
				Kind: PlacementAdd,
				Key:  info.Ref.Packed(),
				Node: id,
				Size: info.Size,
			})
		}
	}
	node.setHealth(NodeHealthy)
	c.downCount.Add(-1)
	// Restore the canonical replica spread now that the node is back.
	// This repairs two deficits in one sorted pass: primaries the clamped
	// degraded recovery left short of secondaries (requiredSecondaries
	// widens again), and the rejoined node's own share — rendezvous
	// hashing makes it the canonical holder of part of the secondary set,
	// and without reassignment here it would hold none until some later
	// rebalance. For each primary the canonical holder set is recomputed
	// over the healthy nodes; missing copies are delivered, holders no
	// longer canonical drop theirs, and the catalog takes the canonical
	// set. Repairs already landed stand if a later copy fails — each is a
	// strict improvement on its own.
	if want := c.requiredSecondaries(); want > 0 {
		healthy := c.healthyNodes()
		var refs []array.ChunkRef
		c.owner.Each(func(key array.ChunkKey, _ partition.NodeID) {
			refs = append(refs, key.Ref())
		})
		sort.Slice(refs, func(i, j int) bool { return refs[i].Packed().Less(refs[j].Packed()) })
		for _, ref := range refs {
			key := ref.Packed()
			if c.repKeys[key] {
				continue // replicated arrays are restored by the backfill above
			}
			owner, ok := c.owner.Get(key)
			if !ok || c.nodes[owner].Health() == NodeDown {
				continue
			}
			primary, _ := c.nodes[owner].get(ref)
			if primary == nil {
				continue // reserved by an outstanding ingest plan; nothing to copy yet
			}
			// held: recorded secondaries that actually hold a copy on a
			// reachable node.
			var held []partition.NodeID
			for _, h := range c.owner.Replicas(key) {
				if holder, ok := c.nodes[h]; ok && holder.Health() != NodeDown {
					if _, ok := holder.Replica(ref); ok {
						held = append(held, h)
					}
				}
			}
			canonical := partition.ReplicaNodes(key, owner, healthy, nil, want)
			var fill []partition.NodeID
			for _, n := range canonical {
				if !containsNodeID(held, n) {
					fill = append(fill, n)
				}
			}
			if len(fill) > 0 {
				if err := c.deliverReplicaCopies(owner, fill, primary); err != nil {
					// The readmission did not commit: put the node back
					// Down so a retry of RecoverNode is well-formed. The
					// stale-drop/backfill work above is idempotent and the
					// per-chunk repairs already landed each stand on their
					// own, so the retry resumes where this pass stopped.
					node.setHealth(NodeDown)
					c.downCount.Add(1)
					return 0, fmt.Errorf("cluster: RecoverNode(%d): re-replicating %s: %w", id, ref, err)
				}
				backfill += primary.SizeBytes() * int64(len(fill))
			}
			for _, h := range held {
				if !containsNodeID(canonical, h) {
					c.nodes[h].takeReplica(key)
				}
			}
			c.owner.SetReplicas(key, canonical)
		}
	}
	c.epoch.Add(1)
	c.publishPlacement(events)
	c.announceAll()
	return c.cost.NetTime(backfill), nil
}

// deliverReplicaCopies lands one secondary copy of ch on each node in
// dests, over the transport when one is configured, unwinding the copies
// already delivered if a later one fails. The caller updates the catalog
// only after every copy landed.
func (c *Cluster) deliverReplicaCopies(from partition.NodeID, dests []partition.NodeID, ch *array.Chunk) error {
	for i, d := range dests {
		var err error
		if c.transport != nil {
			_, err = c.pushWithRetry(from, d, transport.KindReplica, []*array.Chunk{ch})
		} else {
			c.nodes[d].putReplica(ch)
		}
		if err != nil {
			for _, u := range dests[:i] {
				c.nodes[u].takeReplica(ch.Key())
			}
			return err
		}
	}
	return nil
}

// MarkNodeSuspect records the failure detector's intermediate verdict: the
// node's heartbeats went silent past the suspect threshold but the detector
// is not yet confident it is dead. A Suspect node still serves reads and
// accepts placements — the state is advisory, carries no epoch bump, and is
// reversed by ClearNodeSuspect when heartbeats resume (or superseded by
// FailNode when the detector's Down verdict lands). Idempotent on an
// already-suspect node; suspecting the coordinator or a Down node is an
// error.
func (c *Cluster) MarkNodeSuspect(id partition.NodeID) error {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("cluster: MarkNodeSuspect(%d): unknown node", id)
	}
	if id == c.order[0] {
		return fmt.Errorf("cluster: MarkNodeSuspect(%d): the coordinator cannot be suspected", id)
	}
	switch node.Health() {
	case NodeSuspect:
		return nil
	case NodeDown:
		return fmt.Errorf("cluster: MarkNodeSuspect(%d): node is down", id)
	}
	node.setHealth(NodeSuspect)
	return nil
}

// ClearNodeSuspect lifts suspicion from a node whose heartbeats resumed.
// Idempotent on a healthy node; clearing a Down node is an error (that is
// RecoverNode's job).
func (c *Cluster) ClearNodeSuspect(id partition.NodeID) error {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("cluster: ClearNodeSuspect(%d): unknown node", id)
	}
	switch node.Health() {
	case NodeHealthy:
		return nil
	case NodeDown:
		return fmt.Errorf("cluster: ClearNodeSuspect(%d): node is down, not suspect", id)
	}
	node.setHealth(NodeHealthy)
	return nil
}

// SuspectNodes returns the IDs of nodes currently under suspicion,
// ascending.
func (c *Cluster) SuspectNodes() []partition.NodeID {
	var out []partition.NodeID
	for _, id := range c.order {
		if c.nodes[id].Health() == NodeSuspect {
			out = append(out, id)
		}
	}
	return out
}

// Degraded reports whether any node is Down — one atomic load, the gate
// the query layer checks before paying for failover bookkeeping.
func (c *Cluster) Degraded() bool { return c.downCount.Load() > 0 }

// NodeHealthOf returns a node's health state.
func (c *Cluster) NodeHealthOf(id partition.NodeID) (NodeHealth, bool) {
	node, ok := c.nodes[id]
	if !ok {
		return NodeHealthy, false
	}
	return node.Health(), true
}

// HealthyNodes returns the IDs of nodes currently serving, ascending.
func (c *Cluster) HealthyNodes() []partition.NodeID {
	return c.healthyNodes()
}

// healthyNodes returns the serving node IDs in ascending order. Snapshot
// semantics match Nodes(): safe against ingest, not against concurrent
// topology or health administration.
func (c *Cluster) healthyNodes() []partition.NodeID {
	out := make([]partition.NodeID, 0, len(c.order))
	for _, id := range c.order {
		if c.nodes[id].Health() == NodeDown {
			continue
		}
		out = append(out, id)
	}
	return out
}

// requiredSecondaries returns how many secondary copies each primary must
// have right now: R-1, clamped so a degraded cluster smaller than R is not
// asked for copies it cannot host on distinct healthy nodes.
func (c *Cluster) requiredSecondaries() int {
	want := c.replication
	if healthy := len(c.healthyNodes()); want > healthy {
		want = healthy
	}
	return want - 1
}

// ReplicaHolders returns the catalogued secondary owners of a chunk —
// the nodes the query layer fails a read over to when the primary's node
// is Down. Nil at replication factor 1.
func (c *Cluster) ReplicaHolders(key array.ChunkKey) []partition.NodeID {
	return c.owner.Replicas(key)
}

// UnreachablePrimaries returns, for the named array, the refs of chunks
// catalogued to Down nodes, in canonical order — the chunks a degraded
// query must source from replicas (or report via ErrPartialResult).
func (c *Cluster) UnreachablePrimaries(arrayName string) []array.ChunkRef {
	var lost []array.ChunkRef
	c.owner.Each(func(key array.ChunkKey, owner partition.NodeID) {
		if node, ok := c.nodes[owner]; ok && node.Health() == NodeDown {
			if ref := key.Ref(); ref.Array == arrayName {
				lost = append(lost, ref)
			}
		}
	})
	sort.Slice(lost, func(i, j int) bool { return lost[i].Packed().Less(lost[j].Packed()) })
	return lost
}

// primariesOnDown returns the refs of chunks whose catalogued owner is
// Down, in canonical order — the chunks PlanRecover must re-own.
func (c *Cluster) primariesOnDown() []array.ChunkRef {
	var lost []array.ChunkRef
	c.owner.Each(func(key array.ChunkKey, owner partition.NodeID) {
		if node, ok := c.nodes[owner]; ok && node.Health() == NodeDown {
			lost = append(lost, key.Ref())
		}
	})
	sort.Slice(lost, func(i, j int) bool { return lost[i].Packed().Less(lost[j].Packed()) })
	return lost
}

func containsNodeID(list []partition.NodeID, id partition.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}
