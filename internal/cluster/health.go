package cluster

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/partition"
)

// Failure lifecycle: FailNode marks a node Down, RecoverNode readmits it.
//
// A Down node keeps its catalog entries — the storage model is insert-only
// and recovery is exactly accountable, so nothing is silently dropped — but
// planning routes placements around it, queries fail chunk reads over to
// surviving replicas (see query.Exec), and Validate reports any primary
// still catalogued to it as degraded until PlanRecover/ExecuteRebalance
// restores ownership onto healthy nodes.
//
// Health transitions are administrative: they hold the admin lock
// exclusively, so they never race in-flight ingest or rebalance execution,
// and they bump the epoch so outstanding plans computed against the old
// health map go stale instead of executing onto a dead node.

// FailNode marks a node Down, simulating its loss. The node's chunk
// payloads become unreachable (the in-process store is kept solely so
// RecoverNode can model a node returning with stale state); its catalog
// entries remain, to be re-owned by PlanRecover. A removal event per
// primary chunk is published on the placement feed so derived state excises
// the node's edges. Failing the coordinator is out of scope and an error —
// the cluster always keeps at least one healthy node.
func (c *Cluster) FailNode(id partition.NodeID) error {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("cluster: FailNode(%d): unknown node", id)
	}
	if id == c.order[0] {
		return fmt.Errorf("cluster: FailNode(%d): coordinator failover is out of scope", id)
	}
	if node.Health() == NodeDown {
		return fmt.Errorf("cluster: FailNode(%d): node already down", id)
	}
	var events []PlacementEvent
	if c.feedActive() {
		for _, info := range node.ChunkInfos() {
			events = append(events, PlacementEvent{
				Kind: PlacementRemove,
				Key:  info.Ref.Packed(),
				Node: id,
				Size: info.Size,
			})
		}
	}
	node.setHealth(NodeDown)
	c.downCount.Add(1)
	// Stale any outstanding plan computed when the node was healthy: its
	// destinations may include the dead node.
	c.epoch.Add(1)
	c.publishPlacement(events)
	return nil
}

// RecoverNode readmits a Down node as an empty-handed rejoin: whatever the
// returning node holds that the catalog no longer credits to it is
// discarded (a chunk re-owned by PlanRecover while it was away), missing
// replicated-array chunks are backfilled, and secondary copies it is no
// longer assigned are dropped. Re-assigning the node its share of secondary
// copies is a placement decision, left to a subsequent rebalance. The
// still-owned primaries it returns with are re-announced on the placement
// feed. The charge is the network time of the replicated-array backfill.
func (c *Cluster) RecoverNode(id partition.NodeID) (Duration, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return 0, fmt.Errorf("cluster: RecoverNode(%d): unknown node", id)
	}
	if node.Health() != NodeDown {
		return 0, fmt.Errorf("cluster: RecoverNode(%d): node is not down", id)
	}
	// Drop primaries the catalog re-owned elsewhere while the node was away.
	for _, info := range node.ChunkInfos() {
		owner, ok := c.owner.Get(info.Ref.Packed())
		if ok && owner == id {
			continue
		}
		if _, err := node.take(info.Ref); err != nil {
			return 0, fmt.Errorf("cluster: RecoverNode(%d): dropping stale chunk %s: %w", id, info.Ref, err)
		}
	}
	// Drop replica payloads the node is no longer responsible for, and
	// backfill the replicated arrays it missed.
	for _, rep := range node.Replicas() {
		key := rep.Key()
		if c.repKeys[key] || containsNodeID(c.owner.Replicas(key), id) {
			continue
		}
		node.takeReplica(key)
	}
	var backfill int64
	for _, rep := range c.repChunks {
		if _, ok := node.Replica(rep.Ref()); ok {
			continue
		}
		node.putReplica(rep)
		backfill += rep.SizeBytes()
	}
	var events []PlacementEvent
	if c.feedActive() {
		for _, info := range node.ChunkInfos() {
			events = append(events, PlacementEvent{
				Kind: PlacementAdd,
				Key:  info.Ref.Packed(),
				Node: id,
				Size: info.Size,
			})
		}
	}
	node.setHealth(NodeHealthy)
	c.downCount.Add(-1)
	c.epoch.Add(1)
	c.publishPlacement(events)
	return c.cost.NetTime(backfill), nil
}

// Degraded reports whether any node is Down — one atomic load, the gate
// the query layer checks before paying for failover bookkeeping.
func (c *Cluster) Degraded() bool { return c.downCount.Load() > 0 }

// NodeHealthOf returns a node's health state.
func (c *Cluster) NodeHealthOf(id partition.NodeID) (NodeHealth, bool) {
	node, ok := c.nodes[id]
	if !ok {
		return NodeHealthy, false
	}
	return node.Health(), true
}

// HealthyNodes returns the IDs of nodes currently serving, ascending.
func (c *Cluster) HealthyNodes() []partition.NodeID {
	return c.healthyNodes()
}

// healthyNodes returns the serving node IDs in ascending order. Snapshot
// semantics match Nodes(): safe against ingest, not against concurrent
// topology or health administration.
func (c *Cluster) healthyNodes() []partition.NodeID {
	out := make([]partition.NodeID, 0, len(c.order))
	for _, id := range c.order {
		if c.nodes[id].Health() == NodeDown {
			continue
		}
		out = append(out, id)
	}
	return out
}

// requiredSecondaries returns how many secondary copies each primary must
// have right now: R-1, clamped so a degraded cluster smaller than R is not
// asked for copies it cannot host on distinct healthy nodes.
func (c *Cluster) requiredSecondaries() int {
	want := c.replication
	if healthy := len(c.healthyNodes()); want > healthy {
		want = healthy
	}
	return want - 1
}

// ReplicaHolders returns the catalogued secondary owners of a chunk —
// the nodes the query layer fails a read over to when the primary's node
// is Down. Nil at replication factor 1.
func (c *Cluster) ReplicaHolders(key array.ChunkKey) []partition.NodeID {
	return c.owner.Replicas(key)
}

// UnreachablePrimaries returns, for the named array, the refs of chunks
// catalogued to Down nodes, in canonical order — the chunks a degraded
// query must source from replicas (or report via ErrPartialResult).
func (c *Cluster) UnreachablePrimaries(arrayName string) []array.ChunkRef {
	var lost []array.ChunkRef
	c.owner.Each(func(key array.ChunkKey, owner partition.NodeID) {
		if node, ok := c.nodes[owner]; ok && node.Health() == NodeDown {
			if ref := key.Ref(); ref.Array == arrayName {
				lost = append(lost, ref)
			}
		}
	})
	sort.Slice(lost, func(i, j int) bool { return lost[i].Packed().Less(lost[j].Packed()) })
	return lost
}

// primariesOnDown returns the refs of chunks whose catalogued owner is
// Down, in canonical order — the chunks PlanRecover must re-own.
func (c *Cluster) primariesOnDown() []array.ChunkRef {
	var lost []array.ChunkRef
	c.owner.Each(func(key array.ChunkKey, owner partition.NodeID) {
		if node, ok := c.nodes[owner]; ok && node.Health() == NodeDown {
			lost = append(lost, key.Ref())
		}
	})
	sort.Slice(lost, func(i, j int) bool { return lost[i].Packed().Less(lost[j].Packed()) })
	return lost
}

func containsNodeID(list []partition.NodeID, id partition.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}
