package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/partition"
	"repro/internal/transport"
)

// ErrStalePlan is returned by ExecuteRebalance when the topology epoch
// moved between planning and execution — another rebalance committed, a
// scale-out planned, or a node's health changed. The plan has been released
// (no Discard needed); plan again against the current topology. Match with
// errors.Is: the supervisor's retry loop treats it as a plan-again signal
// rather than a transfer failure.
var ErrStalePlan = errors.New("cluster: rebalance plan is stale (topology changed since planning); plan again")

// RebalancePlan is a validated set of chunk relocations, ready to execute:
// every move checked against the catalog and the stores up front, grouped
// by receiving node, with the transfer's wire volume and Eq 7 duration
// predicted before anything ships.
//
// Plans are produced by PlanScaleOut (which also provisions the new nodes
// and revises the partitioner's table) and PlanMigrate (externally planned
// relocations, e.g. the co-access advisor's). A plan must then be either
// executed exactly once (ExecuteRebalance) or released with Discard;
// Validate refuses to audit while rebalance plans are outstanding, naming
// them so a leaked plan fails loudly instead of surfacing as drift.
//
// A plan is pinned to the topology epoch it was computed under: any other
// rebalance executing (or scale-out planning) in between advances the
// epoch and makes this plan stale — ExecuteRebalance rejects it and
// releases it. The same epoch machinery invalidates outstanding ingest
// plans when a rebalance commits, and a rebalance plan can never move a
// reserved-but-unstored ingest chunk: planning verifies every source
// actually holds its chunk.
//
// Note that PlanScaleOut commits the topology at planning time — the new
// nodes join and the partitioner's table advances even if the plan is
// later discarded (the Partitioner contract has no un-AddNodes). Discard
// backs out only the data movement: the cluster stays consistent, merely
// unbalanced until the next rebalance. Like IngestPlan.Discard, it is an
// error-recovery hatch, not a free what-if probe; Advise-style what-ifs
// belong on PlanMigrate plans, whose Discard is side-effect-free.
type RebalancePlan struct {
	c      *Cluster
	moves  []partition.Move
	groups []receiverGroup    // per receiving node, ascending node ID
	added  []partition.NodeID // nodes provisioned by PlanScaleOut
	epoch  uint64             // topology epoch the plan was computed under

	// recovers/lost are populated by PlanRecover: the chunk restorations
	// to perform, and the chunks with no surviving copy (canonical order).
	recovers []recoverOp
	lost     []array.ChunkRef

	totalBytes int64
	repBytes   int64 // replica payload copied to added nodes (scale-out)
	maxRecv    int64 // busiest receiver's volume, replicas included

	// Measured execution outcome (populated by executeRebalance):
	// measuredWire is the Eq 7 fold over the volumes actually shipped —
	// equal to WireBytes() when the replica set did not change between
	// planning and execution — frameBytes is what the transport reports
	// crossed the wire (framing and retried attempts included, 0 for a
	// transportless cluster), and measuredDur is the execution's wall
	// clock.
	measuredWire int64
	frameBytes   int64
	measuredDur  time.Duration

	// state: 0 = planned, 1 = executed, 2 = discarded (IngestPlan's codes).
	state atomic.Int32
}

// RebalanceResult reports what an executed rebalance plan actually did,
// with the measured transfer placed next to the Eq 7 prediction so cost
// model calibration can compare the two directly.
type RebalanceResult struct {
	// Moves and MovedBytes restate the plan's relocation volume.
	Moves      int
	MovedBytes int64
	// PredictedWireBytes/PredictedDuration are the plan-time Eq 7
	// quantities (WireBytes / PredictedDuration).
	PredictedWireBytes int64
	PredictedDuration  Duration
	// MeasuredWireBytes is the Eq 7 fold over the volumes execution
	// actually shipped — equal to PredictedWireBytes unless the replica
	// set changed between planning and execution.
	MeasuredWireBytes int64
	// FrameBytes is the transport-reported volume that crossed the wire:
	// codec framing, protocol headers and retried attempts included.
	// Zero for a transportless (fully in-process) cluster.
	FrameBytes int64
	// MeasuredDuration is the execution's wall-clock time — real seconds
	// next to PredictedDuration's simulated seconds.
	MeasuredDuration time.Duration
}

// Result reports the plan's predicted-vs-measured transfer. The measured
// fields are zero until the plan has executed.
func (p *RebalancePlan) Result() RebalanceResult {
	return RebalanceResult{
		Moves:              len(p.moves),
		MovedBytes:         p.totalBytes,
		PredictedWireBytes: p.WireBytes(),
		PredictedDuration:  p.PredictedDuration(),
		MeasuredWireBytes:  p.measuredWire,
		FrameBytes:         p.frameBytes,
		MeasuredDuration:   p.measuredDur,
	}
}

// recoverOp restores one chunk's redundancy after a node failure: promote a
// surviving secondary to primary (the failed node owned it) and/or ship
// fresh secondary copies onto healthy nodes.
type recoverOp struct {
	ref  array.ChunkRef
	size int64
	// promote: host's replica becomes the primary (owner was Down).
	// Otherwise host is the surviving owner and the op only re-replicates.
	promote bool
	host    partition.NodeID
	reps    []partition.NodeID // final secondary set, ascending
	fill    []partition.NodeID // subset of reps receiving new copies from host
	// oldOwner/oldReps restore the catalog if a later op's store write
	// fails and the plan rolls back.
	oldOwner partition.NodeID
	oldReps  []partition.NodeID
}

// receiverGroup is one receiving node's share of the plan: the indexes
// into moves it receives, shipped as a single batched codec round-trip.
type receiverGroup struct {
	node  partition.NodeID
	idx   []int
	bytes int64
}

// ReceiverBatch describes one receiving node's share of a rebalance plan —
// the batch that crosses the wire to it in one codec round-trip.
type ReceiverBatch struct {
	Node   partition.NodeID
	Chunks int
	Bytes  int64
}

// NumMoves returns the number of chunk relocations the plan performs.
func (p *RebalancePlan) NumMoves() int { return len(p.moves) }

// NumRecoveries returns the number of chunks the plan restores — replica
// promotions plus re-replications (PlanRecover plans only).
func (p *RebalancePlan) NumRecoveries() int { return len(p.recovers) }

// Unrecoverable returns the chunks PlanRecover found no surviving copy of,
// in canonical order — at replication factor 1 that is every chunk the
// failed node owned. Executing the plan restores everything else; the
// chunks listed here stay catalogued to the down node, so Validate keeps
// reporting the cluster degraded and queries over them return
// ErrPartialResult until RecoverNode readmits the node with its data.
func (p *RebalancePlan) Unrecoverable() []array.ChunkRef {
	return append([]array.ChunkRef(nil), p.lost...)
}

// Bytes returns the total chunk payload the plan ships.
func (p *RebalancePlan) Bytes() int64 { return p.totalBytes }

// Moves returns the plan's relocations, for inspection and tests.
func (p *RebalancePlan) Moves() []partition.Move {
	return append([]partition.Move(nil), p.moves...)
}

// Added returns the nodes PlanScaleOut provisioned (empty for PlanMigrate
// plans).
func (p *RebalancePlan) Added() []partition.NodeID {
	return append([]partition.NodeID(nil), p.added...)
}

// Receivers returns the per-receiver batches in ascending node order: how
// many chunks and bytes each receiving node gets in its one round-trip.
func (p *RebalancePlan) Receivers() []ReceiverBatch {
	out := make([]ReceiverBatch, len(p.groups))
	for i, g := range p.groups {
		out[i] = ReceiverBatch{Node: g.node, Chunks: len(g.idx), Bytes: g.bytes}
	}
	return out
}

// WireBytes returns the predicted effective wire volume of Eq 7: the
// larger of the fabric-capped aggregate (moved payload plus replica copies
// to new nodes) and the busiest single receiver's volume — the quantity
// CostModel.NetTime is charged on.
func (p *RebalancePlan) WireBytes() int64 {
	return p.c.rebalanceWire(p.totalBytes, p.repBytes, p.maxRecv)
}

// PredictedDuration returns the CostModel.NetTime estimate of the
// reorganization, readable before committing: the receiver-parallel
// transfer of WireBytes, plus the fixed reorganization overhead for
// scale-out plans. ExecuteRebalance charges exactly this unless the
// replica set changed between planning and execution.
func (p *RebalancePlan) PredictedDuration() Duration {
	return p.c.rebalanceCharge(p.totalBytes, p.repBytes, p.maxRecv, len(p.added) > 0)
}

// rebalanceWire is the Eq 7 effective wire volume: the larger of the
// fabric-capped aggregate and the busiest single receiver.
func (c *Cluster) rebalanceWire(moved, replicas, maxRecv int64) int64 {
	wire := (moved + replicas) / int64(c.cost.FabricWidth)
	if maxRecv > wire {
		wire = maxRecv
	}
	return wire
}

// rebalanceCharge folds the Eq 7 quantities into simulated time — the one
// formula both PredictedDuration and ExecuteRebalance charge through, so
// prediction and charge cannot drift.
func (c *Cluster) rebalanceCharge(moved, replicas, maxRecv int64, scaleOut bool) Duration {
	if !scaleOut && moved == 0 && replicas == 0 {
		return 0
	}
	d := c.cost.NetTime(c.rebalanceWire(moved, replicas, maxRecv))
	if scaleOut {
		d += Duration(c.cost.ReorgFixedSec)
	}
	return d
}

// Discard releases an unexecuted plan. Discarding an executed (or already
// discarded) plan is a no-op. For scale-out plans the provisioned nodes
// and the revised partitioner table remain — only the data movement is
// abandoned.
func (p *RebalancePlan) Discard() {
	if p == nil || !p.state.CompareAndSwap(planStatePlanned, planStateDiscarded) {
		return
	}
	p.c.pendingRebalances.Add(-1)
}

// PlanScaleOut provisions k new nodes, lets the partitioner revise its
// table, and returns the validated migration as a RebalancePlan — the
// predicted wire bytes, per-receiver batch sizes and Eq 7 duration are
// readable before a byte moves. The topology change commits here: the
// epoch advances (outstanding ingest plans go stale) and the new nodes
// are live, so execute or discard the plan promptly.
func (c *Cluster) PlanScaleOut(k int) (*RebalancePlan, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: ScaleOut(%d): need k >= 1", k)
	}
	c.admin.Lock()
	defer c.admin.Unlock()
	return c.planScaleOut(k)
}

// planScaleOut is the scale-out plan phase. Caller holds admin exclusive.
func (c *Cluster) planScaleOut(k int) (*RebalancePlan, error) {
	var added []partition.NodeID
	rollbackNodes := func() {
		for _, id := range added {
			delete(c.nodes, id)
		}
		c.nextID -= partition.NodeID(len(added))
	}
	for i := 0; i < k; i++ {
		id := c.nextID
		store, err := c.newStore(id)
		if err != nil {
			// Roll back the nodes added so far; the cluster is
			// unchanged.
			rollbackNodes()
			return nil, err
		}
		c.nextID++
		c.nodes[id] = newNode(id, c.nodeCapacity, store)
		added = append(added, id)
	}
	moves, err := c.part.AddNodes(added, c)
	if err != nil {
		// Roll back the node additions; the cluster is unchanged.
		rollbackNodes()
		return nil, fmt.Errorf("cluster: partitioner rejected scale-out: %w", err)
	}
	c.order = append(c.order, added...)
	c.publishLiveNodes()
	// The topology (and the partitioning table) changed: any outstanding
	// ingest or rebalance plan is now stale, so advance the epoch.
	// Deliberately after the fallible section — a rejected scale-out
	// leaves plans valid.
	c.epoch.Add(1)
	// The new nodes join the transport so the migration (and everything
	// after) can reach them. A serve failure aborts the plan: the topology
	// stands (monotonic growth) but the migration is not attempted against
	// unreachable endpoints.
	for _, id := range added {
		if err := c.serveNode(id); err != nil {
			return nil, err
		}
	}
	plan, err := c.buildRebalancePlan(moves, added)
	if err != nil {
		// The partitioner's moves come from the catalog via State, so
		// this is defensive: the topology change stands, the migration
		// is abandoned.
		return nil, err
	}
	return plan, nil
}

// PlanMigrate validates an externally planned set of chunk relocations —
// the entry point for online placement optimisers such as the co-access
// advisor — and returns it as a RebalancePlan grouped per receiver.
// Unlike PlanScaleOut nothing changes at planning time; discarding the
// plan is side-effect-free.
func (c *Cluster) PlanMigrate(moves []partition.Move) (*RebalancePlan, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	return c.buildRebalancePlan(moves, nil)
}

// PlanRecover computes how to restore redundancy after FailNode(id): every
// chunk the down node owned is promoted onto a surviving secondary (or
// reported via Unrecoverable when no copy survives — always the case at
// replication factor 1), and chunks left short of secondaries — by this
// failure or any other down node — get fresh copies re-replicated onto
// healthy nodes, keeping surviving holders in place. The returned plan is
// inspectable like any other RebalancePlan and runs through
// ExecuteRebalance; Discard is side-effect-free.
func (c *Cluster) PlanRecover(id partition.NodeID) (*RebalancePlan, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	node, ok := c.nodes[id]
	if !ok {
		return nil, fmt.Errorf("cluster: PlanRecover(%d): unknown node", id)
	}
	if node.Health() != NodeDown {
		return nil, fmt.Errorf("cluster: PlanRecover(%d): node is not down", id)
	}
	healthy := c.healthyNodes()
	want := c.requiredSecondaries()
	plan := &RebalancePlan{c: c, epoch: c.epoch.Load()}

	// Chunks the down node owned: promote or declare lost.
	var owned []array.ChunkRef
	c.owner.Each(func(key array.ChunkKey, owner partition.NodeID) {
		if owner == id {
			owned = append(owned, key.Ref())
		}
	})
	sort.Slice(owned, func(i, j int) bool { return owned[i].Packed().Less(owned[j].Packed()) })
	for _, ref := range owned {
		key := ref.Packed()
		old := c.owner.Replicas(key)
		var survivors []partition.NodeID
		var size int64
		for _, h := range old {
			if c.nodes[h].Health() == NodeDown {
				continue
			}
			rep, ok := c.nodes[h].Replica(ref)
			if !ok {
				continue
			}
			survivors = append(survivors, h)
			size = rep.SizeBytes()
		}
		if len(survivors) == 0 {
			plan.lost = append(plan.lost, ref)
			continue
		}
		host, rest := survivors[0], survivors[1:]
		fill := partition.ReplicaNodes(key, host, healthy, rest, want-len(rest))
		reps := append(append([]partition.NodeID(nil), rest...), fill...)
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		plan.recovers = append(plan.recovers, recoverOp{
			ref: ref, size: size, promote: true, host: host,
			reps: reps, fill: fill, oldOwner: id, oldReps: old,
		})
	}

	// Chunks owned by healthy nodes but short of secondaries (a holder on
	// this — or any — down node): re-replicate from the primary, keeping
	// surviving holders in place.
	type repEntry struct {
		key   array.ChunkKey
		nodes []partition.NodeID
	}
	var entries []repEntry
	c.owner.EachReplica(func(key array.ChunkKey, nodes []partition.NodeID) {
		entries = append(entries, repEntry{key, append([]partition.NodeID(nil), nodes...)})
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].key.Less(entries[j].key) })
	for _, e := range entries {
		owner, ok := c.owner.Get(e.key)
		if !ok || owner == id || c.nodes[owner].Health() == NodeDown {
			continue // handled by the promotion pass (this or another node's)
		}
		ref := e.key.Ref()
		var survivors []partition.NodeID
		for _, h := range e.nodes {
			if c.nodes[h].Health() == NodeDown {
				continue
			}
			if _, ok := c.nodes[h].Replica(ref); !ok {
				continue
			}
			survivors = append(survivors, h)
		}
		if len(survivors) == len(e.nodes) && len(survivors) >= want {
			continue // intact
		}
		primary, _ := c.nodes[owner].get(ref)
		if primary == nil {
			continue // reserved by an outstanding ingest plan; nothing to copy yet
		}
		fill := partition.ReplicaNodes(e.key, owner, healthy, survivors, want-len(survivors))
		reps := append(append([]partition.NodeID(nil), survivors...), fill...)
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		plan.recovers = append(plan.recovers, recoverOp{
			ref: ref, size: primary.SizeBytes(), host: owner,
			reps: reps, fill: fill, oldOwner: owner, oldReps: e.nodes,
		})
	}

	// Predicted receiver volumes: each fill pulls one copy of the chunk.
	recv := make(map[partition.NodeID]int64)
	for _, op := range plan.recovers {
		for _, f := range op.fill {
			recv[f] += op.size
			plan.repBytes += op.size
		}
	}
	for _, b := range recv {
		if b > plan.maxRecv {
			plan.maxRecv = b
		}
	}
	c.pendingRebalances.Add(1)
	return plan, nil
}

// executeRecoveries applies a plan's recovery ops: promote surviving
// secondaries into primaries and ship re-replication fills (as
// KindReplica pushes from the surviving host when the cluster has a
// transport, frame bytes accumulated into *frames). On a store write or
// persistent push failure every completed op is undone, keeping execution
// atomic. Caller holds admin exclusive.
func (c *Cluster) executeRecoveries(plan *RebalancePlan, frames *int64) error {
	rollback := func(done int) {
		for i := done - 1; i >= 0; i-- {
			op := plan.recovers[i]
			key := op.ref.Packed()
			for _, f := range op.fill {
				c.nodes[f].takeReplica(key)
			}
			c.owner.SetReplicas(key, op.oldReps)
			if op.promote {
				if ch, err := c.nodes[op.host].take(op.ref); err == nil {
					c.nodes[op.host].putReplica(ch)
				}
				c.owner.Set(key, op.oldOwner)
			}
		}
	}
	for i, op := range plan.recovers {
		key := op.ref.Packed()
		host := c.nodes[op.host]
		var payload *array.Chunk
		if op.promote {
			ch, ok := host.takeReplica(key)
			if !ok {
				rollback(i)
				return fmt.Errorf("cluster: recovery of %s: surviving replica vanished from node %d", op.ref, op.host)
			}
			if err := c.putWithRetry(host, ch); err != nil {
				host.putReplica(ch)
				rollback(i)
				return err
			}
			c.owner.Set(key, op.host)
			payload = ch
		} else {
			payload, _ = host.get(op.ref)
			if payload == nil {
				rollback(i)
				return fmt.Errorf("cluster: re-replication of %s: primary vanished from node %d", op.ref, op.host)
			}
		}
		if c.transport != nil {
			for fi, f := range op.fill {
				wire, err := c.pushWithRetry(op.host, f, transport.KindReplica, []*array.Chunk{payload})
				*frames += wire
				if err == nil {
					continue
				}
				// Undo this op's delivered fills and its promotion, then
				// the completed ops before it.
				for _, prev := range op.fill[:fi] {
					c.nodes[prev].takeReplica(key)
				}
				if op.promote {
					if ch, terr := host.take(op.ref); terr == nil {
						host.putReplica(ch)
					}
					c.owner.Set(key, op.oldOwner)
				}
				rollback(i)
				return fmt.Errorf("cluster: re-replication fill of %s onto node %d: %w", op.ref, f, err)
			}
		} else {
			for _, f := range op.fill {
				c.nodes[f].putReplica(payload)
			}
		}
		c.owner.SetReplicas(key, op.reps)
	}
	return nil
}

// fixupMovedReplicas re-derives the secondary set of every moved chunk
// against its new primary (no-op at replication factor 1): a move onto a
// node that held a secondary would otherwise leave the primary shadowing
// itself. Copies shipped to new holders are folded into the receiver
// volumes and replica byte total for the Eq 7 charge. Caller holds admin
// exclusive, post-commit.
func (c *Cluster) fixupMovedReplicas(plan *RebalancePlan, recvExtra map[partition.NodeID]int64, repBytes *int64) {
	if c.replication <= 1 || len(plan.moves) == 0 {
		return
	}
	healthy := c.healthyNodes()
	want := c.requiredSecondaries()
	for _, m := range plan.moves {
		key := m.Ref.Packed()
		old := c.owner.Replicas(key)
		reps := partition.ReplicaNodes(key, m.To, healthy, nil, want)
		for _, h := range old {
			if !containsNodeID(reps, h) {
				c.nodes[h].takeReplica(key)
			}
		}
		ch, _ := c.nodes[m.To].get(m.Ref)
		for _, h := range reps {
			if containsNodeID(old, h) {
				continue
			}
			c.nodes[h].putReplica(ch)
			recvExtra[h] += m.Size
			*repBytes += m.Size
		}
		c.owner.SetReplicas(key, reps)
	}
}

// putWithRetry writes a chunk into a node's store, absorbing transient
// faults: up to c.transferRetries total attempts with exponential backoff
// from c.transferBackoff. A fault that persists through every attempt is
// returned for the caller's atomic rollback to handle.
func (c *Cluster) putWithRetry(n *Node, ch *array.Chunk) error {
	var err error
	for attempt := 0; attempt < c.transferRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.transferBackoff << (attempt - 1))
		}
		if err = n.put(ch); err == nil {
			return nil
		}
	}
	return err
}

// buildRebalancePlan validates moves against the catalog, the stores and
// the schema registry, and groups them per receiving node. Caller holds
// admin exclusive.
func (c *Cluster) buildRebalancePlan(moves []partition.Move, added []partition.NodeID) (*RebalancePlan, error) {
	plan := &RebalancePlan{
		c:     c,
		moves: append([]partition.Move(nil), moves...),
		added: added,
		epoch: c.epoch.Load(),
	}
	byNode := make(map[partition.NodeID]int)
	seen := make(map[array.ChunkKey]bool, len(moves))
	for i, m := range plan.moves {
		key := m.Ref.Packed()
		cur, ok := c.owner.Get(key)
		if !ok {
			return nil, fmt.Errorf("cluster: plan moves unknown chunk %s", m.Ref)
		}
		if cur != m.From {
			return nil, fmt.Errorf("cluster: plan says %s on node %d, catalog says %d", m.Ref, m.From, cur)
		}
		if seen[key] {
			return nil, fmt.Errorf("cluster: chunk %s moved twice in one plan", m.Ref)
		}
		seen[key] = true
		src, ok := c.nodes[m.From]
		if !ok {
			return nil, fmt.Errorf("cluster: plan source node %d unknown", m.From)
		}
		if src.Health() == NodeDown {
			return nil, fmt.Errorf("cluster: plan moves %s off down node %d (use PlanRecover)", m.Ref, m.From)
		}
		dst, ok := c.nodes[m.To]
		if !ok {
			return nil, fmt.Errorf("cluster: plan target node %d unknown", m.To)
		}
		if dst.Health() == NodeDown {
			return nil, fmt.Errorf("cluster: plan moves %s onto down node %d", m.Ref, m.To)
		}
		if _, ok := c.schemas[m.Ref.Array]; !ok {
			return nil, fmt.Errorf("cluster: chunk %s of undefined array", m.Ref)
		}
		// A catalogued chunk whose source store does not hold it is a
		// reserved-but-unstored ingest reservation: moving it would ship
		// a payload that does not exist yet.
		if _, held := src.get(m.Ref); !held {
			return nil, fmt.Errorf("cluster: plan moves chunk %s reserved by an outstanding ingest plan", m.Ref)
		}
		gi, ok := byNode[m.To]
		if !ok {
			gi = len(plan.groups)
			byNode[m.To] = gi
			plan.groups = append(plan.groups, receiverGroup{node: m.To})
		}
		g := &plan.groups[gi]
		g.idx = append(g.idx, i)
		g.bytes += m.Size
		plan.totalBytes += m.Size
	}
	sort.Slice(plan.groups, func(i, j int) bool { return plan.groups[i].node < plan.groups[j].node })
	// Predicted receiver volumes, keyed by node (the byNode group indexes
	// are stale after the sort): the moved batches, plus — for scale-out
	// plans — the replicated arrays each new node pulls.
	recv := make(map[partition.NodeID]int64, len(plan.groups))
	for _, g := range plan.groups {
		recv[g.node] = g.bytes
	}
	if len(added) > 0 {
		// Each new node pulls the replicated-array set (from the
		// authoritative registry — node replica maps also hold R>=2
		// secondaries, which new nodes do not pull).
		var perNode int64
		for _, rep := range c.repChunks {
			perNode += rep.SizeBytes()
		}
		plan.repBytes = perNode * int64(len(added))
		for _, id := range added {
			recv[id] += perNode
		}
	}
	for _, b := range recv {
		if b > plan.maxRecv {
			plan.maxRecv = b
		}
	}
	c.pendingRebalances.Add(1)
	return plan, nil
}

// ExecuteRebalance performs a plan's transfers — each receiver's chunks
// encoded, shipped and decoded as one batched codec round-trip, receivers
// in parallel for plans wide enough to pay for the fan-out — and returns
// the simulated reorganization duration. A plan executes at most once,
// and execution is atomic: on any store error every chunk is returned to
// its source and the catalog is restored.
func (c *Cluster) ExecuteRebalance(plan *RebalancePlan) (Duration, error) {
	c.admin.Lock()
	defer c.admin.Unlock()
	return c.executeRebalance(plan)
}

// executeRebalance is the execution phase. Caller holds admin exclusive.
func (c *Cluster) executeRebalance(plan *RebalancePlan) (Duration, error) {
	if plan == nil {
		return 0, fmt.Errorf("cluster: nil rebalance plan")
	}
	if plan.c != c {
		return 0, fmt.Errorf("cluster: rebalance plan belongs to another cluster")
	}
	if plan.epoch != c.epoch.Load() {
		// Another rebalance committed since planning; the validated
		// placement snapshot is stale. Release the plan so the caller can
		// replan against the current catalog.
		plan.Discard()
		return 0, ErrStalePlan
	}
	if !plan.state.CompareAndSwap(planStatePlanned, planStateExecuted) {
		return 0, fmt.Errorf("cluster: rebalance plan already executed or discarded")
	}
	start := time.Now()
	if len(plan.moves) > 0 || len(plan.recovers) > 0 {
		// Placement moves under any outstanding ingest plan: stale it.
		// (Ahead of execution on purpose — conservative on failure.)
		c.epoch.Add(1)
	}
	// frames accumulates what the transport reports actually crossed the
	// wire (0 throughout for a transportless cluster).
	var frames int64
	// Replicated arrays must exist on nodes provisioned by the plan
	// (copied from the authoritative registry, not a node's replica map,
	// which also holds R>=2 secondaries the new nodes must not inherit).
	// Shipped before the moves: the copies touch only the empty new nodes'
	// replica maps, so a later shipment failure can unwind them without
	// disturbing anything committed.
	recvExtra := make(map[partition.NodeID]int64)
	var repBytes int64
	undoAddedCopies := func() {
		for _, id := range plan.added {
			for _, rep := range c.repChunks {
				c.nodes[id].takeReplica(rep.Key())
			}
		}
	}
	if len(plan.added) > 0 && len(c.repChunks) > 0 {
		if c.transport != nil {
			coord := c.Coordinator()
			for ai, id := range plan.added {
				wire, err := c.pushWithRetry(coord, id, transport.KindReplica, c.repChunks)
				frames += wire
				if err != nil {
					for _, prev := range plan.added[:ai] {
						for _, rep := range c.repChunks {
							c.nodes[prev].takeReplica(rep.Key())
						}
					}
					c.pendingRebalances.Add(-1)
					return 0, fmt.Errorf("cluster: replicated-array copy to node %d: %w", id, err)
				}
			}
		} else {
			for _, rep := range c.repChunks {
				for _, id := range plan.added {
					c.nodes[id].putReplica(rep)
				}
			}
		}
		for _, rep := range c.repChunks {
			for _, id := range plan.added {
				recvExtra[id] += rep.SizeBytes()
			}
			repBytes += rep.SizeBytes() * int64(len(plan.added))
		}
	}
	if err := c.shipReceiverBatches(plan, &frames); err != nil {
		undoAddedCopies()
		c.pendingRebalances.Add(-1)
		return 0, err
	}
	if err := c.executeRecoveries(plan, &frames); err != nil {
		undoAddedCopies()
		c.pendingRebalances.Add(-1)
		return 0, err
	}
	// Re-replication fills shipped by the recovery ops above.
	for _, op := range plan.recovers {
		for _, f := range op.fill {
			recvExtra[f] += op.size
			repBytes += op.size
		}
	}
	// At R >= 2 a committed move leaves the chunk's secondary set computed
	// against the old primary; re-derive it against the new one so a
	// secondary never shadows its own primary.
	c.fixupMovedReplicas(plan, recvExtra, &repBytes)
	c.pendingRebalances.Add(-1)
	// Every move is committed — sources emptied, receivers stored, catalog
	// final — so the placement feed can see the relocations (and promoted
	// primaries re-enter it as adds on their new owner). A failed shipment
	// rolled everything back above and publishes nothing.
	if c.feedActive() && (len(plan.moves) > 0 || len(plan.recovers) > 0) {
		events := make([]PlacementEvent, 0, len(plan.moves)+len(plan.recovers))
		for _, m := range plan.moves {
			events = append(events, PlacementEvent{Kind: PlacementMove, Key: m.Ref.Packed(), Node: m.To, From: m.From, Size: m.Size})
		}
		for _, op := range plan.recovers {
			if !op.promote {
				continue
			}
			events = append(events, PlacementEvent{Kind: PlacementAdd, Key: op.ref.Packed(), Node: op.host, Size: op.size})
		}
		c.publishPlacement(events)
	}
	// Receivers pull in parallel up to the fabric width (Eq 7). The
	// replica volumes are recomputed from what was actually copied, so
	// the charge stays honest even if the replica set changed since
	// planning; with an unchanged set this equals PredictedDuration by
	// construction (shared formula).
	recv := make(map[partition.NodeID]int64, len(plan.groups)+len(recvExtra))
	for _, g := range plan.groups {
		recv[g.node] = g.bytes
	}
	for id, extra := range recvExtra {
		recv[id] += extra
	}
	var maxRecv int64
	for _, b := range recv {
		if b > maxRecv {
			maxRecv = b
		}
	}
	// Measured outcome: the same Eq 7 fold the charge below uses (so the
	// measured wire bytes equal WireBytes() whenever the replica set held),
	// the transport's frame count, and the wall clock.
	plan.measuredWire = c.rebalanceWire(plan.totalBytes, repBytes, maxRecv)
	plan.frameBytes = frames
	plan.measuredDur = time.Since(start)
	c.announceAll()
	return c.rebalanceCharge(plan.totalBytes, repBytes, maxRecv, len(plan.added) > 0), nil
}

// parallelRebalanceThreshold is the plan width (in moves) below which
// per-receiver fan-out goroutines cost more than they save.
const parallelRebalanceThreshold = 8

// shipReceiverBatches moves every group's chunks: take from the sources,
// one batched encode, one batched decode at the receiver, put and
// recatalog. Groups ship in parallel when the plan is wide enough, and
// receiver store writes retry transient faults (putWithRetry) before the
// fault is treated as permanent. With a cluster transport the batch
// travels as one streaming KindRebalance push instead — receiver-atomic,
// retried whole against transient wire faults (pushWithRetry), with the
// frame bytes that crossed the wire accumulated into *frames. On any
// persistent error the whole plan rolls back — every taken or delivered
// chunk returns to its source and the catalog is restored — so a failed
// rebalance leaves the cluster exactly as it was.
func (c *Cluster) shipReceiverBatches(plan *RebalancePlan, frames *int64) error {
	type progress struct {
		taken []*array.Chunk // originals taken from sources, prefix of group.idx
		put   int            // decoded chunks delivered to the receiver
		wire  int64          // transport frame bytes, failed attempts included
		err   error
	}
	progs := make([]progress, len(plan.groups))
	ship := func(gi int) {
		g := plan.groups[gi]
		p := &progs[gi]
		dst := c.nodes[g.node]
		for _, i := range g.idx {
			m := plan.moves[i]
			ch, err := c.nodes[m.From].take(m.Ref)
			if err != nil {
				p.err = err
				return
			}
			p.taken = append(p.taken, ch)
		}
		if c.transport != nil {
			// One streaming push carries the whole batch; the receiver's
			// Deliver stores chunk-at-a-time and unwinds on any fault, so
			// success means every chunk landed and failure means none did.
			wire, err := c.pushWithRetry(c.Coordinator(), g.node, transport.KindRebalance, p.taken)
			p.wire = wire
			if err != nil {
				p.err = fmt.Errorf("cluster: batch for node %d: %w", g.node, err)
				return
			}
			p.put = len(g.idx)
			for _, i := range g.idx {
				c.owner.Set(plan.moves[i].Ref.Packed(), g.node)
			}
			return
		}
		// The batched codec round-trip stands in for the wire, exactly as
		// the per-chunk trip did: real serialized bytes, one message per
		// receiver. The receiver side streams — each chunk is decoded off
		// the shared buffer and stored before the next materialises — so
		// peak memory per receiver is the wire buffer plus one chunk, not
		// the whole batch twice.
		wire, err := array.EncodeChunkBatch(p.taken)
		if err != nil {
			p.err = err
			return
		}
		dec, err := array.NewChunkBatchReader(func(name string) (*array.Schema, bool) {
			s, ok := c.schemas[name]
			return s, ok
		}, wire)
		if err != nil || dec.Len() != len(g.idx) {
			if err == nil {
				err = fmt.Errorf("batch carries %d chunks, plan shipped %d", dec.Len(), len(g.idx))
			}
			p.err = fmt.Errorf("cluster: batch for node %d corrupted in transit: %w", g.node, err)
			return
		}
		for k := range g.idx {
			ch, err := dec.Next()
			if err != nil {
				p.err = fmt.Errorf("cluster: batch for node %d corrupted in transit: %w", g.node, err)
				return
			}
			if err := c.putWithRetry(dst, ch); err != nil {
				p.err = err
				return
			}
			p.put = k + 1
			c.owner.Set(plan.moves[g.idx[k]].Ref.Packed(), g.node)
		}
	}
	if len(plan.groups) <= 1 || len(plan.moves) < parallelRebalanceThreshold || runtime.GOMAXPROCS(0) == 1 {
		for gi := range plan.groups {
			ship(gi)
			if progs[gi].err != nil {
				break
			}
		}
	} else {
		// Groups are disjoint by construction (a chunk moves at most once
		// per plan), so receivers only share the locked stores and the
		// sharded catalog.
		var wg sync.WaitGroup
		for gi := range plan.groups {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				ship(gi)
			}(gi)
		}
		wg.Wait()
	}
	for gi := range progs {
		if progs[gi].err == nil {
			continue
		}
		// Roll the whole plan back: remove delivered copies, restore the
		// catalog, return the originals to their sources.
		for gj := range plan.groups {
			g, p := plan.groups[gj], &progs[gj]
			for k := 0; k < p.put; k++ {
				m := plan.moves[g.idx[k]]
				_, _ = c.nodes[g.node].take(m.Ref)
				c.owner.Set(m.Ref.Packed(), m.From)
			}
			for k, ch := range p.taken {
				m := plan.moves[g.idx[k]]
				_ = c.nodes[m.From].put(ch)
			}
		}
		return progs[gi].err
	}
	for gi := range progs {
		*frames += progs[gi].wire
	}
	return nil
}
