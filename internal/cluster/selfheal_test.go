package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/transport"
)

// TestHeartbeatNow pins the emission path: every non-coordinator node
// announces once per call, sequence numbers are strictly monotonic, and a
// transportless cluster is a no-op.
func TestHeartbeatNow(t *testing.T) {
	c := newTransportCluster(t, 3, 1, transport.NewLoopback())
	if sent := c.HeartbeatNow(); sent != 2 {
		t.Fatalf("HeartbeatNow sent %d, want 2 (non-coordinator nodes)", sent)
	}
	first := map[partition.NodeID]uint64{}
	for id, a := range c.Announcements() {
		if a.Seq == 0 {
			t.Errorf("node %d heartbeat carries seq 0", id)
		}
		first[id] = a.Seq
	}
	if len(first) != 2 {
		t.Fatalf("announcements from %d nodes, want 2", len(first))
	}
	c.HeartbeatNow()
	for id, a := range c.Announcements() {
		if a.Seq <= first[id] {
			t.Errorf("node %d seq did not advance: %d then %d", id, first[id], a.Seq)
		}
	}

	plain := newReplicatedCluster(t, 3, 2)
	if sent := plain.HeartbeatNow(); sent != 0 {
		t.Fatalf("transportless HeartbeatNow sent %d, want 0", sent)
	}
}

// TestHeartbeatSeqSurvivesTopologyChange: the lock-free node snapshot is
// republished on scale-out, so new nodes beat too and existing counters
// keep counting.
func TestHeartbeatSeqSurvivesTopologyChange(t *testing.T) {
	c := newTransportCluster(t, 2, 1, transport.NewLoopback())
	c.HeartbeatNow()
	plan, err := c.PlanScaleOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	if sent := c.HeartbeatNow(); sent != 3 {
		t.Fatalf("after scale-out HeartbeatNow sent %d, want 3", sent)
	}
	anns := c.Announcements()
	if len(anns) != 3 {
		t.Fatalf("announcements from %d nodes, want 3", len(anns))
	}
}

// TestAnnouncementSink pins the supervisor's intake seam: the registered
// sink observes every announcement, heartbeats included, outside the
// cluster's locks.
func TestAnnouncementSink(t *testing.T) {
	c := newTransportCluster(t, 3, 1, transport.NewLoopback())
	var mu sync.Mutex
	var got []transport.Announcement
	c.SetAnnouncementSink(func(a transport.Announcement) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	})
	sent := c.HeartbeatNow()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != sent {
		t.Fatalf("sink saw %d announcements, %d were sent", len(got), sent)
	}
	for _, a := range got {
		if a.Seq == 0 {
			t.Errorf("sink saw node %d announcement without a seq", a.Node)
		}
	}
}

// TestStartHeartbeatsStops: the timer loop runs and its stop function is
// idempotent and synchronous.
func TestStartHeartbeatsStops(t *testing.T) {
	c := newTransportCluster(t, 2, 1, transport.NewLoopback())
	stop := c.StartHeartbeats(time.Millisecond)
	defer stop()
	deadline := 0
	for {
		if a, ok := c.Announcements()[c.Nodes()[1]]; ok && a.Seq >= 2 {
			break
		}
		if deadline++; deadline > 5000 {
			t.Fatal("heartbeat loop never emitted")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

// TestSuspectLifecycle walks the advisory state: validation, idempotence,
// Validate's report, and the hand-offs to FailNode and ClearNodeSuspect.
func TestSuspectLifecycle(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	if err := c.MarkNodeSuspect(99); err == nil {
		t.Error("suspecting an unknown node must error")
	}
	if err := c.MarkNodeSuspect(c.Coordinator()); err == nil {
		t.Error("suspecting the coordinator must error")
	}
	var victim partition.NodeID
	for _, id := range c.Nodes() {
		if id != c.Coordinator() {
			victim = id
			break
		}
	}
	if err := c.MarkNodeSuspect(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkNodeSuspect(victim); err != nil {
		t.Errorf("re-suspecting must be idempotent: %v", err)
	}
	if got := c.SuspectNodes(); len(got) != 1 || got[0] != victim {
		t.Fatalf("SuspectNodes = %v, want [%d]", got, victim)
	}
	if h, _ := c.NodeHealthOf(victim); h != NodeSuspect {
		t.Fatalf("health = %v, want NodeSuspect", h)
	}
	// Suspect is advisory: the node still serves, so it is not Degraded...
	if c.Degraded() {
		t.Error("suspect node must not make the cluster Degraded")
	}
	// ...but Validate surfaces the open verdict.
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "suspect") {
		t.Fatalf("Validate with a suspect node = %v, want suspect report", err)
	}
	if err := c.ClearNodeSuspect(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.ClearNodeSuspect(victim); err != nil {
		t.Errorf("clearing a healthy node must be idempotent: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after clearing: %v", err)
	}

	// The detector's Down verdict supersedes suspicion directly.
	if err := c.MarkNodeSuspect(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(victim); err != nil {
		t.Fatalf("FailNode on a suspect node: %v", err)
	}
	if got := c.SuspectNodes(); len(got) != 0 {
		t.Fatalf("SuspectNodes after FailNode = %v, want none", got)
	}
	if err := c.MarkNodeSuspect(victim); err == nil {
		t.Error("suspecting a down node must error")
	}
	if err := c.ClearNodeSuspect(victim); err == nil {
		t.Error("clearing a down node must error (RecoverNode's job)")
	}
}

// TestRecoverNodeRestoresSecondarySpread is the PR 6 follow-up pinned: the
// instant a node is readmitted it holds its canonical rendezvous share of
// the secondary set — not zero copies until some later rebalance.
func TestRecoverNodeRestoresSecondarySpread(t *testing.T) {
	c := newReplicatedCluster(t, 4, 2)
	chunks := makeChunks(t, 40, 8, 17)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	vnode, _ := c.Node(victim)
	if vnode.NumReplicas() == 0 {
		t.Fatal("readmitted node holds zero secondaries; canonical share not restored")
	}
	// Every chunk's catalogued secondary set must be exactly the canonical
	// rendezvous choice over the healthy nodes, and each copy must exist.
	healthy := c.HealthyNodes()
	for _, ch := range chunks {
		key := ch.Key()
		owner, ok := c.Owner(key)
		if !ok {
			t.Fatalf("chunk %s lost from catalog", ch.Ref())
		}
		want := partition.ReplicaNodes(key, owner, healthy, nil, 1)
		got := c.ReplicaHolders(key)
		if len(got) != len(want) {
			t.Fatalf("chunk %s has %d secondaries, want %d", ch.Ref(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %s secondaries = %v, want canonical %v", ch.Ref(), got, want)
			}
			holder, _ := c.Node(got[i])
			if _, ok := holder.Replica(ch.Ref()); !ok {
				t.Fatalf("node %d catalogued for %s but holds no copy", got[i], ch.Ref())
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-readmission Validate: %v", err)
	}
}

// TestRecoverNodeRetryableAfterTransientFault: a readmission that dies
// mid-way through the replica restore leaves the node Down, so a retry of
// RecoverNode is well-formed and completes the restore — the supervisor's
// readmit retry loop depends on this.
func TestRecoverNodeRetryableAfterTransientFault(t *testing.T) {
	ft := transport.NewFaultTransport(transport.NewLoopback())
	c := newTransportCluster(t, 4, 2, ft)
	if _, err := c.Insert(makeChunks(t, 40, 8, 23)); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err != nil {
		t.Fatal(err)
	}
	ft.FailNextPushes(1 << 20)
	if _, err := c.RecoverNode(victim); err == nil {
		t.Fatal("RecoverNode should fail while every push drops")
	}
	if h, _ := c.NodeHealthOf(victim); h != NodeDown {
		t.Fatalf("failed readmission left node health %v, want Down", h)
	}
	if !c.Degraded() {
		t.Fatal("failed readmission should leave the cluster degraded")
	}
	ft.FailNextPushes(0)
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatalf("retry after disarming faults: %v", err)
	}
	if h, _ := c.NodeHealthOf(victim); h != NodeHealthy {
		t.Fatalf("retried readmission left node health %v, want Healthy", h)
	}
	vnode, _ := c.Node(victim)
	if vnode.NumReplicas() == 0 {
		t.Fatal("readmitted node holds zero secondaries after retry")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-retry Validate: %v", err)
	}
}

// TestErrStalePlanIdentity: executing a plan across a topology change fails
// with the sentinel, matchable by errors.Is.
func TestErrStalePlanIdentity(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2)
	chunks := makeChunks(t, 10, 8, 19)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, c)
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRecover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverNode(victim); err != nil { // bumps the epoch
		t.Fatal(err)
	}
	_, err = c.ExecuteRebalance(plan)
	if !errors.Is(err, ErrStalePlan) {
		t.Fatalf("stale execute = %v, want ErrStalePlan", err)
	}
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale error text %q must keep the word 'stale'", err)
	}
}
