package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/array"
	"repro/internal/transport"
)

// newTransportCluster builds a cluster routing its data paths over the
// given transport, with the test schema defined and Close hooked into
// test cleanup.
func newTransportCluster(t testing.TB, nodes, replication int, tr transport.Transport) *Cluster {
	t.Helper()
	c, err := New(Config{
		InitialNodes:      nodes,
		NodeCapacity:      10 << 20,
		Partitioner:       consistentFactory,
		ReplicationFactor: replication,
		Transport:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.DefineArray(testSchema()); err != nil {
		t.Fatal(err)
	}
	return c
}

// eachClusterBackend runs fn once per transport backend, plus the
// transportless baseline when withNil is set.
func eachClusterBackend(t *testing.T, fn func(t *testing.T, tr transport.Transport)) {
	t.Run("loopback", func(t *testing.T) { fn(t, transport.NewLoopback()) })
	t.Run("tcp", func(t *testing.T) { fn(t, transport.NewTCP(transport.TCPOptions{})) })
}

// makeChunksIn builds n chunks with `cells` occupied cells each, confined
// to grid rows [rowLo, rowHi) so successive batches cannot collide under
// the no-overwrite model.
func makeChunksIn(t testing.TB, n, cells int, seed, rowLo, rowHi int64) []*array.Chunk {
	t.Helper()
	s := testSchema()
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	var out []*array.Chunk
	for len(out) < n {
		cc := array.ChunkCoord{rowLo + rng.Int63n(rowHi-rowLo), rng.Int63n(16)}
		if used[cc.Key()] {
			continue
		}
		used[cc.Key()] = true
		ch := array.NewChunk(s, cc)
		origin := s.ChunkOrigin(cc)
		for k := 0; k < cells; k++ {
			cell := array.Coord{origin[0] + int64(k%4), origin[1] + int64((k/4)%4)}
			ch.AppendCell(cell, []array.CellValue{{Float: rng.Float64()}})
		}
		out = append(out, ch)
	}
	return out
}

// fingerprint captures the cluster's full data state — every node's
// primaries and replicas, hashed payloads included — so two clusters can
// be compared byte for byte.
func fingerprint(t testing.TB, c *Cluster) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, info := range node.ChunkInfos() {
			ch, ok := node.Chunk(info.Ref)
			if !ok {
				t.Fatalf("node %d lists %s but cannot serve it", id, info.Ref)
			}
			enc, err := array.EncodeChunk(ch)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(enc)
			out[fmt.Sprintf("%d/primary/%s", id, info.Ref)] = hex.EncodeToString(sum[:])
		}
		for _, rep := range node.Replicas() {
			enc, err := array.EncodeChunk(rep)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(enc)
			out[fmt.Sprintf("%d/replica/%s", id, rep.Ref())] = hex.EncodeToString(sum[:])
		}
	}
	return out
}

func diffFingerprints(t *testing.T, want, got map[string]string) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("state diverges at %s: baseline %q, transport %q", k, want[k], got[k])
		}
	}
}

// TestClusterOverTransportMatchesInProcess drives the same insert →
// scale-out → insert sequence through each transport backend and through
// the transportless baseline, and demands byte-identical cluster state
// and identical simulated charges.
func TestClusterOverTransportMatchesInProcess(t *testing.T) {
	run := func(t *testing.T, tr transport.Transport) (map[string]string, Duration, Duration) {
		var c *Cluster
		if tr == nil {
			c = newReplicatedCluster(t, 2, 2)
		} else {
			c = newTransportCluster(t, 2, 2, tr)
		}
		d1, err := c.Insert(makeChunksIn(t, 24, 8, 7, 0, 8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.ScaleOut(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(makeChunksIn(t, 16, 8, 11, 8, 16)); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, c), d1, res.Reorg
	}
	base, baseIns, baseReorg := run(t, nil)
	eachClusterBackend(t, func(t *testing.T, tr transport.Transport) {
		got, ins, reorg := run(t, tr)
		diffFingerprints(t, base, got)
		if ins != baseIns {
			t.Errorf("insert charge %v, baseline %v", ins, baseIns)
		}
		if reorg != baseReorg {
			t.Errorf("reorg charge %v, baseline %v", reorg, baseReorg)
		}
	})
}

// TestScaleOutMeasuredWireMatchesPrediction checks the acceptance bar for
// the measured-vs-predicted surface: a rebalance over a transport reports
// MeasuredWireBytes equal to the plan's Eq 7 prediction, a wall-clock
// duration, and (over TCP) a framing-included byte count at least the
// payload volume.
func TestScaleOutMeasuredWireMatchesPrediction(t *testing.T) {
	eachClusterBackend(t, func(t *testing.T, tr transport.Transport) {
		c := newTransportCluster(t, 2, 1, tr)
		if _, err := c.Insert(makeChunks(t, 30, 8, 3)); err != nil {
			t.Fatal(err)
		}
		res, err := c.ScaleOut(2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Moves == 0 {
			t.Fatal("scale-out moved nothing; fixture too small")
		}
		if res.PredictedWireBytes == 0 {
			t.Error("predicted wire bytes missing")
		}
		if res.MeasuredWireBytes != res.PredictedWireBytes {
			t.Errorf("MeasuredWireBytes = %d, predicted %d", res.MeasuredWireBytes, res.PredictedWireBytes)
		}
		if res.MeasuredDuration <= 0 {
			t.Error("measured duration missing")
		}
		if tr.Remote() {
			if res.FrameBytes < res.MovedBytes {
				t.Errorf("TCP frame bytes %d below payload volume %d", res.FrameBytes, res.MovedBytes)
			}
		} else if res.FrameBytes != res.MovedBytes {
			// Loopback reports exactly the payload volume per push.
			t.Errorf("loopback frame bytes %d, want moved bytes %d", res.FrameBytes, res.MovedBytes)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransportRetryAbsorbsTransientFaults arms a FaultTransport to drop
// connections ahead of rebalance pushes and expects the transfer retry
// budget to absorb them with no effect on the outcome.
func TestTransportRetryAbsorbsTransientFaults(t *testing.T) {
	ft := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c := newTransportCluster(t, 2, 1, ft)
	if _, err := c.Insert(makeChunks(t, 30, 8, 3)); err != nil {
		t.Fatal(err)
	}
	ft.FailNextPushes(2)
	res, err := c.ScaleOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Injected() == 0 {
		t.Fatal("fault transport injected nothing")
	}
	if res.MeasuredWireBytes != res.PredictedWireBytes {
		t.Errorf("MeasuredWireBytes = %d, predicted %d", res.MeasuredWireBytes, res.PredictedWireBytes)
	}
	// Frame bytes include the bytes burned by the failed attempts.
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTransportTruncationRetried arms torn streams — the receiver sees a
// decode failure mid-batch, unwinds, and the sender's retry completes the
// transfer.
func TestTransportTruncationRetried(t *testing.T) {
	ft := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c := newTransportCluster(t, 2, 1, ft)
	if _, err := c.Insert(makeChunks(t, 30, 8, 3)); err != nil {
		t.Fatal(err)
	}
	ft.TruncateNextPushes(1)
	if _, err := c.ScaleOut(2); err != nil {
		t.Fatal(err)
	}
	if ft.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", ft.Injected())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceRollsBackOnPersistentTransportFault exhausts the retry
// budget and expects the whole rebalance to roll back atomically, leaving
// a valid cluster.
func TestRebalanceRollsBackOnPersistentTransportFault(t *testing.T) {
	ft := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c := newTransportCluster(t, 2, 1, ft)
	if _, err := c.Insert(makeChunks(t, 30, 8, 3)); err != nil {
		t.Fatal(err)
	}
	before := fingerprint(t, c)
	ft.FailNextPushes(1000)
	_, err := c.ScaleOut(2)
	if err == nil {
		t.Fatal("scale-out should fail when every push drops")
	}
	if !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("error should wrap ErrInjected, got %v", err)
	}
	ft.FailNextPushes(0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The provisioned nodes stand (monotonic growth), but no chunk moved.
	diffFingerprints(t, before, fingerprint(t, c))
}

// TestIngestOverTransportRollsBack arms a persistent drop against ingest
// pushes: ExecutePlan must fail and release the plan's reservations.
func TestIngestOverTransportRollsBack(t *testing.T) {
	ft := transport.NewFaultTransport(transport.NewTCP(transport.TCPOptions{}))
	c := newTransportCluster(t, 3, 1, ft)
	if _, err := c.Insert(makeChunksIn(t, 12, 8, 5, 0, 8)); err != nil {
		t.Fatal(err)
	}
	before := fingerprint(t, c)
	ft.FailNextPushes(1000)
	_, err := c.Insert(makeChunksIn(t, 12, 8, 9, 8, 16))
	if err == nil {
		t.Fatal("insert should fail when every push drops")
	}
	ft.FailNextPushes(0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	diffFingerprints(t, before, fingerprint(t, c))
	// The failed batch's reservations are released: re-inserting works.
	if _, err := c.Insert(makeChunksIn(t, 12, 8, 9, 8, 16)); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDrillOverTransport runs the kill-a-node drill — fail,
// recover from replicas, readmit — entirely over each backend and pins
// the end state to the transportless baseline.
func TestRecoveryDrillOverTransport(t *testing.T) {
	drill := func(t *testing.T, c *Cluster) map[string]string {
		if _, err := c.Insert(makeChunks(t, 24, 8, 7)); err != nil {
			t.Fatal(err)
		}
		victim := pickVictim(t, c)
		if err := c.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		plan, err := c.PlanRecover(victim)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Unrecoverable()) > 0 {
			t.Fatalf("unrecoverable: %v", plan.Unrecoverable())
		}
		if _, err := c.ExecuteRebalance(plan); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecoverNode(victim); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, c)
	}
	base := drill(t, newReplicatedCluster(t, 3, 2))
	eachClusterBackend(t, func(t *testing.T, tr transport.Transport) {
		diffFingerprints(t, base, drill(t, newTransportCluster(t, 3, 2, tr)))
	})
}

// TestAnnouncementsTrackHoldings checks that after transport-routed
// administration the coordinator's announced view matches each node's
// actual holdings.
func TestAnnouncementsTrackHoldings(t *testing.T) {
	eachClusterBackend(t, func(t *testing.T, tr transport.Transport) {
		c := newTransportCluster(t, 2, 2, tr)
		if _, err := c.Insert(makeChunks(t, 24, 8, 7)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ScaleOut(1); err != nil {
			t.Fatal(err)
		}
		anns := c.Announcements()
		coord := c.Coordinator()
		for _, id := range c.Nodes() {
			if id == coord {
				continue
			}
			a, ok := anns[id]
			if !ok {
				t.Fatalf("node %d never announced", id)
			}
			node, _ := c.Node(id)
			if a.Chunks != int64(node.NumChunks()) || a.Bytes != node.Bytes() {
				t.Errorf("node %d announced %d chunks / %d bytes, holds %d / %d",
					id, a.Chunks, a.Bytes, node.NumChunks(), node.Bytes())
			}
			if a.Replicas != int64(node.NumReplicas()) || a.ReplicaBytes != node.ReplicaBytes() {
				t.Errorf("node %d announced %d replicas / %d bytes, holds %d / %d",
					id, a.Replicas, a.ReplicaBytes, node.NumReplicas(), node.ReplicaBytes())
			}
		}
		if _, ok := anns[coord]; ok {
			t.Error("coordinator should not announce to itself")
		}
	})
}

// TestWireReadsGate pins the query-side gate: only a served remote
// transport reports wire reads.
func TestWireReadsGate(t *testing.T) {
	if newTestCluster(t, 2, consistentFactory).WireReads() {
		t.Error("transportless cluster must not report wire reads")
	}
	if newTransportCluster(t, 2, 1, transport.NewLoopback()).WireReads() {
		t.Error("loopback cluster must not report wire reads")
	}
	if !newTransportCluster(t, 2, 1, transport.NewTCP(transport.TCPOptions{})).WireReads() {
		t.Error("tcp cluster must report wire reads")
	}
}

// TestFetchChunkServesPrimaryAndReplica exercises the cluster-level fetch
// helper the query layer's wire pulls use.
func TestFetchChunkServesPrimaryAndReplica(t *testing.T) {
	c := newTransportCluster(t, 2, 2, transport.NewTCP(transport.TCPOptions{}))
	chunks := makeChunks(t, 8, 8, 7)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	coord := c.Coordinator()
	for _, ch := range chunks {
		owner, ok := c.Owner(ch.Key())
		if !ok {
			t.Fatalf("chunk %s not catalogued", ch.Ref())
		}
		got, err := c.FetchChunk(coord, owner, ch.Ref())
		if err != nil {
			t.Fatal(err)
		}
		wantEnc, _ := array.EncodeChunk(ch)
		gotEnc, _ := array.EncodeChunk(got)
		if string(wantEnc) != string(gotEnc) {
			t.Fatalf("fetched %s differs from inserted payload", ch.Ref())
		}
		// A replica holder serves the same chunk off its replica map.
		for _, h := range c.ReplicaHolders(ch.Key()) {
			got, err := c.FetchChunk(coord, h, ch.Ref())
			if err != nil {
				t.Fatal(err)
			}
			gotEnc, _ := array.EncodeChunk(got)
			if string(wantEnc) != string(gotEnc) {
				t.Fatalf("replica fetch of %s from node %d differs", ch.Ref(), h)
			}
		}
	}
}
