// Package cluster is the shared-nothing substrate the elasticity layers
// run on: a coordinator plus a monotonically growing set of nodes, each a
// capacity-accounted chunk store (in-memory, or write-through to disk),
// glued together by a partitioner and the authoritative chunk→node
// catalog. Simulated time — the currency of every experiment — comes from
// its CostModel: disk rate δ, network rate t, and the fixed per-operation
// overheads of the paper's Equations 6 and 7.
//
// # Ingest: plan → execute
//
// Ingest is an explicit two-phase pipeline. PlanInsert does all the
// fallible work — canonical-order sort, schema checks, duplicate detection
// within the batch and against the catalog, batch placement through
// partition.Placer.PlaceBatch, destination validation — and reserves the
// batch's chunks in the catalog, returning an IngestPlan. ExecutePlan then
// performs the writes, fanning out one goroutine per destination node, and
// charges the paper's Eq 6 split (coordinator-local bytes at disk rate,
// shipped bytes at network rate). A plan must be executed exactly once or
// released with Discard; Insert runs both phases in one call. Any number
// of ingest calls may run concurrently — the plan phase is serialised over
// the partitioner's table, execution interleaves against the sharded
// catalog and the locked stores.
//
// Plans are epoch-stamped: a rebalance committing advances the cluster's
// topology epoch, so a plan computed before the change is stale and
// ExecutePlan rejects it (releasing its reservations) rather than writing
// to destinations the revised table no longer sanctions.
//
// # Rebalance: plan → execute
//
// The elasticity surface follows the same contract. PlanScaleOut
// provisions k nodes, lets the partitioner revise its table (both commit
// at planning time — the epoch advances here) and returns a
// RebalancePlan; PlanMigrate validates an externally planned move set
// (the co-access advisor's, say) without changing anything. Planning does
// all the fallible work up front: every move is checked against the
// catalog, the source stores (a reserved-but-unstored ingest chunk
// cannot be moved) and the schema registry, then grouped per receiving
// node with the predicted wire volume and Eq 7 duration readable off the
// plan. ExecuteRebalance ships each receiver's chunks as one batched
// codec round-trip (array.EncodeChunkBatch, drained chunk-at-a-time with
// array.ChunkBatchReader so a receiver's peak memory is the wire buffer
// plus one decoded chunk), fanning receivers out in parallel for wide
// plans, and is atomic: any store error rolls every chunk back to its
// source and restores the catalog. A plan executes at most once or is
// released with Discard; like ingest plans, rebalance plans are
// epoch-stamped, so executing one stales outstanding ingest plans and any
// concurrently planned rebalance. Validate names outstanding plans of
// both kinds. ScaleOut and Migrate remain as thin plan+execute wrappers
// run under one administrative critical section.
//
// # The placement change feed
//
// Both execution choke points publish what they committed — chunk adds
// from ExecutePlan, chunk moves from ExecuteRebalance — as
// generation-stamped event batches on the placement change feed
// (SubscribePlacement / PlacementGen; see feed.go for the full contract).
// Batches are published only after the all-or-nothing execution phase has
// succeeded, so rollbacks, discards and stale-plan rejections are
// invisible to subscribers: the feed describes committed placement and
// nothing else. Derived-state consumers — the co-access advisor's
// continuous graph (advisor.Live) — patch themselves from the feed and
// fall back to a full rebuild under Quiesce, which freezes execution, the
// feed and the generation for a consistent snapshot. With no subscriber
// the feed costs the hot paths one atomic load.
//
// # The sharded catalog
//
// The catalog maps packed array.ChunkKey identities to owning nodes. It is
// striped over a power-of-two number of lock-guarded shards selected by
// ChunkKey.Hash, so concurrent batches reserve and publish ownership
// without contending on one lock while a single lookup stays hash → probe
// with no allocation. Reserve is the one-shot claim primitive: duplicate
// check and insertion under a single shard lock.
//
// # Queries
//
// The query layer (package query) reads nodes' chunks directly and runs
// its scans on a worker pool sized by Config.Parallelism (0 =
// GOMAXPROCS-gated; retune live with SetParallelism). Node stores are
// locked, so scans are safe against concurrent ingest of other arrays;
// the simulated cost of a query comes from the query package's Tracker,
// not from wall-clock time.
package cluster
