package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/array"
)

// ChunkStore is a node's local chunk storage. MemStore keeps payloads in
// memory only; DiskStore additionally writes every chunk through to disk
// in the array wire format, so a node's contents survive process restarts
// and can be re-indexed with OpenDiskStore.
type ChunkStore interface {
	// Put stores a chunk. Storing a duplicate identity is an error.
	Put(*array.Chunk) error
	// Take removes and returns a chunk.
	Take(array.ChunkRef) (*array.Chunk, error)
	// Get returns a resident chunk without removing it.
	Get(array.ChunkRef) (*array.Chunk, bool)
	// Refs returns the stored identities in canonical order.
	Refs() []array.ChunkRef
	// Bytes returns the summed payload footprint.
	Bytes() int64
	// Len returns the number of stored chunks.
	Len() int
}

// MemStore is the default in-memory chunk store, keyed by the packed chunk
// identity so lookups and inserts allocate nothing. A mutex guards the map
// and the byte accounting: the ingest pipeline writes to a node's store
// from per-destination goroutines, and concurrent batches may target the
// same node. The zero value is not usable; construct with NewMemStore.
type MemStore struct {
	mu     sync.Mutex
	chunks map[array.ChunkKey]*array.Chunk
	bytes  int64
}

// NewMemStore returns an empty in-memory store, presized for a typical
// ingest burst so the first batches don't rehash the chunk map mid-write.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[array.ChunkKey]*array.Chunk, 128)}
}

// Put implements ChunkStore.
func (s *MemStore) Put(c *array.Chunk) error {
	key := c.Key()
	size := c.SizeBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.chunks[key]; dup {
		return fmt.Errorf("cluster: store already holds chunk %s", c.Ref())
	}
	s.chunks[key] = c
	s.bytes += size
	return nil
}

// Take implements ChunkStore.
func (s *MemStore) Take(ref array.ChunkRef) (*array.Chunk, error) {
	key := ref.Packed()
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[key]
	if !ok {
		return nil, fmt.Errorf("cluster: store does not hold chunk %s", ref)
	}
	delete(s.chunks, key)
	s.bytes -= c.SizeBytes()
	return c, nil
}

// Get implements ChunkStore.
func (s *MemStore) Get(ref array.ChunkRef) (*array.Chunk, bool) {
	key := ref.Packed()
	s.mu.Lock()
	c, ok := s.chunks[key]
	s.mu.Unlock()
	return c, ok
}

// Refs implements ChunkStore.
func (s *MemStore) Refs() []array.ChunkRef {
	s.mu.Lock()
	keys := make([]array.ChunkKey, 0, len(s.chunks))
	for k := range s.chunks {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	out := make([]array.ChunkRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.Ref())
	}
	return out
}

// Bytes implements ChunkStore.
func (s *MemStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len implements ChunkStore.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chunks)
}

// fileEscaper maps chunk-key characters that are unsafe in file names.
var (
	fileEscaper   = strings.NewReplacer(":", "-", "/", "_")
	fileUnescaper = strings.NewReplacer("-", ":", "_", "/")
)

const (
	chunkFileExt = ".chunk"
	// tmpFileSuffix marks in-flight mirror writes; DiskStore.Put renames
	// them into place atomically and OpenDiskStore sweeps any left by a
	// crash.
	tmpFileSuffix = ".tmp"
)

// DiskStore is a write-through persistent store: chunks live in memory for
// serving and are mirrored to one file each (array wire format) under the
// store's directory. SchemaLookup resolves array names during re-indexing.
type DiskStore struct {
	mem    *MemStore
	dir    string
	lookup func(name string) (*array.Schema, bool)
}

// NewDiskStore creates (or reuses) the directory and returns an empty
// write-through store. Existing chunk files are NOT loaded; use
// OpenDiskStore to recover a previous store's contents.
func NewDiskStore(dir string, lookup func(string) (*array.Schema, bool)) (*DiskStore, error) {
	if lookup == nil {
		return nil, fmt.Errorf("cluster: DiskStore needs a schema lookup")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating store dir: %w", err)
	}
	return &DiskStore{mem: NewMemStore(), dir: dir, lookup: lookup}, nil
}

// OpenDiskStore re-indexes an existing store directory, decoding and
// verifying every chunk file. Corrupt or unparseable files are reported,
// not skipped — recovery must be loud.
func OpenDiskStore(dir string, lookup func(string) (*array.Schema, bool)) (*DiskStore, error) {
	s, err := NewDiskStore(dir, lookup)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading store dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), tmpFileSuffix) {
			// A crash mid-Put left an in-flight temp file; its chunk was
			// never committed (the rename is the commit point), so sweep it.
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("cluster: sweeping stale temp file %q: %w", e.Name(), err)
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), chunkFileExt) {
			continue
		}
		key := fileUnescaper.Replace(strings.TrimSuffix(e.Name(), chunkFileExt))
		ref, err := array.ParseChunkRef(key)
		if err != nil {
			return nil, fmt.Errorf("cluster: store file %q does not name a chunk: %w", e.Name(), err)
		}
		schema, ok := lookup(ref.Array)
		if !ok {
			return nil, fmt.Errorf("cluster: store holds chunk of unknown array %q", ref.Array)
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		ch, err := array.DecodeChunk(schema, data)
		if err != nil {
			return nil, fmt.Errorf("cluster: store file %q corrupt: %w", e.Name(), err)
		}
		if ch.Ref().Key() != ref.Key() {
			return nil, fmt.Errorf("cluster: store file %q holds chunk %s", e.Name(), ch.Ref())
		}
		if err := s.mem.Put(ch); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *DiskStore) path(ref array.ChunkRef) string {
	return filepath.Join(s.dir, fileEscaper.Replace(ref.Key())+chunkFileExt)
}

// Put implements ChunkStore: memory first, then the disk mirror. The
// mirror write is crash-safe: the payload lands in a temp file that is
// atomically renamed into place, so a crash mid-write leaves at worst a
// .tmp file (swept by OpenDiskStore), never a truncated .chunk file that
// re-indexing would reject as corrupt.
func (s *DiskStore) Put(c *array.Chunk) error {
	if err := s.mem.Put(c); err != nil {
		return err
	}
	data, err := array.EncodeChunk(c)
	if err != nil {
		_, _ = s.mem.Take(c.Ref())
		return err
	}
	path := s.path(c.Ref())
	tmp := path + tmpFileSuffix
	err = os.WriteFile(tmp, data, 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		// Roll back the memory insert so state stays consistent.
		_, _ = s.mem.Take(c.Ref())
		return fmt.Errorf("cluster: persisting chunk %s: %w", c.Ref(), err)
	}
	return nil
}

// Take implements ChunkStore, removing the disk mirror too.
func (s *DiskStore) Take(ref array.ChunkRef) (*array.Chunk, error) {
	c, err := s.mem.Take(ref)
	if err != nil {
		return nil, err
	}
	if err := os.Remove(s.path(ref)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: removing chunk file for %s: %w", ref, err)
	}
	return c, nil
}

// Get implements ChunkStore.
func (s *DiskStore) Get(ref array.ChunkRef) (*array.Chunk, bool) { return s.mem.Get(ref) }

// Refs implements ChunkStore.
func (s *DiskStore) Refs() []array.ChunkRef { return s.mem.Refs() }

// Bytes implements ChunkStore.
func (s *DiskStore) Bytes() int64 { return s.mem.Bytes() }

// Len implements ChunkStore.
func (s *DiskStore) Len() int { return s.mem.Len() }

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }
