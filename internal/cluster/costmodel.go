// Package cluster implements the shared-nothing array database substrate
// the paper runs on: a coordinator, a set of nodes each with a chunk store
// and a capacity, partitioner-driven ingest, and migration execution for
// scale-out — together with the deterministic simulated-time cost model
// that stands in for the paper's physical 8-node testbed.
//
// Simulated time is pure arithmetic over real quantities: every insert,
// migration and query charges seconds proportional to the actual bytes
// written, shipped, or scanned and the actual cells processed. The δ (I/O)
// and t (network) constants are exactly the ones the paper's own analytical
// model (Section 5.2) is built from, which is what makes the reproduction's
// shapes comparable.
package cluster

import (
	"fmt"
	"time"
)

// Duration is simulated elapsed time in seconds.
type Duration float64

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Minutes returns the duration in minutes, the unit of the paper's figures.
func (d Duration) Minutes() float64 { return float64(d) / 60 }

// Std converts to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(float64(d) * float64(time.Second)) }

func (d Duration) String() string { return d.Std().String() }

// CostModel holds the simulator's unit costs. The defaults are calibrated
// so the scaled-down workloads produce figures in the same tens-of-minutes
// range as the paper's.
type CostModel struct {
	// DeltaSecPerByte is δ: seconds of disk I/O per byte read or written.
	DeltaSecPerByte float64
	// TSecPerByte is t: seconds of network transfer per byte shipped
	// between nodes.
	TSecPerByte float64
	// CPUSecPerCell is the processing cost per cell visited by a query
	// operator.
	CPUSecPerCell float64
	// QueryOverheadSec is the fixed per-query coordination cost
	// (planning, synchronisation barriers).
	QueryOverheadSec float64
	// ReorgFixedSec is the fixed coordination cost of one scale-out
	// event (quiescing writers, revising the partitioning table,
	// fencing the catalog) independent of bytes moved.
	ReorgFixedSec float64
	// FabricWidth is how many node-to-node transfers the cluster fabric
	// sustains concurrently during a reorganization. Migrations to k new
	// nodes proceed receiver-parallel up to this width — the paper's
	// §5.2 observation that an eager configuration "can better
	// parallelize the rebalancing with larger stair steps", and the
	// reason adding nodes one at a time reorganizes slowly: a single
	// receiver is a single NIC.
	FabricWidth int
}

// DefaultCostModel mirrors a modest 2014-era cluster: ~100 MB/s effective
// scan bandwidth per node, ~40 MB/s effective cross-node transfer (the
// paper's t > δ: "Append takes slightly longer … almost always inserting
// over the more costly network link"), and a few million cells per second
// of operator throughput.
func DefaultCostModel() CostModel {
	return CostModel{
		DeltaSecPerByte:  1.0 / (100 << 20),
		TSecPerByte:      1.0 / (40 << 20),
		CPUSecPerCell:    1.0 / 4e6,
		QueryOverheadSec: 0.5,
		ReorgFixedSec:    30,
		FabricWidth:      2,
	}
}

// ByteScaleDown and CellScaleDown relate the scaled substrate to the
// paper's testbed: one byte of generated data stands in for ~10 KiB of the
// real datasets (the 400–630 GB studies are reproduced at tens of MB), and
// one generated cell for ~1 Ki real cells.
const (
	ByteScaleDown = 10240
	CellScaleDown = 1024
)

// ScaledCostModel is DefaultCostModel with the byte and cell rates divided
// by the scale-down factors, so the scaled-down workloads spend the same
// *proportion* of time in I/O, network and compute as the full-size
// workloads would on the 2014-era cluster — which is what keeps the
// figures' shapes comparable: reorganization and spatial-query latency
// stay dominated by bytes moved, not by the (unscaled, real-second) fixed
// overheads.
func ScaledCostModel() CostModel {
	m := DefaultCostModel()
	m.DeltaSecPerByte *= ByteScaleDown // effective ~10 KiB/s per node
	m.TSecPerByte *= ByteScaleDown     // effective ~4 KiB/s across the fabric
	m.CPUSecPerCell *= CellScaleDown   // effective ~3.9 K cells/s per node
	return m
}

// Validate rejects non-positive unit costs.
func (m CostModel) Validate() error {
	if m.DeltaSecPerByte <= 0 || m.TSecPerByte <= 0 || m.CPUSecPerCell <= 0 {
		return fmt.Errorf("cluster: cost model rates must be positive: %+v", m)
	}
	if m.QueryOverheadSec < 0 || m.ReorgFixedSec < 0 {
		return fmt.Errorf("cluster: fixed overheads must be non-negative")
	}
	if m.FabricWidth < 1 {
		return fmt.Errorf("cluster: fabric width must be >= 1")
	}
	return nil
}

// DiskTime returns the simulated time to read or write n bytes on one node.
func (m CostModel) DiskTime(n int64) Duration { return Duration(float64(n) * m.DeltaSecPerByte) }

// NetTime returns the simulated time to ship n bytes across the fabric.
func (m CostModel) NetTime(n int64) Duration { return Duration(float64(n) * m.TSecPerByte) }

// CPUTime returns the simulated time to process n cells on one node.
func (m CostModel) CPUTime(n int64) Duration { return Duration(float64(n) * m.CPUSecPerCell) }
