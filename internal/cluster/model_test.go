package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

// TestRandomOperationSequences is a model-based test: drive the cluster
// with random insert / scale-out / migrate sequences under every
// partitioner while a trivial reference model (a map of chunk key →
// payload size) tracks what must be true. After every operation the
// cluster's audited state must match the model exactly.
func TestRandomOperationSequences(t *testing.T) {
	for _, kind := range partition.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runRandomSequence(t, kind, seed)
			}
		})
	}
}

func runRandomSequence(t *testing.T, kind string, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := testSchema()
	geom := partition.Geometry{Extents: []int64{16, 16}}
	capacity := int64(10 << 20)
	c, err := New(Config{
		InitialNodes: 2,
		NodeCapacity: capacity,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(kind, initial, geom, partition.Options{NodeCapacity: capacity})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		t.Fatal(err)
	}
	model := make(map[string]int64) // chunk key -> size
	unused := rng.Perm(256)         // chunk-grid slots not yet inserted
	next := 0

	for op := 0; op < 40; op++ {
		switch {
		case next < len(unused) && (rng.Intn(3) != 0 || c.NumNodes() >= 8):
			// Insert a batch of 1-8 fresh chunks.
			n := 1 + rng.Intn(8)
			var batch []*array.Chunk
			for i := 0; i < n && next < len(unused); i++ {
				slot := unused[next]
				next++
				cc := array.ChunkCoord{int64(slot / 16), int64(slot % 16)}
				ch := array.NewChunk(schema, cc)
				origin := schema.ChunkOrigin(cc)
				for k := 0; k < 1+rng.Intn(20); k++ {
					cell := array.Coord{origin[0] + int64(k%4), origin[1] + int64((k/4)%4)}
					ch.AppendCell(cell, []array.CellValue{{Float: rng.Float64()}})
				}
				batch = append(batch, ch)
				model[ch.Ref().Key()] = ch.SizeBytes()
			}
			if _, err := c.Insert(batch); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
		case c.NumNodes() < 8:
			// Scale out by 1 or 2.
			if _, err := c.ScaleOut(1 + rng.Intn(2)); err != nil {
				t.Fatalf("op %d scale-out: %v", op, err)
			}
		}
		// Occasionally migrate a random chunk to a random other node.
		if len(model) > 0 && rng.Intn(4) == 0 {
			keys := make([]string, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			key := keys[rng.Intn(len(keys))]
			ref, _ := array.ParseChunkRef(key)
			from, _ := c.Owner(ref.Packed())
			to := c.Nodes()[rng.Intn(c.NumNodes())]
			if to != from {
				if _, err := c.Migrate([]partition.Move{{Ref: ref, From: from, To: to, Size: model[key]}}); err != nil {
					t.Fatalf("op %d migrate: %v", op, err)
				}
			}
		}
		// Audit against the model.
		if err := c.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if c.NumChunks() != len(model) {
			t.Fatalf("op %d: cluster has %d chunks, model %d", op, c.NumChunks(), len(model))
		}
		var want int64
		for _, size := range model {
			want += size
		}
		if c.TotalBytes() != want {
			t.Fatalf("op %d: cluster holds %d bytes, model %d", op, c.TotalBytes(), want)
		}
		for key := range model {
			ref, _ := array.ParseChunkRef(key)
			owner, ok := c.Owner(ref.Packed())
			if !ok {
				t.Fatalf("op %d: chunk %s lost", op, key)
			}
			node, _ := c.Node(owner)
			if _, resident := node.Chunk(ref); !resident {
				t.Fatalf("op %d: catalog places %s on %d but it is not there", op, key, owner)
			}
		}
	}
}

// TestMigrateValidation pins the error paths of the external migration
// entry point.
func TestMigrateValidation(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 3, 6, 23)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	ref := chunks[0].Ref()
	owner, _ := c.Owner(ref.Packed())
	other := partition.NodeID(1 - int(owner))
	// Wrong source node.
	if _, err := c.Migrate([]partition.Move{{Ref: ref, From: other, To: owner, Size: 1}}); err == nil {
		t.Error("wrong From should fail")
	}
	// Unknown chunk.
	bogus := array.ChunkRef{Array: "A", Coords: array.ChunkCoord{15, 15}}
	if _, err := c.Migrate([]partition.Move{{Ref: bogus, From: 0, To: 1, Size: 1}}); err == nil {
		t.Error("unknown chunk should fail")
	}
	// Empty plan is free.
	d, err := c.Migrate(nil)
	if err != nil || d != 0 {
		t.Errorf("empty plan: d=%v err=%v", d, err)
	}
	// A valid move works and is charged.
	d, err = c.Migrate([]partition.Move{{Ref: ref, From: owner, To: other, Size: chunks[0].SizeBytes()}})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("migration must take time")
	}
	if got, _ := c.Owner(ref.Packed()); got != other {
		t.Error("migration did not move the chunk")
	}
}
