package cluster_test

import (
	"testing"

	"repro/internal/array"
	"repro/internal/benchfixture"
	"repro/internal/cluster"
)

// These benchmarks run on the shared MODIS-shaped fixture so that
// `elasticbench -json` (which records BENCH_PR<N>.json) measures exactly
// the same workload; they track the chunk-identity hot path PR over PR.

func setupHotPath(b *testing.B) (*cluster.Cluster, []*array.Chunk) {
	b.Helper()
	c, chunks, err := benchfixture.ClusterAndChunks()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Insert(chunks); err != nil {
		b.Fatal(err)
	}
	return c, chunks
}

// BenchmarkOwnerLookup measures the placement hot path's core operation:
// mapping a resident chunk to its owning node, as the catalog, queries and
// validation do on every touch. Chunks carry their packed key, so this is
// a single map probe (the string-key baseline rebuilt "Band1:t/x/y" per
// lookup).
func BenchmarkOwnerLookup(b *testing.B) {
	c, chunks := setupHotPath(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Owner(chunks[i%len(chunks)].Key()); !ok {
			b.Fatal("chunk lost")
		}
	}
}

// BenchmarkOwnerLookupFromRef is the same lookup starting from a bare
// ChunkRef (no cached key), paying the array-name intern on every call —
// the partitioners' AddNodes path.
func BenchmarkOwnerLookupFromRef(b *testing.B) {
	c, chunks := setupHotPath(b)
	refs := make([]array.ChunkRef, len(chunks))
	for i, ch := range chunks {
		refs[i] = ch.Ref()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Owner(refs[i%len(refs)].Packed()); !ok {
			b.Fatal("chunk lost")
		}
	}
}

// BenchmarkInsertChunks measures end-to-end ingest of a slab of chunks,
// catalog updates included.
func BenchmarkInsertChunks(b *testing.B) {
	chunks := benchfixture.Chunks(benchfixture.NumChunks, benchfixture.CellsPerChunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := benchfixture.Cluster(4)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.Insert(chunks); err != nil {
			b.Fatal(err)
		}
	}
}
