package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/partition"
)

// referenceMigrate is the pre-plan serial semantics a rebalance must
// reproduce: apply the moves one at a time to a snapshot of the catalog
// and compute the Eq 7 receiver-parallel charge. The property tests diff
// the real cluster against it.
func referenceMigrate(c *Cluster, moves []partition.Move) (map[array.ChunkKey]partition.NodeID, Duration) {
	owners := make(map[array.ChunkKey]partition.NodeID)
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			owners[ch.Key()] = id
		}
	}
	recv := make(map[partition.NodeID]int64)
	var total int64
	for _, m := range moves {
		owners[m.Ref.Packed()] = m.To
		total += m.Size
		recv[m.To] += m.Size
	}
	if total == 0 {
		return owners, 0
	}
	var maxRecv int64
	for _, b := range recv {
		if b > maxRecv {
			maxRecv = b
		}
	}
	wire := total / int64(c.Cost().FabricWidth)
	if maxRecv > wire {
		wire = maxRecv
	}
	return owners, c.Cost().NetTime(wire)
}

// snapshotPayloads encodes every resident chunk so post-rebalance contents
// can be compared byte-for-byte against the pre-rebalance payloads.
func snapshotPayloads(t *testing.T, c *Cluster) map[array.ChunkKey][]byte {
	t.Helper()
	out := make(map[array.ChunkKey][]byte)
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			data, err := array.EncodeChunk(ch)
			if err != nil {
				t.Fatal(err)
			}
			out[ch.Key()] = data
		}
	}
	return out
}

// checkAgainstReference verifies the cluster's catalog, node contents and
// accounting match the reference outcome exactly.
func checkAgainstReference(t *testing.T, c *Cluster, owners map[array.ChunkKey]partition.NodeID, payloads map[array.ChunkKey][]byte) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, ch := range node.Chunks() {
			key := ch.Key()
			want, ok := owners[key]
			if !ok {
				t.Fatalf("chunk %s not in reference placement", ch.Ref())
			}
			if want != id {
				t.Errorf("chunk %s on node %d, reference says %d", ch.Ref(), id, want)
			}
			data, err := array.EncodeChunk(ch)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, payloads[key]) {
				t.Errorf("chunk %s payload changed in transit", ch.Ref())
			}
			seen++
		}
	}
	if seen != len(owners) {
		t.Errorf("stores hold %d chunks, reference has %d", seen, len(owners))
	}
}

// randomMoves builds a valid move set: a random subset of resident chunks,
// each to a random other node.
func randomMoves(c *Cluster, rng *rand.Rand, fraction float64) []partition.Move {
	nodes := c.Nodes()
	var moves []partition.Move
	for _, id := range nodes {
		node, _ := c.Node(id)
		for _, info := range node.ChunkInfos() {
			if rng.Float64() > fraction {
				continue
			}
			to := nodes[rng.Intn(len(nodes))]
			for to == id {
				to = nodes[rng.Intn(len(nodes))]
			}
			moves = append(moves, partition.Move{Ref: info.Ref, From: id, To: to, Size: info.Size})
		}
	}
	return moves
}

// TestMigrateMatchesSerialReference is the acceptance property: the
// batched, receiver-parallel Migrate must land exactly the catalog, node
// contents and duration of the serial per-chunk path, across randomized
// move sets.
func TestMigrateMatchesSerialReference(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 271))
		c := newTestCluster(t, 4, consistentFactory)
		if _, err := c.Insert(makeChunks(t, 60, 8, int64(trial)+500)); err != nil {
			t.Fatal(err)
		}
		moves := randomMoves(c, rng, 0.4)
		owners, wantD := referenceMigrate(c, moves)
		payloads := snapshotPayloads(t, c)
		d, err := c.Migrate(moves)
		if err != nil {
			t.Fatal(err)
		}
		if d != wantD {
			t.Errorf("trial %d: Migrate duration %v, serial reference %v", trial, d, wantD)
		}
		checkAgainstReference(t, c, owners, payloads)
	}
}

// TestPlanMigrateInspectThenExecute pins the split lifecycle: the plan's
// predicted receivers, wire bytes and duration must match what execution
// charges, and the placement matches the reference.
func TestPlanMigrateInspectThenExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := newTestCluster(t, 4, consistentFactory)
	if _, err := c.Insert(makeChunks(t, 50, 8, 600)); err != nil {
		t.Fatal(err)
	}
	moves := randomMoves(c, rng, 0.5)
	owners, wantD := referenceMigrate(c, moves)
	payloads := snapshotPayloads(t, c)
	plan, err := c.PlanMigrate(moves)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumMoves() != len(moves) {
		t.Fatalf("plan has %d moves, want %d", plan.NumMoves(), len(moves))
	}
	var perRecv, total int64
	chunks := 0
	for _, rb := range plan.Receivers() {
		perRecv += rb.Bytes
		chunks += rb.Chunks
		if rb.Bytes <= 0 || rb.Chunks <= 0 {
			t.Errorf("degenerate receiver batch %+v", rb)
		}
	}
	for _, m := range moves {
		total += m.Size
	}
	if perRecv != total || plan.Bytes() != total || chunks != len(moves) {
		t.Errorf("receiver batches sum to %d bytes / %d chunks, want %d / %d", perRecv, chunks, total, len(moves))
	}
	if got := plan.PredictedDuration(); got != wantD {
		t.Errorf("PredictedDuration %v, reference %v", got, wantD)
	}
	d, err := c.ExecuteRebalance(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d != wantD {
		t.Errorf("executed duration %v, predicted %v", d, wantD)
	}
	checkAgainstReference(t, c, owners, payloads)
}

// TestScaleOutPlanLifecycle drives PlanScaleOut → inspect → execute and
// checks the wrapper-equivalent outcome.
func TestScaleOutPlanLifecycle(t *testing.T) {
	c := newTestCluster(t, 2, kdFactory)
	if _, err := c.Insert(makeChunks(t, 60, 10, 700)); err != nil {
		t.Fatal(err)
	}
	before := c.TotalBytes()
	plan, err := c.PlanScaleOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Added()) != 2 || c.NumNodes() != 4 {
		t.Fatalf("scale-out plan added %v, cluster has %d nodes", plan.Added(), c.NumNodes())
	}
	if plan.NumMoves() == 0 || plan.Bytes() == 0 {
		t.Fatal("k-d tree scale-out should plan migrations")
	}
	// New nodes must be receivers in the plan (incremental scale-out).
	recvs := map[partition.NodeID]bool{}
	for _, rb := range plan.Receivers() {
		recvs[rb.Node] = true
	}
	for _, id := range plan.Added() {
		if !recvs[id] {
			t.Errorf("added node %d receives nothing", id)
		}
	}
	if plan.WireBytes() <= 0 {
		t.Error("predicted wire bytes should be positive")
	}
	want := plan.PredictedDuration()
	d, err := c.ExecuteRebalance(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d != want {
		t.Errorf("executed duration %v, predicted %v", d, want)
	}
	if c.TotalBytes() != before {
		t.Errorf("scale-out must conserve bytes: %d -> %d", before, c.TotalBytes())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestScaleOutWithReplicasPredictionExact: with a replicated array in
// play, the added nodes' predicted receive volume is batch + replica
// bytes keyed by node — a regression guard for the group-index/sort
// interaction — and PredictedDuration must equal the executed charge
// across several topologies.
func TestScaleOutWithReplicasPredictionExact(t *testing.T) {
	// Round robin is the non-incremental scheme: its scale-out ships to
	// preexisting nodes as well as the added ones, so the added nodes'
	// receiver groups land mid-list rather than last.
	rrFactory := func(initial []partition.NodeID) (partition.Partitioner, error) {
		return partition.NewRoundRobin(initial, partition.Geometry{Extents: []int64{16, 16}})
	}
	for _, factory := range []PartitionerFactory{consistentFactory, kdFactory, rrFactory} {
		for _, k := range []int{1, 2, 3} {
			c := newTestCluster(t, 2, factory)
			rs := array.MustSchema("Rep",
				[]array.Attribute{{Name: "v", Type: array.Int64}},
				[]array.Dimension{{Name: "i", Start: 0, End: 99, ChunkInterval: 100}})
			rep := array.NewChunk(rs, array.ChunkCoord{0})
			for i := int64(0); i < 64; i++ {
				rep.AppendCell(array.Coord{i}, []array.CellValue{{Int: i}})
			}
			if _, err := c.ReplicateArray(rs, []*array.Chunk{rep}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Insert(makeChunks(t, 50, 10, int64(k)*900)); err != nil {
				t.Fatal(err)
			}
			plan, err := c.PlanScaleOut(k)
			if err != nil {
				t.Fatal(err)
			}
			want := plan.PredictedDuration()
			got, err := c.ExecuteRebalance(plan)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("k=%d: executed %v, predicted %v", k, got, want)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPlanReceiverVolumesKeyedByNode pins buildRebalancePlan's predicted
// receiver volumes against a hand-computed expectation in the adversarial
// shape: an "added" node whose receiver group is first-seen before a
// bigger group that sorts ahead of it, with replicas in play — the case
// where consulting group indexes after the sort would read the wrong
// receiver's bytes.
func TestPlanReceiverVolumesKeyedByNode(t *testing.T) {
	c := newTestCluster(t, 4, consistentFactory)
	rs := array.MustSchema("Rep",
		[]array.Attribute{{Name: "v", Type: array.Int64}},
		[]array.Dimension{{Name: "i", Start: 0, End: 99, ChunkInterval: 100}})
	rep := array.NewChunk(rs, array.ChunkCoord{0})
	for i := int64(0); i < 32; i++ {
		rep.AppendCell(array.Coord{i}, []array.CellValue{{Int: i}})
	}
	if _, err := c.ReplicateArray(rs, []*array.Chunk{rep}); err != nil {
		t.Fatal(err)
	}
	perNode := rep.SizeBytes()
	chunks := makeChunks(t, 12, 10, 901)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	// First-seen receiver order [3, 1]; sorted order [1, 3]. Node 1 gets
	// the big batch, node 3 (treated as added, so it also pulls the
	// replica) gets one chunk.
	var moves []partition.Move
	pick := func(to partition.NodeID, n int) {
		for _, ch := range chunks {
			if n == 0 {
				return
			}
			from := mustOwner(t, c, ch.Key())
			if from == to {
				continue
			}
			already := false
			for _, m := range moves {
				if m.Ref.Packed() == ch.Key() {
					already = true
					break
				}
			}
			if already {
				continue
			}
			moves = append(moves, partition.Move{Ref: ch.Ref(), From: from, To: to, Size: ch.SizeBytes()})
			n--
		}
	}
	pick(3, 1)
	pick(1, 8)
	c.admin.Lock()
	plan, err := c.buildRebalancePlan(moves, []partition.NodeID{3})
	c.admin.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Discard()
	recv := map[partition.NodeID]int64{}
	for _, rb := range plan.Receivers() {
		recv[rb.Node] = rb.Bytes
	}
	recv[3] += perNode
	var want int64
	for _, b := range recv {
		if b > want {
			want = b
		}
	}
	if plan.repBytes != perNode {
		t.Errorf("repBytes = %d, want %d", plan.repBytes, perNode)
	}
	if plan.maxRecv != want {
		t.Errorf("maxRecv = %d, want %d (receiver volumes must be keyed by node, not group index)", plan.maxRecv, want)
	}
}

// TestRebalancePlanValidation pins the up-front validation errors.
func TestRebalancePlanValidation(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 4, 4, 800)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	ref := chunks[0].Ref()
	from, _ := c.Owner(chunks[0].Key())
	size := chunks[0].SizeBytes()
	other := partition.NodeID(0)
	if from == 0 {
		other = 1
	}
	// A grid slot none of the random chunks landed on.
	usedCC := map[string]bool{}
	for _, ch := range chunks {
		usedCC[ch.Coords.Key()] = true
	}
	var freeCC array.ChunkCoord
	for x := int64(0); x < 16 && freeCC == nil; x++ {
		for y := int64(0); y < 16; y++ {
			if cc := (array.ChunkCoord{x, y}); !usedCC[cc.Key()] {
				freeCC = cc
				break
			}
		}
	}
	cases := []struct {
		name  string
		moves []partition.Move
		want  string
	}{
		{"unknown chunk", []partition.Move{{Ref: array.ChunkRef{Array: "A", Coords: freeCC}, From: 0, To: 1}}, "unknown chunk"},
		{"wrong source", []partition.Move{{Ref: ref, From: other, To: from, Size: size}}, "catalog says"},
		{"unknown target", []partition.Move{{Ref: ref, From: from, To: 99, Size: size}}, "target node 99 unknown"},
		{"moved twice", []partition.Move{
			{Ref: ref, From: from, To: other, Size: size},
			{Ref: ref, From: from, To: other, Size: size},
		}, "moved twice"},
	}
	for _, tc := range cases {
		if _, err := c.PlanMigrate(tc.moves); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Validation failures must not leak pending plans.
	if err := c.Validate(); err != nil {
		t.Errorf("failed plans leaked pending state: %v", err)
	}
}

// TestValidateNamesOutstandingRebalancePlan: a leaked RebalancePlan must
// fail Validate loudly, by name, not as phantom catalog drift.
func TestValidateNamesOutstandingRebalancePlan(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	chunks := makeChunks(t, 6, 4, 810)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanMigrate(randomMoves(c, rand.New(rand.NewSource(1)), 1))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Validate()
	if err == nil || !strings.Contains(err.Error(), "rebalance plan(s) outstanding") {
		t.Fatalf("Validate with a held rebalance plan: %v", err)
	}
	plan.Discard()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Discard is terminal: the plan cannot then execute.
	if _, err := c.ExecuteRebalance(plan); err == nil {
		t.Error("executing a discarded plan must fail")
	}
}

// TestRebalanceStalesIngestPlanAndReleasesReservations: committing a
// rebalance must invalidate an outstanding ingest plan, and the rejection
// must release the reservations so the batch can be replanned.
func TestRebalanceStalesIngestPlanAndReleasesReservations(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	resident := makeChunks(t, 20, 8, 820)
	if _, err := c.Insert(resident); err != nil {
		t.Fatal(err)
	}
	batch := makeChunks(t, 10, 8, 821)
	// Chunk grids can collide between seeds; drop duplicates.
	taken := map[array.ChunkKey]bool{}
	for _, ch := range resident {
		taken[ch.Key()] = true
	}
	fresh := batch[:0]
	for _, ch := range batch {
		if !taken[ch.Key()] {
			fresh = append(fresh, ch)
		}
	}
	ingest, err := c.PlanInsert(fresh)
	if err != nil {
		t.Fatal(err)
	}
	moves := randomMoves(c, rand.New(rand.NewSource(2)), 0.5)
	// The rebalance plan must refuse to move the ingest plan's
	// reserved-but-unstored chunks.
	bad := append(append([]partition.Move(nil), moves...), partition.Move{
		Ref: fresh[0].Ref(), From: mustOwner(t, c, fresh[0].Key()), To: 0, Size: fresh[0].SizeBytes(),
	})
	if _, err := c.PlanMigrate(bad); err == nil || !strings.Contains(err.Error(), "reserved by an outstanding ingest plan") {
		t.Fatalf("moving a reserved chunk: %v", err)
	}
	if _, err := c.Migrate(moves); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecutePlan(ingest); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("pre-rebalance ingest plan should be stale: %v", err)
	}
	// Reservations released: the same batch replans and executes cleanly.
	if _, err := c.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func mustOwner(t *testing.T, c *Cluster, key array.ChunkKey) partition.NodeID {
	t.Helper()
	id, ok := c.Owner(key)
	if !ok {
		t.Fatalf("chunk %v not catalogued", key)
	}
	return id
}

// TestRebalancePlanStaledByScaleOut: the vice-versa direction — an epoch
// move between rebalance planning and execution rejects the plan and
// releases it.
func TestRebalancePlanStaledByScaleOut(t *testing.T) {
	c := newTestCluster(t, 2, consistentFactory)
	if _, err := c.Insert(makeChunks(t, 20, 8, 830)); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanMigrate(randomMoves(c, rand.New(rand.NewSource(3)), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleOut(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRebalance(plan); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("pre-scale-out rebalance plan should be stale: %v", err)
	}
	// The stale rejection released the plan; the cluster audits clean.
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceRollsBackOnStoreError: a store failure at any receiver must
// leave the cluster exactly as it was — catalog, stores, accounting.
func TestRebalanceRollsBackOnStoreError(t *testing.T) {
	c := newTestCluster(t, 3, consistentFactory)
	chunks := makeChunks(t, 30, 8, 840)
	if _, err := c.Insert(chunks); err != nil {
		t.Fatal(err)
	}
	moves := randomMoves(c, rand.New(rand.NewSource(4)), 0.6)
	if len(moves) < 2 {
		t.Fatal("need at least two moves for the fault injection")
	}
	victim := moves[len(moves)/2]
	dst, _ := c.Node(victim.To)
	fs := NewFaultStore(dst.store)
	fs.FailPuts(victim.Ref, -1) // permanent: retries must not mask it
	dst.store = fs
	ownersBefore, _ := referenceMigrate(c, nil) // snapshot of current placement
	payloads := snapshotPayloads(t, c)
	if _, err := c.Migrate(moves); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Migrate should surface the injected failure, got %v", err)
	}
	checkAgainstReference(t, c, ownersBefore, payloads)
}

// TestExecuteRebalanceConcurrentWithIngest races ExecuteRebalance against
// Insert traffic on disjoint chunk sets: the admin lock serialises them,
// -race must stay clean, and the final state must audit.
func TestExecuteRebalanceConcurrentWithIngest(t *testing.T) {
	c := newTestCluster(t, 4, consistentFactory)
	resident := makeChunks(t, 40, 8, 850)
	if _, err := c.Insert(resident[:20]); err != nil {
		t.Fatal(err)
	}
	taken := map[array.ChunkKey]bool{}
	for _, ch := range resident[:20] {
		taken[ch.Key()] = true
	}
	var lanes [2][]*array.Chunk
	for i, ch := range resident[20:] {
		if !taken[ch.Key()] {
			lanes[i%2] = append(lanes[i%2], ch)
		}
	}
	plan, err := c.PlanMigrate(randomMoves(c, rand.New(rand.NewSource(5)), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, lane := range lanes {
		wg.Add(1)
		go func(lane []*array.Chunk) {
			defer wg.Done()
			if _, err := c.Insert(lane); err != nil {
				t.Error(err)
			}
		}(lane)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.ExecuteRebalance(plan); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
