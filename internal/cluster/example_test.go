package cluster_test

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// ExampleCluster_PlanInsert walks the two-phase ingest lifecycle: plan a
// batch (validate, place, reserve), execute it (parallel per-destination
// writes), and discard a plan that is not going to run so its catalog
// reservations are released.
func ExampleCluster_PlanInsert() {
	schema := array.MustSchema("Grid",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 1 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(partition.KindRoundRobin, initial,
				partition.Geometry{Extents: []int64{4, 4}}, partition.Options{})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}

	// One chunk per grid slot of the first column, each holding one cell.
	var batch []*array.Chunk
	for y := int64(0); y < 4; y++ {
		ch := array.NewChunk(schema, array.ChunkCoord{0, y})
		ch.AppendCell(array.Coord{0, y * 4}, []array.CellValue{{Float: float64(y)}})
		batch = append(batch, ch)
	}

	// Phase 1: plan. All fallible work happens here; the chunks are now
	// reserved in the catalog and no concurrent batch can claim them.
	plan, err := c.PlanInsert(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d chunks to %d destinations\n", plan.NumChunks(), plan.NumDestinations())

	// Phase 2: execute. Writes fan out one goroutine per destination.
	if _, err := c.ExecutePlan(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d chunks on %d nodes\n", c.NumChunks(), c.NumNodes())

	// A plan that will not be executed must be discarded, or its
	// reservations would keep Validate reporting it as outstanding.
	ch := array.NewChunk(schema, array.ChunkCoord{1, 0})
	ch.AppendCell(array.Coord{4, 0}, []array.CellValue{{Float: 9}})
	stray, err := c.PlanInsert([]*array.Chunk{ch})
	if err != nil {
		log.Fatal(err)
	}
	stray.Discard()

	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog and stores agree")
	// Output:
	// planned 4 chunks to 2 destinations
	// stored 4 chunks on 2 nodes
	// catalog and stores agree
}
