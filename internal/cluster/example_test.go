package cluster_test

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
)

// ExampleCluster_PlanInsert walks the two-phase ingest lifecycle: plan a
// batch (validate, place, reserve), execute it (parallel per-destination
// writes), and discard a plan that is not going to run so its catalog
// reservations are released.
func ExampleCluster_PlanInsert() {
	schema := array.MustSchema("Grid",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 1 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(partition.KindRoundRobin, initial,
				partition.Geometry{Extents: []int64{4, 4}}, partition.Options{})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}

	// One chunk per grid slot of the first column, each holding one cell.
	var batch []*array.Chunk
	for y := int64(0); y < 4; y++ {
		ch := array.NewChunk(schema, array.ChunkCoord{0, y})
		ch.AppendCell(array.Coord{0, y * 4}, []array.CellValue{{Float: float64(y)}})
		batch = append(batch, ch)
	}

	// Phase 1: plan. All fallible work happens here; the chunks are now
	// reserved in the catalog and no concurrent batch can claim them.
	plan, err := c.PlanInsert(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d chunks to %d destinations\n", plan.NumChunks(), plan.NumDestinations())

	// Phase 2: execute. Writes fan out one goroutine per destination.
	if _, err := c.ExecutePlan(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d chunks on %d nodes\n", c.NumChunks(), c.NumNodes())

	// A plan that will not be executed must be discarded, or its
	// reservations would keep Validate reporting it as outstanding.
	ch := array.NewChunk(schema, array.ChunkCoord{1, 0})
	ch.AppendCell(array.Coord{4, 0}, []array.CellValue{{Float: 9}})
	stray, err := c.PlanInsert([]*array.Chunk{ch})
	if err != nil {
		log.Fatal(err)
	}
	stray.Discard()

	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog and stores agree")
	// Output:
	// planned 4 chunks to 2 destinations
	// stored 4 chunks on 2 nodes
	// catalog and stores agree
}

// ExampleCluster_PlanScaleOut walks the rebalance lifecycle: plan a
// scale-out (provision nodes, revise the placement table, validate and
// group the migration per receiver), inspect the predicted transfer —
// per-receiver batches, wire bytes, Eq 7 duration — and only then commit
// it, shipping each receiver's chunks as one batched codec round-trip.
func ExampleCluster_PlanScaleOut() {
	schema := array.MustSchema("Grid",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 1 << 20,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(partition.KindRoundRobin, initial,
				partition.Geometry{Extents: []int64{4, 4}}, partition.Options{})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}
	var batch []*array.Chunk
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			ch := array.NewChunk(schema, array.ChunkCoord{x, y})
			ch.AppendCell(array.Coord{x * 4, y * 4}, []array.CellValue{{Float: float64(x)}})
			batch = append(batch, ch)
		}
	}
	if _, err := c.Insert(batch); err != nil {
		log.Fatal(err)
	}

	// Phase 1: plan. The new nodes join and the table is revised here;
	// the data movement is validated, grouped per receiver, and priced —
	// but nothing has shipped yet.
	plan, err := c.PlanScaleOut(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d chunks to %d new nodes\n", plan.NumMoves(), len(plan.Added()))
	for _, rb := range plan.Receivers() {
		fmt.Printf("  node %d receives %d chunks (%d bytes) in one batch\n", rb.Node, rb.Chunks, rb.Bytes)
	}
	fmt.Printf("predicted wire volume: %d bytes\n", plan.WireBytes())

	// Phase 2: execute. Receivers ship in parallel, one batched codec
	// round-trip each; the charge equals the prediction.
	reorg, err := c.ExecuteRebalance(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reorg charge matches prediction: %v\n", reorg == plan.PredictedDuration())

	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalanced across %d nodes\n", c.NumNodes())
	// Output:
	// plan: 8 chunks to 2 new nodes
	//   node 2 receives 4 chunks (96 bytes) in one batch
	//   node 3 receives 4 chunks (96 bytes) in one batch
	// predicted wire volume: 96 bytes
	// reorg charge matches prediction: true
	// rebalanced across 4 nodes
}

// ExampleCluster_PlanRecover walks the failure lifecycle: replicate at
// R=2, fail a node, inspect the recovery plan — promotions of surviving
// secondaries, re-replication fills, anything unrecoverable — then commit
// it with the same ExecuteRebalance every other plan runs through, and
// finally readmit the repaired node.
func ExampleCluster_PlanRecover() {
	schema := array.MustSchema("Grid",
		[]array.Attribute{{Name: "v", Type: array.Float64}},
		[]array.Dimension{
			{Name: "x", Start: 0, End: 15, ChunkInterval: 4},
			{Name: "y", Start: 0, End: 15, ChunkInterval: 4},
		})
	c, err := cluster.New(cluster.Config{
		InitialNodes:      3,
		NodeCapacity:      1 << 20,
		ReplicationFactor: 2, // every chunk lives on two distinct nodes
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.New(partition.KindRoundRobin, initial,
				partition.Geometry{Extents: []int64{4, 4}}, partition.Options{})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}
	var batch []*array.Chunk
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			ch := array.NewChunk(schema, array.ChunkCoord{x, y})
			ch.AppendCell(array.Coord{x * 4, y * 4}, []array.CellValue{{Float: float64(x)}})
			batch = append(batch, ch)
		}
	}
	if _, err := c.Insert(batch); err != nil {
		log.Fatal(err)
	}

	// A node dies. Planning routes around it and queries fail over to the
	// surviving replicas, but redundancy is lost until recovery runs.
	victim := partition.NodeID(1)
	lostPrimaries := len(c.NodeChunks(victim))
	if err := c.FailNode(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d down holding %d primaries; degraded: %v\n", victim, lostPrimaries, c.Degraded())

	// Phase 1: plan. Every chunk the dead node owned is promoted onto a
	// surviving secondary, and every chunk left short of copies gets a
	// re-replication fill — all inspectable before anything ships.
	plan, err := c.PlanRecover(victim)
	if err != nil {
		log.Fatal(err)
	}
	// (Exact recovery counts depend on where the rendezvous hash placed
	// the secondaries, so the example asserts the invariants instead.)
	fmt.Printf("plan covers every lost primary: %v; unrecoverable: %d; fills priced: %v\n",
		plan.NumRecoveries() >= lostPrimaries, len(plan.Unrecoverable()), plan.WireBytes() > 0)

	// Phase 2: execute — atomically, with per-transfer retry.
	if _, err := c.ExecuteRebalance(plan); err != nil {
		log.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("redundancy restored, catalog clean")

	// The repaired node rejoins empty-handed and picks up new placements.
	if _, err := c.RecoverNode(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d healthy again; degraded: %v\n", victim, c.Degraded())
	// Output:
	// node 1 down holding 5 primaries; degraded: true
	// plan covers every lost primary: true; unrecoverable: 0; fills priced: true
	// redundancy restored, catalog clean
	// node 1 healthy again; degraded: false
}
