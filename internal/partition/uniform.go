package partition

import (
	"fmt"

	"repro/internal/array"
)

// DefaultUniformHeight is the tree height h (l = 2^h leaves) used by the
// Uniform Range partitioner when the caller does not override it. 2^8 =
// 256 leaves is "much greater than the anticipated cluster size" for the
// paper's 8-node testbed while keeping lookup cheap.
const DefaultUniformHeight = 8

// uNode is a node of the uniform range tree.
type uNode struct {
	box         Box
	dim         int
	at          int64
	left, right *uNode
	leafIndex   int // valid for leaves (left == nil)
}

// UniformRange is the paper's global n-dimensional range scheme: a tall,
// balanced binary tree slices the grid into l = 2^h leaves; node i of an
// n-node cluster owns the i-th block of l/n leaves in traversal order.
// This keeps arrays clustered in dimension space with near-perfect logical
// balance for any n — but every scale-out recomputes the blocks, cascading
// moves across most of the cluster, and the leaf blocks ignore physical
// sizes entirely (not skew-aware).
type UniformRange struct {
	geom   Geometry
	root   *uNode
	leaves []*uNode // traversal order
	nodes  []NodeID
}

// NewUniformRange builds the tree of height `height` (0 means
// DefaultUniformHeight). Dimensions too narrow to halve stop splitting
// early, so the leaf count may be less than 2^height on tiny grids.
func NewUniformRange(initial []NodeID, geom Geometry, height int) (*UniformRange, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("partition: UniformRange needs at least one initial node")
	}
	if height <= 0 {
		height = DefaultUniformHeight
	}
	p := &UniformRange{geom: geom, nodes: append([]NodeID(nil), initial...)}
	p.root = p.build(RootBox(geom), 0, height)
	p.index(p.root)
	if len(p.leaves) < len(initial) {
		return nil, fmt.Errorf("partition: %d leaves cannot cover %d nodes; increase height or grid", len(p.leaves), len(initial))
	}
	return p, nil
}

// build recursively halves the box, cycling dimensions by depth and
// skipping unsplittable ones.
func (p *UniformRange) build(box Box, depth, height int) *uNode {
	n := &uNode{box: box}
	if depth >= height {
		return n
	}
	spatial := p.geom.spatialDims()
	dim := -1
	for k := 0; k < len(spatial); k++ {
		d := spatial[(depth+k)%len(spatial)]
		if box.Splittable(d) {
			dim = d
			break
		}
	}
	if dim < 0 {
		return n // spatial slots exhausted; leave growth axes intact
	}
	mid := box.Lo[dim] + box.Span(dim)/2
	lower, upper := box.SplitAt(dim, mid)
	n.dim = dim
	n.at = mid
	n.left = p.build(lower, depth+1, height)
	n.right = p.build(upper, depth+1, height)
	return n
}

// index assigns traversal-order leaf indexes.
func (p *UniformRange) index(n *uNode) {
	if n.left == nil {
		n.leafIndex = len(p.leaves)
		p.leaves = append(p.leaves, n)
		return
	}
	p.index(n.left)
	p.index(n.right)
}

// Name implements Partitioner.
func (p *UniformRange) Name() string { return "Uniform Range" }

// Features implements Partitioner: n-dimensional clustering only.
func (p *UniformRange) Features() Features {
	return Features{NDimensionalClustering: true}
}

// leafOf walks the tree to the leaf containing the coordinate.
func (p *UniformRange) leafOf(cc array.ChunkCoord) *uNode {
	n := p.root
	for n.left != nil {
		if cc[n.dim] < n.at {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// ownerOfLeaf maps a leaf index to its block's node: node i owns leaves
// [i*l/n, (i+1)*l/n).
func (p *UniformRange) ownerOfLeaf(leafIndex int) NodeID {
	l := len(p.leaves)
	n := len(p.nodes)
	return p.nodes[leafIndex*n/l]
}

// PlaceBatch implements Placer: one tree descent per chunk with the clamp
// buffer hoisted out of the loop; the leaf blocks do not change within a
// batch.
func (p *UniformRange) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	var ccBuf array.ChunkCoord
	for i, info := range infos {
		ccBuf = p.geom.ClampInto(info.Ref.Coords, ccBuf)
		out[i] = Assignment{Info: info, Node: p.ownerOfLeaf(p.leafOf(ccBuf).leafIndex)}
	}
	return out, nil
}

// AddNodes implements Partitioner: append the nodes, recompute every
// leaf's block — a linear pass over the l leaves, exactly the paper's
// description — and emit the (global) difference as moves.
func (p *UniformRange) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	p.nodes = append(p.nodes, newNodes...)
	var moves []Move
	for _, info := range allChunks(st) {
		leaf := p.leafOf(p.geom.Clamp(info.Ref.Coords))
		want := p.ownerOfLeaf(leaf.leafIndex)
		cur, _ := st.Owner(info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}

// NumLeaves reports l, for tests.
func (p *UniformRange) NumLeaves() int { return len(p.leaves) }
