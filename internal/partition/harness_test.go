package partition

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/array"
	"repro/internal/stats"
)

// fakeState is a miniature cluster catalog implementing State, used to
// exercise partitioners without the full cluster machinery.
type fakeState struct {
	nodes  []NodeID
	chunks map[array.ChunkKey]array.ChunkInfo
	owner  map[array.ChunkKey]NodeID
}

func newFakeState(nodes ...NodeID) *fakeState {
	return &fakeState{
		nodes:  append([]NodeID(nil), nodes...),
		chunks: make(map[array.ChunkKey]array.ChunkInfo),
		owner:  make(map[array.ChunkKey]NodeID),
	}
}

func (s *fakeState) Nodes() []NodeID {
	out := append([]NodeID(nil), s.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *fakeState) NodeLoad(n NodeID) int64 {
	var total int64
	for key, owner := range s.owner {
		if owner == n {
			total += s.chunks[key].Size
		}
	}
	return total
}

func (s *fakeState) NodeChunks(n NodeID) []array.ChunkInfo {
	var out []array.ChunkInfo
	for key, owner := range s.owner {
		if owner == n {
			out = append(out, s.chunks[key])
		}
	}
	array.SortChunkInfos(out)
	return out
}

func (s *fakeState) Owner(key array.ChunkKey) (NodeID, bool) {
	n, ok := s.owner[key]
	return n, ok
}

// placeOne runs a single chunk through the batch contract, asserting the
// one-in/one-out shape.
func placeOne(t testing.TB, p Placer, info array.ChunkInfo, st State) NodeID {
	t.Helper()
	asgn, err := p.PlaceBatch([]array.ChunkInfo{info}, st)
	if err != nil {
		t.Fatalf("PlaceBatch(%s): %v", info.Ref, err)
	}
	if len(asgn) != 1 || asgn[0].Info.Ref.Key() != info.Ref.Key() {
		t.Fatalf("PlaceBatch(%s) returned %d assignments %v", info.Ref, len(asgn), asgn)
	}
	return asgn[0].Node
}

// ingest places the chunk via the partitioner and records the placement.
func (s *fakeState) ingest(t testing.TB, p Partitioner, info array.ChunkInfo) NodeID {
	t.Helper()
	n := placeOne(t, p, info, s)
	if !s.hasNode(n) {
		t.Fatalf("%s placed %s on unknown node %d", p.Name(), info.Ref, n)
	}
	s.chunks[info.Ref.Packed()] = info
	s.owner[info.Ref.Packed()] = n
	return n
}

func (s *fakeState) hasNode(n NodeID) bool {
	for _, m := range s.nodes {
		if m == n {
			return true
		}
	}
	return false
}

// scaleOut adds nodes via the partitioner, validates the plan against the
// catalog, and applies it.
func (s *fakeState) scaleOut(t testing.TB, p Partitioner, newNodes ...NodeID) []Move {
	t.Helper()
	moves, err := p.AddNodes(newNodes, s)
	if err != nil {
		t.Fatalf("%s.AddNodes(%v): %v", p.Name(), newNodes, err)
	}
	s.nodes = append(s.nodes, newNodes...)
	seen := make(map[array.ChunkKey]bool)
	for _, m := range moves {
		key := m.Ref.Packed()
		if seen[key] {
			t.Fatalf("%s plan moves chunk %s twice", p.Name(), m.Ref)
		}
		seen[key] = true
		cur, ok := s.owner[key]
		if !ok {
			t.Fatalf("%s plan moves unknown chunk %s", p.Name(), m.Ref)
		}
		if cur != m.From {
			t.Fatalf("%s plan says %s is on %d, catalog says %d", p.Name(), m.Ref, m.From, cur)
		}
		if m.From == m.To {
			t.Fatalf("%s plan moves %s to its own node", p.Name(), m.Ref)
		}
		if !s.hasNode(m.To) {
			t.Fatalf("%s plan targets unknown node %d", p.Name(), m.To)
		}
		if m.Size != s.chunks[m.Ref.Packed()].Size {
			t.Fatalf("%s plan mis-sizes %s", p.Name(), m.Ref)
		}
		s.owner[key] = m.To
	}
	return moves
}

// loads returns the byte load per node, indexed by node order.
func (s *fakeState) loads() []float64 {
	out := make([]float64, 0, len(s.nodes))
	for _, n := range s.Nodes() {
		out = append(out, float64(s.NodeLoad(n)))
	}
	return out
}

// grid16 is the default test geometry: a 16×16 chunk grid.
func grid16() Geometry { return Geometry{Extents: []int64{16, 16}} }

// chunkAt builds a ChunkInfo at grid position (x, y) with the given size.
func chunkAt(x, y int64, size int64) array.ChunkInfo {
	return array.ChunkInfo{
		Ref:  array.ChunkRef{Array: "A", Coords: array.ChunkCoord{x, y}},
		Size: size,
	}
}

// uniformChunks yields n chunks scattered uniformly over the grid with
// equal sizes.
func uniformChunks(n int, size int64, seed int64) []array.ChunkInfo {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[array.ChunkKey]bool)
	var out []array.ChunkInfo
	for len(out) < n {
		x, y := rng.Int63n(16), rng.Int63n(16)
		info := chunkAt(x, y, size)
		if used[info.Ref.Packed()] {
			continue
		}
		used[info.Ref.Packed()] = true
		out = append(out, info)
	}
	return out
}

// skewedChunks yields one chunk per grid cell with Zipf-skewed sizes
// concentrated near a hot corner, mimicking the AIS port skew.
func skewedChunks(seed int64) []array.ChunkInfo {
	rng := rand.New(rand.NewSource(seed))
	var out []array.ChunkInfo
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			// Distance from the hot corner controls the rank.
			rank := int(x + y)
			size := int64(float64(1<<20) / float64((rank+1)*(rank+1)))
			size += rng.Int63n(1024)
			out = append(out, chunkAt(x, y, size))
		}
	}
	return out
}

// build constructs a scheme for tests, with Append capacity sized so a few
// spills happen.
func build(t *testing.T, kind string, initial []NodeID) Partitioner {
	t.Helper()
	p, err := New(kind, initial, grid16(), Options{NodeCapacity: 4 << 20, UniformHeight: 6})
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return p
}

func fmtLoads(loads []float64) string {
	return fmt.Sprintf("%v (rsd %.2f)", loads, stats.RSD(loads))
}
