package partition

import (
	"testing"

	"repro/internal/array"
)

// BenchmarkPlaceBatch measures steady-state batch placement per scheme:
// one 200-chunk batch per iteration, the ingest pipeline's unit of work.
func BenchmarkPlaceBatch(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(kind, func(b *testing.B) {
			p, err := New(kind, []NodeID{0, 1, 2, 3}, grid16(), Options{NodeCapacity: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			st := newFakeState(0, 1, 2, 3)
			infos := uniformChunks(200, 1<<12, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.PlaceBatch(infos, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAddNodes measures an end-to-end scale-out planning round per
// scheme: build the table, ingest 256 skewed chunks, plan a two-node
// expansion. Setup is included in the measurement (StopTimer around
// per-iteration setup would let b.N explode for the schemes whose plans
// are near-free, like Append).
func BenchmarkAddNodes(b *testing.B) {
	chunks := skewedChunks(7)
	for _, kind := range Kinds() {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := New(kind, []NodeID{0, 1}, grid16(), Options{NodeCapacity: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				st := newFakeState(0, 1)
				for _, info := range chunks {
					st.ingest(b, p, info)
				}
				if _, err := p.AddNodes([]NodeID{2, 3}, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashRef(b *testing.B) {
	key := array.ChunkRef{Array: "Band1", Coords: array.ChunkCoord{3, 17, 250}}.Packed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = hashRef(key)
	}
}
