package partition

import (
	"repro/internal/array"
	"repro/internal/ring"
)

// DefaultVirtualNodes is the per-node replica count the Consistent Hash
// partitioner places on its ring when the caller does not override it.
const DefaultVirtualNodes = 128

// ConsistentHash distributes chunks around a Karger hash circle ([24] in
// the paper). Chunk counts per node come out approximately equal for any
// cluster size, lookups are O(log v), and a scale-out moves chunks only
// from a few predecessors to the new node. It is not skew-aware — chunk
// positions ignore physical size — and it destroys spatial locality.
type ConsistentHash struct {
	r *ring.Ring
}

// NewConsistentHash builds the partitioner with the given virtual-node
// count (0 means DefaultVirtualNodes).
func NewConsistentHash(initial []NodeID, virtualNodes int) *ConsistentHash {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := ring.MustNew(virtualNodes)
	for _, n := range initial {
		if err := r.Add(int(n)); err != nil {
			panic(err) // initial IDs are caller-controlled and unique
		}
	}
	return &ConsistentHash{r: r}
}

// Name implements Partitioner.
func (p *ConsistentHash) Name() string { return "Cons. Hash" }

// Features implements Partitioner: incremental and fine-grained.
func (p *ConsistentHash) Features() Features {
	return Features{IncrementalScaleOut: true, FineGrained: true}
}

// placeOne maps a chunk to the first node clockwise from its hashed grid
// position (position-keyed, so congruent arrays collocate equal chunk
// coordinates — see hashCoord).
func (p *ConsistentHash) placeOne(info array.ChunkInfo) NodeID {
	return NodeID(p.r.OwnerHash(hashCoord(info.Ref.Coords.Packed())))
}

// PlaceBatch implements Placer: one ring lookup per chunk; the ring does
// not change within a batch, so decisions are independent.
func (p *ConsistentHash) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	for i, info := range infos {
		out[i] = Assignment{Info: info, Node: p.placeOne(info)}
	}
	return out, nil
}

// AddNodes implements Partitioner. New nodes hash themselves onto the
// circle; every chunk whose owner changed moves — necessarily to a new
// node, which is the consistent-hashing guarantee the tests pin down.
func (p *ConsistentHash) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	for _, n := range newNodes {
		if err := p.r.Add(int(n)); err != nil {
			return nil, err
		}
	}
	var moves []Move
	for _, info := range allChunks(st) {
		want := NodeID(p.r.OwnerHash(hashCoord(info.Ref.Coords.Packed())))
		cur, _ := st.Owner(info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}
