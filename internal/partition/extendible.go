package partition

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/array"
)

// bucket is one entry of the extendible-hash directory: it owns every chunk
// whose hash's low `depth` bits equal `pattern`.
type bucket struct {
	pattern uint64
	depth   uint
	node    NodeID
}

func (b bucket) matches(h uint64) bool {
	mask := (uint64(1) << b.depth) - 1
	return h&mask == b.pattern
}

// ExtendibleHash adapts Fagin et al.'s extendible hashing ([19] in the
// paper) to elastic placement. The hash space is divided into buckets by
// trailing hash bits, one or more buckets per node. When the cluster scales
// out, the scheme splits a bucket of the most heavily burdened node by one
// more bit and hands the upper half to a new node — skew-aware because the
// split victim is chosen by physical storage, incremental because data
// leaves only the split node.
type ExtendibleHash struct {
	buckets []bucket
}

// NewExtendibleHash builds the directory over the initial nodes: the hash
// space is cut into the smallest power-of-two number of buckets covering
// the node count, assigned to nodes in pattern order (so some nodes own two
// buckets when the count is not a power of two).
func NewExtendibleHash(initial []NodeID) *ExtendibleHash {
	n := len(initial)
	if n == 0 {
		panic("partition: ExtendibleHash needs at least one initial node")
	}
	depth := uint(bits.Len(uint(n - 1))) // ceil(log2 n), 0 for n=1
	total := 1 << depth
	p := &ExtendibleHash{}
	for i := 0; i < total; i++ {
		p.buckets = append(p.buckets, bucket{
			pattern: uint64(i),
			depth:   depth,
			node:    initial[i%n],
		})
	}
	return p
}

// Name implements Partitioner.
func (p *ExtendibleHash) Name() string { return "Extend. Hash" }

// Features implements Partitioner: incremental, fine-grained, skew-aware.
func (p *ExtendibleHash) Features() Features {
	return Features{IncrementalScaleOut: true, FineGrained: true, SkewAware: true}
}

// PlaceBatch implements Placer: a directory lookup on each chunk hash's
// trailing bits. The directory does not change within a batch.
func (p *ExtendibleHash) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	for i, info := range infos {
		out[i] = Assignment{Info: info, Node: p.owner(hashRef(info.Ref.Packed()))}
	}
	return out, nil
}

func (p *ExtendibleHash) owner(h uint64) NodeID {
	for _, b := range p.buckets {
		if b.matches(h) {
			return b.node
		}
	}
	panic("partition: extendible hash directory does not cover hash space")
}

// AddNodes implements Partitioner. For each new node in turn: find the most
// heavily burdened node, split its largest bucket by one more trailing bit
// and reassign the upper half (pattern | 1<<depth) to the new node. Loads
// are tracked against the evolving plan so several nodes added at once
// split several victims.
func (p *ExtendibleHash) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	// Planned load per node and bucket residence of every chunk under
	// the evolving directory.
	load := make(map[NodeID]int64)
	home := make(map[array.ChunkKey]NodeID)
	chunks := allChunks(st)
	keys := make([]array.ChunkKey, len(chunks))
	hashes := make([]uint64, len(chunks))
	for i, info := range chunks {
		keys[i] = info.Ref.Packed()
		hashes[i] = hashRef(keys[i])
		n := p.owner(hashes[i])
		load[n] += info.Size
		home[keys[i]] = n
	}
	for _, n := range st.Nodes() {
		if _, ok := load[n]; !ok {
			load[n] = 0
		}
	}
	for _, newNode := range newNodes {
		victim := maxLoadNode(load)
		bi, err := p.largestBucketOf(victim, chunks, hashes)
		if err != nil {
			return nil, err
		}
		b := p.buckets[bi]
		if b.depth >= 62 {
			return nil, fmt.Errorf("partition: extendible hash bucket depth exhausted")
		}
		lower := bucket{pattern: b.pattern, depth: b.depth + 1, node: victim}
		upper := bucket{pattern: b.pattern | 1<<b.depth, depth: b.depth + 1, node: newNode}
		p.buckets[bi] = lower
		p.buckets = append(p.buckets, upper)
		// Re-home the chunks that fell into the upper half.
		for i, info := range chunks {
			if upper.matches(hashes[i]) {
				load[victim] -= info.Size
				load[newNode] += info.Size
				home[keys[i]] = newNode
			}
		}
		if _, ok := load[newNode]; !ok {
			load[newNode] = 0
		}
	}
	var moves []Move
	for i, info := range chunks {
		want := home[keys[i]]
		cur, _ := st.Owner(keys[i])
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}

// largestBucketOf returns the index of the victim node's bucket holding
// the most bytes (ties: shallowest depth, then lowest pattern — splitting
// broad buckets first keeps the directory shallow).
func (p *ExtendibleHash) largestBucketOf(victim NodeID, chunks []array.ChunkInfo, hashes []uint64) (int, error) {
	type cand struct {
		idx  int
		size int64
	}
	var cands []cand
	for i, b := range p.buckets {
		if b.node != victim {
			continue
		}
		var size int64
		for j := range chunks {
			if b.matches(hashes[j]) {
				size += chunks[j].Size
			}
		}
		cands = append(cands, cand{idx: i, size: size})
	}
	if len(cands) == 0 {
		return 0, fmt.Errorf("partition: node %d owns no extendible hash bucket", victim)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.size != b.size {
			return a.size > b.size
		}
		ba, bb := p.buckets[a.idx], p.buckets[b.idx]
		if ba.depth != bb.depth {
			return ba.depth < bb.depth
		}
		return ba.pattern < bb.pattern
	})
	return cands[0].idx, nil
}

func maxLoadNode(load map[NodeID]int64) NodeID {
	return nodesByLoadDesc(load)[0]
}

// nodesByLoadDesc orders nodes by descending load, ties by ascending ID —
// the candidate order the splitting schemes walk when the most burdened
// node's region turns out to be indivisible.
func nodesByLoadDesc(load map[NodeID]int64) []NodeID {
	ids := make([]NodeID, 0, len(load))
	for n := range load {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool {
		if load[ids[i]] != load[ids[j]] {
			return load[ids[i]] > load[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
