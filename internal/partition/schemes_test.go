package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/stats"
)

func TestAppendFillsAndSpills(t *testing.T) {
	p := NewAppend([]NodeID{0, 1}, 100)
	st := newFakeState(0, 1)
	// Three 40-byte chunks fill node 0 past capacity on the third; the
	// fourth spills to node 1.
	for i := int64(0); i < 3; i++ {
		if n := st.ingest(t, p, chunkAt(i, 0, 40)); n != 0 {
			t.Fatalf("chunk %d placed on %d, want 0", i, n)
		}
	}
	if n := st.ingest(t, p, chunkAt(3, 0, 40)); n != 1 {
		t.Fatalf("spill chunk placed on %d, want 1", n)
	}
}

func TestAppendScaleOutIsFree(t *testing.T) {
	p := NewAppend([]NodeID{0, 1}, 1<<20)
	st := newFakeState(0, 1)
	for _, info := range uniformChunks(50, 1<<15, 1) {
		st.ingest(t, p, info)
	}
	moves := st.scaleOut(t, p, 2, 3)
	if len(moves) != 0 {
		t.Fatalf("append must not move data at scale-out, moved %d", len(moves))
	}
}

func TestAppendOverflowGoesToLastNode(t *testing.T) {
	p := NewAppend([]NodeID{0}, 10)
	st := newFakeState(0)
	for i := int64(0); i < 5; i++ {
		if n := st.ingest(t, p, chunkAt(i, 0, 10)); n != 0 {
			t.Fatalf("single-node overflow must stay on node 0, got %d", n)
		}
	}
}

func TestAppendUsesNewNodesAfterScaleOut(t *testing.T) {
	p := NewAppend([]NodeID{0}, 100)
	st := newFakeState(0)
	st.ingest(t, p, chunkAt(0, 0, 120)) // node 0 full
	st.scaleOut(t, p, 1)
	if n := st.ingest(t, p, chunkAt(1, 0, 10)); n != 1 {
		t.Fatalf("post-scale-out insert went to %d, want the new node 1", n)
	}
}

// TestAppendFillResyncsAtScaleOut: placement decisions whose chunks never
// landed (a discarded or invalidated ingest plan) advance the fill table;
// AddNodes must resynchronise against observed storage so the phantom
// bytes do not permanently skip a node with real free capacity.
func TestAppendFillResyncsAtScaleOut(t *testing.T) {
	p := NewAppend([]NodeID{0}, 100)
	st := newFakeState(0)
	st.ingest(t, p, chunkAt(0, 0, 60)) // stored: node 0 at 60/100
	// A planned-but-discarded batch: placed, never recorded in st.
	if _, err := p.PlaceBatch([]array.ChunkInfo{chunkAt(1, 0, 80)}, st); err != nil {
		t.Fatal(err)
	}
	st.scaleOut(t, p, 1)
	// Without the resync the phantom 80 bytes put node 0 at 140 ≥ 100 and
	// this chunk would spill to node 1 despite 40 free bytes on node 0.
	if n := st.ingest(t, p, chunkAt(2, 0, 30)); n != 0 {
		t.Fatalf("post-resync chunk placed on %d, want node 0 (60+30 < 100)", n)
	}
}

func TestRoundRobinEqualCounts(t *testing.T) {
	p, err := NewRoundRobin([]NodeID{0, 1, 2, 4}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	st := newFakeState(0, 1, 2, 4)
	// One chunk in every grid slot: 256 positions over 4 nodes.
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			st.ingest(t, p, chunkAt(x, y, 1<<10))
		}
	}
	for _, n := range st.Nodes() {
		if got := len(st.NodeChunks(n)); got != 64 {
			t.Errorf("node %d holds %d chunks, want 64", n, got)
		}
	}
}

func TestRoundRobinCollocatesCongruentArrays(t *testing.T) {
	p, err := NewRoundRobin([]NodeID{0, 1, 2}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	st := newFakeState(0, 1, 2)
	a := array.ChunkInfo{Ref: array.ChunkRef{Array: "Band1", Coords: array.ChunkCoord{3, 7}}, Size: 100}
	b := array.ChunkInfo{Ref: array.ChunkRef{Array: "Band2", Coords: array.ChunkCoord{3, 7}}, Size: 100}
	if st.ingest(t, p, a) != st.ingest(t, p, b) {
		t.Error("equal positions of congruent arrays must collocate")
	}
}

func TestRoundRobinRebalancesGlobally(t *testing.T) {
	p, err := NewRoundRobin([]NodeID{0, 1}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	st := newFakeState(0, 1)
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			st.ingest(t, p, chunkAt(x, y, 1<<10))
		}
	}
	st.scaleOut(t, p, 2, 3)
	// After rebalance all four nodes hold 64 chunks each.
	for _, n := range st.Nodes() {
		if got := len(st.NodeChunks(n)); got != 64 {
			t.Errorf("node %d holds %d chunks, want 64", n, got)
		}
	}
}

func TestConsistentHashCollocatesCongruentArrays(t *testing.T) {
	p := NewConsistentHash([]NodeID{0, 1, 2}, 0)
	st := newFakeState(0, 1, 2)
	a := array.ChunkInfo{Ref: array.ChunkRef{Array: "Band1", Coords: array.ChunkCoord{5, 2}}, Size: 100}
	b := array.ChunkInfo{Ref: array.ChunkRef{Array: "Band2", Coords: array.ChunkCoord{5, 2}}, Size: 100}
	if st.ingest(t, p, a) != st.ingest(t, p, b) {
		t.Error("equal positions of congruent arrays must collocate")
	}
}

func TestConsistentHashBalance(t *testing.T) {
	p := NewConsistentHash([]NodeID{0, 1, 2, 3}, 0)
	st := newFakeState(0, 1, 2, 3)
	for _, info := range uniformChunks(240, 1<<10, 6) {
		st.ingest(t, p, info)
	}
	loads := st.loads()
	if rsd := stats.RSD(loads); rsd > 0.5 {
		t.Errorf("consistent hash RSD %.2f too high: %s", rsd, fmtLoads(loads))
	}
}

func TestExtendibleHashSplitsMostLoaded(t *testing.T) {
	p := NewExtendibleHash([]NodeID{0, 1})
	st := newFakeState(0, 1)
	for _, info := range skewedChunks(21) {
		st.ingest(t, p, info)
	}
	before := st.loads()
	maxBefore := math.Max(before[0], before[1])
	moves := st.scaleOut(t, p, 2)
	if len(moves) == 0 {
		t.Fatal("split should move data")
	}
	// All moves must originate from a single victim (the most loaded).
	src := moves[0].From
	for _, m := range moves {
		if m.From != src {
			t.Fatalf("moves from multiple sources %d and %d on a single split", src, m.From)
		}
	}
	if float64(st.NodeLoad(src)) >= maxBefore {
		t.Error("split must reduce the victim's load")
	}
}

func TestExtendibleHashDirectoryCoversSpace(t *testing.T) {
	// After several uneven splits, every hash value must still map to
	// exactly one bucket.
	p := NewExtendibleHash([]NodeID{0, 1, 2}) // non power of two
	st := newFakeState(0, 1, 2)
	for _, info := range skewedChunks(23) {
		st.ingest(t, p, info)
	}
	st.scaleOut(t, p, 3)
	st.scaleOut(t, p, 4, 5)
	f := func(h uint64) bool {
		matches := 0
		for _, b := range p.buckets {
			if b.matches(h) {
				matches++
			}
		}
		return matches == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertSegmentsPartitionRankSpace(t *testing.T) {
	p, err := NewHilbertCurve([]NodeID{0, 1, 2}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	if p.bounds[0] != 0 {
		t.Error("rank space must start at 0")
	}
	for i := 1; i < len(p.bounds); i++ {
		if p.bounds[i] < p.bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", p.bounds)
		}
	}
	if p.bounds[len(p.bounds)-1] != p.total {
		t.Errorf("rank space must end at the composite total")
	}
}

func TestHilbertSpatialCoherence(t *testing.T) {
	// Chunks on the same node should be spatially closer to each other
	// than to chunks on other nodes — the clustering property the
	// science benchmarks exploit.
	p := build(t, KindHilbert, []NodeID{0, 1})
	st := newFakeState(0, 1)
	for _, info := range uniformChunks(200, 1<<12, 31) {
		st.ingest(t, p, info)
	}
	st.scaleOut(t, p, 2, 3)
	intra, inter := meanPairDistances(st)
	if intra >= inter {
		t.Errorf("hilbert intra-node distance %.2f should beat inter-node %.2f", intra, inter)
	}
	// Contrast: consistent hash scatters, so intra ≈ inter.
	p2 := build(t, KindConsistent, []NodeID{0, 1})
	st2 := newFakeState(0, 1)
	for _, info := range uniformChunks(200, 1<<12, 31) {
		st2.ingest(t, p2, info)
	}
	st2.scaleOut(t, p2, 2, 3)
	intra2, inter2 := meanPairDistances(st2)
	if intra2 < inter2*0.8 {
		t.Errorf("consistent hash should not cluster: intra %.2f inter %.2f", intra2, inter2)
	}
}

func meanPairDistances(st *fakeState) (intra, inter float64) {
	var intraSum, interSum float64
	var intraN, interN int
	keys := make([]array.ChunkKey, 0, len(st.owner))
	for k := range st.owner {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		ri := keys[i].Ref()
		for j := i + 1; j < len(keys); j++ {
			rj := keys[j].Ref()
			var d float64
			for k := range ri.Coords {
				dx := float64(ri.Coords[k] - rj.Coords[k])
				d += dx * dx
			}
			d = math.Sqrt(d)
			if st.owner[keys[i]] == st.owner[keys[j]] {
				intraSum += d
				intraN++
			} else {
				interSum += d
				interN++
			}
		}
	}
	return intraSum / float64(intraN), interSum / float64(interN)
}

func TestKdTreeMedianBeatsMidpointOnSkew(t *testing.T) {
	rsdWith := func(midpoint bool) float64 {
		p, err := NewKdTree([]NodeID{0, 1}, grid16(), midpoint)
		if err != nil {
			t.Fatal(err)
		}
		st := newFakeState(0, 1)
		for _, info := range skewedChunks(37) {
			st.ingest(t, p, info)
		}
		st.scaleOut(t, p, 2, 3)
		st.scaleOut(t, p, 4, 5)
		return stats.RSD(st.loads())
	}
	median, midpoint := rsdWith(false), rsdWith(true)
	if median >= midpoint {
		t.Errorf("median splits RSD %.3f should beat midpoint %.3f on skew", median, midpoint)
	}
}

func TestKdTreeLeafPerNode(t *testing.T) {
	p, err := NewKdTree([]NodeID{0, 1, 2, 3, 4}, grid16(), false)
	if err != nil {
		t.Fatal(err)
	}
	leaves := p.leaves()
	if len(leaves) != 5 {
		t.Fatalf("tree has %d leaves, want 5", len(leaves))
	}
	seen := map[NodeID]bool{}
	var vol int64
	for _, l := range leaves {
		if seen[l.node] {
			t.Fatalf("node %d owns two leaves", l.node)
		}
		seen[l.node] = true
		vol += l.box.Volume()
	}
	if vol != 256 {
		t.Errorf("leaves cover %d slots, want 256", vol)
	}
}

func TestQuadtreeRegionsPartitionGrid(t *testing.T) {
	p, err := NewIncrQuadtree([]NodeID{0, 1, 2}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	st := newFakeState(0, 1, 2)
	for _, info := range skewedChunks(41) {
		st.ingest(t, p, info)
	}
	st.scaleOut(t, p, 3)
	st.scaleOut(t, p, 4, 5)
	// Every grid slot must be covered by exactly one region.
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			hits := 0
			for _, r := range p.Regions() {
				if r.Box.Contains(array.ChunkCoord{x, y}) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("slot (%d,%d) covered by %d regions", x, y, hits)
			}
		}
	}
	// Every node must own at least one region.
	owned := map[NodeID]bool{}
	for _, r := range p.Regions() {
		owned[r.Node] = true
	}
	for _, n := range st.Nodes() {
		if !owned[n] {
			t.Errorf("node %d owns no region", n)
		}
	}
}

func TestQuadtreeSplitTakesRoughlyHalf(t *testing.T) {
	p, err := NewIncrQuadtree([]NodeID{0}, grid16())
	if err != nil {
		t.Fatal(err)
	}
	st := newFakeState(0)
	for _, info := range uniformChunks(200, 1<<12, 43) {
		st.ingest(t, p, info)
	}
	total := st.NodeLoad(0)
	st.scaleOut(t, p, 1)
	got := float64(st.NodeLoad(1)) / float64(total)
	if got < 0.25 || got > 0.75 {
		t.Errorf("new node took %.0f%% of the victim's storage, want near half", got*100)
	}
}

func TestUniformRangeLeafCountAndBlocks(t *testing.T) {
	p, err := NewUniformRange([]NodeID{0, 1, 2}, grid16(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLeaves() != 64 {
		t.Fatalf("height 6 over 16x16 should give 64 leaves, got %d", p.NumLeaves())
	}
	// Blocks must be contiguous and monotone in traversal order.
	prev := NodeID(0)
	for i := 0; i < p.NumLeaves(); i++ {
		n := p.ownerOfLeaf(i)
		if n < prev {
			t.Fatalf("leaf blocks not monotone at leaf %d", i)
		}
		prev = n
	}
}

func TestUniformRangeBalancedOnUniformData(t *testing.T) {
	p := build(t, KindUniform, []NodeID{0, 1})
	st := newFakeState(0, 1)
	// One equal-size chunk in every grid slot: perfectly uniform.
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			st.ingest(t, p, chunkAt(x, y, 1000))
		}
	}
	st.scaleOut(t, p, 2, 3)
	if rsd := stats.RSD(st.loads()); rsd > 0.05 {
		t.Errorf("uniform range on uniform data RSD %.3f, want ~0", rsd)
	}
}

func TestUniformRangeBrittleUnderSkew(t *testing.T) {
	// Section 6.2.2: "AIS shows that Uniform Range is brittle to skew."
	rsdOf := func(kind string) float64 {
		p := build(t, kind, []NodeID{0, 1})
		st := newFakeState(0, 1)
		for _, info := range skewedChunks(47) {
			st.ingest(t, p, info)
		}
		st.scaleOut(t, p, 2, 3)
		return stats.RSD(st.loads())
	}
	if rsdOf(KindUniform) <= rsdOf(KindKdTree) {
		t.Errorf("uniform range RSD %.3f should exceed skew-aware k-d tree %.3f on skew",
			rsdOf(KindUniform), rsdOf(KindKdTree))
	}
}

func TestHilbertClampsOutOfGridChunks(t *testing.T) {
	p := build(t, KindHilbert, []NodeID{0, 1})
	st := newFakeState(0, 1)
	// A chunk beyond the planning horizon must still be placeable.
	info := chunkAt(99, 99, 1<<10)
	n := st.ingest(t, p, info)
	if n != 0 && n != 1 {
		t.Fatalf("clamped chunk placed on %d", n)
	}
}
