package partition

import (
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/sfc"
)

// HilbertCurve partitions the chunk grid along a pseudo-Hilbert
// space-filling order (Section 4.2, citing [32]): every node owns one
// contiguous range of curve ranks. Because neighbouring ranks are close in
// Euclidean space, each node holds a spatially coherent blob of chunks; and
// because ranges split at the *storage median* of the most burdened node,
// the scheme reacts to point skew chunk-at-a-time, finer than dimension
// ranges.
type HilbertCurve struct {
	geom Geometry
	// order serialises the spatial dimensions; growth dimensions (the
	// unbounded time axis) are appended as low-order digits so the rank
	// is space-major: one node owns all of time for its spatial blob,
	// which keeps balance stable as new slabs arrive and keeps temporal
	// neighbours collocated for the "cooking" queries.
	order   *sfc.RectOrder
	spatial []int
	growth  []int
	// total is the number of distinct composite ranks.
	total uint64
	// Node i owns ranks [bounds[i], bounds[i+1]); bounds has one more
	// entry than segNodes and starts at 0.
	bounds   []uint64
	segNodes []NodeID
}

// NewHilbertCurve builds the partitioner over the chunk grid described by
// geom, dividing the rank space evenly among the initial nodes.
func NewHilbertCurve(initial []NodeID, geom Geometry) (*HilbertCurve, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("partition: HilbertCurve needs at least one initial node")
	}
	spatial := geom.spatialDims()
	extents := make([]int64, len(spatial))
	for i, d := range spatial {
		extents[i] = geom.Extents[d]
	}
	order, err := sfc.NewRectOrder(extents)
	if err != nil {
		return nil, err
	}
	p := &HilbertCurve{geom: geom, order: order, spatial: spatial, growth: geom.growthDims()}
	p.total = order.MaxRank() + 1
	for _, d := range p.growth {
		ext := uint64(geom.Extents[d])
		if p.total > (1<<63)/ext {
			return nil, fmt.Errorf("partition: hilbert rank space overflow for extents %v", geom.Extents)
		}
		p.total *= ext
	}
	n := uint64(len(initial))
	p.bounds = append(p.bounds, 0)
	for i, node := range initial {
		hi := p.total * uint64(i+1) / n
		p.bounds = append(p.bounds, hi)
		p.segNodes = append(p.segNodes, node)
	}
	return p, nil
}

// Name implements Partitioner.
func (p *HilbertCurve) Name() string { return "Hilbert Curve" }

// Features implements Partitioner: incremental, skew-aware, n-dimensional.
func (p *HilbertCurve) Features() Features {
	return Features{IncrementalScaleOut: true, SkewAware: true, NDimensionalClustering: true}
}

func (p *HilbertCurve) rank(ref array.ChunkRef) uint64 {
	cc := p.geom.Clamp(ref.Coords)
	return p.rankClamped(cc, make([]int64, len(p.spatial)))
}

// rankClamped computes the composite curve rank of an already-clamped
// coordinate, using buf (len(spatialDims)) as the Rank scratch so batch
// callers allocate it once.
func (p *HilbertCurve) rankClamped(cc array.ChunkCoord, buf []int64) uint64 {
	for i, d := range p.spatial {
		buf[i] = cc[d]
	}
	r, err := p.order.Rank(buf)
	if err != nil {
		// Clamp guarantees in-rectangle coordinates; reaching here is a
		// programming error.
		panic(fmt.Sprintf("partition: hilbert rank of clamped coordinate %v: %v", cc, err))
	}
	for _, d := range p.growth {
		r = r*uint64(p.geom.Extents[d]) + uint64(cc[d])
	}
	return r
}

func (p *HilbertCurve) ownerOfRank(r uint64) NodeID {
	i := sort.Search(len(p.segNodes), func(i int) bool { return p.bounds[i+1] > r })
	if i == len(p.segNodes) {
		i = len(p.segNodes) - 1
	}
	return p.segNodes[i]
}

// PlaceBatch implements Placer: one rank lookup into the range table per
// chunk, with the clamp and curve scratch buffers hoisted out of the loop
// so steady-state batches allocate only the assignment slice.
func (p *HilbertCurve) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	rankBuf := make([]int64, len(p.spatial))
	var ccBuf array.ChunkCoord
	for i, info := range infos {
		ccBuf = p.geom.ClampInto(info.Ref.Coords, ccBuf)
		out[i] = Assignment{Info: info, Node: p.ownerOfRank(p.rankClamped(ccBuf, rankBuf))}
	}
	return out, nil
}

// AddNodes implements Partitioner. For each new node: identify the most
// heavily burdened node under the evolving plan, then split its rank range
// at its storage median — the boundary is placed so that roughly half the
// victim's bytes (by chunk) fall on each side — and hand the upper
// sub-range to the new node. Data moves only from split victims to new
// nodes.
func (p *HilbertCurve) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	chunks := allChunks(st)
	ranked := make([]rankedChunk, len(chunks))
	for i, info := range chunks {
		ranked[i] = rankedChunk{info: info, rank: p.rank(info.Ref)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].rank != ranked[j].rank {
			return ranked[i].rank < ranked[j].rank
		}
		a, b := ranked[i].info.Ref, ranked[j].info.Ref
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		return a.Coords.Less(b.Coords)
	})
	load := make(map[NodeID]int64)
	for _, n := range st.Nodes() {
		load[n] = 0
	}
	for _, r := range ranked {
		load[p.ownerOfRank(r.rank)] += r.info.Size
	}
	for _, newNode := range newNodes {
		victim := maxLoadNode(load)
		seg := p.segmentOf(victim)
		lo, hi := p.bounds[seg], p.bounds[seg+1]
		split := p.medianSplit(ranked, lo, hi)
		if split <= lo || split >= hi {
			// Range too narrow or degenerate; fall back to midpoint.
			split = lo + (hi-lo)/2
			if split <= lo {
				split = lo + 1
			}
		}
		// Insert the new segment [split, hi) after the victim's.
		p.bounds = append(p.bounds, 0)
		copy(p.bounds[seg+2:], p.bounds[seg+1:])
		p.bounds[seg+1] = split
		p.segNodes = append(p.segNodes, 0)
		copy(p.segNodes[seg+2:], p.segNodes[seg+1:])
		p.segNodes[seg+1] = newNode
		// Update planned loads.
		var movedBytes int64
		for _, r := range ranked {
			if r.rank >= split && r.rank < hi {
				movedBytes += r.info.Size
			}
		}
		load[victim] -= movedBytes
		load[newNode] += movedBytes
	}
	var moves []Move
	for _, r := range ranked {
		want := p.ownerOfRank(r.rank)
		cur, _ := st.Owner(r.info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: r.info.Ref, From: cur, To: want, Size: r.info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}

func (p *HilbertCurve) segmentOf(node NodeID) int {
	// A node may own several segments after repeated splits of its
	// neighbours' ranges never occurs (splits only shrink the victim),
	// but defensively pick its largest-load… segments are unique per
	// node by construction: splits assign new nodes, victims keep one.
	for i, n := range p.segNodes {
		if n == node {
			return i
		}
	}
	panic(fmt.Sprintf("partition: node %d owns no hilbert segment", node))
}

// rankedChunk pairs a chunk with its position on the curve.
type rankedChunk struct {
	info array.ChunkInfo
	rank uint64
}

// medianSplit returns the rank at which the accumulated chunk bytes inside
// [lo, hi) first reach half of the range's total — the first rank of the
// upper half. Returns lo when the range holds fewer than two chunks.
func (p *HilbertCurve) medianSplit(ranked []rankedChunk, lo, hi uint64) uint64 {
	var total int64
	first, last := -1, -1
	for i, r := range ranked {
		if r.rank < lo || r.rank >= hi {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
		total += r.info.Size
	}
	if first < 0 || first == last {
		return lo
	}
	var acc int64
	for i := first; i <= last; i++ {
		r := ranked[i]
		if r.rank < lo || r.rank >= hi {
			continue
		}
		acc += r.info.Size
		if acc >= total/2 {
			// The upper half starts after this chunk.
			if i+1 <= last {
				return ranked[i+1].rank
			}
			return r.rank // degenerate; caller falls back to midpoint
		}
	}
	return lo
}
