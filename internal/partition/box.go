package partition

import (
	"fmt"
	"strings"

	"repro/internal/array"
)

// Box is an axis-aligned hyperrectangle in chunk-grid space, lower bound
// inclusive, upper bound exclusive. The region partitioners (Incremental
// Quadtree, K-d Tree, Uniform Range) divide the grid into disjoint boxes
// and assign each box to a node.
type Box struct {
	Lo, Hi []int64
}

// NewBox returns the box [lo, hi). It panics if the bounds are malformed;
// boxes are internal construction, not user input.
func NewBox(lo, hi []int64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("partition: box bounds of different arity %v / %v", lo, hi))
	}
	for i := range lo {
		if hi[i] < lo[i] {
			panic(fmt.Sprintf("partition: inverted box bound on dim %d: [%d,%d)", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: append([]int64(nil), lo...), Hi: append([]int64(nil), hi...)}
}

// RootBox returns the box covering an entire chunk grid.
func RootBox(g Geometry) Box {
	lo := make([]int64, len(g.Extents))
	return NewBox(lo, append([]int64(nil), g.Extents...))
}

// Dims returns the box's dimensionality.
func (b Box) Dims() int { return len(b.Lo) }

// Contains reports whether the chunk coordinate lies inside the box.
func (b Box) Contains(cc array.ChunkCoord) bool {
	if len(cc) != len(b.Lo) {
		return false
	}
	for i := range cc {
		if cc[i] < b.Lo[i] || cc[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// Span returns the box's width along dim.
func (b Box) Span(dim int) int64 { return b.Hi[dim] - b.Lo[dim] }

// Volume returns the number of chunk slots the box covers.
func (b Box) Volume() int64 {
	v := int64(1)
	for i := range b.Lo {
		v *= b.Span(i)
	}
	return v
}

// Empty reports whether the box covers no chunk slots.
func (b Box) Empty() bool { return b.Volume() == 0 }

// SplitAt cuts the box on dim at coordinate `at` (Lo[dim] < at < Hi[dim]),
// returning the lower half [Lo, at) and upper half [at, Hi).
func (b Box) SplitAt(dim int, at int64) (lower, upper Box) {
	if at <= b.Lo[dim] || at >= b.Hi[dim] {
		panic(fmt.Sprintf("partition: split of %v on dim %d at %d is degenerate", b, dim, at))
	}
	lower = NewBox(b.Lo, b.Hi)
	upper = NewBox(b.Lo, b.Hi)
	lower.Hi[dim] = at
	upper.Lo[dim] = at
	return lower, upper
}

// Splittable reports whether the box has more than one slot along dim.
func (b Box) Splittable(dim int) bool { return b.Span(dim) > 1 }

// Adjacent reports whether two boxes share a face: they touch (one's lower
// bound equals the other's upper bound on exactly one axis) and overlap on
// every other axis. Used by the Incremental Quadtree to find the "pair of
// adjacent quarters" it hands to a new node.
func (b Box) Adjacent(o Box) bool {
	if b.Dims() != o.Dims() {
		return false
	}
	touching := 0
	for i := range b.Lo {
		if b.Hi[i] == o.Lo[i] || o.Hi[i] == b.Lo[i] {
			// Touching on this axis; the remaining axes must overlap.
			touching++
			continue
		}
		// Must overlap on this axis.
		if b.Hi[i] <= o.Lo[i] || o.Hi[i] <= b.Lo[i] {
			return false
		}
	}
	return touching == 1
}

// LongestDims returns the indexes of the k dims with the largest spans,
// ties broken by lower index; used by the quadtree to pick which two axes
// to quarter on.
func (b Box) LongestDims(k int) []int {
	idx := make([]int, b.Dims())
	for i := range idx {
		idx[i] = i
	}
	// Stable selection sort by span descending, index ascending.
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if b.Span(idx[j]) > b.Span(idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func (b Box) String() string {
	var s strings.Builder
	s.WriteByte('[')
	for i := range b.Lo {
		if i > 0 {
			s.WriteByte(' ')
		}
		fmt.Fprintf(&s, "%d..%d", b.Lo[i], b.Hi[i])
	}
	s.WriteByte(']')
	return s.String()
}
