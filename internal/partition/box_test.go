package partition

import (
	"testing"

	"repro/internal/array"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox([]int64{0, 0}, []int64{4, 6})
	if b.Volume() != 24 {
		t.Errorf("Volume = %d, want 24", b.Volume())
	}
	if b.Span(1) != 6 {
		t.Errorf("Span(1) = %d, want 6", b.Span(1))
	}
	if !b.Contains(array.ChunkCoord{3, 5}) {
		t.Error("(3,5) should be inside")
	}
	if b.Contains(array.ChunkCoord{4, 0}) || b.Contains(array.ChunkCoord{0, -1}) || b.Contains(array.ChunkCoord{1}) {
		t.Error("outside coordinates must be rejected")
	}
	if b.Empty() {
		t.Error("box is not empty")
	}
	if !NewBox([]int64{1, 1}, []int64{1, 5}).Empty() {
		t.Error("zero-span box is empty")
	}
}

func TestBoxSplitAt(t *testing.T) {
	b := NewBox([]int64{0, 0}, []int64{8, 8})
	lo, hi := b.SplitAt(0, 3)
	if lo.Hi[0] != 3 || hi.Lo[0] != 3 {
		t.Errorf("split halves wrong: %v / %v", lo, hi)
	}
	if lo.Volume()+hi.Volume() != b.Volume() {
		t.Error("split must conserve volume")
	}
	for _, cc := range []array.ChunkCoord{{2, 7}, {3, 0}, {7, 7}} {
		inLo, inHi := lo.Contains(cc), hi.Contains(cc)
		if inLo == inHi {
			t.Errorf("%v must be in exactly one half", cc)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("degenerate split should panic")
		}
	}()
	b.SplitAt(0, 0)
}

func TestBoxAdjacent(t *testing.T) {
	a := NewBox([]int64{0, 0}, []int64{4, 4})
	b := NewBox([]int64{4, 0}, []int64{8, 4})   // shares the x=4 face
	c := NewBox([]int64{4, 4}, []int64{8, 8})   // corner touch only
	d := NewBox([]int64{0, 0}, []int64{4, 4})   // identical (overlap, no face)
	e := NewBox([]int64{10, 0}, []int64{12, 4}) // disjoint
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("a and b share a face")
	}
	if a.Adjacent(c) {
		t.Error("corner touch is not adjacency")
	}
	if a.Adjacent(d) {
		t.Error("identical boxes are not adjacent")
	}
	if a.Adjacent(e) {
		t.Error("disjoint boxes are not adjacent")
	}
}

func TestBoxLongestDims(t *testing.T) {
	b := NewBox([]int64{0, 0, 0}, []int64{2, 10, 5})
	dims := b.LongestDims(2)
	if dims[0] != 1 || dims[1] != 2 {
		t.Errorf("LongestDims = %v, want [1 2]", dims)
	}
	// Ties break toward the lower index.
	b2 := NewBox([]int64{0, 0}, []int64{4, 4})
	if d := b2.LongestDims(1); d[0] != 0 {
		t.Errorf("tie should pick dim 0, got %v", d)
	}
	if got := b2.LongestDims(5); len(got) != 2 {
		t.Errorf("k beyond dims should clamp, got %v", got)
	}
}

func TestRootBox(t *testing.T) {
	g := Geometry{Extents: []int64{3, 5}}
	r := RootBox(g)
	if r.Volume() != 15 {
		t.Errorf("RootBox volume = %d, want 15", r.Volume())
	}
	if r.Lo[0] != 0 || r.Lo[1] != 0 {
		t.Error("RootBox must start at origin")
	}
}

func TestGeometryValidateAndClamp(t *testing.T) {
	if err := (Geometry{}).Validate(); err == nil {
		t.Error("empty geometry should fail")
	}
	if err := (Geometry{Extents: []int64{4, 0}}).Validate(); err == nil {
		t.Error("zero extent should fail")
	}
	g := Geometry{Extents: []int64{4, 6}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	got := g.Clamp(array.ChunkCoord{-1, 9})
	if got[0] != 0 || got[1] != 5 {
		t.Errorf("Clamp = %v, want [0 5]", got)
	}
	in := array.ChunkCoord{2, 3}
	if out := g.Clamp(in); !out.Equal(in) {
		t.Error("in-range coordinate must be unchanged")
	}
	if in[0] != 2 {
		t.Error("Clamp must not mutate its argument")
	}
}

func TestQuarter(t *testing.T) {
	q := quarter(NewBox([]int64{0, 0}, []int64{8, 8}), nil)
	if len(q) != 4 {
		t.Fatalf("quarter yields %d boxes, want 4", len(q))
	}
	var vol int64
	for _, b := range q {
		vol += b.Volume()
	}
	if vol != 64 {
		t.Errorf("quarters cover %d slots, want 64", vol)
	}
	// One splittable axis → halves only.
	q2 := quarter(NewBox([]int64{0, 0}, []int64{8, 1}), nil)
	if len(q2) != 2 {
		t.Errorf("thin box quarters into %d, want 2", len(q2))
	}
	// Nothing splittable → unchanged.
	q3 := quarter(NewBox([]int64{0, 0}, []int64{1, 1}), nil)
	if len(q3) != 1 {
		t.Errorf("unit box quarters into %d, want 1", len(q3))
	}
	// 3-D: quarter on the two longest axes only.
	q4 := quarter(NewBox([]int64{0, 0, 0}, []int64{2, 8, 8}), nil)
	if len(q4) != 4 {
		t.Fatalf("3-D quarter yields %d boxes, want 4", len(q4))
	}
	for _, b := range q4 {
		if b.Span(0) != 2 {
			t.Error("shortest axis must remain uncut")
		}
	}
}
