package partition

import (
	"sort"

	"repro/internal/array"
)

// Replica placement: which nodes hold the secondary copies of a primary
// chunk when the cluster runs with a replication factor R >= 2.
//
// The scheme is rendezvous (highest-random-weight) hashing: every
// (chunk, node) pair gets a deterministic score, and the R-1 highest-scoring
// candidates — excluding the primary — hold the copies. Rendezvous hashing
// gives the two properties replica placement needs here:
//
//   - Diversity for free: scores are computed per chunk, so replica sets
//     spread over the cluster instead of pairing nodes statically (a static
//     buddy scheme loses every copy of a chunk range when a buddy pair
//     fails together).
//   - Minimal churn: adding a node only claims the chunks it now scores
//     highest on; no other replica assignment changes.
//
// The primary's placement stays entirely the partitioner's business —
// replicas are a fault-tolerance overlay, not a load-balancing input, which
// is why these helpers live beside the schemes rather than inside them.

// replicaScore ranks a candidate node for a chunk's replica set. The node
// term is pre-mixed so dense sequential IDs decorrelate before folding with
// the chunk hash.
func replicaScore(key array.ChunkKey, n NodeID) uint64 {
	return mix64(key.Hash() ^ mix64(uint64(n)+0x9e3779b97f4a7c15))
}

// ReplicaNodes picks the nodes holding the secondary copies of a chunk:
// the want highest-scoring candidates, excluding the primary and anything
// in the exclude list (e.g. surviving holders during re-replication).
// Candidates should already be filtered to healthy nodes by the caller.
// Fewer than want eligible candidates is not an error — the caller decides
// whether a short replica set is acceptable; the result is deterministic
// for a given (key, candidates) regardless of candidate order.
func ReplicaNodes(key array.ChunkKey, primary NodeID, candidates []NodeID, exclude []NodeID, want int) []NodeID {
	if want <= 0 {
		return nil
	}
	eligible := make([]NodeID, 0, len(candidates))
	for _, n := range candidates {
		if n == primary || containsNode(exclude, n) {
			continue
		}
		eligible = append(eligible, n)
	}
	sort.Slice(eligible, func(i, j int) bool {
		si, sj := replicaScore(key, eligible[i]), replicaScore(key, eligible[j])
		if si != sj {
			return si > sj
		}
		return eligible[i] < eligible[j]
	})
	if want > len(eligible) {
		want = len(eligible)
	}
	out := append([]NodeID(nil), eligible[:want]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FallbackNode picks a deterministic stand-in among candidates for a chunk
// whose assigned destination is unavailable — the highest rendezvous score
// wins, so repeated plans against the same healthy set divert identically.
// Returns false when candidates is empty.
func FallbackNode(key array.ChunkKey, candidates []NodeID) (NodeID, bool) {
	var best NodeID
	var bestScore uint64
	found := false
	for _, n := range candidates {
		s := replicaScore(key, n)
		if !found || s > bestScore || (s == bestScore && n < best) {
			best, bestScore, found = n, s, true
		}
	}
	return best, found
}

func containsNode(list []NodeID, n NodeID) bool {
	for _, m := range list {
		if m == n {
			return true
		}
	}
	return false
}
