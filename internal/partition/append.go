package partition

import (
	"repro/internal/array"
)

// Append is the paper's append-only range scheme: each new chunk goes to
// the first node that is not yet at capacity, spilling to the next when the
// current target fills. The partitioning table is a list of insert-order
// ranges, one per node. Scale-out is free — a new node simply "picks up
// where its predecessor left off" — at the price of poor use of new nodes
// and no spatial clustering beyond insert (time) order.
type Append struct {
	// Capacity is the per-node fill target in bytes before spilling to
	// the next node.
	capacity int64
	nodes    []NodeID
	filled   []int64 // bytes routed to each node so far, parallel to nodes
	target   int     // index into nodes currently receiving writes
}

// NewAppend returns an append partitioner that fills each node to capacity
// bytes before moving on.
func NewAppend(initial []NodeID, capacity int64) *Append {
	return &Append{
		capacity: capacity,
		nodes:    append([]NodeID(nil), initial...),
		filled:   make([]int64, len(initial)),
	}
}

// Name implements Partitioner.
func (p *Append) Name() string { return "Append" }

// Features implements Partitioner: incremental (no movement at scale-out)
// and skew-aware (the table advances on storage size, not chunk count).
func (p *Append) Features() Features {
	return Features{IncrementalScaleOut: true, SkewAware: true}
}

// PlaceBatch implements Placer: route each chunk in order to the current
// target, advancing the target as it fills — the batch is sequenced because
// the table itself is insert-order. If every node is at capacity the last
// node absorbs overflow — the situation the provisioner exists to prevent.
func (p *Append) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	for i, info := range infos {
		for p.target < len(p.nodes)-1 && p.filled[p.target] >= p.capacity {
			p.target++
		}
		p.filled[p.target] += info.Size
		out[i] = Assignment{Info: info, Node: p.nodes[p.target]}
	}
	return out, nil
}

// AddNodes implements Partitioner. Append never moves preexisting data:
// the new nodes are queued after the current target and fill up as inserts
// arrive. The returned plan is always empty.
//
// Before appending, the fill table is resynchronised against the observed
// per-node storage. Fill is advanced at placement time, so batches that
// were placed but never stored (a failed or discarded ingest plan, a plan
// invalidated by this very scale-out) leave phantom bytes behind;
// re-reading the ground truth here stops that drift from permanently
// skipping nodes with real free capacity.
func (p *Append) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	for i, n := range p.nodes {
		p.filled[i] = st.NodeLoad(n)
	}
	p.target = 0
	p.nodes = append(p.nodes, newNodes...)
	p.filled = append(p.filled, make([]int64, len(newNodes))...)
	return nil, nil
}
