// Package partition implements the paper's eight elastic data-placement
// schemes for multidimensional arrays (Section 4): Append, Consistent Hash,
// Extendible Hash, Hilbert Curve, Incremental Quadtree, K-d Tree, Uniform
// Range, and the Round Robin baseline.
//
// A Partitioner makes two kinds of decisions, both batch-shaped. During
// ingest, PlaceBatch maps a whole batch of new chunks to destination nodes
// in one call — the Placer contract — returning one Assignment per chunk in
// input order. The cluster turns those assignments into an executable
// IngestPlan (validate → place → write in parallel per destination node);
// schemes see the batch at once, so they can hoist per-chunk work (rank
// buffers, directory probes) out of the loop while still deciding exactly
// as if the chunks had arrived one at a time. When the cluster scales out,
// AddNodes integrates the fresh nodes into the partitioning table and
// returns an explicit migration plan. Incremental schemes produce plans
// that move chunks only from preexisting nodes to new ones; the global
// schemes (Round Robin, Uniform Range) may reshuffle arbitrarily — exactly
// the trade-off Table 1 of the paper taxonomises.
//
// # The PlaceBatch contract
//
// PlaceBatch(infos, st) must return exactly one Assignment per input, in
// input order (out[i].Info == infos[i]), and must advance the scheme's
// internal table as if the chunks had been placed one at a time in slice
// order — callers pass batches in canonical (array, coordinate) order, so
// placement is deterministic regardless of how a batch was assembled. The
// batch's chunks are new: none is visible in st when the call is made.
// Implementations must not retain the infos slice (the cluster reuses its
// backing array across batches). The error return is for schemes that can
// reject a batch outright; the eight in-repo schemes always place and
// return nil. All eight implement PlaceBatch natively; external schemes
// still written chunk-at-a-time can adapt with the PlaceEach shim until
// they grow a native batch path.
//
// Partitioners never touch chunk payloads: they see array.ChunkInfo
// (identity, grid position, physical size) and a read-only State view of
// current placement, and they keep whatever internal table (hash ring,
// bucket directory, region tree, …) their algorithm requires.
package partition
