package partition

import (
	"testing"

	"repro/internal/array"
)

// TestBatchPlacementEqualsSequential is the batch-contract property test:
// for every scheme, placing a whole batch in one PlaceBatch call yields
// exactly the assignments that placing the same chunks one call at a time
// does — byte-identical destinations, including for the stateful Append
// table and across an interleaved scale-out.
func TestBatchPlacementEqualsSequential(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			chunks := skewedChunks(29)
			half := len(chunks) / 2

			phase := func(t *testing.T, pBatch, pSeq Partitioner, stBatch, stSeq *fakeState, infos []array.ChunkInfo) {
				t.Helper()
				asgn, err := pBatch.PlaceBatch(infos, stBatch)
				if err != nil {
					t.Fatalf("PlaceBatch: %v", err)
				}
				if len(asgn) != len(infos) {
					t.Fatalf("PlaceBatch returned %d assignments for %d chunks", len(asgn), len(infos))
				}
				for i, a := range asgn {
					if a.Info.Ref.Key() != infos[i].Ref.Key() || a.Info.Size != infos[i].Size {
						t.Fatalf("assignment %d is %+v, want info %+v in input order", i, a.Info, infos[i])
					}
					seq := placeOne(t, pSeq, infos[i], stSeq)
					if a.Node != seq {
						t.Fatalf("chunk %s: batch placed on %d, sequential on %d", infos[i].Ref, a.Node, seq)
					}
					stBatch.chunks[infos[i].Ref.Packed()] = infos[i]
					stBatch.owner[infos[i].Ref.Packed()] = a.Node
					stSeq.chunks[infos[i].Ref.Packed()] = infos[i]
					stSeq.owner[infos[i].Ref.Packed()] = seq
				}
			}

			pBatch := build(t, kind, []NodeID{0, 1})
			pSeq := build(t, kind, []NodeID{0, 1})
			stBatch, stSeq := newFakeState(0, 1), newFakeState(0, 1)
			phase(t, pBatch, pSeq, stBatch, stSeq, chunks[:half])
			stBatch.scaleOut(t, pBatch, 2, 3)
			stSeq.scaleOut(t, pSeq, 2, 3)
			phase(t, pBatch, pSeq, stBatch, stSeq, chunks[half:])
		})
	}
}

// TestPlaceEachShimMatchesNative pins the migration shim: adapting a
// per-chunk function with PlaceEach produces the same assignments as the
// scheme's native batch path.
func TestPlaceEachShimMatchesNative(t *testing.T) {
	pNative := build(t, KindKdTree, []NodeID{0, 1, 2})
	pShim := build(t, KindKdTree, []NodeID{0, 1, 2})
	st := newFakeState(0, 1, 2)
	infos := uniformChunks(64, 1<<12, 9)
	native, err := pNative.PlaceBatch(infos, st)
	if err != nil {
		t.Fatal(err)
	}
	shimmed := PlaceEach(infos, st, func(info array.ChunkInfo, s State) NodeID {
		return placeOne(t, pShim, info, s)
	})
	if len(native) != len(shimmed) {
		t.Fatalf("shim returned %d assignments, native %d", len(shimmed), len(native))
	}
	for i := range native {
		if native[i].Node != shimmed[i].Node || native[i].Info.Ref.Key() != shimmed[i].Info.Ref.Key() {
			t.Fatalf("assignment %d: native %+v, shim %+v", i, native[i], shimmed[i])
		}
	}
}

// TestPlaceBatchEmpty pins the degenerate batch: no chunks, no
// assignments, no error, no table movement.
func TestPlaceBatchEmpty(t *testing.T) {
	for _, kind := range Kinds() {
		p := build(t, kind, []NodeID{0, 1})
		asgn, err := p.PlaceBatch(nil, newFakeState(0, 1))
		if err != nil {
			t.Fatalf("%s: empty batch errored: %v", kind, err)
		}
		if len(asgn) != 0 {
			t.Fatalf("%s: empty batch produced %d assignments", kind, len(asgn))
		}
	}
}
