package partition

import (
	"fmt"
	"sort"

	"repro/internal/array"
)

// NodeID identifies a cluster node. IDs are dense and ascending in the
// order nodes were provisioned, which the global schemes exploit.
type NodeID int

// Move is one chunk relocation in a migration plan.
type Move struct {
	Ref  array.ChunkRef
	From NodeID
	To   NodeID
	Size int64
}

// State is the read-only view of current physical placement a partitioner
// consults when making decisions. The cluster implements it.
type State interface {
	// Nodes returns the IDs of all nodes currently in the cluster, in
	// ascending order, excluding any nodes being added in the current
	// AddNodes call.
	Nodes() []NodeID
	// NodeLoad returns the bytes stored on the node.
	NodeLoad(NodeID) int64
	// NodeChunks returns the chunks resident on the node in canonical
	// (array, coordinate) order.
	NodeChunks(NodeID) []array.ChunkInfo
	// Owner returns the node currently holding the chunk, identified by
	// its packed key (allocation-free on the lookup hot path).
	Owner(array.ChunkKey) (NodeID, bool)
}

// Features is the Table 1 taxonomy: which of the four elastic-placement
// traits a scheme implements.
type Features struct {
	// IncrementalScaleOut: reorganisation sends data only from
	// preexisting nodes to new ones.
	IncrementalScaleOut bool
	// FineGrained: chunks are assigned one at a time rather than by
	// subdividing planes of array space.
	FineGrained bool
	// SkewAware: repartitioning decisions consult the observed storage
	// footprint rather than logical chunk counts.
	SkewAware bool
	// NDimensionalClustering: contiguous chunks in array space tend to
	// be collocated, aiding spatial queries.
	NDimensionalClustering bool
}

// Count returns how many of the four traits are set (the number of X marks
// in the scheme's Table 1 row).
func (f Features) Count() int {
	n := 0
	for _, b := range []bool{f.IncrementalScaleOut, f.FineGrained, f.SkewAware, f.NDimensionalClustering} {
		if b {
			n++
		}
	}
	return n
}

// Assignment is one decision of a batch placement: a chunk and the node it
// goes to.
type Assignment struct {
	Info array.ChunkInfo
	Node NodeID
}

// Placer is the batch placement contract. PlaceBatch maps every chunk of an
// ingest batch to a destination node and updates the scheme's internal
// table, returning one Assignment per input in the same order
// (out[i].Info == infos[i]). The chunks are new — none is visible in st —
// and they are processed in slice order, so a batch call decides exactly
// like a sequence of single-chunk calls; callers pass batches in canonical
// chunk order to keep placement deterministic. Implementations must not
// retain infos (the cluster reuses the backing array across calls). The
// error return is for schemes that can reject a batch outright; the eight
// in-repo schemes always place and return nil.
type Placer interface {
	PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error)
}

// PlaceFunc is the per-chunk placement signature of the pre-batch API.
type PlaceFunc func(info array.ChunkInfo, st State) NodeID

// PlaceEach adapts a per-chunk placement function to the batch contract —
// the migration shim for external schemes still written chunk-at-a-time.
// Every in-repo scheme implements PlaceBatch natively and does not use it.
func PlaceEach(infos []array.ChunkInfo, st State, place PlaceFunc) []Assignment {
	out := make([]Assignment, len(infos))
	for i, info := range infos {
		out[i] = Assignment{Info: info, Node: place(info, st)}
	}
	return out
}

// Partitioner is an elastic data-placement scheme.
type Partitioner interface {
	// Name returns the scheme's display name as used in the paper's
	// figures ("K-d Tree", "Round Robin", …).
	Name() string
	// Features returns the scheme's Table 1 row.
	Features() Features
	// Placer supplies batch ingest placement (PlaceBatch).
	Placer
	// AddNodes integrates newly provisioned nodes into the partitioning
	// table and returns the migration plan that brings physical
	// placement in line with the revised table. newNodes are not yet
	// visible in st.Nodes().
	AddNodes(newNodes []NodeID, st State) ([]Move, error)
}

// Geometry describes the chunk grid the spatial partitioners divide: the
// number of chunk slots along each dimension. Unbounded dimensions are
// given a planning horizon by the caller (e.g. the number of workload
// cycles); chunks arriving beyond it are clamped to the final slab.
type Geometry struct {
	Extents []int64
	// SpatialDims lists the dimensions the range partitioners divide
	// (split planes, quarters, space-filling order). Empty means all.
	//
	// Arrays that grow along an unbounded dimension (time series) must
	// exclude that dimension: a range cut through the growth axis sends
	// every future insert to the last partition, destroying balance
	// between scale-outs. Excluding it gives each node a region of
	// array space that receives its proportional share of every new
	// slab — each partition holds all of time for its region, which is
	// the "evenly distribute the time dimension" behaviour the paper
	// credits the skew-aware range partitioners with (Section 6.2.2).
	SpatialDims []int
}

// Validate checks the geometry is usable.
func (g Geometry) Validate() error {
	if len(g.Extents) == 0 {
		return fmt.Errorf("partition: geometry needs at least one dimension")
	}
	for i, e := range g.Extents {
		if e <= 0 {
			return fmt.Errorf("partition: geometry extent %d = %d must be positive", i, e)
		}
	}
	seen := make(map[int]bool)
	for _, d := range g.SpatialDims {
		if d < 0 || d >= len(g.Extents) {
			return fmt.Errorf("partition: spatial dim %d out of range", d)
		}
		if seen[d] {
			return fmt.Errorf("partition: spatial dim %d repeated", d)
		}
		seen[d] = true
	}
	return nil
}

// spatialDims returns the configured spatial dimensions, defaulting to all.
func (g Geometry) spatialDims() []int {
	if len(g.SpatialDims) > 0 {
		return g.SpatialDims
	}
	out := make([]int, len(g.Extents))
	for i := range out {
		out[i] = i
	}
	return out
}

// growthDims returns the dimensions not listed as spatial, in index order.
func (g Geometry) growthDims() []int {
	spatial := make(map[int]bool)
	for _, d := range g.spatialDims() {
		spatial[d] = true
	}
	var out []int
	for i := range g.Extents {
		if !spatial[i] {
			out = append(out, i)
		}
	}
	return out
}

// Clamp forces a chunk coordinate into the grid, mapping overflow on any
// axis to the last slab (and negative indexes to the first).
func (g Geometry) Clamp(cc array.ChunkCoord) array.ChunkCoord {
	return g.ClampInto(cc, nil)
}

// ClampInto is Clamp writing into buf (reusing its capacity) — the
// allocation-free variant for batch placement loops. Pass the previous
// iteration's return value as buf.
func (g Geometry) ClampInto(cc array.ChunkCoord, buf array.ChunkCoord) array.ChunkCoord {
	out := append(buf[:0], cc...)
	for i := range out {
		if i >= len(g.Extents) {
			break
		}
		if out[i] < 0 {
			out[i] = 0
		}
		if out[i] >= g.Extents[i] {
			out[i] = g.Extents[i] - 1
		}
	}
	return out
}

// hashRef hashes a chunk's full packed identity — array and grid position —
// to a well-dispersed 64-bit value. The extendible-hash directory derives
// bucket membership from it. The raw FNV pass lives on the key types
// (array.ChunkKey.Hash — the same hash the cluster's sharded catalog
// spreads shards with); the splitmix finalizer here disperses it for
// bucket-pattern use.
//
// The array identity is part of the hash: keying on position alone made
// same-coordinate chunks of every array collide onto one bucket, so a
// multi-array database degenerated to a single array's distribution.
// Congruent-array collocation for the structural join (Figure 6) is the
// position-keyed schemes' behaviour — Consistent Hash and Round Robin keep
// it via hashCoord.
func hashRef(key array.ChunkKey) uint64 {
	return mix64(key.Hash())
}

// hashCoord hashes a packed grid position alone — the position-keyed hash
// the Consistent Hash ring uses so congruent arrays collocate equal
// coordinates.
func hashCoord(ck array.CoordKey) uint64 {
	return mix64(ck.Hash())
}

// mix64 is the splitmix64 finalizer: near-identical keys (neighbouring
// chunk coordinates) must not land on correlated positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mostLoaded returns the node with the largest storage footprint, breaking
// ties by lowest ID so decisions are deterministic.
func mostLoaded(nodes []NodeID, st State) NodeID {
	if len(nodes) == 0 {
		panic("partition: mostLoaded over no nodes")
	}
	best := nodes[0]
	bestLoad := st.NodeLoad(best)
	for _, n := range nodes[1:] {
		l := st.NodeLoad(n)
		if l > bestLoad {
			best, bestLoad = n, l
		}
	}
	return best
}

// validateNewNodes rejects empty or duplicate additions and additions of
// nodes already present.
func validateNewNodes(newNodes []NodeID, st State) error {
	if len(newNodes) == 0 {
		return fmt.Errorf("partition: AddNodes with no nodes")
	}
	existing := make(map[NodeID]bool)
	for _, n := range st.Nodes() {
		existing[n] = true
	}
	seen := make(map[NodeID]bool)
	for _, n := range newNodes {
		if existing[n] {
			return fmt.Errorf("partition: node %d already in cluster", n)
		}
		if seen[n] {
			return fmt.Errorf("partition: node %d added twice", n)
		}
		seen[n] = true
	}
	return nil
}

// allChunks gathers every resident chunk across the cluster in canonical
// order.
func allChunks(st State) []array.ChunkInfo {
	var out []array.ChunkInfo
	for _, n := range st.Nodes() {
		out = append(out, st.NodeChunks(n)...)
	}
	array.SortChunkInfos(out)
	return out
}

// sortMoves orders a migration plan canonically (array name, then numeric
// chunk coordinate) so plans are reproducible run to run.
func sortMoves(moves []Move) {
	sort.Slice(moves, func(i, j int) bool {
		a, b := moves[i].Ref, moves[j].Ref
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		return a.Coords.Less(b.Coords)
	})
}
