package partition

import (
	"testing"

	"repro/internal/array"
	"repro/internal/stats"
)

// TestTable1Taxonomy pins every scheme's Features to its Table 1 row.
func TestTable1Taxonomy(t *testing.T) {
	want := map[string]Features{
		KindAppend:     {IncrementalScaleOut: true, SkewAware: true},
		KindConsistent: {IncrementalScaleOut: true, FineGrained: true},
		KindExtendible: {IncrementalScaleOut: true, FineGrained: true, SkewAware: true},
		KindHilbert:    {IncrementalScaleOut: true, SkewAware: true, NDimensionalClustering: true},
		KindQuadtree:   {IncrementalScaleOut: true, SkewAware: true, NDimensionalClustering: true},
		KindKdTree:     {IncrementalScaleOut: true, SkewAware: true, NDimensionalClustering: true},
		KindRoundRobin: {FineGrained: true},
		KindUniform:    {NDimensionalClustering: true},
	}
	for kind, feats := range want {
		p := build(t, kind, []NodeID{0, 1})
		if got := p.Features(); got != feats {
			t.Errorf("%s Features = %+v, want %+v", kind, got, feats)
		}
	}
	// Trait counts as in Table 1: 2,2,3,3,3,3,1 plus the baseline's 1.
	counts := map[string]int{
		KindAppend: 2, KindConsistent: 2, KindExtendible: 3, KindHilbert: 3,
		KindQuadtree: 3, KindKdTree: 3, KindRoundRobin: 1, KindUniform: 1,
	}
	for kind, n := range counts {
		if got := build(t, kind, []NodeID{0, 1}).Features().Count(); got != n {
			t.Errorf("%s trait count = %d, want %d", kind, got, n)
		}
	}
}

// TestAllSchemesLifecycle exercises every scheme through the paper's
// experimental shape — start with 2 nodes, ingest, grow to 4, 6, 8 — and
// checks the structural invariants of placement and migration.
func TestAllSchemesLifecycle(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			p := build(t, kind, []NodeID{0, 1})
			st := newFakeState(0, 1)
			chunks := skewedChunks(7)
			third := len(chunks) / 3
			for _, info := range chunks[:third] {
				st.ingest(t, p, info)
			}
			st.scaleOut(t, p, 2, 3)
			for _, info := range chunks[third : 2*third] {
				st.ingest(t, p, info)
			}
			st.scaleOut(t, p, 4, 5)
			for _, info := range chunks[2*third:] {
				st.ingest(t, p, info)
			}
			st.scaleOut(t, p, 6, 7)

			// Every chunk must still be owned by a valid node.
			for key, owner := range st.owner {
				if !st.hasNode(owner) {
					t.Fatalf("chunk %s owned by unknown node %d", key, owner)
				}
			}
			if len(st.owner) != len(chunks) {
				t.Fatalf("catalog has %d chunks, want %d", len(st.owner), len(chunks))
			}
		})
	}
}

// TestIncrementalSchemesMoveOnlyToNewNodes verifies the defining Table 1
// property: incremental scale-out never shuffles data between preexisting
// nodes.
func TestIncrementalSchemesMoveOnlyToNewNodes(t *testing.T) {
	for _, kind := range Kinds() {
		p := build(t, kind, []NodeID{0, 1})
		if !p.Features().IncrementalScaleOut {
			continue
		}
		t.Run(kind, func(t *testing.T) {
			p := build(t, kind, []NodeID{0, 1})
			st := newFakeState(0, 1)
			for _, info := range skewedChunks(11) {
				st.ingest(t, p, info)
			}
			moves := st.scaleOut(t, p, 2, 3)
			for _, m := range moves {
				if m.To != 2 && m.To != 3 {
					t.Fatalf("%s moved %s to preexisting node %d", kind, m.Ref, m.To)
				}
			}
			moves = st.scaleOut(t, p, 4)
			for _, m := range moves {
				if m.To != 4 {
					t.Fatalf("%s second scale-out moved %s to node %d", kind, m.Ref, m.To)
				}
			}
		})
	}
}

// TestGlobalSchemesShuffleBetweenOldNodes documents the converse: the
// global schemes move data between preexisting nodes at scale-out.
func TestGlobalSchemesShuffleBetweenOldNodes(t *testing.T) {
	for _, kind := range []string{KindRoundRobin, KindUniform} {
		t.Run(kind, func(t *testing.T) {
			p := build(t, kind, []NodeID{0, 1, 2})
			st := newFakeState(0, 1, 2)
			for _, info := range uniformChunks(150, 1<<16, 5) {
				st.ingest(t, p, info)
			}
			moves := st.scaleOut(t, p, 3, 4)
			oldToOld := 0
			for _, m := range moves {
				if m.To < 3 {
					oldToOld++
				}
			}
			if oldToOld == 0 {
				t.Errorf("%s is expected to shuffle between old nodes; plan had %d moves, none old→old", kind, len(moves))
			}
		})
	}
}

// TestPlacementDeterminism runs every scheme twice over the same inputs
// and requires byte-identical decisions.
func TestPlacementDeterminism(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			run := func() map[array.ChunkKey]NodeID {
				p := build(t, kind, []NodeID{0, 1})
				st := newFakeState(0, 1)
				chunks := skewedChunks(3)
				for _, info := range chunks[:100] {
					st.ingest(t, p, info)
				}
				st.scaleOut(t, p, 2, 3)
				for _, info := range chunks[100:] {
					st.ingest(t, p, info)
				}
				st.scaleOut(t, p, 4, 5)
				out := make(map[array.ChunkKey]NodeID, len(st.owner))
				for k, v := range st.owner {
					out[k] = v
				}
				return out
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("runs disagree on chunk count")
			}
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("chunk %s placed on %d then %d", k, v, b[k])
				}
			}
		})
	}
}

// TestAddNodesValidation checks the shared argument validation.
func TestAddNodesValidation(t *testing.T) {
	for _, kind := range Kinds() {
		p := build(t, kind, []NodeID{0, 1})
		st := newFakeState(0, 1)
		if _, err := p.AddNodes(nil, st); err == nil {
			t.Errorf("%s: empty AddNodes should fail", kind)
		}
		p = build(t, kind, []NodeID{0, 1})
		if _, err := p.AddNodes([]NodeID{1}, st); err == nil {
			t.Errorf("%s: re-adding node 1 should fail", kind)
		}
		p = build(t, kind, []NodeID{0, 1})
		if _, err := p.AddNodes([]NodeID{2, 2}, st); err == nil {
			t.Errorf("%s: duplicate new node should fail", kind)
		}
	}
}

// TestFineGrainedSchemesBalanceBetter reproduces the Section 6.2.1
// finding: the fine-grained schemes' storage RSD beats the coarse range
// schemes' by a wide margin on skewed data.
func TestFineGrainedSchemesBalanceBetter(t *testing.T) {
	rsdOf := func(kind string) float64 {
		p := build(t, kind, []NodeID{0, 1})
		st := newFakeState(0, 1)
		chunks := skewedChunks(13)
		half := len(chunks) / 2
		for _, info := range chunks[:half] {
			st.ingest(t, p, info)
		}
		st.scaleOut(t, p, 2, 3)
		for _, info := range chunks[half:] {
			st.ingest(t, p, info)
		}
		st.scaleOut(t, p, 4, 5, 6, 7)
		return stats.RSD(st.loads())
	}
	fine := (rsdOf(KindRoundRobin) + rsdOf(KindConsistent) + rsdOf(KindExtendible)) / 3
	coarse := (rsdOf(KindAppend) + rsdOf(KindUniform)) / 2
	if fine >= coarse {
		t.Errorf("fine-grained mean RSD %.3f should beat coarse %.3f", fine, coarse)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("nope", []NodeID{0}, grid16(), Options{}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := New(KindAppend, []NodeID{0}, grid16(), Options{}); err == nil {
		t.Error("append without capacity should fail")
	}
	if _, err := New(KindKdTree, nil, grid16(), Options{}); err == nil {
		t.Error("no initial nodes should fail")
	}
	if _, err := New(KindHilbert, []NodeID{0}, Geometry{}, Options{}); err == nil {
		t.Error("hilbert without geometry should fail")
	}
}

func TestIncrementalKinds(t *testing.T) {
	got := IncrementalKinds()
	want := map[string]bool{
		KindAppend: true, KindConsistent: true, KindExtendible: true,
		KindHilbert: true, KindQuadtree: true, KindKdTree: true,
	}
	if len(got) != len(want) {
		t.Fatalf("IncrementalKinds = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("%s should not be incremental", k)
		}
	}
}

// TestMoveSizesMatchCatalog double-checks plans carry the right sizes (the
// cluster charges network time from them).
func TestMoveSizesMatchCatalog(t *testing.T) {
	p := build(t, KindConsistent, []NodeID{0, 1})
	st := newFakeState(0, 1)
	for _, info := range uniformChunks(100, 1<<18, 2) {
		st.ingest(t, p, info)
	}
	moves := st.scaleOut(t, p, 2)
	if len(moves) == 0 {
		t.Fatal("expected some moves")
	}
	for _, m := range moves {
		if m.Size != st.chunks[m.Ref.Packed()].Size {
			t.Fatalf("move %s size %d != catalog %d", m.Ref, m.Size, st.chunks[m.Ref.Packed()].Size)
		}
	}
}

// TestOwnershipMatchesPlaceAfterScaleOut: after a scale-out, re-asking the
// partitioner where an existing chunk would go must agree with the
// catalog (the partitioner's table and the physical layout stay in sync).
func TestOwnershipMatchesPlaceAfterScaleOut(t *testing.T) {
	for _, kind := range []string{KindConsistent, KindExtendible, KindHilbert, KindQuadtree, KindKdTree, KindUniform, KindRoundRobin} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			p := build(t, kind, []NodeID{0, 1})
			st := newFakeState(0, 1)
			chunks := skewedChunks(17)
			for _, info := range chunks {
				st.ingest(t, p, info)
			}
			st.scaleOut(t, p, 2, 3)
			for _, info := range chunks {
				want := placeOne(t, p, info, st)
				got, _ := st.Owner(info.Ref.Packed())
				if got != want {
					t.Fatalf("%s: catalog says %s on %d, table says %d", kind, info.Ref, got, want)
				}
			}
		})
	}
}

var _ = array.ChunkInfo{} // keep import when build tags shift

// TestHashRefIncludesArray pins the fix for the cross-array collision: the
// chunk hash covers the array identity, so same-coordinate chunks of
// different arrays hash apart (the old position-only hash made every
// array's grid collapse onto one distribution).
func TestHashRefIncludesArray(t *testing.T) {
	coords := array.ChunkCoord{5, 2}
	a := array.ChunkRef{Array: "HashA", Coords: coords}.Packed()
	b := array.ChunkRef{Array: "HashB", Coords: coords}.Packed()
	if hashRef(a) == hashRef(b) {
		t.Error("same-coordinate chunks of different arrays must hash apart")
	}
	if hashRef(a) != hashRef(a) {
		t.Error("hashRef must be deterministic")
	}
	// hashCoord stays position-only: the Consistent Hash ring relies on it
	// to collocate congruent arrays' equal positions.
	if hashCoord(a.Coord()) != hashCoord(b.Coord()) {
		t.Error("hashCoord must depend on position only")
	}
}
