package partition

import (
	"fmt"
	"sort"

	"repro/internal/array"
)

// kdNode is a node of the K-d partitioning tree: either a split plane
// (dim/at, with children) or a leaf owning a box and a cluster node.
type kdNode struct {
	box   Box
	depth int
	// Internal nodes.
	dim         int
	at          int64
	left, right *kdNode
	// Leaves.
	leaf bool
	node NodeID
}

// KdTree range-partitions the chunk grid with a k-d tree (Bentley [9] in
// the paper). Each cluster node is one leaf. When the cluster scales out,
// the most heavily burdened leaf is split at the *storage median* along the
// next dimension in cyclic order, and the upper half's chunks move to the
// new node — the most surgical of the incremental schemes, which is why the
// paper finds it fastest end to end.
type KdTree struct {
	geom Geometry
	root *kdNode
	// midpointSplit is the ablation switch: split blindly at the
	// geometric midpoint instead of the storage median, discarding
	// skew-awareness (used by the ablation bench, not the paper).
	midpointSplit bool
}

// NewKdTree builds the tree over geom with one leaf per initial node.
// Since no data exists yet, the initial splits are geometric midpoints
// cycling through the dimensions (the paper's Figure 2 starts the same
// way: the first cut is the x midpoint).
func NewKdTree(initial []NodeID, geom Geometry, midpointSplit bool) (*KdTree, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("partition: KdTree needs at least one initial node")
	}
	p := &KdTree{geom: geom, midpointSplit: midpointSplit}
	p.root = &kdNode{box: RootBox(geom), leaf: true, node: initial[0]}
	for _, n := range initial[1:] {
		// Pre-split the leaf with the largest volume at its midpoint.
		leaf := p.largestLeaf()
		if err := p.splitLeaf(leaf, n, nil); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Name implements Partitioner.
func (p *KdTree) Name() string { return "K-d Tree" }

// Features implements Partitioner: incremental, skew-aware, n-dimensional
// (skew-awareness is forfeited under the midpoint ablation but the Table 1
// row describes the paper's algorithm).
func (p *KdTree) Features() Features {
	return Features{IncrementalScaleOut: true, SkewAware: !p.midpointSplit, NDimensionalClustering: true}
}

// PlaceBatch implements Placer: walk the tree comparing each chunk's
// coordinate with the split planes — logarithmic in the node count — with
// the clamp buffer hoisted out of the loop. The tree does not change
// within a batch.
func (p *KdTree) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	var ccBuf array.ChunkCoord
	for i, info := range infos {
		ccBuf = p.geom.ClampInto(info.Ref.Coords, ccBuf)
		out[i] = Assignment{Info: info, Node: p.locate(ccBuf).node}
	}
	return out, nil
}

func (p *KdTree) locate(cc array.ChunkCoord) *kdNode {
	n := p.root
	for !n.leaf {
		if cc[n.dim] < n.at {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// leaves returns all leaves in deterministic (in-order) sequence.
func (p *KdTree) leaves() []*kdNode {
	var out []*kdNode
	var walk func(n *kdNode)
	walk = func(n *kdNode) {
		if n.leaf {
			out = append(out, n)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(p.root)
	return out
}

func (p *KdTree) largestLeaf() *kdNode {
	var best *kdNode
	for _, l := range p.leaves() {
		if best == nil || l.box.Volume() > best.box.Volume() {
			best = l
		}
	}
	return best
}

func (p *KdTree) leafOf(node NodeID) (*kdNode, error) {
	for _, l := range p.leaves() {
		if l.node == node {
			return l, nil
		}
	}
	return nil, fmt.Errorf("partition: node %d owns no k-d tree leaf", node)
}

// splitLeaf turns the leaf into an internal node, keeping the lower half
// with the old owner and giving the upper half to newNode. chunks (may be
// nil) provides the storage distribution for the median; with no data the
// cut falls at the geometric midpoint. The split dimension cycles with
// leaf depth, skipping dimensions that are only one chunk wide.
func (p *KdTree) splitLeaf(leaf *kdNode, newNode NodeID, chunks []array.ChunkInfo) error {
	// Cycle through the spatial dimensions by leaf depth; fall back to
	// any splittable dimension (including a growth axis) only when the
	// spatial ones are exhausted.
	spatial := p.geom.spatialDims()
	dim := -1
	for k := 0; k < len(spatial); k++ {
		d := spatial[(leaf.depth+k)%len(spatial)]
		if leaf.box.Splittable(d) {
			dim = d
			break
		}
	}
	if dim < 0 {
		nd := leaf.box.Dims()
		for k := 0; k < nd; k++ {
			d := (leaf.depth + k) % nd
			if leaf.box.Splittable(d) {
				dim = d
				break
			}
		}
	}
	if dim < 0 {
		return fmt.Errorf("partition: k-d leaf %v cannot be split further", leaf.box)
	}
	at := p.splitPoint(leaf.box, dim, chunks)
	lower, upper := leaf.box.SplitAt(dim, at)
	leaf.leaf = false
	leaf.dim = dim
	leaf.at = at
	leaf.left = &kdNode{box: lower, depth: leaf.depth + 1, leaf: true, node: leaf.node}
	leaf.right = &kdNode{box: upper, depth: leaf.depth + 1, leaf: true, node: newNode}
	return nil
}

// splitPoint picks the cut coordinate: the storage median of the chunks in
// the box along dim (the plane with roughly half the bytes on either
// side), or the geometric midpoint when there is no data or the ablation
// switch is on.
func (p *KdTree) splitPoint(box Box, dim int, chunks []array.ChunkInfo) int64 {
	mid := box.Lo[dim] + box.Span(dim)/2
	if mid == box.Lo[dim] {
		mid = box.Lo[dim] + 1
	}
	if p.midpointSplit || len(chunks) == 0 {
		return mid
	}
	type slab struct {
		coord int64
		size  int64
	}
	bySlab := make(map[int64]int64)
	var total int64
	for _, info := range chunks {
		cc := p.geom.Clamp(info.Ref.Coords)
		if !box.Contains(cc) {
			continue
		}
		bySlab[cc[dim]] += info.Size
		total += info.Size
	}
	if total == 0 || len(bySlab) < 2 {
		return mid
	}
	slabs := make([]slab, 0, len(bySlab))
	for c, s := range bySlab {
		slabs = append(slabs, slab{coord: c, size: s})
	}
	sort.Slice(slabs, func(i, j int) bool { return slabs[i].coord < slabs[j].coord })
	var acc int64
	for i, s := range slabs {
		acc += s.size
		if acc >= total/2 {
			at := s.coord + 1 // cut after this slab
			if i == len(slabs)-1 {
				at = s.coord // all mass in the tail: cut before it
			}
			if at <= box.Lo[dim] {
				at = box.Lo[dim] + 1
			}
			if at >= box.Hi[dim] {
				at = box.Hi[dim] - 1
			}
			if at <= box.Lo[dim] {
				return mid
			}
			return at
		}
	}
	return mid
}

// AddNodes implements Partitioner. For each new node: split the most
// heavily burdened node's leaf at the storage median along the cyclic
// dimension; the chunks in the upper half move to the new node.
func (p *KdTree) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	chunks := allChunks(st)
	// Planned loads under the evolving tree.
	load := make(map[NodeID]int64)
	for _, n := range st.Nodes() {
		load[n] = 0
	}
	for _, info := range chunks {
		load[p.locate(p.geom.Clamp(info.Ref.Coords)).node] += info.Size
	}
	for _, newNode := range newNodes {
		// Walk candidates by descending load: the hottest node's leaf
		// can be a single chunk slot, which cannot be split — fall back
		// to the next most burdened splittable leaf.
		var split *kdNode
		var victim NodeID
		for _, cand := range nodesByLoadDesc(load) {
			leaf, err := p.leafOf(cand)
			if err != nil {
				return nil, err
			}
			if err := p.splitLeaf(leaf, newNode, chunks); err == nil {
				split, victim = leaf, cand
				break
			}
		}
		if split == nil {
			return nil, fmt.Errorf("partition: no k-d leaf can absorb node %d (grid exhausted)", newNode)
		}
		var moved int64
		for _, info := range chunks {
			cc := p.geom.Clamp(info.Ref.Coords)
			if split.right.box.Contains(cc) {
				moved += info.Size
			}
		}
		load[victim] -= moved
		load[newNode] = moved
	}
	var moves []Move
	for _, info := range chunks {
		want := p.locate(p.geom.Clamp(info.Ref.Coords)).node
		cur, _ := st.Owner(info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}
