package partition

import (
	"fmt"
	"sort"

	"repro/internal/array"
)

// qRegion is one box of the quadtree partition and the node that owns it.
type qRegion struct {
	box  Box
	node NodeID
}

// IncrQuadtree is the paper's Incremental Quadtree (Section 4.2): a binary
// space partitioner that keeps array space intact while scaling out one
// node at a time. When the cluster grows, the scheme quarters the most
// heavily burdened node's region (on its two longest axes) and hands the
// quarter — or pair of adjacent quarters — whose summed storage is closest
// to half of the victim's load to the new node. Unlike a classic quadtree
// that would need three new hosts per split, every split here feeds exactly
// one new node, making scale-out incremental.
type IncrQuadtree struct {
	geom    Geometry
	regions []qRegion
}

// NewIncrQuadtree builds the partitioner, quartering the root recursively
// (no data yet, so quarters are geometric) until there are at least as many
// regions as initial nodes, then assigning regions to nodes in contiguous
// blocks.
func NewIncrQuadtree(initial []NodeID, geom Geometry) (*IncrQuadtree, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("partition: IncrQuadtree needs at least one initial node")
	}
	boxes := []Box{RootBox(geom)}
	for len(boxes) < len(initial) {
		// Quarter the largest box.
		sort.SliceStable(boxes, func(i, j int) bool { return boxes[i].Volume() > boxes[j].Volume() })
		q := quarter(boxes[0], geom.spatialDims())
		if len(q) < 2 {
			return nil, fmt.Errorf("partition: grid %v too small for %d initial nodes", geom.Extents, len(initial))
		}
		boxes = append(q, boxes[1:]...)
	}
	p := &IncrQuadtree{geom: geom}
	n := len(initial)
	for i, b := range boxes {
		p.regions = append(p.regions, qRegion{box: b, node: initial[i*n/len(boxes)]})
	}
	return p, nil
}

// quarter splits a box at the midpoints of its two longest splittable
// spatial axes, yielding up to four quarters (two if only one axis is
// splittable; just the box itself if none are). A nil/empty spatial list
// means all axes qualify; growth axes are used only when no spatial axis
// can be split.
func quarter(b Box, spatial []int) []Box {
	allowed := make(map[int]bool)
	if len(spatial) == 0 {
		for d := 0; d < b.Dims(); d++ {
			allowed[d] = true
		}
	} else {
		for _, d := range spatial {
			allowed[d] = true
		}
	}
	var dims []int
	for _, d := range b.LongestDims(b.Dims()) {
		if allowed[d] && b.Splittable(d) {
			dims = append(dims, d)
		}
		if len(dims) == 2 {
			break
		}
	}
	if len(dims) == 0 {
		for _, d := range b.LongestDims(b.Dims()) {
			if b.Splittable(d) {
				dims = append(dims, d)
			}
			if len(dims) == 2 {
				break
			}
		}
	}
	out := []Box{b}
	for _, d := range dims {
		var next []Box
		for _, bb := range out {
			mid := bb.Lo[d] + bb.Span(d)/2
			if mid <= bb.Lo[d] || mid >= bb.Hi[d] {
				next = append(next, bb)
				continue
			}
			lo, hi := bb.SplitAt(d, mid)
			next = append(next, lo, hi)
		}
		out = next
	}
	return out
}

// Name implements Partitioner.
func (p *IncrQuadtree) Name() string { return "Incr. Quadtree" }

// Features implements Partitioner: incremental, skew-aware, n-dimensional.
func (p *IncrQuadtree) Features() Features {
	return Features{IncrementalScaleOut: true, SkewAware: true, NDimensionalClustering: true}
}

// ownerOf locates the region containing an already-clamped coordinate by a
// linear walk of the region list (the list is small — one to a few boxes
// per node).
func (p *IncrQuadtree) ownerOf(cc array.ChunkCoord) NodeID {
	for _, r := range p.regions {
		if r.box.Contains(cc) {
			return r.node
		}
	}
	panic(fmt.Sprintf("partition: quadtree regions do not cover chunk %v", cc))
}

// PlaceBatch implements Placer: one region walk per chunk with the clamp
// buffer hoisted out of the loop; the region list does not change within a
// batch.
func (p *IncrQuadtree) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	var ccBuf array.ChunkCoord
	for i, info := range infos {
		ccBuf = p.geom.ClampInto(info.Ref.Coords, ccBuf)
		out[i] = Assignment{Info: info, Node: p.ownerOf(ccBuf)}
	}
	return out, nil
}

// AddNodes implements Partitioner, applying the paper's split rule per new
// node: quarter the most burdened host's single region (or reuse its
// existing quarters), then move the quarter or adjacent pair whose summed
// size is closest to half the host's storage to the new node.
func (p *IncrQuadtree) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	chunks := allChunks(st)
	boxBytes := func(b Box) int64 {
		var s int64
		for _, info := range chunks {
			if b.Contains(p.geom.Clamp(info.Ref.Coords)) {
				s += info.Size
			}
		}
		return s
	}
	load := make(map[NodeID]int64)
	for _, n := range st.Nodes() {
		load[n] = 0
	}
	for _, r := range p.regions {
		load[r.node] += boxBytes(r.box)
	}
	for _, newNode := range newNodes {
		// Walk candidates by descending load: the hottest node may hold
		// a single unsplittable slot — fall back to the next burdened
		// node whose holding can be subdivided.
		var victim NodeID
		var mine []Box
		var keep []qRegion
		found := false
		for _, cand := range nodesByLoadDesc(load) {
			mine, keep = mine[:0], keep[:0]
			for _, r := range p.regions {
				if r.node == cand {
					mine = append(mine, r.box)
				} else {
					keep = append(keep, r)
				}
			}
			if len(mine) == 0 {
				return nil, fmt.Errorf("partition: node %d owns no quadtree region", cand)
			}
			if len(mine) == 1 {
				mine = quarter(mine[0], p.geom.spatialDims())
			}
			if len(mine) > 1 {
				victim, found = cand, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("partition: no quadtree region can absorb node %d (grid exhausted)", newNode)
		}
		chosen := chooseHalf(mine, boxBytes, load[victim])
		var movedBytes int64
		for i, b := range mine {
			owner := victim
			if chosen[i] {
				owner = newNode
				movedBytes += boxBytes(b)
			}
			keep = append(keep, qRegion{box: b, node: owner})
		}
		p.regions = keep
		load[victim] -= movedBytes
		load[newNode] = movedBytes
	}
	p.sortRegions()
	var moves []Move
	for _, info := range chunks {
		want := p.ownerOf(p.geom.Clamp(info.Ref.Coords))
		cur, _ := st.Owner(info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}

// chooseHalf returns a mask over boxes marking the single box or pair of
// adjacent boxes whose summed bytes are closest to half of total; ties
// prefer the candidate with fewer boxes, then lower index order, keeping
// the decision deterministic.
func chooseHalf(boxes []Box, bytesOf func(Box) int64, total int64) []bool {
	half := total / 2
	sizes := make([]int64, len(boxes))
	for i, b := range boxes {
		sizes[i] = bytesOf(b)
	}
	bestDiff := int64(-1)
	bestMask := make([]bool, len(boxes))
	consider := func(mask []bool, sum int64) {
		diff := sum - half
		if diff < 0 {
			diff = -diff
		}
		if bestDiff < 0 || diff < bestDiff {
			bestDiff = diff
			copy(bestMask, mask)
		}
	}
	mask := make([]bool, len(boxes))
	// Singles.
	for i := range boxes {
		for j := range mask {
			mask[j] = false
		}
		mask[i] = true
		consider(mask, sizes[i])
	}
	// Adjacent pairs — but never the whole region set: the victim must
	// keep at least one box so it can still receive placements.
	for i := range boxes {
		if len(boxes) <= 2 {
			break
		}
		for j := i + 1; j < len(boxes); j++ {
			if !boxes[i].Adjacent(boxes[j]) {
				continue
			}
			for k := range mask {
				mask[k] = false
			}
			mask[i], mask[j] = true, true
			consider(mask, sizes[i]+sizes[j])
		}
	}
	return bestMask
}

// sortRegions keeps the region list in deterministic order (by box lower
// corner) so Place iteration is reproducible.
func (p *IncrQuadtree) sortRegions() {
	sort.SliceStable(p.regions, func(i, j int) bool {
		a, b := p.regions[i].box, p.regions[j].box
		for d := range a.Lo {
			if a.Lo[d] != b.Lo[d] {
				return a.Lo[d] < b.Lo[d]
			}
			if a.Hi[d] != b.Hi[d] {
				return a.Hi[d] < b.Hi[d]
			}
		}
		return p.regions[i].node < p.regions[j].node
	})
}

// Regions returns a snapshot of (box, node) assignments, for tests and
// debugging.
func (p *IncrQuadtree) Regions() []struct {
	Box  Box
	Node NodeID
} {
	out := make([]struct {
		Box  Box
		Node NodeID
	}, len(p.regions))
	for i, r := range p.regions {
		out[i].Box = r.box
		out[i].Node = r.node
	}
	return out
}
