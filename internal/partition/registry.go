package partition

import (
	"fmt"
	"sort"
)

// Options carries the per-scheme tunables. Zero values select the defaults
// used throughout the paper's evaluation.
type Options struct {
	// NodeCapacity is the Append scheme's per-node fill target in bytes.
	// Required for "append".
	NodeCapacity int64
	// VirtualNodes is the Consistent Hash ring replica count
	// (DefaultVirtualNodes when 0).
	VirtualNodes int
	// UniformHeight is the Uniform Range tree height h
	// (DefaultUniformHeight when 0).
	UniformHeight int
	// MidpointSplit switches the K-d Tree to blind geometric-midpoint
	// splits — the skew-awareness ablation.
	MidpointSplit bool
}

// Canonical scheme keys accepted by New, in the order the paper's figures
// list them.
const (
	KindAppend     = "append"
	KindConsistent = "consistent"
	KindExtendible = "extendible"
	KindHilbert    = "hilbert"
	KindQuadtree   = "quadtree"
	KindKdTree     = "kdtree"
	KindRoundRobin = "roundrobin"
	KindUniform    = "uniform"
)

// Kinds returns all scheme keys in figure order.
func Kinds() []string {
	return []string{
		KindAppend, KindConsistent, KindExtendible, KindHilbert,
		KindQuadtree, KindKdTree, KindRoundRobin, KindUniform,
	}
}

// IncrementalKinds returns the scheme keys whose Table 1 row has the
// incremental scale-out trait.
func IncrementalKinds() []string {
	var out []string
	for _, k := range Kinds() {
		p, err := New(k, []NodeID{0, 1}, Geometry{Extents: []int64{8, 8}}, Options{NodeCapacity: 1 << 20})
		if err != nil {
			continue
		}
		if p.Features().IncrementalScaleOut {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// New constructs the named scheme over the initial nodes. geom is required
// by the spatial schemes (hilbert, quadtree, kdtree, uniform) and ignored
// by the rest.
func New(kind string, initial []NodeID, geom Geometry, opts Options) (Partitioner, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("partition: need at least one initial node")
	}
	switch kind {
	case KindAppend:
		if opts.NodeCapacity <= 0 {
			return nil, fmt.Errorf("partition: append requires Options.NodeCapacity > 0")
		}
		return NewAppend(initial, opts.NodeCapacity), nil
	case KindConsistent:
		return NewConsistentHash(initial, opts.VirtualNodes), nil
	case KindExtendible:
		return NewExtendibleHash(initial), nil
	case KindHilbert:
		return NewHilbertCurve(initial, geom)
	case KindQuadtree:
		return NewIncrQuadtree(initial, geom)
	case KindKdTree:
		return NewKdTree(initial, geom, opts.MidpointSplit)
	case KindRoundRobin:
		return NewRoundRobin(initial, geom)
	case KindUniform:
		return NewUniformRange(initial, geom, opts.UniformHeight)
	default:
		return nil, fmt.Errorf("partition: unknown scheme %q (want one of %v)", kind, Kinds())
	}
}
