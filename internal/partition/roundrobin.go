package partition

import (
	"repro/internal/array"
)

// RoundRobin is the paper's baseline (Section 6.1): "to find chunk i in
// one of k nodes, Round Robin calculates i modulus k", where i is the
// chunk's linearized (row-major) position in the chunk grid. Every node
// gets an equal share of the logical chunks and congruent arrays collocate
// equal positions, but the scheme is neither incremental — changing k
// relocates most chunks — nor skew-aware, since physical sizes are
// ignored.
type RoundRobin struct {
	geom  Geometry
	nodes []NodeID
}

// NewRoundRobin returns the baseline partitioner over the initial nodes
// and chunk grid.
func NewRoundRobin(initial []NodeID, geom Geometry) (*RoundRobin, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &RoundRobin{
		geom:  geom,
		nodes: append([]NodeID(nil), initial...),
	}, nil
}

// Name implements Partitioner.
func (p *RoundRobin) Name() string { return "Round Robin" }

// Features implements Partitioner. Round Robin's only Table 1 trait is
// fine-grained, chunk-at-a-time placement.
func (p *RoundRobin) Features() Features {
	return Features{FineGrained: true}
}

// index linearizes the (clamped) chunk coordinate row-major.
func (p *RoundRobin) index(cc array.ChunkCoord) int64 {
	cc = p.geom.Clamp(cc)
	return p.indexClamped(cc)
}

// indexClamped linearizes an already-clamped coordinate row-major.
func (p *RoundRobin) indexClamped(cc array.ChunkCoord) int64 {
	var idx int64
	for d, e := range p.geom.Extents {
		idx = idx*e + cc[d]
	}
	return idx
}

// PlaceBatch implements Placer: circular assignment by grid position,
// independently per chunk, with the clamp buffer hoisted out of the loop.
func (p *RoundRobin) PlaceBatch(infos []array.ChunkInfo, st State) ([]Assignment, error) {
	out := make([]Assignment, len(infos))
	var ccBuf array.ChunkCoord
	for i, info := range infos {
		ccBuf = p.geom.ClampInto(info.Ref.Coords, ccBuf)
		out[i] = Assignment{Info: info, Node: p.nodes[p.indexClamped(ccBuf)%int64(len(p.nodes))]}
	}
	return out, nil
}

// AddNodes implements Partitioner. The modulus changes, so nearly every
// chunk's home changes: a global reorganisation in which data moves
// between preexisting nodes as well as to the new ones.
func (p *RoundRobin) AddNodes(newNodes []NodeID, st State) ([]Move, error) {
	if err := validateNewNodes(newNodes, st); err != nil {
		return nil, err
	}
	p.nodes = append(p.nodes, newNodes...)
	k := int64(len(p.nodes))
	var moves []Move
	for _, info := range allChunks(st) {
		want := p.nodes[p.index(info.Ref.Coords)%k]
		cur, _ := st.Owner(info.Ref.Packed())
		if cur != want {
			moves = append(moves, Move{Ref: info.Ref, From: cur, To: want, Size: info.Size})
		}
	}
	sortMoves(moves)
	return moves, nil
}
