// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), one bench per artifact, plus ablation benches for the design
// choices DESIGN.md calls out. Benches run the Quick configuration so
// `go test -bench=.` completes in minutes; `cmd/elasticbench` (no -quick)
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.
//
// Simulated-time outcomes are attached as custom metrics (sim-minutes,
// rsd-%, node-hours) so the bench output doubles as a results table.
package elastic

import (
	"testing"

	"repro/internal/advisor"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/workload"
)

func quickCfg() experiments.Config { return experiments.Quick() }

// BenchmarkTable1Taxonomy regenerates Table 1 (partitioner taxonomy).
func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 8 {
			b.Fatal("taxonomy incomplete")
		}
	}
}

// benchScheme runs one (scheme, workload) cell of Figures 4 and 5 and
// reports the paper's metrics for it.
func benchScheme(b *testing.B, kind, wl string) {
	b.Helper()
	cfg := quickCfg()
	var run experiments.SchemeRun
	for i := 0; i < b.N; i++ {
		var gen workload.Generator
		var err error
		if wl == "MODIS" {
			gen, err = workload.NewMODIS(workload.MODISConfig{Cycles: cfg.MODISCycles, BaseCells: cfg.MODISBaseCells})
		} else {
			gen, err = workload.NewAIS(workload.AISConfig{Cycles: cfg.AISCycles, CellsPerCycle: cfg.AISCellsPerCycle})
		}
		if err != nil {
			b.Fatal(err)
		}
		run, err = experiments.RunScheme(cfg, kind, gen)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.Insert, "insert-simmin")
	b.ReportMetric(run.Reorg, "reorg-simmin")
	b.ReportMetric(run.SPJ, "spj-simmin")
	b.ReportMetric(run.Science, "science-simmin")
	b.ReportMetric(run.MeanRSD*100, "rsd-%")
}

// BenchmarkFigure4And5MODIS regenerates the MODIS half of Figures 4 and 5:
// one sub-benchmark per partitioning scheme.
func BenchmarkFigure4And5MODIS(b *testing.B) {
	for _, kind := range partition.Kinds() {
		b.Run(kind, func(b *testing.B) { benchScheme(b, kind, "MODIS") })
	}
}

// BenchmarkFigure4And5AIS regenerates the AIS half of Figures 4 and 5.
func BenchmarkFigure4And5AIS(b *testing.B) {
	for _, kind := range partition.Kinds() {
		b.Run(kind, func(b *testing.B) { benchScheme(b, kind, "AIS") })
	}
}

// BenchmarkFigure6Join regenerates Figure 6 (vegetation-index join per
// cycle) for the schemes the figure contrasts, reporting the mean join
// latency.
func BenchmarkFigure6Join(b *testing.B) {
	for _, kind := range []string{partition.KindAppend, partition.KindConsistent, partition.KindKdTree, partition.KindUniform} {
		b.Run(kind, func(b *testing.B) {
			cfg := quickCfg()
			var mean float64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: cfg.MODISCycles, BaseCells: cfg.MODISBaseCells})
				if err != nil {
					b.Fatal(err)
				}
				run, err := experiments.RunScheme(cfg, kind, gen)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, s := range run.PerCycle {
					sum += s.Suite.PerQuery["join"].Elapsed.Minutes()
				}
				mean = sum / float64(len(run.PerCycle))
			}
			b.ReportMetric(mean, "join-simmin")
		})
	}
}

// BenchmarkFigure7KNN regenerates Figure 7 (k-NN on skewed AIS data).
func BenchmarkFigure7KNN(b *testing.B) {
	for _, kind := range []string{partition.KindAppend, partition.KindConsistent, partition.KindHilbert, partition.KindKdTree, partition.KindRoundRobin} {
		b.Run(kind, func(b *testing.B) {
			cfg := quickCfg()
			var mean float64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewAIS(workload.AISConfig{Cycles: cfg.AISCycles, CellsPerCycle: cfg.AISCellsPerCycle})
				if err != nil {
					b.Fatal(err)
				}
				run, err := experiments.RunScheme(cfg, kind, gen)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, s := range run.PerCycle {
					sum += s.Suite.PerQuery["modeling"].Elapsed.Minutes()
				}
				mean = sum / float64(len(run.PerCycle))
			}
			b.ReportMetric(mean, "knn-simmin")
		})
	}
}

// BenchmarkFigure8Staircase regenerates Figure 8 (the leading staircase
// under p ∈ {1,3,6}), reporting reorganization counts.
func BenchmarkFigure8Staircase(b *testing.B) {
	var stair experiments.StaircaseResult
	var err error
	for i := 0; i < b.N; i++ {
		stair, err = experiments.Figure8(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range experiments.StaircasePs {
		b.ReportMetric(float64(stair.Reorgs[p]), "reorgs-p"+string(rune('0'+p)))
	}
}

// BenchmarkTable2Tuning regenerates Table 2 (what-if tuning of s).
func BenchmarkTable2Tuning(b *testing.B) {
	var bestAIS, bestMODIS int
	for i := 0; i < b.N; i++ {
		var err error
		_, bestAIS, bestMODIS, err = experiments.Table2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bestAIS), "best-s-ais")
	b.ReportMetric(float64(bestMODIS), "best-s-modis")
}

// BenchmarkTable3CostModel regenerates Table 3 (analytical vs measured
// node-hours for the three set points).
func BenchmarkTable3CostModel(b *testing.B) {
	cfg := experiments.Config{MODISCycles: 14, MODISBaseCells: 14, AISCycles: 12, AISCellsPerCycle: 2000, CapacityFraction: 7}
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		stair, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows, err = experiments.Table3(cfg, stair)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Estimate, "est-nodehours-p"+string(rune('0'+r.P)))
		b.ReportMetric(r.Measured, "meas-nodehours-p"+string(rune('0'+r.P)))
	}
}

// BenchmarkAblationKdTreeSplit contrasts the paper's storage-median K-d
// splits with blind geometric-midpoint splits (the skew-awareness
// ablation): the reported RSD shows what skew-awareness buys on AIS.
func BenchmarkAblationKdTreeSplit(b *testing.B) {
	for _, mode := range []struct {
		name     string
		midpoint bool
	}{{"median", false}, {"midpoint", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := quickCfg()
			var rsd float64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewAIS(workload.AISConfig{Cycles: cfg.AISCycles, CellsPerCycle: cfg.AISCellsPerCycle})
				if err != nil {
					b.Fatal(err)
				}
				capacity, err := workloadCapacity(gen, cfg.CapacityFraction)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := NewEngine(gen, Config{
					PartitionerKind:    KindKdTree,
					PartitionerOptions: PartitionerOptions{MidpointSplit: mode.midpoint},
					InitialNodes:       2,
					NodeCapacity:       capacity,
					Cost:               ScaledCostModel(),
					MaxNodes:           8,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats_, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				var rsds []float64
				for _, s := range stats_ {
					rsds = append(rsds, s.RSD)
				}
				rsd = stats.Mean(rsds)
			}
			b.ReportMetric(rsd*100, "rsd-%")
		})
	}
}

// BenchmarkAblationGlobalVsIncremental contrasts total migration volume of
// the global schemes against the incremental ones — the Table 1 trait the
// whole paper revolves around.
func BenchmarkAblationGlobalVsIncremental(b *testing.B) {
	for _, kind := range []string{partition.KindKdTree, partition.KindConsistent, partition.KindRoundRobin, partition.KindUniform} {
		b.Run(kind, func(b *testing.B) {
			cfg := quickCfg()
			var moved int64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: cfg.MODISCycles, BaseCells: cfg.MODISBaseCells})
				if err != nil {
					b.Fatal(err)
				}
				run, err := experiments.RunScheme(cfg, kind, gen)
				if err != nil {
					b.Fatal(err)
				}
				moved = run.MovedBytes
			}
			b.ReportMetric(float64(moved)/1024, "moved-KiB")
		})
	}
}

// BenchmarkAblationVirtualNodes sweeps the consistent-hash ring's replica
// count: balance (RSD) versus table size.
func BenchmarkAblationVirtualNodes(b *testing.B) {
	for _, replicas := range []int{8, 32, 128, 512} {
		b.Run(itoa(replicas), func(b *testing.B) {
			cfg := quickCfg()
			var rsd float64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: cfg.MODISCycles, BaseCells: cfg.MODISBaseCells})
				if err != nil {
					b.Fatal(err)
				}
				capacity, err := workloadCapacity(gen, cfg.CapacityFraction)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := NewEngine(gen, Config{
					PartitionerKind:    KindConsistent,
					PartitionerOptions: PartitionerOptions{VirtualNodes: replicas},
					InitialNodes:       2,
					NodeCapacity:       capacity,
					Cost:               ScaledCostModel(),
					MaxNodes:           8,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats_, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				rsd = stats_[len(stats_)-1].RSD
			}
			b.ReportMetric(rsd*100, "final-rsd-%")
		})
	}
}

// BenchmarkAblationCoAccessAdvisor measures the §8 future-work prototype:
// how much remote co-access traffic the workload-driven repartitioner
// recovers from a hash-scattered placement, and what the migration costs.
func BenchmarkAblationCoAccessAdvisor(b *testing.B) {
	var before, after int64
	var moved int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen, err := workload.NewMODIS(workload.MODISConfig{Cycles: 3, BaseCells: 16})
		if err != nil {
			b.Fatal(err)
		}
		_, total, err := workload.TotalBytes(gen)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(gen, Config{
			PartitionerKind: KindConsistent,
			InitialNodes:    6,
			NodeCapacity:    total,
			Cost:            ScaledCostModel(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		adv, err := advisor.Advise(eng.Cluster(), []string{"Band1", "Band2"}, 1<<20, 1.4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Cluster().ExecuteRebalance(adv.Plan); err != nil {
			b.Fatal(err)
		}
		before, after, moved = adv.RemoteBytesBefore, adv.RemoteBytesAfter, len(adv.Moves)
	}
	b.ReportMetric(float64(before)/1024, "remote-KiB-before")
	b.ReportMetric(float64(after)/1024, "remote-KiB-after")
	b.ReportMetric(float64(moved), "moves")
}

func workloadCapacity(gen workload.Generator, fraction int) (int64, error) {
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		return 0, err
	}
	return total/int64(fraction) + 1, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
