// Portskew: contrast how a spatially clustered, skew-aware partitioner
// (K-d Tree) and a scattering baseline (Round Robin) serve the heavily
// port-skewed AIS workload — the Figure 7 story: the k-nearest-neighbour
// query halves its latency when array space is preserved, even though the
// baseline balances storage better.
//
//	go run ./examples/portskew
package main

import (
	"fmt"
	"log"

	elastic "repro"
	"repro/internal/workload"
)

func run(kind string) ([]elastic.CycleStats, error) {
	gen, err := elastic.NewAIS(elastic.AISConfig{Cycles: 8, CellsPerCycle: 3500})
	if err != nil {
		return nil, err
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		return nil, err
	}
	eng, err := elastic.NewEngine(gen, elastic.Config{
		PartitionerKind: kind,
		InitialNodes:    2,
		NodeCapacity:    total/7 + 1,
		Cost:            elastic.ScaledCostModel(),
		FixedStep:       2,
		MaxNodes:        8,
		RunQueries:      true,
	})
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

func main() {
	kd, err := run(elastic.KindKdTree)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := run(elastic.KindRoundRobin)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AIS k-nearest-neighbours latency per workload cycle (simulated minutes)")
	fmt.Println("cycle   K-d Tree   Round Robin   KdTree RSD   RR RSD")
	var kdSum, rrSum float64
	for i := range kd {
		kdKNN := kd[i].Suite.PerQuery["modeling"].Elapsed.Minutes()
		rrKNN := rr[i].Suite.PerQuery["modeling"].Elapsed.Minutes()
		kdSum += kdKNN
		rrSum += rrKNN
		fmt.Printf("%5d   %8.2f   %11.2f   %9.0f%%   %5.0f%%\n",
			i+1, kdKNN, rrKNN, kd[i].RSD*100, rr[i].RSD*100)
	}
	fmt.Printf("\nmean kNN latency: K-d Tree %.2f min vs Round Robin %.2f min (%.0f%% faster)\n",
		kdSum/float64(len(kd)), rrSum/float64(len(rr)), 100*(1-kdSum/rrSum))
	fmt.Println("\nThe baseline balances chunks almost perfectly (low RSD), yet the")
	fmt.Println("K-d Tree wins the spatial query: its chunks' neighbours live on the")
	fmt.Println("same node, so the k-NN search rarely crosses the network —")
	fmt.Println("multidimensional clustering trumps pure load balancing (§6.2.3).")
}
