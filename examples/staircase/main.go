// Staircase: drive the leading-staircase provisioner (the paper's §5) over
// the steadily growing MODIS workload, tuning its two parameters from the
// observed demand curve — s by what-if analysis (Algorithm 1), p by the
// analytical cost model (Eqs 5–9) — then render the staircase.
//
//	go run ./examples/staircase
package main

import (
	"fmt"
	"log"
	"strings"

	elastic "repro"
	"repro/internal/workload"
)

func main() {
	gen, err := elastic.NewMODIS(elastic.MODISConfig{Cycles: 14, BaseCells: 18})
	if err != nil {
		log.Fatal(err)
	}

	// Size node capacity so demand crosses several staircase steps.
	demand, total, err := workload.TotalBytes(gen)
	if err != nil {
		log.Fatal(err)
	}
	capacity := total/7 + 1

	// Tune s on the first third of the demand curve (Algorithm 1).
	train := demand[:len(demand)/3+2]
	s, errs, err := elastic.TuneS(train, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if tuning over %d observed cycles: s=%d (errors per s: %v)\n",
		len(train), s, fmtMB(errs))

	// Tune p with the analytical cost model from the current state.
	cost := elastic.ScaledCostModel()
	mu := (train[len(train)-1] - train[0]) / float64(len(train)-1)
	best, costs, err := elastic.TuneP(elastic.CostParams{
		DeltaSecPerUnit:  cost.DeltaSecPerByte,
		TSecPerUnit:      cost.TSecPerByte,
		NodeCapacity:     float64(capacity),
		Mu:               mu,
		L0:               train[len(train)-1],
		W0:               300, // last observed benchmark latency, seconds
		N0:               2,
		M:                10,
		ReorgFixedSec:    cost.ReorgFixedSec,
		CycleOverheadSec: 60,
		FabricWidth:      cost.FabricWidth,
	}, []int{1, 3, 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-model tuning: p=%d (node-hours per candidate:", best)
	for _, p := range []int{1, 3, 6} {
		fmt.Printf(" p%d=%.1f", p, costs[p]/3600)
	}
	fmt.Println(")")

	// Run the tuned staircase.
	ctrl, err := elastic.NewController(s, best, float64(capacity))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := elastic.NewEngine(gen, elastic.Config{
		PartitionerKind: elastic.KindConsistent,
		InitialNodes:    2,
		NodeCapacity:    capacity,
		Cost:            cost,
		Controller:      ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncycle  demand(nodes)  provisioned")
	stats, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	reorgs := 0
	for _, st := range stats {
		bar := strings.Repeat("#", st.NodesAfter)
		if st.Added > 0 {
			reorgs++
			bar += fmt.Sprintf("  <- scaled out +%d", st.Added)
		}
		fmt.Printf("%5d  %13.2f  %s\n", st.Cycle+1,
			float64(st.DemandBytes)/float64(capacity), bar)
	}
	fmt.Printf("\n%d reorganizations; provisioned capacity always led demand.\n", reorgs)
}

func fmtMB(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.3fMB", x/(1<<20))
	}
	return out
}
