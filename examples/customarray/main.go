// Customarray: use the library below the Engine facade — declare your own
// array with SciDB syntax, build chunks by hand, drive the cluster and
// partitioner directly, and run ad-hoc distributed queries. This is the
// path an application with its own ingest pipeline takes.
//
//	go run ./examples/customarray
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/query"
)

func main() {
	// A 2-D sensor grid: unbounded time, 64 sensors chunked 16 apart.
	schema, err := array.ParseSchema("Sensor<reading:double, status:int32>[t=0:*,100, sensor=0:63,16]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("declared:", schema)

	// A Hilbert-curve partitioner over a 12-slab × 4-column chunk grid;
	// the sensor axis is the spatial dimension, time is the growth axis.
	geom := partition.Geometry{Extents: []int64{12, 4}, SpatialDims: []int{1}}
	c, err := cluster.New(cluster.Config{
		InitialNodes: 2,
		NodeCapacity: 24 << 10,
		Partitioner: func(initial []partition.NodeID) (partition.Partitioner, error) {
			return partition.NewHilbertCurve(initial, geom)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DefineArray(schema); err != nil {
		log.Fatal(err)
	}

	// Hand-built ingest: ten time slabs of noisy readings.
	rng := rand.New(rand.NewSource(1))
	for slab := int64(0); slab < 10; slab++ {
		var batch []*array.Chunk
		for col := int64(0); col < 4; col++ {
			ch := array.NewChunk(schema, array.ChunkCoord{slab, col})
			for i := 0; i < 40; i++ {
				cell := array.Coord{slab*100 + rng.Int63n(100), col*16 + rng.Int63n(16)}
				ch.AppendCell(cell, []array.CellValue{
					{Float: 20 + rng.NormFloat64()*3},
					{Int: int64(rng.Intn(3))},
				})
			}
			batch = append(batch, ch)
		}
		// Two-phase ingest: plan the batch (validation + placement over
		// the whole slab at once), inspect it, then execute the parallel
		// per-node writes. Cluster.Insert does both in one call.
		plan, err := c.PlanInsert(batch)
		if err != nil {
			log.Fatal(err)
		}
		if slab == 0 {
			fmt.Printf("slab  1: planned %d chunks onto %d nodes (%d B local, %d B shipped)\n",
				plan.NumChunks(), plan.NumDestinations(), plan.LocalBytes(), plan.RemoteBytes())
		}
		if _, err := c.ExecutePlan(plan); err != nil {
			log.Fatal(err)
		}
		// Grow by hand when the cluster fills up.
		if c.TotalBytes() > c.Capacity()*8/10 && c.NumNodes() < 6 {
			res, err := c.ScaleOut(1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("slab %2d: scaled out to %d nodes, moved %d chunks (%s reorg)\n",
				slab+1, c.NumNodes(), res.Moves, res.Reorg)
		}
	}
	fmt.Printf("cluster: %d nodes, %d chunks, storage RSD %.0f%%\n",
		c.NumNodes(), c.NumChunks(), c.RSD()*100)

	// Ad-hoc distributed queries over the custom array.
	region := query.FullRegion(schema, 999)
	region.Lo[1], region.Hi[1] = 0, 15 // sensors 0–15 only
	sel, err := query.SelectRegion(c, "Sensor", region, []string{"reading"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection over sensors 0-15: %d cells in %s (scanned %d KiB)\n",
		sel.Cells, sel.Elapsed, sel.BytesScanned/1024)

	med, err := query.Quantile(c, "Sensor", "reading", 0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median reading: %.2f (sampled %d cells in %s)\n", med.Value, med.Cells, med.Elapsed)

	agg, err := query.GroupByAggregate(c, query.GroupBySpec{
		Array:      "Sensor",
		GroupDims:  []int{0},
		GroupScale: []int64{100}, // one bucket per time slab
		Attr:       "reading",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-slab mean reading: grand mean %.2f over %d cells in %s\n",
		agg.Value, agg.Cells, agg.Elapsed)
}
