// Quickstart: stand up an elastic array database over the AIS ship-track
// workload, let it grow from two nodes as monthly batches arrive, and watch
// the three phases of every workload cycle (insert, reorganize, query).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	elastic "repro"
)

func main() {
	// Six monthly insert cycles of synthetic, port-skewed vessel tracks.
	gen, err := elastic.NewAIS(elastic.AISConfig{Cycles: 6, CellsPerCycle: 3000})
	if err != nil {
		log.Fatal(err)
	}

	// A K-d Tree keeps each node's chunks spatially contiguous and
	// splits the most loaded node at its storage median on scale-out —
	// the scheme the paper found fastest end to end.
	eng, err := elastic.NewEngine(gen, elastic.Config{
		PartitionerKind: elastic.KindKdTree,
		InitialNodes:    2,
		NodeCapacity:    200 << 10, // 200 KiB per node at the scaled-down size
		Cost:            elastic.ScaledCostModel(),
		FixedStep:       2, // add two nodes whenever capacity is reached
		MaxNodes:        8,
		RunQueries:      true, // run the full AIS benchmark each cycle
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycle  nodes  insert   reorg    query    storage-RSD")
	stats, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		grew := ""
		if s.Added > 0 {
			grew = fmt.Sprintf("  (+%d nodes, moved %d KiB)", s.Added, s.MovedBytes/1024)
		}
		fmt.Printf("%5d  %5d  %6.1fm  %6.1fm  %6.1fm  %9.0f%%%s\n",
			s.Cycle+1, s.NodesAfter,
			s.Insert.Minutes(), s.Reorg.Minutes(), s.Query.Minutes(),
			s.RSD*100, grew)
	}
	fmt.Printf("\ntotal workload cost (Eq 1): %.1f node-hours\n",
		elastic.TotalNodeSeconds(stats)/3600)
	fmt.Printf("final cluster: %d nodes, %d chunks, %.1f MiB\n",
		eng.Cluster().NumNodes(), eng.Cluster().NumChunks(),
		float64(eng.Cluster().TotalBytes())/(1<<20))
}
