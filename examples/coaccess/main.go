// Coaccess: the paper's future-work direction (§8) prototyped — analyse
// which chunks the workload accesses together, then repartition so
// co-accessed chunks share nodes. A consistent-hash placement balances
// storage perfectly but scatters array space; the advisor rebuilds
// locality from the co-access graph alone.
//
//	go run ./examples/coaccess
package main

import (
	"fmt"
	"log"

	elastic "repro"
	"repro/internal/advisor"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	gen, err := elastic.NewMODIS(elastic.MODISConfig{Cycles: 4, BaseCells: 20})
	if err != nil {
		log.Fatal(err)
	}
	_, total, err := workload.TotalBytes(gen)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := elastic.NewEngine(gen, elastic.Config{
		PartitionerKind: elastic.KindConsistent,
		InitialNodes:    6,
		NodeCapacity:    total,
		Cost:            elastic.ScaledCostModel(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	c := eng.Cluster()

	last := int64(gen.Cycles() - 1)
	windowBefore, err := query.WindowAggregate(c, "Band1", "radiance", last, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: storage RSD %.0f%%, windowed aggregate %s (%d KiB halo over the network)\n",
		c.RSD()*100, windowBefore.Elapsed, windowBefore.BytesShuffled/1024)

	// Advise plans without moving anything: the predicted wire volume,
	// per-receiver batches and Eq 7 duration are all readable before a
	// byte ships — commit with ExecuteRebalance, or Discard to back out.
	adv, err := advisor.Advise(c, []string{"Band1", "Band2"}, 1<<20, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advice: %d chunk migrations over %d receivers, %d KiB on the wire, predicted reorg %s\n",
		adv.Plan.NumMoves(), len(adv.Plan.Receivers()), adv.Plan.WireBytes()/1024, adv.Plan.PredictedDuration())
	migration, err := c.ExecuteRebalance(adv.Plan)
	if err != nil {
		log.Fatal(err)
	}
	before, after := adv.RemoteBytesBefore, adv.RemoteBytesAfter
	fmt.Printf("executed: %s, remote co-access %d KiB -> %d KiB (-%.0f%%)\n",
		migration, before/1024, after/1024, 100*(1-float64(after)/float64(before)))

	windowAfter, err := query.WindowAggregate(c, "Band1", "radiance", last, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  storage RSD %.0f%%, windowed aggregate %s (%d KiB halo over the network)\n",
		c.RSD()*100, windowAfter.Elapsed, windowAfter.BytesShuffled/1024)
	fmt.Printf("\nsame answer (%d output pixels, mean %.3f) — %.1fx less halo traffic,\n",
		windowAfter.Cells, windowAfter.Value,
		float64(windowBefore.BytesShuffled)/float64(windowAfter.BytesShuffled+1))
	fmt.Println("tighter balance, and every future spatial query pays less network.")
	fmt.Println("(On near-uniform MODIS the latency is a wash; the paper's skewed AIS")
	fmt.Println("workload is where clustering halves query time — see Figure 7.)")
}
